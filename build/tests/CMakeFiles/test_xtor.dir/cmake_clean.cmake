file(REMOVE_RECURSE
  "CMakeFiles/test_xtor.dir/test_xtor.cpp.o"
  "CMakeFiles/test_xtor.dir/test_xtor.cpp.o.d"
  "test_xtor"
  "test_xtor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xtor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
