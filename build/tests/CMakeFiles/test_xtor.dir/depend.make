# Empty dependencies file for test_xtor.
# This may be replaced when dependencies are built.
