# Empty dependencies file for test_sim_analyses.
# This may be replaced when dependencies are built.
