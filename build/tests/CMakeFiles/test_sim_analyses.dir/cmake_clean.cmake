file(REMOVE_RECURSE
  "CMakeFiles/test_sim_analyses.dir/test_sim_analyses.cpp.o"
  "CMakeFiles/test_sim_analyses.dir/test_sim_analyses.cpp.o.d"
  "test_sim_analyses"
  "test_sim_analyses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_analyses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
