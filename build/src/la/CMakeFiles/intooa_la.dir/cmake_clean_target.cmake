file(REMOVE_RECURSE
  "libintooa_la.a"
)
