
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/la/cholesky.cpp" "src/la/CMakeFiles/intooa_la.dir/cholesky.cpp.o" "gcc" "src/la/CMakeFiles/intooa_la.dir/cholesky.cpp.o.d"
  "/root/repo/src/la/eigen.cpp" "src/la/CMakeFiles/intooa_la.dir/eigen.cpp.o" "gcc" "src/la/CMakeFiles/intooa_la.dir/eigen.cpp.o.d"
  "/root/repo/src/la/grid.cpp" "src/la/CMakeFiles/intooa_la.dir/grid.cpp.o" "gcc" "src/la/CMakeFiles/intooa_la.dir/grid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/intooa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
