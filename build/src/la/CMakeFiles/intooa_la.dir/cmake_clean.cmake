file(REMOVE_RECURSE
  "CMakeFiles/intooa_la.dir/cholesky.cpp.o"
  "CMakeFiles/intooa_la.dir/cholesky.cpp.o.d"
  "CMakeFiles/intooa_la.dir/eigen.cpp.o"
  "CMakeFiles/intooa_la.dir/eigen.cpp.o.d"
  "CMakeFiles/intooa_la.dir/grid.cpp.o"
  "CMakeFiles/intooa_la.dir/grid.cpp.o.d"
  "libintooa_la.a"
  "libintooa_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intooa_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
