# Empty dependencies file for intooa_la.
# This may be replaced when dependencies are built.
