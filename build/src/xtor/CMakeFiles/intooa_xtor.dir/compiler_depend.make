# Empty compiler generated dependencies file for intooa_xtor.
# This may be replaced when dependencies are built.
