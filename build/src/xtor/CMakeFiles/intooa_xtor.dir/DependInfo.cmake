
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xtor/gmid_lut.cpp" "src/xtor/CMakeFiles/intooa_xtor.dir/gmid_lut.cpp.o" "gcc" "src/xtor/CMakeFiles/intooa_xtor.dir/gmid_lut.cpp.o.d"
  "/root/repo/src/xtor/mapping.cpp" "src/xtor/CMakeFiles/intooa_xtor.dir/mapping.cpp.o" "gcc" "src/xtor/CMakeFiles/intooa_xtor.dir/mapping.cpp.o.d"
  "/root/repo/src/xtor/mos.cpp" "src/xtor/CMakeFiles/intooa_xtor.dir/mos.cpp.o" "gcc" "src/xtor/CMakeFiles/intooa_xtor.dir/mos.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/intooa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/intooa_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/intooa_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/intooa_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/intooa_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
