file(REMOVE_RECURSE
  "libintooa_xtor.a"
)
