file(REMOVE_RECURSE
  "CMakeFiles/intooa_xtor.dir/gmid_lut.cpp.o"
  "CMakeFiles/intooa_xtor.dir/gmid_lut.cpp.o.d"
  "CMakeFiles/intooa_xtor.dir/mapping.cpp.o"
  "CMakeFiles/intooa_xtor.dir/mapping.cpp.o.d"
  "CMakeFiles/intooa_xtor.dir/mos.cpp.o"
  "CMakeFiles/intooa_xtor.dir/mos.cpp.o.d"
  "libintooa_xtor.a"
  "libintooa_xtor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intooa_xtor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
