file(REMOVE_RECURSE
  "CMakeFiles/intooa_baselines.dir/fega.cpp.o"
  "CMakeFiles/intooa_baselines.dir/fega.cpp.o.d"
  "CMakeFiles/intooa_baselines.dir/nn.cpp.o"
  "CMakeFiles/intooa_baselines.dir/nn.cpp.o.d"
  "CMakeFiles/intooa_baselines.dir/vae.cpp.o"
  "CMakeFiles/intooa_baselines.dir/vae.cpp.o.d"
  "CMakeFiles/intooa_baselines.dir/vgae_bo.cpp.o"
  "CMakeFiles/intooa_baselines.dir/vgae_bo.cpp.o.d"
  "libintooa_baselines.a"
  "libintooa_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intooa_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
