# Empty dependencies file for intooa_baselines.
# This may be replaced when dependencies are built.
