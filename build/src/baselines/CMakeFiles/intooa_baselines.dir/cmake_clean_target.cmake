file(REMOVE_RECURSE
  "libintooa_baselines.a"
)
