# Empty dependencies file for intooa_sim.
# This may be replaced when dependencies are built.
