
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/metrics.cpp" "src/sim/CMakeFiles/intooa_sim.dir/metrics.cpp.o" "gcc" "src/sim/CMakeFiles/intooa_sim.dir/metrics.cpp.o.d"
  "/root/repo/src/sim/mna.cpp" "src/sim/CMakeFiles/intooa_sim.dir/mna.cpp.o" "gcc" "src/sim/CMakeFiles/intooa_sim.dir/mna.cpp.o.d"
  "/root/repo/src/sim/noise.cpp" "src/sim/CMakeFiles/intooa_sim.dir/noise.cpp.o" "gcc" "src/sim/CMakeFiles/intooa_sim.dir/noise.cpp.o.d"
  "/root/repo/src/sim/transient.cpp" "src/sim/CMakeFiles/intooa_sim.dir/transient.cpp.o" "gcc" "src/sim/CMakeFiles/intooa_sim.dir/transient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/intooa_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/intooa_la.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/intooa_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/intooa_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
