file(REMOVE_RECURSE
  "CMakeFiles/intooa_sim.dir/metrics.cpp.o"
  "CMakeFiles/intooa_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/intooa_sim.dir/mna.cpp.o"
  "CMakeFiles/intooa_sim.dir/mna.cpp.o.d"
  "CMakeFiles/intooa_sim.dir/noise.cpp.o"
  "CMakeFiles/intooa_sim.dir/noise.cpp.o.d"
  "CMakeFiles/intooa_sim.dir/transient.cpp.o"
  "CMakeFiles/intooa_sim.dir/transient.cpp.o.d"
  "libintooa_sim.a"
  "libintooa_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intooa_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
