file(REMOVE_RECURSE
  "libintooa_sim.a"
)
