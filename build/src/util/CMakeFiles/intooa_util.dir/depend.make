# Empty dependencies file for intooa_util.
# This may be replaced when dependencies are built.
