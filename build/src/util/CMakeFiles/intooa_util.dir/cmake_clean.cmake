file(REMOVE_RECURSE
  "CMakeFiles/intooa_util.dir/cli.cpp.o"
  "CMakeFiles/intooa_util.dir/cli.cpp.o.d"
  "CMakeFiles/intooa_util.dir/log.cpp.o"
  "CMakeFiles/intooa_util.dir/log.cpp.o.d"
  "CMakeFiles/intooa_util.dir/rng.cpp.o"
  "CMakeFiles/intooa_util.dir/rng.cpp.o.d"
  "CMakeFiles/intooa_util.dir/stats.cpp.o"
  "CMakeFiles/intooa_util.dir/stats.cpp.o.d"
  "CMakeFiles/intooa_util.dir/table.cpp.o"
  "CMakeFiles/intooa_util.dir/table.cpp.o.d"
  "libintooa_util.a"
  "libintooa_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intooa_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
