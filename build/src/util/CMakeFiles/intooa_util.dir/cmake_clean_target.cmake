file(REMOVE_RECURSE
  "libintooa_util.a"
)
