# Empty dependencies file for intooa_gp.
# This may be replaced when dependencies are built.
