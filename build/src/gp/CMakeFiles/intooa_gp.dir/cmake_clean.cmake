file(REMOVE_RECURSE
  "CMakeFiles/intooa_gp.dir/acquisition.cpp.o"
  "CMakeFiles/intooa_gp.dir/acquisition.cpp.o.d"
  "CMakeFiles/intooa_gp.dir/gp.cpp.o"
  "CMakeFiles/intooa_gp.dir/gp.cpp.o.d"
  "CMakeFiles/intooa_gp.dir/joint_gp.cpp.o"
  "CMakeFiles/intooa_gp.dir/joint_gp.cpp.o.d"
  "CMakeFiles/intooa_gp.dir/kernel.cpp.o"
  "CMakeFiles/intooa_gp.dir/kernel.cpp.o.d"
  "CMakeFiles/intooa_gp.dir/wlgp.cpp.o"
  "CMakeFiles/intooa_gp.dir/wlgp.cpp.o.d"
  "libintooa_gp.a"
  "libintooa_gp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intooa_gp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
