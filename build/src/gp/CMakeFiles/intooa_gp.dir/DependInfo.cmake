
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gp/acquisition.cpp" "src/gp/CMakeFiles/intooa_gp.dir/acquisition.cpp.o" "gcc" "src/gp/CMakeFiles/intooa_gp.dir/acquisition.cpp.o.d"
  "/root/repo/src/gp/gp.cpp" "src/gp/CMakeFiles/intooa_gp.dir/gp.cpp.o" "gcc" "src/gp/CMakeFiles/intooa_gp.dir/gp.cpp.o.d"
  "/root/repo/src/gp/joint_gp.cpp" "src/gp/CMakeFiles/intooa_gp.dir/joint_gp.cpp.o" "gcc" "src/gp/CMakeFiles/intooa_gp.dir/joint_gp.cpp.o.d"
  "/root/repo/src/gp/kernel.cpp" "src/gp/CMakeFiles/intooa_gp.dir/kernel.cpp.o" "gcc" "src/gp/CMakeFiles/intooa_gp.dir/kernel.cpp.o.d"
  "/root/repo/src/gp/wlgp.cpp" "src/gp/CMakeFiles/intooa_gp.dir/wlgp.cpp.o" "gcc" "src/gp/CMakeFiles/intooa_gp.dir/wlgp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/intooa_la.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/intooa_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/intooa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
