file(REMOVE_RECURSE
  "libintooa_gp.a"
)
