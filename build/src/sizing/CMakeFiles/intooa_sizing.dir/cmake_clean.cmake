file(REMOVE_RECURSE
  "CMakeFiles/intooa_sizing.dir/corners.cpp.o"
  "CMakeFiles/intooa_sizing.dir/corners.cpp.o.d"
  "CMakeFiles/intooa_sizing.dir/evaluate.cpp.o"
  "CMakeFiles/intooa_sizing.dir/evaluate.cpp.o.d"
  "CMakeFiles/intooa_sizing.dir/sizer.cpp.o"
  "CMakeFiles/intooa_sizing.dir/sizer.cpp.o.d"
  "libintooa_sizing.a"
  "libintooa_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intooa_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
