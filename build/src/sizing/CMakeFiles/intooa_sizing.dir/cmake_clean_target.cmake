file(REMOVE_RECURSE
  "libintooa_sizing.a"
)
