# Empty dependencies file for intooa_sizing.
# This may be replaced when dependencies are built.
