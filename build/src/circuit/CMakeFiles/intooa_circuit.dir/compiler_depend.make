# Empty compiler generated dependencies file for intooa_circuit.
# This may be replaced when dependencies are built.
