
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/behavioral.cpp" "src/circuit/CMakeFiles/intooa_circuit.dir/behavioral.cpp.o" "gcc" "src/circuit/CMakeFiles/intooa_circuit.dir/behavioral.cpp.o.d"
  "/root/repo/src/circuit/circuit_graph.cpp" "src/circuit/CMakeFiles/intooa_circuit.dir/circuit_graph.cpp.o" "gcc" "src/circuit/CMakeFiles/intooa_circuit.dir/circuit_graph.cpp.o.d"
  "/root/repo/src/circuit/design_io.cpp" "src/circuit/CMakeFiles/intooa_circuit.dir/design_io.cpp.o" "gcc" "src/circuit/CMakeFiles/intooa_circuit.dir/design_io.cpp.o.d"
  "/root/repo/src/circuit/library.cpp" "src/circuit/CMakeFiles/intooa_circuit.dir/library.cpp.o" "gcc" "src/circuit/CMakeFiles/intooa_circuit.dir/library.cpp.o.d"
  "/root/repo/src/circuit/netlist.cpp" "src/circuit/CMakeFiles/intooa_circuit.dir/netlist.cpp.o" "gcc" "src/circuit/CMakeFiles/intooa_circuit.dir/netlist.cpp.o.d"
  "/root/repo/src/circuit/rules.cpp" "src/circuit/CMakeFiles/intooa_circuit.dir/rules.cpp.o" "gcc" "src/circuit/CMakeFiles/intooa_circuit.dir/rules.cpp.o.d"
  "/root/repo/src/circuit/spec.cpp" "src/circuit/CMakeFiles/intooa_circuit.dir/spec.cpp.o" "gcc" "src/circuit/CMakeFiles/intooa_circuit.dir/spec.cpp.o.d"
  "/root/repo/src/circuit/subckt.cpp" "src/circuit/CMakeFiles/intooa_circuit.dir/subckt.cpp.o" "gcc" "src/circuit/CMakeFiles/intooa_circuit.dir/subckt.cpp.o.d"
  "/root/repo/src/circuit/topology.cpp" "src/circuit/CMakeFiles/intooa_circuit.dir/topology.cpp.o" "gcc" "src/circuit/CMakeFiles/intooa_circuit.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/intooa_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/intooa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
