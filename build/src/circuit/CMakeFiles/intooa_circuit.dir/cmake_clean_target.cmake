file(REMOVE_RECURSE
  "libintooa_circuit.a"
)
