file(REMOVE_RECURSE
  "CMakeFiles/intooa_circuit.dir/behavioral.cpp.o"
  "CMakeFiles/intooa_circuit.dir/behavioral.cpp.o.d"
  "CMakeFiles/intooa_circuit.dir/circuit_graph.cpp.o"
  "CMakeFiles/intooa_circuit.dir/circuit_graph.cpp.o.d"
  "CMakeFiles/intooa_circuit.dir/design_io.cpp.o"
  "CMakeFiles/intooa_circuit.dir/design_io.cpp.o.d"
  "CMakeFiles/intooa_circuit.dir/library.cpp.o"
  "CMakeFiles/intooa_circuit.dir/library.cpp.o.d"
  "CMakeFiles/intooa_circuit.dir/netlist.cpp.o"
  "CMakeFiles/intooa_circuit.dir/netlist.cpp.o.d"
  "CMakeFiles/intooa_circuit.dir/rules.cpp.o"
  "CMakeFiles/intooa_circuit.dir/rules.cpp.o.d"
  "CMakeFiles/intooa_circuit.dir/spec.cpp.o"
  "CMakeFiles/intooa_circuit.dir/spec.cpp.o.d"
  "CMakeFiles/intooa_circuit.dir/subckt.cpp.o"
  "CMakeFiles/intooa_circuit.dir/subckt.cpp.o.d"
  "CMakeFiles/intooa_circuit.dir/topology.cpp.o"
  "CMakeFiles/intooa_circuit.dir/topology.cpp.o.d"
  "libintooa_circuit.a"
  "libintooa_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intooa_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
