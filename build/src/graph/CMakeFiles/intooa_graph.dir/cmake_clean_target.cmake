file(REMOVE_RECURSE
  "libintooa_graph.a"
)
