file(REMOVE_RECURSE
  "CMakeFiles/intooa_graph.dir/graph.cpp.o"
  "CMakeFiles/intooa_graph.dir/graph.cpp.o.d"
  "CMakeFiles/intooa_graph.dir/sparse.cpp.o"
  "CMakeFiles/intooa_graph.dir/sparse.cpp.o.d"
  "CMakeFiles/intooa_graph.dir/wl.cpp.o"
  "CMakeFiles/intooa_graph.dir/wl.cpp.o.d"
  "libintooa_graph.a"
  "libintooa_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intooa_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
