# Empty compiler generated dependencies file for intooa_graph.
# This may be replaced when dependencies are built.
