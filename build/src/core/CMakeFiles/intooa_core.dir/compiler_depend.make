# Empty compiler generated dependencies file for intooa_core.
# This may be replaced when dependencies are built.
