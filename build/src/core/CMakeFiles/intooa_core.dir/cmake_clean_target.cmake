file(REMOVE_RECURSE
  "libintooa_core.a"
)
