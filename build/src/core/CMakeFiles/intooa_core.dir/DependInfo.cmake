
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/candidates.cpp" "src/core/CMakeFiles/intooa_core.dir/candidates.cpp.o" "gcc" "src/core/CMakeFiles/intooa_core.dir/candidates.cpp.o.d"
  "/root/repo/src/core/evaluator.cpp" "src/core/CMakeFiles/intooa_core.dir/evaluator.cpp.o" "gcc" "src/core/CMakeFiles/intooa_core.dir/evaluator.cpp.o.d"
  "/root/repo/src/core/interpret.cpp" "src/core/CMakeFiles/intooa_core.dir/interpret.cpp.o" "gcc" "src/core/CMakeFiles/intooa_core.dir/interpret.cpp.o.d"
  "/root/repo/src/core/optimizer.cpp" "src/core/CMakeFiles/intooa_core.dir/optimizer.cpp.o" "gcc" "src/core/CMakeFiles/intooa_core.dir/optimizer.cpp.o.d"
  "/root/repo/src/core/pareto.cpp" "src/core/CMakeFiles/intooa_core.dir/pareto.cpp.o" "gcc" "src/core/CMakeFiles/intooa_core.dir/pareto.cpp.o.d"
  "/root/repo/src/core/refine.cpp" "src/core/CMakeFiles/intooa_core.dir/refine.cpp.o" "gcc" "src/core/CMakeFiles/intooa_core.dir/refine.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/intooa_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/intooa_core.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sizing/CMakeFiles/intooa_sizing.dir/DependInfo.cmake"
  "/root/repo/build/src/gp/CMakeFiles/intooa_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/intooa_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/intooa_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/intooa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/intooa_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/intooa_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
