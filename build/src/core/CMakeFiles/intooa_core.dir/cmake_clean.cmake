file(REMOVE_RECURSE
  "CMakeFiles/intooa_core.dir/candidates.cpp.o"
  "CMakeFiles/intooa_core.dir/candidates.cpp.o.d"
  "CMakeFiles/intooa_core.dir/evaluator.cpp.o"
  "CMakeFiles/intooa_core.dir/evaluator.cpp.o.d"
  "CMakeFiles/intooa_core.dir/interpret.cpp.o"
  "CMakeFiles/intooa_core.dir/interpret.cpp.o.d"
  "CMakeFiles/intooa_core.dir/optimizer.cpp.o"
  "CMakeFiles/intooa_core.dir/optimizer.cpp.o.d"
  "CMakeFiles/intooa_core.dir/pareto.cpp.o"
  "CMakeFiles/intooa_core.dir/pareto.cpp.o.d"
  "CMakeFiles/intooa_core.dir/refine.cpp.o"
  "CMakeFiles/intooa_core.dir/refine.cpp.o.d"
  "CMakeFiles/intooa_core.dir/report.cpp.o"
  "CMakeFiles/intooa_core.dir/report.cpp.o.d"
  "libintooa_core.a"
  "libintooa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intooa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
