file(REMOVE_RECURSE
  "CMakeFiles/refine_design.dir/refine_design.cpp.o"
  "CMakeFiles/refine_design.dir/refine_design.cpp.o.d"
  "refine_design"
  "refine_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refine_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
