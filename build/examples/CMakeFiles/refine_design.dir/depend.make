# Empty dependencies file for refine_design.
# This may be replaced when dependencies are built.
