# Empty dependencies file for synthesize_opamp.
# This may be replaced when dependencies are built.
