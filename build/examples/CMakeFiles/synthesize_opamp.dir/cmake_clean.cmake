file(REMOVE_RECURSE
  "CMakeFiles/synthesize_opamp.dir/synthesize_opamp.cpp.o"
  "CMakeFiles/synthesize_opamp.dir/synthesize_opamp.cpp.o.d"
  "synthesize_opamp"
  "synthesize_opamp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthesize_opamp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
