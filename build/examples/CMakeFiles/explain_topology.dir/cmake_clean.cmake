file(REMOVE_RECURSE
  "CMakeFiles/explain_topology.dir/explain_topology.cpp.o"
  "CMakeFiles/explain_topology.dir/explain_topology.cpp.o.d"
  "explain_topology"
  "explain_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explain_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
