# Empty dependencies file for explain_topology.
# This may be replaced when dependencies are built.
