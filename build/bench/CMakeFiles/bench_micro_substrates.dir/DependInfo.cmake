
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_micro_substrates.cpp" "bench/CMakeFiles/bench_micro_substrates.dir/bench_micro_substrates.cpp.o" "gcc" "bench/CMakeFiles/bench_micro_substrates.dir/bench_micro_substrates.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/intooa_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/intooa_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/intooa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/xtor/CMakeFiles/intooa_xtor.dir/DependInfo.cmake"
  "/root/repo/build/src/sizing/CMakeFiles/intooa_sizing.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/intooa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/intooa_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/gp/CMakeFiles/intooa_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/intooa_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/intooa_la.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/intooa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
