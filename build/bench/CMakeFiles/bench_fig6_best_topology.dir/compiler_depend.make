# Empty compiler generated dependencies file for bench_fig6_best_topology.
# This may be replaced when dependencies are built.
