# Empty compiler generated dependencies file for bench_robustness_corners.
# This may be replaced when dependencies are built.
