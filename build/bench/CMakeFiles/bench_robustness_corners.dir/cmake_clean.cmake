file(REMOVE_RECURSE
  "CMakeFiles/bench_robustness_corners.dir/bench_robustness_corners.cpp.o"
  "CMakeFiles/bench_robustness_corners.dir/bench_robustness_corners.cpp.o.d"
  "bench_robustness_corners"
  "bench_robustness_corners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_robustness_corners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
