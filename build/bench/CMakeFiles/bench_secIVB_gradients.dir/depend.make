# Empty dependencies file for bench_secIVB_gradients.
# This may be replaced when dependencies are built.
