file(REMOVE_RECURSE
  "CMakeFiles/bench_secIVB_gradients.dir/bench_secIVB_gradients.cpp.o"
  "CMakeFiles/bench_secIVB_gradients.dir/bench_secIVB_gradients.cpp.o.d"
  "bench_secIVB_gradients"
  "bench_secIVB_gradients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_secIVB_gradients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
