file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_optimization.dir/bench_table2_optimization.cpp.o"
  "CMakeFiles/bench_table2_optimization.dir/bench_table2_optimization.cpp.o.d"
  "bench_table2_optimization"
  "bench_table2_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
