file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_transistor.dir/bench_table5_transistor.cpp.o"
  "CMakeFiles/bench_table5_transistor.dir/bench_table5_transistor.cpp.o.d"
  "bench_table5_transistor"
  "bench_table5_transistor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_transistor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
