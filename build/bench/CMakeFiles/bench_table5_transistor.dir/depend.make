# Empty dependencies file for bench_table5_transistor.
# This may be replaced when dependencies are built.
