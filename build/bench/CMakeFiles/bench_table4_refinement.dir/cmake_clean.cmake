file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_refinement.dir/bench_table4_refinement.cpp.o"
  "CMakeFiles/bench_table4_refinement.dir/bench_table4_refinement.cpp.o.d"
  "bench_table4_refinement"
  "bench_table4_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
