# Empty dependencies file for bench_table4_refinement.
# This may be replaced when dependencies are built.
