# Empty dependencies file for intooa_bench_common.
# This may be replaced when dependencies are built.
