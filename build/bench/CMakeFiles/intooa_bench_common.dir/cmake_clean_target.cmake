file(REMOVE_RECURSE
  "libintooa_bench_common.a"
)
