file(REMOVE_RECURSE
  "CMakeFiles/intooa_bench_common.dir/common/campaign.cpp.o"
  "CMakeFiles/intooa_bench_common.dir/common/campaign.cpp.o.d"
  "CMakeFiles/intooa_bench_common.dir/common/refine_flow.cpp.o"
  "CMakeFiles/intooa_bench_common.dir/common/refine_flow.cpp.o.d"
  "libintooa_bench_common.a"
  "libintooa_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intooa_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
