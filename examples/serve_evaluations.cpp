// Serving walkthrough: the evaluation service end to end, in one process.
//   1. Start an svc::Server on a Unix-domain socket (the same engine as
//      the intooa-served daemon), backed by a persistent evaluation store.
//   2. Connect an svc::Client, handshake, and evaluate a topology remotely.
//   3. Show the determinism contract: the served record bytes are
//      byte-identical to the same evaluation run in-process.
//   4. Ask again — the answer now comes from the warm memory tier.
//   5. Drain the server gracefully (what SIGTERM does to intooa-served).
//
// Build & run:  cmake --build build && ./build/examples/serve_evaluations
//
// Out of process, the same conversation is:
//   ./build/src/svc/intooa-served --listen unix:/tmp/intooa.sock \
//       --store /tmp/eval-store.bin
//   ./build/src/svc/intooa-svc-client --connect unix:/tmp/intooa.sock \
//       --spec S-1 --topology 5 --count 4 --verify

#include <cstdio>
#include <filesystem>
#include <thread>

#include "core/eval_key.hpp"
#include "sizing/sizer.hpp"
#include "store/record_io.hpp"
#include "store/store.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"
#include "util/rng.hpp"

int main() {
  using namespace intooa;

  // --- 1. A server on a Unix socket, with a persistent warm store. -------
  const std::string socket_path =
      (std::filesystem::temp_directory_path() / "intooa-example.sock")
          .string();
  const std::string store_path =
      (std::filesystem::temp_directory_path() / "intooa-example-store.bin")
          .string();
  std::filesystem::remove(store_path);

  svc::ServerConfig config;
  config.address = svc::Address::parse("unix:" + socket_path);
  config.threads = 2;
  config.store = store::EvalStore::open(store_path);
  svc::Server server(std::move(config));
  server.bind();  // endpoint is live before any client dials
  std::thread server_thread([&server] { server.run(); });

  // --- 2. A client: handshake + one remote evaluation. -------------------
  svc::Client client;
  client.connect(server.config().address);

  svc::EvalRequest request;
  request.request_id = 1;
  request.spec = circuit::spec_by_name("S-1");
  request.sizing.init_points = 3;  // tiny budget to keep the demo quick
  request.sizing.iterations = 3;
  request.sizing.candidates = 32;
  request.topology_index = 5;

  svc::Reply reply = client.evaluate(request);
  const store::StoredRecord served = svc::decode_response_record(reply.response);
  std::printf("remote eval: topology #%llu, FoM=%.2f, %zu simulations\n",
              static_cast<unsigned long long>(request.topology_index),
              served.record.sized.best.fom, served.record.sized.simulations);

  // --- 3. Byte-identical to the in-process evaluation. -------------------
  const sizing::EvalContext ctx = request.eval_context();
  const core::EvalKeyContext keys(ctx, request.sizing);
  const circuit::Topology topology =
      circuit::Topology::from_index(request.topology_index);
  const core::EvalKey key = keys.key_for(topology);
  util::Rng sizing_rng(key.digest);  // the deterministic-sizing discipline
  core::EvalRecord local;
  local.topology = topology;
  local.sized = sizing::Sizer(ctx, request.sizing).size(topology, sizing_rng);
  std::printf("byte-identical to in-process: %s\n",
              store::encode_record(key, local) == reply.response.record_payload
                  ? "yes"
                  : "NO (bug!)");

  // --- 4. The second ask is served warm. ---------------------------------
  request.request_id = 2;
  reply = client.evaluate(request);
  std::printf("second ask served from: %s\n",
              reply.response.served_from == svc::ServedFrom::Memory
                  ? "memory cache"
                  : "elsewhere");

  // --- 5. Graceful drain (SIGTERM's path in intooa-served). --------------
  client.close();
  server.begin_drain();
  server_thread.join();
  const svc::ServerStats stats = server.stats();
  std::printf("drained: %llu requests, %llu ok (store persisted at %s)\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.responses_ok),
              store_path.c_str());
  return 0;
}
