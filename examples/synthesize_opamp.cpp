// Full topology-synthesis scenario: run INTO-OA against any Table-I spec
// (the workload of Sec. IV-A), then inspect the winner — performance,
// netlist, WL-GP structure attributions, and the transistor-level
// realization produced by the gm/Id mapping flow.
//
// Usage: synthesize_opamp [--spec S-3] [--iters 50] [--init 10]
//                         [--pool 200] [--seed 7]

#include <cstdio>
#include <fstream>

#include "circuit/behavioral.hpp"
#include "circuit/circuit_graph.hpp"
#include "core/interpret.hpp"
#include "circuit/design_io.hpp"
#include "core/optimizer.hpp"
#include "core/pareto.hpp"
#include "core/report.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "xtor/mapping.hpp"

int main(int argc, char** argv) {
  using namespace intooa;

  const util::Cli cli(argc, argv);
  cli.reject_unknown({"spec", "init", "iters", "pool", "seed"});
  util::set_log_level(util::LogLevel::Info);
  const std::string spec_name = cli.get("spec", "S-3");
  const circuit::Spec& spec = circuit::spec_by_name(spec_name);

  core::OptimizerConfig config;
  config.init_topologies =
      static_cast<std::size_t>(cli.get_int("init", 10));
  config.iterations = static_cast<std::size_t>(cli.get_int("iters", 50));
  config.candidates.pool_size =
      static_cast<std::size_t>(cli.get_int("pool", 200));

  std::printf("Synthesizing a three-stage op-amp for %s (Gain>%g dB, GBW>%g MHz, PM>%g deg, Power<%g uW, CL=%g pF)\n\n",
              spec.name.c_str(), spec.gain_db_min, spec.gbw_hz_min / 1e6,
              spec.pm_deg_min, spec.power_w_max / 1e-6,
              spec.load_cap / 1e-12);

  sizing::EvalContext ctx(spec);
  core::TopologyEvaluator evaluator(ctx);
  core::IntoOaOptimizer optimizer(config);
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 7)));
  const auto outcome = optimizer.run(evaluator, rng);

  if (!outcome.success) {
    std::printf("No feasible design found within the budget (%zu simulations).\n",
                evaluator.total_simulations());
    return 1;
  }

  std::printf("== Best design (after %zu simulations) ==\n",
              evaluator.total_simulations());
  std::printf("topology: %s\n", outcome.best_topology.to_string().c_str());
  const auto& p = outcome.best_point;
  std::printf("Gain=%.2f dB  GBW=%.3f MHz  PM=%.2f deg  Power=%.2f uW  FoM=%.1f\n\n",
              p.perf.gain_db, p.perf.gbw_hz / 1e6, p.perf.pm_deg,
              p.perf.power_w / 1e-6, p.fom);

  const auto net = circuit::build_behavioral(outcome.best_topology,
                                             outcome.best_values,
                                             ctx.behavioral);
  std::printf("netlist:\n%s\n", net.to_spice().c_str());

  std::printf("== Why this topology works (WL-GP gradients, Sec. III-C) ==\n");
  const auto impacts =
      core::slot_impacts(optimizer.objective_model(), outcome.best_topology, 1);
  for (const auto& impact : impacts) {
    if (impact.depth == 0) continue;  // report the in-context features
    std::printf("  %-30s dFoM-objective/dcount = %+.4f\n",
                impact.structure.c_str(), impact.gradient);
  }

  // Free multi-objective view: the FoM/power tradeoff over everything the
  // campaign already simulated.
  const auto front = core::pareto_front(evaluator.history(), spec);
  std::printf("\n== FoM/power Pareto front (%zu designs) ==\n", front.size());
  for (const auto& tp : front) {
    std::printf("  %8.2f uW -> FoM %8.1f  %s\n", tp.cost_axis / 1e-6,
                tp.gain_axis, tp.topology.to_string().c_str());
  }

  // Persist the winner for later flows (characterization, refinement).
  circuit::SavedDesign saved;
  saved.name = "best " + spec_name + " design (INTO-OA)";
  saved.spec_name = spec_name;
  saved.topology = outcome.best_topology;
  saved.values = outcome.best_values;
  saved.performance = outcome.best_point.perf;
  saved.fom = outcome.best_point.fom;
  const std::string out_path = "best_" + spec_name + ".json";
  circuit::save_design(saved, out_path);
  const std::string report_path = "best_" + spec_name + "_report.md";
  {
    std::ofstream report(report_path);
    report << core::explain_design(optimizer, outcome.best_topology,
                                   outcome.best_point, spec);
  }
  std::printf("\nsaved design to %s and explanation report to %s\n",
              out_path.c_str(), report_path.c_str());

  std::printf("\n== Transistor-level realization (gm/Id mapping) ==\n");
  const auto design = xtor::map_to_transistor(
      outcome.best_topology, outcome.best_values, ctx.behavioral);
  std::printf("%s", design.to_string().c_str());
  const auto xperf = xtor::evaluate_transistor(
      outcome.best_topology, outcome.best_values, ctx.behavioral);
  if (xperf.valid) {
    std::printf("transistor-level: Gain=%.2f dB  GBW=%.3f MHz  PM=%.2f deg  Power=%.2f uW  FoM=%.1f\n",
                xperf.gain_db, xperf.gbw_hz / 1e6, xperf.pm_deg,
                xperf.power_w / 1e-6, circuit::fom(xperf, spec.load_cap));
  }
  return 0;
}
