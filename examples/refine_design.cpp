// Refinement scenario (Sec. IV-C): take a trusted published topology
// (C1 [19] or C2 [20] from the library), find that it misses a target
// spec, and let the gradient-guided refiner fix it with a single-slot
// edit — resizing only the modified subcircuit, as a designer would.
//
// Usage: refine_design [--circuit C1|C2] [--spec S-5] [--iters 30] [--seed 3]

#include <cstdio>

#include "circuit/library.hpp"
#include "core/optimizer.hpp"
#include "core/refine.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

int main(int argc, char** argv) {
  using namespace intooa;

  const util::Cli cli(argc, argv);
  cli.reject_unknown({"spec", "circuit", "iters", "seed"});
  util::set_log_level(util::LogLevel::Info);
  const std::string circuit_name = cli.get("circuit", "C1");
  const std::string spec_name = cli.get("spec", "S-5");
  const circuit::Spec& spec = circuit::spec_by_name(spec_name);
  const circuit::Topology trusted = circuit::named_topology(circuit_name);

  std::printf("Trusted design %s: %s\n", circuit_name.c_str(),
              trusted.to_string().c_str());

  // Surrogates come from a prior optimization campaign on the same spec
  // (the paper reuses the WL-GPs trained during its S-5 runs).
  sizing::EvalContext ctx(spec);
  core::TopologyEvaluator evaluator(ctx);
  core::OptimizerConfig opt_config;
  opt_config.iterations = static_cast<std::size_t>(cli.get_int("iters", 30));
  core::IntoOaOptimizer optimizer(opt_config);
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 3)));
  std::printf("Training WL-GP surrogates with a %s campaign...\n",
              spec_name.c_str());
  optimizer.run(evaluator, rng);

  // Trusted sizing: the published design's component values, reproduced
  // here by a full sizing run on the unmodified topology.
  const sizing::Sizer sizer(ctx);
  const auto trusted_sized = sizer.size(trusted, rng);
  const auto& before = trusted_sized.best;
  std::printf("\n%s as published: Gain=%.2f dB GBW=%.2f MHz PM=%.2f deg Power=%.2f uW FoM=%.0f -> %s %s\n",
              circuit_name.c_str(), before.perf.gain_db,
              before.perf.gbw_hz / 1e6, before.perf.pm_deg,
              before.perf.power_w / 1e-6, before.fom,
              before.feasible ? "meets" : "MISSES", spec_name.c_str());

  core::RefineModels models;
  models.objective = &optimizer.objective_model();
  for (std::size_t i = 0; i < circuit::Spec::kConstraintCount; ++i) {
    models.constraints[i] = &optimizer.constraint_model(i);
  }
  const core::Refiner refiner(ctx);
  const auto result =
      refiner.refine(trusted, trusted_sized.best_values, models, rng);

  std::printf("\nRefinement: slot %s, %s -> %s (%zu simulations, %zu attempt(s))\n",
              circuit::slot_name(result.changed_slot).c_str(),
              circuit::short_name(result.old_type).c_str(),
              circuit::short_name(result.new_type).c_str(),
              result.simulations, result.attempts.size());
  const auto& after = result.refined_point;
  std::printf("refined: Gain=%.2f dB GBW=%.2f MHz PM=%.2f deg Power=%.2f uW FoM=%.0f -> %s %s\n",
              after.perf.gain_db, after.perf.gbw_hz / 1e6, after.perf.pm_deg,
              after.perf.power_w / 1e-6, after.fom,
              after.feasible ? "meets" : "still misses", spec_name.c_str());
  std::printf("refined topology: %s\n", result.refined.to_string().c_str());
  std::printf("(every other subcircuit and all their sizes are untouched)\n");
  return result.success ? 0 : 1;
}
