// Full characterization of one op-amp design across every analysis the
// simulator offers — the datasheet view a designer wants before trusting
// a synthesized or refined topology:
//   * AC:        open-loop gain, GBW, phase margin, pole locations
//   * Transient: unity-follower step response, settling time, overshoot
//   * Noise:     output/input-referred spectral density, integrated RMS
//
// Usage: characterize_design [--topology NMC|C1|C2|R1|R2] [--cl-pf 10]

#include <cstdio>

#include "circuit/behavioral.hpp"
#include "circuit/library.hpp"
#include "sim/metrics.hpp"
#include "sim/mna.hpp"
#include "sim/noise.hpp"
#include "sim/transient.hpp"
#include "sizing/sizer.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace intooa;

  const util::Cli cli(argc, argv);
  cli.reject_unknown({"cl-pf", "topology"});
  const std::string name = cli.get("topology", "NMC");
  const circuit::Topology topology = circuit::named_topology(name);

  circuit::BehavioralConfig cfg;
  cfg.load_cap = cli.get_double("cl-pf", 10.0) * 1e-12;

  // Size the design for S-1-style constraints so the characterization is
  // of a sensible operating point.
  circuit::Spec spec = circuit::spec_by_name("S-1");
  spec.load_cap = cfg.load_cap;
  sizing::EvalContext ctx(spec, cfg);
  util::Rng rng(9);
  const sizing::Sizer sizer(ctx);
  const auto sized = sizer.size(topology, rng);

  std::printf("== %s, auto-sized (feasible=%s) ==\n", name.c_str(),
              sized.best.feasible ? "yes" : "no");
  const auto schema = circuit::make_schema(topology, cfg);
  for (std::size_t i = 0; i < schema.size(); ++i) {
    std::printf("  %-12s = %s\n", schema.params[i].name.c_str(),
                util::fmt_si(sized.best_values[i]).c_str());
  }

  // --- AC analysis -------------------------------------------------------
  const auto open_loop =
      circuit::build_behavioral(topology, sized.best_values, cfg);
  const auto& perf = sized.best.perf;
  std::printf("\n-- AC (open loop) --\n");
  std::printf("Gain   : %.2f dB\nGBW    : %.3f MHz\nPM     : %.2f deg\nPower  : %.2f uW\nFoM    : %.1f\n",
              perf.gain_db, perf.gbw_hz / 1e6, perf.pm_deg,
              perf.power_w / 1e-6, sized.best.fom);
  const sim::AcSolver solver(open_loop);
  std::printf("poles  :");
  for (const auto& p : solver.poles()) {
    if (std::abs(p) < 1e13) {
      std::printf(" (%.3g%+.3gj)", p.real() / 6.2832, p.imag() / 6.2832);
    }
  }
  std::printf("  [Hz]\n");

  // --- Transient: unity-gain follower step ------------------------------
  const auto follower =
      circuit::build_behavioral(topology, sized.best_values, cfg,
                                circuit::InputDrive::UnityFollower);
  sim::TransientOptions tran;
  tran.t_stop = 400.0 / std::max(perf.gbw_hz, 1e4);  // ~60 closed-loop taus
  tran.dt = tran.t_stop / 20000.0;
  const auto wave = sim::run_transient(follower, "vout", tran);
  const auto step = sim::step_metrics(wave, 0.01);
  std::printf("\n-- Transient (unity follower, 1 V step) --\n");
  std::printf("settling (1%%) : %s  %s\novershoot     : %.2f %%\n",
              util::fmt_si(step.settling_time_s).c_str(),
              step.settled ? "s" : "s (not settled within window)",
              100.0 * step.overshoot);

  // --- Noise -------------------------------------------------------------
  sim::NoiseOptions noise_options;
  noise_options.f_hi_hz = std::max(10.0 * perf.gbw_hz, 1e6);
  const auto noise = sim::run_noise(open_loop, "vout", noise_options);
  std::printf("\n-- Noise --\n");
  std::printf("output PSD at 1 kHz : %.3g V^2/Hz\n",
              sim::output_noise_psd(open_loop, "vout", 1e3, noise_options));
  std::printf("integrated output   : %.3g uVrms (%.1f Hz .. %.3g Hz)\n",
              noise.rms_output_v * 1e6, noise_options.f_lo_hz,
              noise_options.f_hi_hz);
  if (!noise.input_psd.empty() && noise.input_psd.front() > 0.0) {
    std::printf("input-referred at %.0f Hz : %.3g nV/rtHz\n",
                noise.freqs_hz.front(),
                std::sqrt(noise.input_psd.front()) * 1e9);
  }
  return 0;
}
