// Quickstart: the smallest useful tour of the library.
//   1. Describe an op-amp topology (the classic nested-Miller amp).
//   2. Build its behavior-level netlist and simulate it (AC analysis).
//   3. Size it automatically against a Table-I spec with the BO sizing loop.
//   4. Run a short INTO-OA topology-optimization campaign.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "circuit/library.hpp"
#include "core/optimizer.hpp"
#include "sim/metrics.hpp"
#include "sizing/sizer.hpp"

int main() {
  using namespace intooa;

  // --- 1. A topology is five subcircuit choices. -------------------------
  const circuit::Topology nmc = circuit::named_topology("NMC");
  std::printf("NMC topology: %s\n\n", nmc.to_string().c_str());

  // --- 2. Netlist + AC simulation at hand-picked sizes. ------------------
  circuit::BehavioralConfig cfg;  // 1.8 V supply, 10 pF load by default
  const std::vector<double> sizes = {10e-6, 100e-6, 2e-3, 2e-12};
  const circuit::Netlist net = circuit::build_behavioral(nmc, sizes, cfg);
  const circuit::Performance perf = sim::evaluate_opamp(net, cfg.vdd);
  std::printf("hand-sized NMC: Gain=%.1f dB, GBW=%.2f MHz, PM=%.1f deg, Power=%.1f uW\n\n",
              perf.gain_db, perf.gbw_hz / 1e6, perf.pm_deg,
              perf.power_w / 1e-6);

  // --- 3. Automatic sizing against spec S-1 (wEI Bayesian optimization). -
  const circuit::Spec& spec = circuit::spec_by_name("S-1");
  sizing::EvalContext ctx(spec);
  util::Rng rng(1);
  const sizing::Sizer sizer(ctx);  // paper protocol: 10 init + 30 iterations
  const sizing::SizedResult sized = sizer.size(nmc, rng);
  std::printf("auto-sized NMC for %s: FoM=%.1f, feasible=%s (%zu simulations)\n\n",
              spec.name.c_str(), sized.best.fom,
              sized.best.feasible ? "yes" : "no", sized.simulations);

  // --- 4. Topology optimization: Algorithm 1 at reduced budget. ----------
  core::OptimizerConfig config;
  config.init_topologies = 6;
  config.iterations = 10;  // paper uses 50; this keeps the demo fast
  config.candidates.pool_size = 100;
  core::TopologyEvaluator evaluator(ctx);
  core::IntoOaOptimizer optimizer(config);
  const core::OptimizationOutcome outcome = optimizer.run(evaluator, rng);

  std::printf("INTO-OA explored %zu topologies (%zu simulations)\n",
              evaluator.history().size(), evaluator.total_simulations());
  if (outcome.success) {
    std::printf("best design: %s\n  FoM=%.1f  Gain=%.1f dB  GBW=%.2f MHz  PM=%.1f deg  Power=%.1f uW\n",
                outcome.best_topology.to_string().c_str(),
                outcome.best_point.fom, outcome.best_point.perf.gain_db,
                outcome.best_point.perf.gbw_hz / 1e6,
                outcome.best_point.perf.pm_deg,
                outcome.best_point.perf.power_w / 1e-6);
  } else {
    std::printf("no feasible design at this reduced budget; increase iterations\n");
  }
  return 0;
}
