// Interpretability walkthrough (Figs. 3-4 and Sec. III-C): how a topology
// becomes a circuit graph, how the WL kernel extracts readable structural
// features from it, and how WL-GP gradients attribute performance to
// specific subcircuit structures.
//
// Usage: explain_topology [--topology C1] [--spec S-1] [--iters 20]

#include <cstdio>

#include "circuit/circuit_graph.hpp"
#include "circuit/library.hpp"
#include "core/interpret.hpp"
#include "core/optimizer.hpp"
#include "graph/wl.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

int main(int argc, char** argv) {
  using namespace intooa;

  const util::Cli cli(argc, argv);
  cli.reject_unknown({"spec", "topology", "iters"});
  const std::string name = cli.get("topology", "C1");
  const circuit::Topology topology = circuit::named_topology(name);

  // --- Fig. 3: the circuit-graph representation. --------------------------
  std::printf("Topology %s: %s\n\n", name.c_str(),
              topology.to_string().c_str());
  const graph::Graph g = circuit::build_circuit_graph(topology);
  std::printf("circuit graph (%zu nodes, %zu edges):\n%s\n", g.node_count(),
              g.edge_count(), g.to_string().c_str());

  // --- Fig. 4: WL feature extraction at h = 0 and h = 1. ------------------
  graph::WlFeaturizer featurizer(6);
  for (int h : {0, 1}) {
    const auto phi = featurizer.features(g, h);
    std::printf("WL features at h = %d (%zu distinct structures):\n", h,
                phi.nnz());
    for (const auto& [id, count] : phi.entries()) {
      std::printf("  phi[%2zu] = %g   %s\n", id, count,
                  featurizer.provenance(id).c_str());
    }
    std::printf("\n");
  }

  // --- Sec. III-C: gradients of a trained WL-GP. ---------------------------
  const std::string spec_name = cli.get("spec", "S-1");
  std::printf("Training WL-GPs with a short %s campaign to obtain gradients...\n",
              spec_name.c_str());
  util::set_log_level(util::LogLevel::Warn);
  sizing::EvalContext ctx(circuit::spec_by_name(spec_name));
  core::TopologyEvaluator evaluator(ctx);
  core::OptimizerConfig config;
  config.iterations = static_cast<std::size_t>(cli.get_int("iters", 20));
  core::IntoOaOptimizer optimizer(config);
  util::Rng rng(5);
  optimizer.run(evaluator, rng);

  const auto& names = circuit::Spec::constraint_names();
  for (std::size_t m = 0; m < names.size(); ++m) {
    const auto& model = optimizer.constraint_model(m);
    std::printf("\n%s margin model (MLE chose h = %d):\n", names[m].c_str(),
                model.chosen_h());
    for (const auto& impact : core::slot_impacts(model, topology, 1)) {
      if (impact.depth == 0) continue;
      std::printf("  %-32s d(margin)/d(count) = %+.4f  (%s)\n",
                  impact.structure.c_str(), impact.gradient,
                  impact.gradient < 0 ? "helps" : "hurts");
    }
  }
  std::printf(
      "\n(margins are lower-is-better, so a negative gradient means the\n"
      "structure pushes the design toward satisfying that constraint)\n");
  return 0;
}
