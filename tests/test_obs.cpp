// Tests for the observability subsystem (src/obs): JSON model round trips,
// exact concurrent counter/histogram accounting under the thread pool,
// balanced Chrome-trace span nesting (parsed back from the emitted file),
// metrics snapshot <-> JSON round trip, the disabled-path overhead contract,
// and the determinism guarantee that tracing does not perturb campaign
// results for any thread count.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/campaign.hpp"
#include "obs/obs.hpp"
#include "runtime/executor.hpp"
#include "runtime/thread_pool.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace {

using namespace intooa;

std::string temp_file(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ---------------------------------------------------------------------------
// Json

TEST(Json, BuildAndDump) {
  obs::Json doc = obs::Json::object();
  doc["name"] = obs::Json("gp.fit");
  doc["count"] = obs::Json(42);
  doc["ok"] = obs::Json(true);
  doc["none"] = obs::Json(nullptr);
  obs::Json arr = obs::Json::array();
  arr.push_back(obs::Json(1.5));
  arr.push_back(obs::Json("two"));
  doc["items"] = arr;

  const std::string text = doc.dump();
  const obs::Json back = obs::Json::parse(text);
  EXPECT_EQ(back, doc);
  EXPECT_EQ(back.at("count").as_number(), 42.0);
  EXPECT_EQ(back.at("items").items().size(), 2u);
  EXPECT_TRUE(back.at("none").is_null());
}

TEST(Json, ParseEscapesAndNumbers) {
  const obs::Json j =
      obs::Json::parse(R"({"s":"a\"b\\c\n\tA","n":-1.25e2,"z":0})");
  EXPECT_EQ(j.at("s").as_string(), "a\"b\\c\n\tA");
  EXPECT_DOUBLE_EQ(j.at("n").as_number(), -125.0);
  EXPECT_DOUBLE_EQ(j.at("z").as_number(), 0.0);
  // Round trip through dump preserves the escapes.
  EXPECT_EQ(obs::Json::parse(j.dump()), j);
}

TEST(Json, ParseRejectsMalformed) {
  EXPECT_THROW(obs::Json::parse("{"), std::runtime_error);
  EXPECT_THROW(obs::Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(obs::Json::parse("{\"a\":1} trailing"), std::runtime_error);
  EXPECT_THROW(obs::Json::parse("nul"), std::runtime_error);
  EXPECT_THROW(obs::Json::parse(""), std::runtime_error);
}

TEST(Json, PrettyDumpParsesBack) {
  obs::Json doc = obs::Json::object();
  doc["a"] = obs::Json(1);
  obs::Json nested = obs::Json::object();
  nested["b"] = obs::Json::array();
  doc["n"] = nested;
  const std::string pretty = doc.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(obs::Json::parse(pretty), doc);
}

// Exhaustive single-byte fuzz of the string escaper: for every byte value,
// dump() must produce output our own parser accepts. ASCII bytes must
// round-trip exactly; bytes >= 0x80 are not valid single-byte UTF-8 and
// must come back as U+FFFD instead of leaking raw bytes into the output
// (which used to produce invalid JSON).
TEST(Json, EscapingIsValidForAll256SingleByteStrings) {
  const std::string replacement = "\xEF\xBF\xBD";
  for (int byte = 0; byte < 256; ++byte) {
    const std::string input(1, static_cast<char>(byte));
    const std::string text = obs::Json(input).dump();
    obs::Json back;
    ASSERT_NO_THROW(back = obs::Json::parse(text)) << "byte " << byte;
    if (byte < 0x80) {
      EXPECT_EQ(back.as_string(), input) << "byte " << byte;
    } else {
      EXPECT_EQ(back.as_string(), replacement) << "byte " << byte;
    }
  }
}

TEST(Json, EscapingPassesValidUtf8AndReplacesMalformed) {
  // Well-formed 2-, 3- and 4-byte sequences survive verbatim.
  const std::string valid = "caf\xC3\xA9 \xE2\x82\xAC \xF0\x9F\x99\x82";
  EXPECT_EQ(obs::Json::parse(obs::Json(valid).dump()).as_string(), valid);
  // Overlong encoding of '/', a bare continuation byte, a UTF-16 surrogate
  // and a truncated lead are each replaced with U+FFFD per bad byte run.
  const std::string replacement = "\xEF\xBF\xBD";
  for (const std::string bad :
       {std::string("\xC0\xAF"), std::string("\x80"),
        std::string("\xED\xA0\x80"), std::string("\xF0\x9F")}) {
    const std::string out = obs::Json::parse(obs::Json(bad).dump()).as_string();
    // Nothing of the malformed input survives: the output is nothing but
    // whole replacement characters (one per rejected byte).
    ASSERT_EQ(out.size() % replacement.size(), 0u);
    for (std::size_t i = 0; i < out.size(); i += replacement.size()) {
      EXPECT_EQ(out.substr(i, replacement.size()), replacement);
    }
  }
}

// ---------------------------------------------------------------------------
// Metrics

TEST(Metrics, ConcurrentCounterSumsExactly) {
  obs::set_enabled(true);
  obs::Counter& counter = obs::registry().counter("test.obs.counter");
  counter.reset();
  constexpr int kTasks = 64;
  constexpr int kAddsPerTask = 1000;
  {
    runtime::ThreadPool pool(4);
    std::vector<std::future<void>> futures;
    for (int t = 0; t < kTasks; ++t) {
      futures.push_back(pool.submit([&counter] {
        for (int i = 0; i < kAddsPerTask; ++i) counter.add();
      }));
    }
    for (auto& f : futures) f.get();
  }
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kTasks) * kAddsPerTask);
}

TEST(Metrics, ConcurrentHistogramSumsExactly) {
  obs::set_enabled(true);
  obs::Histogram& hist = obs::registry().histogram("test.obs.hist");
  hist.reset();
  constexpr int kTasks = 32;
  constexpr int kSamplesPerTask = 500;
  {
    runtime::ThreadPool pool(4);
    std::vector<std::future<void>> futures;
    for (int t = 0; t < kTasks; ++t) {
      futures.push_back(pool.submit([&hist, t] {
        for (int i = 0; i < kSamplesPerTask; ++i) {
          hist.record(static_cast<std::uint64_t>(t + 1));
        }
      }));
    }
    for (auto& f : futures) f.get();
  }
  const obs::HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count,
            static_cast<std::uint64_t>(kTasks) * kSamplesPerTask);
  // Sum of t+1 for t in [0, kTasks), each kSamplesPerTask times.
  const std::uint64_t expected_sum = static_cast<std::uint64_t>(kTasks) *
                                     (kTasks + 1) / 2 * kSamplesPerTask;
  EXPECT_EQ(snap.sum, expected_sum);
  EXPECT_EQ(snap.min, 1u);
  EXPECT_EQ(snap.max, static_cast<std::uint64_t>(kTasks));
  std::uint64_t bucket_total = 0;
  for (const auto& [bucket, n] : snap.buckets) bucket_total += n;
  EXPECT_EQ(bucket_total, snap.count);
}

TEST(Metrics, HistogramBucketSemantics) {
  obs::Histogram& hist = obs::registry().histogram("test.obs.buckets");
  hist.reset();
  hist.record(0);     // bucket 0
  hist.record(1);     // bucket 1: [1, 2)
  hist.record(2);     // bucket 2: [2, 4)
  hist.record(3);     // bucket 2
  hist.record(1024);  // bucket 11: [1024, 2048)
  const obs::HistogramSnapshot snap = hist.snapshot();
  std::map<int, std::uint64_t> by_bucket(snap.buckets.begin(),
                                         snap.buckets.end());
  EXPECT_EQ(by_bucket[0], 1u);
  EXPECT_EQ(by_bucket[1], 1u);
  EXPECT_EQ(by_bucket[2], 2u);
  EXPECT_EQ(by_bucket[11], 1u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 1024u);
  EXPECT_DOUBLE_EQ(snap.mean(), (0.0 + 1 + 2 + 3 + 1024) / 5.0);
}

TEST(Metrics, QuantileOfEmptyAndSingleSampleHistograms) {
  obs::set_enabled(true);
  obs::Histogram& hist = obs::registry().histogram("test.obs.quantile_edge");
  hist.reset();
  // Empty histogram: every quantile is 0.
  EXPECT_DOUBLE_EQ(hist.snapshot().quantile(0.5), 0.0);
  // Single sample: every quantile is exactly that sample (the min==max
  // clamp overrides the bucket interpolation).
  hist.record(777);
  const obs::HistogramSnapshot one = hist.snapshot();
  EXPECT_DOUBLE_EQ(one.quantile(0.0), 777.0);
  EXPECT_DOUBLE_EQ(one.quantile(0.5), 777.0);
  EXPECT_DOUBLE_EQ(one.quantile(0.99), 777.0);
  EXPECT_DOUBLE_EQ(one.quantile(1.0), 777.0);
}

TEST(Metrics, QuantileExactBoundaries) {
  obs::set_enabled(true);
  obs::Histogram& hist = obs::registry().histogram("test.obs.quantile_bound");
  hist.reset();
  hist.record(1);
  hist.record(64);
  hist.record(4096);
  const obs::HistogramSnapshot snap = hist.snapshot();
  // q <= 0 pins to the exact minimum, q >= 1 to the exact maximum,
  // regardless of bucket geometry.
  EXPECT_DOUBLE_EQ(snap.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(snap.quantile(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 4096.0);
  EXPECT_DOUBLE_EQ(snap.quantile(2.0), 4096.0);
  // Interior quantiles are monotone and stay within [min, max].
  double prev = snap.quantile(0.0);
  for (double q = 0.1; q < 1.0; q += 0.1) {
    const double v = snap.quantile(q);
    EXPECT_GE(v, prev);
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 4096.0);
    prev = v;
  }
}

TEST(Metrics, QuantileTracksTrueQuantilesWithinOneBucket) {
  obs::set_enabled(true);
  obs::Histogram& hist = obs::registry().histogram("test.obs.quantile_rand");
  hist.reset();
  util::Rng rng(20260809);
  std::vector<std::uint64_t> samples;
  samples.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t v =
        1 + static_cast<std::uint64_t>(rng.uniform(0.0, 1048576.0));
    samples.push_back(v);
    hist.record(v);
  }
  std::sort(samples.begin(), samples.end());
  const obs::HistogramSnapshot snap = hist.snapshot();
  for (const double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double rank = q * static_cast<double>(samples.size());
    const std::size_t index = std::min(
        samples.size() - 1,
        static_cast<std::size_t>(std::max(0.0, std::ceil(rank) - 1.0)));
    const double truth = static_cast<double>(samples[index]);
    const double estimate = snap.quantile(q);
    // The estimate may land anywhere inside the log2 bucket holding the
    // true value, so the error bound is that bucket's width.
    const double hi = std::pow(2.0, std::ceil(std::log2(truth + 0.5)));
    EXPECT_NEAR(estimate, truth, hi / 2.0) << "q=" << q;
  }
}

TEST(Metrics, GaugeSetMaxIsHighWaterMark) {
  obs::Gauge& gauge = obs::registry().gauge("test.obs.gauge");
  gauge.reset();
  gauge.set_max(3.0);
  gauge.set_max(7.0);
  gauge.set_max(5.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 7.0);
  gauge.set(2.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.0);
}

TEST(Metrics, RegistryReturnsStableReferences) {
  obs::Counter& a = obs::registry().counter("test.obs.stable");
  obs::Counter& b = obs::registry().counter("test.obs.stable");
  EXPECT_EQ(&a, &b);
  obs::Histogram& h =
      obs::registry().histogram("test.obs.stable_ns", obs::Unit::Nanoseconds);
  // A later lookup without a unit still finds the ns histogram.
  EXPECT_EQ(&obs::registry().histogram("test.obs.stable_ns"), &h);
  EXPECT_EQ(h.unit(), obs::Unit::Nanoseconds);
}

TEST(Metrics, SnapshotJsonRoundTrip) {
  obs::registry().counter("test.obs.rt_counter").reset();
  obs::registry().counter("test.obs.rt_counter").add(123);
  obs::registry().gauge("test.obs.rt_gauge").set(4.5);
  obs::Histogram& hist =
      obs::registry().histogram("test.obs.rt_hist", obs::Unit::Nanoseconds);
  hist.reset();
  hist.record(10);
  hist.record(2000);

  const obs::MetricsSnapshot snap = obs::registry().snapshot();
  ASSERT_TRUE(snap.counters.count("test.obs.rt_counter"));
  EXPECT_EQ(snap.counters.at("test.obs.rt_counter"), 123u);
  ASSERT_TRUE(snap.histograms.count("test.obs.rt_hist"));
  EXPECT_EQ(snap.histograms.at("test.obs.rt_hist").unit, "ns");

  const obs::MetricsSnapshot back =
      obs::MetricsSnapshot::from_json(snap.to_json());
  EXPECT_EQ(back, snap);

  // The full report document (with derived stats on top) parses back too.
  const obs::Json report = obs::metrics_report_json(snap, 1.5);
  EXPECT_DOUBLE_EQ(report.at("elapsed_seconds").as_number(), 1.5);
  EXPECT_TRUE(report.contains("derived"));
  EXPECT_EQ(obs::MetricsSnapshot::from_json(report), snap);
}

TEST(Metrics, DerivedCacheHitRate) {
  obs::registry().counter("evaluator.cache_hit").reset();
  obs::registry().counter("evaluator.cache_miss").reset();
  obs::registry().counter("evaluator.cache_hit").add(3);
  obs::registry().counter("evaluator.cache_miss").add(1);
  const obs::DerivedStats stats =
      obs::derive_stats(obs::registry().snapshot(), 2.0);
  EXPECT_DOUBLE_EQ(stats.cache_hit_rate, 0.75);
  EXPECT_DOUBLE_EQ(stats.elapsed_seconds, 2.0);
}

TEST(Metrics, DisabledPathIsCheap) {
  obs::set_enabled(false);
  obs::Counter& counter = obs::registry().counter("test.obs.disabled");
  counter.reset();
  constexpr int kOps = 1'000'000;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kOps; ++i) {
    counter.add();
    INTOOA_SPAN("test.obs.disabled_span");
  }
  const double ns_per_op =
      std::chrono::duration<double, std::nano>(
          std::chrono::steady_clock::now() - start)
          .count() /
      kOps;
  obs::set_enabled(true);
  EXPECT_EQ(counter.value(), 0u);  // nothing was recorded
  EXPECT_TRUE(
      obs::registry().histogram("test.obs.disabled_span").snapshot().count ==
      0u);
  // Generous bound (sanitizer builds are slow): the disabled path is a
  // relaxed load + branch, three orders of magnitude below this.
  EXPECT_LT(ns_per_op, 1000.0);
}

// ---------------------------------------------------------------------------
// Prometheus exposition

TEST(Prometheus, NameSanitizationAndPrefix) {
  EXPECT_EQ(obs::prometheus_name("svc.request_ns"), "intooa_svc_request_ns");
  EXPECT_EQ(obs::prometheus_name("gp.fit-time"), "intooa_gp_fit_time");
  EXPECT_EQ(obs::prometheus_name("a:b"), "intooa_a:b");
}

TEST(Prometheus, RenderHasHelpTypePairsAndNoDuplicateSeries) {
  obs::MetricsSnapshot snap;
  snap.counters["svc.requests"] = 7;
  snap.counters["svc.connections"] = 3;  // counter...
  snap.gauges["svc.connections"] = 1.0;  // ...and gauge of the same name
  obs::HistogramSnapshot hist;
  hist.unit = "ns";
  hist.count = 2;
  hist.sum = 1030;
  hist.min = 6;
  hist.max = 1024;
  hist.buckets = {{3, 1}, {11, 1}};
  snap.histograms["svc.request_ns"] = hist;
  snap.histograms["svc.empty_ns"] = obs::HistogramSnapshot{};

  const std::string text = obs::render_prometheus(snap);
  // Counters get the _total suffix, which also keeps the counter/gauge
  // name collision above from producing duplicate series.
  EXPECT_NE(text.find("# TYPE intooa_svc_connections_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE intooa_svc_connections gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("intooa_svc_requests_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE intooa_svc_request_ns summary\n"),
            std::string::npos);
  EXPECT_NE(text.find("intooa_svc_request_ns{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("intooa_svc_request_ns_count 2\n"), std::string::npos);
  // An empty histogram still exposes _sum/_count but no quantile samples.
  EXPECT_NE(text.find("intooa_svc_empty_ns_count 0\n"), std::string::npos);
  EXPECT_EQ(text.find("intooa_svc_empty_ns{"), std::string::npos);

  // Structural sweep: every # HELP is followed by a # TYPE for the same
  // series, and no series name is declared twice.
  std::set<std::string> declared;
  std::istringstream lines(text);
  std::string line, pending_help;
  while (std::getline(lines, line)) {
    if (line.rfind("# HELP ", 0) == 0) {
      pending_help = line.substr(7, line.find(' ', 7) - 7);
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::string series = line.substr(7, line.find(' ', 7) - 7);
      EXPECT_EQ(series, pending_help) << "TYPE without matching HELP";
      EXPECT_TRUE(declared.insert(series).second)
          << "duplicate series " << series;
    }
  }
  EXPECT_EQ(declared.size(), 5u);
}

// ---------------------------------------------------------------------------
// Spans and traces

TEST(Trace, SpanNestingProducesBalancedTrace) {
  obs::set_enabled(true);
  obs::start_trace();
  {
    INTOOA_SPAN("test.outer");
    {
      INTOOA_SPAN("test.inner");
      volatile int sink = 0;
      for (int i = 0; i < 1000; ++i) sink = sink + i;
    }
  }
  EXPECT_EQ(obs::trace_event_count(), 2u);

  const std::string path = temp_file("intooa_test_trace.json");
  ASSERT_TRUE(obs::write_trace(path));
  const obs::Json trace = obs::Json::parse(slurp(path));
  std::filesystem::remove(path);

  ASSERT_TRUE(trace.contains("traceEvents"));
  const obs::Json* outer = nullptr;
  const obs::Json* inner = nullptr;
  for (const obs::Json& event : trace.at("traceEvents").items()) {
    if (event.at("ph").as_string() != "X") continue;  // skip metadata
    EXPECT_TRUE(event.contains("tid"));
    EXPECT_TRUE(event.contains("ts"));
    EXPECT_TRUE(event.contains("dur"));
    if (event.at("name").as_string() == "test.outer") outer = &event;
    if (event.at("name").as_string() == "test.inner") inner = &event;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // Same thread row; the inner span is contained in the outer one.
  EXPECT_EQ(outer->at("tid").as_number(), inner->at("tid").as_number());
  const double outer_start = outer->at("ts").as_number();
  const double outer_end = outer_start + outer->at("dur").as_number();
  const double inner_start = inner->at("ts").as_number();
  const double inner_end = inner_start + inner->at("dur").as_number();
  EXPECT_GE(inner_start, outer_start);
  EXPECT_LE(inner_end, outer_end);

  // Both spans also fed their duration histograms.
  EXPECT_EQ(obs::registry().histogram("test.outer").snapshot().count, 1u);
  EXPECT_EQ(obs::registry().histogram("test.outer").unit(),
            obs::Unit::Nanoseconds);
}

TEST(Trace, CapacityBoundDropsAndCounts) {
  obs::set_enabled(true);
  obs::start_trace(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    INTOOA_SPAN("test.capped");
  }
  EXPECT_EQ(obs::trace_event_count(), 4u);
  EXPECT_EQ(obs::trace_dropped_count(), 6u);

  const std::string path = temp_file("intooa_test_trace_capped.json");
  ASSERT_TRUE(obs::write_trace(path));
  const obs::Json trace = obs::Json::parse(slurp(path));
  std::filesystem::remove(path);
  ASSERT_TRUE(trace.contains("otherData"));
  EXPECT_DOUBLE_EQ(trace.at("otherData").at("dropped_events").as_number(),
                   6.0);
}

TEST(Trace, DisabledTraceBuffersNothing) {
  obs::stop_trace();
  const std::size_t before = obs::trace_event_count();
  {
    INTOOA_SPAN("test.untraced");
  }
  EXPECT_EQ(obs::trace_event_count(), before);
}

// ---------------------------------------------------------------------------
// Structured logging

TEST(Log, ParseLogLevel) {
  using util::LogLevel;
  EXPECT_EQ(util::parse_log_level("debug"), LogLevel::Debug);
  EXPECT_EQ(util::parse_log_level("info"), LogLevel::Info);
  EXPECT_EQ(util::parse_log_level("warn"), LogLevel::Warn);
  EXPECT_EQ(util::parse_log_level("error"), LogLevel::Error);
  EXPECT_EQ(util::parse_log_level("off"), LogLevel::Off);
  EXPECT_FALSE(util::parse_log_level("verbose").has_value());
}

TEST(Log, ThreadOrdinalsAreDistinct) {
  const int self = util::thread_ordinal();
  EXPECT_EQ(self, util::thread_ordinal());  // stable within a thread
  std::atomic<int> worker_ordinal{-1};
  {
    runtime::ThreadPool pool(1);
    pool.submit([&worker_ordinal] {
        worker_ordinal = util::thread_ordinal();
      }).get();
  }
  EXPECT_GE(worker_ordinal.load(), 0);
  EXPECT_NE(worker_ordinal.load(), self);
}

TEST(Log, StructuredFieldsCompile) {
  // Field rendering goes to stderr; this exercises the API surface only.
  const util::LogLevel saved = util::log_level();
  util::set_log_level(util::LogLevel::Off);
  util::log_info("structured", {{"runs", 3}, {"rate", 0.5},
                                {"name", "fig5"}, {"ok", true}});
  util::log_warn("plain message");
  util::set_log_level(saved);
}

// ---------------------------------------------------------------------------
// Telemetry wiring

TEST(Telemetry, FromCliParsesFlags) {
  const util::LogLevel saved = util::log_level();
  const char* argv[] = {"bench", "--trace", "t.json", "--metrics", "m.json",
                        "--log-level", "error"};
  const util::Cli cli(7, argv);
  const obs::TelemetryOptions options =
      obs::TelemetryOptions::from_cli(cli, util::LogLevel::Info);
  EXPECT_EQ(options.trace_path, "t.json");
  EXPECT_EQ(options.metrics_path, "m.json");
  EXPECT_EQ(util::log_level(), util::LogLevel::Error);

  const char* argv2[] = {"bench"};
  const util::Cli cli2(1, argv2);
  obs::TelemetryOptions::from_cli(cli2, util::LogLevel::Info);
  EXPECT_EQ(util::log_level(), util::LogLevel::Info);  // default applied

  const char* argv3[] = {"bench", "--log-level", "loud"};
  const util::Cli cli3(3, argv3);
  EXPECT_THROW(obs::TelemetryOptions::from_cli(cli3, util::LogLevel::Info),
               std::invalid_argument);
  util::set_log_level(saved);
}

TEST(Telemetry, FinalizeWritesTraceAndMetrics) {
  const util::LogLevel saved = util::log_level();
  obs::TelemetryOptions options;
  options.trace_path = temp_file("intooa_test_telemetry_trace.json");
  options.metrics_path = temp_file("intooa_test_telemetry_metrics.json");
  {
    obs::BenchTelemetry telemetry(options);
    {
      INTOOA_SPAN("test.telemetry_span");
    }
    telemetry.finalize();
    EXPECT_GE(telemetry.elapsed_seconds(), 0.0);
  }
  const obs::Json trace = obs::Json::parse(slurp(options.trace_path));
  EXPECT_TRUE(trace.contains("traceEvents"));
  const obs::Json metrics = obs::Json::parse(slurp(options.metrics_path));
  EXPECT_TRUE(metrics.contains("histograms"));
  EXPECT_TRUE(
      metrics.at("histograms").contains("test.telemetry_span"));
  std::filesystem::remove(options.trace_path);
  std::filesystem::remove(options.metrics_path);
  util::set_log_level(saved);
}

TEST(Telemetry, FinalizeActiveFlushesSidecarsWithoutUnwinding) {
  const util::LogLevel saved = util::log_level();
  obs::TelemetryOptions options;
  options.trace_path = temp_file("intooa_test_finalize_active_trace.json");
  options.metrics_path =
      temp_file("intooa_test_finalize_active_metrics.json");
  std::filesystem::remove(options.trace_path);
  std::filesystem::remove(options.metrics_path);
  {
    obs::BenchTelemetry telemetry(options);
    {
      INTOOA_SPAN("test.finalize_active_span");
    }
    // The drain/signal exit path: flush without reaching the destructor.
    obs::finalize_active_telemetry();
    EXPECT_TRUE(std::filesystem::exists(options.trace_path));
    EXPECT_TRUE(std::filesystem::exists(options.metrics_path));
    const obs::Json metrics = obs::Json::parse(slurp(options.metrics_path));
    EXPECT_TRUE(metrics.at("histograms")
                    .contains("test.finalize_active_span"));
    obs::finalize_active_telemetry();  // idempotent with a live session
  }
  obs::finalize_active_telemetry();  // and with no session at all
  std::filesystem::remove(options.trace_path);
  std::filesystem::remove(options.metrics_path);
  util::set_log_level(saved);
}

TEST(Telemetry, RenderReportMentionsPhases) {
  obs::registry().histogram("test.phase_a", obs::Unit::Nanoseconds)
      .record(5'000'000);
  obs::registry().counter("test.report_counter").add(7);
  const std::string report =
      obs::render_report(obs::registry().snapshot(), 1.0);
  EXPECT_NE(report.find("test.phase_a"), std::string::npos);
  EXPECT_NE(report.find("test.report_counter"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Determinism: telemetry must not perturb campaign results

void expect_sets_identical(const bench::CampaignSet& a,
                           const bench::CampaignSet& b) {
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t r = 0; r < a.runs.size(); ++r) {
    EXPECT_EQ(a.runs[r].success, b.runs[r].success);
    EXPECT_EQ(a.runs[r].final_fom, b.runs[r].final_fom);  // exact
    EXPECT_EQ(a.runs[r].best_topology_index, b.runs[r].best_topology_index);
    EXPECT_EQ(a.runs[r].best_values, b.runs[r].best_values);
    EXPECT_EQ(a.runs[r].curve, b.runs[r].curve);  // exact, element-wise
  }
}

TEST(Determinism, TracingDoesNotChangeCampaignResults) {
  bench::CampaignParams params;
  params.runs = 2;
  params.init_topologies = 2;
  params.iterations = 2;
  params.pool = 10;
  params.sizing_init = 2;
  params.sizing_iterations = 2;
  params.seed = 77;

  runtime::set_thread_count(1);
  const bench::CampaignSet plain =
      bench::run_or_load("S-1", bench::Method::IntoOa, params, "");

  // Same campaign with tracing on and 2 worker threads: results must be
  // identical element-for-element (the instrumentation touches no RNG).
  obs::start_trace();
  runtime::set_thread_count(2);
  const bench::CampaignSet traced =
      bench::run_or_load("S-1", bench::Method::IntoOa, params, "");
  runtime::set_thread_count(1);
  const std::string path = temp_file("intooa_test_campaign_trace.json");
  ASSERT_TRUE(obs::write_trace(path));

  expect_sets_identical(plain, traced);

  // The trace covers the instrumented phases of an actual campaign.
  const std::string text = slurp(path);
  std::filesystem::remove(path);
  const obs::Json trace = obs::Json::parse(text);  // well-formed
  EXPECT_GT(trace.at("traceEvents").size(), 0u);
  EXPECT_NE(text.find("sizing.evaluate"), std::string::npos);
  EXPECT_NE(text.find("sim.mna_solve"), std::string::npos);
  EXPECT_NE(text.find("campaign.run"), std::string::npos);

  // The metrics registry saw the evaluator cache and the GP.
  const obs::MetricsSnapshot snap = obs::registry().snapshot();
  EXPECT_TRUE(snap.counters.count("evaluator.cache_miss"));
  EXPECT_TRUE(snap.histograms.count("gp.fit"));
  EXPECT_TRUE(snap.histograms.count("wl.featurize"));
}

}  // namespace
