// Unit tests for intooa::runtime — thread pool and futures, deterministic
// parallel primitives (identical results for any thread count), campaign
// fan-out ordering, and exact checkpoint round-trips of TopologyEvaluator
// state.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "circuit/library.hpp"
#include "core/evaluator.hpp"
#include "runtime/campaign_runner.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/executor.hpp"
#include "runtime/parallel.hpp"
#include "runtime/thread_pool.hpp"
#include "util/rng.hpp"

namespace {

using namespace intooa;
using namespace intooa::runtime;

TEST(ThreadPool, RunsTasksAndDeliversResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 64; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto future = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, RequiresAtLeastOneWorker) {
  EXPECT_THROW(ThreadPool pool(0), std::invalid_argument);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&done] { done.fetch_add(1); });
    }
  }  // destructor must run every queued task before joining
  EXPECT_EQ(done.load(), 100);
}

TEST(ParallelFor, InlineWithoutPool) {
  std::vector<int> out(10, 0);
  parallel_for(nullptr, out.size(), [&](std::size_t i) {
    out[i] = static_cast<int>(i) + 1;
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i) + 1);
  }
}

TEST(ParallelFor, MatchesSerialWithPool) {
  ThreadPool pool(4);
  std::vector<int> serial(1000), parallel(1000);
  parallel_for(nullptr, serial.size(),
               [&](std::size_t i) { serial[i] = static_cast<int>(i * 3); });
  parallel_for(&pool, parallel.size(),
               [&](std::size_t i) { parallel[i] = static_cast<int>(i * 3); });
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelFor, RethrowsLowestFailingIndex) {
  ThreadPool pool(4);
  try {
    parallel_for(&pool, 100, [](std::size_t i) {
      if (i == 7 || i == 93) {
        throw std::runtime_error("fail at " + std::to_string(i));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "fail at 7");  // never "fail at 93"
  }
}

TEST(ParallelFor, NestedRegionsRunInlineWithoutDeadlock) {
  // Outer tasks saturate every worker; each one then opens an inner
  // parallel region on the same pool. The inner regions must run inline on
  // the worker (blocking on queued sub-tasks would deadlock the pool).
  ThreadPool pool(2);
  std::vector<int> sums(4, 0);
  parallel_for(&pool, sums.size(), [&](std::size_t outer) {
    EXPECT_TRUE(ThreadPool::on_worker_thread());
    std::vector<int> inner(8, 0);
    parallel_for(&pool, inner.size(), [&](std::size_t i) {
      inner[i] = static_cast<int>(outer * 100 + i);
    });
    sums[outer] = std::accumulate(inner.begin(), inner.end(), 0);
  });
  for (std::size_t outer = 0; outer < sums.size(); ++outer) {
    EXPECT_EQ(sums[outer], static_cast<int>(outer) * 800 + 28);
  }
  EXPECT_FALSE(ThreadPool::on_worker_thread());
}

TEST(ParallelMap, ResultsInIndexOrder) {
  ThreadPool pool(4);
  const auto result = parallel_map(
      &pool, 257, [](std::size_t i) { return static_cast<double>(i) * 0.5; });
  ASSERT_EQ(result.size(), 257u);
  for (std::size_t i = 0; i < result.size(); ++i) {
    EXPECT_EQ(result[i], static_cast<double>(i) * 0.5);
  }
}

/// Each task draws from its private stream; the combined transcript must be
/// a pure function of the parent seed, whatever the pool size.
std::vector<std::uint64_t> draw_transcript(ThreadPool* pool,
                                           std::uint64_t seed) {
  util::Rng rng(seed);
  const auto rows = deterministic_parallel_map(
      pool, 32, rng, [](std::size_t i, util::Rng& stream) {
        std::vector<std::uint64_t> draws;
        for (std::size_t k = 0; k <= i % 5; ++k) {
          draws.push_back(stream.next_u64());
        }
        return draws;
      });
  std::vector<std::uint64_t> flat;
  for (const auto& row : rows) flat.insert(flat.end(), row.begin(), row.end());
  flat.push_back(rng.next_u64());  // parent advanced identically, too
  return flat;
}

TEST(DeterministicParallelMap, IdenticalForAnyThreadCount) {
  const auto serial = draw_transcript(nullptr, 99);
  ThreadPool two(2), eight(8);
  EXPECT_EQ(draw_transcript(&two, 99), serial);
  EXPECT_EQ(draw_transcript(&eight, 99), serial);
}

TEST(DeterministicParallelMap, ChildStreamsAreDistinct) {
  util::Rng rng(5);
  const auto firsts = deterministic_parallel_map(
      nullptr, 16, rng,
      [](std::size_t, util::Rng& stream) { return stream.next_u64(); });
  for (std::size_t a = 0; a < firsts.size(); ++a) {
    for (std::size_t b = a + 1; b < firsts.size(); ++b) {
      EXPECT_NE(firsts[a], firsts[b]);
    }
  }
}

TEST(Executor, ThreadCountConfiguration) {
  EXPECT_GE(hardware_threads(), 1u);
  set_thread_count(1);
  EXPECT_EQ(thread_count(), 1u);
  EXPECT_EQ(global_pool(), nullptr);
  set_thread_count(3);
  ASSERT_NE(global_pool(), nullptr);
  EXPECT_EQ(global_pool()->size(), 3u);
  set_thread_count(0);  // 0 = hardware concurrency
  EXPECT_EQ(thread_count(), hardware_threads());
  set_thread_count(1);  // leave the process serial for other tests
}

TEST(CampaignRunner, ResultsInJobOrder) {
  ThreadPool pool(4);
  const CampaignRunner runner(&pool);
  std::vector<CampaignJob> jobs(20);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i] = {"job " + std::to_string(i), 1000 + i, i};
  }
  const auto results = runner.run<std::uint64_t>(
      jobs, [](const CampaignJob& job) { return job.seed * 2; });
  ASSERT_EQ(results.size(), jobs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], (1000 + i) * 2);
  }
}

// ---------------------------------------------------------------------------
// Checkpoint round-trips.

sizing::SizingConfig tiny_sizing() {
  sizing::SizingConfig config;
  config.init_points = 2;
  config.iterations = 2;
  config.candidates = 32;
  return config;
}

core::TopologyEvaluator fresh_evaluator() {
  return core::TopologyEvaluator(
      sizing::EvalContext(circuit::spec_by_name("S-1")), tiny_sizing());
}

void expect_points_equal(const sizing::EvalPoint& a,
                         const sizing::EvalPoint& b) {
  EXPECT_EQ(a.perf, b.perf);  // exact: Performance == compares raw doubles
  EXPECT_EQ(a.fom, b.fom);
  EXPECT_EQ(a.margins, b.margins);
  EXPECT_EQ(a.feasible, b.feasible);
}

std::string temp_checkpoint(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Checkpoint, RoundTripIsExact) {
  auto original = fresh_evaluator();
  util::Rng rng(2024);
  original.evaluate(circuit::named_topology("NMC"));
  original.evaluate(circuit::named_topology("C1"));
  original.evaluate(circuit::Topology::random(rng));

  const std::string path = temp_checkpoint("intooa_ckpt_roundtrip.ckpt");
  save_evaluator_checkpoint(path, "token-a", original);

  auto restored = fresh_evaluator();
  ASSERT_TRUE(load_evaluator_checkpoint(path, "token-a", restored));

  EXPECT_EQ(restored.total_simulations(), original.total_simulations());
  ASSERT_EQ(restored.history().size(), original.history().size());
  for (std::size_t i = 0; i < original.history().size(); ++i) {
    const auto& want = original.history()[i];
    const auto& got = restored.history()[i];
    EXPECT_EQ(got.topology, want.topology);
    EXPECT_TRUE(restored.visited(want.topology));
    EXPECT_EQ(got.sims_before, want.sims_before);
    EXPECT_EQ(got.sized.simulations, want.sized.simulations);
    EXPECT_EQ(got.sized.best_values, want.sized.best_values);  // exact
    expect_points_equal(got.sized.best, want.sized.best);
    ASSERT_EQ(got.sized.history.size(), want.sized.history.size());
    for (std::size_t s = 0; s < want.sized.history.size(); ++s) {
      expect_points_equal(got.sized.history[s], want.sized.history[s]);
    }
  }
  // The derived campaign aggregates are therefore identical, too.
  EXPECT_EQ(restored.fom_curve(), original.fom_curve());
  EXPECT_EQ(restored.best_feasible(), original.best_feasible());
  EXPECT_EQ(restored.best_overall(), original.best_overall());
  std::filesystem::remove(path);
}

TEST(Checkpoint, RejectsWrongToken) {
  auto original = fresh_evaluator();
  original.evaluate(circuit::named_topology("NMC"));
  const std::string path = temp_checkpoint("intooa_ckpt_token.ckpt");
  save_evaluator_checkpoint(path, "seed-1", original);

  auto restored = fresh_evaluator();
  EXPECT_FALSE(load_evaluator_checkpoint(path, "seed-2", restored));
  EXPECT_EQ(restored.history().size(), 0u);  // untouched on rejection
  std::filesystem::remove(path);
}

TEST(Checkpoint, RejectsTruncatedFile) {
  auto original = fresh_evaluator();
  original.evaluate(circuit::named_topology("NMC"));
  original.evaluate(circuit::named_topology("C1"));
  const std::string path = temp_checkpoint("intooa_ckpt_trunc.ckpt");
  save_evaluator_checkpoint(path, "t", original);

  std::string contents;
  {
    std::ifstream in(path);
    contents.assign(std::istreambuf_iterator<char>(in), {});
  }
  {
    std::ofstream out(path);
    out << contents.substr(0, contents.size() / 2);
  }
  auto restored = fresh_evaluator();
  EXPECT_FALSE(load_evaluator_checkpoint(path, "t", restored));
  EXPECT_EQ(restored.history().size(), 0u);
  std::filesystem::remove(path);
}

TEST(Checkpoint, MissingFileReturnsFalse) {
  auto restored = fresh_evaluator();
  EXPECT_FALSE(load_evaluator_checkpoint(
      temp_checkpoint("intooa_ckpt_does_not_exist.ckpt"), "t", restored));
}

TEST(Checkpoint, RestoreRejectsDuplicateTopology) {
  auto evaluator = fresh_evaluator();
  evaluator.evaluate(circuit::named_topology("NMC"));
  core::EvalRecord duplicate = evaluator.history()[0];
  EXPECT_THROW(evaluator.restore(std::move(duplicate)),
               std::invalid_argument);
}

}  // namespace
