// Unit tests for intooa::gp — kernels, the continuous GP regressor, the
// shared-kernel JointGp, the WL-GP over graphs (including the analytic
// feature gradient of Eq. 5) and the wEI acquisition.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "gp/acquisition.hpp"
#include "gp/fit_cache.hpp"
#include "gp/gp.hpp"
#include "gp/joint_gp.hpp"
#include "gp/kernel.hpp"
#include "gp/wlgp.hpp"
#include "graph/wl.hpp"
#include "la/cholesky.hpp"
#include "util/rng.hpp"

namespace {

using namespace intooa;
using namespace intooa::gp;

TEST(Kernel, RbfValues) {
  const RbfKernel k(1.0, 2.0);
  const std::vector<double> x = {0.0, 0.0};
  const std::vector<double> y = {1.0, 0.0};
  EXPECT_DOUBLE_EQ(k(x, x), 2.0);
  EXPECT_NEAR(k(x, y), 2.0 * std::exp(-0.5), 1e-12);
  EXPECT_DOUBLE_EQ(k(x, y), k(y, x));
  EXPECT_THROW(k(x, std::vector<double>{1.0}), std::invalid_argument);
  EXPECT_THROW(RbfKernel(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(RbfKernel(1.0, 0.0), std::invalid_argument);
}

TEST(Kernel, Matern52Values) {
  const Matern52Kernel k(0.5, 1.0);
  const std::vector<double> x = {0.0};
  EXPECT_DOUBLE_EQ(k(x, x), 1.0);
  const std::vector<double> y = {0.5};
  EXPECT_GT(k(x, y), 0.0);
  EXPECT_LT(k(x, y), 1.0);
  EXPECT_EQ(k.name(), "matern52");
}

TEST(Kernel, GramMatrixIsPsd) {
  util::Rng rng(31);
  const RbfKernel k(0.5, 1.0);
  const std::size_t n = 12;
  std::vector<std::vector<double>> xs(n, std::vector<double>(3));
  for (auto& x : xs) {
    for (auto& v : x) v = rng.uniform();
  }
  la::MatrixD gram(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) gram(i, j) = k(xs[i], xs[j]);
  }
  // PSD check: Cholesky with tiny jitter succeeds.
  EXPECT_NO_THROW(la::Cholesky{gram});
}

TEST(GpRegressor, InterpolatesTrainingData) {
  util::Rng rng(32);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < 15; ++i) {
    const double x = rng.uniform();
    xs.push_back({x});
    ys.push_back(std::sin(6.0 * x));
  }
  GpRegressor gp;
  gp.fit(xs, ys);
  EXPECT_TRUE(gp.trained());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const Prediction p = gp.predict(xs[i]);
    EXPECT_NEAR(p.mean, ys[i], 0.05);
    EXPECT_LT(p.variance, 0.05);
  }
}

TEST(GpRegressor, VarianceGrowsAwayFromData) {
  GpRegressor gp;
  gp.fit({{0.1}, {0.2}, {0.3}}, std::vector<double>{1.0, 2.0, 3.0});
  const double var_near = gp.predict(std::vector<double>{0.2}).variance;
  const double var_far = gp.predict(std::vector<double>{0.9}).variance;
  EXPECT_GT(var_far, var_near);
}

TEST(GpRegressor, ConstantTargetsHandled) {
  GpRegressor gp;
  gp.fit({{0.1}, {0.5}, {0.9}}, std::vector<double>{2.0, 2.0, 2.0});
  const Prediction p = gp.predict(std::vector<double>{0.3});
  EXPECT_NEAR(p.mean, 2.0, 1e-6);
}

TEST(GpRegressor, InputValidation) {
  GpRegressor gp;
  EXPECT_THROW(gp.fit({{0.1}}, std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW(gp.fit({{0.1}, {0.2, 0.3}}, std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(gp.predict(std::vector<double>{0.0}), std::logic_error);
}

TEST(JointGp, MatchesSingleOutputBehaviour) {
  util::Rng rng(33);
  std::vector<std::vector<double>> xs;
  std::vector<std::vector<double>> ys;
  std::vector<double> y_flat;
  for (int i = 0; i < 12; ++i) {
    const double x = rng.uniform();
    xs.push_back({x});
    const double y = std::cos(4.0 * x);
    ys.push_back({y});
    y_flat.push_back(y);
  }
  JointGp joint;
  joint.fit(xs, ys, true);
  GpRegressor single;
  single.fit(xs, y_flat);
  for (double q : {0.05, 0.35, 0.75}) {
    const auto jp = joint.predict(std::vector<double>{q});
    const auto sp = single.predict(std::vector<double>{q});
    EXPECT_NEAR(jp.mean[0], sp.mean, 0.15);
  }
}

TEST(JointGp, SharedVarianceScaledPerOutput) {
  // Two outputs with different scales: identical standardized variance,
  // different raw variance.
  std::vector<std::vector<double>> xs = {{0.1}, {0.4}, {0.7}};
  std::vector<std::vector<double>> ys = {{1.0, 10.0}, {2.0, 20.0}, {3.0, 30.0}};
  JointGp joint;
  joint.fit(xs, ys, true);
  const auto p = joint.predict(std::vector<double>{0.95});
  EXPECT_GT(p.variance[1], p.variance[0]);
  EXPECT_NEAR(p.variance[1] / p.variance[0], 100.0, 1.0);
}

TEST(JointGp, HyperReuseWithoutRefit) {
  std::vector<std::vector<double>> xs = {{0.1}, {0.4}, {0.7}};
  std::vector<std::vector<double>> ys = {{1.0}, {2.0}, {3.0}};
  JointGp joint;
  joint.fit(xs, ys, true);
  const auto hyper = joint.hyper();
  xs.push_back({0.9});
  ys.push_back({4.0});
  joint.fit(xs, ys, false);  // reuse hypers
  EXPECT_EQ(joint.hyper().lengthscale, hyper.lengthscale);
  EXPECT_EQ(joint.size(), 4u);
}

TEST(JointGp, Validation) {
  JointGp joint;
  EXPECT_THROW(joint.fit({{0.1}}, {{1.0}}, true), std::invalid_argument);
  EXPECT_THROW(joint.fit({{0.1}, {0.2}}, {{1.0}, {1.0, 2.0}}, true),
               std::invalid_argument);
}

graph::Graph make_chain(const std::vector<std::string>& labels) {
  graph::Graph g;
  for (const auto& l : labels) g.add_node(l);
  for (std::size_t i = 0; i + 1 < labels.size(); ++i) {
    g.add_edge(i, i + 1);
  }
  return g;
}

TEST(WlGp, FitsAndInterpolatesGraphTargets) {
  auto feat = std::make_shared<graph::WlFeaturizer>(3);
  WlGpConfig config;
  config.max_h = 3;
  WlGp gp(feat, config);

  // Target = number of "B" nodes (a depth-0-expressible function).
  std::vector<graph::Graph> graphs;
  std::vector<double> targets;
  const std::vector<std::vector<std::string>> specs = {
      {"A", "B"},      {"A", "B", "B"},   {"A", "A"},
      {"B", "B", "B"}, {"A", "B", "A"},   {"B"},
      {"A", "A", "B"}, {"B", "B", "A", "A"},
  };
  for (const auto& s : specs) {
    graphs.push_back(make_chain(s));
    targets.push_back(static_cast<double>(
        std::count(s.begin(), s.end(), std::string("B"))));
  }
  gp.fit(graphs, targets);
  EXPECT_TRUE(gp.trained());
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    EXPECT_NEAR(gp.predict(graphs[i]).mean, targets[i], 0.35);
  }
}

TEST(WlGp, GradientMatchesLinearityOfKernel) {
  // With the dot-product WL kernel the posterior mean is linear in the
  // feature vector, so mu(phi + e_j) - mu(phi) must equal the analytic
  // gradient of Eq. 5 exactly. Adding one disconnected node labeled "B"
  // increments exactly one depth-0 feature (plus new deeper features with
  // zero gradient).
  auto feat = std::make_shared<graph::WlFeaturizer>(1);
  WlGpConfig config;
  config.max_h = 1;
  config.fit_h = false;
  config.fixed_h = 0;  // depth-0 only: adding a node changes one feature
  WlGp gp(feat, config);

  std::vector<graph::Graph> graphs;
  std::vector<double> targets;
  const std::vector<std::vector<std::string>> specs = {
      {"A", "B"}, {"A", "B", "B"}, {"A", "A"}, {"B", "B", "B"}, {"A"},
  };
  for (const auto& s : specs) {
    graphs.push_back(make_chain(s));
    targets.push_back(static_cast<double>(
        std::count(s.begin(), s.end(), std::string("B"))));
  }
  gp.fit(graphs, targets);

  graph::Graph base = make_chain({"A", "B"});
  const double mu0 = gp.predict(base).mean;
  graph::Graph plus_b = base;
  plus_b.add_node("B");
  const double mu1 = gp.predict(plus_b).mean;

  // Feature id of label "B" at depth 0.
  const auto labels = feat->node_labels(base, 0);
  const std::size_t b_id = labels[0][1];
  EXPECT_EQ(feat->provenance(b_id), "B");
  EXPECT_NEAR(mu1 - mu0, gp.mean_gradient(b_id), 1e-9);

  // Dense gradient agrees with the scalar accessor.
  const auto grad = gp.mean_gradient();
  EXPECT_NEAR(grad[b_id], gp.mean_gradient(b_id), 1e-12);
}

TEST(WlGp, MleSelectsExpressiveDepth) {
  // Target depends on depth-1 structure (neighbor identity), so MLE should
  // not pick a degenerate model; chosen h must be within range.
  auto feat = std::make_shared<graph::WlFeaturizer>(3);
  WlGp gp(feat, WlGpConfig{.max_h = 3});
  util::Rng rng(35);
  std::vector<graph::Graph> graphs;
  std::vector<double> targets;
  for (int i = 0; i < 12; ++i) {
    std::vector<std::string> labels;
    const int n = 3 + static_cast<int>(rng.index(3));
    int ab_edges = 0;
    for (int j = 0; j < n; ++j) {
      labels.push_back(rng.chance(0.5) ? "A" : "B");
    }
    for (int j = 0; j + 1 < n; ++j) {
      if (labels[j] != labels[j + 1]) ++ab_edges;
    }
    graphs.push_back(make_chain(labels));
    targets.push_back(static_cast<double>(ab_edges));
  }
  gp.fit(graphs, targets);
  EXPECT_GE(gp.chosen_h(), 0);
  EXPECT_LE(gp.chosen_h(), 3);
  EXPECT_GT(gp.signal_variance(), 0.0);
  EXPECT_GT(gp.noise_variance(), 0.0);
  EXPECT_TRUE(std::isfinite(gp.log_marginal_likelihood()));
}

TEST(WlGp, FixedDepthRespected) {
  auto feat = std::make_shared<graph::WlFeaturizer>(4);
  WlGpConfig config;
  config.max_h = 4;
  config.fit_h = false;
  config.fixed_h = 2;
  WlGp gp(feat, config);
  gp.fit({make_chain({"A", "B"}), make_chain({"B", "B"})},
         std::vector<double>{0.0, 1.0});
  EXPECT_EQ(gp.chosen_h(), 2);
}

TEST(WlGp, Validation) {
  auto feat = std::make_shared<graph::WlFeaturizer>(2);
  EXPECT_THROW(WlGp(nullptr, WlGpConfig{}), std::invalid_argument);
  WlGpConfig too_deep;
  too_deep.max_h = 5;
  EXPECT_THROW(WlGp(feat, too_deep), std::invalid_argument);
  WlGp gp(feat, WlGpConfig{.max_h = 2});
  EXPECT_THROW(gp.fit({make_chain({"A"})}, std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW(gp.predict(make_chain({"A"})), std::logic_error);
}

TEST(WlFitCache, SharedFitMatchesFullFitIncrementally) {
  // Grow the cache one record at a time (exercising factor materialization
  // at one size and border updates at every later size) and, at each size,
  // compare fit_shared against an independent full fit on two different
  // target columns. The shared path is bit-identical, so hyperparameters,
  // LML, and held-out predictions must match exactly.
  auto feat = std::make_shared<graph::WlFeaturizer>(3);
  WlGpConfig config;
  config.max_h = 3;
  WlFitCache cache(feat, 3);
  util::Rng rng(41);
  std::vector<graph::Graph> graphs;
  std::vector<double> count_targets;
  std::vector<double> edge_targets;
  for (int i = 0; i < 10; ++i) {
    std::vector<std::string> labels;
    const int n = 3 + static_cast<int>(rng.index(3));
    for (int j = 0; j < n; ++j) {
      labels.push_back(rng.chance(0.5) ? "A" : "B");
    }
    int ab_edges = 0;
    for (int j = 0; j + 1 < n; ++j) {
      if (labels[j] != labels[j + 1]) ++ab_edges;
    }
    graphs.push_back(make_chain(labels));
    count_targets.push_back(static_cast<double>(
        std::count(labels.begin(), labels.end(), std::string("B"))));
    edge_targets.push_back(static_cast<double>(ab_edges));
  }
  const graph::Graph held_out = make_chain({"A", "B", "A", "B"});

  for (std::size_t n = 0; n < graphs.size(); ++n) {
    cache.append(graphs[n]);
    if (n + 1 < 2) continue;
    const std::vector<graph::Graph> prefix(graphs.begin(),
                                           graphs.begin() + n + 1);
    for (const auto* targets : {&count_targets, &edge_targets}) {
      const std::vector<double> y(targets->begin(), targets->begin() + n + 1);
      WlGp full(feat, config);
      full.fit(prefix, y);
      WlGp shared(feat, config);
      shared.fit_shared(cache, y);
      EXPECT_EQ(shared.chosen_h(), full.chosen_h());
      EXPECT_DOUBLE_EQ(shared.signal_variance(), full.signal_variance());
      EXPECT_DOUBLE_EQ(shared.noise_variance(), full.noise_variance());
      EXPECT_DOUBLE_EQ(shared.log_marginal_likelihood(),
                       full.log_marginal_likelihood());
      const Prediction p_full = full.predict(held_out);
      const Prediction p_shared = shared.predict(held_out);
      EXPECT_DOUBLE_EQ(p_shared.mean, p_full.mean);
      EXPECT_DOUBLE_EQ(p_shared.variance, p_full.variance);
    }
  }
}

TEST(WlFitCache, Validation) {
  auto feat = std::make_shared<graph::WlFeaturizer>(2);
  EXPECT_THROW(WlFitCache(nullptr, 2), std::invalid_argument);
  EXPECT_THROW(WlFitCache(feat, 3), std::invalid_argument);
  EXPECT_THROW(WlFitCache(feat, -1), std::invalid_argument);

  WlFitCache cache(feat, 2);
  cache.append(make_chain({"A", "B"}));
  cache.append(make_chain({"B", "B"}));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_THROW(cache.features_at(3), std::out_of_range);
  EXPECT_THROW(cache.factor(0, 99, 0), std::out_of_range);

  WlGp gp(feat, WlGpConfig{.max_h = 2});
  const std::vector<double> one = {0.0};
  EXPECT_THROW(gp.fit_shared(cache, one), std::invalid_argument);
  const std::vector<double> two = {0.0, 1.0};
  auto other_feat = std::make_shared<graph::WlFeaturizer>(2);
  WlGp other(other_feat, WlGpConfig{.max_h = 2});
  EXPECT_THROW(other.fit_shared(cache, two), std::invalid_argument);

  // A cache shallower than the model's max_h cannot serve its grid.
  WlFitCache shallow(feat, 1);
  shallow.append(make_chain({"A", "B"}));
  shallow.append(make_chain({"B", "B"}));
  EXPECT_THROW(gp.fit_shared(shallow, two), std::invalid_argument);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(Acquisition, ExpectedImprovementKnownValues) {
  // With mean = best and unit variance: EI = pdf(0) ~= 0.3989.
  EXPECT_NEAR(expected_improvement(0.0, 1.0, 0.0), 0.3989422804, 1e-6);
  // Deterministic improvement.
  EXPECT_DOUBLE_EQ(expected_improvement(2.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(expected_improvement(0.5, 0.0, 1.0), 0.0);
  // EI increases with variance.
  EXPECT_GT(expected_improvement(0.0, 4.0, 1.0),
            expected_improvement(0.0, 1.0, 1.0));
  EXPECT_THROW(expected_improvement(0.0, -1.0, 0.0), std::invalid_argument);
}

TEST(Acquisition, ProbabilityFeasible) {
  EXPECT_NEAR(probability_feasible(0.0, 1.0), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(probability_feasible(-1.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(probability_feasible(1.0, 0.0), 0.0);
  EXPECT_GT(probability_feasible(-1.0, 1.0), 0.8);
  EXPECT_LT(probability_feasible(1.0, 1.0), 0.2);
}

TEST(Acquisition, WeightedEiComposition) {
  const std::vector<double> cm = {-2.0, -2.0};
  const std::vector<double> cv = {0.01, 0.01};
  WeiInputs in;
  in.objective_mean = 1.0;
  in.objective_variance = 0.5;
  in.best_feasible = 0.5;
  in.have_feasible = true;
  in.constraint_means = cm;
  in.constraint_variances = cv;
  const double with_feasible_constraints = weighted_ei(in);
  EXPECT_GT(with_feasible_constraints, 0.0);

  // An almost-surely-violated constraint crushes the score.
  const std::vector<double> bad_cm = {3.0, -2.0};
  in.constraint_means = bad_cm;
  EXPECT_LT(weighted_ei(in), 1e-3 * with_feasible_constraints);

  // Without a feasible incumbent, wEI reduces to the PF product.
  in.constraint_means = cm;
  in.have_feasible = false;
  const double pf_only = weighted_ei(in);
  EXPECT_LE(pf_only, 1.0);
  EXPECT_GT(pf_only, 0.9);  // both constraints comfortably satisfied
}

TEST(Acquisition, WeightedEiValidatesSpans) {
  const std::vector<double> cm = {0.0};
  const std::vector<double> cv = {0.0, 0.0};
  WeiInputs in;
  in.constraint_means = cm;
  in.constraint_variances = cv;
  EXPECT_THROW(weighted_ei(in), std::invalid_argument);
}

}  // namespace
