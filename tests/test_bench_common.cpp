// Tests for the experiment harness (bench/common): campaign aggregation
// math (success rates, mean curves, simulations-to-reference), the
// reference-FoM rule, CLI plumbing, the disk cache round trip, and the
// parallel/checkpoint-resume guarantees (byte-identical results for any
// thread count and across an interrupt).

#include <gtest/gtest.h>

#include <filesystem>

#include "common/campaign.hpp"
#include "runtime/executor.hpp"

namespace {

using namespace intooa;
using namespace intooa::bench;

CampaignParams tiny_params() {
  CampaignParams params;
  params.runs = 2;
  params.init_topologies = 3;
  params.iterations = 2;
  params.pool = 20;
  params.sizing_init = 2;
  params.sizing_iterations = 2;
  params.seed = 77;
  return params;
}

TEST(Campaign, MethodNamesAndOrder) {
  const auto& methods = all_methods();
  ASSERT_EQ(methods.size(), 5u);
  EXPECT_EQ(method_name(methods.front()), "FE-GA");
  EXPECT_EQ(method_name(methods.back()), "INTO-OA");
  EXPECT_EQ(method_name(Method::IntoOaR), "INTO-OA-r");
}

TEST(Campaign, ParamsAccounting) {
  const CampaignParams params = tiny_params();
  EXPECT_EQ(params.sims_per_topology(), 4u);
  EXPECT_EQ(params.budget(), 20u);
  EXPECT_NE(params.cache_token().find("seed77"), std::string::npos);
}

TEST(Campaign, SetAggregation) {
  CampaignSet set;
  set.params = tiny_params();
  RunResult ok;
  ok.success = true;
  ok.final_fom = 100.0;
  ok.curve = {0, 0, 50, 50, 100, 100, 100, 100, 100, 100,
              100, 100, 100, 100, 100, 100, 100, 100, 100, 100};
  RunResult fail;
  fail.success = false;
  fail.curve.assign(20, 0.0);
  set.runs = {ok, fail};

  EXPECT_EQ(set.successes(), 1);
  EXPECT_DOUBLE_EQ(set.mean_final_fom(), 100.0);
  const auto mean = set.mean_curve();
  ASSERT_EQ(mean.size(), 20u);
  EXPECT_DOUBLE_EQ(mean[4], 50.0);  // (100 + 0) / 2
  // ok reaches 50 at simulation 3; fail never does (charged the budget).
  EXPECT_DOUBLE_EQ(set.mean_sims_to_reach(50.0), (3.0 + 20.0) / 2.0);
  ASSERT_TRUE(set.best_run().has_value());
  EXPECT_EQ(*set.best_run(), 0u);
}

TEST(Campaign, ReferenceFomRule) {
  CampaignSet strong;
  strong.params = tiny_params();
  RunResult a;
  a.success = true;
  a.final_fom = 200.0;
  strong.runs = {a};
  CampaignSet weak = strong;
  weak.runs[0].final_fom = 100.0;
  CampaignSet never;
  never.params = tiny_params();
  RunResult f;
  f.success = false;
  never.runs = {f};

  // 90% of the weakest *successful* method.
  EXPECT_DOUBLE_EQ(reference_fom({strong, weak, never}), 90.0);
  EXPECT_DOUBLE_EQ(reference_fom({never}), 0.0);
}

TEST(Campaign, BenchOptionsFromCli) {
  const char* argv[] = {"bench", "--quick", "--runs", "5", "--seed", "9"};
  const util::Cli cli(6, argv);
  const BenchOptions options = BenchOptions::from_cli(cli);
  EXPECT_EQ(options.params.runs, 5u);        // explicit flag beats --quick
  EXPECT_EQ(options.params.iterations, 20u); // from --quick
  EXPECT_EQ(options.params.seed, 9u);
  EXPECT_EQ(options.cache_dir, "bench-cache");

  const char* argv2[] = {"bench", "--no-cache", "--threads", "2"};
  const util::Cli cli2(4, argv2);
  const BenchOptions options2 = BenchOptions::from_cli(cli2);
  EXPECT_TRUE(options2.cache_dir.empty());
  EXPECT_EQ(options2.threads, 2u);
  EXPECT_EQ(runtime::thread_count(), 2u);  // from_cli configures the executor
  runtime::set_thread_count(1);
}

TEST(Campaign, RunAndCacheRoundTrip) {
  const auto cache_dir = std::filesystem::temp_directory_path() /
                         "intooa_campaign_cache_test";
  std::filesystem::remove_all(cache_dir);
  const CampaignParams params = tiny_params();

  const CampaignSet fresh =
      run_or_load("S-1", Method::IntoOaR, params, cache_dir.string());
  ASSERT_EQ(fresh.runs.size(), params.runs);
  for (const auto& run : fresh.runs) {
    EXPECT_EQ(run.curve.size(), params.budget());
  }

  // Second call must hit the cache and reproduce everything bit-for-bit
  // relevant to the tables.
  const CampaignSet cached =
      run_or_load("S-1", Method::IntoOaR, params, cache_dir.string());
  ASSERT_EQ(cached.runs.size(), fresh.runs.size());
  for (std::size_t r = 0; r < fresh.runs.size(); ++r) {
    EXPECT_EQ(cached.runs[r].success, fresh.runs[r].success);
    EXPECT_NEAR(cached.runs[r].final_fom, fresh.runs[r].final_fom, 1e-9);
    EXPECT_EQ(cached.runs[r].best_topology_index,
              fresh.runs[r].best_topology_index);
    ASSERT_EQ(cached.runs[r].curve.size(), fresh.runs[r].curve.size());
    for (std::size_t i = 0; i < fresh.runs[r].curve.size(); i += 5) {
      EXPECT_NEAR(cached.runs[r].curve[i], fresh.runs[r].curve[i], 1e-9);
    }
  }
  std::filesystem::remove_all(cache_dir);
}

void expect_sets_identical(const CampaignSet& a, const CampaignSet& b) {
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t r = 0; r < a.runs.size(); ++r) {
    EXPECT_EQ(a.runs[r].success, b.runs[r].success);
    EXPECT_EQ(a.runs[r].final_fom, b.runs[r].final_fom);  // exact
    EXPECT_EQ(a.runs[r].best_topology_index, b.runs[r].best_topology_index);
    EXPECT_EQ(a.runs[r].best_topology, b.runs[r].best_topology);
    EXPECT_EQ(a.runs[r].best_values, b.runs[r].best_values);
    EXPECT_EQ(a.runs[r].curve, b.runs[r].curve);  // exact, element-wise
  }
}

TEST(Campaign, ThreadCountDoesNotChangeResults) {
  const CampaignParams params = tiny_params();
  runtime::set_thread_count(1);
  const CampaignSet serial = run_or_load("S-2", Method::IntoOa, params, "");
  runtime::set_thread_count(4);
  const CampaignSet parallel = run_or_load("S-2", Method::IntoOa, params, "");
  runtime::set_thread_count(1);
  expect_sets_identical(serial, parallel);
}

TEST(Campaign, CheckpointInterruptResumeIsExact) {
  const auto cache_dir = std::filesystem::temp_directory_path() /
                         "intooa_campaign_resume_test";
  std::filesystem::remove_all(cache_dir);
  const CampaignParams params = tiny_params();

  const CampaignSet fresh =
      run_or_load("S-1", Method::IntoOaR, params, cache_dir.string());

  // Simulate an interrupt after run 0: the aggregate CSV was never written
  // and run 1's checkpoint is lost, so the resumed campaign must restore
  // run 0 from its checkpoint and re-simulate only run 1.
  for (const auto& entry : std::filesystem::directory_iterator(cache_dir)) {
    if (entry.is_regular_file()) std::filesystem::remove(entry.path());
  }
  std::filesystem::remove(cache_dir / "checkpoints" /
                          ("campaign_S-1_INTO-OA-r_" + params.cache_token() +
                           "_run1.ckpt"));

  const CampaignSet resumed =
      run_or_load("S-1", Method::IntoOaR, params, cache_dir.string());
  expect_sets_identical(fresh, resumed);
  std::filesystem::remove_all(cache_dir);
}

TEST(Campaign, DeterministicPerSeed) {
  const CampaignParams params = tiny_params();
  const CampaignSet a = run_or_load("S-3", Method::IntoOa, params, "");
  const CampaignSet b = run_or_load("S-3", Method::IntoOa, params, "");
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t r = 0; r < a.runs.size(); ++r) {
    EXPECT_EQ(a.runs[r].best_topology_index, b.runs[r].best_topology_index);
    EXPECT_DOUBLE_EQ(a.runs[r].final_fom, b.runs[r].final_fom);
  }
}

}  // namespace
