// Parameterized property suites (TEST_P) sweeping the discrete axes of the
// system: all 25 subcircuit types, all 5 slots, all 5 specs, all library
// topologies, and all WL depths. Each suite checks invariants that must
// hold for EVERY value of the axis.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/fega.hpp"
#include "baselines/vae.hpp"
#include "circuit/behavioral.hpp"
#include "circuit/circuit_graph.hpp"
#include "circuit/library.hpp"
#include "graph/wl.hpp"
#include "sim/metrics.hpp"
#include "sizing/evaluate.hpp"
#include "util/rng.hpp"
#include "xtor/mapping.hpp"

namespace {

using namespace intooa;

// ---------------------------------------------------------------------------
// Every subcircuit type, placed in the universal v1-vout slot.
// ---------------------------------------------------------------------------

class SubcktTypeProperty
    : public ::testing::TestWithParam<circuit::SubcktType> {};

INSTANTIATE_TEST_SUITE_P(
    AllTypes, SubcktTypeProperty,
    ::testing::ValuesIn(circuit::all_subckt_types()),
    [](const ::testing::TestParamInfo<circuit::SubcktType>& info) {
      std::string name = circuit::short_name(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name + "_" + std::to_string(info.index);
    });

TEST_P(SubcktTypeProperty, SchemaMatchesParameterCount) {
  const circuit::Topology topo =
      circuit::Topology().with(circuit::Slot::V1Vout, GetParam());
  const circuit::BehavioralConfig cfg;
  const auto schema = circuit::make_schema(topo, cfg);
  EXPECT_EQ(schema.size(), 3u + circuit::parameter_count(GetParam()));
}

TEST_P(SubcktTypeProperty, BehavioralNetlistBuildsAndSimulates) {
  const circuit::Topology topo =
      circuit::Topology().with(circuit::Slot::V1Vout, GetParam());
  const circuit::BehavioralConfig cfg;
  const auto schema = circuit::make_schema(topo, cfg);
  std::vector<double> unit(schema.size(), 0.5);
  const auto net = circuit::build_behavioral(topo, schema.from_unit(unit), cfg);
  // The netlist must always be solvable (evaluate returns, possibly as an
  // infeasible-but-valid result object).
  const auto perf = sim::evaluate_opamp(net, cfg.vdd);
  EXPECT_GE(perf.power_w, 0.0);
}

TEST_P(SubcktTypeProperty, CircuitGraphShapeIsConsistent) {
  const circuit::Topology topo =
      circuit::Topology().with(circuit::Slot::V1Vout, GetParam());
  const auto g = circuit::build_circuit_graph(topo);
  const bool occupied = GetParam() != circuit::SubcktType::None;
  EXPECT_EQ(g.node_count(), 8u + (occupied ? 1u : 0u));
  EXPECT_EQ(g.edge_count(), 6u + (occupied ? 2u : 0u));
  if (occupied) {
    EXPECT_EQ(g.label(8), circuit::graph_label(GetParam()));
  }
}

TEST_P(SubcktTypeProperty, TransistorMappingBuilds) {
  const circuit::Topology topo =
      circuit::Topology().with(circuit::Slot::V1Vout, GetParam());
  const circuit::BehavioralConfig cfg;
  const auto schema = circuit::make_schema(topo, cfg);
  std::vector<double> unit(schema.size(), 0.5);
  const auto design =
      xtor::map_to_transistor(topo, schema.from_unit(unit), cfg);
  const bool has_gm = circuit::has_gm(GetParam());
  EXPECT_EQ(design.cells.size(), 3u + (has_gm ? 1u : 0u));
  EXPECT_GT(design.supply_current, 0.0);
}

// ---------------------------------------------------------------------------
// Every slot.
// ---------------------------------------------------------------------------

class SlotProperty : public ::testing::TestWithParam<circuit::Slot> {};

INSTANTIATE_TEST_SUITE_P(
    AllSlots, SlotProperty, ::testing::ValuesIn(circuit::all_slots()),
    [](const ::testing::TestParamInfo<circuit::Slot>& info) {
      std::string name = circuit::slot_name(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST_P(SlotProperty, AllowedTypesAreValidAndDeduplicated) {
  const auto types = circuit::allowed_types(GetParam());
  ASSERT_FALSE(types.empty());
  EXPECT_EQ(types.front(), circuit::SubcktType::None);
  for (std::size_t i = 0; i < types.size(); ++i) {
    EXPECT_EQ(circuit::allowed_index(GetParam(), types[i]), i);
    for (std::size_t j = i + 1; j < types.size(); ++j) {
      EXPECT_NE(types[i], types[j]);
    }
  }
}

TEST_P(SlotProperty, EveryAllowedTypeBuildsANetlist) {
  const circuit::BehavioralConfig cfg;
  for (circuit::SubcktType type : circuit::allowed_types(GetParam())) {
    const circuit::Topology topo = circuit::Topology().with(GetParam(), type);
    const auto schema = circuit::make_schema(topo, cfg);
    std::vector<double> unit(schema.size(), 0.3);
    EXPECT_NO_THROW(
        circuit::build_behavioral(topo, schema.from_unit(unit), cfg))
        << circuit::short_name(type) << " in " << circuit::slot_name(GetParam());
  }
}

TEST_P(SlotProperty, MutationStaysWithinRules) {
  util::Rng rng(17 + static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 50; ++i) {
    const auto parent = circuit::Topology::random(rng);
    const auto child = parent.mutated(rng);
    EXPECT_TRUE(circuit::is_allowed(GetParam(), child.type(GetParam())));
  }
}

// ---------------------------------------------------------------------------
// Every specification set.
// ---------------------------------------------------------------------------

class SpecProperty : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(AllSpecs, SpecProperty,
                         ::testing::Values("S-1", "S-2", "S-3", "S-4", "S-5"),
                         [](const auto& info) {
                           std::string n = info.param;
                           n[1] = '_';
                           return n;
                         });

TEST_P(SpecProperty, MarginsAreZeroExactlyAtTheSpecPoint) {
  const circuit::Spec& spec = circuit::spec_by_name(GetParam());
  circuit::Performance at_spec;
  at_spec.valid = true;
  at_spec.gain_db = spec.gain_db_min;
  at_spec.gbw_hz = spec.gbw_hz_min;
  at_spec.pm_deg = spec.pm_deg_min;
  at_spec.power_w = spec.power_w_max;
  for (double m : spec.margins(at_spec)) EXPECT_NEAR(m, 0.0, 1e-9);
  EXPECT_TRUE(spec.satisfied(at_spec));
}

TEST_P(SpecProperty, MarginsAreMonotoneInEachMetric) {
  const circuit::Spec& spec = circuit::spec_by_name(GetParam());
  circuit::Performance base;
  base.valid = true;
  base.gain_db = spec.gain_db_min + 5.0;
  base.gbw_hz = spec.gbw_hz_min * 2.0;
  base.pm_deg = spec.pm_deg_min + 5.0;
  base.power_w = spec.power_w_max * 0.5;
  const auto m0 = spec.margins(base);

  auto better = base;
  better.gain_db += 10.0;
  EXPECT_LT(spec.margins(better)[0], m0[0]);
  better = base;
  better.gbw_hz *= 3.0;
  EXPECT_LT(spec.margins(better)[1], m0[1]);
  better = base;
  better.pm_deg += 10.0;
  EXPECT_LT(spec.margins(better)[2], m0[2]);
  better = base;
  better.power_w *= 0.5;
  EXPECT_LT(spec.margins(better)[3], m0[3]);
}

TEST_P(SpecProperty, EvalContextBindsLoadCap) {
  const sizing::EvalContext ctx(circuit::spec_by_name(GetParam()));
  EXPECT_DOUBLE_EQ(ctx.behavioral.load_cap, ctx.spec.load_cap);
}

TEST_P(SpecProperty, FomScalesInverselyWithPower) {
  const circuit::Spec& spec = circuit::spec_by_name(GetParam());
  circuit::Performance p;
  p.valid = true;
  p.gbw_hz = 1e6;
  p.power_w = 100e-6;
  const double f1 = circuit::fom(p, spec.load_cap);
  p.power_w = 200e-6;
  EXPECT_NEAR(circuit::fom(p, spec.load_cap) * 2.0, f1, 1e-9);
}

// ---------------------------------------------------------------------------
// Every library topology.
// ---------------------------------------------------------------------------

class LibraryProperty : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(AllNamed, LibraryProperty,
                         ::testing::Values("bare", "NMC", "C1", "C2", "R1",
                                           "R2"),
                         [](const auto& info) { return info.param; });

TEST_P(LibraryProperty, RoundTripsThroughIndexAndGenes) {
  const auto topo = circuit::named_topology(GetParam());
  EXPECT_EQ(circuit::Topology::from_index(topo.index()), topo);
  EXPECT_EQ(baselines::decode_genes(baselines::embed(topo)), topo);
  EXPECT_EQ(baselines::decode_topology(baselines::topology_onehot(topo)),
            topo);
}

TEST_P(LibraryProperty, BehavioralAndTransistorBuildsSimulate) {
  const auto topo = circuit::named_topology(GetParam());
  const circuit::BehavioralConfig cfg;
  const auto schema = circuit::make_schema(topo, cfg);
  std::vector<double> unit(schema.size(), 0.5);
  const auto values = schema.from_unit(unit);
  const auto perf =
      sim::evaluate_opamp(circuit::build_behavioral(topo, values, cfg), cfg.vdd);
  EXPECT_GE(perf.power_w, 0.0);
  const auto xperf = xtor::evaluate_transistor(topo, values, cfg);
  EXPECT_GE(xperf.power_w, perf.power_w);  // mapping adds bias overhead
}

TEST_P(LibraryProperty, GraphIsDeterministic) {
  const auto topo = circuit::named_topology(GetParam());
  EXPECT_EQ(circuit::build_circuit_graph(topo),
            circuit::build_circuit_graph(topo));
}

// ---------------------------------------------------------------------------
// Every WL depth.
// ---------------------------------------------------------------------------

class WlDepthProperty : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Depths, WlDepthProperty, ::testing::Range(0, 7));

TEST_P(WlDepthProperty, FeatureVectorsNestAcrossDepths) {
  // phi_h is a sub-multiset of phi_{h+1}: deeper featurization only adds
  // counts for new (deeper) labels.
  const int h = GetParam();
  util::Rng rng(23);
  graph::WlFeaturizer feat(7);
  for (int trial = 0; trial < 10; ++trial) {
    const auto g =
        circuit::build_circuit_graph(circuit::Topology::random(rng));
    const auto phi_h = feat.features(g, h);
    const auto phi_h1 = feat.features(g, h + 1 <= 7 ? h + 1 : h);
    for (const auto& [id, count] : phi_h.entries()) {
      EXPECT_GE(phi_h1.get(id), count);
    }
    EXPECT_GE(phi_h1.sum(), phi_h.sum());
  }
}

TEST_P(WlDepthProperty, KernelIsSymmetricAndCauchySchwarz) {
  const int h = GetParam();
  util::Rng rng(29 + static_cast<std::uint64_t>(h));
  graph::WlFeaturizer feat(7);
  for (int trial = 0; trial < 10; ++trial) {
    const auto a = circuit::build_circuit_graph(circuit::Topology::random(rng));
    const auto b = circuit::build_circuit_graph(circuit::Topology::random(rng));
    const double kab = graph::wl_kernel(feat, a, b, h);
    const double kba = graph::wl_kernel(feat, b, a, h);
    const double kaa = graph::wl_kernel(feat, a, a, h);
    const double kbb = graph::wl_kernel(feat, b, b, h);
    EXPECT_DOUBLE_EQ(kab, kba);
    EXPECT_LE(kab * kab, kaa * kbb * (1.0 + 1e-12));
    EXPECT_GE(kaa, 0.0);
  }
}

TEST_P(WlDepthProperty, IdenticalTopologiesHaveMaximalSimilarity) {
  const int h = GetParam();
  util::Rng rng(31);
  graph::WlFeaturizer feat(7);
  const auto topo = circuit::Topology::random(rng);
  const auto g1 = circuit::build_circuit_graph(topo);
  const auto g2 = circuit::build_circuit_graph(topo);
  EXPECT_DOUBLE_EQ(graph::wl_kernel_normalized(feat, g1, g2, h), 1.0);
}

// ---------------------------------------------------------------------------
// Random-topology fuzz: the evaluation pipeline never throws.
// ---------------------------------------------------------------------------

class PipelineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST_P(PipelineFuzz, RandomSizedDesignsEvaluateWithoutThrowing) {
  util::Rng rng(GetParam());
  const sizing::EvalContext ctx(circuit::spec_by_name("S-1"));
  for (int i = 0; i < 20; ++i) {
    const auto topo = circuit::Topology::random(rng);
    const auto schema = circuit::make_schema(topo, ctx.behavioral);
    std::vector<double> unit(schema.size());
    for (auto& u : unit) u = rng.uniform();
    const auto point =
        sizing::evaluate_sized(topo, schema.from_unit(unit), ctx);
    // Invariants of every evaluation, valid or not:
    EXPECT_EQ(point.feasible, ctx.spec.satisfied(point.perf));
    if (!point.perf.valid) {
      EXPECT_EQ(point.fom, 0.0);
      EXPECT_FALSE(point.feasible);
    } else {
      EXPECT_GE(point.perf.gbw_hz, 0.0);
      EXPECT_GT(point.perf.power_w, 0.0);
    }
  }
}

}  // namespace
