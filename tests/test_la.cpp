// Unit tests for intooa::la — dense matrices, LU, Cholesky, grids, and the
// nonsymmetric eigensolver / natural-frequency analysis.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>

#include "la/cholesky.hpp"
#include "la/eigen.hpp"
#include "la/grid.hpp"
#include "la/lu.hpp"
#include "la/matrix.hpp"
#include "util/rng.hpp"

namespace {

using namespace intooa::la;
using Cx = std::complex<double>;

TEST(Matrix, ConstructionAndAccess) {
  MatrixD m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(m(r, c), 0.0);
  }
  m(1, 2) = 5.0;
  EXPECT_EQ(m.at(1, 2), 5.0);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
}

TEST(Matrix, InitializerListAndEquality) {
  MatrixD m = {{1, 2}, {3, 4}};
  EXPECT_EQ(m(0, 1), 2.0);
  MatrixD same = {{1, 2}, {3, 4}};
  EXPECT_EQ(m, same);
  EXPECT_THROW((MatrixD{{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, IdentityAndMatvec) {
  const auto eye = MatrixD::identity(3);
  const std::vector<double> x = {1, 2, 3};
  EXPECT_EQ(eye.matvec(x), x);
  MatrixD m = {{1, 2}, {3, 4}};
  const std::vector<double> y = m.matvec(std::vector<double>{1, 1});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
  EXPECT_THROW(m.matvec(x), std::invalid_argument);
}

TEST(Matrix, MatmulAndTranspose) {
  MatrixD a = {{1, 2}, {3, 4}};
  MatrixD b = {{5, 6}, {7, 8}};
  const MatrixD ab = a.matmul(b);
  EXPECT_DOUBLE_EQ(ab(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(ab(1, 1), 50.0);
  const MatrixD at = a.transposed();
  EXPECT_DOUBLE_EQ(at(0, 1), 3.0);
}

TEST(Matrix, ArithmeticOperators) {
  MatrixD a = {{1, 2}, {3, 4}};
  MatrixD b = a;
  b += a;
  EXPECT_DOUBLE_EQ(b(1, 1), 8.0);
  const MatrixD c = a * 3.0;
  EXPECT_DOUBLE_EQ(c(0, 0), 3.0);
}

TEST(Matrix, ComplexSupport) {
  MatrixC m(2, 2);
  m(0, 0) = {1.0, 1.0};
  m(0, 1) = {0.0, -1.0};
  const auto y = m.matvec(std::vector<Cx>{{1.0, 0.0}, {0.0, 1.0}});
  EXPECT_NEAR(y[0].real(), 2.0, 1e-15);  // (1+i)*1 + (-i)*(i) = 1+i+1 = 2+i
  EXPECT_NEAR(y[0].imag(), 1.0, 1e-15);
}

TEST(Lu, SolvesKnownSystem) {
  MatrixD a = {{2, 1}, {1, 3}};
  const Lu<double> lu(a);
  const auto x = lu.solve(std::vector<double>{3, 5});
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(Lu, RandomRoundTrip) {
  intooa::util::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + rng.index(10);
    MatrixD a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
      a(i, i) += 3.0;  // keep well-conditioned
    }
    std::vector<double> x_true(n);
    for (auto& v : x_true) v = rng.normal();
    const auto b = a.matvec(x_true);
    const auto x = Lu<double>(a).solve(b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
  }
}

TEST(Lu, ComplexRoundTrip) {
  intooa::util::Rng rng(4);
  const std::size_t n = 6;
  MatrixC a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = {rng.normal(), rng.normal()};
    a(i, i) += Cx(4.0, 0.0);
  }
  std::vector<Cx> x_true(n);
  for (auto& v : x_true) v = {rng.normal(), rng.normal()};
  const auto b = a.matvec(x_true);
  const auto x = Lu<Cx>(a).solve(b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(x[i] - x_true[i]), 0.0, 1e-9);
  }
}

TEST(Lu, DetectsSingular) {
  MatrixD a = {{1, 2}, {2, 4}};
  EXPECT_THROW(Lu<double>{a}, SingularMatrixError);
  MatrixD zero(3, 3);
  EXPECT_THROW(Lu<double>{zero}, SingularMatrixError);
}

TEST(Lu, PivotingHandlesZeroDiagonal) {
  MatrixD a = {{0, 1}, {1, 0}};
  const auto x = Lu<double>(a).solve(std::vector<double>{2, 3});
  EXPECT_DOUBLE_EQ(x[0], 3.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
}

TEST(Lu, Determinant) {
  MatrixD a = {{2, 0}, {0, 3}};
  EXPECT_NEAR(Lu<double>(a).determinant(), 6.0, 1e-12);
  MatrixD swapped = {{0, 1}, {1, 0}};
  EXPECT_NEAR(Lu<double>(swapped).determinant(), -1.0, 1e-12);
}

TEST(Lu, MatrixSolve) {
  MatrixD a = {{3, 1}, {1, 2}};
  const MatrixD eye = MatrixD::identity(2);
  const MatrixD inv = Lu<double>(a).solve(eye);
  const MatrixD prod = a.matmul(inv);
  EXPECT_NEAR(prod(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(prod(0, 1), 0.0, 1e-12);
}

TEST(Cholesky, SolveAndLogDet) {
  MatrixD a = {{4, 2}, {2, 3}};
  const Cholesky chol(a);
  EXPECT_EQ(chol.jitter(), 0.0);
  const auto x = chol.solve(std::vector<double>{1, 1});
  // Check A x = b.
  const auto b = a.matvec(x);
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 1.0, 1e-12);
  EXPECT_NEAR(chol.log_det(), std::log(4.0 * 3.0 - 4.0), 1e-12);
}

TEST(Cholesky, JitterOnSemidefinite) {
  // Rank-1 PSD matrix: needs jitter.
  MatrixD a = {{1, 1}, {1, 1}};
  const Cholesky chol(a);
  EXPECT_GT(chol.jitter(), 0.0);
  const auto x = chol.solve(std::vector<double>{1, 1});
  EXPECT_TRUE(std::isfinite(x[0]));
}

TEST(Cholesky, RejectsIndefinite) {
  MatrixD a = {{1, 0}, {0, -5}};
  EXPECT_THROW(Cholesky{a}, SingularMatrixError);
}

TEST(Cholesky, SolveLowerConsistent) {
  MatrixD a = {{9, 3}, {3, 5}};
  const Cholesky chol(a);
  const auto& l = chol.lower();
  const auto y = chol.solve_lower(std::vector<double>{3, 1});
  // L y = b
  EXPECT_NEAR(l(0, 0) * y[0], 3.0, 1e-12);
  EXPECT_NEAR(l(1, 0) * y[0] + l(1, 1) * y[1], 1.0, 1e-12);
}

TEST(Cholesky, TryExactMatchesConstructorOnSpd) {
  MatrixD a = {{4, 2}, {2, 3}};
  const auto chol = Cholesky::try_exact(a);
  ASSERT_TRUE(chol.has_value());
  EXPECT_EQ(chol->jitter(), 0.0);
  const Cholesky ref(a);
  EXPECT_EQ(chol->lower(), ref.lower());

  // Semidefinite and indefinite inputs are reported, not rescued.
  MatrixD psd = {{1, 1}, {1, 1}};
  EXPECT_FALSE(Cholesky::try_exact(psd).has_value());
  MatrixD indef = {{1, 0}, {0, -5}};
  EXPECT_FALSE(Cholesky::try_exact(indef).has_value());
  MatrixD rect(2, 3);
  EXPECT_THROW(Cholesky::try_exact(rect), std::invalid_argument);
}

TEST(Cholesky, AppendRowMatchesFreshFactorization) {
  // Grow random SPD matrices one bordered row at a time; at every size the
  // incrementally extended factorization must agree with a from-scratch
  // factorization of the same leading block.
  intooa::util::Rng rng(77);
  for (int trial = 0; trial < 5; ++trial) {
    const std::size_t n = 8 + rng.index(8);
    MatrixD b(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.normal();
    }
    MatrixD a(n, n);  // B B^T + n I: comfortably SPD
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        double acc = 0.0;
        for (std::size_t k = 0; k < n; ++k) acc += b(i, k) * b(j, k);
        a(i, j) = acc;
      }
      a(i, i) += static_cast<double>(n);
    }

    MatrixD lead(2, 2);
    for (std::size_t i = 0; i < 2; ++i) {
      for (std::size_t j = 0; j < 2; ++j) lead(i, j) = a(i, j);
    }
    auto grown = Cholesky::try_exact(lead);
    ASSERT_TRUE(grown.has_value());

    for (std::size_t k = 2; k < n; ++k) {
      std::vector<double> row(k + 1);
      for (std::size_t j = 0; j <= k; ++j) row[j] = a(k, j);
      grown->append_row(row);
      ASSERT_EQ(grown->order(), k + 1);

      MatrixD block(k + 1, k + 1);
      for (std::size_t i = 0; i <= k; ++i) {
        for (std::size_t j = 0; j <= k; ++j) block(i, j) = a(i, j);
      }
      const auto fresh = Cholesky::try_exact(block);
      ASSERT_TRUE(fresh.has_value());

      // The border update replays the column-Cholesky recurrence in the
      // same operation order, so the factors are identical, not just close.
      EXPECT_EQ(grown->lower(), fresh->lower());
      EXPECT_NEAR(grown->log_det(), fresh->log_det(), 1e-10);
      std::vector<double> rhs(k + 1);
      for (std::size_t i = 0; i <= k; ++i) {
        rhs[i] = 1.0 + static_cast<double>(i);
      }
      const auto x_grown = grown->solve(rhs);
      const auto x_fresh = fresh->solve(rhs);
      for (std::size_t i = 0; i <= k; ++i) {
        EXPECT_NEAR(x_grown[i], x_fresh[i], 1e-10);
      }
    }
  }
}

TEST(Cholesky, AppendRowRejectsNonPositiveDefinite) {
  MatrixD a = {{1}};
  auto chol = Cholesky::try_exact(a);
  ASSERT_TRUE(chol.has_value());
  // Bordering to {{1, 1}, {1, 1}} (rank 1) must fail and leave the
  // factorization untouched.
  const std::vector<double> rank1 = {1.0, 1.0};
  EXPECT_THROW(chol->append_row(rank1), SingularMatrixError);
  EXPECT_EQ(chol->order(), 1u);
  const std::vector<double> wrong_size = {1.0};
  EXPECT_THROW(chol->append_row(wrong_size), std::invalid_argument);
  // A valid border still works after the failed attempt.
  const std::vector<double> good = {1.0, 5.0};
  chol->append_row(good);
  EXPECT_EQ(chol->order(), 2u);
  EXPECT_NEAR(chol->log_det(), std::log(5.0 - 1.0), 1e-12);
}

TEST(Grid, Linspace) {
  const auto v = linspace(0.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v.back(), 1.0);
  EXPECT_DOUBLE_EQ(v[2], 0.5);
  EXPECT_TRUE(linspace(1.0, 2.0, 0).empty());
  EXPECT_THROW(linspace(0.0, 1.0, 1), std::invalid_argument);
}

TEST(Grid, Logspace) {
  const auto v = logspace(1.0, 1000.0, 4);
  ASSERT_EQ(v.size(), 4u);
  EXPECT_NEAR(v[0], 1.0, 1e-12);
  EXPECT_NEAR(v[1], 10.0, 1e-9);
  EXPECT_NEAR(v[3], 1000.0, 1e-9);
  EXPECT_THROW(logspace(-1.0, 1.0, 3), std::invalid_argument);
}

TEST(Eigen, TriangularMatrix) {
  MatrixD a = {{2, 1, 0}, {0, 3, 4}, {0, 0, 5}};
  auto eigs = eigenvalues(a);
  std::sort(eigs.begin(), eigs.end(),
            [](Cx x, Cx y) { return x.real() < y.real(); });
  ASSERT_EQ(eigs.size(), 3u);
  EXPECT_NEAR(eigs[0].real(), 2.0, 1e-9);
  EXPECT_NEAR(eigs[1].real(), 3.0, 1e-9);
  EXPECT_NEAR(eigs[2].real(), 5.0, 1e-9);
}

TEST(Eigen, ComplexPair) {
  MatrixD rot = {{0, -1}, {1, 0}};
  auto eigs = eigenvalues(rot);
  std::sort(eigs.begin(), eigs.end(),
            [](Cx x, Cx y) { return x.imag() < y.imag(); });
  EXPECT_NEAR(eigs[0].imag(), -1.0, 1e-9);
  EXPECT_NEAR(eigs[1].imag(), 1.0, 1e-9);
  EXPECT_NEAR(eigs[0].real(), 0.0, 1e-9);
}

TEST(Eigen, SimilarityInvariance) {
  // s * diag(1..6) * s^{-1} has eigenvalues 1..6.
  const std::size_t n = 6;
  MatrixD d(n, n);
  for (std::size_t i = 0; i < n; ++i) d(i, i) = static_cast<double>(i + 1);
  MatrixD s(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const int phase = (static_cast<int>(i) * 7 + static_cast<int>(j) * 3) % 5;
      s(i, j) = (i == j ? 2.0 : 0.0) + 0.3 * static_cast<double>(phase - 2) / 5.0;
    }
  }
  const MatrixD sd = s.matmul(d);
  const MatrixD st = s.transposed();
  const MatrixD xt = Lu<double>(st).solve(sd.transposed());
  auto eigs = eigenvalues(xt.transposed());
  std::sort(eigs.begin(), eigs.end(),
            [](Cx x, Cx y) { return x.real() < y.real(); });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(eigs[i].real(), static_cast<double>(i + 1), 1e-7);
    EXPECT_NEAR(eigs[i].imag(), 0.0, 1e-7);
  }
}

TEST(Eigen, RepeatedEigenvalues) {
  MatrixD a = {{2, 1}, {0, 2}};  // defective, eigenvalue 2 twice
  auto eigs = eigenvalues(a);
  for (const auto& e : eigs) {
    EXPECT_NEAR(e.real(), 2.0, 1e-6);
    EXPECT_NEAR(e.imag(), 0.0, 1e-6);
  }
}

TEST(Eigen, TraceAndDeterminantConsistency) {
  intooa::util::Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 3 + rng.index(6);
    MatrixD a(n, n);
    double trace = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
      trace += a(i, i);
    }
    const auto eigs = eigenvalues(a);
    Cx sum = 0.0;
    for (const auto& e : eigs) sum += e;
    EXPECT_NEAR(sum.real(), trace, 1e-7 * (1.0 + std::fabs(trace)));
    EXPECT_NEAR(sum.imag(), 0.0, 1e-7);
  }
}

TEST(Eigen, NaturalFrequenciesOfRcCircuit) {
  // Single node with conductance g and capacitance c to ground:
  // pole s = -g/c.
  MatrixD g = {{1e-3}};
  MatrixD c = {{1e-9}};
  const auto poles = natural_frequencies(g, c);
  ASSERT_EQ(poles.size(), 1u);
  EXPECT_NEAR(poles[0].real(), -1e6, 1.0);
  EXPECT_NEAR(poles[0].imag(), 0.0, 1e-6);
}

TEST(Eigen, NaturalFrequenciesSkipCapacitorFreeModes) {
  // Two decoupled nodes; only one has a capacitor.
  MatrixD g = {{1e-3, 0}, {0, 1e-4}};
  MatrixD c = {{1e-9, 0}, {0, 0}};
  const auto poles = natural_frequencies(g, c);
  ASSERT_EQ(poles.size(), 1u);
  EXPECT_NEAR(poles[0].real(), -1e6, 1.0);
}

TEST(Eigen, StabilityPredicate) {
  EXPECT_TRUE(is_stable({Cx(-1e3, 2e4), Cx(-5.0, 0.0)}));
  EXPECT_FALSE(is_stable({Cx(-1e3, 0.0), Cx(1e2, 1e4)}));
  EXPECT_TRUE(is_stable({}));
  // Negative-real part dominates a tiny positive numerical residue.
  EXPECT_TRUE(is_stable({Cx(1e-3, 1e6)}));
}

TEST(Eigen, UnstableRcWithNegativeConductance) {
  // Negative conductance (positive feedback): RHP pole.
  MatrixD g = {{-1e-3}};
  MatrixD c = {{1e-9}};
  const auto poles = natural_frequencies(g, c);
  ASSERT_EQ(poles.size(), 1u);
  EXPECT_GT(poles[0].real(), 0.0);
  EXPECT_FALSE(is_stable(poles));
}

TEST(Dot, RealAndErrors) {
  const std::vector<double> a = {1, 2, 3};
  const std::vector<double> b = {4, 5, 6};
  EXPECT_DOUBLE_EQ(dot<double>(a, b), 32.0);
  const std::vector<double> c = {1, 2};
  EXPECT_THROW(dot<double>(a, c), std::invalid_argument);
}

}  // namespace
