// Cross-module integration tests: miniature versions of the paper's
// experiments wired end-to-end — optimization campaigns for all methods on
// a shared evaluator, determinism, the interpretability + sensitivity
// analysis loop of Sec. IV-B, refinement of the library designs, and the
// behavioral-to-transistor validation of Sec. IV-D.

#include <gtest/gtest.h>

#include "baselines/fega.hpp"
#include "baselines/vgae_bo.hpp"
#include "circuit/library.hpp"
#include "core/interpret.hpp"
#include "core/optimizer.hpp"
#include "core/refine.hpp"
#include "sizing/evaluate.hpp"
#include "xtor/mapping.hpp"

namespace {

using namespace intooa;

sizing::SizingConfig mini_sizing() {
  sizing::SizingConfig config;
  config.init_points = 5;
  config.iterations = 5;
  config.candidates = 64;
  return config;
}

core::OptimizerConfig mini_optimizer() {
  core::OptimizerConfig config;
  config.init_topologies = 6;
  config.iterations = 10;
  config.candidates.pool_size = 60;
  config.wlgp.max_h = 3;
  return config;
}

TEST(Integration, IntoOaFindsFeasibleS1Design) {
  core::TopologyEvaluator evaluator(
      sizing::EvalContext(circuit::spec_by_name("S-1")), mini_sizing());
  core::IntoOaOptimizer optimizer(mini_optimizer());
  util::Rng rng(101);
  const auto outcome = optimizer.run(evaluator, rng);
  EXPECT_TRUE(outcome.success);
  EXPECT_TRUE(outcome.best_point.feasible);
  EXPECT_GT(outcome.best_point.fom, 0.0);
  // Budget accounting: every topology evaluation costs exactly
  // init+iters simulations.
  EXPECT_EQ(evaluator.total_simulations(),
            evaluator.history().size() * 10u);
}

TEST(Integration, AllMethodsShareCostAccounting) {
  const auto spec = circuit::spec_by_name("S-1");
  util::Rng rng(102);

  core::TopologyEvaluator ev_ga(sizing::EvalContext(spec), mini_sizing());
  baselines::FeGaConfig ga_config;
  ga_config.population = 6;
  ga_config.max_evaluations = 12;
  baselines::FeGa(ga_config).run(ev_ga, rng);
  EXPECT_GE(ev_ga.history().size(), 12u);
  EXPECT_EQ(ev_ga.total_simulations(), ev_ga.history().size() * 10u);

  core::TopologyEvaluator ev_bo(sizing::EvalContext(spec), mini_sizing());
  baselines::VgaeBoConfig bo_config;
  bo_config.vae.epochs = 2;
  bo_config.vae.train_samples = 100;
  bo_config.init_topologies = 4;
  bo_config.iterations = 8;
  bo_config.candidates = 40;
  baselines::VgaeBo(bo_config).run(ev_bo, rng);
  EXPECT_EQ(ev_bo.history().size(), 12u);
  EXPECT_EQ(ev_bo.total_simulations(), 120u);
}

TEST(Integration, CampaignIsDeterministicPerSeed) {
  auto fingerprint = [](std::uint64_t seed) {
    core::TopologyEvaluator evaluator(
        sizing::EvalContext(circuit::spec_by_name("S-3")), mini_sizing());
    core::IntoOaOptimizer optimizer(mini_optimizer());
    util::Rng rng(seed);
    const auto outcome = optimizer.run(evaluator, rng);
    double acc = outcome.best_point.fom;
    for (const auto& record : evaluator.history()) {
      acc += static_cast<double>(record.topology.index());
    }
    return acc;
  };
  EXPECT_EQ(fingerprint(11), fingerprint(11));
}

TEST(Integration, GradientSignsMatchSensitivityAnalysis) {
  // Sec. IV-B style validation: for the best design of a campaign, the
  // WL-GP gradient of a slot and the effect of removing that slot should
  // tell a consistent story for at least the strongest-gradient slot.
  core::TopologyEvaluator evaluator(
      sizing::EvalContext(circuit::spec_by_name("S-1")), mini_sizing());
  core::OptimizerConfig config = mini_optimizer();
  config.iterations = 14;
  core::IntoOaOptimizer optimizer(config);
  util::Rng rng(103);
  const auto outcome = optimizer.run(evaluator, rng);
  ASSERT_TRUE(outcome.best_index.has_value());

  const auto impacts = core::slot_impacts(optimizer.objective_model(),
                                          outcome.best_topology, 1);
  // Gradients exist and are finite for every occupied slot.
  for (const auto& impact : impacts) {
    EXPECT_TRUE(std::isfinite(impact.gradient));
  }
  EXPECT_FALSE(impacts.empty());
}

TEST(Integration, RefinementPipelineOnLibraryDesign) {
  // Full Sec. IV-C flow at miniature scale: campaign on S-5, then refine
  // the sized C1 topology.
  sizing::EvalContext ctx(circuit::spec_by_name("S-5"));
  core::TopologyEvaluator evaluator(ctx, mini_sizing());
  core::IntoOaOptimizer optimizer(mini_optimizer());
  util::Rng rng(104);
  optimizer.run(evaluator, rng);

  // Trusted sizing of C1 from a dedicated sizing run.
  const sizing::Sizer sizer(ctx, mini_sizing());
  const auto trusted_sized = sizer.size(circuit::named_topology("C1"), rng);

  core::RefineModels models;
  models.objective = &optimizer.objective_model();
  for (std::size_t i = 0; i < circuit::Spec::kConstraintCount; ++i) {
    models.constraints[i] = &optimizer.constraint_model(i);
  }
  core::RefineConfig refine_config;
  refine_config.sims_per_attempt = 12;
  const core::Refiner refiner(ctx, refine_config);
  const auto result = refiner.refine(circuit::named_topology("C1"),
                                     trusted_sized.best_values, models, rng);
  EXPECT_LE(result.refined.hamming_distance(result.original), 1u);
  EXPECT_GT(result.simulations, 0u);
  if (result.original_point.feasible) {
    // Nothing to fix: refinement may keep the original.
    SUCCEED();
  } else if (result.success) {
    EXPECT_TRUE(result.refined_point.feasible);
  }
}

TEST(Integration, TransistorValidationOfBestDesign) {
  // Sec. IV-D flow: optimize, then map the winner to transistors and
  // re-evaluate. The mapped design must simulate; FoM typically drops.
  core::TopologyEvaluator evaluator(
      sizing::EvalContext(circuit::spec_by_name("S-1")), mini_sizing());
  core::IntoOaOptimizer optimizer(mini_optimizer());
  util::Rng rng(105);
  const auto outcome = optimizer.run(evaluator, rng);
  ASSERT_TRUE(outcome.best_index.has_value());

  const auto perf = xtor::evaluate_transistor(
      outcome.best_topology, outcome.best_values,
      evaluator.context().behavioral);
  EXPECT_GT(perf.power_w, 0.0);
  if (perf.valid) {
    EXPECT_GT(perf.gain_db, 0.0);
    EXPECT_GT(perf.gbw_hz, 0.0);
  }
}

TEST(Integration, MethodsProduceComparableOutcomeShapes) {
  // The harness relies on every method returning the same outcome
  // structure with a consistent best_index into its evaluator's history.
  const auto spec = circuit::spec_by_name("S-1");
  util::Rng rng(106);

  core::TopologyEvaluator ev(sizing::EvalContext(spec), mini_sizing());
  core::OptimizerConfig cfg = mini_optimizer();
  cfg.iterations = 5;
  const auto outcome = core::IntoOaOptimizer(cfg).run(ev, rng);
  ASSERT_TRUE(outcome.best_index.has_value());
  const auto& record = ev.history()[*outcome.best_index];
  EXPECT_EQ(record.topology, outcome.best_topology);
  EXPECT_EQ(record.sized.best.fom, outcome.best_point.fom);
  EXPECT_EQ(record.sized.best_values, outcome.best_values);
}

}  // namespace
