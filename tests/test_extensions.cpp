// Unit tests for the extension modules: process-corner analysis
// (sizing/corners) and the markdown design-report generator (core/report).

#include <gtest/gtest.h>

#include "circuit/library.hpp"
#include "core/report.hpp"
#include "sizing/corners.hpp"

namespace {

using namespace intooa;

TEST(Corners, ApplyScalesConfig) {
  circuit::BehavioralConfig typ;
  sizing::Corner corner{"x", 1.2, 0.8, 1.1, 1.5};
  const auto scaled = corner.apply(typ);
  EXPECT_DOUBLE_EQ(scaled.stage_intrinsic_gain, typ.stage_intrinsic_gain * 1.2);
  EXPECT_DOUBLE_EQ(scaled.stage_ft_hz, typ.stage_ft_hz * 0.8);
  EXPECT_DOUBLE_EQ(scaled.gm_over_id, typ.gm_over_id * 1.1);
  EXPECT_DOUBLE_EQ(scaled.stage_c0, typ.stage_c0 * 1.5);
}

TEST(Corners, StandardSetLeadsWithTypical) {
  const auto& corners = sizing::standard_corners();
  ASSERT_EQ(corners.size(), 5u);
  EXPECT_EQ(corners[0].name, "typ");
  EXPECT_DOUBLE_EQ(corners[0].intrinsic_gain_scale, 1.0);
}

TEST(Corners, SweepEvaluatesEveryCorner) {
  const sizing::EvalContext ctx(circuit::spec_by_name("S-1"));
  const auto topo = circuit::named_topology("NMC");
  const std::vector<double> values = {10e-6, 100e-6, 2e-3, 2e-12};
  const auto sweep = sizing::evaluate_corners(topo, values, ctx);
  ASSERT_EQ(sweep.results.size(), 5u);
  for (const auto& r : sweep.results) {
    EXPECT_GE(r.point.perf.power_w, 0.0);
  }
  // Typical corner must equal a direct typical evaluation.
  const auto direct = sizing::evaluate_sized(topo, values, ctx);
  EXPECT_DOUBLE_EQ(sweep.results[0].point.fom, direct.fom);
}

TEST(Corners, GainCornerShiftsGain) {
  const sizing::EvalContext ctx(circuit::spec_by_name("S-1"));
  const auto topo = circuit::named_topology("NMC");
  const std::vector<double> values = {10e-6, 100e-6, 2e-3, 2e-12};
  const auto sweep = sizing::evaluate_corners(topo, values, ctx);
  // "lowgain" (index 3) scales A0 by 0.8: three stages lose
  // 60*log10(1/0.8) ~= 5.8 dB.
  const double typ_gain = sweep.results[0].point.perf.gain_db;
  const double low_gain = sweep.results[3].point.perf.gain_db;
  EXPECT_NEAR(typ_gain - low_gain, 5.8, 0.5);
}

TEST(Corners, GmOverIdCornerShiftsPower) {
  const sizing::EvalContext ctx(circuit::spec_by_name("S-1"));
  const auto topo = circuit::named_topology("NMC");
  const std::vector<double> values = {10e-6, 100e-6, 2e-3, 2e-12};
  const auto sweep = sizing::evaluate_corners(topo, values, ctx);
  // "fast" (index 1) improves gm/Id by 1.1: power drops by ~1/1.1.
  const double typ_power = sweep.results[0].point.perf.power_w;
  const double fast_power = sweep.results[1].point.perf.power_w;
  EXPECT_NEAR(fast_power * 1.1, typ_power, typ_power * 1e-9);
}

TEST(Corners, WorstIndexTracksLargestViolation) {
  const sizing::EvalContext ctx(circuit::spec_by_name("S-2"));  // 110 dB gain
  const auto topo = circuit::named_topology("NMC");
  const std::vector<double> values = {10e-6, 100e-6, 2e-3, 2e-12};
  const auto sweep = sizing::evaluate_corners(topo, values, ctx);
  double max_violation = 0.0;
  for (const auto& r : sweep.results) {
    max_violation = std::max(max_violation, r.point.violation());
  }
  EXPECT_DOUBLE_EQ(
      sweep.results[sweep.worst_index].point.violation(), max_violation);
  EXPECT_EQ(sweep.all_feasible, max_violation == 0.0);
}

TEST(Report, ExplainsDesignInMarkdown) {
  sizing::EvalContext ctx(circuit::spec_by_name("S-1"));
  sizing::SizingConfig sizing_config;
  sizing_config.init_points = 4;
  sizing_config.iterations = 4;
  core::TopologyEvaluator evaluator(ctx, sizing_config);
  core::OptimizerConfig config;
  config.init_topologies = 5;
  config.iterations = 6;
  config.candidates.pool_size = 40;
  core::IntoOaOptimizer optimizer(config);
  util::Rng rng(123);
  const auto outcome = optimizer.run(evaluator, rng);
  ASSERT_TRUE(outcome.best_index.has_value());

  const circuit::Topology topo = circuit::named_topology("C1");
  const auto schema = circuit::make_schema(topo, ctx.behavioral);
  std::vector<double> unit(schema.size(), 0.5);
  const auto point = sizing::evaluate_sized(topo, schema.from_unit(unit), ctx);

  const std::string report =
      core::explain_design(optimizer, topo, point, ctx.spec);
  EXPECT_NE(report.find("# Design report:"), std::string::npos);
  EXPECT_NE(report.find("| Gain |"), std::string::npos);
  EXPECT_NE(report.find("## Subcircuit attributions"), std::string::npos);
  for (const auto& name : circuit::Spec::constraint_names()) {
    EXPECT_NE(report.find("### " + name), std::string::npos);
  }
  EXPECT_NE(report.find("Strongest structures"), std::string::npos);
  // C1's occupied slots appear in context form.
  EXPECT_NE(report.find("-gmCp{"), std::string::npos);
}

TEST(Report, UntrainedOptimizerThrows) {
  core::IntoOaOptimizer optimizer;
  const circuit::Topology topo = circuit::named_topology("C1");
  sizing::EvalPoint point;
  EXPECT_THROW(core::explain_design(optimizer, topo, point,
                                    circuit::spec_by_name("S-1")),
               std::logic_error);
}

}  // namespace
