// Unit and end-to-end tests for intooa::svc — the wire codec, the socket
// framing (partial writes, torn frames, oversized frames), the
// Hello/HelloOk version handshake, bounded admission (Busy backpressure),
// the cache tiers (memory / persistent store), graceful drain, and the
// headline determinism contract: a remotely served evaluation is
// byte-identical to the same evaluation run in-process.

#include <gtest/gtest.h>

#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <climits>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/eval_key.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sizing/sizer.hpp"
#include "core/evaluator.hpp"
#include "store/record_io.hpp"
#include "store/store.hpp"
#include "svc/client.hpp"
#include "svc/client_pool.hpp"
#include "svc/protocol.hpp"
#include "svc/remote_backend.hpp"
#include "svc/server.hpp"
#include "svc/socket.hpp"
#include "util/rng.hpp"

namespace {

using namespace intooa;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Fresh unix-socket address for one test (unlinked up front; kept short —
/// sun_path is ~108 bytes).
svc::Address fresh_unix(const std::string& name) {
  const std::string path =
      temp_path("intooa-" + name + "-" + std::to_string(::getpid()) + ".sock");
  std::filesystem::remove(path);
  return svc::Address::parse("unix:" + path);
}

/// Tiny sizing protocol so an evaluation costs milliseconds, not seconds.
sizing::SizingConfig tiny_sizing() {
  sizing::SizingConfig cfg;
  cfg.init_points = 2;
  cfg.iterations = 2;
  cfg.candidates = 16;
  cfg.refit_hyper_every = 1;
  return cfg;
}

svc::EvalRequest tiny_request(std::uint64_t id, std::uint64_t topology_index,
                              const std::string& spec = "S-1") {
  svc::EvalRequest request;
  request.request_id = id;
  request.spec = circuit::spec_by_name(spec);
  request.sizing = tiny_sizing();
  request.topology_index = topology_index;
  return request;
}

/// The exact in-process evaluation the server promises to match
/// byte-for-byte: key-seeded RNG, paper sizer, store encoding.
std::string evaluate_in_process(const svc::EvalRequest& request) {
  const sizing::EvalContext context = request.eval_context();
  const core::EvalKeyContext keys(context, request.sizing);
  const circuit::Topology topology = circuit::Topology::from_index(
      static_cast<std::size_t>(request.topology_index));
  const core::EvalKey key = keys.key_for(topology);
  util::Rng sizing_rng(key.digest);
  const sizing::Sizer sizer(context, request.sizing);
  core::EvalRecord record;
  record.topology = topology;
  record.sized = sizer.size(topology, sizing_rng);
  return store::encode_record(key, record);
}

/// Server running on its own thread; drains and joins on destruction.
struct TestServer {
  svc::Server server;
  std::thread thread;

  explicit TestServer(svc::ServerConfig config) : server(std::move(config)) {
    server.bind();
    thread = std::thread([this] { server.run(); });
  }
  ~TestServer() { stop(); }
  void stop() {
    if (thread.joinable()) {
      server.begin_drain();
      thread.join();
    }
  }
};

svc::ServerConfig base_config(const svc::Address& address) {
  svc::ServerConfig config;
  config.address = address;
  config.threads = 2;
  return config;
}

// ---- protocol codec -------------------------------------------------------

TEST(SvcProtocol, HelloRoundTripAndMagicCheck) {
  const std::string payload = svc::encode_hello(7, 3);
  const auto hello = svc::decode_hello(payload);
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(hello->version, 7u);
  EXPECT_EQ(hello->minor, 3u);
  // A corrupted magic is rejected, not misparsed.
  std::string bad = payload;
  bad[0] ^= 0x5a;
  EXPECT_FALSE(svc::decode_hello(bad).has_value());
  EXPECT_FALSE(svc::decode_hello("").has_value());
}

TEST(SvcProtocol, EvalRequestRoundTripsEveryField) {
  svc::EvalRequest request = tiny_request(42, 137, "S-3");
  request.ac.points_per_decade = 24;
  request.ac.check_stability = false;
  request.behavioral.gm_hi *= 1.5;
  const auto decoded =
      svc::decode_eval_request(svc::encode_eval_request(request));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->request_id, 42u);
  EXPECT_EQ(decoded->topology_index, 137u);
  EXPECT_EQ(decoded->spec.name, "S-3");
  EXPECT_EQ(decoded->ac.points_per_decade, 24u);
  EXPECT_FALSE(decoded->ac.check_stability);
  EXPECT_EQ(decoded->behavioral.gm_hi, request.behavioral.gm_hi);
  EXPECT_EQ(decoded->sizing.init_points, request.sizing.init_points);
  // The decoded request builds the same evaluation key — the property the
  // warm tiers rely on.
  const core::EvalKeyContext a(request.eval_context(), request.sizing);
  const core::EvalKeyContext b(decoded->eval_context(), decoded->sizing);
  EXPECT_EQ(a.prefix(), b.prefix());
}

TEST(SvcProtocol, DecodersRejectTruncationAndTrailingBytes) {
  const std::string payload =
      svc::encode_eval_request(tiny_request(1, 2));
  for (const std::size_t cut : {std::size_t{0}, std::size_t{3},
                                payload.size() / 2, payload.size() - 1}) {
    EXPECT_FALSE(
        svc::decode_eval_request(payload.substr(0, cut)).has_value())
        << "cut=" << cut;
  }
  EXPECT_FALSE(svc::decode_eval_request(payload + "x").has_value());

  const std::string busy = svc::encode_busy({9, 250});
  EXPECT_FALSE(svc::decode_busy(busy + "x").has_value());
  const std::string error =
      svc::encode_error({9, svc::ErrorCode::Draining, "drain"});
  const auto decoded_error = svc::decode_error(error);
  ASSERT_TRUE(decoded_error.has_value());
  EXPECT_EQ(decoded_error->code, svc::ErrorCode::Draining);
  EXPECT_EQ(decoded_error->message, "drain");
}

TEST(SvcProtocol, FrameEncoderRejectsOversizedPayload) {
  EXPECT_THROW(svc::encode_frame(svc::MsgType::Error,
                                 std::string(svc::kMaxFrame + 1, 'x')),
               std::length_error);
}

TEST(SvcProtocol, AddressParsing) {
  const svc::Address unix_addr = svc::Address::parse("unix:/tmp/x.sock");
  EXPECT_EQ(unix_addr.kind, svc::Address::Kind::Unix);
  EXPECT_EQ(unix_addr.path, "/tmp/x.sock");
  const svc::Address tcp = svc::Address::parse("tcp:127.0.0.1:4815");
  EXPECT_EQ(tcp.kind, svc::Address::Kind::Tcp);
  EXPECT_EQ(tcp.host, "127.0.0.1");
  EXPECT_EQ(tcp.port, 4815);
  EXPECT_EQ(svc::Address::parse("localhost:80").kind,
            svc::Address::Kind::Tcp);
  EXPECT_EQ(svc::Address::parse("/tmp/y.sock").kind,
            svc::Address::Kind::Unix);
  EXPECT_THROW(svc::Address::parse(""), std::invalid_argument);
  EXPECT_THROW(svc::Address::parse("tcp:host:99999"), std::invalid_argument);
}

// ---- end-to-end -----------------------------------------------------------

TEST(SvcServer, RemoteEvaluationIsByteIdenticalToInProcess) {
  TestServer ts(base_config(fresh_unix("svc-bytes")));
  svc::Client client;
  client.connect(ts.server.config().address);

  const svc::EvalRequest request = tiny_request(1, 5);
  const svc::Reply reply = client.evaluate(request, 30'000);
  ASSERT_EQ(reply.kind, svc::Reply::Kind::Ok);
  EXPECT_EQ(reply.response.request_id, 1u);
  EXPECT_EQ(reply.response.served_from, svc::ServedFrom::Computed);
  EXPECT_EQ(reply.response.record_payload, evaluate_in_process(request));

  // Same key again: served from the shard memory cache, same bytes.
  const svc::Reply warm = client.evaluate(tiny_request(2, 5), 30'000);
  ASSERT_EQ(warm.kind, svc::Reply::Kind::Ok);
  EXPECT_EQ(warm.response.served_from, svc::ServedFrom::Memory);
  EXPECT_EQ(warm.response.record_payload, reply.response.record_payload);

  ts.stop();
  const svc::ServerStats stats = ts.server.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.responses_ok, 2u);
  EXPECT_EQ(stats.served_computed, 1u);
  EXPECT_EQ(stats.served_memory, 1u);
}

TEST(SvcServer, WarmStoreServesAcrossServerRestarts) {
  const std::string store_path = temp_path("intooa-svc-store-test.bin");
  std::filesystem::remove(store_path);
  const svc::Address address = fresh_unix("svc-warm");
  const svc::EvalRequest request = tiny_request(1, 9, "S-2");
  std::string cold_bytes;
  {
    svc::ServerConfig config = base_config(address);
    config.store = store::EvalStore::open(store_path);
    TestServer ts(std::move(config));
    svc::Client client;
    client.connect(address);
    const svc::Reply reply = client.evaluate(request, 30'000);
    ASSERT_EQ(reply.kind, svc::Reply::Kind::Ok);
    EXPECT_EQ(reply.response.served_from, svc::ServedFrom::Computed);
    cold_bytes = reply.response.record_payload;
  }
  {
    // Fresh server process-equivalent: empty memory cache, same store file.
    svc::ServerConfig config = base_config(address);
    config.store = store::EvalStore::open(store_path);
    TestServer ts(std::move(config));
    svc::Client client;
    client.connect(address);
    const svc::Reply reply = client.evaluate(request, 30'000);
    ASSERT_EQ(reply.kind, svc::Reply::Kind::Ok);
    EXPECT_EQ(reply.response.served_from, svc::ServedFrom::Store);
    EXPECT_EQ(reply.response.record_payload, cold_bytes);
    ts.stop();
    EXPECT_EQ(ts.server.stats().served_store, 1u);
  }
  std::filesystem::remove(store_path);
}

TEST(SvcServer, RejectsProtocolVersionMismatch) {
  TestServer ts(base_config(fresh_unix("svc-version")));
  svc::Fd fd = svc::connect_to(ts.server.config().address);
  ASSERT_TRUE(svc::write_all(
      fd.get(),
      svc::encode_frame(svc::MsgType::Hello, svc::encode_hello(99))));
  svc::Frame frame;
  ASSERT_EQ(svc::read_frame(fd.get(), frame, 10'000), svc::ReadStatus::Ok);
  ASSERT_EQ(frame.type, svc::MsgType::Error);
  const auto error = svc::decode_error(frame.payload);
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->code, svc::ErrorCode::VersionMismatch);
  // The server closes the connection after rejecting the handshake.
  EXPECT_EQ(svc::read_frame(fd.get(), frame, 10'000),
            svc::ReadStatus::Closed);
}

TEST(SvcServer, RejectsOversizedFrames) {
  TestServer ts(base_config(fresh_unix("svc-oversized")));
  svc::Fd fd = svc::connect_to(ts.server.config().address);
  // Hand-rolled header announcing a payload over the cap.
  const std::uint32_t huge = svc::kMaxFrame + 1;
  std::string header(4, '\0');
  std::memcpy(header.data(), &huge, 4);
  header.push_back(static_cast<char>(svc::MsgType::Hello));
  ASSERT_TRUE(svc::write_all(fd.get(), header));
  svc::Frame frame;
  ASSERT_EQ(svc::read_frame(fd.get(), frame, 10'000), svc::ReadStatus::Ok);
  ASSERT_EQ(frame.type, svc::MsgType::Error);
  const auto error = svc::decode_error(frame.payload);
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->code, svc::ErrorCode::OversizedFrame);
  EXPECT_EQ(svc::read_frame(fd.get(), frame, 10'000),
            svc::ReadStatus::Closed);
}

TEST(SvcServer, ReassemblesDribbledFramesAndSurvivesTornOnes) {
  TestServer ts(base_config(fresh_unix("svc-partial")));
  const svc::Address& address = ts.server.config().address;

  {
    // A torn frame: half a Ping header, then a hard close. The server must
    // treat it as a broken peer, not wedge or crash.
    svc::Fd torn = svc::connect_to(address);
    ASSERT_TRUE(svc::write_all(torn.get(), std::string("\x03\x00", 2)));
  }

  // A peer that dribbles the handshake and a Ping a few bytes at a time
  // still gets served: read_frame reassembles across short reads.
  svc::Fd fd = svc::connect_to(address);
  const std::string hello =
      svc::encode_frame(svc::MsgType::Hello, svc::encode_hello());
  const std::string ping =
      svc::encode_frame(svc::MsgType::Ping, svc::encode_ping(0xA11CE));
  const std::string bytes = hello + ping;
  for (std::size_t i = 0; i < bytes.size(); i += 3) {
    ASSERT_TRUE(svc::write_all(fd.get(), bytes.substr(i, 3)));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  svc::Frame frame;
  ASSERT_EQ(svc::read_frame(fd.get(), frame, 10'000), svc::ReadStatus::Ok);
  EXPECT_EQ(frame.type, svc::MsgType::HelloOk);
  ASSERT_EQ(svc::read_frame(fd.get(), frame, 10'000), svc::ReadStatus::Ok);
  EXPECT_EQ(frame.type, svc::MsgType::Pong);
  EXPECT_EQ(svc::decode_ping(frame.payload), 0xA11CEu);
}

TEST(SvcServer, BusyUnderSaturation) {
  svc::ServerConfig config = base_config(fresh_unix("svc-busy"));
  config.max_inflight = 1;
  config.test_eval_delay_ms = 700;
  config.busy_retry_ms = 123;
  TestServer ts(std::move(config));
  svc::Client client;
  client.connect(ts.server.config().address);

  // Two pipelined requests on one connection: the first takes the only
  // in-flight slot (and holds it for test_eval_delay_ms), so the second is
  // rejected Busy immediately — explicit backpressure, not buffering.
  client.send_request(tiny_request(1, 3));
  client.send_request(tiny_request(2, 4));

  const svc::Reply first = client.read_reply(30'000);
  ASSERT_EQ(first.kind, svc::Reply::Kind::Busy);
  EXPECT_EQ(first.busy.request_id, 2u);
  EXPECT_EQ(first.busy.retry_after_ms, 123u);

  const svc::Reply second = client.read_reply(30'000);
  ASSERT_EQ(second.kind, svc::Reply::Kind::Ok);
  EXPECT_EQ(second.response.request_id, 1u);

  // With the slot free again, the retry path succeeds.
  const svc::Reply retried =
      client.evaluate_with_retry(tiny_request(3, 4), 8, 30'000);
  EXPECT_EQ(retried.kind, svc::Reply::Kind::Ok);

  ts.stop();
  EXPECT_GE(ts.server.stats().busy_rejections, 1u);
}

TEST(SvcServer, GracefulDrainFinishesInflightAndRefusesNewWork) {
  svc::ServerConfig config = base_config(fresh_unix("svc-drain"));
  config.test_eval_delay_ms = 600;
  TestServer ts(std::move(config));
  const std::string socket_path = ts.server.config().address.path;
  svc::Client client;
  client.connect(ts.server.config().address);

  client.send_request(tiny_request(1, 6));
  // Let the request get admitted before the drain begins.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  ts.server.begin_drain();
  client.send_request(tiny_request(2, 7));

  // The post-drain request is refused with Error(draining); the admitted
  // one still completes and flushes before the connection closes.
  bool saw_ok = false, saw_draining = false;
  for (int i = 0; i < 2; ++i) {
    const svc::Reply reply = client.read_reply(30'000);
    if (reply.kind == svc::Reply::Kind::Ok) {
      EXPECT_EQ(reply.response.request_id, 1u);
      saw_ok = true;
    } else {
      ASSERT_EQ(reply.kind, svc::Reply::Kind::Error);
      EXPECT_EQ(reply.error.request_id, 2u);
      EXPECT_EQ(reply.error.code, svc::ErrorCode::Draining);
      saw_draining = true;
    }
  }
  EXPECT_TRUE(saw_ok);
  EXPECT_TRUE(saw_draining);

  // run() returns (the TestServer join would hang otherwise), the stats
  // show exactly one served evaluation, and the socket file is gone.
  ts.stop();
  const svc::ServerStats stats = ts.server.stats();
  EXPECT_EQ(stats.responses_ok, 1u);
  EXPECT_EQ(stats.errors, 1u);
  EXPECT_FALSE(std::filesystem::exists(socket_path));
}

TEST(SvcServer, IdleConnectionsAreClosed) {
  svc::ServerConfig config = base_config(fresh_unix("svc-idle"));
  config.idle_timeout_ms = 200;
  TestServer ts(std::move(config));
  svc::Client client;
  client.connect(ts.server.config().address);
  // Say nothing: the server hangs up after the idle timeout.
  svc::Fd probe = svc::connect_to(ts.server.config().address);
  ASSERT_TRUE(svc::write_all(
      probe.get(), svc::encode_frame(svc::MsgType::Hello,
                                     svc::encode_hello())));
  svc::Frame frame;
  ASSERT_EQ(svc::read_frame(probe.get(), frame, 10'000), svc::ReadStatus::Ok);
  EXPECT_EQ(frame.type, svc::MsgType::HelloOk);
  EXPECT_EQ(svc::read_frame(probe.get(), frame, 10'000),
            svc::ReadStatus::Closed);
}

TEST(SvcServer, ConnectionThreadsAreReapedNotAccumulated) {
  // Regression: the accept loop must reap finished connection-handler
  // threads as it goes (sched::JobService's announce-and-reap hygiene),
  // not accumulate one joinable thread per connection until drain.
  TestServer ts(base_config(fresh_unix("svc-reap")));
  constexpr int kConnections = 40;
  for (int i = 0; i < kConnections; ++i) {
    svc::Client client;
    client.connect(ts.server.config().address);
    EXPECT_TRUE(client.ping(static_cast<std::uint64_t>(i) + 1, 10'000));
    client.close();
  }
  // Every connection above is closed; the tracked-thread count must stay
  // far below the total served (finished handlers linger only until the
  // next accept-loop tick).
  EXPECT_LE(ts.server.connection_thread_count(),
            static_cast<std::size_t>(8));
  ts.stop();
  EXPECT_EQ(ts.server.stats().connections,
            static_cast<std::uint64_t>(kConnections));
  EXPECT_EQ(ts.server.connection_thread_count(), 0u);
}

TEST(SvcServer, ConcurrentClientsDeduplicateIdenticalKeys) {
  svc::ServerConfig config = base_config(fresh_unix("svc-dedup"));
  config.threads = 4;
  TestServer ts(std::move(config));

  // Four connections hammering the same evaluation concurrently: the shard
  // in-progress set must collapse them to one compute, and every reply must
  // carry identical bytes.
  std::vector<std::string> payloads(4);
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      svc::Client client;
      client.connect(ts.server.config().address);
      const svc::Reply reply = client.evaluate(
          tiny_request(static_cast<std::uint64_t>(w + 1), 8), 60'000);
      if (reply.kind == svc::Reply::Kind::Ok) {
        payloads[static_cast<std::size_t>(w)] = reply.response.record_payload;
      }
    });
  }
  for (auto& worker : workers) worker.join();
  for (const auto& payload : payloads) {
    ASSERT_FALSE(payload.empty());
    EXPECT_EQ(payload, payloads[0]);
  }

  ts.stop();
  const svc::ServerStats stats = ts.server.stats();
  EXPECT_EQ(stats.responses_ok, 4u);
  // Exactly one physical compute; the rest came from dedup + memory cache.
  EXPECT_EQ(stats.served_computed +
                stats.served_memory + stats.served_store,
            4u);
  EXPECT_EQ(stats.served_computed, 1u);
}

TEST(SvcServer, TcpLoopbackRoundTrip) {
  // Port 0 is not supported by Address (explicit ports only), so probe a
  // high port and skip gracefully if it is taken.
  svc::ServerConfig config = base_config(
      svc::Address::parse("tcp:127.0.0.1:38471"));
  try {
    TestServer ts(std::move(config));
    svc::Client client;
    client.connect(ts.server.config().address);
    EXPECT_TRUE(client.ping(77, 10'000));
    const svc::Reply reply = client.evaluate(tiny_request(1, 2), 30'000);
    ASSERT_EQ(reply.kind, svc::Reply::Kind::Ok);
    EXPECT_EQ(reply.response.record_payload,
              evaluate_in_process(tiny_request(1, 2)));
  } catch (const std::runtime_error& error) {
    GTEST_SKIP() << "tcp endpoint unavailable: " << error.what();
  }
}

// ---- protocol minor revision 1: stats, trace context, timings -------------

TEST(SvcProtocol, HelloOkMinorEchoStaysCompatible) {
  // A 1.0-shaped HelloOk (no trailing minor) decodes with minor 0 — and a
  // 1.1 HelloOk round-trips the minor. Anything beyond is rejected.
  const auto legacy = svc::decode_hello_ok(svc::encode_hello_ok(1));
  ASSERT_TRUE(legacy.has_value());
  EXPECT_EQ(legacy->version, 1u);
  EXPECT_EQ(legacy->minor, 0u);
  const auto modern = svc::decode_hello_ok(svc::encode_hello_ok(1, 4));
  ASSERT_TRUE(modern.has_value());
  EXPECT_EQ(modern->minor, 4u);
  EXPECT_FALSE(svc::decode_hello_ok(svc::encode_hello_ok(1, 4) + "x"));
}

TEST(SvcProtocol, StatsCodecRoundTrip) {
  const std::string request_payload =
      svc::encode_stats_request({77, /*include_flight=*/true});
  const auto request = svc::decode_stats_request(request_payload);
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->request_id, 77u);
  EXPECT_TRUE(request->include_flight);
  EXPECT_FALSE(svc::decode_stats_request(request_payload + "x").has_value());
  EXPECT_FALSE(svc::decode_stats_request("").has_value());

  svc::StatsResponse response;
  response.request_id = 77;
  response.stats_json = R"({"uptime_seconds":1.5})";
  const std::string response_payload = svc::encode_stats_response(response);
  const auto decoded = svc::decode_stats_response(response_payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->request_id, 77u);
  EXPECT_EQ(decoded->stats_json, response.stats_json);
  EXPECT_FALSE(svc::decode_stats_response(response_payload + "x").has_value());
}

TEST(SvcProtocol, EvalRequestTraceTailIsAdditiveAndValidated) {
  svc::EvalRequest request = tiny_request(5, 7);
  const std::string legacy = svc::encode_eval_request(request);
  request.trace = svc::TraceContext{0xABCu, 0xDEFu};
  const std::string traced = svc::encode_eval_request(request);
  // The trace tail is strictly appended: untraced requests are
  // byte-identical to the 1.0 encoding.
  EXPECT_EQ(traced.size(), legacy.size() + 17);
  EXPECT_EQ(traced.substr(0, legacy.size()), legacy);

  const auto decoded = svc::decode_eval_request(traced);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(decoded->trace.has_value());
  EXPECT_EQ(decoded->trace->trace_id, 0xABCu);
  EXPECT_EQ(decoded->trace->parent_span_id, 0xDEFu);
  const auto plain = svc::decode_eval_request(legacy);
  ASSERT_TRUE(plain.has_value());
  EXPECT_FALSE(plain->trace.has_value());

  std::string bad_flag = traced;
  bad_flag[legacy.size()] = 2;
  EXPECT_FALSE(svc::decode_eval_request(bad_flag).has_value());
  EXPECT_FALSE(
      svc::decode_eval_request(traced.substr(0, traced.size() - 1))
          .has_value());
}

TEST(SvcProtocol, EvalResponseTimingsTrailerIsAdditiveAndValidated) {
  svc::EvalResponse response;
  response.request_id = 9;
  response.served_from = svc::ServedFrom::Memory;
  response.record_payload = "record-bytes";
  const std::string legacy = svc::encode_eval_response(response);
  response.timings = svc::ServerTimings{1, 2, 3, 4, 5, 6};
  const std::string traced = svc::encode_eval_response(response);
  EXPECT_EQ(traced.size(), legacy.size() + 49);
  EXPECT_EQ(traced.substr(0, legacy.size()), legacy);

  const auto decoded = svc::decode_eval_response(traced);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(decoded->timings.has_value());
  EXPECT_EQ(*decoded->timings, (svc::ServerTimings{1, 2, 3, 4, 5, 6}));
  const auto plain = svc::decode_eval_response(legacy);
  ASSERT_TRUE(plain.has_value());
  EXPECT_FALSE(plain->timings.has_value());
  EXPECT_FALSE(
      svc::decode_eval_response(traced.substr(0, traced.size() - 1))
          .has_value());
  EXPECT_FALSE(svc::decode_eval_response(traced + "x").has_value());
}

// ---- live stats, tracing and the flight recorder --------------------------

TEST(SvcServer, StatsOverProtocolReportsCountsQuantilesAndFlight) {
  obs::set_enabled(true);
  TestServer ts(base_config(fresh_unix("svc-stats")));
  svc::Client client;
  client.connect(ts.server.config().address);
  EXPECT_EQ(client.server_minor(), svc::kProtocolMinorVersion);

  ASSERT_EQ(client.evaluate(tiny_request(1, 3), 30'000).kind,
            svc::Reply::Kind::Ok);
  ASSERT_EQ(client.evaluate(tiny_request(2, 4), 30'000).kind,
            svc::Reply::Kind::Ok);
  ASSERT_EQ(client.evaluate(tiny_request(3, 3), 30'000).kind,
            svc::Reply::Kind::Ok);

  const obs::Json root =
      obs::Json::parse(client.stats_json(/*include_flight=*/true, 30'000));
  EXPECT_EQ(root.at("protocol_minor").as_number(),
            static_cast<double>(svc::kProtocolMinorVersion));
  EXPECT_GE(root.at("uptime_seconds").as_number(), 0.0);
  const obs::Json& counters = root.at("metrics").at("counters");
  EXPECT_GE(counters.at("svc.requests").as_number(), 3.0);
  EXPECT_GE(counters.at("svc.stats_requests").as_number(), 1.0);
  const obs::Json& gauges = root.at("metrics").at("gauges");
  EXPECT_GE(gauges.at("svc.connections").as_number(), 1.0);

  const obs::Json& latency = root.at("quantiles").at("svc.request_ns");
  EXPECT_GE(latency.at("count").as_number(), 3.0);
  EXPECT_GT(latency.at("p50").as_number(), 0.0);
  EXPECT_GE(latency.at("p99").as_number(), latency.at("p50").as_number());

  const obs::Json& flight = root.at("flight");
  ASSERT_EQ(flight.items().size(), 3u);
  EXPECT_EQ(root.at("flight_total").as_number(), 3.0);
  // Oldest-first: request ids in completion order for a serial client.
  EXPECT_EQ(flight.items().front().at("request_id").as_number(), 1.0);
  EXPECT_EQ(flight.items().back().at("request_id").as_number(), 3.0);
  for (const obs::Json& record : flight.items()) {
    EXPECT_GT(record.at("total_ns").as_number(), 0.0);
    EXPECT_GT(record.at("bytes_in").as_number(), 0.0);
    EXPECT_GT(record.at("bytes_out").as_number(), 0.0);
    EXPECT_EQ(record.at("peer").as_string(), "unix");
    EXPECT_TRUE(record.at("ok").as_bool());
  }
  // The repeat of topology 3 was served from memory.
  EXPECT_EQ(flight.items().back().at("served_from").as_string(), "memory");
}

TEST(SvcServer, TraceContextMergesClientAndServerSpans) {
  obs::set_enabled(true);
  obs::start_trace();
  const std::string trace_path = temp_path("intooa-svc-trace-test.json");
  std::filesystem::remove(trace_path);
  {
    TestServer ts(base_config(fresh_unix("svc-trace")));
    svc::Client client;
    client.connect(ts.server.config().address);
    const svc::Reply reply = client.evaluate(tiny_request(1, 6), 30'000);
    ASSERT_EQ(reply.kind, svc::Reply::Kind::Ok);
    // Tracing was on and the server speaks minor >= 1, so the reply must
    // carry the stage-timing trailer with a real span id.
    ASSERT_TRUE(reply.response.timings.has_value());
    EXPECT_NE(reply.response.timings->trace_id, 0u);
    EXPECT_NE(reply.response.timings->server_span_id, 0u);
    EXPECT_GT(reply.response.timings->eval_ns, 0u);
  }
  ASSERT_TRUE(obs::write_trace(trace_path));
  const obs::Json trace = obs::Json::parse(slurp(trace_path));
  std::filesystem::remove(trace_path);

  bool saw_client_span = false, saw_remote_evaluate = false;
  bool saw_flow_start = false, saw_flow_end = false;
  for (const obs::Json& event : trace.at("traceEvents").items()) {
    const std::string& ph = event.at("ph").as_string();
    const std::string& name = event.at("name").as_string();
    if (ph == "X" && name == "svc.client.request") {
      saw_client_span = true;
      EXPECT_EQ(event.at("pid").as_number(), obs::kLocalPid);
    }
    if (ph == "X" && name == "svc.server.evaluate") {
      saw_remote_evaluate = true;
      EXPECT_EQ(event.at("pid").as_number(), obs::kRemotePid);
    }
    if (ph == "s") saw_flow_start = true;
    if (ph == "f") {
      saw_flow_end = true;
      EXPECT_EQ(event.at("bp").as_string(), "e");
    }
  }
  EXPECT_TRUE(saw_client_span);
  EXPECT_TRUE(saw_remote_evaluate);
  EXPECT_TRUE(saw_flow_start);
  EXPECT_TRUE(saw_flow_end);
}

TEST(SvcServer, WakeByteTwoDumpsFlightWithoutDraining) {
  TestServer ts(base_config(fresh_unix("svc-usr1")));
  svc::Client client;
  client.connect(ts.server.config().address);
  ASSERT_EQ(client.evaluate(tiny_request(1, 2), 30'000).kind,
            svc::Reply::Kind::Ok);
  // Byte 2 on the self-pipe (the SIGUSR1 spelling) dumps the flight
  // recorder but must not start a drain.
  const char byte = 2;
  ASSERT_EQ(::write(ts.server.wake_fd(), &byte, 1), 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(ts.server.draining());
  EXPECT_TRUE(client.ping(42, 10'000));
}

TEST(SvcServer, AccessLogAndStatsFileAreWritten) {
  const std::string access_path = temp_path("intooa-svc-access-test.log");
  const std::string stats_path = temp_path("intooa-svc-stats-test.prom");
  std::filesystem::remove(access_path);
  std::filesystem::remove(stats_path);
  {
    svc::ServerConfig config = base_config(fresh_unix("svc-files"));
    config.access_log = access_path;
    config.stats_file = stats_path;
    config.stats_interval_s = 0.05;
    TestServer ts(std::move(config));
    svc::Client client;
    client.connect(ts.server.config().address);
    ASSERT_EQ(client.evaluate(tiny_request(1, 8), 30'000).kind,
              svc::Reply::Kind::Ok);
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  const std::string access = slurp(access_path);
  EXPECT_NE(access.find("id=1 "), std::string::npos);
  EXPECT_NE(access.find("key="), std::string::npos);
  EXPECT_NE(access.find("served=computed"), std::string::npos);
  // The drain wrote a final snapshot even if the timer never fired.
  const std::string prom = slurp(stats_path);
  EXPECT_NE(prom.find("# TYPE intooa_svc_requests_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("intooa_svc_request_ns_count"), std::string::npos);
  std::filesystem::remove(access_path);
  std::filesystem::remove(stats_path);
}

TEST(Determinism, ServedResponsesIdenticalWithTelemetryOnAndOff) {
  const svc::EvalRequest request = tiny_request(1, 11, "S-2");
  const std::string baseline = evaluate_in_process(request);

  // Fully instrumented: metrics on, span collection on (so the client
  // attaches trace context and the server returns a timings trailer).
  obs::set_enabled(true);
  obs::start_trace();
  std::string instrumented;
  {
    TestServer ts(base_config(fresh_unix("svc-det-on")));
    svc::Client client;
    client.connect(ts.server.config().address);
    const svc::Reply reply = client.evaluate(request, 30'000);
    ASSERT_EQ(reply.kind, svc::Reply::Kind::Ok);
    EXPECT_TRUE(reply.response.timings.has_value());
    instrumented = reply.response.record_payload;
  }
  obs::stop_trace();

  // Telemetry fully off: the request carries no trace context and the
  // reply no trailer — and the record bytes are identical.
  obs::set_enabled(false);
  std::string dark;
  {
    TestServer ts(base_config(fresh_unix("svc-det-off")));
    svc::Client client;
    client.connect(ts.server.config().address);
    const svc::Reply reply = client.evaluate(request, 30'000);
    EXPECT_EQ(reply.kind, svc::Reply::Kind::Ok);
    EXPECT_FALSE(reply.response.timings.has_value());
    dark = reply.response.record_payload;
  }
  obs::set_enabled(true);

  EXPECT_EQ(instrumented, baseline);
  EXPECT_EQ(dark, baseline);
}

// ---- socket deadline + frame-type validation ------------------------------

// A signal storm delivering EINTR every couple of milliseconds must not
// extend read_frame's idle timeout: the deadline is computed once and each
// re-poll waits only the remaining time. The pre-fix behavior re-armed the
// full timeout on every EINTR, so the read would only time out after the
// storm subsided.
TEST(SvcSocket, EintrStormDoesNotExtendReadDeadline) {
  int sv[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  struct sigaction action {};
  struct sigaction old_action {};
  action.sa_handler = [](int) {};
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: poll must observe EINTR
  ASSERT_EQ(::sigaction(SIGUSR2, &action, &old_action), 0);

  std::atomic<bool> storming{true};
  const pthread_t reader = ::pthread_self();
  // Bounded storm (1.5 s max) so even a regression terminates: the buggy
  // deadline would then show up as elapsed > storm duration.
  std::thread storm([&] {
    const auto storm_end =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(1500);
    while (storming.load() && std::chrono::steady_clock::now() < storm_end) {
      ::pthread_kill(reader, SIGUSR2);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  svc::Frame frame;
  const auto start = std::chrono::steady_clock::now();
  const svc::ReadStatus status = svc::read_frame(sv[0], frame, 300);
  const auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count();
  storming.store(false);
  storm.join();
  ::sigaction(SIGUSR2, &old_action, nullptr);
  ::close(sv[0]);
  ::close(sv[1]);

  EXPECT_EQ(status, svc::ReadStatus::Timeout);
  EXPECT_GE(elapsed_ms, 290);
  EXPECT_LT(elapsed_ms, 1200);  // well inside the storm window
}

// A frame whose header type byte names no MsgType is rejected up front
// (BadType), never cast into the enum.
TEST(SvcSocket, UnknownFrameTypeIsRejectedBeforeDecode) {
  int sv[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  std::string bogus(svc::kFrameHeaderSize, '\0');  // payload_len 0 ...
  bogus[4] = static_cast<char>(0xEE);              // ... unknown type
  ASSERT_TRUE(svc::write_all(sv[1], bogus));
  svc::Frame frame;
  EXPECT_EQ(svc::read_frame(sv[0], frame, 2000), svc::ReadStatus::BadType);
  // Type 0 (below the enum range) is equally rejected.
  bogus[4] = 0;
  ASSERT_TRUE(svc::write_all(sv[1], bogus));
  EXPECT_EQ(svc::read_frame(sv[0], frame, 2000), svc::ReadStatus::BadType);
  ::close(sv[0]);
  ::close(sv[1]);
}

// Server side of the same defect: an unknown frame type after the
// handshake earns an Error(bad-frame) reply, then the connection closes.
TEST(SvcServer, UnknownFrameTypeGetsBadFrameError) {
  TestServer ts(base_config(fresh_unix("svc-badtype")));
  svc::Fd fd = svc::connect_to(ts.server.config().address);
  ASSERT_TRUE(svc::write_all(
      fd.get(), svc::encode_frame(svc::MsgType::Hello, svc::encode_hello())));
  svc::Frame frame;
  ASSERT_EQ(svc::read_frame(fd.get(), frame, 5000), svc::ReadStatus::Ok);
  ASSERT_EQ(frame.type, svc::MsgType::HelloOk);

  std::string bogus(svc::kFrameHeaderSize, '\0');
  bogus[4] = 0x7F;
  ASSERT_TRUE(svc::write_all(fd.get(), bogus));
  ASSERT_EQ(svc::read_frame(fd.get(), frame, 5000), svc::ReadStatus::Ok);
  ASSERT_EQ(frame.type, svc::MsgType::Error);
  const auto error = svc::decode_error(frame.payload);
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->code, svc::ErrorCode::BadFrame);
  EXPECT_EQ(svc::read_frame(fd.get(), frame, 5000), svc::ReadStatus::Closed);
}

// ---- Busy retry backoff ---------------------------------------------------

// The Busy backoff clamps the server hint in uint32 space: a hint above
// INT_MAX lands at the 2 s ceiling (the pre-fix int cast overflowed
// negative and hit the 10 ms floor instead), jittered ±25%.
TEST(SvcClient, RetryBackoffClampsHugeHintsToCeiling) {
  for (std::uint64_t id = 0; id < 64; ++id) {
    const std::uint32_t backoff =
        svc::retry_backoff_ms(UINT32_MAX, id);
    EXPECT_GE(backoff, 1500u) << "id " << id;
    EXPECT_LE(backoff, 2500u) << "id " << id;
  }
  // INT_MAX + 1 is the exact boundary the int cast used to overflow at.
  const std::uint32_t boundary = svc::retry_backoff_ms(
      static_cast<std::uint32_t>(INT_MAX) + 1u, 7);
  EXPECT_GE(boundary, 1500u);
  EXPECT_LE(boundary, 2500u);
}

TEST(SvcClient, RetryBackoffIsDeterministicAndJittered) {
  // Pure function of (hint, id, attempt)...
  EXPECT_EQ(svc::retry_backoff_ms(100, 42, 1), svc::retry_backoff_ms(100, 42, 1));
  // ...honors the floor...
  for (std::uint64_t id = 0; id < 64; ++id) {
    const std::uint32_t backoff = svc::retry_backoff_ms(0, id);
    EXPECT_GE(backoff, 7u);
    EXPECT_LE(backoff, 13u);
  }
  // ...and actually spreads: a fleet of ids must not back off in lockstep.
  std::vector<std::uint32_t> seen;
  for (std::uint64_t id = 0; id < 64; ++id) {
    seen.push_back(svc::retry_backoff_ms(1000, id));
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_GT(std::unique(seen.begin(), seen.end()) - seen.begin(), 8);
}

// ---- client pool ----------------------------------------------------------

TEST(SvcClientPool, PipelinedRequestsAreByteIdentical) {
  TestServer ts(base_config(fresh_unix("pool-pipe")));
  svc::ClientPoolConfig config;
  config.max_inflight = 4;
  svc::ClientPool pool({ts.server.config().address}, config);

  constexpr int kRequests = 8;
  std::vector<std::optional<svc::EvalResponse>> responses(kRequests);
  std::vector<std::thread> callers;
  for (int i = 0; i < kRequests; ++i) {
    callers.emplace_back([&pool, &responses, i] {
      responses[static_cast<std::size_t>(i)] = pool.evaluate(
          tiny_request(0, static_cast<std::uint64_t>(100 + i)),
          static_cast<std::uint64_t>(i));
    });
  }
  for (auto& t : callers) t.join();

  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(responses[static_cast<std::size_t>(i)].has_value()) << i;
    EXPECT_EQ(responses[static_cast<std::size_t>(i)]->record_payload,
              evaluate_in_process(
                  tiny_request(0, static_cast<std::uint64_t>(100 + i))))
        << i;
  }
  const auto stats = pool.stats();
  EXPECT_EQ(stats.requests(), static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(stats.replays(), 0u);
}

TEST(SvcClientPool, ShardsAcrossEndpointsByDigest) {
  TestServer a(base_config(fresh_unix("pool-shard-a")));
  TestServer b(base_config(fresh_unix("pool-shard-b")));
  svc::ClientPool pool(
      {a.server.config().address, b.server.config().address});
  ASSERT_EQ(pool.endpoint_count(), 2u);
  EXPECT_EQ(pool.shard_of(4), 0u);
  EXPECT_EQ(pool.shard_of(7), 1u);

  constexpr int kRequests = 6;
  for (int i = 0; i < kRequests; ++i) {
    const auto request = tiny_request(0, static_cast<std::uint64_t>(120 + i));
    const auto response =
        pool.evaluate(request, static_cast<std::uint64_t>(i));
    ASSERT_TRUE(response.has_value()) << i;
    EXPECT_EQ(response->record_payload, evaluate_in_process(request)) << i;
  }
  const auto stats = pool.stats();
  ASSERT_EQ(stats.endpoints.size(), 2u);
  EXPECT_EQ(stats.endpoints[0].requests, 3u);  // digests 0, 2, 4
  EXPECT_EQ(stats.endpoints[1].requests, 3u);  // digests 1, 3, 5
}

TEST(SvcClientPool, AbsorbsBusyBackpressure) {
  svc::ServerConfig server_config = base_config(fresh_unix("pool-busy"));
  server_config.max_inflight = 1;  // everything beyond one eval gets Busy
  server_config.test_eval_delay_ms = 30;
  server_config.busy_retry_ms = 10;
  TestServer ts(std::move(server_config));
  svc::ClientPoolConfig config;
  config.max_inflight = 4;
  svc::ClientPool pool({ts.server.config().address}, config);

  constexpr int kRequests = 6;
  std::vector<std::optional<svc::EvalResponse>> responses(kRequests);
  std::vector<std::thread> callers;
  for (int i = 0; i < kRequests; ++i) {
    callers.emplace_back([&pool, &responses, i] {
      responses[static_cast<std::size_t>(i)] = pool.evaluate(
          tiny_request(0, static_cast<std::uint64_t>(140 + i)), 0);
    });
  }
  for (auto& t : callers) t.join();

  std::uint64_t busy = 0;
  for (const auto& ep : pool.stats().endpoints) busy += ep.busy;
  EXPECT_GE(busy, 1u);  // the saturated server must have pushed back
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(responses[static_cast<std::size_t>(i)].has_value()) << i;
    EXPECT_EQ(responses[static_cast<std::size_t>(i)]->record_payload,
              evaluate_in_process(
                  tiny_request(0, static_cast<std::uint64_t>(140 + i))))
        << i;
  }
}

// Kill the server mid-flight, restart it on the same address: the pool
// reconnects and replays what was outstanding, and every caller still gets
// the byte-exact result.
TEST(SvcClientPool, ReconnectsAndReplaysAcrossServerRestart) {
  const svc::Address address = fresh_unix("pool-restart");
  svc::ClientPoolConfig config;
  config.max_inflight = 4;
  config.max_connect_attempts = 200;  // keep probing through the restart
  svc::ClientPool pool({address}, config);

  svc::ServerConfig slow = base_config(address);
  slow.test_eval_delay_ms = 200;
  auto first = std::make_unique<TestServer>(std::move(slow));
  const auto warmup = pool.evaluate(tiny_request(0, 160), 0);
  ASSERT_TRUE(warmup.has_value());

  // r1 is admitted and evaluating (200 ms) when the drain begins; r2
  // arrives after it and is refused with Error(draining). Both replay.
  std::optional<svc::EvalResponse> r1, r2;
  std::thread t1([&] { r1 = pool.evaluate(tiny_request(0, 161), 0); });
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  first->server.begin_drain();
  std::thread t2([&] { r2 = pool.evaluate(tiny_request(0, 162), 0); });
  first->stop();
  first.reset();

  TestServer second(base_config(address));
  t1.join();
  t2.join();
  ASSERT_TRUE(r1.has_value());
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r1->record_payload, evaluate_in_process(tiny_request(0, 161)));
  EXPECT_EQ(r2->record_payload, evaluate_in_process(tiny_request(0, 162)));

  const auto stats = pool.stats();
  EXPECT_GE(stats.reconnects(), 1u);
  EXPECT_GE(stats.replays(), 1u);
  EXPECT_FALSE(stats.endpoints[0].down);
}

TEST(SvcClientPool, UnreachableEndpointFailsSoftAndFast) {
  const svc::Address address = fresh_unix("pool-dead");  // nobody listens
  svc::ClientPoolConfig config;
  config.max_connect_attempts = 2;
  config.reconnect_base_ms = 10;
  svc::ClientPool pool({address}, config);

  EXPECT_FALSE(pool.evaluate(tiny_request(0, 170), 0).has_value());
  EXPECT_TRUE(pool.stats().endpoints[0].down);
  // Once down, callers fail fast instead of queueing behind the probe.
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(pool.evaluate(tiny_request(0, 171), 0).has_value());
  const auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count();
  EXPECT_LT(elapsed_ms, 500);
}

// ---- evaluator remote tier ------------------------------------------------

TEST(SvcRemoteBackend, EvaluatorRemoteTierMatchesLocalByteForByte) {
  TestServer ts(base_config(fresh_unix("remote-tier")));
  const circuit::Spec& spec = circuit::spec_by_name("S-1");
  core::TopologyEvaluator remote_eval(sizing::EvalContext(spec),
                                      tiny_sizing());
  core::TopologyEvaluator local_eval(sizing::EvalContext(spec), tiny_sizing());
  auto pool = std::make_shared<svc::ClientPool>(
      std::vector<svc::Address>{ts.server.config().address});
  svc::attach(remote_eval, pool);

  const std::size_t indices[] = {180, 181, 182};
  for (const std::size_t index : indices) {
    const circuit::Topology topology = circuit::Topology::from_index(index);
    remote_eval.evaluate(topology);
    local_eval.evaluate(topology);
  }
  EXPECT_EQ(remote_eval.remote_hits(), 3u);
  EXPECT_EQ(remote_eval.total_simulations(), local_eval.total_simulations());
  ASSERT_EQ(remote_eval.history().size(), local_eval.history().size());
  for (std::size_t i = 0; i < remote_eval.history().size(); ++i) {
    const core::EvalRecord& served = remote_eval.history()[i];
    const core::EvalRecord& sized = local_eval.history()[i];
    EXPECT_EQ(store::encode_record(
                  remote_eval.key_context().key_for(served.topology), served),
              store::encode_record(
                  local_eval.key_context().key_for(sized.topology), sized))
        << i;
  }
}

TEST(SvcRemoteBackend, FallsBackToLocalSizerWhenNoEndpointReachable) {
  const svc::Address address = fresh_unix("remote-dead");
  svc::ClientPoolConfig config;
  config.max_connect_attempts = 2;
  config.reconnect_base_ms = 10;
  const circuit::Spec& spec = circuit::spec_by_name("S-1");
  core::TopologyEvaluator fallback_eval(sizing::EvalContext(spec),
                                        tiny_sizing());
  core::TopologyEvaluator local_eval(sizing::EvalContext(spec), tiny_sizing());
  svc::attach(fallback_eval,
              std::make_shared<svc::ClientPool>(
                  std::vector<svc::Address>{address}, config));

  const circuit::Topology topology = circuit::Topology::from_index(190);
  fallback_eval.evaluate(topology);
  local_eval.evaluate(topology);
  EXPECT_EQ(fallback_eval.remote_hits(), 0u);
  ASSERT_EQ(fallback_eval.history().size(), 1u);
  EXPECT_EQ(
      store::encode_record(fallback_eval.key_context().key_for(topology),
                           fallback_eval.history()[0]),
      store::encode_record(local_eval.key_context().key_for(topology),
                           local_eval.history()[0]));
}

}  // namespace
