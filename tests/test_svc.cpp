// Unit and end-to-end tests for intooa::svc — the wire codec, the socket
// framing (partial writes, torn frames, oversized frames), the
// Hello/HelloOk version handshake, bounded admission (Busy backpressure),
// the cache tiers (memory / persistent store), graceful drain, and the
// headline determinism contract: a remotely served evaluation is
// byte-identical to the same evaluation run in-process.

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/eval_key.hpp"
#include "sizing/sizer.hpp"
#include "store/record_io.hpp"
#include "store/store.hpp"
#include "svc/client.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"
#include "svc/socket.hpp"
#include "util/rng.hpp"

namespace {

using namespace intooa;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Fresh unix-socket address for one test (unlinked up front; kept short —
/// sun_path is ~108 bytes).
svc::Address fresh_unix(const std::string& name) {
  const std::string path =
      temp_path("intooa-" + name + "-" + std::to_string(::getpid()) + ".sock");
  std::filesystem::remove(path);
  return svc::Address::parse("unix:" + path);
}

/// Tiny sizing protocol so an evaluation costs milliseconds, not seconds.
sizing::SizingConfig tiny_sizing() {
  sizing::SizingConfig cfg;
  cfg.init_points = 2;
  cfg.iterations = 2;
  cfg.candidates = 16;
  cfg.refit_hyper_every = 1;
  return cfg;
}

svc::EvalRequest tiny_request(std::uint64_t id, std::uint64_t topology_index,
                              const std::string& spec = "S-1") {
  svc::EvalRequest request;
  request.request_id = id;
  request.spec = circuit::spec_by_name(spec);
  request.sizing = tiny_sizing();
  request.topology_index = topology_index;
  return request;
}

/// The exact in-process evaluation the server promises to match
/// byte-for-byte: key-seeded RNG, paper sizer, store encoding.
std::string evaluate_in_process(const svc::EvalRequest& request) {
  const sizing::EvalContext context = request.eval_context();
  const core::EvalKeyContext keys(context, request.sizing);
  const circuit::Topology topology = circuit::Topology::from_index(
      static_cast<std::size_t>(request.topology_index));
  const core::EvalKey key = keys.key_for(topology);
  util::Rng sizing_rng(key.digest);
  const sizing::Sizer sizer(context, request.sizing);
  core::EvalRecord record;
  record.topology = topology;
  record.sized = sizer.size(topology, sizing_rng);
  return store::encode_record(key, record);
}

/// Server running on its own thread; drains and joins on destruction.
struct TestServer {
  svc::Server server;
  std::thread thread;

  explicit TestServer(svc::ServerConfig config) : server(std::move(config)) {
    server.bind();
    thread = std::thread([this] { server.run(); });
  }
  ~TestServer() { stop(); }
  void stop() {
    if (thread.joinable()) {
      server.begin_drain();
      thread.join();
    }
  }
};

svc::ServerConfig base_config(const svc::Address& address) {
  svc::ServerConfig config;
  config.address = address;
  config.threads = 2;
  return config;
}

// ---- protocol codec -------------------------------------------------------

TEST(SvcProtocol, HelloRoundTripAndMagicCheck) {
  const std::string payload = svc::encode_hello(7);
  EXPECT_EQ(svc::decode_hello(payload), 7u);
  // A corrupted magic is rejected, not misparsed.
  std::string bad = payload;
  bad[0] ^= 0x5a;
  EXPECT_FALSE(svc::decode_hello(bad).has_value());
  EXPECT_FALSE(svc::decode_hello("").has_value());
}

TEST(SvcProtocol, EvalRequestRoundTripsEveryField) {
  svc::EvalRequest request = tiny_request(42, 137, "S-3");
  request.ac.points_per_decade = 24;
  request.ac.check_stability = false;
  request.behavioral.gm_hi *= 1.5;
  const auto decoded =
      svc::decode_eval_request(svc::encode_eval_request(request));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->request_id, 42u);
  EXPECT_EQ(decoded->topology_index, 137u);
  EXPECT_EQ(decoded->spec.name, "S-3");
  EXPECT_EQ(decoded->ac.points_per_decade, 24u);
  EXPECT_FALSE(decoded->ac.check_stability);
  EXPECT_EQ(decoded->behavioral.gm_hi, request.behavioral.gm_hi);
  EXPECT_EQ(decoded->sizing.init_points, request.sizing.init_points);
  // The decoded request builds the same evaluation key — the property the
  // warm tiers rely on.
  const core::EvalKeyContext a(request.eval_context(), request.sizing);
  const core::EvalKeyContext b(decoded->eval_context(), decoded->sizing);
  EXPECT_EQ(a.prefix(), b.prefix());
}

TEST(SvcProtocol, DecodersRejectTruncationAndTrailingBytes) {
  const std::string payload =
      svc::encode_eval_request(tiny_request(1, 2));
  for (const std::size_t cut : {std::size_t{0}, std::size_t{3},
                                payload.size() / 2, payload.size() - 1}) {
    EXPECT_FALSE(
        svc::decode_eval_request(payload.substr(0, cut)).has_value())
        << "cut=" << cut;
  }
  EXPECT_FALSE(svc::decode_eval_request(payload + "x").has_value());

  const std::string busy = svc::encode_busy({9, 250});
  EXPECT_FALSE(svc::decode_busy(busy + "x").has_value());
  const std::string error =
      svc::encode_error({9, svc::ErrorCode::Draining, "drain"});
  const auto decoded_error = svc::decode_error(error);
  ASSERT_TRUE(decoded_error.has_value());
  EXPECT_EQ(decoded_error->code, svc::ErrorCode::Draining);
  EXPECT_EQ(decoded_error->message, "drain");
}

TEST(SvcProtocol, FrameEncoderRejectsOversizedPayload) {
  EXPECT_THROW(svc::encode_frame(svc::MsgType::Error,
                                 std::string(svc::kMaxFrame + 1, 'x')),
               std::length_error);
}

TEST(SvcProtocol, AddressParsing) {
  const svc::Address unix_addr = svc::Address::parse("unix:/tmp/x.sock");
  EXPECT_EQ(unix_addr.kind, svc::Address::Kind::Unix);
  EXPECT_EQ(unix_addr.path, "/tmp/x.sock");
  const svc::Address tcp = svc::Address::parse("tcp:127.0.0.1:4815");
  EXPECT_EQ(tcp.kind, svc::Address::Kind::Tcp);
  EXPECT_EQ(tcp.host, "127.0.0.1");
  EXPECT_EQ(tcp.port, 4815);
  EXPECT_EQ(svc::Address::parse("localhost:80").kind,
            svc::Address::Kind::Tcp);
  EXPECT_EQ(svc::Address::parse("/tmp/y.sock").kind,
            svc::Address::Kind::Unix);
  EXPECT_THROW(svc::Address::parse(""), std::invalid_argument);
  EXPECT_THROW(svc::Address::parse("tcp:host:99999"), std::invalid_argument);
}

// ---- end-to-end -----------------------------------------------------------

TEST(SvcServer, RemoteEvaluationIsByteIdenticalToInProcess) {
  TestServer ts(base_config(fresh_unix("svc-bytes")));
  svc::Client client;
  client.connect(ts.server.config().address);

  const svc::EvalRequest request = tiny_request(1, 5);
  const svc::Reply reply = client.evaluate(request, 30'000);
  ASSERT_EQ(reply.kind, svc::Reply::Kind::Ok);
  EXPECT_EQ(reply.response.request_id, 1u);
  EXPECT_EQ(reply.response.served_from, svc::ServedFrom::Computed);
  EXPECT_EQ(reply.response.record_payload, evaluate_in_process(request));

  // Same key again: served from the shard memory cache, same bytes.
  const svc::Reply warm = client.evaluate(tiny_request(2, 5), 30'000);
  ASSERT_EQ(warm.kind, svc::Reply::Kind::Ok);
  EXPECT_EQ(warm.response.served_from, svc::ServedFrom::Memory);
  EXPECT_EQ(warm.response.record_payload, reply.response.record_payload);

  ts.stop();
  const svc::ServerStats stats = ts.server.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.responses_ok, 2u);
  EXPECT_EQ(stats.served_computed, 1u);
  EXPECT_EQ(stats.served_memory, 1u);
}

TEST(SvcServer, WarmStoreServesAcrossServerRestarts) {
  const std::string store_path = temp_path("intooa-svc-store-test.bin");
  std::filesystem::remove(store_path);
  const svc::Address address = fresh_unix("svc-warm");
  const svc::EvalRequest request = tiny_request(1, 9, "S-2");
  std::string cold_bytes;
  {
    svc::ServerConfig config = base_config(address);
    config.store = store::EvalStore::open(store_path);
    TestServer ts(std::move(config));
    svc::Client client;
    client.connect(address);
    const svc::Reply reply = client.evaluate(request, 30'000);
    ASSERT_EQ(reply.kind, svc::Reply::Kind::Ok);
    EXPECT_EQ(reply.response.served_from, svc::ServedFrom::Computed);
    cold_bytes = reply.response.record_payload;
  }
  {
    // Fresh server process-equivalent: empty memory cache, same store file.
    svc::ServerConfig config = base_config(address);
    config.store = store::EvalStore::open(store_path);
    TestServer ts(std::move(config));
    svc::Client client;
    client.connect(address);
    const svc::Reply reply = client.evaluate(request, 30'000);
    ASSERT_EQ(reply.kind, svc::Reply::Kind::Ok);
    EXPECT_EQ(reply.response.served_from, svc::ServedFrom::Store);
    EXPECT_EQ(reply.response.record_payload, cold_bytes);
    ts.stop();
    EXPECT_EQ(ts.server.stats().served_store, 1u);
  }
  std::filesystem::remove(store_path);
}

TEST(SvcServer, RejectsProtocolVersionMismatch) {
  TestServer ts(base_config(fresh_unix("svc-version")));
  svc::Fd fd = svc::connect_to(ts.server.config().address);
  ASSERT_TRUE(svc::write_all(
      fd.get(),
      svc::encode_frame(svc::MsgType::Hello, svc::encode_hello(99))));
  svc::Frame frame;
  ASSERT_EQ(svc::read_frame(fd.get(), frame, 10'000), svc::ReadStatus::Ok);
  ASSERT_EQ(frame.type, svc::MsgType::Error);
  const auto error = svc::decode_error(frame.payload);
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->code, svc::ErrorCode::VersionMismatch);
  // The server closes the connection after rejecting the handshake.
  EXPECT_EQ(svc::read_frame(fd.get(), frame, 10'000),
            svc::ReadStatus::Closed);
}

TEST(SvcServer, RejectsOversizedFrames) {
  TestServer ts(base_config(fresh_unix("svc-oversized")));
  svc::Fd fd = svc::connect_to(ts.server.config().address);
  // Hand-rolled header announcing a payload over the cap.
  const std::uint32_t huge = svc::kMaxFrame + 1;
  std::string header(4, '\0');
  std::memcpy(header.data(), &huge, 4);
  header.push_back(static_cast<char>(svc::MsgType::Hello));
  ASSERT_TRUE(svc::write_all(fd.get(), header));
  svc::Frame frame;
  ASSERT_EQ(svc::read_frame(fd.get(), frame, 10'000), svc::ReadStatus::Ok);
  ASSERT_EQ(frame.type, svc::MsgType::Error);
  const auto error = svc::decode_error(frame.payload);
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->code, svc::ErrorCode::OversizedFrame);
  EXPECT_EQ(svc::read_frame(fd.get(), frame, 10'000),
            svc::ReadStatus::Closed);
}

TEST(SvcServer, ReassemblesDribbledFramesAndSurvivesTornOnes) {
  TestServer ts(base_config(fresh_unix("svc-partial")));
  const svc::Address& address = ts.server.config().address;

  {
    // A torn frame: half a Ping header, then a hard close. The server must
    // treat it as a broken peer, not wedge or crash.
    svc::Fd torn = svc::connect_to(address);
    ASSERT_TRUE(svc::write_all(torn.get(), std::string("\x03\x00", 2)));
  }

  // A peer that dribbles the handshake and a Ping a few bytes at a time
  // still gets served: read_frame reassembles across short reads.
  svc::Fd fd = svc::connect_to(address);
  const std::string hello =
      svc::encode_frame(svc::MsgType::Hello, svc::encode_hello());
  const std::string ping =
      svc::encode_frame(svc::MsgType::Ping, svc::encode_ping(0xA11CE));
  const std::string bytes = hello + ping;
  for (std::size_t i = 0; i < bytes.size(); i += 3) {
    ASSERT_TRUE(svc::write_all(fd.get(), bytes.substr(i, 3)));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  svc::Frame frame;
  ASSERT_EQ(svc::read_frame(fd.get(), frame, 10'000), svc::ReadStatus::Ok);
  EXPECT_EQ(frame.type, svc::MsgType::HelloOk);
  ASSERT_EQ(svc::read_frame(fd.get(), frame, 10'000), svc::ReadStatus::Ok);
  EXPECT_EQ(frame.type, svc::MsgType::Pong);
  EXPECT_EQ(svc::decode_ping(frame.payload), 0xA11CEu);
}

TEST(SvcServer, BusyUnderSaturation) {
  svc::ServerConfig config = base_config(fresh_unix("svc-busy"));
  config.max_inflight = 1;
  config.test_eval_delay_ms = 700;
  config.busy_retry_ms = 123;
  TestServer ts(std::move(config));
  svc::Client client;
  client.connect(ts.server.config().address);

  // Two pipelined requests on one connection: the first takes the only
  // in-flight slot (and holds it for test_eval_delay_ms), so the second is
  // rejected Busy immediately — explicit backpressure, not buffering.
  client.send_request(tiny_request(1, 3));
  client.send_request(tiny_request(2, 4));

  const svc::Reply first = client.read_reply(30'000);
  ASSERT_EQ(first.kind, svc::Reply::Kind::Busy);
  EXPECT_EQ(first.busy.request_id, 2u);
  EXPECT_EQ(first.busy.retry_after_ms, 123u);

  const svc::Reply second = client.read_reply(30'000);
  ASSERT_EQ(second.kind, svc::Reply::Kind::Ok);
  EXPECT_EQ(second.response.request_id, 1u);

  // With the slot free again, the retry path succeeds.
  const svc::Reply retried =
      client.evaluate_with_retry(tiny_request(3, 4), 8, 30'000);
  EXPECT_EQ(retried.kind, svc::Reply::Kind::Ok);

  ts.stop();
  EXPECT_GE(ts.server.stats().busy_rejections, 1u);
}

TEST(SvcServer, GracefulDrainFinishesInflightAndRefusesNewWork) {
  svc::ServerConfig config = base_config(fresh_unix("svc-drain"));
  config.test_eval_delay_ms = 600;
  TestServer ts(std::move(config));
  const std::string socket_path = ts.server.config().address.path;
  svc::Client client;
  client.connect(ts.server.config().address);

  client.send_request(tiny_request(1, 6));
  // Let the request get admitted before the drain begins.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  ts.server.begin_drain();
  client.send_request(tiny_request(2, 7));

  // The post-drain request is refused with Error(draining); the admitted
  // one still completes and flushes before the connection closes.
  bool saw_ok = false, saw_draining = false;
  for (int i = 0; i < 2; ++i) {
    const svc::Reply reply = client.read_reply(30'000);
    if (reply.kind == svc::Reply::Kind::Ok) {
      EXPECT_EQ(reply.response.request_id, 1u);
      saw_ok = true;
    } else {
      ASSERT_EQ(reply.kind, svc::Reply::Kind::Error);
      EXPECT_EQ(reply.error.request_id, 2u);
      EXPECT_EQ(reply.error.code, svc::ErrorCode::Draining);
      saw_draining = true;
    }
  }
  EXPECT_TRUE(saw_ok);
  EXPECT_TRUE(saw_draining);

  // run() returns (the TestServer join would hang otherwise), the stats
  // show exactly one served evaluation, and the socket file is gone.
  ts.stop();
  const svc::ServerStats stats = ts.server.stats();
  EXPECT_EQ(stats.responses_ok, 1u);
  EXPECT_EQ(stats.errors, 1u);
  EXPECT_FALSE(std::filesystem::exists(socket_path));
}

TEST(SvcServer, IdleConnectionsAreClosed) {
  svc::ServerConfig config = base_config(fresh_unix("svc-idle"));
  config.idle_timeout_ms = 200;
  TestServer ts(std::move(config));
  svc::Client client;
  client.connect(ts.server.config().address);
  // Say nothing: the server hangs up after the idle timeout.
  svc::Fd probe = svc::connect_to(ts.server.config().address);
  ASSERT_TRUE(svc::write_all(
      probe.get(), svc::encode_frame(svc::MsgType::Hello,
                                     svc::encode_hello())));
  svc::Frame frame;
  ASSERT_EQ(svc::read_frame(probe.get(), frame, 10'000), svc::ReadStatus::Ok);
  EXPECT_EQ(frame.type, svc::MsgType::HelloOk);
  EXPECT_EQ(svc::read_frame(probe.get(), frame, 10'000),
            svc::ReadStatus::Closed);
}

TEST(SvcServer, ConcurrentClientsDeduplicateIdenticalKeys) {
  svc::ServerConfig config = base_config(fresh_unix("svc-dedup"));
  config.threads = 4;
  TestServer ts(std::move(config));

  // Four connections hammering the same evaluation concurrently: the shard
  // in-progress set must collapse them to one compute, and every reply must
  // carry identical bytes.
  std::vector<std::string> payloads(4);
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      svc::Client client;
      client.connect(ts.server.config().address);
      const svc::Reply reply = client.evaluate(
          tiny_request(static_cast<std::uint64_t>(w + 1), 8), 60'000);
      if (reply.kind == svc::Reply::Kind::Ok) {
        payloads[static_cast<std::size_t>(w)] = reply.response.record_payload;
      }
    });
  }
  for (auto& worker : workers) worker.join();
  for (const auto& payload : payloads) {
    ASSERT_FALSE(payload.empty());
    EXPECT_EQ(payload, payloads[0]);
  }

  ts.stop();
  const svc::ServerStats stats = ts.server.stats();
  EXPECT_EQ(stats.responses_ok, 4u);
  // Exactly one physical compute; the rest came from dedup + memory cache.
  EXPECT_EQ(stats.served_computed +
                stats.served_memory + stats.served_store,
            4u);
  EXPECT_EQ(stats.served_computed, 1u);
}

TEST(SvcServer, TcpLoopbackRoundTrip) {
  // Port 0 is not supported by Address (explicit ports only), so probe a
  // high port and skip gracefully if it is taken.
  svc::ServerConfig config = base_config(
      svc::Address::parse("tcp:127.0.0.1:38471"));
  try {
    TestServer ts(std::move(config));
    svc::Client client;
    client.connect(ts.server.config().address);
    EXPECT_TRUE(client.ping(77, 10'000));
    const svc::Reply reply = client.evaluate(tiny_request(1, 2), 30'000);
    ASSERT_EQ(reply.kind, svc::Reply::Kind::Ok);
    EXPECT_EQ(reply.response.record_payload,
              evaluate_in_process(tiny_request(1, 2)));
  } catch (const std::runtime_error& error) {
    GTEST_SKIP() << "tcp endpoint unavailable: " << error.what();
  }
}

}  // namespace
