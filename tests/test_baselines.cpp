// Unit tests for intooa::baselines — the mini neural-net substrate
// (gradient checks against finite differences), the VAE over topology
// one-hots, the FE-GA embedding/decoding and campaign, and VGAE-BO.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/fega.hpp"
#include "baselines/nn.hpp"
#include "baselines/vae.hpp"
#include "baselines/vgae_bo.hpp"
#include "circuit/library.hpp"
#include "util/rng.hpp"

namespace {

using namespace intooa;
using namespace intooa::baselines;

TEST(Nn, LinearForwardMatchesManualComputation) {
  util::Rng rng(71);
  Linear layer(2, 1, rng);
  // Overwrite parameters deterministically through the pointer interface.
  auto params = layer.parameters();
  *params[0] = 2.0;  // w00
  *params[1] = -3.0; // w01
  *params[2] = 0.5;  // b0
  const auto y = layer.forward(std::vector<double>{1.0, 2.0});
  ASSERT_EQ(y.size(), 1u);
  EXPECT_DOUBLE_EQ(y[0], 2.0 - 6.0 + 0.5);
}

TEST(Nn, LinearBackwardMatchesFiniteDifference) {
  util::Rng rng(72);
  Linear layer(3, 2, rng);
  const std::vector<double> x = {0.3, -0.7, 1.1};
  const std::vector<double> grad_out = {1.0, -2.0};

  layer.zero_grad();
  const auto y0 = layer.forward(x);
  const auto grad_in = layer.backward(grad_out);
  (void)y0;

  // Scalar loss L = grad_out . y; check dL/dparam by finite differences.
  auto params = layer.parameters();
  auto grads = layer.gradients();
  auto loss = [&]() {
    const auto y = layer.forward(x);
    return grad_out[0] * y[0] + grad_out[1] * y[1];
  };
  const double h = 1e-6;
  for (std::size_t i = 0; i < params.size(); i += 3) {  // sample every 3rd
    const double orig = *params[i];
    *params[i] = orig + h;
    const double lp = loss();
    *params[i] = orig - h;
    const double lm = loss();
    *params[i] = orig;
    EXPECT_NEAR((lp - lm) / (2 * h), *grads[i], 1e-5) << "param " << i;
  }
  // Input gradient check.
  for (std::size_t i = 0; i < x.size(); ++i) {
    auto xs = x;
    xs[i] += h;
    layer.forward(xs);
    const auto yp = layer.forward(xs);
    xs[i] -= 2 * h;
    const auto ym = layer.forward(xs);
    const double fd = (grad_out[0] * (yp[0] - ym[0]) +
                       grad_out[1] * (yp[1] - ym[1])) /
                      (2 * h);
    EXPECT_NEAR(fd, grad_in[i], 1e-5);
  }
}

TEST(Nn, ReluForwardBackward) {
  Relu relu;
  const auto y = relu.forward(std::vector<double>{-1.0, 0.0, 2.0});
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  EXPECT_DOUBLE_EQ(y[2], 2.0);
  const auto g = relu.backward(std::vector<double>{1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(g[0], 0.0);
  EXPECT_DOUBLE_EQ(g[2], 1.0);
}

TEST(Nn, AdamMinimizesQuadratic) {
  // Minimize (x - 3)^2 with Adam over 500 steps.
  double x = 0.0, grad = 0.0;
  Adam adam(0.05);
  adam.attach({&x}, {&grad});
  for (int i = 0; i < 500; ++i) {
    grad = 2.0 * (x - 3.0);
    adam.step();
  }
  EXPECT_NEAR(x, 3.0, 0.05);
}

TEST(Nn, SoftmaxProperties) {
  const auto p = softmax(std::vector<double>{1.0, 2.0, 3.0});
  double sum = 0.0;
  for (double v : p) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_GT(p[2], p[1]);
  EXPECT_GT(p[1], p[0]);
  // Stability under large logits.
  const auto big = softmax(std::vector<double>{1000.0, 1001.0});
  EXPECT_NEAR(big[0] + big[1], 1.0, 1e-12);
  EXPECT_TRUE(softmax(std::vector<double>{}).empty());
}

TEST(Vae, OnehotRoundTrip) {
  EXPECT_EQ(onehot_dim(), 49u);
  util::Rng rng(73);
  for (int i = 0; i < 100; ++i) {
    const circuit::Topology t = circuit::Topology::random(rng);
    const auto x = topology_onehot(t);
    double sum = 0.0;
    for (double v : x) sum += v;
    EXPECT_DOUBLE_EQ(sum, 5.0);  // one hot bit per slot
    EXPECT_EQ(decode_topology(x), t);
  }
  EXPECT_THROW(decode_topology(std::vector<double>(10, 0.0)),
               std::invalid_argument);
}

TEST(Vae, TrainingReducesLossAndReconstructs) {
  util::Rng rng(74);
  VaeConfig config;
  config.epochs = 15;
  config.train_samples = 800;
  Vae vae(config, rng);

  // Loss of an untrained model on random data ~= uniform CE:
  // sum over slots of log(#types) ~= 12.56.
  const double final_loss = vae.train(rng);
  EXPECT_LT(final_loss, 7.0);  // clearly below the uniform baseline

  const double acc = vae.reconstruction_accuracy(200, rng);
  EXPECT_GT(acc, 0.05);  // far above the 1/30625 chance level
}

TEST(Vae, EncodeDecodeShapes) {
  util::Rng rng(75);
  VaeConfig config;
  config.epochs = 1;
  config.train_samples = 50;
  Vae vae(config, rng);
  vae.train(rng);
  const auto z = vae.encode(circuit::named_topology("NMC"));
  EXPECT_EQ(z.size(), config.latent_dim);
  const auto logits = vae.decode_logits(z);
  EXPECT_EQ(logits.size(), onehot_dim());
  EXPECT_NO_THROW(vae.decode(z));
  EXPECT_THROW(vae.decode_logits(std::vector<double>{0.0}),
               std::invalid_argument);
}

TEST(FeGa, EmbedDecodeRoundTrip) {
  util::Rng rng(76);
  for (int i = 0; i < 200; ++i) {
    const circuit::Topology t = circuit::Topology::random(rng);
    EXPECT_EQ(decode_genes(embed(t)), t);
  }
}

TEST(FeGa, DecodeClampsOutOfRangeGenes) {
  const auto t =
      decode_genes(std::vector<double>{-0.5, 2.0, 0.999, 0.0, 0.5});
  for (circuit::Slot slot : circuit::all_slots()) {
    EXPECT_TRUE(circuit::is_allowed(slot, t.type(slot)));
  }
  EXPECT_THROW(decode_genes(std::vector<double>{0.1}), std::invalid_argument);
}

TEST(FeGa, CampaignReachesEvaluationBudget) {
  sizing::SizingConfig sizing_config;
  sizing_config.init_points = 3;
  sizing_config.iterations = 3;
  core::TopologyEvaluator evaluator(
      sizing::EvalContext(circuit::spec_by_name("S-1")), sizing_config);
  FeGaConfig config;
  config.population = 6;
  config.max_evaluations = 15;
  const FeGa ga(config);
  util::Rng rng(77);
  const auto outcome = ga.run(evaluator, rng);
  EXPECT_GE(evaluator.history().size(), 15u);
  EXPECT_TRUE(outcome.best_index.has_value());
}

TEST(FeGa, Validation) {
  EXPECT_THROW(FeGa(FeGaConfig{.population = 1}), std::invalid_argument);
  FeGaConfig bad;
  bad.population = 4;
  bad.elitism = 4;
  EXPECT_THROW(FeGa{bad}, std::invalid_argument);
}

TEST(VgaeBo, CampaignRunsWithinBudget) {
  sizing::SizingConfig sizing_config;
  sizing_config.init_points = 3;
  sizing_config.iterations = 3;
  core::TopologyEvaluator evaluator(
      sizing::EvalContext(circuit::spec_by_name("S-1")), sizing_config);
  VgaeBoConfig config;
  config.vae.epochs = 2;
  config.vae.train_samples = 100;
  config.init_topologies = 4;
  config.iterations = 5;
  config.candidates = 40;
  const VgaeBo bo(config);
  util::Rng rng(78);
  const auto outcome = bo.run(evaluator, rng);
  EXPECT_EQ(evaluator.history().size(), 9u);  // 4 init + 5 iterations
  EXPECT_TRUE(outcome.best_index.has_value());
}

TEST(VgaeBo, Validation) {
  VgaeBoConfig bad;
  bad.init_topologies = 1;
  EXPECT_THROW(VgaeBo{bad}, std::invalid_argument);
  VgaeBoConfig bad2;
  bad2.candidates = 0;
  EXPECT_THROW(VgaeBo{bad2}, std::invalid_argument);
}

}  // namespace
