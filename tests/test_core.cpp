// Unit tests for intooa::core — the evaluator's caching/accounting, the
// mutation+random candidate generator, Algorithm 1, the interpretability
// layer and gradient-guided refinement.

#include <gtest/gtest.h>

#include <limits>
#include <unordered_set>

#include "circuit/library.hpp"
#include "core/eval_key.hpp"
#include "core/candidates.hpp"
#include "core/evaluator.hpp"
#include "core/interpret.hpp"
#include "core/optimizer.hpp"
#include "core/refine.hpp"
#include "util/rng.hpp"

namespace {

using namespace intooa;
using namespace intooa::core;

sizing::EvalContext s1_context() {
  return sizing::EvalContext(circuit::spec_by_name("S-1"));
}

sizing::SizingConfig fast_sizing() {
  sizing::SizingConfig config;
  config.init_points = 4;
  config.iterations = 4;
  config.candidates = 64;
  return config;
}

TEST(Evaluator, CountsAndCaches) {
  TopologyEvaluator evaluator(s1_context(), fast_sizing());
  const auto nmc = circuit::named_topology("NMC");
  EXPECT_FALSE(evaluator.visited(nmc));
  evaluator.evaluate(nmc);
  EXPECT_TRUE(evaluator.visited(nmc));
  EXPECT_EQ(evaluator.total_simulations(), 8u);
  EXPECT_EQ(evaluator.history().size(), 1u);

  // Cache hit: no new simulations, no new history entry.
  evaluator.evaluate(nmc);
  EXPECT_EQ(evaluator.total_simulations(), 8u);
  EXPECT_EQ(evaluator.history().size(), 1u);

  evaluator.evaluate(circuit::named_topology("C1"));
  EXPECT_EQ(evaluator.total_simulations(), 16u);
  EXPECT_EQ(evaluator.history()[1].sims_before, 8u);
}

TEST(Evaluator, CacheHitLeavesAccountingUntouched) {
  // Re-evaluating a visited topology must be free: no history growth, no
  // simulation charge, no extension of the Fig. 5 curve — the invariant the
  // checkpoint-resume layer and the paper's cost accounting both rely on.
  TopologyEvaluator evaluator(s1_context(), fast_sizing());
  const auto nmc = circuit::named_topology("NMC");
  const auto c1 = circuit::named_topology("C1");
  evaluator.evaluate(nmc);
  evaluator.evaluate(c1);

  const auto history_size = evaluator.history().size();
  const auto sims = evaluator.total_simulations();
  const auto curve = evaluator.fom_curve();

  const auto& hit1 = evaluator.evaluate(nmc);
  const auto& hit2 = evaluator.evaluate(c1);
  EXPECT_EQ(hit1.topology, nmc);
  EXPECT_EQ(hit2.topology, c1);
  EXPECT_EQ(evaluator.history().size(), history_size);
  EXPECT_EQ(evaluator.total_simulations(), sims);
  EXPECT_EQ(evaluator.fom_curve(), curve);  // same length AND same tail
}

TEST(Evaluator, RestoreReplaysAccounting) {
  TopologyEvaluator original(s1_context(), fast_sizing());
  original.evaluate(circuit::named_topology("NMC"));
  original.evaluate(circuit::named_topology("C1"));

  TopologyEvaluator restored(s1_context(), fast_sizing());
  for (const auto& record : original.history()) restored.restore(record);
  EXPECT_EQ(restored.total_simulations(), original.total_simulations());
  EXPECT_EQ(restored.history().size(), original.history().size());
  EXPECT_EQ(restored.fom_curve(), original.fom_curve());
  EXPECT_TRUE(restored.visited(circuit::named_topology("NMC")));
  // Restored entries behave like evaluated ones: cache hits stay free.
  restored.evaluate(circuit::named_topology("C1"));
  EXPECT_EQ(restored.total_simulations(), original.total_simulations());
}

TEST(Evaluator, FomCurveMonotoneAndSized) {
  TopologyEvaluator evaluator(s1_context(), fast_sizing());
  evaluator.evaluate(circuit::named_topology("NMC"));
  evaluator.evaluate(circuit::named_topology("C1"));
  const auto curve = evaluator.fom_curve();
  EXPECT_EQ(curve.size(), evaluator.total_simulations());
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i], curve[i - 1]);
  }
}

TEST(Evaluator, BestSelectors) {
  TopologyEvaluator evaluator(s1_context(), fast_sizing());
  EXPECT_FALSE(evaluator.best_overall().has_value());
  evaluator.evaluate(circuit::named_topology("NMC"));
  evaluator.evaluate(circuit::named_topology("bare"));
  ASSERT_TRUE(evaluator.best_overall().has_value());
  const auto best_f = evaluator.best_feasible();
  if (best_f) {
    EXPECT_TRUE(evaluator.history()[*best_f].sized.best.feasible);
  }
}

TEST(Candidates, PoolSizeAndUnvisited) {
  util::Rng rng(54);
  CandidateConfig config;
  config.pool_size = 100;
  std::unordered_set<std::size_t> visited;
  for (int i = 0; i < 50; ++i) {
    visited.insert(circuit::Topology::random(rng).index());
  }
  const std::vector<circuit::Topology> seeds = {
      circuit::named_topology("NMC")};
  const auto pool = generate_candidates(config, seeds, visited, rng);
  EXPECT_EQ(pool.size(), 100u);
  std::unordered_set<std::size_t> seen;
  for (const auto& topo : pool) {
    EXPECT_EQ(visited.count(topo.index()), 0u);
    EXPECT_TRUE(seen.insert(topo.index()).second) << "duplicate in pool";
  }
}

TEST(Candidates, MutantsClusterNearSeeds) {
  util::Rng rng(55);
  CandidateConfig config;
  config.pool_size = 200;
  config.mutation_fraction = 1.0;  // all mutants
  const circuit::Topology seed = circuit::named_topology("NMC");
  const std::vector<circuit::Topology> seeds = {seed};
  const auto pool = generate_candidates(config, seeds, {}, rng);
  double total_distance = 0.0;
  for (const auto& topo : pool) {
    total_distance += static_cast<double>(topo.hamming_distance(seed));
  }
  // Expected ~1.2 mutations/child; allow generous headroom but far below
  // the ~3.9 expected of uniform random topologies.
  EXPECT_LT(total_distance / static_cast<double>(pool.size()), 2.0);
}

TEST(Candidates, RandomFractionExploresGlobally) {
  util::Rng rng(56);
  CandidateConfig config;
  config.pool_size = 200;
  config.mutation_fraction = 0.0;  // INTO-OA-r
  const std::vector<circuit::Topology> seeds = {
      circuit::named_topology("NMC")};
  const auto pool = generate_candidates(config, seeds, {}, rng);
  double total_distance = 0.0;
  for (const auto& topo : pool) {
    total_distance += static_cast<double>(
        topo.hamming_distance(circuit::named_topology("NMC")));
  }
  EXPECT_GT(total_distance / static_cast<double>(pool.size()), 3.0);
}

TEST(Candidates, EmptySeedsFallBackToRandom) {
  util::Rng rng(57);
  CandidateConfig config;
  config.pool_size = 50;
  config.mutation_fraction = 0.5;
  const auto pool = generate_candidates(config, {}, {}, rng);
  EXPECT_EQ(pool.size(), 50u);
}

TEST(Candidates, Validation) {
  util::Rng rng(58);
  CandidateConfig config;
  config.pool_size = 0;
  EXPECT_THROW(generate_candidates(config, {}, {}, rng),
               std::invalid_argument);
  config.pool_size = 10;
  config.mutation_fraction = 1.5;
  EXPECT_THROW(generate_candidates(config, {}, {}, rng),
               std::invalid_argument);
}

TEST(Candidates, SelectBestCandidate) {
  util::Rng rng(62);
  const std::vector<double> scores = {0.1, 0.7, 0.3};
  EXPECT_EQ(select_best_candidate(scores, rng), 1u);

  // Non-finite scores are dropped, never selected.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> mixed = {nan, 0.2, inf, 0.5};
  EXPECT_EQ(select_best_candidate(mixed, rng), 3u);

  // All-zero scores: ties break to the earliest index, as before.
  const std::vector<double> zeros = {0.0, 0.0, 0.0};
  EXPECT_EQ(select_best_candidate(zeros, rng), 0u);

  // No finite score at all: deterministic fallback draw from the caller's
  // rng instead of silently proposing index 0.
  const std::vector<double> bad = {nan, inf, nan};
  util::Rng a(7);
  util::Rng b(7);
  const std::size_t pick_a = select_best_candidate(bad, a);
  const std::size_t pick_b = select_best_candidate(bad, b);
  EXPECT_EQ(pick_a, pick_b);
  EXPECT_LT(pick_a, bad.size());

  EXPECT_THROW(select_best_candidate({}, rng), std::invalid_argument);
}

OptimizerConfig fast_optimizer() {
  OptimizerConfig config;
  config.init_topologies = 5;
  config.iterations = 6;
  config.candidates.pool_size = 40;
  config.wlgp.max_h = 3;
  return config;
}

TEST(Optimizer, RunsAlgorithmOneWithinBudget) {
  TopologyEvaluator evaluator(s1_context(), fast_sizing());
  IntoOaOptimizer optimizer(fast_optimizer());
  util::Rng rng(59);
  const OptimizationOutcome outcome = optimizer.run(evaluator, rng);
  EXPECT_EQ(evaluator.history().size(), 11u);  // 5 init + 6 iterations
  EXPECT_EQ(evaluator.total_simulations(), 11u * 8u);
  ASSERT_TRUE(outcome.best_index.has_value());
  EXPECT_TRUE(optimizer.objective_model().trained());
  for (std::size_t i = 0; i < circuit::Spec::kConstraintCount; ++i) {
    EXPECT_TRUE(optimizer.constraint_model(i).trained());
  }
}

TEST(Optimizer, DeterministicGivenSeed) {
  auto run_once = [](std::uint64_t seed) {
    TopologyEvaluator evaluator(s1_context(), fast_sizing());
    IntoOaOptimizer optimizer(fast_optimizer());
    util::Rng rng(seed);
    optimizer.run(evaluator, rng);
    std::vector<std::size_t> sequence;
    for (const auto& record : evaluator.history()) {
      sequence.push_back(record.topology.index());
    }
    return sequence;
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));
}

TEST(Optimizer, ModelsBeforeRunThrow) {
  IntoOaOptimizer optimizer(fast_optimizer());
  EXPECT_THROW(optimizer.objective_model(), std::logic_error);
  EXPECT_THROW(optimizer.constraint_model(0), std::logic_error);
  EXPECT_THROW(optimizer.constraint_model(99), std::out_of_range);
}

TEST(Optimizer, ResumeSeedsVisitedFromHistory) {
  // Uninterrupted reference campaign.
  TopologyEvaluator full(s1_context(), fast_sizing());
  IntoOaOptimizer ref(fast_optimizer());
  util::Rng ref_rng(63);
  const OptimizationOutcome ref_outcome = ref.run(full, ref_rng);

  // Restore the complete history into a fresh evaluator, as the campaign
  // checkpoint layer does.
  TopologyEvaluator restored(s1_context(), fast_sizing());
  for (const auto& record : full.history()) restored.restore(record);
  const std::size_t base = restored.history().size();
  const std::size_t base_sims = restored.total_simulations();

  // A zero-iteration resumed run must reconstruct the reference outcome
  // from the restored records alone: the restored history counts toward
  // init_topologies, so the init loop adds nothing.
  OptimizerConfig zero_iters = fast_optimizer();
  zero_iters.iterations = 0;
  IntoOaOptimizer reread(zero_iters);
  util::Rng reread_rng(64);
  const OptimizationOutcome again = reread.run(restored, reread_rng);
  EXPECT_EQ(restored.history().size(), base);
  EXPECT_EQ(restored.total_simulations(), base_sims);
  EXPECT_EQ(again.best_index, ref_outcome.best_index);
  EXPECT_EQ(again.best_topology, ref_outcome.best_topology);

  // Continuing with more iterations must never re-propose a restored
  // topology: growth is exactly the iteration count, every history index
  // unique.
  IntoOaOptimizer resumed(fast_optimizer());
  util::Rng resume_rng(65);
  resumed.run(restored, resume_rng);
  EXPECT_EQ(restored.history().size(), base + fast_optimizer().iterations);
  EXPECT_EQ(restored.total_simulations(),
            base_sims + fast_optimizer().iterations * 8u);
  std::unordered_set<std::size_t> seen;
  for (const auto& record : restored.history()) {
    EXPECT_TRUE(seen.insert(record.topology.index()).second);
  }

  // Pointing a used optimizer at a fresh evaluator drops the stale fit
  // cache (its records are no longer a history prefix) and runs normally.
  TopologyEvaluator fresh(s1_context(), fast_sizing());
  util::Rng fresh_rng(66);
  ref.run(fresh, fresh_rng);
  EXPECT_EQ(fresh.history().size(), 11u);  // 5 init + 6 iterations
}

TEST(Interpret, SlotImpactsCoverOccupiedSlots) {
  TopologyEvaluator evaluator(s1_context(), fast_sizing());
  IntoOaOptimizer optimizer(fast_optimizer());
  util::Rng rng(60);
  optimizer.run(evaluator, rng);

  const circuit::Topology topo =
      circuit::named_topology("C1");  // two occupied slots
  const auto impacts =
      slot_impacts(optimizer.objective_model(), topo, 1);
  std::unordered_set<int> slots_seen;
  for (const auto& impact : impacts) {
    ASSERT_TRUE(impact.slot.has_value());
    slots_seen.insert(static_cast<int>(*impact.slot));
    EXPECT_FALSE(impact.structure.empty());
    EXPECT_GE(impact.depth, 0);
  }
  EXPECT_EQ(slots_seen.size(), 2u);
}

TEST(Interpret, SlotGradientConsistentWithImpacts) {
  TopologyEvaluator evaluator(s1_context(), fast_sizing());
  IntoOaOptimizer optimizer(fast_optimizer());
  util::Rng rng(61);
  optimizer.run(evaluator, rng);
  const auto& model = optimizer.constraint_model(2);  // PM margin
  const circuit::Topology topo = circuit::named_topology("C1");
  const double g = slot_gradient(model, topo, circuit::Slot::V1Vout, 1);
  const auto impacts = slot_impacts(model, topo, 1);
  bool found = false;
  for (const auto& impact : impacts) {
    if (impact.slot == circuit::Slot::V1Vout &&
        impact.depth == std::min(1, model.chosen_h())) {
      EXPECT_NEAR(impact.gradient, g, 1e-12);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  // None slots attribute zero gradient.
  EXPECT_DOUBLE_EQ(
      slot_gradient(model, topo, circuit::Slot::VinV2, 1), 0.0);
}

TEST(Interpret, TopStructuresSortedByMagnitude) {
  TopologyEvaluator evaluator(s1_context(), fast_sizing());
  IntoOaOptimizer optimizer(fast_optimizer());
  util::Rng rng(62);
  optimizer.run(evaluator, rng);
  const auto top = top_structures(optimizer.objective_model(), 5, 1);
  EXPECT_LE(top.size(), 5u);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(std::fabs(top[i - 1].gradient), std::fabs(top[i].gradient));
  }
  for (const auto& s : top) EXPECT_LE(s.depth, 1);
}

TEST(Refine, ImprovesOrAtLeastAttempts) {
  // Train models on an S-5 mini-campaign, then refine C1 for S-5 (the
  // paper's refinement scenario).
  sizing::EvalContext ctx(circuit::spec_by_name("S-5"));
  TopologyEvaluator evaluator(ctx, fast_sizing());
  OptimizerConfig config = fast_optimizer();
  config.iterations = 8;
  IntoOaOptimizer optimizer(config);
  util::Rng rng(63);
  optimizer.run(evaluator, rng);

  RefineModels models;
  models.objective = &optimizer.objective_model();
  for (std::size_t i = 0; i < circuit::Spec::kConstraintCount; ++i) {
    models.constraints[i] = &optimizer.constraint_model(i);
  }

  // A trusted C1 sizing (mid-range parameters).
  const auto trusted = circuit::named_topology("C1");
  const auto schema = circuit::make_schema(trusted, ctx.behavioral);
  std::vector<double> unit(schema.size(), 0.5);
  const auto base = schema.from_unit(unit);

  RefineConfig refine_config;
  refine_config.sims_per_attempt = 12;
  refine_config.max_alternatives = 3;
  const Refiner refiner(ctx, refine_config);
  const RefineResult result = refiner.refine(trusted, base, models, rng);

  EXPECT_EQ(result.original, trusted);
  EXPECT_FALSE(result.attempts.empty());
  EXPECT_LE(result.attempts.size(), 3u);
  EXPECT_GT(result.simulations, 0u);
  // The refined topology differs from the original in at most one slot.
  EXPECT_LE(result.refined.hamming_distance(trusted), 1u);
  if (result.success) {
    EXPECT_TRUE(result.refined_point.feasible);
    EXPECT_NE(result.new_type, result.old_type);
  }
}

TEST(Refine, RequiresTrainedModel) {
  const Refiner refiner(s1_context());
  RefineModels empty;
  util::Rng rng(64);
  const auto trusted = circuit::named_topology("C1");
  const auto schema =
      circuit::make_schema(trusted, s1_context().behavioral);
  std::vector<double> unit(schema.size(), 0.5);
  EXPECT_THROW(
      refiner.refine(trusted, schema.from_unit(unit), empty, rng),
      std::invalid_argument);
}

TEST(Refine, Validation) {
  EXPECT_THROW(Refiner(s1_context(), RefineConfig{.sims_per_attempt = 2}),
               std::invalid_argument);
  EXPECT_THROW(Refiner(s1_context(), RefineConfig{.max_alternatives = 0}),
               std::invalid_argument);
}


// ---- EvalKey golden values -------------------------------------------------
// The key digest is the content address of every stored evaluation AND the
// sizing RNG seed, so it must stay bit-stable across refactors: a silent
// change would orphan every persistent store file and break the
// remote-vs-in-process byte-identity contract of intooa::svc. These pins
// cover representative (spec, behavioral model, AC options, sizing
// protocol, topology) tuples; if one fails, either restore the canonical
// serialization or bump the store/protocol versions and document the
// migration.

TEST(EvalKey, GoldenDigestsAreBitStable) {
  // Paper-default protocol, S-1, the classic NMC topology.
  {
    const core::EvalKeyContext keys(sizing::EvalContext(circuit::spec_by_name("S-1")),
                                    sizing::SizingConfig{});
    EXPECT_EQ(keys.key_for(circuit::named_topology("NMC")).digest,
              0xf9dafad698e30916ULL);
  }
  // Quick protocol (5 init + 15 iterations), S-3, topology index 42.
  {
    sizing::SizingConfig cfg;
    cfg.init_points = 5;
    cfg.iterations = 15;
    const core::EvalKeyContext keys(sizing::EvalContext(circuit::spec_by_name("S-3")),
                                    cfg);
    EXPECT_EQ(keys.key_for(circuit::Topology::from_index(42)).digest,
              0xd2b4fa8722ae632aULL);
  }
  // Custom behavioral model (slower stages) and coarser AC sweep, S-5.
  {
    circuit::BehavioralConfig behav;
    behav.stage_ft_hz = 90e6;
    sim::AcOptions ac;
    ac.points_per_decade = 8;
    const core::EvalKeyContext keys(
        sizing::EvalContext(circuit::spec_by_name("S-5"), behav, ac),
        sizing::SizingConfig{});
    EXPECT_EQ(keys.key_for(circuit::Topology::from_index(0)).digest,
              0xb6b5f669b3cda582ULL);
  }
  // S-2 with the C1 library topology.
  {
    const core::EvalKeyContext keys(sizing::EvalContext(circuit::spec_by_name("S-2")),
                                    sizing::SizingConfig{});
    EXPECT_EQ(keys.key_for(circuit::named_topology("C1")).digest,
              0x0a29cd1cdf75c637ULL);
  }
}

TEST(EvalKey, DigestSeparatesEveryKeyComponent) {
  const auto digest_of = [](const std::string& spec,
                            const sizing::SizingConfig& cfg,
                            std::size_t topology_index) {
    const core::EvalKeyContext keys(
        sizing::EvalContext(circuit::spec_by_name(spec)), cfg);
    return keys.key_for(circuit::Topology::from_index(topology_index)).digest;
  };
  const std::uint64_t base = digest_of("S-1", {}, 7);
  EXPECT_NE(base, digest_of("S-2", {}, 7));  // spec matters
  sizing::SizingConfig other;
  other.iterations = 31;
  EXPECT_NE(base, digest_of("S-1", other, 7));  // protocol matters
  EXPECT_NE(base, digest_of("S-1", {}, 8));     // topology matters
  EXPECT_EQ(base, digest_of("S-1", {}, 7));     // and it is deterministic
}

}  // namespace
