// Unit tests for intooa::sim — MNA stamps against hand-solved circuits,
// AC sweeps, phase unwrapping, metric extraction, pole analysis and the
// open-loop stability guard.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "circuit/behavioral.hpp"
#include "circuit/library.hpp"
#include "sim/metrics.hpp"
#include "sim/mna.hpp"

namespace {

using namespace intooa;
using namespace intooa::sim;

constexpr double kPi = std::numbers::pi;

TEST(Mna, ResistiveDivider) {
  circuit::Netlist net;
  const auto in = net.node("in");
  const auto mid = net.node("mid");
  net.add_vsource("src", in, 0, 1.0);
  net.add_resistor("r1", in, mid, 1e3);
  net.add_resistor("r2", mid, 0, 3e3);
  const AcSolver solver(net);
  const auto v = solver.solve(0.0);
  EXPECT_NEAR(v[in].real(), 1.0, 1e-12);
  EXPECT_NEAR(v[mid].real(), 0.75, 1e-12);
  EXPECT_NEAR(v[mid].imag(), 0.0, 1e-12);
}

TEST(Mna, RcLowpassPole) {
  // R = 1k, C = 1u -> fc = 1/(2 pi R C) ~= 159.15 Hz.
  circuit::Netlist net;
  const auto in = net.node("in");
  const auto out = net.node("out");
  net.add_vsource("src", in, 0, 1.0);
  net.add_resistor("r", in, out, 1e3);
  net.add_capacitor("c", out, 0, 1e-6);
  const AcSolver solver(net);
  const double fc = 1.0 / (2.0 * kPi * 1e3 * 1e-6);
  const auto v = solver.solve(fc);
  EXPECT_NEAR(std::abs(v[out]), 1.0 / std::sqrt(2.0), 1e-6);
  EXPECT_NEAR(std::arg(v[out]) * 180.0 / kPi, -45.0, 1e-3);
  // Pole from eigenanalysis.
  const auto poles = solver.poles();
  ASSERT_EQ(poles.size(), 1u);
  EXPECT_NEAR(poles[0].real(), -2.0 * kPi * fc, 1.0);
}

TEST(Mna, VccsPolarityAndGain) {
  // Inverting transconductor into a load resistor: vout = -gm*R*vin.
  circuit::Netlist net;
  const auto in = net.node("in");
  const auto out = net.node("out");
  net.add_vsource("src", in, 0, 1.0);
  net.add_vccs("g", out, 0, in, 0, -2e-3, 0.0);
  net.add_resistor("rl", out, 0, 10e3);
  const auto v = AcSolver(net).solve(0.0);
  EXPECT_NEAR(v[out].real(), -20.0, 1e-9);
}

TEST(Mna, VccsPositivePolarity) {
  circuit::Netlist net;
  const auto in = net.node("in");
  const auto out = net.node("out");
  net.add_vsource("src", in, 0, 1.0);
  net.add_vccs("g", out, 0, in, 0, 1e-3, 0.0);
  net.add_resistor("rl", out, 0, 5e3);
  const auto v = AcSolver(net).solve(0.0);
  EXPECT_NEAR(v[out].real(), 5.0, 1e-9);
}

TEST(Mna, TwoSourcesSuperpose) {
  circuit::Netlist net;
  const auto a = net.node("a");
  const auto b = net.node("b");
  net.add_vsource("s1", a, 0, 2.0);
  net.add_vsource("s2", b, 0, 3.0);
  net.add_resistor("r", a, b, 1e3);
  const auto v = AcSolver(net).solve(0.0);
  EXPECT_NEAR(v[a].real(), 2.0, 1e-12);
  EXPECT_NEAR(v[b].real(), 3.0, 1e-12);
}

TEST(Mna, EmptyNetlistRejected) {
  circuit::Netlist net;
  EXPECT_THROW(AcSolver{net}, std::invalid_argument);
}

TEST(Mna, NegativeFrequencyRejected) {
  circuit::Netlist net;
  const auto a = net.node("a");
  net.add_resistor("r", a, 0, 1e3);
  EXPECT_THROW(AcSolver(net).solve(-1.0), std::invalid_argument);
}

TEST(RunAc, GridRespectsOptions) {
  circuit::Netlist net;
  const auto in = net.node("in");
  net.add_vsource("src", in, 0, 1.0);
  net.add_resistor("r", in, 0, 1e3);
  AcOptions opts;
  opts.f_min_hz = 1.0;
  opts.f_max_hz = 1e3;
  opts.points_per_decade = 10;
  const AcSweep sweep = run_ac(net, "in", opts);
  EXPECT_EQ(sweep.freqs_hz.size(), 31u);
  EXPECT_NEAR(sweep.freqs_hz.front(), 1.0, 1e-9);
  EXPECT_NEAR(sweep.freqs_hz.back(), 1e3, 1e-6);
  EXPECT_THROW(run_ac(net, "nope", opts), std::invalid_argument);
}

TEST(Phase, UnwrapAccumulatesSmoothLag) {
  // Three-pole response sweeps through -270 degrees without wrapping
  // artifacts.
  circuit::Netlist net;
  const auto in = net.node("in");
  auto prev = in;
  net.add_vsource("src", in, 0, 1.0);
  for (int i = 0; i < 3; ++i) {
    const auto next = net.node("n" + std::to_string(i));
    net.add_vccs("g" + std::to_string(i), next, 0, prev, 0, -1e-3, 0.0);
    net.add_resistor("r" + std::to_string(i), next, 0, 10e3);
    net.add_capacitor("c" + std::to_string(i), next, 0, 1e-9);
    prev = next;
  }
  const AcSweep sweep = run_ac(net, "n2");
  const auto phase = unwrapped_phase_deg(sweep);
  // Total asymptotic lag of three poles: 270 degrees.
  EXPECT_NEAR(phase.front() - phase.back(), 270.0, 5.0);
  EXPECT_TRUE(std::is_sorted(phase.rbegin(), phase.rend()));
}

TEST(Metrics, SinglePoleAmplifier) {
  // H(s) = A / (1 + s/p): gain A = gm*R = 100 (40 dB),
  // GBW ~= A * fp = gm/(2 pi C).
  circuit::Netlist net;
  const auto in = net.node("in");
  const auto out = net.node("out");
  net.add_vsource("src", in, 0, 1.0);
  net.add_vccs("g", out, 0, in, 0, -1e-3, 50e-6);
  net.add_resistor("r", out, 0, 100e3);
  net.add_capacitor("c", out, 0, 100e-12);
  const auto perf = evaluate_opamp(net, 1.8, "out");
  ASSERT_TRUE(perf.valid) << perf.failure;
  EXPECT_NEAR(perf.gain_db, 40.0, 0.05);
  const double gbw_expected = 1e-3 / (2.0 * kPi * 100e-12);
  EXPECT_NEAR(perf.gbw_hz / gbw_expected, 1.0, 0.02);
  // Single pole: phase margin ~= 90 degrees.
  EXPECT_NEAR(perf.pm_deg, 90.0, 2.0);
  EXPECT_NEAR(perf.power_w, 1.8 * 50e-6, 1e-12);
}

TEST(Metrics, TwoPolePhaseMargin) {
  // Second pole at the dominant-pole GBW: the magnitude droop moves the
  // unity crossing down to x*sqrt(1+x^2)=1 => x ~= 0.786 of GBW, so the
  // exact phase margin is 90 - atan(0.786) ~= 51.8 degrees.
  circuit::Netlist net;
  const auto in = net.node("in");
  const auto mid = net.node("mid");
  const auto out = net.node("out");
  net.add_vsource("src", in, 0, 1.0);
  net.add_vccs("g1", mid, 0, in, 0, -1e-3, 0.0);
  net.add_resistor("r1", mid, 0, 100e3);
  net.add_capacitor("c1", mid, 0, 1e-9);
  // Unity-gain buffer stage with pole at gbw of stage 1.
  const double gbw1 = 1e-3 / (2.0 * kPi * 1e-9);
  net.add_vccs("g2", out, 0, mid, 0, -1e-4, 0.0);
  net.add_resistor("r2", out, 0, 10e3);  // gain 1
  net.add_capacitor("c2", out, 0, 1.0 / (2.0 * kPi * gbw1 * 10e3));
  const auto perf = evaluate_opamp(net, 1.8, "out");
  ASSERT_TRUE(perf.valid) << perf.failure;
  EXPECT_NEAR(perf.pm_deg, 51.8, 3.0);
}

TEST(Metrics, SubUnityGainInvalid) {
  circuit::Netlist net;
  const auto in = net.node("in");
  const auto out = net.node("out");
  net.add_vsource("src", in, 0, 1.0);
  net.add_vccs("g", out, 0, in, 0, -1e-6, 0.0);
  net.add_resistor("r", out, 0, 1e3);  // gain 0.001
  net.add_capacitor("c", out, 0, 1e-12);
  const auto perf = evaluate_opamp(net, 1.8, "out");
  EXPECT_FALSE(perf.valid);
  EXPECT_NE(perf.failure.find("dc gain"), std::string::npos);
}

TEST(Metrics, NoUnityCrossingInvalid) {
  // Pure resistive gain never crosses unity inside the sweep.
  circuit::Netlist net;
  const auto in = net.node("in");
  const auto out = net.node("out");
  net.add_vsource("src", in, 0, 1.0);
  net.add_vccs("g", out, 0, in, 0, -1e-3, 0.0);
  net.add_resistor("r", out, 0, 100e3);
  AcOptions opts;
  opts.check_stability = false;
  const auto perf = evaluate_opamp(net, 1.8, "out", opts);
  EXPECT_FALSE(perf.valid);
  EXPECT_NE(perf.failure.find("no unity-gain crossing"), std::string::npos);
}

TEST(Metrics, UnstableCircuitRejected) {
  // Positive feedback: gm into its own control node with gain > 1 makes an
  // RHP pole; the stability guard must reject it.
  circuit::Netlist net;
  const auto in = net.node("in");
  const auto out = net.node("out");
  net.add_vsource("src", in, 0, 1.0);
  net.add_resistor("rin", in, out, 1e6);
  net.add_vccs("g", out, 0, out, 0, 2e-3, 0.0);  // negative resistance
  net.add_resistor("r", out, 0, 1e3);
  net.add_capacitor("c", out, 0, 1e-12);
  const auto perf = evaluate_opamp(net, 1.8, "out");
  EXPECT_FALSE(perf.valid);
  EXPECT_NE(perf.failure.find("unstable"), std::string::npos);

  // With the guard disabled the AC response is computable.
  AcOptions opts;
  opts.check_stability = false;
  EXPECT_NO_THROW(run_ac(net, "out", opts));
}

TEST(Metrics, NmcAmplifierMatchesMillerTheory) {
  // The classic NMC topology: GBW ~= gm1 / (2 pi Cm).
  circuit::BehavioralConfig cfg;
  cfg.load_cap = 10e-12;
  const auto topo = circuit::named_topology("NMC");
  // Sized so the non-dominant complex pair never lifts |H| back above
  // unity (single-Miller three-stage amps are only robust at modest GBW).
  const std::vector<double> vals = {10e-6, 100e-6, 2e-3, 2e-12};
  const auto net = circuit::build_behavioral(topo, vals, cfg);
  const auto perf = evaluate_opamp(net, cfg.vdd);
  ASSERT_TRUE(perf.valid) << perf.failure;
  const double gbw_miller = 10e-6 / (2.0 * kPi * 2e-12);
  EXPECT_NEAR(perf.gbw_hz / gbw_miller, 1.0, 0.15);
  EXPECT_GT(perf.pm_deg, 45.0);
  // Unloaded three-stage gain = A0^3.
  EXPECT_NEAR(perf.gain_db, 60.0 * std::log10(cfg.stage_intrinsic_gain) / 1.0,
              1.0);
}

TEST(Metrics, BareThreeStageIsUnstableInPhase) {
  // Without compensation the three-stage amp has PM << 0 (or is flagged).
  circuit::BehavioralConfig cfg;
  cfg.load_cap = 10e-12;
  const auto net = circuit::build_behavioral(
      circuit::Topology(), std::vector<double>{100e-6, 100e-6, 1e-3}, cfg);
  const auto perf = evaluate_opamp(net, cfg.vdd);
  if (perf.valid) EXPECT_LT(perf.pm_deg, 20.0);
}

TEST(Metrics, PowerIndependentOfFrequencyGrid) {
  circuit::BehavioralConfig cfg;
  const auto net = circuit::build_behavioral(
      circuit::named_topology("NMC"),
      std::vector<double>{50e-6, 50e-6, 5e-4, 1e-12}, cfg);
  const double expected =
      cfg.vdd * (50e-6 + 50e-6 + 5e-4) / cfg.gm_over_id;
  AcOptions coarse;
  coarse.points_per_decade = 4;
  EXPECT_NEAR(evaluate_opamp(net, cfg.vdd, "vout", coarse).power_w, expected,
              1e-12);
}

TEST(Metrics, SweepTooShortFails) {
  AcSweep sweep;
  sweep.freqs_hz = {1.0};
  sweep.transfer = {{1.0, 0.0}};
  const auto perf = extract_performance(sweep, 0.0);
  EXPECT_FALSE(perf.valid);
}

TEST(Metrics, NonFiniteResponseFails) {
  AcSweep sweep;
  sweep.freqs_hz = {1.0, 10.0};
  sweep.transfer = {{1e3, 0.0}, {std::nan(""), 0.0}};
  const auto perf = extract_performance(sweep, 0.0);
  EXPECT_FALSE(perf.valid);
  EXPECT_NE(perf.failure.find("non-finite"), std::string::npos);
}

}  // namespace
