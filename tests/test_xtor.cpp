// Unit tests for intooa::xtor — the EKV-style MOS model, gm/Id lookup
// tables, device sizing, and behavioral-to-transistor mapping.

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/library.hpp"
#include "sim/metrics.hpp"
#include "xtor/gmid_lut.hpp"
#include "xtor/mapping.hpp"
#include "xtor/mos.hpp"

namespace {

using namespace intooa;
using namespace intooa::xtor;

TEST(Mos, GmOverIdMonotoneDecreasingInIc) {
  const TechParams tech;
  double prev = gm_over_id_of_ic(1e-3, tech);
  for (double ic : {1e-2, 1e-1, 1.0, 10.0, 100.0}) {
    const double cur = gm_over_id_of_ic(ic, tech);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(Mos, WeakInversionLimit) {
  const TechParams tech;
  const double weak = 1.0 / (tech.n * tech.ut);
  EXPECT_NEAR(gm_over_id_of_ic(1e-6, tech), weak, weak * 0.01);
  EXPECT_THROW(ic_for_gm_over_id(weak * 1.01, tech), std::invalid_argument);
  EXPECT_THROW(ic_for_gm_over_id(0.0, tech), std::invalid_argument);
}

TEST(Mos, IcInversionRoundTrip) {
  const TechParams tech;
  for (double ic : {0.01, 0.1, 1.0, 5.0, 50.0}) {
    const double gmid = gm_over_id_of_ic(ic, tech);
    EXPECT_NEAR(ic_for_gm_over_id(gmid, tech), ic, ic * 1e-9);
  }
}

TEST(Mos, SizeDeviceBasicRelations) {
  const TechParams tech;
  const Device d = size_device("M1", 1e-3, 15.0, 0.5, tech);
  EXPECT_NEAR(d.id, 1e-3 / 15.0, 1e-12);
  EXPECT_GT(d.w_um, 0.0);
  EXPECT_GT(d.gds, 0.0);
  EXPECT_GT(d.cgs, 0.0);
  // Intrinsic gain gm/gds = (gm/Id)/lambda, lambda = lambda0/L.
  EXPECT_NEAR(d.gm / d.gds, 15.0 / (tech.lambda0_um / 0.5), 1e-6);
  // Width scales linearly with gm at fixed gm/Id and L.
  const Device d2 = size_device("M2", 2e-3, 15.0, 0.5, tech);
  EXPECT_NEAR(d2.w_um / d.w_um, 2.0, 1e-9);
  EXPECT_THROW(size_device("bad", -1.0, 15.0, 0.5, tech),
               std::invalid_argument);
}

TEST(Mos, LongerChannelMoreGain) {
  const TechParams tech;
  const Device short_l = size_device("a", 1e-4, 15.0, 0.2, tech);
  const Device long_l = size_device("b", 1e-4, 15.0, 1.0, tech);
  EXPECT_GT(short_l.gds, long_l.gds);
}

TEST(GmIdLutTest, MatchesClosedFormModel) {
  const TechParams tech;
  const GmIdLut lut(tech);
  for (double ic : {0.005, 0.07, 0.9, 12.0, 80.0}) {
    EXPECT_NEAR(lut.gm_over_id(ic), gm_over_id_of_ic(ic, tech),
                gm_over_id_of_ic(ic, tech) * 0.01);
  }
}

TEST(GmIdLutTest, InverseLookupRoundTrip) {
  const TechParams tech;
  const GmIdLut lut(tech);
  for (double gmid : {5.0, 10.0, 15.0, 20.0, 25.0}) {
    const double ic = lut.ic(gmid);
    EXPECT_NEAR(lut.gm_over_id(ic), gmid, gmid * 0.01);
  }
  EXPECT_THROW(lut.ic(1000.0), std::invalid_argument);
}

TEST(GmIdLutTest, ClampsAtTableEnds) {
  const TechParams tech;
  const GmIdLut lut(tech, 64, 1e-2, 1e1);
  EXPECT_DOUBLE_EQ(lut.gm_over_id(1e-6), lut.gm_over_id(1e-2));
  EXPECT_DOUBLE_EQ(lut.gm_over_id(1e3), lut.gm_over_id(1e1));
  EXPECT_THROW(GmIdLut(tech, 1), std::invalid_argument);
}

TEST(GmIdLutTest, CurrentDensityScalesWithIc) {
  const TechParams tech;
  const GmIdLut lut(tech);
  EXPECT_NEAR(lut.current_density(2.0) / lut.current_density(1.0), 2.0,
              1e-12);
}

circuit::BehavioralConfig s1_cfg() {
  circuit::BehavioralConfig cfg;
  cfg.load_cap = 10e-12;
  return cfg;
}

TEST(Mapping, NmcDesignStructure) {
  const auto topo = circuit::named_topology("NMC");
  const std::vector<double> vals = {100e-6, 100e-6, 1e-3, 2e-12};
  const auto design = map_to_transistor(topo, vals, s1_cfg());
  // 3 stages: one differential (5 devices incl. tail) + two CS (2 each).
  ASSERT_EQ(design.cells.size(), 3u);
  EXPECT_TRUE(design.cells[0].differential);
  EXPECT_FALSE(design.cells[1].differential);
  EXPECT_EQ(design.device_count(), 5u + 2u + 2u);
  EXPECT_GT(design.supply_current, 0.0);
  // The report mentions every cell.
  const std::string report = design.to_string();
  EXPECT_NE(report.find("gm1"), std::string::npos);
  EXPECT_NE(report.find("gm3"), std::string::npos);
}

TEST(Mapping, PowerExceedsBehavioral) {
  // Mirror loads, tail current and bias overhead make the transistor-level
  // power strictly larger than the behavioral estimate.
  const auto topo = circuit::named_topology("NMC");
  const std::vector<double> vals = {100e-6, 100e-6, 1e-3, 2e-12};
  const auto cfg = s1_cfg();
  const auto behavioral_net = circuit::build_behavioral(topo, vals, cfg);
  const auto design = map_to_transistor(topo, vals, cfg);
  EXPECT_GT(cfg.vdd * design.supply_current,
            behavioral_net.static_power(cfg.vdd));
}

TEST(Mapping, TransistorLevelNmcStillAmplifies) {
  const auto topo = circuit::named_topology("NMC");
  const std::vector<double> vals = {100e-6, 100e-6, 1e-3, 4e-12};
  const auto perf = evaluate_transistor(topo, vals, s1_cfg());
  ASSERT_TRUE(perf.valid) << perf.failure;
  EXPECT_GT(perf.gain_db, 60.0);
  EXPECT_GT(perf.gbw_hz, 1e5);
}

TEST(Mapping, GainBelowBehavioralLevel) {
  // Finite transistor output resistance caps the per-stage gain below the
  // behavioral A0, so transistor-level DC gain must be lower.
  const auto topo = circuit::named_topology("NMC");
  const std::vector<double> vals = {100e-6, 100e-6, 1e-3, 4e-12};
  const auto cfg = s1_cfg();
  const auto behavioral = sim::evaluate_opamp(
      circuit::build_behavioral(topo, vals, cfg), cfg.vdd);
  const auto transistor = evaluate_transistor(topo, vals, cfg);
  ASSERT_TRUE(behavioral.valid);
  ASSERT_TRUE(transistor.valid);
  EXPECT_LT(transistor.gain_db, behavioral.gain_db);
}

TEST(Mapping, VariableGmCellsAreMapped) {
  const auto topo = circuit::named_topology("C1");  // two gm subcircuits
  const auto cfg = s1_cfg();
  const auto schema = circuit::make_schema(topo, cfg);
  std::vector<double> unit(schema.size(), 0.5);
  const auto vals = schema.from_unit(unit);
  const auto design = map_to_transistor(topo, vals, cfg);
  EXPECT_EQ(design.cells.size(), 5u);  // 3 stages + 2 variable gms
  // Series-C compound cells create their internal node.
  const auto topo2 =
      circuit::Topology().with(circuit::Slot::V1Vout,
                               circuit::SubcktType::GmNegFwdSerC);
  const auto schema2 = circuit::make_schema(topo2, cfg);
  std::vector<double> unit2(schema2.size(), 0.5);
  const auto design2 =
      map_to_transistor(topo2, schema2.from_unit(unit2), cfg);
  EXPECT_TRUE(design2.netlist.find_node("v1-vout.m").has_value());
}

TEST(Mapping, ValueSizeMismatchThrows) {
  EXPECT_THROW(map_to_transistor(circuit::named_topology("NMC"),
                                 std::vector<double>{1e-4}, s1_cfg()),
               std::invalid_argument);
}

}  // namespace
