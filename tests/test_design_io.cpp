// Unit tests for design persistence (circuit/design_io): JSON round trips,
// malformed-input rejection, and file I/O.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "circuit/design_io.hpp"
#include "circuit/library.hpp"
#include "util/rng.hpp"

namespace {

using namespace intooa;
using circuit::SavedDesign;

SavedDesign sample_design() {
  SavedDesign design;
  design.name = "best S-3 \"winner\"";  // embedded quotes exercise escaping
  design.spec_name = "S-3";
  design.topology = circuit::named_topology("C1");
  design.values = {1e-4, 2.5e-4, 1.7e-3, 3.3e-12, 4.4e-12};
  design.performance.valid = true;
  design.performance.gain_db = 91.25;
  design.performance.gbw_hz = 7.5e6;
  design.performance.pm_deg = 61.5;
  design.performance.power_w = 123e-6;
  design.fom = 609.76;
  return design;
}

TEST(DesignIo, JsonRoundTripPreservesEverything) {
  const SavedDesign original = sample_design();
  const SavedDesign parsed = circuit::design_from_json(to_json(original));
  EXPECT_EQ(parsed.name, original.name);
  EXPECT_EQ(parsed.spec_name, original.spec_name);
  EXPECT_EQ(parsed.topology, original.topology);
  ASSERT_EQ(parsed.values.size(), original.values.size());
  for (std::size_t i = 0; i < parsed.values.size(); ++i) {
    EXPECT_DOUBLE_EQ(parsed.values[i], original.values[i]);
  }
  EXPECT_EQ(parsed.performance.valid, original.performance.valid);
  EXPECT_DOUBLE_EQ(parsed.performance.gain_db, original.performance.gain_db);
  EXPECT_DOUBLE_EQ(parsed.performance.gbw_hz, original.performance.gbw_hz);
  EXPECT_DOUBLE_EQ(parsed.fom, original.fom);
}

TEST(DesignIo, RoundTripsRandomTopologies) {
  util::Rng rng(99);
  for (int i = 0; i < 100; ++i) {
    SavedDesign design;
    design.name = "fuzz";
    design.topology = circuit::Topology::random(rng);
    design.values = {rng.log_uniform(1e-6, 1e-3)};
    const SavedDesign parsed = circuit::design_from_json(to_json(design));
    EXPECT_EQ(parsed.topology, design.topology);
  }
}

TEST(DesignIo, JsonIsHumanReadable) {
  const std::string json = to_json(sample_design());
  EXPECT_NE(json.find("\"slots\""), std::string::npos);
  EXPECT_NE(json.find("-gmCp"), std::string::npos);  // C1's v1-vout branch
  EXPECT_NE(json.find("\"gain_db\": 91.25"), std::string::npos);
}

TEST(DesignIo, RejectsMalformedDocuments) {
  EXPECT_THROW(circuit::design_from_json("{}"), std::invalid_argument);
  EXPECT_THROW(circuit::design_from_json("not json at all"),
               std::invalid_argument);

  // Unknown subcircuit name.
  std::string bad = to_json(sample_design());
  bad.replace(bad.find("-gmCp"), 5, "bogus");
  EXPECT_THROW(circuit::design_from_json(bad), std::invalid_argument);

  // Wrong slot count.
  std::string few = to_json(sample_design());
  const auto pos = few.find("\"slots\": [");
  few.replace(pos, few.find(']', pos) - pos + 1,
              "\"slots\": [\"none\", \"none\"]");
  EXPECT_THROW(circuit::design_from_json(few), std::invalid_argument);

  // A type that exists but is illegal in its slot (R in vin-v2).
  std::string illegal = to_json(sample_design());
  const auto spos = illegal.find("[\"none\"");
  ASSERT_NE(spos, std::string::npos);
  illegal.replace(spos + 2, 4, "R\", \"");  // corrupts first slot name
  EXPECT_THROW(circuit::design_from_json(illegal), std::invalid_argument);
}

TEST(DesignIo, FileRoundTrip) {
  const auto path =
      std::filesystem::temp_directory_path() / "intooa_design_io_test.json";
  const SavedDesign original = sample_design();
  circuit::save_design(original, path.string());
  const SavedDesign loaded = circuit::load_design(path.string());
  EXPECT_EQ(loaded, original);
  std::filesystem::remove(path);
  EXPECT_THROW(circuit::load_design(path.string()), std::runtime_error);
  EXPECT_THROW(circuit::save_design(original, "/nonexistent-dir/x.json"),
               std::runtime_error);
}

}  // namespace
