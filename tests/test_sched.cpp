// Tests for intooa::sched — the job/wire codecs, the persistent journal
// (replay, torn tails, single-byte corruption fuzzing), the scheduler core
// (completion, QueueFull backpressure, cancellation, strict-priority
// preemption accounting, weighted fair share, tenant quotas, kill/restart
// recovery), the JobService protocol end to end over a unix socket, and
// the headline contract: a scheduled campaign job's CSV is byte-identical
// to the standalone campaign driver's.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "campaign/campaign.hpp"
#include "obs/metrics.hpp"
#include "sched/campaign_workload.hpp"
#include "sched/client.hpp"
#include "sched/job.hpp"
#include "sched/journal.hpp"
#include "sched/protocol.hpp"
#include "sched/scheduler.hpp"
#include "sched/service.hpp"
#include "util/rng.hpp"

namespace {

using namespace intooa;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string fresh_file(const std::string& name) {
  const std::string path =
      temp_path(name + "." + std::to_string(::getpid()));
  std::filesystem::remove(path);
  return path;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void spew(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

sched::JobSpec tiny_spec(const std::string& tenant = "default",
                         std::uint32_t priority = 0, std::size_t runs = 2) {
  sched::JobSpec spec;
  spec.tenant = tenant;
  spec.priority = priority;
  spec.specs = {"S-1"};
  spec.params.runs = runs;
  spec.params.init_topologies = 2;
  spec.params.iterations = 2;
  spec.params.pool = 20;
  spec.params.sizing_init = 2;
  spec.params.sizing_iterations = 2;
  spec.params.seed = 7;
  return spec;
}

/// Instrumented workload: records dispatch order and concurrency, can slow
/// units down or fail them, never touches a real campaign.
struct FakeWorkload : sched::Workload {
  std::mutex mutex;
  std::vector<std::string> tenants;      ///< dispatch order by tenant
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ran;  ///< (job, unit)
  std::vector<std::uint64_t> finalized;
  std::atomic<int> concurrent{0};
  std::atomic<int> max_concurrent{0};
  std::atomic<int> entered{0};  ///< units that reached run_unit (pre-hold)
  std::atomic<int> finalize_entered{0};
  std::atomic<int> unit_delay_ms{0};
  std::atomic<bool> fail_units{false};
  std::atomic<bool> fail_unit_zero{false};  ///< only unit 0 throws, at once
  std::atomic<bool> hold{false};           ///< stalls units until released
  std::atomic<bool> hold_finalize{false};  ///< stalls finalize until released
  std::string fail_message = "unit exploded";  ///< set before constructing
                                               ///< the scheduler

  void validate(const sched::JobSpec& spec) override {
    if (spec.specs.empty()) throw std::invalid_argument("job has no specs");
    if (spec.params.runs == 0) throw std::invalid_argument("zero runs");
  }

  sched::UnitResult run_unit(const sched::JobInfo& job,
                             const sched::UnitRef& unit) override {
    entered.fetch_add(1);
    while (hold.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const int now = concurrent.fetch_add(1) + 1;
    int seen = max_concurrent.load();
    while (now > seen && !max_concurrent.compare_exchange_weak(seen, now)) {
    }
    {
      std::lock_guard<std::mutex> lock(mutex);
      tenants.push_back(job.spec.tenant);
      ran.emplace_back(job.id, unit.unit_index);
    }
    if (fail_unit_zero.load() && unit.unit_index == 0) {
      // Fails immediately — before the delay — so this unit lands while
      // the others are still in flight.
      concurrent.fetch_sub(1);
      throw std::runtime_error(fail_message);
    }
    if (unit_delay_ms.load() > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(unit_delay_ms.load()));
    }
    concurrent.fetch_sub(1);
    if (fail_units.load()) throw std::runtime_error(fail_message);
    return sched::UnitResult{10};
  }

  void finalize(const sched::JobInfo& job) override {
    finalize_entered.fetch_add(1);
    while (hold_finalize.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::lock_guard<std::mutex> lock(mutex);
    finalized.push_back(job.id);
  }

  std::size_t ran_count() {
    std::lock_guard<std::mutex> lock(mutex);
    return ran.size();
  }
};

// ---- codecs ----

TEST(SchedCodec, JobSpecRoundTripIsExact) {
  sched::JobSpec spec = tiny_spec("acme", 3, 5);
  spec.specs = {"S-1", "S-3"};
  spec.method = "FE-GA";
  const std::string bytes = sched::encode_job_spec(spec);
  const auto back = sched::decode_job_spec(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, spec);
  // Trailing garbage and truncation are both structural defects.
  EXPECT_FALSE(sched::decode_job_spec(bytes + "x").has_value());
  EXPECT_FALSE(
      sched::decode_job_spec(std::string_view(bytes).substr(0, bytes.size() - 1))
          .has_value());
}

TEST(SchedCodec, JobInfoRoundTripAndBadStateRejected) {
  sched::JobInfo info;
  info.id = 42;
  info.spec = tiny_spec("acme", 1, 3);
  info.state = sched::JobState::Running;
  info.units_total = 3;
  info.units_done = 1;
  info.simulations = 160;
  info.preemptions = 2;
  info.message = "so far so good";
  const std::string bytes = sched::encode_job_info(info);
  const auto back = sched::decode_job_info(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, info);

  // A state byte outside the enum must not round-trip into a JobState.
  std::string corrupt = bytes;
  const std::string spec_bytes = sched::encode_job_spec(info.spec);
  corrupt[8 + spec_bytes.size()] = 9;  // the state byte follows id + spec
  EXPECT_FALSE(sched::decode_job_info(corrupt).has_value());
}

TEST(SchedCodec, JobControlMessagesRoundTrip) {
  const sched::SubmitJobMsg submit{77, tiny_spec("t", 2, 4)};
  const auto submit_back = sched::decode_submit_job(
      sched::encode_submit_job(submit));
  ASSERT_TRUE(submit_back.has_value());
  EXPECT_EQ(submit_back->request_id, 77u);
  EXPECT_EQ(submit_back->spec, submit.spec);

  const auto full_back = sched::decode_queue_full(
      sched::encode_queue_full({5, 1500}));
  ASSERT_TRUE(full_back.has_value());
  EXPECT_EQ(full_back->retry_after_ms, 1500u);

  sched::JobListMsg list;
  list.request_id = 9;
  sched::JobInfo info;
  info.id = 1;
  info.spec = tiny_spec();
  list.jobs = {info, info};
  const auto list_back = sched::decode_job_list(sched::encode_job_list(list));
  ASSERT_TRUE(list_back.has_value());
  EXPECT_EQ(list_back->jobs.size(), 2u);
  EXPECT_EQ(list_back->jobs[0], info);
}

// ---- journal ----

TEST(SchedJournal, AppendAndReplay) {
  const std::string path = fresh_file("intooa_sched_journal.bin");
  sched::JobInfo info;
  info.id = 1;
  info.spec = tiny_spec("acme", 0, 3);
  info.units_total = 3;
  {
    sched::JournalRecovery recovery;
    auto journal = sched::JobJournal::open(path, recovery);
    EXPECT_EQ(recovery.events, 0u);
    journal->submitted(info);
    journal->unit_done(1, 0, 10);
    journal->unit_done(1, 2, 10);
  }
  sched::JournalRecovery recovery;
  auto journal = sched::JobJournal::open(path, recovery);
  EXPECT_EQ(recovery.events, 3u);
  EXPECT_EQ(recovery.recovered_tail_bytes, 0u);
  EXPECT_EQ(recovery.next_job_id, 2u);
  ASSERT_EQ(recovery.jobs.size(), 1u);
  EXPECT_EQ(recovery.jobs[0].info.state, sched::JobState::Queued);
  EXPECT_EQ(recovery.jobs[0].info.units_done, 2u);
  EXPECT_EQ(recovery.jobs[0].info.simulations, 20u);
  EXPECT_EQ((std::set<std::uint32_t>(recovery.jobs[0].done_units.begin(),
                                     recovery.jobs[0].done_units.end())),
            (std::set<std::uint32_t>{0, 2}));

  journal->state_changed(1, sched::JobState::Completed, "");
  journal.reset();
  sched::JournalRecovery again;
  sched::JobJournal::open(path, again);
  EXPECT_EQ(again.jobs[0].info.state, sched::JobState::Completed);
  std::filesystem::remove(path);
}

TEST(SchedJournal, TornTailIsTruncatedToValidPrefix) {
  const std::string path = fresh_file("intooa_sched_torn.bin");
  sched::JobInfo info;
  info.id = 1;
  info.spec = tiny_spec();
  {
    sched::JournalRecovery recovery;
    auto journal = sched::JobJournal::open(path, recovery);
    journal->submitted(info);
    journal->unit_done(1, 0, 10);
  }
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full - 5);  // tear the last event

  sched::JournalRecovery recovery;
  auto journal = sched::JobJournal::open(path, recovery);
  EXPECT_EQ(recovery.events, 1u);
  EXPECT_GT(recovery.recovered_tail_bytes, 0u);
  ASSERT_EQ(recovery.jobs.size(), 1u);
  EXPECT_EQ(recovery.jobs[0].done_units.size(), 0u);
  // The journal is usable after truncation: the event can be re-appended.
  journal->unit_done(1, 0, 10);
  journal.reset();
  sched::JournalRecovery again;
  sched::JobJournal::open(path, again);
  EXPECT_EQ(again.events, 2u);
  std::filesystem::remove(path);
}

TEST(SchedJournal, SecondOpenOnLockedJournalThrows) {
  const std::string path = fresh_file("intooa_sched_lock.bin");
  sched::JournalRecovery recovery;
  auto journal = sched::JobJournal::open(path, recovery);
  sched::JournalRecovery second;
  EXPECT_THROW(sched::JobJournal::open(path, second), std::runtime_error);
  journal.reset();
  EXPECT_NO_THROW(sched::JobJournal::open(path, second));
  std::filesystem::remove(path);
}

TEST(SchedJournal, SingleByteCorruptionRecoversPrefixOrFailsCleanly) {
  const std::string path = fresh_file("intooa_sched_fuzz.bin");
  std::uint64_t total_events = 0;
  {
    sched::JournalRecovery recovery;
    auto journal = sched::JobJournal::open(path, recovery);
    for (std::uint64_t id = 1; id <= 3; ++id) {
      sched::JobInfo info;
      info.id = id;
      info.spec = tiny_spec("t" + std::to_string(id), 0, 2);
      info.units_total = 2;
      journal->submitted(info);
      journal->unit_done(id, 0, 10);
      ++total_events, ++total_events;
    }
    journal->state_changed(1, sched::JobState::Completed, "done");
    ++total_events;
  }
  const std::string pristine = slurp(path);
  ASSERT_FALSE(pristine.empty());

  // Flip one byte anywhere (header included); every outcome must be a
  // clean prefix recovery or a clean failure — never a crash, never a
  // structurally invalid job.
  util::Rng rng(20250809);
  for (int round = 0; round < 300; ++round) {
    std::string bytes = pristine;
    const std::size_t offset = rng.next_u64() % bytes.size();
    const char flip = static_cast<char>(1 + rng.next_u64() % 255);
    bytes[offset] = static_cast<char>(bytes[offset] ^ flip);
    spew(path, bytes);
    sched::JournalRecovery recovery;
    try {
      auto journal = sched::JobJournal::open(path, recovery);
    } catch (const std::runtime_error&) {
      continue;  // header corruption: clean refusal is correct
    }
    EXPECT_LE(recovery.events, total_events);
    for (const auto& job : recovery.jobs) {
      EXPECT_EQ(job.info.units_done, job.done_units.size());
      EXPECT_LE(static_cast<std::uint8_t>(job.info.state),
                static_cast<std::uint8_t>(sched::JobState::Failed));
      EXPECT_GE(job.info.id, 1u);
    }
  }
  std::filesystem::remove(path);
}

// ---- scheduler core ----

TEST(Scheduler, JobsRunToCompletion) {
  auto workload = std::make_shared<FakeWorkload>();
  sched::SchedulerConfig config;
  config.workers = 2;
  sched::Scheduler scheduler(config, workload);

  const auto submit = scheduler.submit(tiny_spec("default", 0, 3));
  ASSERT_TRUE(submit.accepted);
  ASSERT_TRUE(scheduler.wait_idle(10'000));

  const auto info = scheduler.status(submit.job_id);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->state, sched::JobState::Completed);
  EXPECT_EQ(info->units_done, 3u);
  EXPECT_EQ(info->units_total, 3u);
  EXPECT_EQ(info->simulations, 30u);
  EXPECT_EQ(workload->finalized, std::vector<std::uint64_t>{submit.job_id});
  EXPECT_FALSE(scheduler.status(999).has_value());
}

TEST(Scheduler, QueueFullPastDepthBoundWithRetryHint) {
  auto workload = std::make_shared<FakeWorkload>();
  workload->unit_delay_ms = 200;
  sched::SchedulerConfig config;
  config.workers = 1;
  config.max_queued_jobs = 2;
  config.retry_after_ms = 777;
  sched::Scheduler scheduler(config, workload);

  EXPECT_TRUE(scheduler.submit(tiny_spec("a", 0, 2)).accepted);
  EXPECT_TRUE(scheduler.submit(tiny_spec("a", 0, 2)).accepted);
  const auto refused = scheduler.submit(tiny_spec("a", 0, 2));
  EXPECT_FALSE(refused.accepted);
  EXPECT_EQ(refused.retry_after_ms, 777u);
  ASSERT_TRUE(scheduler.wait_idle(20'000));
  // Terminal jobs free queue slots.
  EXPECT_TRUE(scheduler.submit(tiny_spec("a", 0, 1)).accepted);
  ASSERT_TRUE(scheduler.wait_idle(20'000));
}

TEST(Scheduler, BadSpecIsRejectedBeforeAdmission) {
  auto workload = std::make_shared<FakeWorkload>();
  sched::Scheduler scheduler(sched::SchedulerConfig{}, workload);
  sched::JobSpec empty = tiny_spec();
  empty.specs.clear();
  EXPECT_THROW(scheduler.submit(empty), std::invalid_argument);
  EXPECT_TRUE(scheduler.list().empty());
}

TEST(Scheduler, CancelDropsQueuedUnitsAndFinishesAtBoundary) {
  auto workload = std::make_shared<FakeWorkload>();
  workload->unit_delay_ms = 100;
  sched::SchedulerConfig config;
  config.workers = 1;
  sched::Scheduler scheduler(config, workload);

  const auto running = scheduler.submit(tiny_spec("a", 1, 8));
  const auto queued = scheduler.submit(tiny_spec("a", 0, 8));
  ASSERT_TRUE(running.accepted);
  ASSERT_TRUE(queued.accepted);
  // The lower-priority job has nothing dispatched yet: cancel is instant.
  EXPECT_TRUE(scheduler.cancel(queued.job_id));
  EXPECT_EQ(scheduler.status(queued.job_id)->state,
            sched::JobState::Canceled);

  // Cancel the running job: its in-flight unit finishes, the rest do not.
  while (workload->ran_count() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(scheduler.cancel(running.job_id));
  ASSERT_TRUE(scheduler.wait_idle(10'000));
  const auto info = scheduler.status(running.job_id);
  EXPECT_EQ(info->state, sched::JobState::Canceled);
  EXPECT_LT(info->units_done, info->units_total);
  // Cancel is idempotent; unknown ids are reported.
  EXPECT_TRUE(scheduler.cancel(running.job_id));
  EXPECT_FALSE(scheduler.cancel(404));
  EXPECT_TRUE(workload->finalized.empty());
}

TEST(Scheduler, FailedUnitFailsTheJobWithItsMessage) {
  auto workload = std::make_shared<FakeWorkload>();
  workload->fail_units = true;
  sched::Scheduler scheduler(sched::SchedulerConfig{}, workload);
  const auto submit = scheduler.submit(tiny_spec("a", 0, 3));
  ASSERT_TRUE(submit.accepted);
  ASSERT_TRUE(scheduler.wait_idle(10'000));
  const auto info = scheduler.status(submit.job_id);
  EXPECT_EQ(info->state, sched::JobState::Failed);
  EXPECT_NE(info->message.find("unit exploded"), std::string::npos);
  EXPECT_TRUE(workload->finalized.empty());
}

TEST(Scheduler, StrictPriorityPreemptsAtUnitBoundary) {
  auto workload = std::make_shared<FakeWorkload>();
  workload->unit_delay_ms = 60;
  sched::SchedulerConfig config;
  config.workers = 1;
  sched::Scheduler scheduler(config, workload);

  const auto low = scheduler.submit(tiny_spec("bulk", 0, 4));
  ASSERT_TRUE(low.accepted);
  while (workload->ran_count() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const std::uint64_t preemptions_before =
      obs::registry().counter("sched.preemptions").value();
  const auto high = scheduler.submit(tiny_spec("urgent", 5, 1));
  ASSERT_TRUE(high.accepted);
  ASSERT_TRUE(scheduler.wait_idle(20'000));

  // The freed worker went to the higher band before the low job's
  // remaining units: that is a preemption, charged to the low job.
  const auto info = scheduler.status(low.job_id);
  EXPECT_EQ(info->state, sched::JobState::Completed);
  EXPECT_GE(info->preemptions, 1u);
  EXPECT_GT(obs::registry().counter("sched.preemptions").value(),
            preemptions_before);
  // Dispatch order: "urgent" ran before the last "bulk" unit.
  std::lock_guard<std::mutex> lock(workload->mutex);
  const auto urgent = std::find(workload->tenants.begin(),
                                workload->tenants.end(), "urgent");
  ASSERT_NE(urgent, workload->tenants.end());
  EXPECT_NE(workload->tenants.back(), "urgent");
}

TEST(Scheduler, WeightedFairShareApproximatesConfiguredRatio) {
  auto workload = std::make_shared<FakeWorkload>();
  // Stall the first dispatched unit until both tenants are queued — the
  // order recorded after that is the pure WFQ decision sequence.
  workload->hold = true;
  sched::SchedulerConfig config;
  config.workers = 1;  // serial dispatch: the WFQ order is exact
  config.tenant_weights = {{"heavy", 3.0}, {"light", 1.0}};
  sched::Scheduler scheduler(config, workload);

  // Saturate: both tenants have far more units than the window inspected.
  ASSERT_TRUE(scheduler.submit(tiny_spec("heavy", 0, 40)).accepted);
  ASSERT_TRUE(scheduler.submit(tiny_spec("light", 0, 40)).accepted);
  workload->hold = false;
  ASSERT_TRUE(scheduler.wait_idle(30'000));

  std::lock_guard<std::mutex> lock(workload->mutex);
  ASSERT_GE(workload->tenants.size(), 40u);
  const std::size_t window = 40;
  std::size_t heavy = 0;
  for (std::size_t i = 0; i < window; ++i) {
    if (workload->tenants[i] == "heavy") ++heavy;
  }
  // 3:1 over 40 dispatches = 30 heavy; ±10% of the window is ±4.
  EXPECT_GE(heavy, 26u);
  EXPECT_LE(heavy, 34u);
}

TEST(Scheduler, TenantQuotaCapsConcurrentUnits) {
  auto workload = std::make_shared<FakeWorkload>();
  workload->unit_delay_ms = 40;
  sched::SchedulerConfig config;
  config.workers = 4;
  config.tenant_quotas = {{"capped", 1}};
  sched::Scheduler scheduler(config, workload);

  ASSERT_TRUE(scheduler.submit(tiny_spec("capped", 0, 6)).accepted);
  ASSERT_TRUE(scheduler.wait_idle(20'000));
  EXPECT_EQ(workload->max_concurrent.load(), 1)
      << "a quota of 1 must serialize the tenant's units";

  // An unquoted tenant uses the full pool.
  auto workload2 = std::make_shared<FakeWorkload>();
  workload2->unit_delay_ms = 40;
  sched::Scheduler scheduler2(config, workload2);
  ASSERT_TRUE(scheduler2.submit(tiny_spec("free", 0, 8)).accepted);
  ASSERT_TRUE(scheduler2.wait_idle(20'000));
  EXPECT_GT(workload2->max_concurrent.load(), 1);
}

TEST(Scheduler, RestartReplaysJournalAndSkipsDoneUnits) {
  const std::string path = fresh_file("intooa_sched_restart.bin");
  const std::uint64_t recovered_before =
      obs::registry().counter("sched.journal.recovered_jobs").value();
  std::uint64_t job_id = 0;
  std::size_t done_first = 0;
  {
    auto workload = std::make_shared<FakeWorkload>();
    workload->unit_delay_ms = 30;
    sched::SchedulerConfig config;
    config.workers = 1;
    config.journal_path = path;
    sched::Scheduler scheduler(config, workload);
    const auto submit = scheduler.submit(tiny_spec("acme", 2, 6));
    ASSERT_TRUE(submit.accepted);
    job_id = submit.job_id;
    while (workload->ran_count() < 2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    scheduler.stop();  // in-flight unit finishes and journals its UnitDone
    done_first = workload->ran_count();
    ASSERT_LT(done_first, 6u) << "the job must be interrupted mid-flight";
  }

  auto workload = std::make_shared<FakeWorkload>();
  sched::SchedulerConfig config;
  config.workers = 1;
  config.journal_path = path;
  sched::Scheduler scheduler(config, workload);
  EXPECT_GT(obs::registry().counter("sched.journal.recovered_jobs").value(),
            recovered_before);
  ASSERT_TRUE(scheduler.wait_idle(20'000));

  const auto info = scheduler.status(job_id);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->id, job_id);
  EXPECT_EQ(info->state, sched::JobState::Completed);
  EXPECT_EQ(info->units_done, 6u);
  EXPECT_EQ(info->spec.tenant, "acme");
  EXPECT_EQ(info->spec.priority, 2u);
  // The second incarnation ran exactly the units the first did not.
  EXPECT_EQ(workload->ran_count(), 6u - done_first);
  EXPECT_EQ(workload->finalized, std::vector<std::uint64_t>{job_id});
  // Job ids keep counting from where the journal left off.
  EXPECT_EQ(scheduler.submit(tiny_spec()).job_id, job_id + 1);
  std::filesystem::remove(path);
}

TEST(Scheduler, TerminalJobsSurviveRestartAsHistory) {
  const std::string path = fresh_file("intooa_sched_history.bin");
  std::uint64_t job_id = 0;
  {
    auto workload = std::make_shared<FakeWorkload>();
    sched::SchedulerConfig config;
    config.journal_path = path;
    sched::Scheduler scheduler(config, workload);
    const auto submit = scheduler.submit(tiny_spec("a", 0, 1));
    job_id = submit.job_id;
    ASSERT_TRUE(scheduler.wait_idle(10'000));
  }
  auto workload = std::make_shared<FakeWorkload>();
  sched::SchedulerConfig config;
  config.journal_path = path;
  sched::Scheduler scheduler(config, workload);
  const auto info = scheduler.status(job_id);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->state, sched::JobState::Completed);
  EXPECT_EQ(workload->ran_count(), 0u) << "a completed job must not re-run";
  EXPECT_EQ(scheduler.list().size(), 1u);
  EXPECT_TRUE(scheduler.list("nobody").empty());
  std::filesystem::remove(path);
}

TEST(Scheduler, RecoveredFullyDoneJobGoesStraightToFinalize) {
  const std::string path = fresh_file("intooa_sched_alldone.bin");
  // Simulate a crash after the last UnitDone but before the terminal
  // StateChanged: the journal proves every unit done, yet the job is
  // non-terminal. It has no pending units, so it must be scheduled
  // straight to finalize — requeueing it as Queued would strand it
  // non-terminal forever.
  sched::JobInfo info;
  info.id = 1;
  info.spec = tiny_spec("acme", 0, 2);
  info.units_total = 2;
  {
    sched::JournalRecovery recovery;
    auto journal = sched::JobJournal::open(path, recovery);
    journal->submitted(info);
    journal->unit_done(1, 0, 10);
    journal->unit_done(1, 1, 10);
  }
  std::uint64_t job_id = 0;
  {
    auto workload = std::make_shared<FakeWorkload>();
    sched::SchedulerConfig config;
    config.journal_path = path;
    sched::Scheduler scheduler(config, workload);
    ASSERT_TRUE(scheduler.wait_idle(10'000))
        << "an all-done recovered job must still reach a terminal state";
    const auto recovered = scheduler.status(1);
    ASSERT_TRUE(recovered.has_value());
    job_id = recovered->id;
    EXPECT_EQ(recovered->state, sched::JobState::Completed);
    EXPECT_EQ(recovered->units_done, 2u);
    EXPECT_EQ(workload->ran_count(), 0u) << "no unit may re-run";
    EXPECT_EQ(workload->finalized, std::vector<std::uint64_t>{1});
  }
  // The terminal state was journaled: the next incarnation sees history,
  // not another finalize.
  auto workload = std::make_shared<FakeWorkload>();
  sched::SchedulerConfig config;
  config.journal_path = path;
  sched::Scheduler scheduler(config, workload);
  EXPECT_EQ(scheduler.status(job_id)->state, sched::JobState::Completed);
  EXPECT_EQ(workload->finalize_entered.load(), 0);
  std::filesystem::remove(path);
}

TEST(Scheduler, CancelDuringFinalizeDoesNotOverwriteTerminalState) {
  auto workload = std::make_shared<FakeWorkload>();
  workload->hold_finalize = true;
  sched::SchedulerConfig config;
  config.workers = 1;
  sched::Scheduler scheduler(config, workload);
  const std::uint64_t canceled_before =
      obs::registry().counter("sched.jobs_canceled").value();

  const auto submit = scheduler.submit(tiny_spec("a", 0, 1));
  ASSERT_TRUE(submit.accepted);
  while (workload->finalize_entered.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // The job is inside finalize: cancel is too late to stop it and must
  // not race the finalizer into a second terminal transition.
  EXPECT_TRUE(scheduler.cancel(submit.job_id));
  EXPECT_FALSE(sched::job_state_terminal(scheduler.status(submit.job_id)->state));
  workload->hold_finalize = false;
  ASSERT_TRUE(scheduler.wait_idle(10'000));

  EXPECT_EQ(scheduler.status(submit.job_id)->state,
            sched::JobState::Completed);
  EXPECT_EQ(workload->finalized, std::vector<std::uint64_t>{submit.job_id});
  EXPECT_EQ(obs::registry().counter("sched.jobs_canceled").value(),
            canceled_before)
      << "exactly one terminal transition: Completed, never also Canceled";
}

TEST(Scheduler, FailureMessageStartingWithCancelStillFailsTheJob) {
  auto workload = std::make_shared<FakeWorkload>();
  // A workload error whose text happens to start with "cancel" must not
  // be mistaken for a cancellation: the terminal state is tracked in an
  // explicit flag, never sniffed from the message.
  workload->fail_message = "cancellation token expired";
  workload->fail_unit_zero = true;
  workload->unit_delay_ms = 100;
  workload->hold = true;
  sched::SchedulerConfig config;
  config.workers = 2;
  sched::Scheduler scheduler(config, workload);

  const auto submit = scheduler.submit(tiny_spec("a", 0, 2));
  ASSERT_TRUE(submit.accepted);
  // Both units in flight before either lands: unit 0 then fails while
  // unit 1 is still running, so the job settles on unit 1's landing —
  // the path that must consult the failure flag, not the message.
  while (workload->entered.load() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  workload->hold = false;
  ASSERT_TRUE(scheduler.wait_idle(10'000));

  const auto info = scheduler.status(submit.job_id);
  EXPECT_EQ(info->state, sched::JobState::Failed);
  EXPECT_NE(info->message.find("cancellation token expired"),
            std::string::npos);
  EXPECT_TRUE(workload->finalized.empty());
}

TEST(Scheduler, ConcurrentStopCallsAllWaitForShutdown) {
  auto workload = std::make_shared<FakeWorkload>();
  workload->unit_delay_ms = 50;
  sched::SchedulerConfig config;
  config.workers = 2;
  sched::Scheduler scheduler(config, workload);
  ASSERT_TRUE(scheduler.submit(tiny_spec("a", 0, 6)).accepted);
  while (workload->ran_count() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::thread first([&] { scheduler.stop(); });
  std::thread second([&] { scheduler.stop(); });
  first.join();
  second.join();
  // Whichever stop() returned, the workers are joined: nothing is in
  // flight, and the scheduler refuses new work.
  EXPECT_EQ(workload->concurrent.load(), 0);
  EXPECT_FALSE(scheduler.submit(tiny_spec("a", 0, 1)).accepted);
}

// ---- service + client over a unix socket ----

TEST(SchedService, SubmitStatusCancelListOverTheWire) {
  const std::string sock = fresh_file("intooa-schedd-test.sock");
  auto workload = std::make_shared<FakeWorkload>();
  workload->unit_delay_ms = 30;
  sched::SchedulerConfig sched_config;
  sched_config.workers = 1;
  sched::Scheduler scheduler(sched_config, workload);
  sched::ServiceConfig svc_config;
  svc_config.address = svc::Address::parse("unix:" + sock);
  sched::JobService service(svc_config, scheduler);
  service.bind();
  std::thread server([&] { service.run(); });

  sched::JobClient client;
  client.connect(svc_config.address);
  EXPECT_GE(client.server_minor(), 2u);
  EXPECT_TRUE(client.ping());

  const auto outcome = client.submit(tiny_spec("wire", 1, 3));
  ASSERT_TRUE(outcome.accepted);
  const auto status = client.status(outcome.job_id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->spec.tenant, "wire");

  // A malformed spec is a request error surfaced as invalid_argument —
  // and the connection survives it.
  sched::JobSpec bad = tiny_spec();
  bad.specs.clear();
  EXPECT_THROW(client.submit(bad), std::invalid_argument);
  EXPECT_TRUE(client.ping());

  EXPECT_FALSE(client.status(999).has_value());
  EXPECT_FALSE(client.cancel(999).has_value());

  const auto jobs = client.list();
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].id, outcome.job_id);
  EXPECT_TRUE(client.list("nobody").empty());

  const auto second = client.submit(tiny_spec("wire", 0, 8));
  ASSERT_TRUE(second.accepted);
  const auto canceled = client.cancel(second.job_id);
  ASSERT_TRUE(canceled.has_value());
  EXPECT_TRUE(canceled->state == sched::JobState::Canceled ||
              canceled->message == "cancel requested");

  // Poll over the wire until the first job completes.
  for (int i = 0; i < 1000; ++i) {
    const auto info = client.status(outcome.job_id);
    ASSERT_TRUE(info.has_value());
    if (sched::job_state_terminal(info->state)) {
      EXPECT_EQ(info->state, sched::JobState::Completed);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  client.close();
  service.begin_drain();
  server.join();
  scheduler.stop();
  std::filesystem::remove(sock);
}

// ---- the byte-identity contract ----

TEST(SchedCampaign, ScheduledJobCsvIsByteIdenticalToStandalone) {
  const std::string standalone_dir = fresh_file("intooa_sched_ref_dir");
  const std::string jobs_dir = fresh_file("intooa_sched_jobs_dir");
  std::filesystem::remove_all(standalone_dir);
  std::filesystem::remove_all(jobs_dir);

  campaign::CampaignParams params;
  params.runs = 2;
  params.init_topologies = 2;
  params.iterations = 2;
  params.pool = 20;
  params.sizing_init = 2;
  params.sizing_iterations = 2;
  params.seed = 11;

  // Reference: the standalone campaign driver.
  campaign::run_or_load("S-1", campaign::Method::IntoOa, params,
                        standalone_dir);
  const std::string reference_csv = campaign::campaign_csv_path(
      standalone_dir, "S-1", campaign::Method::IntoOa, params);
  ASSERT_TRUE(std::filesystem::exists(reference_csv));

  // The same campaign through the scheduler.
  sched::CampaignWorkloadConfig workload_config;
  workload_config.jobs_dir = jobs_dir;
  sched::SchedulerConfig config;
  config.workers = 2;
  auto workload =
      std::make_shared<sched::CampaignWorkload>(workload_config);
  sched::Scheduler scheduler(config, workload);
  sched::JobSpec spec;
  spec.specs = {"S-1"};
  spec.method = "INTO-OA";
  spec.params = params;
  const auto submit = scheduler.submit(spec);
  ASSERT_TRUE(submit.accepted);
  ASSERT_TRUE(scheduler.wait_idle(120'000));
  const auto info = scheduler.status(submit.job_id);
  ASSERT_EQ(info->state, sched::JobState::Completed) << info->message;

  const std::string job_csv = campaign::campaign_csv_path(
      workload->job_dir(submit.job_id), "S-1", campaign::Method::IntoOa,
      params);
  ASSERT_TRUE(std::filesystem::exists(job_csv));
  EXPECT_EQ(slurp(job_csv), slurp(reference_csv))
      << "scheduled campaign CSVs must be byte-identical to standalone runs";

  // An unknown method or spec never reaches the queue.
  sched::JobSpec bad = spec;
  bad.method = "NO-SUCH";
  EXPECT_THROW(scheduler.submit(bad), std::invalid_argument);
  bad = spec;
  bad.specs = {"S-9"};
  EXPECT_THROW(scheduler.submit(bad), std::invalid_argument);

  std::filesystem::remove_all(standalone_dir);
  std::filesystem::remove_all(jobs_dir);
}

}  // namespace
