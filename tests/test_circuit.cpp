// Unit tests for intooa::circuit — the 25 subcircuit types, the design-
// space rules (7*7*25*5*5 = 30625), topologies, circuit graphs, the
// behavioral netlist builder, specs and the topology library.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <unordered_set>

#include "circuit/behavioral.hpp"
#include "circuit/circuit_graph.hpp"
#include "circuit/library.hpp"
#include "circuit/netlist.hpp"
#include "circuit/rules.hpp"
#include "circuit/spec.hpp"
#include "circuit/subckt.hpp"
#include "circuit/topology.hpp"
#include "util/rng.hpp"

namespace {

using namespace intooa::circuit;

TEST(Subckt, TwentyFiveDistinctTypes) {
  const auto& all = all_subckt_types();
  EXPECT_EQ(all.size(), 25u);
  std::set<SubcktType> unique(all.begin(), all.end());
  EXPECT_EQ(unique.size(), 25u);
}

TEST(Subckt, NamesRoundTrip) {
  std::set<std::string> names;
  for (SubcktType t : all_subckt_types()) {
    const std::string name = short_name(t);
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
    const auto back = subckt_from_name(name);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, t);
  }
  EXPECT_FALSE(subckt_from_name("bogus").has_value());
}

TEST(Subckt, PaperNotationExamples) {
  // The paper's Sec. IV-B names: "-gmRs" (series -gm and R) and "RCs".
  EXPECT_EQ(short_name(SubcktType::GmNegFwdSerR), "-gmRs");
  EXPECT_EQ(short_name(SubcktType::RCs), "RCs");
  EXPECT_EQ(short_name(SubcktType::GmNegFwdParC), "-gmCp");
  EXPECT_EQ(short_name(SubcktType::GmPosFwd), "+gm");
  EXPECT_EQ(short_name(SubcktType::GmPosBwd), "+gm~");
}

TEST(Subckt, StructureDecomposition) {
  const auto s = structure_of(SubcktType::GmNegBwdSerC);
  EXPECT_TRUE(s.has_gm);
  EXPECT_EQ(s.polarity, Polarity::Neg);
  EXPECT_EQ(s.direction, Direction::Bwd);
  EXPECT_TRUE(s.has_passive);
  EXPECT_EQ(s.passive, PassiveKind::C);
  EXPECT_EQ(s.combine, Combine::Series);
  EXPECT_TRUE(structure_of(SubcktType::None).is_none);
}

TEST(Subckt, ComponentPredicates) {
  EXPECT_TRUE(has_gm(SubcktType::GmPosFwdParR));
  EXPECT_FALSE(has_gm(SubcktType::RCs));
  EXPECT_TRUE(has_resistor(SubcktType::RCp));
  EXPECT_TRUE(has_capacitor(SubcktType::RCs));
  EXPECT_FALSE(has_capacitor(SubcktType::GmNegFwdSerR));
  EXPECT_TRUE(has_capacitor(SubcktType::GmNegFwdSerC));
  EXPECT_EQ(parameter_count(SubcktType::None), 0u);
  EXPECT_EQ(parameter_count(SubcktType::R), 1u);
  EXPECT_EQ(parameter_count(SubcktType::RCs), 2u);
  EXPECT_EQ(parameter_count(SubcktType::GmPosFwd), 1u);
  EXPECT_EQ(parameter_count(SubcktType::GmNegBwdParC), 2u);
}

TEST(Rules, PerSlotTypeCountsMatchPaper) {
  EXPECT_EQ(allowed_types(Slot::VinV2).size(), 7u);
  EXPECT_EQ(allowed_types(Slot::VinVout).size(), 7u);
  EXPECT_EQ(allowed_types(Slot::V1Vout).size(), 25u);
  EXPECT_EQ(allowed_types(Slot::V1Gnd).size(), 5u);
  EXPECT_EQ(allowed_types(Slot::V2Gnd).size(), 5u);
}

TEST(Rules, DesignSpaceSizeMatchesPaper) {
  EXPECT_EQ(design_space_size(), 30625u);
}

TEST(Rules, EverySlotAllowsNone) {
  for (Slot slot : all_slots()) {
    EXPECT_TRUE(is_allowed(slot, SubcktType::None));
    EXPECT_EQ(allowed_index(slot, SubcktType::None), 0u);
  }
}

TEST(Rules, ShuntSlotsArePassiveOnly) {
  for (Slot slot : {Slot::V1Gnd, Slot::V2Gnd}) {
    for (SubcktType t : allowed_types(slot)) EXPECT_FALSE(has_gm(t));
  }
}

TEST(Rules, FeedforwardSlotsForwardOnly) {
  for (Slot slot : {Slot::VinV2, Slot::VinVout}) {
    for (SubcktType t : allowed_types(slot)) {
      if (has_gm(t)) {
        EXPECT_EQ(structure_of(t).direction, Direction::Fwd);
      }
    }
  }
}

TEST(Rules, SlotNodePairs) {
  EXPECT_EQ(slot_nodes(Slot::VinV2), std::make_pair(Node::Vin, Node::V2));
  EXPECT_EQ(slot_nodes(Slot::V1Vout), std::make_pair(Node::V1, Node::Vout));
  EXPECT_EQ(slot_name(Slot::V2Gnd), "v2-gnd");
  EXPECT_EQ(node_name(Node::Vout), "vout");
}

TEST(Rules, AllowedIndexThrowsWhenForbidden) {
  EXPECT_THROW(allowed_index(Slot::V1Gnd, SubcktType::GmPosFwd),
               std::invalid_argument);
}

TEST(Topology, DefaultIsAllNone) {
  const Topology t;
  for (Slot slot : all_slots()) EXPECT_EQ(t.type(slot), SubcktType::None);
  EXPECT_EQ(t.variable_parameter_count(), 0u);
}

TEST(Topology, ConstructorValidates) {
  EXPECT_THROW(
      Topology({SubcktType::R, SubcktType::None, SubcktType::None,
                SubcktType::None, SubcktType::None}),
      std::invalid_argument);  // R not allowed in vin-v2
}

TEST(Topology, WithReplacesSlot) {
  const Topology t;
  const Topology u = t.with(Slot::V1Vout, SubcktType::C);
  EXPECT_EQ(u.type(Slot::V1Vout), SubcktType::C);
  EXPECT_EQ(t.type(Slot::V1Vout), SubcktType::None);  // original unchanged
  EXPECT_THROW(t.with(Slot::V2Gnd, SubcktType::GmPosFwd),
               std::invalid_argument);
}

TEST(Topology, IndexBijectionSampled) {
  intooa::util::Rng rng(21);
  for (int i = 0; i < 500; ++i) {
    const Topology t = Topology::random(rng);
    EXPECT_EQ(Topology::from_index(t.index()), t);
  }
  EXPECT_THROW(Topology::from_index(design_space_size()), std::out_of_range);
}

TEST(Topology, IndexBijectionExhaustive) {
  // Full-space property: every index decodes to a unique valid topology
  // that encodes back to itself.
  std::unordered_set<std::size_t> seen;
  for (std::size_t i = 0; i < design_space_size(); i += 7) {
    const Topology t = Topology::from_index(i);
    EXPECT_EQ(t.index(), i);
    EXPECT_TRUE(seen.insert(i).second);
  }
}

TEST(Topology, EnumerationCoversSpace) {
  const auto all = enumerate_design_space();
  EXPECT_EQ(all.size(), 30625u);
  EXPECT_EQ(all.front().index(), 0u);
  EXPECT_EQ(all.back().index(), 30624u);
}

TEST(Topology, RandomIsUniformish) {
  intooa::util::Rng rng(22);
  std::unordered_set<std::size_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(Topology::random(rng).index());
  // With 30625 cells and 2000 draws, collisions are rare: expect > 1850
  // distinct.
  EXPECT_GT(seen.size(), 1850u);
}

TEST(Topology, MutationAlwaysDiffersAndIsValid) {
  intooa::util::Rng rng(23);
  for (int i = 0; i < 300; ++i) {
    const Topology parent = Topology::random(rng);
    const Topology child = parent.mutated(rng);
    EXPECT_NE(parent, child);
    EXPECT_GE(child.hamming_distance(parent), 1u);
    for (Slot slot : all_slots()) {
      EXPECT_TRUE(is_allowed(slot, child.type(slot)));
    }
  }
}

TEST(Topology, MutationExpectedCount) {
  intooa::util::Rng rng(24);
  const Topology parent = Topology::random(rng);
  double total = 0.0;
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) {
    total += static_cast<double>(parent.mutated(rng, 1.0).hamming_distance(parent));
  }
  // E[mutations] ~= 1 (slightly above because zero-mutation draws are
  // re-rolled into exactly one mutation).
  const double avg = total / trials;
  EXPECT_GT(avg, 0.9);
  EXPECT_LT(avg, 1.5);
  EXPECT_THROW(parent.mutated(rng, 0.0), std::invalid_argument);
}

TEST(Topology, HammingDistance) {
  const Topology a;
  const Topology b = a.with(Slot::V1Vout, SubcktType::C)
                         .with(Slot::V2Gnd, SubcktType::R);
  EXPECT_EQ(a.hamming_distance(b), 2u);
  EXPECT_EQ(a.hamming_distance(a), 0u);
}

TEST(Topology, ToStringMentionsSlotsAndTypes) {
  const Topology t = Topology().with(Slot::V1Vout, SubcktType::RCs);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("v1-vout:RCs"), std::string::npos);
  EXPECT_NE(s.find("vin-v2:none"), std::string::npos);
}

TEST(CircuitGraph, BareAmpStructure) {
  const auto g = build_circuit_graph(Topology());
  // 5 circuit nodes + 3 stages, no variable subcircuits.
  EXPECT_EQ(g.node_count(), 8u);
  EXPECT_EQ(g.edge_count(), 6u);
  EXPECT_EQ(g.label(0), "vin");
  EXPECT_EQ(g.label(4), "gnd");
  EXPECT_EQ(g.label(5), stage_label(0));
}

TEST(CircuitGraph, NodeEdgeBoundsMatchPaper) {
  // Paper Sec. III-B: n <= 13, m <= 16 for these circuit graphs.
  intooa::util::Rng rng(25);
  for (int i = 0; i < 200; ++i) {
    const auto g = build_circuit_graph(Topology::random(rng));
    EXPECT_GE(g.node_count(), 8u);
    EXPECT_LE(g.node_count(), 13u);
    EXPECT_GE(g.edge_count(), 6u);
    EXPECT_LE(g.edge_count(), 16u);
  }
}

TEST(CircuitGraph, NoneSlotsElided) {
  const Topology t = Topology().with(Slot::V1Vout, SubcktType::C);
  const auto g = build_circuit_graph(t);
  EXPECT_EQ(g.node_count(), 9u);
  EXPECT_EQ(g.label(8), "C");
  EXPECT_TRUE(g.has_edge(8, 1));  // v1
  EXPECT_TRUE(g.has_edge(8, 3));  // vout
}

TEST(CircuitGraph, StagePolaritiesNmcLike) {
  EXPECT_EQ(stage_label(0), "-gm");
  EXPECT_EQ(stage_label(1), "+gm");
  EXPECT_EQ(stage_label(2), "-gm");
  EXPECT_THROW(stage_label(3), std::out_of_range);
}

TEST(CircuitGraph, SlotNodeIds) {
  const Topology t = Topology()
                         .with(Slot::VinVout, SubcktType::GmNegFwd)
                         .with(Slot::V2Gnd, SubcktType::RCs);
  const auto ids = slot_node_ids(t);
  EXPECT_EQ(ids[0], kInvalidNode);  // vin-v2 empty
  EXPECT_EQ(ids[1], 8u);            // vin-vout first occupied
  EXPECT_EQ(ids[2], kInvalidNode);
  EXPECT_EQ(ids[4], 9u);            // v2-gnd second occupied
  const auto g = build_circuit_graph(t);
  EXPECT_EQ(g.label(ids[1]), "-gm");
  EXPECT_EQ(g.label(ids[4]), "RCs");
}

TEST(Netlist, NodeInterning) {
  Netlist net;
  EXPECT_EQ(net.node("gnd"), 0u);
  EXPECT_EQ(net.node("0"), 0u);
  const auto a = net.node("a");
  EXPECT_EQ(net.node("a"), a);
  EXPECT_EQ(net.node_label(a), "a");
  EXPECT_FALSE(net.find_node("zzz").has_value());
}

TEST(Netlist, ElementValidation) {
  Netlist net;
  const auto a = net.node("a");
  EXPECT_THROW(net.add_resistor("r", a, 0, -1.0), std::invalid_argument);
  EXPECT_THROW(net.add_capacitor("c", a, 0, 0.0), std::invalid_argument);
  EXPECT_THROW(net.add_vccs("g", a, 0, a, 0, 0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(net.add_vccs("g", a, 0, a, 0, 1e-3, -1.0),
               std::invalid_argument);
  EXPECT_THROW(net.add_resistor("r", 99, 0, 1.0), std::out_of_range);
}

TEST(Netlist, StaticPowerSumsBiasCurrents) {
  Netlist net;
  const auto a = net.node("a");
  const auto b = net.node("b");
  net.add_vccs("g1", a, 0, b, 0, 1e-3, 10e-6);
  net.add_vccs("g2", b, 0, a, 0, -2e-3, 20e-6);
  EXPECT_NEAR(net.static_power(1.8), 1.8 * 30e-6, 1e-15);
}

TEST(Netlist, SpiceDump) {
  Netlist net;
  const auto a = net.node("a");
  net.add_resistor("load", a, 0, 1e3);
  net.add_vsource("in", a, 0, 1.0);
  const std::string spice = net.to_spice();
  EXPECT_NE(spice.find("Rload a gnd 1.00k"), std::string::npos);
  EXPECT_NE(spice.find("Vin a gnd AC"), std::string::npos);
}

TEST(Behavioral, SchemaOrderAndNames) {
  const BehavioralConfig cfg;
  const Topology t = Topology()
                         .with(Slot::V1Vout, SubcktType::GmNegFwdSerR)
                         .with(Slot::V2Gnd, SubcktType::C);
  const ParamSchema schema = make_schema(t, cfg);
  ASSERT_EQ(schema.size(), 3u + 2u + 1u);
  EXPECT_EQ(schema.params[0].name, "gm1");
  EXPECT_EQ(schema.params[3].name, "v1-vout.gm");
  EXPECT_EQ(schema.params[4].name, "v1-vout.R");
  EXPECT_EQ(schema.params[5].name, "v2-gnd.C");
  EXPECT_TRUE(schema.contains("gm2"));
  EXPECT_FALSE(schema.contains("v1-gnd.R"));
  EXPECT_THROW(schema.index_of("nope"), std::invalid_argument);
}

TEST(Behavioral, UnitCubeRoundTrip) {
  const BehavioralConfig cfg;
  const ParamSchema schema = make_schema(Topology(), cfg);
  const std::vector<double> u = {0.0, 0.5, 1.0};
  const auto vals = schema.from_unit(u);
  EXPECT_NEAR(vals[0], cfg.gm_lo, 1e-12);
  EXPECT_NEAR(vals[2], cfg.gm_hi, 1e-9);
  EXPECT_NEAR(vals[1], std::sqrt(cfg.gm_lo * cfg.gm_hi), 1e-9);
  const auto back = schema.to_unit(vals);
  for (std::size_t i = 0; i < u.size(); ++i) EXPECT_NEAR(back[i], u[i], 1e-9);
}

TEST(Behavioral, NetlistElementCounts) {
  const BehavioralConfig cfg;
  // Bare amp: 3 stages -> 3 VCCS, 3 Ro, 3 Co + CL + 4 gmin.
  const auto net =
      build_behavioral(Topology(), std::vector<double>{1e-4, 1e-4, 1e-3}, cfg);
  EXPECT_EQ(net.vccs().size(), 3u);
  EXPECT_EQ(net.capacitors().size(), 4u);   // Co1-3 + CL
  EXPECT_EQ(net.resistors().size(), 3u + 4u);  // Ro1-3 + gmin x nodes
  EXPECT_EQ(net.vsources().size(), 1u);
}

TEST(Behavioral, SeriesTypesCreateInternalNode) {
  const BehavioralConfig cfg;
  const Topology t = Topology().with(Slot::V1Vout, SubcktType::RCs);
  const auto schema = make_schema(t, cfg);
  std::vector<double> vals(schema.size());
  for (std::size_t i = 0; i < vals.size(); ++i) vals[i] = schema.params[i].lo;
  const auto net = build_behavioral(t, vals, cfg);
  EXPECT_TRUE(net.find_node("v1-vout.m").has_value());
}

TEST(Behavioral, StagePolaritySigns) {
  const BehavioralConfig cfg;
  const auto net =
      build_behavioral(Topology(), std::vector<double>{1e-4, 2e-4, 3e-4}, cfg);
  EXPECT_LT(net.vccs()[0].gm, 0.0);  // stage 1 inverting
  EXPECT_GT(net.vccs()[1].gm, 0.0);  // stage 2 non-inverting
  EXPECT_LT(net.vccs()[2].gm, 0.0);  // stage 3 inverting
  EXPECT_NEAR(net.vccs()[1].gm, 2e-4, 1e-12);
}

TEST(Behavioral, RejectsBadParameters) {
  const BehavioralConfig cfg;
  EXPECT_THROW(build_behavioral(Topology(), std::vector<double>{1e-4, 1e-4},
                                cfg),
               std::invalid_argument);
  EXPECT_THROW(
      build_behavioral(Topology(), std::vector<double>{1e-4, -1e-4, 1e-4},
                       cfg),
      std::invalid_argument);
}

TEST(Spec, PaperTableOne) {
  const auto& specs = paper_specs();
  ASSERT_EQ(specs.size(), 5u);
  EXPECT_EQ(specs[0].name, "S-1");
  EXPECT_DOUBLE_EQ(specs[1].gain_db_min, 110.0);
  EXPECT_DOUBLE_EQ(specs[2].gbw_hz_min, 5e6);
  EXPECT_DOUBLE_EQ(specs[3].power_w_max, 150e-6);
  EXPECT_DOUBLE_EQ(specs[4].load_cap, 10e-9);
  EXPECT_EQ(&spec_by_name("S-3"), &specs[2]);
  EXPECT_THROW(spec_by_name("S-9"), std::invalid_argument);
}

TEST(Spec, MarginsAndSatisfaction) {
  const Spec& s1 = spec_by_name("S-1");
  Performance good;
  good.valid = true;
  good.gain_db = 90.0;
  good.gbw_hz = 1e6;
  good.pm_deg = 60.0;
  good.power_w = 500e-6;
  EXPECT_TRUE(s1.satisfied(good));
  for (double m : s1.margins(good)) EXPECT_LE(m, 0.0);
  EXPECT_DOUBLE_EQ(s1.violation(good), 0.0);

  Performance bad = good;
  bad.power_w = 800e-6;
  EXPECT_FALSE(s1.satisfied(bad));
  EXPECT_GT(s1.margins(bad)[3], 0.0);
  EXPECT_GT(s1.violation(bad), 0.0);

  Performance invalid;
  EXPECT_FALSE(s1.satisfied(invalid));
  for (double m : s1.margins(invalid)) EXPECT_DOUBLE_EQ(m, 10.0);
}

TEST(Spec, FomFormulaEq6) {
  Performance p;
  p.valid = true;
  p.gbw_hz = 2e6;      // 2 MHz
  p.power_w = 100e-6;  // 0.1 mW
  // FoM = 2 * 10 / 0.1 = 200 for CL = 10 pF.
  EXPECT_NEAR(intooa::circuit::fom(p, 10e-12), 200.0, 1e-9);
  Performance invalid;
  EXPECT_DOUBLE_EQ(intooa::circuit::fom(invalid, 10e-12), 0.0);
}

TEST(Library, AllNamedTopologiesValid) {
  for (const auto& name : topology_library_names()) {
    EXPECT_NO_THROW(named_topology(name)) << name;
  }
  EXPECT_THROW(named_topology("unknown"), std::invalid_argument);
}

TEST(Library, RefinementRelationsMatchFig7) {
  const Topology c1 = named_topology("C1");
  const Topology r1 = named_topology("R1");
  EXPECT_EQ(c1.hamming_distance(r1), 1u);
  EXPECT_EQ(c1.type(Slot::V1Vout), SubcktType::GmNegFwdParC);
  EXPECT_EQ(r1.type(Slot::V1Vout), SubcktType::GmNegFwd);

  const Topology c2 = named_topology("C2");
  const Topology r2 = named_topology("R2");
  EXPECT_EQ(c2.hamming_distance(r2), 1u);
  EXPECT_EQ(c2.type(Slot::VinV2), SubcktType::GmNegFwd);
  EXPECT_EQ(r2.type(Slot::VinV2), SubcktType::GmPosFwdSerC);
}

TEST(Library, NmcIsSingleMillerCap) {
  const Topology nmc = named_topology("NMC");
  EXPECT_EQ(nmc.type(Slot::V1Vout), SubcktType::C);
  EXPECT_EQ(nmc.variable_parameter_count(), 1u);
}

}  // namespace
