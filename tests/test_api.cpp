// Tests for intooa::api — the unified client facade. Covers the error
// taxonomy's three deterministic mappings (retryability, HTTP status, CLI
// exit code), exception→Error classification from the typed transport
// exceptions, Expected<T> access discipline, the JSON codecs shared with
// the gateway, and api::Session end to end against live intooa-served /
// intooa-schedd engines: a facade-served evaluation is byte-identical to
// the in-process recompute, job control round-trips, and a down endpoint
// surfaces as a retryable Unavailable instead of an exception.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/error.hpp"
#include "api/json.hpp"
#include "api/session.hpp"
#include "core/eval_key.hpp"
#include "obs/json.hpp"
#include "sched/scheduler.hpp"
#include "sched/service.hpp"
#include "sizing/sizer.hpp"
#include "store/record_io.hpp"
#include "svc/server.hpp"
#include "svc/socket.hpp"
#include "util/rng.hpp"

namespace {

using namespace intooa;

/// Fresh unix-socket address for one test (unlinked up front; kept short —
/// sun_path is ~108 bytes).
svc::Address fresh_unix(const std::string& name) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("intooa-" + name + "-" + std::to_string(::getpid()) + ".sock"))
          .string();
  std::filesystem::remove(path);
  return svc::Address::parse("unix:" + path);
}

/// Tiny sizing protocol so an evaluation costs milliseconds, not seconds.
sizing::SizingConfig tiny_sizing() {
  sizing::SizingConfig cfg;
  cfg.init_points = 2;
  cfg.iterations = 2;
  cfg.candidates = 16;
  cfg.refit_hyper_every = 1;
  return cfg;
}

svc::EvalRequest tiny_request(std::uint64_t topology_index,
                              const std::string& spec = "S-1") {
  svc::EvalRequest request;
  request.spec = circuit::spec_by_name(spec);
  request.sizing = tiny_sizing();
  request.topology_index = topology_index;
  return request;
}

/// The exact in-process evaluation the service promises to match
/// byte-for-byte: key-seeded RNG, paper sizer, store encoding.
std::string evaluate_in_process(const svc::EvalRequest& request) {
  const sizing::EvalContext context = request.eval_context();
  const core::EvalKeyContext keys(context, request.sizing);
  const circuit::Topology topology = circuit::Topology::from_index(
      static_cast<std::size_t>(request.topology_index));
  const core::EvalKey key = keys.key_for(topology);
  util::Rng sizing_rng(key.digest);
  const sizing::Sizer sizer(context, request.sizing);
  core::EvalRecord record;
  record.topology = topology;
  record.sized = sizer.size(topology, sizing_rng);
  return store::encode_record(key, record);
}

/// Evaluation server on its own thread; drains and joins on destruction.
struct TestServer {
  svc::Server server;
  std::thread thread;

  explicit TestServer(svc::ServerConfig config) : server(std::move(config)) {
    server.bind();
    thread = std::thread([this] { server.run(); });
  }
  ~TestServer() { stop(); }
  void stop() {
    if (thread.joinable()) {
      server.begin_drain();
      thread.join();
    }
  }
};

/// Minimal scheduler workload for job-control round-trips — never runs a
/// real campaign.
struct NullWorkload : sched::Workload {
  void validate(const sched::JobSpec& spec) override {
    if (spec.specs.empty()) throw std::invalid_argument("job has no specs");
  }
  sched::UnitResult run_unit(const sched::JobInfo&,
                             const sched::UnitRef&) override {
    return sched::UnitResult{1};
  }
  void finalize(const sched::JobInfo&) override {}
};

sched::JobSpec tiny_spec(const std::string& tenant = "api") {
  sched::JobSpec spec;
  spec.tenant = tenant;
  spec.specs = {"S-1"};
  spec.params.runs = 1;
  spec.params.init_topologies = 2;
  spec.params.iterations = 1;
  spec.params.pool = 10;
  spec.params.sizing_init = 2;
  spec.params.sizing_iterations = 2;
  spec.params.seed = 7;
  return spec;
}

constexpr api::ErrorCode kAllCodes[] = {
    api::ErrorCode::InvalidArgument, api::ErrorCode::NotFound,
    api::ErrorCode::Busy,            api::ErrorCode::QueueFull,
    api::ErrorCode::Draining,        api::ErrorCode::Unavailable,
    api::ErrorCode::Timeout,         api::ErrorCode::Protocol,
    api::ErrorCode::Unsupported,     api::ErrorCode::Internal,
};

// ---- taxonomy mappings ------------------------------------------------------

TEST(ApiError, RetryabilityPartitionsTheTaxonomy) {
  EXPECT_TRUE(api::error_retryable(api::ErrorCode::Busy));
  EXPECT_TRUE(api::error_retryable(api::ErrorCode::QueueFull));
  EXPECT_TRUE(api::error_retryable(api::ErrorCode::Draining));
  EXPECT_TRUE(api::error_retryable(api::ErrorCode::Unavailable));
  EXPECT_TRUE(api::error_retryable(api::ErrorCode::Timeout));
  EXPECT_FALSE(api::error_retryable(api::ErrorCode::InvalidArgument));
  EXPECT_FALSE(api::error_retryable(api::ErrorCode::NotFound));
  EXPECT_FALSE(api::error_retryable(api::ErrorCode::Protocol));
  EXPECT_FALSE(api::error_retryable(api::ErrorCode::Unsupported));
  EXPECT_FALSE(api::error_retryable(api::ErrorCode::Internal));
}

TEST(ApiError, HttpStatusIsDeterministicPerCode) {
  EXPECT_EQ(api::error_http_status(api::ErrorCode::InvalidArgument), 400);
  EXPECT_EQ(api::error_http_status(api::ErrorCode::NotFound), 404);
  EXPECT_EQ(api::error_http_status(api::ErrorCode::Busy), 429);
  EXPECT_EQ(api::error_http_status(api::ErrorCode::QueueFull), 429);
  EXPECT_EQ(api::error_http_status(api::ErrorCode::Draining), 503);
  EXPECT_EQ(api::error_http_status(api::ErrorCode::Unavailable), 502);
  EXPECT_EQ(api::error_http_status(api::ErrorCode::Timeout), 504);
  EXPECT_EQ(api::error_http_status(api::ErrorCode::Protocol), 502);
  EXPECT_EQ(api::error_http_status(api::ErrorCode::Unsupported), 501);
  EXPECT_EQ(api::error_http_status(api::ErrorCode::Internal), 500);
}

TEST(ApiError, ExitCodesFollowTheDocumentedContract) {
  // 2 usage, 3 retryable, 4 permanent — the CLI's process exit statuses.
  for (const api::ErrorCode code : kAllCodes) {
    const int exit_code = api::error_exit_code(code);
    if (code == api::ErrorCode::InvalidArgument) {
      EXPECT_EQ(exit_code, 2);
    } else if (api::error_retryable(code)) {
      EXPECT_EQ(exit_code, 3) << api::error_code_name(code);
    } else {
      EXPECT_EQ(exit_code, 4) << api::error_code_name(code);
    }
  }
}

TEST(ApiError, CodeNamesRoundTripAndRejectUnknown) {
  for (const api::ErrorCode code : kAllCodes) {
    const auto back = api::error_code_from_name(api::error_code_name(code));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, code);
  }
  EXPECT_FALSE(api::error_code_from_name("no_such_code").has_value());
  EXPECT_FALSE(api::error_code_from_name("").has_value());
}

TEST(ApiError, ExceptionsMapByTypeNotByMessage) {
  using Kind = svc::TransportError::Kind;
  const auto code_of = [](const std::exception& e) {
    return api::error_from_exception(e).code;
  };
  EXPECT_EQ(code_of(svc::TransportError(Kind::Connect, "x")),
            api::ErrorCode::Unavailable);
  EXPECT_EQ(code_of(svc::TransportError(Kind::ConnectionLost, "x")),
            api::ErrorCode::Unavailable);
  EXPECT_EQ(code_of(svc::TransportError(Kind::Timeout, "x")),
            api::ErrorCode::Timeout);
  EXPECT_EQ(code_of(svc::TransportError(Kind::Protocol, "x")),
            api::ErrorCode::Protocol);
  EXPECT_EQ(code_of(svc::TransportError(Kind::Unsupported, "x")),
            api::ErrorCode::Unsupported);
  EXPECT_EQ(code_of(svc::RemoteError(svc::ErrorCode::Draining, "x")),
            api::ErrorCode::Draining);
  EXPECT_EQ(code_of(svc::RemoteError(svc::ErrorCode::Internal, "x")),
            api::ErrorCode::Internal);
  EXPECT_EQ(code_of(svc::RemoteError(svc::ErrorCode::MalformedRequest, "x")),
            api::ErrorCode::InvalidArgument);
  EXPECT_EQ(code_of(svc::RemoteError(svc::ErrorCode::BadFrame, "x")),
            api::ErrorCode::Protocol);
  EXPECT_EQ(code_of(std::invalid_argument("x")),
            api::ErrorCode::InvalidArgument);
  EXPECT_EQ(code_of(std::runtime_error("x")), api::ErrorCode::Internal);
  // The message rides along verbatim.
  EXPECT_EQ(api::error_from_exception(std::runtime_error("boom")).message,
            "boom");
}

// ---- Expected ---------------------------------------------------------------

TEST(ApiExpected, ValueAndErrorSidesAreExclusive) {
  api::Expected<int> ok(7);
  EXPECT_TRUE(ok.ok());
  EXPECT_TRUE(static_cast<bool>(ok));
  EXPECT_EQ(ok.value(), 7);
  EXPECT_THROW(ok.error(), std::logic_error);

  api::Expected<int> bad(api::Error{api::ErrorCode::NotFound, "gone", 0});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, api::ErrorCode::NotFound);
  EXPECT_EQ(bad.error().http_status(), 404);
  EXPECT_THROW(bad.value(), std::logic_error);

  api::Expected<std::string> take(std::string("payload"));
  EXPECT_EQ(std::move(take).take(), "payload");
}

// ---- JSON codecs ------------------------------------------------------------

TEST(ApiJson, ErrorBodyRoundTripsEveryCode) {
  for (const api::ErrorCode code : kAllCodes) {
    api::Error error{code, "message for " +
                               std::string(api::error_code_name(code)),
                     code == api::ErrorCode::QueueFull ? 1500u : 0u};
    const obs::Json body = error_to_json(error);
    EXPECT_TRUE(body.at("error").contains("retryable"));
    EXPECT_EQ(body.at("error").at("retryable").as_bool(), error.retryable());
    const api::Error back = api::error_from_json(body);
    EXPECT_EQ(back, error) << api::error_code_name(code);
  }
  // Garbage decodes to Internal, never throws.
  EXPECT_EQ(api::error_from_json(obs::Json::parse("{}")).code,
            api::ErrorCode::Internal);
  EXPECT_EQ(api::error_from_json(obs::Json::parse("[1,2]")).code,
            api::ErrorCode::Internal);
}

TEST(ApiJson, JobSpecRoundTripsAndRejectsUnknownFields) {
  sched::JobSpec spec = tiny_spec("acme");
  spec.priority = 3;
  spec.method = "FE-GA";
  spec.specs = {"S-1", "S-3"};
  const api::Expected<sched::JobSpec> back =
      api::job_spec_from_json(api::job_spec_to_json(spec));
  ASSERT_TRUE(back.ok()) << back.error().message;
  EXPECT_EQ(back.value(), spec);

  // Defaults survive omission: an empty object is the default JobSpec.
  const api::Expected<sched::JobSpec> empty =
      api::job_spec_from_json(obs::Json::parse("{}"));
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty.value(), sched::JobSpec{});

  // A typo'd member is an InvalidArgument naming the field, not silence.
  const api::Expected<sched::JobSpec> typo =
      api::job_spec_from_json(obs::Json::parse("{\"tenent\": \"a\"}"));
  ASSERT_FALSE(typo.ok());
  EXPECT_EQ(typo.error().code, api::ErrorCode::InvalidArgument);
  EXPECT_NE(typo.error().message.find("tenent"), std::string::npos);

  const api::Expected<sched::JobSpec> bad_param = api::job_spec_from_json(
      obs::Json::parse("{\"params\": {\"runs\": -1}}"));
  ASSERT_FALSE(bad_param.ok());
  EXPECT_NE(bad_param.error().message.find("runs"), std::string::npos);
}

TEST(ApiJson, EvalRequestDecodingIsStrict) {
  const api::Expected<svc::EvalRequest> ok = api::eval_request_from_json(
      obs::Json::parse("{\"spec\": \"S-2\", \"topology\": 5, "
                       "\"sizing\": {\"init_points\": 3}}"));
  ASSERT_TRUE(ok.ok()) << ok.error().message;
  EXPECT_EQ(ok.value().spec.name, "S-2");
  EXPECT_EQ(ok.value().topology_index, 5u);
  EXPECT_EQ(ok.value().sizing.init_points, 3u);
  // Unspecified sizing fields keep the struct defaults.
  EXPECT_EQ(ok.value().sizing.iterations, sizing::SizingConfig{}.iterations);

  EXPECT_FALSE(api::eval_request_from_json(obs::Json::parse("{}")).ok());
  EXPECT_FALSE(api::eval_request_from_json(
                   obs::Json::parse("{\"spec\": \"S-1\"}"))
                   .ok());
  EXPECT_FALSE(api::eval_request_from_json(
                   obs::Json::parse("{\"spec\": \"NOPE\", \"topology\": 0}"))
                   .ok());
  EXPECT_FALSE(
      api::eval_request_from_json(
          obs::Json::parse(
              "{\"spec\": \"S-1\", \"topology\": 0, \"bogus\": 1}"))
          .ok());
}

TEST(ApiJson, OutOfRangeNumbersAreRejectedBeforeTheCast) {
  // Numbers outside [0, 2^64) must be rejected up front — the float→u64
  // conversion of 1e300 is undefined behavior, and these fields arrive in
  // attacker-supplied gateway request bodies.
  EXPECT_FALSE(api::eval_request_from_json(
                   obs::Json::parse(
                       "{\"spec\": \"S-1\", \"topology\": 1e300}"))
                   .ok());
  EXPECT_FALSE(api::job_spec_from_json(
                   obs::Json::parse("{\"priority\": 1e300}"))
                   .ok());
  EXPECT_FALSE(api::job_spec_from_json(
                   obs::Json::parse("{\"params\": {\"seed\": 2e19}}"))
                   .ok());
  // A huge retry hint in an error body is dropped, not converted.
  const api::Error hinted = api::error_from_json(obs::Json::parse(
      "{\"error\": {\"code\": \"busy\", \"retry_after_ms\": 1e300}}"));
  EXPECT_EQ(hinted.retry_after_ms, 0u);
  // The largest exactly-representable u64 double still decodes.
  const api::Expected<svc::EvalRequest> big = api::eval_request_from_json(
      obs::Json::parse("{\"spec\": \"S-1\", \"topology\": 4294967295}"));
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(big.value().topology_index, 4294967295u);
}

TEST(ApiJson, Fnv1aMatchesKnownVectors) {
  // FNV-1a 64 reference values.
  EXPECT_EQ(api::fnv1a_hex(""), "cbf29ce484222325");
  EXPECT_EQ(api::fnv1a_hex("a"), "af63dc4c8601ec8c");
  EXPECT_EQ(api::fnv1a_hex("foobar"), "85944171f73967e8");
}

// ---- Session against live services -----------------------------------------

TEST(ApiSession, EvaluationMatchesInProcessBytes) {
  svc::ServerConfig config;
  config.address = fresh_unix("api-eval");
  config.threads = 2;
  TestServer server(std::move(config));

  api::SessionConfig session_config;
  session_config.evaluators = {server.server.config().address};
  api::Session session(std::move(session_config));

  const svc::EvalRequest request = tiny_request(3);
  const api::Expected<api::EvaluationOutcome> outcome =
      session.evaluations().evaluate(request);
  ASSERT_TRUE(outcome.ok()) << outcome.error().message;
  EXPECT_EQ(outcome.value().record_payload, evaluate_in_process(request));
  EXPECT_EQ(outcome.value().record.record.topology.index(), 3u);

  // The shard digest is the EvalKey digest — the same key the stores use.
  const sizing::EvalContext context = request.eval_context();
  const core::EvalKeyContext keys(context, request.sizing);
  const auto digest = api::Evaluations::shard_digest(request);
  ASSERT_TRUE(digest.ok());
  EXPECT_EQ(digest.value(),
            keys.key_for(circuit::Topology::from_index(3)).digest);
}

TEST(ApiSession, ConcurrentFirstEvaluationsShareOnePool) {
  // The gateway calls evaluations() from concurrent connection-handler
  // threads without an external lock; the very first calls race to build
  // the pool. Exactly one pool must be installed (TSan guards the
  // install-vs-use race this test provokes).
  svc::ServerConfig config;
  config.address = fresh_unix("api-race");
  config.threads = 2;
  TestServer server(std::move(config));

  api::SessionConfig session_config;
  session_config.evaluators = {server.server.config().address};
  api::Session session(std::move(session_config));

  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::vector<api::Expected<api::EvaluationOutcome>> outcomes(
      kThreads, api::Error{api::ErrorCode::Internal, "unset", 0});
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      outcomes[static_cast<std::size_t>(i)] =
          session.evaluations().evaluate(
              tiny_request(static_cast<std::uint64_t>(i)));
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int i = 0; i < kThreads; ++i) {
    const auto& outcome = outcomes[static_cast<std::size_t>(i)];
    ASSERT_TRUE(outcome.ok()) << outcome.error().message;
    EXPECT_EQ(outcome.value().record.record.topology.index(),
              static_cast<std::size_t>(i));
  }
}

TEST(ApiSession, DownEndpointIsRetryableUnavailableAndRedials) {
  const svc::Address address = fresh_unix("api-down");
  api::SessionConfig config;
  config.evaluators = {address};
  config.pool.max_connect_attempts = 1;
  config.pool.reconnect_base_ms = 10;
  config.pool.reconnect_cap_ms = 20;
  api::Session session(std::move(config));

  const api::Expected<api::EvaluationOutcome> down =
      session.evaluations().evaluate(tiny_request(0));
  ASSERT_FALSE(down.ok());
  EXPECT_EQ(down.error().code, api::ErrorCode::Unavailable);
  EXPECT_TRUE(down.error().retryable());

  // Bring a server up on the same address: the same session serves the
  // next call without being reconstructed (the pool keeps probing).
  svc::ServerConfig server_config;
  server_config.address = address;
  server_config.threads = 1;
  TestServer server(std::move(server_config));
  const svc::EvalRequest request = tiny_request(1);
  api::Expected<api::EvaluationOutcome> up(
      api::Error{api::ErrorCode::Internal, "", 0});
  for (int attempt = 0; attempt < 50; ++attempt) {
    up = session.evaluations().evaluate(request);
    if (up.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ASSERT_TRUE(up.ok()) << up.error().message;
  EXPECT_EQ(up.value().record_payload, evaluate_in_process(request));
}

TEST(ApiSession, UnconfiguredBackendsAreInvalidArgument) {
  api::Session session(api::SessionConfig{});
  const auto eval = session.evaluations().evaluate(tiny_request(0));
  ASSERT_FALSE(eval.ok());
  EXPECT_EQ(eval.error().code, api::ErrorCode::InvalidArgument);
  const auto jobs = session.jobs().list();
  ASSERT_FALSE(jobs.ok());
  EXPECT_EQ(jobs.error().code, api::ErrorCode::InvalidArgument);
  const auto stats = session.stats().fetch_json();
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.error().code, api::ErrorCode::InvalidArgument);
}

TEST(ApiSession, StatsDocumentIsServed) {
  svc::ServerConfig config;
  config.address = fresh_unix("api-stats");
  config.threads = 1;
  TestServer server(std::move(config));

  api::SessionConfig session_config;
  session_config.evaluators = {server.server.config().address};
  api::Session session(std::move(session_config));
  const api::Expected<std::string> stats = session.stats().fetch_json();
  ASSERT_TRUE(stats.ok()) << stats.error().message;
  const obs::Json root = obs::Json::parse(stats.value());
  EXPECT_TRUE(root.contains("metrics"));
  EXPECT_GE(root.at("protocol_minor").as_number(), 1.0);
}

TEST(ApiSession, JobControlRoundTripsThroughTheFacade) {
  auto workload = std::make_shared<NullWorkload>();
  sched::SchedulerConfig sched_config;
  sched_config.workers = 1;
  sched::Scheduler scheduler(sched_config, workload);
  sched::ServiceConfig svc_config;
  svc_config.address = fresh_unix("api-jobs");
  sched::JobService service(svc_config, scheduler);
  service.bind();
  std::thread server([&] { service.run(); });

  api::SessionConfig config;
  config.scheduler = svc_config.address;
  api::Session session(std::move(config));
  api::Jobs& jobs = session.jobs();

  const api::Expected<bool> ping = jobs.ping();
  ASSERT_TRUE(ping.ok()) << ping.error().message;
  EXPECT_TRUE(ping.value());

  const api::Expected<std::uint64_t> submitted = jobs.submit(tiny_spec());
  ASSERT_TRUE(submitted.ok()) << submitted.error().message;

  const api::Expected<sched::JobInfo> status = jobs.status(submitted.value());
  ASSERT_TRUE(status.ok()) << status.error().message;
  EXPECT_EQ(status.value().id, submitted.value());
  EXPECT_EQ(status.value().spec.tenant, "api");

  const api::Expected<std::vector<sched::JobInfo>> list = jobs.list();
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list.value().size(), 1u);

  // Unknown ids are NotFound — a permanent, non-retryable error.
  const api::Expected<sched::JobInfo> missing = jobs.status(999);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, api::ErrorCode::NotFound);
  EXPECT_FALSE(missing.error().retryable());
  const api::Expected<sched::JobInfo> cancel_missing = jobs.cancel(999);
  ASSERT_FALSE(cancel_missing.ok());
  EXPECT_EQ(cancel_missing.error().code, api::ErrorCode::NotFound);

  // A rejected spec (workload validation) is InvalidArgument.
  sched::JobSpec bad = tiny_spec();
  bad.specs.clear();
  const api::Expected<std::uint64_t> rejected = jobs.submit(bad);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code, api::ErrorCode::InvalidArgument);

  service.begin_drain();
  server.join();
  scheduler.stop();
}

TEST(ApiSession, SchedulerConnectFailureIsUnavailable) {
  api::SessionConfig config;
  config.scheduler = fresh_unix("api-nosched");
  api::Session session(std::move(config));
  const auto list = session.jobs().list();
  ASSERT_FALSE(list.ok());
  EXPECT_EQ(list.error().code, api::ErrorCode::Unavailable);
  EXPECT_TRUE(list.error().retryable());
}

}  // namespace
