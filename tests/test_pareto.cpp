// Unit tests for the multi-objective Pareto extraction (core/pareto).

#include <gtest/gtest.h>

#include "circuit/library.hpp"
#include "core/pareto.hpp"

namespace {

using namespace intooa;
using core::TradeoffPoint;

// Builds a synthetic history record with chosen feasibility/metrics.
core::EvalRecord make_record(bool feasible, double gbw_hz, double power_w) {
  core::EvalRecord record;
  record.topology = circuit::named_topology("NMC");
  auto& point = record.sized.best;
  point.feasible = feasible;
  point.perf.valid = true;
  point.perf.gbw_hz = gbw_hz;
  point.perf.power_w = power_w;
  point.perf.gain_db = 90.0;
  point.perf.pm_deg = 60.0;
  point.fom = circuit::fom(point.perf, 10e-12);
  return record;
}

TEST(Pareto, ExtractsNonDominatedFeasibleSet) {
  const circuit::Spec& spec = circuit::spec_by_name("S-1");
  std::vector<core::EvalRecord> history;
  history.push_back(make_record(true, 1e6, 100e-6));   // A
  history.push_back(make_record(true, 2e6, 100e-6));   // B dominates A
  history.push_back(make_record(true, 0.8e6, 20e-6));  // C cheaper, on front
  history.push_back(make_record(true, 1.5e6, 300e-6)); // D dominated by B
  history.push_back(make_record(false, 9e6, 1e-6));    // infeasible: excluded

  const auto front =
      core::pareto_front(history, spec, core::TradeoffPlane::GbwVsPower);
  ASSERT_EQ(front.size(), 2u);
  // Cost-ascending order: C then B.
  EXPECT_EQ(front[0].history_index, 2u);
  EXPECT_EQ(front[1].history_index, 1u);
  EXPECT_LT(front[0].cost_axis, front[1].cost_axis);
  EXPECT_LT(front[0].gain_axis, front[1].gain_axis);
}

TEST(Pareto, FomPlaneUsesEqSixFom) {
  const circuit::Spec& spec = circuit::spec_by_name("S-1");
  std::vector<core::EvalRecord> history;
  history.push_back(make_record(true, 1e6, 100e-6));
  const auto front = core::pareto_front(history, spec);
  ASSERT_EQ(front.size(), 1u);
  // FoM = 1 MHz * 10 pF / 0.1 mW = 100.
  EXPECT_NEAR(front[0].gain_axis, 100.0, 1e-9);
}

TEST(Pareto, EmptyAndAllInfeasible) {
  const circuit::Spec& spec = circuit::spec_by_name("S-1");
  EXPECT_TRUE(core::pareto_front({}, spec).empty());
  std::vector<core::EvalRecord> history;
  history.push_back(make_record(false, 1e6, 1e-6));
  EXPECT_TRUE(core::pareto_front(history, spec).empty());
}

TEST(Pareto, TiedCostKeepsBestGainOnly) {
  const circuit::Spec& spec = circuit::spec_by_name("S-1");
  std::vector<core::EvalRecord> history;
  history.push_back(make_record(true, 1e6, 50e-6));
  history.push_back(make_record(true, 3e6, 50e-6));
  const auto front =
      core::pareto_front(history, spec, core::TradeoffPlane::GbwVsPower);
  ASSERT_EQ(front.size(), 1u);
  EXPECT_DOUBLE_EQ(front[0].gain_axis, 3e6);
}

TEST(Pareto, HypervolumeRectangles) {
  // Two points: (cost 1, gain 2) and (cost 2, gain 3); ref (4, 0).
  std::vector<TradeoffPoint> front(2);
  front[0].cost_axis = 1.0;
  front[0].gain_axis = 2.0;
  front[1].cost_axis = 2.0;
  front[1].gain_axis = 3.0;
  // Area = (4-1)*(2-0) + (4-2)*(3-2) = 6 + 2 = 8.
  EXPECT_DOUBLE_EQ(core::hypervolume(front, 4.0, 0.0), 8.0);
  // Points outside the reference box contribute nothing.
  EXPECT_DOUBLE_EQ(core::hypervolume(front, 0.5, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(core::hypervolume({}, 4.0, 0.0), 0.0);
}

TEST(Pareto, FrontDominatesEveryHistoryPoint) {
  // Property: no feasible history point may dominate any front point.
  const circuit::Spec& spec = circuit::spec_by_name("S-1");
  util::Rng rng(5);
  std::vector<core::EvalRecord> history;
  for (int i = 0; i < 60; ++i) {
    history.push_back(make_record(true, rng.log_uniform(1e5, 1e8),
                                  rng.log_uniform(1e-6, 1e-3)));
  }
  const auto front =
      core::pareto_front(history, spec, core::TradeoffPlane::GbwVsPower);
  ASSERT_FALSE(front.empty());
  for (const auto& record : history) {
    for (const auto& fp : front) {
      const bool dominates =
          record.sized.best.perf.power_w < fp.cost_axis &&
          record.sized.best.perf.gbw_hz > fp.gain_axis;
      EXPECT_FALSE(dominates);
    }
  }
}

}  // namespace
