// Unit tests for the extended simulator analyses: VCVS stamps and
// closed-loop configurations, transient (.TRAN) step responses with
// settling/overshoot metrics, and noise (.NOISE) analysis, each validated
// against closed-form circuit theory.

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/behavioral.hpp"
#include "circuit/library.hpp"
#include "sim/metrics.hpp"
#include "sim/mna.hpp"
#include "sim/noise.hpp"
#include "sim/transient.hpp"

namespace {

using namespace intooa;
using namespace intooa::sim;

constexpr double kBoltzmann = 1.380649e-23;

TEST(Vcvs, IdealGainStamp) {
  circuit::Netlist net;
  const auto in = net.node("in");
  const auto out = net.node("out");
  net.add_vsource("src", in, 0, 1.0);
  net.add_vcvs("e", out, 0, in, 0, 3.0);
  net.add_resistor("load", out, 0, 1e3);
  const auto v = AcSolver(net).solve(0.0);
  EXPECT_NEAR(v[out].real(), 3.0, 1e-12);
}

TEST(Vcvs, DifferentialControl) {
  // V(out) = 2 * (V(a) - V(b)).
  circuit::Netlist net;
  const auto a = net.node("a");
  const auto b = net.node("b");
  const auto out = net.node("out");
  net.add_vsource("sa", a, 0, 5.0);
  net.add_vsource("sb", b, 0, 2.0);
  net.add_vcvs("e", out, 0, a, b, 2.0);
  net.add_resistor("load", out, 0, 1e3);
  const auto v = AcSolver(net).solve(0.0);
  EXPECT_NEAR(v[out].real(), 6.0, 1e-12);
}

TEST(Vcvs, ValidationAndSpiceDump) {
  circuit::Netlist net;
  const auto a = net.node("a");
  EXPECT_THROW(net.add_vcvs("e", a, 0, a, 0, std::nan("")),
               std::invalid_argument);
  net.add_vcvs("fb", a, 0, a, 0, 1.0);
  EXPECT_NE(net.to_spice().find("Efb a gnd a gnd 1.00"), std::string::npos);
}

TEST(Vcvs, UnityFollowerClosesLoop) {
  // The behavioral amp in unity feedback: DC output ~= input (gain error
  // ~ 1/A0^3).
  circuit::BehavioralConfig cfg;
  const auto net = circuit::build_behavioral(
      circuit::named_topology("NMC"),
      std::vector<double>{10e-6, 100e-6, 2e-3, 2e-12}, cfg,
      circuit::InputDrive::UnityFollower);
  const auto v = AcSolver(net).solve(0.01);
  const auto vout = net.find_node("vout");
  ASSERT_TRUE(vout.has_value());
  EXPECT_NEAR(std::abs(v[*vout]), 1.0, 1e-3);
}

TEST(Transient, RcStepResponseMatchesTheory) {
  // v(t) = 1 - exp(-t/RC), RC = 1 us.
  circuit::Netlist net;
  const auto in = net.node("in");
  const auto out = net.node("out");
  net.add_vsource("src", in, 0, 1.0);
  net.add_resistor("r", in, out, 1e3);
  net.add_capacitor("c", out, 0, 1e-9);
  TransientOptions options;
  options.t_stop = 10e-6;
  options.dt = 5e-9;
  const Waveform wave = run_transient(net, "out", options);
  ASSERT_GT(wave.value.size(), 100u);
  EXPECT_NEAR(wave.final_value(), 1.0, 1e-3);
  // Sample at t = RC.
  const auto idx = static_cast<std::size_t>(1e-6 / options.dt);
  EXPECT_NEAR(wave.value[idx], 1.0 - std::exp(-1.0), 0.01);
  const StepMetrics metrics = step_metrics(wave, 0.01);
  EXPECT_TRUE(metrics.settled);
  // 1% settling of a single pole: t = ln(100) * RC ~= 4.6 us.
  EXPECT_NEAR(metrics.settling_time_s, 4.6e-6, 0.4e-6);
  EXPECT_NEAR(metrics.overshoot, 0.0, 1e-6);
}

TEST(Transient, ValidatesArguments) {
  circuit::Netlist net;
  const auto in = net.node("in");
  net.add_vsource("src", in, 0, 1.0);
  net.add_resistor("r", in, 0, 1e3);
  EXPECT_THROW(run_transient(net, "missing", {}), std::invalid_argument);
  TransientOptions bad;
  bad.dt = 0.0;
  EXPECT_THROW(run_transient(net, "in", bad), std::invalid_argument);
}

TEST(Transient, FollowerSettlesAndTracksPhaseMargin) {
  // Unity follower of the NMC amp: a well-compensated design settles with
  // little ringing; shrinking the Miller cap (lower PM) increases the
  // overshoot.
  circuit::BehavioralConfig cfg;
  auto follower_metrics = [&](double cm) {
    const auto net = circuit::build_behavioral(
        circuit::named_topology("NMC"),
        std::vector<double>{10e-6, 100e-6, 2e-3, cm}, cfg,
        circuit::InputDrive::UnityFollower);
    TransientOptions options;
    options.t_stop = 20e-6;
    options.dt = 1e-9;
    return step_metrics(run_transient(net, "vout", options), 0.01);
  };
  const StepMetrics strong = follower_metrics(2e-12);  // PM ~ 90: settles
  // Much smaller Miller cap: the resonant pair re-crosses unity (negative
  // margin) and the follower rings up or diverges.
  const StepMetrics weak = follower_metrics(0.3e-12);
  EXPECT_TRUE(strong.settled);
  EXPECT_LT(strong.overshoot, 0.05);
  EXPECT_GT(weak.overshoot, strong.overshoot);
}

TEST(Transient, StepMetricsOnSyntheticWaveform) {
  Waveform wave;
  for (int i = 0; i <= 100; ++i) {
    wave.time.push_back(i * 1e-6);
    // Decaying-ringing step: final value 1; the envelope peaks near
    // t = 0.8 at 1 + 0.3*exp(0.2)*sin(0.4*pi) ~= 1.35.
    const double t = i / 10.0;
    wave.value.push_back(1.0 + 0.3 * std::exp(1.0 - t) * std::sin(t * 1.5708));
  }
  const StepMetrics metrics = step_metrics(wave, 0.02);
  EXPECT_NEAR(metrics.overshoot, 0.35, 0.05);
  EXPECT_TRUE(metrics.settled);
  EXPECT_GT(metrics.settling_time_s, 1e-6);
}

TEST(Noise, ResistorDividerSpotNoise) {
  // Two 1k resistors: S_out = 4kT * (R1 || R2) with the source shorted.
  circuit::Netlist net;
  const auto in = net.node("in");
  const auto out = net.node("out");
  net.add_vsource("src", in, 0, 1.0);
  net.add_resistor("r1", in, out, 1e3);
  net.add_resistor("r2", out, 0, 1e3);
  const double psd = output_noise_psd(net, "out", 1e3);
  EXPECT_NEAR(psd, 4.0 * kBoltzmann * 300.0 * 500.0, 1e-21);
}

TEST(Noise, IntegratedRcNoiseIsKtOverC) {
  // The classic result: total output noise of an RC lowpass = kT/C,
  // independent of R.
  for (double r : {1e3, 100e3}) {
    circuit::Netlist net;
    const auto out = net.node("out");
    net.add_resistor("r", out, 0, r);
    net.add_capacitor("c", out, 0, 1e-9);
    NoiseOptions options;
    options.f_lo_hz = 1.0;
    options.f_hi_hz = 1e9;
    options.points_per_decade = 24;
    const NoiseResult result = run_noise(net, "out", options);
    const double kt_over_c = kBoltzmann * 300.0 / 1e-9;
    EXPECT_NEAR(result.integrated_output_v2 / kt_over_c, 1.0, 0.1)
        << "R = " << r;
  }
}

TEST(Noise, TransconductorChannelNoise) {
  // gm stage with resistive load: S_out = 4kT*gamma*gm*R^2 + 4kT*R.
  circuit::Netlist net;
  const auto in = net.node("in");
  const auto out = net.node("out");
  net.add_vsource("src", in, 0, 1.0);
  net.add_vccs("g", out, 0, in, 0, -1e-3, 0.0);
  net.add_resistor("rl", out, 0, 10e3);
  NoiseOptions options;
  const double psd = output_noise_psd(net, "out", 1e3, options);
  const double expected = 4.0 * kBoltzmann * 300.0 *
                          (options.gm_noise_gamma * 1e-3 * 1e8 + 1e4);
  EXPECT_NEAR(psd / expected, 1.0, 1e-9);
}

TEST(Noise, InputReferredDividesByGain) {
  // For the gm stage above, input-referred noise ~= 4kT*gamma/gm plus the
  // load contribution divided by gain^2.
  circuit::Netlist net;
  const auto in = net.node("in");
  const auto out = net.node("out");
  net.add_vsource("src", in, 0, 1.0);
  net.add_vccs("g", out, 0, in, 0, -1e-3, 0.0);
  net.add_resistor("rl", out, 0, 10e3);
  NoiseOptions options;
  options.f_lo_hz = 10.0;
  options.f_hi_hz = 1e3;
  options.points_per_decade = 4;
  const NoiseResult result = run_noise(net, "out", options);
  const double gain2 = 100.0;  // (gm R)^2
  const double expected =
      4.0 * kBoltzmann * 300.0 *
      (options.gm_noise_gamma / 1e-3 + 1e4 / gain2);
  for (double s : result.input_psd) {
    EXPECT_NEAR(s / expected, 1.0, 1e-6);
  }
}

TEST(Noise, GminLeakageNegligible) {
  // The behavioral builder's GMIN resistors are 1 T-ohm: their noise
  // contribution to a realistic amp output must be negligible relative to
  // the signal-path elements.
  circuit::BehavioralConfig cfg;
  const auto net = circuit::build_behavioral(
      circuit::named_topology("NMC"),
      std::vector<double>{1e-4, 1e-4, 1e-3, 2e-12}, cfg);
  const double psd = output_noise_psd(net, "vout", 1e3);
  EXPECT_GT(psd, 0.0);
  // Dominant source: Ro1 (25 M-ohm at gm=1e-4, A0=80) shaped by the
  // second+third stage gain; GMIN would contribute ~1e6x less.
  EXPECT_LT(psd, 1.0);   // sanity upper bound
  EXPECT_GT(psd, 1e-18);  // far above a gmin-only floor
}

TEST(Noise, Validation) {
  circuit::Netlist net;
  net.node("a");
  EXPECT_THROW(run_noise(net, "zzz", {}), std::invalid_argument);
  NoiseOptions bad;
  bad.f_lo_hz = -1.0;
  net.add_resistor("r", net.node("a"), 0, 1e3);
  EXPECT_THROW(run_noise(net, "a", bad), std::invalid_argument);
}

}  // namespace
