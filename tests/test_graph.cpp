// Unit tests for intooa::graph — labeled graphs, sparse vectors, and the
// Weisfeiler-Lehman featurizer/kernel.

#include <gtest/gtest.h>

#include <cmath>

#include "graph/graph.hpp"
#include "graph/sparse.hpp"
#include "graph/wl.hpp"

namespace {

using namespace intooa::graph;

Graph path3() {
  Graph g;
  const auto a = g.add_node("A");
  const auto b = g.add_node("B");
  const auto c = g.add_node("A");
  g.add_edge(a, b);
  g.add_edge(b, c);
  return g;
}

TEST(Graph, BasicConstruction) {
  Graph g = path3();
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.label(0), "A");
  EXPECT_EQ(g.label(1), "B");
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(Graph, DuplicateEdgesIgnored) {
  Graph g;
  const auto a = g.add_node("x");
  const auto b = g.add_node("y");
  g.add_edge(a, b);
  g.add_edge(b, a);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.neighbors(a).size(), 1u);
}

TEST(Graph, SelfLoopRejected) {
  Graph g;
  const auto a = g.add_node("x");
  EXPECT_THROW(g.add_edge(a, a), std::invalid_argument);
}

TEST(Graph, OutOfRangeAccess) {
  Graph g = path3();
  EXPECT_THROW(g.label(99), std::out_of_range);
  EXPECT_THROW(g.neighbors(99), std::out_of_range);
  EXPECT_THROW(g.add_edge(0, 99), std::out_of_range);
}

TEST(Graph, NeighborsSorted) {
  Graph g;
  const auto a = g.add_node("a");
  const auto b = g.add_node("b");
  const auto c = g.add_node("c");
  const auto d = g.add_node("d");
  g.add_edge(c, a);
  g.add_edge(c, d);
  g.add_edge(c, b);
  const auto& n = g.neighbors(c);
  EXPECT_TRUE(std::is_sorted(n.begin(), n.end()));
  EXPECT_EQ(n.size(), 3u);
  (void)a;
  (void)b;
  (void)d;
}

TEST(Graph, Connectivity) {
  Graph g = path3();
  EXPECT_TRUE(g.is_connected());
  g.add_node("isolated");
  EXPECT_FALSE(g.is_connected());
  EXPECT_TRUE(Graph().is_connected());
}

TEST(Graph, EqualityIsStructural) {
  EXPECT_EQ(path3(), path3());
  Graph g = path3();
  g.add_edge(0, 2);
  EXPECT_NE(g, path3());
}

TEST(SparseVec, AddAndGet) {
  SparseVec v;
  v.add(5, 2.0);
  v.add(1, 1.0);
  v.add(5, 3.0);
  EXPECT_DOUBLE_EQ(v.get(5), 5.0);
  EXPECT_DOUBLE_EQ(v.get(1), 1.0);
  EXPECT_DOUBLE_EQ(v.get(2), 0.0);
  EXPECT_EQ(v.nnz(), 2u);
  EXPECT_EQ(v.dim(), 6u);
}

TEST(SparseVec, EntriesSortedByIndex) {
  SparseVec v;
  v.add(9, 1.0);
  v.add(3, 1.0);
  v.add(7, 1.0);
  std::size_t prev = 0;
  for (const auto& [idx, val] : v.entries()) {
    EXPECT_GE(idx, prev);
    prev = idx;
  }
}

TEST(SparseVec, DenseSumNorm) {
  SparseVec v;
  v.add(0, 3.0);
  v.add(2, 4.0);
  const auto dense = v.to_dense(4);
  ASSERT_EQ(dense.size(), 4u);
  EXPECT_DOUBLE_EQ(dense[0], 3.0);
  EXPECT_DOUBLE_EQ(dense[1], 0.0);
  EXPECT_DOUBLE_EQ(dense[2], 4.0);
  EXPECT_DOUBLE_EQ(v.sum(), 7.0);
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
}

TEST(SparseVec, Dot) {
  SparseVec a, b;
  a.add(1, 2.0);
  a.add(3, 1.0);
  b.add(1, 5.0);
  b.add(2, 7.0);
  EXPECT_DOUBLE_EQ(dot(a, b), 10.0);
  EXPECT_DOUBLE_EQ(dot(a, SparseVec()), 0.0);
}

TEST(Wl, DepthZeroCountsLabels) {
  WlFeaturizer feat(3);
  const auto phi = feat.features(path3(), 0);
  // Two labels: "A" (x2) and "B" (x1).
  EXPECT_EQ(phi.nnz(), 2u);
  EXPECT_DOUBLE_EQ(phi.sum(), 3.0);
  EXPECT_DOUBLE_EQ(phi.get(0), 2.0);  // "A" interned first
  EXPECT_DOUBLE_EQ(phi.get(1), 1.0);  // "B"
}

TEST(Wl, FeatureSumGrowsLinearlyWithDepth) {
  WlFeaturizer feat(4);
  const Graph g = path3();
  for (int h = 0; h <= 4; ++h) {
    const auto phi = feat.features(g, h);
    // Each iteration adds one label per node.
    EXPECT_DOUBLE_EQ(phi.sum(), 3.0 * (h + 1));
  }
}

TEST(Wl, SharedDictionaryStableIndices) {
  WlFeaturizer feat(2);
  const auto phi1 = feat.features(path3(), 2);
  const std::size_t labels_after_first = feat.label_count();
  const auto phi2 = feat.features(path3(), 2);
  EXPECT_EQ(feat.label_count(), labels_after_first);  // nothing new
  EXPECT_EQ(phi1, phi2);
}

TEST(Wl, NodeOrderInvariance) {
  // Same structure, different insertion order -> same feature multiset.
  Graph a;
  const auto a0 = a.add_node("X");
  const auto a1 = a.add_node("Y");
  const auto a2 = a.add_node("Z");
  a.add_edge(a0, a1);
  a.add_edge(a1, a2);

  Graph b;
  const auto b2 = b.add_node("Z");
  const auto b0 = b.add_node("X");
  const auto b1 = b.add_node("Y");
  b.add_edge(b1, b2);
  b.add_edge(b0, b1);

  WlFeaturizer feat(3);
  EXPECT_EQ(feat.features(a, 3), feat.features(b, 3));
}

TEST(Wl, DistinguishesStructures) {
  // Path A-B-A vs triangle A-B-A: depth-1 features differ.
  Graph path = path3();
  Graph tri = path3();
  tri.add_edge(0, 2);
  WlFeaturizer feat(2);
  EXPECT_NE(feat.features(path, 1), feat.features(tri, 1));
  // Depth-0 features are equal (same label multiset).
  WlFeaturizer feat0(2);
  EXPECT_EQ(feat0.features(path, 0), feat0.features(tri, 0));
}

TEST(Wl, KernelMatchesPaperExampleStructure) {
  // k(G, G) equals ||phi||^2 and the kernel is symmetric.
  WlFeaturizer feat(2);
  Graph g1 = path3();
  Graph g2 = path3();
  g2.add_edge(0, 2);
  const double k11 = wl_kernel(feat, g1, g1, 1);
  const double k12 = wl_kernel(feat, g1, g2, 1);
  const double k21 = wl_kernel(feat, g2, g1, 1);
  EXPECT_DOUBLE_EQ(k12, k21);
  const auto phi1 = feat.features(g1, 1);
  EXPECT_DOUBLE_EQ(k11, dot(phi1, phi1));
  // Cauchy-Schwarz.
  const double k22 = wl_kernel(feat, g2, g2, 1);
  EXPECT_LE(k12 * k12, k11 * k22 + 1e-12);
}

TEST(Wl, NormalizedKernelSelfSimilarityOne) {
  WlFeaturizer feat(2);
  Graph g = path3();
  EXPECT_NEAR(wl_kernel_normalized(feat, g, g, 2), 1.0, 1e-12);
  Graph g2 = path3();
  g2.add_edge(0, 2);
  const double k = wl_kernel_normalized(feat, g, g2, 2);
  EXPECT_GE(k, 0.0);
  EXPECT_LE(k, 1.0);
}

TEST(Wl, ProvenanceReadable) {
  WlFeaturizer feat(2);
  const auto labels = feat.node_labels(path3(), 1);
  ASSERT_EQ(labels.size(), 2u);
  // Depth 0: raw labels.
  EXPECT_EQ(feat.provenance(labels[0][0]), "A");
  EXPECT_EQ(feat.provenance(labels[0][1]), "B");
  // Depth 1: center B with two A neighbors.
  EXPECT_EQ(feat.provenance(labels[1][1]), "B{A,A}");
  EXPECT_EQ(feat.depth_of(labels[1][1]), 1);
  EXPECT_THROW(feat.provenance(9999), std::out_of_range);
}

TEST(Wl, NodeLabelsConsistentWithFeatures) {
  WlFeaturizer feat(3);
  Graph g = path3();
  g.add_node("C");
  const auto labels = feat.node_labels(g, 2);
  SparseVec counted;
  for (const auto& level : labels) {
    for (std::size_t id : level) counted.add(id, 1.0);
  }
  EXPECT_EQ(counted, feat.features(g, 2));
}

TEST(Wl, DepthOutOfRangeThrows) {
  WlFeaturizer feat(2);
  EXPECT_THROW(feat.features(path3(), 3), std::invalid_argument);
  EXPECT_THROW(feat.features(path3(), -1), std::invalid_argument);
  EXPECT_THROW(WlFeaturizer(-1), std::invalid_argument);
}

TEST(Wl, EmptyGraph) {
  WlFeaturizer feat(2);
  const auto phi = feat.features(Graph(), 2);
  EXPECT_EQ(phi.nnz(), 0u);
}

}  // namespace
