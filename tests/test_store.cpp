// Unit tests for intooa::store — the record codec, the append-only log's
// crash recovery (torn tails, flipped bytes, empty files), the versioned
// header, cross-handle sharing, and the evaluator's read-through /
// write-behind integration (warm runs replay stored results without
// touching the sizer).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "circuit/library.hpp"
#include "core/evaluator.hpp"
#include "runtime/checkpoint.hpp"
#include "store/record_io.hpp"
#include "store/store.hpp"
#include "util/fs.hpp"
#include "util/rng.hpp"

namespace {

using namespace intooa;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Fresh (deleted-up-front) temp store path for one test.
std::string fresh_store(const std::string& name) {
  const std::string path = temp_path(name);
  std::filesystem::remove(path);
  return path;
}

core::EvalKey test_key(std::uint64_t i) {
  return {0x9E3779B97F4A7C15ULL + i, "test-fingerprint " + std::to_string(i)};
}

/// Synthetic record shaped like a real evaluation (2-point history).
core::EvalRecord test_record(std::uint64_t i) {
  core::EvalRecord record;
  record.topology = circuit::named_topology(i % 2 == 0 ? "NMC" : "C1");
  record.sized.topology = record.topology;
  record.sized.simulations = 2;
  record.sized.best_values = {1e-4, 2.5e-4, 1e-3, 2e-12};
  record.sized.best.perf.valid = true;
  record.sized.best.perf.gain_db = 83.25 + static_cast<double>(i);
  record.sized.best.perf.gbw_hz = 1.25e6;
  record.sized.best.perf.pm_deg = 61.5;
  record.sized.best.perf.power_w = 9.5e-5;
  record.sized.best.perf.failure = "";
  record.sized.best.fom = 417.0;
  record.sized.best.margins = {-0.1, -0.2, -0.3, -0.4};
  record.sized.best.feasible = true;
  sizing::EvalPoint failed;
  failed.perf.valid = false;
  failed.perf.failure = "unstable: RHP pole";
  record.sized.history = {failed, record.sized.best};
  return record;
}

void expect_points_equal(const sizing::EvalPoint& a,
                         const sizing::EvalPoint& b) {
  EXPECT_EQ(a.perf, b.perf);
  EXPECT_EQ(a.fom, b.fom);
  EXPECT_EQ(a.margins, b.margins);
  EXPECT_EQ(a.feasible, b.feasible);
}

void expect_records_equal(const core::EvalRecord& a,
                          const core::EvalRecord& b) {
  EXPECT_EQ(a.topology, b.topology);
  EXPECT_EQ(a.sized.topology, b.sized.topology);
  EXPECT_EQ(a.sized.simulations, b.sized.simulations);
  EXPECT_EQ(a.sized.best_values, b.sized.best_values);  // exact doubles
  expect_points_equal(a.sized.best, b.sized.best);
  ASSERT_EQ(a.sized.history.size(), b.sized.history.size());
  for (std::size_t i = 0; i < a.sized.history.size(); ++i) {
    expect_points_equal(a.sized.history[i], b.sized.history[i]);
  }
}

TEST(RecordIo, RoundTripIsExact) {
  const auto key = test_key(7);
  const auto record = test_record(7);
  const std::string payload = store::encode_record(key, record);

  const auto peeked = store::peek_digest(payload);
  ASSERT_TRUE(peeked.has_value());
  EXPECT_EQ(*peeked, key.digest);

  const auto decoded = store::decode_record(payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->key.digest, key.digest);
  EXPECT_EQ(decoded->key.fingerprint, key.fingerprint);
  expect_records_equal(decoded->record, record);
}

TEST(RecordIo, RejectsTruncationAndTrailingBytes) {
  const std::string payload =
      store::encode_record(test_key(1), test_record(1));
  for (std::size_t len : {std::size_t{0}, std::size_t{4}, std::size_t{17},
                          payload.size() - 1}) {
    EXPECT_FALSE(store::decode_record(payload.substr(0, len)).has_value())
        << "decoded a truncated payload of " << len << " bytes";
  }
  EXPECT_FALSE(store::decode_record(payload + "x").has_value());
}

TEST(EvalKey, DigestIsCanonicalAndContextSensitive) {
  sizing::EvalContext ctx(circuit::spec_by_name("S-1"));
  sizing::SizingConfig config;
  const core::EvalKeyContext keys(ctx, config);
  const auto nmc = circuit::named_topology("NMC");
  EXPECT_EQ(keys.key_for(nmc).digest, keys.key_for(nmc).digest);
  EXPECT_EQ(keys.key_for(nmc).fingerprint, keys.key_for(nmc).fingerprint);
  EXPECT_NE(keys.key_for(nmc).digest,
            keys.key_for(circuit::named_topology("C1")).digest);

  // A different spec or sizing protocol is a different evaluation identity.
  const core::EvalKeyContext other_spec(
      sizing::EvalContext(circuit::spec_by_name("S-2")), config);
  EXPECT_NE(keys.key_for(nmc).digest, other_spec.key_for(nmc).digest);
  sizing::SizingConfig longer = config;
  longer.iterations += 1;
  const core::EvalKeyContext other_protocol(ctx, longer);
  EXPECT_NE(keys.key_for(nmc).digest, other_protocol.key_for(nmc).digest);
}

TEST(EvalStore, AppendLookupAndReopen) {
  const std::string path = fresh_store("intooa_store_basic.bin");
  {
    auto store = store::EvalStore::open(path);
    EXPECT_EQ(store->size(), 0u);
    EXPECT_FALSE(store->lookup(test_key(0)).has_value());
    EXPECT_TRUE(store->append(test_key(0), test_record(0)));
    EXPECT_TRUE(store->append(test_key(1), test_record(1)));
    EXPECT_FALSE(store->append(test_key(0), test_record(0)))
        << "append must be idempotent per key";
    EXPECT_EQ(store->size(), 2u);

    const auto hit = store->lookup(test_key(1));
    ASSERT_TRUE(hit.has_value());
    expect_records_equal(*hit, test_record(1));
    EXPECT_GE(store->stats().hits, 1u);
  }
  // Records survive close + reopen (index rebuilt by scanning the log).
  auto store = store::EvalStore::open(path);
  EXPECT_EQ(store->size(), 2u);
  const auto hit = store->lookup(test_key(0));
  ASSERT_TRUE(hit.has_value());
  expect_records_equal(*hit, test_record(0));
  EXPECT_EQ(store->stats().recovered_tail_bytes, 0u);
  std::filesystem::remove(path);
}

TEST(EvalStore, DigestCollisionDegradesToMiss) {
  const std::string path = fresh_store("intooa_store_collision.bin");
  auto store = store::EvalStore::open(path);
  ASSERT_TRUE(store->append(test_key(0), test_record(0)));
  core::EvalKey colliding = test_key(0);
  colliding.fingerprint = "different evaluation context";
  EXPECT_FALSE(store->lookup(colliding).has_value());
  std::filesystem::remove(path);
}

TEST(EvalStore, RecoversFromTruncatedTail) {
  const std::string path = fresh_store("intooa_store_trunc.bin");
  {
    auto store = store::EvalStore::open(path);
    ASSERT_TRUE(store->append(test_key(0), test_record(0)));
    ASSERT_TRUE(store->append(test_key(1), test_record(1)));
  }
  // Cut into the middle of the second record (a torn append).
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full - 11);

  auto store = store::EvalStore::open(path);
  EXPECT_EQ(store->size(), 1u);
  EXPECT_TRUE(store->lookup(test_key(0)).has_value());
  EXPECT_FALSE(store->lookup(test_key(1)).has_value());
  EXPECT_GT(store->stats().recovered_tail_bytes, 0u);
  EXPECT_EQ(std::filesystem::file_size(path), full - 11 -
            store->stats().recovered_tail_bytes)
      << "the corrupt tail must be truncated away";

  // The store stays fully usable: the dropped record can be re-appended.
  EXPECT_TRUE(store->append(test_key(1), test_record(1)));
  EXPECT_EQ(store->size(), 2u);
  std::filesystem::remove(path);
}

TEST(EvalStore, FlippedByteFailsCrcAndEndsValidPrefix) {
  const std::string path = fresh_store("intooa_store_bitrot.bin");
  std::uintmax_t first_two = 0;
  {
    auto store = store::EvalStore::open(path);
    ASSERT_TRUE(store->append(test_key(0), test_record(0)));
    ASSERT_TRUE(store->append(test_key(1), test_record(1)));
    first_two = std::filesystem::file_size(path);
    ASSERT_TRUE(store->append(test_key(2), test_record(2)));
  }
  // Flip one byte inside the third record's payload.
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekg(static_cast<std::streamoff>(first_two) + 16);
    char byte = 0;
    file.get(byte);
    file.seekp(static_cast<std::streamoff>(first_two) + 16);
    file.put(static_cast<char>(byte ^ 0x40));
  }

  auto store = store::EvalStore::open(path);
  EXPECT_EQ(store->size(), 2u) << "valid prefix before the flip survives";
  EXPECT_TRUE(store->lookup(test_key(0)).has_value());
  EXPECT_TRUE(store->lookup(test_key(1)).has_value());
  EXPECT_FALSE(store->lookup(test_key(2)).has_value());
  EXPECT_GT(store->stats().recovered_tail_bytes, 0u);
  EXPECT_EQ(std::filesystem::file_size(path), first_two);
  std::filesystem::remove(path);
}

TEST(EvalStore, SingleByteCorruptionRecoversPrefixOrFailsCleanly) {
  const std::string path = fresh_store("intooa_store_fuzz.bin");
  constexpr std::uint64_t kRecords = 4;
  {
    auto store = store::EvalStore::open(path);
    for (std::uint64_t i = 0; i < kRecords; ++i) {
      ASSERT_TRUE(store->append(test_key(i), test_record(i)));
    }
  }
  std::string pristine;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    pristine = buf.str();
  }
  ASSERT_FALSE(pristine.empty());

  // Flip one byte anywhere in the file (header included). open() must
  // either refuse cleanly or recover a verified prefix — and any record it
  // does return must survive fingerprint verification and decode exactly.
  util::Rng rng(0xF00DF00DULL);
  for (int round = 0; round < 300; ++round) {
    std::string bytes = pristine;
    const std::size_t offset = rng.next_u64() % bytes.size();
    const char flip = static_cast<char>(1 + rng.next_u64() % 255);
    bytes[offset] = static_cast<char>(bytes[offset] ^ flip);
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    try {
      auto store = store::EvalStore::open(path);
      EXPECT_LE(store->size(), kRecords);
      for (std::uint64_t i = 0; i < kRecords; ++i) {
        const auto hit = store->lookup(test_key(i));
        if (hit.has_value()) expect_records_equal(*hit, test_record(i));
      }
    } catch (const std::runtime_error&) {
      // Header corruption: a clean refusal is a correct outcome.
    }
  }
  std::filesystem::remove(path);
}

TEST(EvalStore, EmptyFileIsRecoveredToFreshStore) {
  const std::string path = fresh_store("intooa_store_empty.bin");
  { std::ofstream out(path, std::ios::binary); }  // zero-length file
  ASSERT_EQ(std::filesystem::file_size(path), 0u);

  auto store = store::EvalStore::open(path);
  EXPECT_EQ(store->size(), 0u);
  EXPECT_TRUE(store->append(test_key(0), test_record(0)));
  EXPECT_TRUE(store->lookup(test_key(0)).has_value());
  std::filesystem::remove(path);
}

TEST(EvalStore, RejectsForeignFile) {
  const std::string path = fresh_store("intooa_store_foreign.bin");
  {
    std::ofstream out(path);
    out << "this is some other file format, certainly not a store log\n";
  }
  EXPECT_THROW(store::EvalStore::open(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(EvalStore, RejectsIncompatibleVersionWithClearError) {
  const std::string path = fresh_store("intooa_store_version.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "intooa-evalstore";  // correct magic...
    const std::uint32_t version = store::kStoreVersion + 41;
    const std::uint32_t reserved = 0;
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
    out.write(reinterpret_cast<const char*>(&reserved), sizeof(reserved));
  }
  try {
    store::EvalStore::open(path);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("incompatible"), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(store::kStoreVersion + 41)),
              std::string::npos)
        << "error must name the file's version: " << what;
  }
  std::filesystem::remove(path);
}

TEST(EvalStore, TwoHandlesOnOneFileSeeEachOthersAppends) {
  // Two in-process handles stand in for two campaign processes: the second
  // handle must pick up the first's appends (refresh scan) both for
  // duplicate suppression and for lookups.
  const std::string path = fresh_store("intooa_store_shared.bin");
  auto a = store::EvalStore::open(path);
  auto b = store::EvalStore::open(path);
  EXPECT_TRUE(a->append(test_key(0), test_record(0)));
  EXPECT_FALSE(b->append(test_key(0), test_record(0)))
      << "duplicate of a foreign append must be suppressed";
  EXPECT_TRUE(b->append(test_key(1), test_record(1)));
  const auto hit = a->lookup(test_key(1));
  ASSERT_TRUE(hit.has_value());
  expect_records_equal(*hit, test_record(1));
  EXPECT_EQ(a->size(), 2u);
  EXPECT_EQ(b->size(), 2u);
  std::filesystem::remove(path);
}

sizing::SizingConfig fast_sizing() {
  sizing::SizingConfig config;
  config.init_points = 4;
  config.iterations = 4;
  config.candidates = 64;
  return config;
}

core::TopologyEvaluator s1_evaluator() {
  return core::TopologyEvaluator(
      sizing::EvalContext(circuit::spec_by_name("S-1")), fast_sizing());
}

TEST(StoreTier, WarmEvaluatorReplaysColdRunWithoutSizing) {
  const std::string path = fresh_store("intooa_store_warm.bin");
  const auto nmc = circuit::named_topology("NMC");
  const auto c1 = circuit::named_topology("C1");

  auto cold = s1_evaluator();
  store::attach(cold, store::EvalStore::open(path));
  cold.evaluate(nmc);
  cold.evaluate(c1);
  EXPECT_EQ(cold.store_hits(), 0u);

  auto warm = s1_evaluator();
  auto store = store::EvalStore::open(path);
  store::attach(warm, store);
  warm.evaluate(nmc);
  warm.evaluate(c1);
  EXPECT_EQ(warm.store_hits(), 2u) << "both results must come from the store";
  EXPECT_EQ(store->stats().hits, 2u);

  // Byte-identical accounting and results: the warm history replays the
  // cold one exactly (store hits carry their recorded simulation cost).
  EXPECT_EQ(warm.total_simulations(), cold.total_simulations());
  ASSERT_EQ(warm.history().size(), cold.history().size());
  for (std::size_t i = 0; i < cold.history().size(); ++i) {
    expect_records_equal(warm.history()[i], cold.history()[i]);
    EXPECT_EQ(warm.history()[i].sims_before, cold.history()[i].sims_before);
  }
  EXPECT_EQ(warm.fom_curve(), cold.fom_curve());
  std::filesystem::remove(path);
}

TEST(StoreTier, DeterministicSizingMakesStoreUnnecessaryForEquality) {
  // The foundation of warm-start byte-identity: sizing is a pure function
  // of the evaluation key, so two independent evaluators agree exactly even
  // without a store.
  auto a = s1_evaluator();
  auto b = s1_evaluator();
  const auto& ra = a.evaluate(circuit::named_topology("NMC"));
  const auto& rb = b.evaluate(circuit::named_topology("NMC"));
  EXPECT_EQ(ra.best_values, rb.best_values);
  expect_points_equal(ra.best, rb.best);
}

TEST(StoreTier, RestoredCheckpointPopulatesStore) {
  const std::string path = fresh_store("intooa_store_ckpt.bin");
  const std::string ckpt = temp_path("intooa_store_ckpt.ckpt");
  {
    auto original = s1_evaluator();
    original.evaluate(circuit::named_topology("NMC"));
    runtime::save_evaluator_checkpoint(ckpt, "t", original);
  }
  auto store = store::EvalStore::open(path);
  auto restored = s1_evaluator();
  store::attach(restored, store);
  ASSERT_TRUE(runtime::load_evaluator_checkpoint(ckpt, "t", restored));
  EXPECT_EQ(store->size(), 1u)
      << "records restored from an old checkpoint must reach the store";
  std::filesystem::remove(path);
  std::filesystem::remove(ckpt);
}

TEST(Checkpoint, RejectsIncompatibleVersionMagic) {
  const std::string path = temp_path("intooa_store_badver.ckpt");
  {
    std::ofstream out(path);
    out << "intooa-evaluator-checkpoint v999\ntoken t\nrecords 0\nsims 0\n"
           "end\n";
  }
  auto evaluator = s1_evaluator();
  EXPECT_FALSE(runtime::load_evaluator_checkpoint(path, "t", evaluator));
  EXPECT_EQ(evaluator.history().size(), 0u);
  std::filesystem::remove(path);
}

TEST(AtomicWriteFile, WritesContentsAndCreatesParents) {
  const std::string dir = temp_path("intooa_awf_dir");
  std::filesystem::remove_all(dir);
  const std::string path = dir + "/nested/out.txt";
  util::atomic_write_file(path, "first contents\n");
  {
    std::ifstream in(path);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    EXPECT_EQ(contents, "first contents\n");
  }
  // Overwrite is atomic-replace, not append.
  util::atomic_write_file(path, "second");
  {
    std::ifstream in(path);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    EXPECT_EQ(contents, "second");
  }
  // No temp files left behind.
  std::size_t entries = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir + "/nested")) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
  std::filesystem::remove_all(dir);
}

}  // namespace
