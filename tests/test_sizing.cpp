// Unit tests for intooa::sizing — single-design evaluation, constrained
// ranking, and the inner BO sizing loop (full and subset-restricted).

#include <gtest/gtest.h>

#include "circuit/library.hpp"
#include "sizing/evaluate.hpp"
#include "sizing/sizer.hpp"
#include "util/rng.hpp"

namespace {

using namespace intooa;
using namespace intooa::sizing;

EvalContext s1_context() {
  return EvalContext(circuit::spec_by_name("S-1"));
}

TEST(Evaluate, ContextTakesLoadCapFromSpec) {
  const EvalContext ctx(circuit::spec_by_name("S-5"));
  EXPECT_DOUBLE_EQ(ctx.behavioral.load_cap, 10e-9);
  EXPECT_EQ(ctx.spec.name, "S-5");
}

TEST(Evaluate, NmcDesignProducesConsistentPoint) {
  const EvalContext ctx = s1_context();
  const auto topo = circuit::named_topology("NMC");
  const std::vector<double> vals = {100e-6, 100e-6, 1e-3, 2e-12};
  const EvalPoint p = evaluate_sized(topo, vals, ctx);
  ASSERT_TRUE(p.perf.valid) << p.perf.failure;
  EXPECT_GT(p.fom, 0.0);
  EXPECT_EQ(p.feasible, ctx.spec.satisfied(p.perf));
  EXPECT_NEAR(p.objective(), std::log10(p.fom), 1e-12);
}

TEST(Evaluate, BadParameterVectorIsInfeasibleNotFatal) {
  const EvalContext ctx = s1_context();
  const EvalPoint p =
      evaluate_sized(circuit::named_topology("NMC"),
                     std::vector<double>{1e-4, 1e-4}, ctx);  // wrong size
  EXPECT_FALSE(p.perf.valid);
  EXPECT_FALSE(p.feasible);
  EXPECT_GT(p.violation(), 1.0);
}

TEST(Evaluate, BetterThanRanking) {
  EvalPoint feasible_small;
  feasible_small.feasible = true;
  feasible_small.fom = 10.0;
  EvalPoint feasible_big = feasible_small;
  feasible_big.fom = 20.0;
  EvalPoint infeasible;
  infeasible.feasible = false;
  infeasible.margins = {1.0, 0.0, 0.0, 0.0};
  EvalPoint worse_infeasible;
  worse_infeasible.feasible = false;
  worse_infeasible.margins = {2.0, 0.5, 0.0, 0.0};

  EXPECT_TRUE(better_than(feasible_big, feasible_small));
  EXPECT_FALSE(better_than(feasible_small, feasible_big));
  EXPECT_TRUE(better_than(feasible_small, infeasible));
  EXPECT_TRUE(better_than(infeasible, worse_infeasible));
  EXPECT_FALSE(better_than(worse_infeasible, feasible_small));
}

TEST(Sizer, RespectsSimulationBudget) {
  SizingConfig config;
  config.init_points = 5;
  config.iterations = 7;
  config.candidates = 64;
  const Sizer sizer(s1_context(), config);
  util::Rng rng(41);
  const SizedResult result = sizer.size(circuit::named_topology("NMC"), rng);
  EXPECT_EQ(result.simulations, 12u);
  EXPECT_EQ(result.history.size(), 12u);
  EXPECT_EQ(result.best_values.size(), 4u);
}

TEST(Sizer, FindsFeasibleNmcSizingForS1) {
  // NMC is a known-good topology for S-1; the default 10+30 loop should
  // find a feasible sizing.
  const Sizer sizer(s1_context());
  util::Rng rng(42);
  const SizedResult result = sizer.size(circuit::named_topology("NMC"), rng);
  EXPECT_TRUE(result.best.feasible)
      << "violation=" << result.best.violation()
      << " failure=" << result.best.perf.failure;
  EXPECT_GT(result.best.fom, 0.0);
}

TEST(Sizer, BestIsBestOfHistory) {
  SizingConfig config;
  config.init_points = 6;
  config.iterations = 6;
  const Sizer sizer(s1_context(), config);
  util::Rng rng(43);
  const SizedResult result = sizer.size(circuit::named_topology("NMC"), rng);
  for (const auto& point : result.history) {
    EXPECT_FALSE(better_than(point, result.best));
  }
}

TEST(Sizer, SubsetResizeKeepsFixedParameters) {
  const EvalContext ctx = s1_context();
  SizingConfig config;
  config.init_points = 4;
  config.iterations = 4;
  const Sizer sizer(ctx, config);
  const auto topo = circuit::named_topology("NMC");
  const auto schema = circuit::make_schema(topo, ctx.behavioral);
  const std::vector<double> base = {100e-6, 100e-6, 1e-3, 2e-12};
  const std::vector<std::size_t> free_idx = {
      schema.index_of("v1-vout.C")};  // only the Miller cap moves
  util::Rng rng(44);
  const SizedResult result =
      sizer.resize_subset(topo, base, free_idx, rng, 8);
  EXPECT_EQ(result.simulations, 8u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(result.best_values[i], base[i], base[i] * 1e-9)
        << "fixed parameter " << schema.params[i].name << " moved";
  }
}

TEST(Sizer, SubsetResizeStartsFromBasePoint) {
  const EvalContext ctx = s1_context();
  SizingConfig config;
  config.init_points = 3;
  config.iterations = 2;
  const Sizer sizer(ctx, config);
  const auto topo = circuit::named_topology("NMC");
  const std::vector<double> base = {100e-6, 100e-6, 1e-3, 2e-12};
  const std::vector<std::size_t> free_idx = {3};
  util::Rng rng(45);
  const SizedResult result = sizer.resize_subset(topo, base, free_idx, rng, 6);
  // The first history point is the base design itself.
  const EvalPoint base_point = evaluate_sized(topo, base, ctx);
  EXPECT_NEAR(result.history.front().fom, base_point.fom, 1e-9);
}

TEST(Sizer, Validation) {
  SizingConfig bad;
  bad.init_points = 1;
  EXPECT_THROW(Sizer(s1_context(), bad), std::invalid_argument);
  SizingConfig bad2;
  bad2.candidates = 0;
  EXPECT_THROW(Sizer(s1_context(), bad2), std::invalid_argument);

  const Sizer sizer(s1_context());
  util::Rng rng(46);
  const auto topo = circuit::named_topology("NMC");
  EXPECT_THROW(
      sizer.resize_subset(topo, std::vector<double>{1.0}, std::vector<std::size_t>{0}, rng),
      std::invalid_argument);
  const std::vector<double> base = {100e-6, 100e-6, 1e-3, 2e-12};
  EXPECT_THROW(
      sizer.resize_subset(topo, base, std::vector<std::size_t>{99}, rng),
      std::invalid_argument);
}

TEST(Sizer, HistoryFomMatchesFeasibility) {
  SizingConfig config;
  config.init_points = 5;
  config.iterations = 5;
  const Sizer sizer(s1_context(), config);
  util::Rng rng(47);
  const SizedResult result = sizer.size(circuit::named_topology("C1"), rng);
  for (const auto& point : result.history) {
    if (point.feasible) {
      EXPECT_TRUE(point.perf.valid);
      EXPECT_DOUBLE_EQ(point.violation(), 0.0);
    }
    if (!point.perf.valid) EXPECT_DOUBLE_EQ(point.fom, 0.0);
  }
}

}  // namespace
