// Unit tests for intooa::util — RNG determinism and distribution sanity,
// statistics helpers, table/CSV rendering, formatting, CLI parsing.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/lru_cache.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/version.hpp"

namespace {

using namespace intooa::util;

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedReplaysSequence) {
  Rng a(77);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a.next_u64());
  a.reseed(77);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next_u64(), first[i]);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng(6);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.uniform();
  EXPECT_NEAR(mean(xs), 0.5, 0.01);
  EXPECT_NEAR(variance(xs), 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 2.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 2.0);
  }
  EXPECT_THROW(rng.uniform(1.0, 0.0), std::invalid_argument);
}

TEST(Rng, LogUniformSpansDecades) {
  Rng rng(8);
  int low_decade = 0;
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.log_uniform(1e-6, 1e-2);
    EXPECT_GE(v, 1e-6);
    EXPECT_LE(v, 1e-2);
    if (v < 1e-5) ++low_decade;
  }
  // A log-uniform sample puts ~1/4 of the mass in the first decade.
  EXPECT_NEAR(low_decade / 5000.0, 0.25, 0.05);
  EXPECT_THROW(rng.log_uniform(0.0, 1.0), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng rng(9);
  std::vector<double> xs(30000);
  for (auto& x : xs) x = rng.normal();
  EXPECT_NEAR(mean(xs), 0.0, 0.02);
  EXPECT_NEAR(stddev(xs), 1.0, 0.02);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(10);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.normal(5.0, 2.0);
  EXPECT_NEAR(mean(xs), 5.0, 0.05);
  EXPECT_NEAR(stddev(xs), 2.0, 0.05);
}

TEST(Rng, IndexCoversRangeUniformly) {
  Rng rng(11);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 14000; ++i) ++counts[rng.index(7)];
  for (int c : counts) EXPECT_NEAR(c, 2000, 250);
  EXPECT_THROW(rng.index(0), std::invalid_argument);
}

TEST(Rng, IntegerInclusiveBounds) {
  Rng rng(12);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.integer(-2, 3));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(13);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, SampleIndicesDistinct) {
  Rng rng(14);
  const auto idx = rng.sample_indices(50, 20);
  EXPECT_EQ(idx.size(), 20u);
  std::set<std::size_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 20u);
  for (std::size_t i : idx) EXPECT_LT(i, 50u);
  EXPECT_THROW(rng.sample_indices(3, 4), std::invalid_argument);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(15);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto copy = v;
  rng.shuffle(copy);
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, v);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(42);
  Rng child = a.split();
  // The child stream should differ from the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitIsDeterministic) {
  // Equal parent states fork equal children — the property the runtime's
  // deterministic_parallel_map builds on.
  Rng a(314), b(314);
  Rng child_a = a.split();
  Rng child_b = b.split();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(child_a.next_u64(), child_b.next_u64());
  }
  // ... and the parents stay in lockstep after splitting.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SplitChildUnaffectedByLaterParentDraws) {
  // A child forked at a given parent state replays the same stream no
  // matter what the parent does afterwards: tasks can run in any order.
  Rng parent1(2718);
  Rng child1 = parent1.split();
  std::vector<std::uint64_t> expected;
  for (int i = 0; i < 50; ++i) expected.push_back(child1.next_u64());

  Rng parent2(2718);
  Rng child2 = parent2.split();
  for (int i = 0; i < 1000; ++i) parent2.next_u64();  // parent races ahead
  for (int i = 0; i < 50; ++i) EXPECT_EQ(child2.next_u64(), expected[i]);
}

TEST(Rng, ConsecutiveSplitsAreDistinct) {
  Rng parent(161803);
  std::set<std::uint64_t> firsts;
  constexpr int kSplits = 64;
  for (int i = 0; i < kSplits; ++i) firsts.insert(parent.split().next_u64());
  EXPECT_EQ(firsts.size(), static_cast<std::size_t>(kSplits));
}

TEST(Cli, GetSizeParsesNonNegative) {
  const char* argv[] = {"prog", "--threads", "4", "--bad", "-2"};
  Cli cli(5, argv);
  EXPECT_EQ(cli.get_size("threads", 1), 4u);
  EXPECT_EQ(cli.get_size("absent", 7), 7u);
  EXPECT_THROW(cli.get_size("bad", 0), std::invalid_argument);
}

TEST(Rng, ChoiceThrowsOnEmpty) {
  Rng rng(16);
  std::vector<int> empty;
  EXPECT_THROW(rng.choice(empty), std::invalid_argument);
  std::vector<int> one = {9};
  EXPECT_EQ(rng.choice(one), 9);
}

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{3.0}), 0.0);
}

TEST(Stats, MedianAndQuantile) {
  const std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.0);
  EXPECT_THROW(quantile(std::vector<double>{}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile(xs, 1.5), std::invalid_argument);
}

TEST(Stats, ArgminArgmax) {
  const std::vector<double> xs = {3.0, -1.0, 7.0, 2.0};
  EXPECT_EQ(argmax(xs), 2u);
  EXPECT_EQ(argmin(xs), 1u);
  EXPECT_THROW(argmax(std::vector<double>{}), std::invalid_argument);
}

TEST(Stats, RunningMaxMonotone) {
  const std::vector<double> xs = {1.0, 3.0, 2.0, 5.0, 4.0};
  const auto rm = running_max(xs);
  const std::vector<double> expected = {1.0, 3.0, 3.0, 5.0, 5.0};
  EXPECT_EQ(rm, expected);
}

TEST(Stats, NormalPdfCdf) {
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804, 1e-9);
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(normal_cdf(-1.96), 0.025, 1e-3);
  // CDF derivative matches PDF (finite difference).
  const double h = 1e-6;
  EXPECT_NEAR((normal_cdf(0.7 + h) - normal_cdf(0.7 - h)) / (2 * h),
              normal_pdf(0.7), 1e-6);
}

TEST(Stats, Pearson) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> ys = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> zs = {10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, zs), -1.0, 1e-12);
  const std::vector<double> flat = {1, 1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(pearson(xs, flat), 0.0);
}

TEST(Stats, Summarize) {
  const std::vector<double> xs = {2.0, 4.0, 6.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
}

TEST(Table, AsciiRendering) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333"});
  const std::string ascii = t.to_ascii();
  EXPECT_NE(ascii.find("| a   | bb |"), std::string::npos);
  EXPECT_NE(ascii.find("| 333 |    |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvEscaping) {
  Table t({"x", "y"});
  t.add_row({"a,b", "say \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Format, SignificantDigits) {
  EXPECT_EQ(fmt(1234.5678, 4), "1235");
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_speedup(14.333), "14.33x");
  EXPECT_EQ(fmt_rate(7, 10), "7/10");
}

TEST(Format, SiPrefixes) {
  EXPECT_EQ(fmt_si(4.7e-12), "4.70p");
  EXPECT_EQ(fmt_si(1e6, 1), "1.0M");
  EXPECT_EQ(fmt_si(2.2e3), "2.20k");
  EXPECT_EQ(fmt_si(0.0), "0.00");
  EXPECT_EQ(fmt_si(-3.3e-6), "-3.30u");
}

TEST(Cli, ParsesFlagsAndPositionals) {
  const char* argv[] = {"prog", "--runs", "5", "pos1", "--seed=42",
                        "pos2", "--quick"};
  Cli cli(7, argv);
  EXPECT_EQ(cli.get_int("runs", 0), 5);
  EXPECT_TRUE(cli.has("quick"));
  EXPECT_EQ(cli.get_int("seed", 0), 42);
  EXPECT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.get("missing", "dflt"), "dflt");
  EXPECT_EQ(cli.get_double("runs", 0.0), 5.0);
}

TEST(Cli, BadNumberThrows) {
  const char* argv[] = {"prog", "--runs", "abc"};
  Cli cli(3, argv);
  EXPECT_THROW(cli.get_int("runs", 0), std::invalid_argument);
}

TEST(Cli, UnknownFlagsDetectedInParseOrder) {
  const char* argv[] = {"/usr/bin/prog", "--runs", "5", "--stroe",
                        "x.bin", "--benchmark_filter=foo", "--quikc"};
  const Cli cli(7, argv);
  EXPECT_EQ(cli.program(), "prog");
  // Exact names plus a '*' prefix wildcard (google-benchmark passthrough).
  const auto unknown =
      cli.unknown_flags({"runs", "store", "quick", "benchmark_*"});
  ASSERT_EQ(unknown.size(), 2u);
  EXPECT_EQ(unknown[0], "stroe");
  EXPECT_EQ(unknown[1], "quikc");
  EXPECT_TRUE(
      cli.unknown_flags({"runs", "stroe", "quikc", "benchmark_*"}).empty());
}

TEST(Cli, RejectUnknownAcceptsKnownFlags) {
  const char* argv[] = {"prog", "--runs=5", "--quick"};
  const Cli cli(3, argv);
  cli.reject_unknown({"runs", "quick", "seed"});  // must not exit
}

// The regression this guards: a typo like "--stroe FILE" used to be
// silently ignored, running a whole campaign without persistence. Now it
// must terminate with exit code 2 and a did-you-mean diagnostic.
TEST(CliDeathTest, RejectUnknownExitsTwoWithSuggestion) {
  const char* argv[] = {"prog", "--stroe", "x.bin"};
  const Cli cli(3, argv);
  EXPECT_EXIT(cli.reject_unknown({"store", "runs"}),
              testing::ExitedWithCode(2),
              "unknown flag --stroe \\(did you mean --store\\?\\)");
}

TEST(CliDeathTest, RejectUnknownWithoutCloseMatchListsAccepted) {
  const char* argv[] = {"prog", "--zzz"};
  const Cli cli(2, argv);
  EXPECT_EXIT(cli.reject_unknown({"store", "runs"}),
              testing::ExitedWithCode(2), "accepted flags: --store, --runs");
}

TEST(Log, LevelFiltering) {
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  log_info("should be filtered");  // must not crash
  set_log_level(LogLevel::Warn);
}

TEST(Version, StringIsStampedAndStable) {
  const std::string& version = version_string();
  EXPECT_FALSE(version.empty());
  // "<git-describe> (<build-type>[, <sanitizer>])"
  EXPECT_NE(version.find(" ("), std::string::npos);
  EXPECT_EQ(version.back(), ')');
  EXPECT_EQ(&version_string(), &version) << "one stamp per process";
}

TEST(LruByteCache, UnlimitedBudgetNeverEvicts) {
  LruByteCache cache;  // budget 0 = unlimited
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(cache.insert(i, std::string(1000, 'x')), 0u);
  }
  EXPECT_EQ(cache.size(), 100u);
  EXPECT_EQ(cache.evictions(), 0u);
  ASSERT_NE(cache.find(0), nullptr);
}

TEST(LruByteCache, EvictsLeastRecentlyUsedPastBudget) {
  // Budget fits exactly two 100-byte entries (plus per-entry overhead).
  LruByteCache cache(2 * (100 + LruByteCache::kEntryOverhead));
  cache.insert(1, std::string(100, 'a'));
  cache.insert(2, std::string(100, 'b'));
  EXPECT_EQ(cache.size(), 2u);

  // Touch 1 so 2 becomes the LRU victim.
  ASSERT_NE(cache.find(1), nullptr);
  EXPECT_EQ(cache.insert(3, std::string(100, 'c')), 1u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_NE(cache.find(1), nullptr);
  EXPECT_EQ(cache.find(2), nullptr);
  EXPECT_NE(cache.find(3), nullptr);
  EXPECT_LE(cache.bytes(), cache.budget());
}

TEST(LruByteCache, ReplacingAKeyAdjustsByteAccounting) {
  LruByteCache cache(10'000);
  cache.insert(7, std::string(100, 'a'));
  const std::size_t before = cache.bytes();
  cache.insert(7, std::string(500, 'b'));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.bytes(), before + 400);
  ASSERT_NE(cache.find(7), nullptr);
  EXPECT_EQ(cache.find(7)->size(), 500u);
}

TEST(LruByteCache, OversizedEntryIsAdmittedAloneThenEvicted) {
  LruByteCache cache(64);
  // Larger than the whole budget: admitted anyway (always servable)...
  EXPECT_EQ(cache.insert(1, std::string(1000, 'x')), 0u);
  EXPECT_EQ(cache.size(), 1u);
  // ...and evicted as soon as the next entry arrives.
  EXPECT_EQ(cache.insert(2, std::string(10, 'y')), 1u);
  EXPECT_EQ(cache.find(1), nullptr);
  EXPECT_NE(cache.find(2), nullptr);
}

}  // namespace
