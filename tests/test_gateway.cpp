// Tests for intooa::gateway — the dependency-free HTTP/1.1 layer. The
// parser torture section drives HttpParser as a pure byte machine (torn
// byte-by-byte delivery, pipelined requests in one buffer, malformed
// request lines and headers, oversized heads and bodies, chunked-coding
// rejection); the routing section exercises Gateway::route() without
// sockets (error→HTTP-status→JSON round trip for every taxonomy code,
// 404/405 shapes); and the end-to-end section runs a real Gateway over a
// TCP socket against a live intooa-served — including the slowloris 408
// grace bound, keep-alive pipelining on the wire, and the drain contract
// (503 + Retry-After on new work).

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/error.hpp"
#include "api/json.hpp"
#include "circuit/spec.hpp"
#include "gateway/gateway.hpp"
#include "gateway/http.hpp"
#include "obs/json.hpp"
#include "svc/server.hpp"
#include "svc/socket.hpp"

namespace {

using namespace intooa;
using gateway::HttpParser;

svc::Address fresh_unix(const std::string& name) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("intooa-" + name + "-" + std::to_string(::getpid()) + ".sock"))
          .string();
  std::filesystem::remove(path);
  return svc::Address::parse("unix:" + path);
}

// ---- parser: the happy path -------------------------------------------------

TEST(HttpParser, ParsesASimpleGet) {
  HttpParser parser;
  ASSERT_EQ(parser.feed("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"),
            HttpParser::Status::Ready);
  const gateway::HttpRequest request = parser.take_request();
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.path, "/healthz");
  EXPECT_EQ(request.version_minor, 1);
  ASSERT_NE(request.header("host"), nullptr);
  EXPECT_EQ(*request.header("host"), "x");
  EXPECT_TRUE(request.keep_alive);
  EXPECT_TRUE(request.body.empty());
  EXPECT_EQ(parser.status(), HttpParser::Status::NeedMore);
  EXPECT_FALSE(parser.mid_request());
}

TEST(HttpParser, ParsesBodyByContentLength) {
  HttpParser parser;
  ASSERT_EQ(parser.feed("POST /v1/jobs HTTP/1.1\r\nContent-Length: 11\r\n"
                        "Content-Type: application/json\r\n\r\n{\"a\": true}"),
            HttpParser::Status::Ready);
  const gateway::HttpRequest request = parser.take_request();
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.body, "{\"a\": true}");
}

TEST(HttpParser, QueryStringSplitsAndDecodes) {
  HttpParser parser;
  ASSERT_EQ(parser.feed("GET /v1/jobs?tenant=a%20b&watch=1&flag HTTP/1.1\r\n"
                        "\r\n"),
            HttpParser::Status::Ready);
  const gateway::HttpRequest request = parser.take_request();
  EXPECT_EQ(request.path, "/v1/jobs");
  EXPECT_EQ(request.query, "tenant=a%20b&watch=1&flag");
  const auto params = request.query_params();
  EXPECT_EQ(params.at("tenant"), "a b");
  EXPECT_EQ(params.at("watch"), "1");
  EXPECT_EQ(params.at("flag"), "");
}

TEST(HttpParser, HeaderNamesLowercasedValuesTrimmed) {
  HttpParser parser;
  ASSERT_EQ(parser.feed("GET / HTTP/1.1\r\nX-ThInG:   padded \t\r\n\r\n"),
            HttpParser::Status::Ready);
  const gateway::HttpRequest request = parser.take_request();
  ASSERT_NE(request.header("x-thing"), nullptr);
  EXPECT_EQ(*request.header("x-thing"), "padded");
}

TEST(HttpParser, BareLfLineEndingsAreTolerated) {
  HttpParser parser;
  ASSERT_EQ(parser.feed("GET /x HTTP/1.1\nHost: y\n\n"),
            HttpParser::Status::Ready);
  EXPECT_EQ(parser.take_request().path, "/x");
}

TEST(HttpParser, Http10DefaultsToClose) {
  HttpParser parser;
  ASSERT_EQ(parser.feed("GET / HTTP/1.0\r\n\r\n"), HttpParser::Status::Ready);
  EXPECT_FALSE(parser.take_request().keep_alive);
  ASSERT_EQ(parser.feed("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"),
            HttpParser::Status::Ready);
  EXPECT_TRUE(parser.take_request().keep_alive);
  ASSERT_EQ(parser.feed("GET / HTTP/1.1\r\nConnection: close\r\n\r\n"),
            HttpParser::Status::Ready);
  EXPECT_FALSE(parser.take_request().keep_alive);
}

// ---- parser torture ---------------------------------------------------------

TEST(HttpParserTorture, TornDeliveryByteByByte) {
  const std::string wire =
      "POST /v1/evaluations HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
  HttpParser parser;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    ASSERT_EQ(parser.feed(std::string_view(&wire[i], 1)),
              HttpParser::Status::NeedMore)
        << "byte " << i;
    EXPECT_TRUE(parser.mid_request());
  }
  ASSERT_EQ(parser.feed(std::string_view(&wire.back(), 1)),
            HttpParser::Status::Ready);
  const gateway::HttpRequest request = parser.take_request();
  EXPECT_EQ(request.body, "hello");
  EXPECT_FALSE(parser.mid_request());
}

TEST(HttpParserTorture, PipelinedRequestsInOneFeed) {
  HttpParser parser;
  ASSERT_EQ(parser.feed("GET /a HTTP/1.1\r\n\r\n"
                        "POST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi"
                        "GET /c HTTP/1.1\r\n\r\n"),
            HttpParser::Status::Ready);
  EXPECT_EQ(parser.take_request().path, "/a");
  ASSERT_EQ(parser.status(), HttpParser::Status::Ready);
  const gateway::HttpRequest second = parser.take_request();
  EXPECT_EQ(second.path, "/b");
  EXPECT_EQ(second.body, "hi");
  ASSERT_EQ(parser.status(), HttpParser::Status::Ready);
  EXPECT_EQ(parser.take_request().path, "/c");
  EXPECT_EQ(parser.status(), HttpParser::Status::NeedMore);
}

TEST(HttpParserTorture, MalformedRequestLinesAre400) {
  for (const char* wire :
       {"GARBAGE\r\n\r\n", "GET /\r\n\r\n", "GET  / HTTP/1.1\r\n\r\n",
        "GET / HTTP/1.1 extra\r\n\r\n", "G=T / HTTP/1.1\r\n\r\n"}) {
    HttpParser parser;
    ASSERT_EQ(parser.feed(wire), HttpParser::Status::Error) << wire;
    EXPECT_EQ(parser.error_status(), 400) << wire;
    // Poisoned: further bytes never resurrect it.
    EXPECT_EQ(parser.feed("GET / HTTP/1.1\r\n\r\n"),
              HttpParser::Status::Error);
  }
}

TEST(HttpParserTorture, BadVersionIs505) {
  HttpParser parser;
  ASSERT_EQ(parser.feed("GET / HTTP/2.0\r\n\r\n"), HttpParser::Status::Error);
  EXPECT_EQ(parser.error_status(), 505);
}

TEST(HttpParserTorture, MalformedHeadersAre400) {
  for (const char* wire :
       {"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",
        "GET / HTTP/1.1\r\n: empty-name\r\n\r\n",
        "GET / HTTP/1.1\r\nBad Name: x\r\n\r\n",
        "GET / HTTP/1.1\r\nContent-Length: 12x\r\n\r\n",
        "GET / HTTP/1.1\r\nContent-Length: -5\r\n\r\n"}) {
    HttpParser parser;
    ASSERT_EQ(parser.feed(wire), HttpParser::Status::Error) << wire;
    EXPECT_EQ(parser.error_status(), 400) << wire;
  }
}

TEST(HttpParserTorture, OversizedHeadIs431) {
  HttpParser parser(HttpParser::Limits{128, 1024});
  std::string wire = "GET / HTTP/1.1\r\nX-Big: ";
  wire += std::string(200, 'a');
  ASSERT_EQ(parser.feed(wire), HttpParser::Status::Error);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParserTorture, OversizedBodyIs413BeforeTheBodyArrives) {
  HttpParser parser(HttpParser::Limits{1024, 64});
  // The declared length alone trips the limit — the server never buffers
  // the oversized body.
  ASSERT_EQ(parser.feed("POST / HTTP/1.1\r\nContent-Length: 65\r\n\r\n"),
            HttpParser::Status::Error);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpParserTorture, TransferEncodingIs501) {
  HttpParser parser;
  ASSERT_EQ(parser.feed("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n"
                        "\r\n"),
            HttpParser::Status::Error);
  EXPECT_EQ(parser.error_status(), 501);
}

TEST(HttpParserTorture, GarbageBeyondHeadCapWithoutBlankLineIs431) {
  HttpParser parser(HttpParser::Limits{64, 1024});
  // No terminating blank line ever arrives; the buffer cap bounds memory.
  ASSERT_EQ(parser.feed(std::string(100, 'x')), HttpParser::Status::Error);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpRender, ResponseCarriesContentLengthAndClose) {
  gateway::HttpResponse response;
  response.status = 404;
  response.body = "{}";
  const std::string keep = gateway::render_response(response, true);
  EXPECT_NE(keep.find("HTTP/1.1 404 Not Found\r\n"), std::string::npos);
  EXPECT_NE(keep.find("Content-Length: 2\r\n"), std::string::npos);
  EXPECT_EQ(keep.find("Connection: close"), std::string::npos);
  const std::string close = gateway::render_response(response, false);
  EXPECT_NE(close.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(close.substr(close.size() - 2), "{}");
}

TEST(HttpRender, UrlDecodeHandlesEscapesAndKeepsMalformed) {
  EXPECT_EQ(gateway::url_decode("a%20b%2Fc"), "a b/c");
  EXPECT_EQ(gateway::url_decode("a+b"), "a+b");  // '+' is not a space
  EXPECT_EQ(gateway::url_decode("bad%2"), "bad%2");
  EXPECT_EQ(gateway::url_decode("bad%zz"), "bad%zz");
}

// ---- routing without sockets ------------------------------------------------

gateway::HttpRequest make_request(const std::string& method,
                                  const std::string& target,
                                  const std::string& body = "") {
  HttpParser parser;
  std::string wire = method + " " + target + " HTTP/1.1\r\n";
  if (!body.empty()) {
    wire += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  wire += "\r\n" + body;
  EXPECT_EQ(parser.feed(wire), HttpParser::Status::Ready);
  return parser.take_request();
}

TEST(GatewayRoute, ErrorTaxonomyRoundTripsThroughHttpAndJson) {
  // Every api::Error code → its HTTP status → a JSON body that decodes
  // back to the same code. The wire contract of docs/GATEWAY.md.
  constexpr api::ErrorCode kCodes[] = {
      api::ErrorCode::InvalidArgument, api::ErrorCode::NotFound,
      api::ErrorCode::Busy,            api::ErrorCode::QueueFull,
      api::ErrorCode::Draining,        api::ErrorCode::Unavailable,
      api::ErrorCode::Timeout,         api::ErrorCode::Protocol,
      api::ErrorCode::Unsupported,     api::ErrorCode::Internal,
  };
  for (const api::ErrorCode code : kCodes) {
    const api::Error error{code, "synthetic", 0};
    const obs::Json body = api::error_to_json(error);
    const api::Error back = api::error_from_json(
        obs::Json::parse(body.dump()));
    EXPECT_EQ(back.code, code) << api::error_code_name(code);
    EXPECT_EQ(api::error_http_status(back.code),
              api::error_http_status(code));
  }
}

TEST(GatewayRoute, UnknownRouteAndWrongMethodShapes) {
  gateway::GatewayConfig config;
  config.listen = fresh_unix("gw-route");
  gateway::Gateway gw(std::move(config));

  const gateway::HttpResponse missing = gw.route(make_request("GET", "/nope"));
  EXPECT_EQ(missing.status, 404);
  EXPECT_EQ(api::error_from_json(obs::Json::parse(missing.body)).code,
            api::ErrorCode::NotFound);

  const gateway::HttpResponse wrong =
      gw.route(make_request("PUT", "/v1/jobs"));
  EXPECT_EQ(wrong.status, 405);
  ASSERT_TRUE(wrong.headers.count("Allow"));
  EXPECT_EQ(wrong.headers.at("Allow"), "GET, POST");

  const gateway::HttpResponse bad_id =
      gw.route(make_request("GET", "/v1/jobs/not-a-number"));
  EXPECT_EQ(bad_id.status, 404);

  const gateway::HttpResponse health = gw.route(make_request("GET", "/healthz"));
  EXPECT_EQ(health.status, 200);
  const obs::Json doc = obs::Json::parse(health.body);
  EXPECT_EQ(doc.at("status").as_string(), "ok");

  const gateway::HttpResponse metrics = gw.route(make_request("GET", "/metrics"));
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.content_type.find("text/plain"), std::string::npos);
}

TEST(GatewayRoute, MalformedJsonBodiesAre400) {
  gateway::GatewayConfig config;
  config.listen = fresh_unix("gw-badjson");
  gateway::Gateway gw(std::move(config));
  for (const char* body : {"not json", "[1]", "{\"bogus\": 1}"}) {
    const gateway::HttpResponse response =
        gw.route(make_request("POST", "/v1/evaluations", body));
    EXPECT_EQ(response.status, 400) << body;
    EXPECT_EQ(api::error_from_json(obs::Json::parse(response.body)).code,
              api::ErrorCode::InvalidArgument)
        << body;
  }
}

TEST(GatewayRoute, UnconfiguredBackendsSurfaceTaxonomyCodes) {
  gateway::GatewayConfig config;
  config.listen = fresh_unix("gw-nobackend");
  gateway::Gateway gw(std::move(config));
  // No evaluator: a valid evaluation body is answered with the
  // InvalidArgument → 400 mapping from the facade.
  const gateway::HttpResponse eval = gw.route(make_request(
      "POST", "/v1/evaluations", "{\"spec\": \"S-1\", \"topology\": 0}"));
  EXPECT_EQ(eval.status, 400);
  // No scheduler: the jobs routes answer the same way.
  const gateway::HttpResponse jobs = gw.route(make_request("GET", "/v1/jobs"));
  EXPECT_EQ(jobs.status, 400);
}

// ---- end to end over a real socket ------------------------------------------

/// Gateway running on its own thread over TCP; drains on destruction.
struct TestGateway {
  gateway::Gateway gw;
  std::thread thread;

  explicit TestGateway(gateway::GatewayConfig config)
      : gw(std::move(config)) {
    gw.bind();
    thread = std::thread([this] { gw.run(); });
  }
  ~TestGateway() { stop(); }
  void stop() {
    if (thread.joinable()) {
      gw.begin_drain();
      thread.join();
    }
  }
};

/// Minimal blocking HTTP client for the tests: one request, whole reply.
struct RawConnection {
  svc::Fd fd;

  explicit RawConnection(const svc::Address& address)
      : fd(svc::connect_to(address)) {}

  void send(const std::string& bytes) {
    ASSERT_TRUE(svc::write_all(fd.get(), bytes));
  }

  /// Reads until the connection closes or `expect_bytes` of body per
  /// Content-Length have arrived (keep-alive replies don't close).
  std::string read_reply() {
    std::string buffer;
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::recv(fd.get(), chunk, sizeof chunk, 0);
      if (n <= 0) break;
      buffer.append(chunk, static_cast<std::size_t>(n));
      const std::size_t head_end = buffer.find("\r\n\r\n");
      if (head_end == std::string::npos) continue;
      const std::size_t cl = buffer.find("Content-Length: ");
      if (cl == std::string::npos || cl > head_end) continue;
      const std::size_t body_len = static_cast<std::size_t>(
          std::stoul(buffer.substr(cl + 16, buffer.find('\r', cl) - cl - 16)));
      if (buffer.size() >= head_end + 4 + body_len) break;
    }
    return buffer;
  }
};

svc::Address gateway_tcp_address() {
  // Bind port 0 to find a free port, close it, and hand the address to the
  // gateway. Races are possible but vanishingly rare in CI.
  const int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ::bind(probe, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  socklen_t len = sizeof addr;
  ::getsockname(probe, reinterpret_cast<sockaddr*>(&addr), &len);
  const int port = ntohs(addr.sin_port);
  ::close(probe);
  return svc::Address::parse("tcp:127.0.0.1:" + std::to_string(port));
}

TEST(GatewayEndToEnd, HealthzAndPipeliningOverTheWire) {
  gateway::GatewayConfig config;
  config.listen = gateway_tcp_address();
  TestGateway gw(std::move(config));

  RawConnection conn(gw.gw.config().listen);
  // Two pipelined requests in one write; both answered in order on the
  // same connection.
  conn.send("GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n");
  std::string reply = conn.read_reply();
  ASSERT_NE(reply.find("HTTP/1.1 200 OK"), std::string::npos);
  ASSERT_NE(reply.find("\"status\":\"ok\""), std::string::npos);
  // Keep reading until the second reply's Prometheus payload shows up.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (reply.find("intooa_gateway_requests_total") == std::string::npos &&
         std::chrono::steady_clock::now() < deadline) {
    char chunk[4096];
    const ssize_t n = ::recv(conn.fd.get(), chunk, sizeof chunk, MSG_DONTWAIT);
    if (n > 0) {
      reply.append(chunk, static_cast<std::size_t>(n));
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_NE(reply.find("intooa_gateway_requests_total"), std::string::npos);
}

TEST(GatewayEndToEnd, EvaluationMatchesBinaryProtocolDigest) {
  // An evaluation served over HTTP reports the same record digest as the
  // bytes served over the binary protocol — the transport-independence
  // contract the CI smoke checks with curl.
  svc::ServerConfig server_config;
  server_config.address = fresh_unix("gw-e2e-svc");
  server_config.threads = 2;
  svc::Server server(std::move(server_config));
  server.bind();
  std::thread server_thread([&] { server.run(); });

  gateway::GatewayConfig config;
  config.listen = gateway_tcp_address();
  config.evaluators = {server.config().address};
  TestGateway gw(std::move(config));

  const std::string body =
      "{\"spec\": \"S-1\", \"topology\": 2, \"sizing\": "
      "{\"init_points\": 2, \"iterations\": 2, \"candidates\": 16, "
      "\"refit_hyper_every\": 1}}";
  RawConnection conn(gw.gw.config().listen);
  conn.send("POST /v1/evaluations HTTP/1.1\r\nContent-Length: " +
            std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" +
            body);
  const std::string reply = conn.read_reply();
  ASSERT_NE(reply.find("HTTP/1.1 200 OK"), std::string::npos) << reply;
  const obs::Json doc =
      obs::Json::parse(reply.substr(reply.find("\r\n\r\n") + 4));

  // Recompute through the facade (the binary path) and compare digests.
  api::SessionConfig session_config;
  session_config.evaluators = {server.config().address};
  api::Session session(std::move(session_config));
  svc::EvalRequest request;
  request.spec = circuit::spec_by_name("S-1");
  request.topology_index = 2;
  request.sizing.init_points = 2;
  request.sizing.iterations = 2;
  request.sizing.candidates = 16;
  request.sizing.refit_hyper_every = 1;
  const auto outcome = session.evaluations().evaluate(request);
  ASSERT_TRUE(outcome.ok()) << outcome.error().message;
  EXPECT_EQ(doc.at("record_fnv1a").as_string(),
            api::fnv1a_hex(outcome.value().record_payload));

  gw.stop();
  server.begin_drain();
  server_thread.join();
}

TEST(GatewayEndToEnd, SlowlorisGetsA408WithinTheGrace) {
  gateway::GatewayConfig config;
  config.listen = gateway_tcp_address();
  config.request_grace_ms = 300;
  TestGateway gw(std::move(config));

  RawConnection conn(gw.gw.config().listen);
  conn.send("GET /healthz HTT");  // starts a request, never finishes it
  const auto started = std::chrono::steady_clock::now();
  const std::string reply = conn.read_reply();
  const auto waited = std::chrono::steady_clock::now() - started;
  EXPECT_NE(reply.find("HTTP/1.1 408 Request Timeout"), std::string::npos)
      << reply;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(waited)
                .count(),
            5000);
  const auto stats = gw.gw.stats();
  EXPECT_EQ(stats.timeouts, 1u);
}

TEST(GatewayEndToEnd, TricklingBytesDoNotExtendTheGrace) {
  gateway::GatewayConfig config;
  config.listen = gateway_tcp_address();
  config.request_grace_ms = 400;
  TestGateway gw(std::move(config));

  RawConnection conn(gw.gw.config().listen);
  std::atomic<bool> done{false};
  std::thread trickler([&] {
    // One byte every ~30ms keeps every poll slice non-idle, so an
    // idle-slice accounting of the grace would never fire; only the
    // wall-clock window can terminate this request.
    const std::string head = "GET /healthz HTTP/1.1\r\nX-Slow: ";
    std::size_t i = 0;
    while (!done.load()) {
      const char byte = i < head.size() ? head[i] : 'a';
      ++i;
      if (!svc::write_all(conn.fd.get(), std::string_view(&byte, 1))) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
  });
  const auto started = std::chrono::steady_clock::now();
  const std::string reply = conn.read_reply();
  const auto waited = std::chrono::steady_clock::now() - started;
  done.store(true);
  trickler.join();
  EXPECT_NE(reply.find("HTTP/1.1 408 Request Timeout"), std::string::npos)
      << reply;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(waited)
                .count(),
            5000);
  EXPECT_EQ(gw.gw.stats().timeouts, 1u);
}

TEST(GatewayEndToEnd, DrainLingerBoundsChattyKeepAliveClients) {
  gateway::GatewayConfig config;
  config.listen = gateway_tcp_address();
  config.drain_linger_ms = 500;
  gateway::Gateway gw(std::move(config));
  gw.bind();
  std::thread thread([&] { gw.run(); });
  gw.begin_drain();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // A client that keeps sending keep-alive requests throughout the linger
  // gets one 503 (Connection: close) and is cut loose — it cannot pin its
  // handler past the linger deadline, so run() returns on time.
  const auto started = std::chrono::steady_clock::now();
  std::thread chatty([&] {
    svc::Fd fd;
    try {
      fd = svc::connect_to(gw.config().listen);
    } catch (const std::exception&) {
      return;  // lost the race with the end of the linger window
    }
    for (int i = 0; i < 200; ++i) {
      if (!svc::write_all(fd.get(), "GET /healthz HTTP/1.1\r\n\r\n")) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });
  thread.join();
  const auto waited = std::chrono::steady_clock::now() - started;
  chatty.join();
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(waited)
                .count(),
            5000);
}

TEST(GatewayEndToEnd, AccessLogEscapesControlBytes) {
  const std::string log_path =
      (std::filesystem::temp_directory_path() /
       ("intooa-gw-log-" + std::to_string(::getpid()) + ".txt"))
          .string();
  std::filesystem::remove(log_path);
  gateway::GatewayConfig config;
  config.listen = gateway_tcp_address();
  config.access_log = log_path;
  TestGateway gw(std::move(config));

  // The parser strips \r only immediately before \n, so a bare carriage
  // return rides through in the target; the access log must escape it
  // instead of letting one request forge extra key=value fields.
  RawConnection conn(gw.gw.config().listen);
  conn.send("GET /a\rstatus=200 HTTP/1.1\r\nConnection: close\r\n\r\n");
  conn.read_reply();
  gw.stop();

  std::ifstream log(log_path);
  const std::string contents((std::istreambuf_iterator<char>(log)),
                             std::istreambuf_iterator<char>());
  std::filesystem::remove(log_path);
  EXPECT_NE(contents.find("target=/a%0Dstatus=200"), std::string::npos)
      << contents;
  EXPECT_EQ(contents.find('\r'), std::string::npos) << contents;
}

TEST(GatewayEndToEnd, ParserErrorsAnswerTheFailureStatus) {
  gateway::GatewayConfig config;
  config.listen = gateway_tcp_address();
  TestGateway gw(std::move(config));
  {
    RawConnection conn(gw.gw.config().listen);
    conn.send("GARBAGE\r\n\r\n");
    EXPECT_NE(conn.read_reply().find("HTTP/1.1 400"), std::string::npos);
  }
  {
    RawConnection conn(gw.gw.config().listen);
    conn.send("GET / HTTP/2.0\r\n\r\n");
    EXPECT_NE(conn.read_reply().find("HTTP/1.1 505"), std::string::npos);
  }
  {
    RawConnection conn(gw.gw.config().listen);
    conn.send("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
    EXPECT_NE(conn.read_reply().find("HTTP/1.1 501"), std::string::npos);
  }
  EXPECT_GE(gw.gw.stats().parse_errors, 3u);
}

TEST(GatewayEndToEnd, DrainAnswers503WithRetryAfterDuringLinger) {
  gateway::GatewayConfig config;
  config.listen = gateway_tcp_address();
  config.drain_linger_ms = 2000;
  config.retry_after_s = 7;
  gateway::Gateway gw(std::move(config));
  gw.bind();
  std::thread thread([&] { gw.run(); });

  {
    RawConnection conn(gw.config().listen);
    conn.send("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
    EXPECT_NE(conn.read_reply().find("HTTP/1.1 200 OK"), std::string::npos);
  }
  gw.begin_drain();
  // During the linger window new connections are accepted and answered
  // 503 with the configured Retry-After.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  {
    RawConnection conn(gw.config().listen);
    conn.send("GET /healthz HTTP/1.1\r\n\r\n");
    const std::string reply = conn.read_reply();
    EXPECT_NE(reply.find("HTTP/1.1 503 Service Unavailable"),
              std::string::npos)
        << reply;
    EXPECT_NE(reply.find("Retry-After: 7"), std::string::npos) << reply;
    const obs::Json doc =
        obs::Json::parse(reply.substr(reply.find("\r\n\r\n") + 4));
    EXPECT_EQ(api::error_from_json(doc).code, api::ErrorCode::Draining);
  }
  thread.join();
}

TEST(GatewayEndToEnd, ConnectionThreadsAreReaped) {
  gateway::GatewayConfig config;
  config.listen = gateway_tcp_address();
  TestGateway gw(std::move(config));
  for (int i = 0; i < 20; ++i) {
    RawConnection conn(gw.gw.config().listen);
    conn.send("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
    conn.read_reply();
  }
  // One extra round makes the accept loop reap the finished handlers.
  RawConnection last(gw.gw.config().listen);
  last.send("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
  last.read_reply();
  EXPECT_EQ(gw.gw.stats().connections, 21u);
  EXPECT_LE(gw.gw.connection_thread_count(), 8u);
}

}  // namespace
