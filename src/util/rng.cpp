#include "util/rng.hpp"

#include <cmath>

namespace intooa::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  has_cached_normal_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform: lo > hi");
  return lo + (hi - lo) * uniform();
}

double Rng::log_uniform(double lo, double hi) {
  if (lo <= 0.0 || hi <= 0.0) {
    throw std::invalid_argument("Rng::log_uniform: bounds must be positive");
  }
  return std::exp(uniform(std::log(lo), std::log(hi)));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

std::size_t Rng::index(std::size_t n) {
  if (n == 0) throw std::invalid_argument("Rng::index: n must be > 0");
  // Lemire's method with rejection to remove modulo bias.
  const std::uint64_t bound = n;
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::size_t>(m >> 64);
}

std::int64_t Rng::integer(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::integer: lo > hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1ULL;
  return lo + static_cast<std::int64_t>(index(static_cast<std::size_t>(span)));
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("Rng::sample_indices: k > n");
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    std::swap(pool[i], pool[i + index(n - i)]);
  }
  pool.resize(k);
  return pool;
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace intooa::util
