#pragma once
// Byte-budgeted LRU map from a 64-bit digest to an immutable byte string —
// the memory-bounding layer for daemon-resident result caches (the svc
// server's per-shard response cache, and anything else that would
// otherwise grow without bound in a long-lived scheduler process).
//
// Accounting charges each entry its payload size plus a fixed overhead
// estimate for the list/map nodes, so the budget approximates resident
// bytes rather than just payload bytes. A budget of 0 means unlimited
// (the historical behavior). Not thread-safe: callers hold their own lock
// (the svc shard mutex already serializes cache access).

#include <cstddef>
#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>

namespace intooa::util {

class LruByteCache {
 public:
  /// Rough per-entry bookkeeping cost (list node + hash slot + string
  /// header) charged on top of the payload bytes.
  static constexpr std::size_t kEntryOverhead = 64;

  /// budget_bytes == 0 disables eviction entirely.
  explicit LruByteCache(std::size_t budget_bytes = 0)
      : budget_(budget_bytes) {}

  /// Pointer to the cached value (touched most-recently-used), or nullptr.
  /// The pointer stays valid until the next insert().
  const std::string* find(std::uint64_t key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  /// Inserts (or replaces) an entry, then evicts least-recently-used
  /// entries until the budget holds again. Returns how many entries were
  /// evicted. An entry larger than the whole budget is admitted alone and
  /// evicted by the next insert — the cache never rejects outright, so a
  /// just-computed result is always servable.
  std::size_t insert(std::uint64_t key, std::string value) {
    const auto it = index_.find(key);
    if (it != index_.end()) {
      bytes_ -= charge(it->second->second);
      bytes_ += charge(value);
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
    } else {
      bytes_ += charge(value);
      order_.emplace_front(key, std::move(value));
      index_[key] = order_.begin();
    }
    std::size_t evicted = 0;
    while (budget_ != 0 && bytes_ > budget_ && order_.size() > 1) {
      const auto& victim = order_.back();
      bytes_ -= charge(victim.second);
      index_.erase(victim.first);
      order_.pop_back();
      ++evicted;
      ++evictions_;
    }
    return evicted;
  }

  std::size_t size() const { return order_.size(); }
  std::size_t bytes() const { return bytes_; }
  std::size_t budget() const { return budget_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  static std::size_t charge(const std::string& value) {
    return value.size() + kEntryOverhead;
  }

  std::size_t budget_;
  std::size_t bytes_ = 0;
  std::uint64_t evictions_ = 0;
  /// front = most recently used.
  std::list<std::pair<std::uint64_t, std::string>> order_;
  std::unordered_map<std::uint64_t,
                     std::list<std::pair<std::uint64_t, std::string>>::iterator>
      index_;
};

}  // namespace intooa::util
