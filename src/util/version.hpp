#pragma once
// Build identity stamp, configured by CMake at generate time (see
// src/util/CMakeLists.txt): the git describe of the checkout, the CMake
// build type, and the active sanitizer, e.g.
//
//   "v1.0.0-29-g29e9fe6 (Release)"
//   "29e9fe6-dirty (Debug, asan+ubsan)"
//
// Every binary answers --version with it (handled centrally in
// util::Cli::reject_unknown), and the svc Hello logging on both ends
// includes it so cross-version client/server pairs are visible in logs.

#include <string>

namespace intooa::util {

/// "<git-describe> (<build-type>[, <sanitizer>])". Stable for the lifetime
/// of the binary.
const std::string& version_string();

}  // namespace intooa::util
