#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace intooa::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double variance(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("quantile: empty sample");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q out of range");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::size_t argmax(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("argmax: empty sample");
  return static_cast<std::size_t>(
      std::max_element(xs.begin(), xs.end()) - xs.begin());
}

std::size_t argmin(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("argmin: empty sample");
  return static_cast<std::size_t>(
      std::min_element(xs.begin(), xs.end()) - xs.begin());
}

std::vector<double> running_max(std::span<const double> xs) {
  std::vector<double> out;
  out.reserve(xs.size());
  double best = -std::numeric_limits<double>::infinity();
  for (double x : xs) {
    best = std::max(best, x);
    out.push_back(best);
  }
  return out;
}

double normal_pdf(double z) {
  static constexpr double kInvSqrt2Pi = 0.3989422804014327;
  return kInvSqrt2Pi * std::exp(-0.5 * z * z);
}

double normal_cdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("pearson: size mismatch");
  }
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  return s;
}

}  // namespace intooa::util
