#pragma once
// Deterministic, fast pseudo-random number generation for reproducible
// experiments. All stochastic components of the library (initial sampling,
// candidate generation, GA operators, VAE initialization, sizing BO) draw
// from an explicitly threaded Rng so every experiment is replayable from a
// single seed.

#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

namespace intooa::util {

/// xoshiro256++ generator (Blackman & Vigna). Small state, excellent
/// statistical quality, and — unlike std::mt19937 — identical output across
/// standard-library implementations, which keeps experiment artifacts
/// byte-reproducible.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via SplitMix64 so that
  /// nearby seeds produce uncorrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initializes the state from `seed`; the generator then replays the
  /// exact sequence it would produce if freshly constructed.
  void reseed(std::uint64_t seed);

  /// Raw 64 uniformly random bits.
  std::uint64_t next_u64();

  // UniformRandomBitGenerator interface (usable with <random> and
  // std::shuffle).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Log-uniform double in [lo, hi); both bounds must be positive. Used for
  /// sizing parameters (gm, R, C) that span several decades.
  double log_uniform(double lo, double hi);

  /// Standard normal deviate (Box–Muller with caching).
  double normal();

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's unbiased
  /// bounded-rejection method.
  std::size_t index(std::size_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t integer(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p);

  /// Uniformly selects one element of the non-empty span.
  template <typename T>
  const T& choice(std::span<const T> items) {
    if (items.empty()) throw std::invalid_argument("Rng::choice: empty span");
    return items[index(items.size())];
  }
  template <typename T>
  const T& choice(const std::vector<T>& items) {
    return choice(std::span<const T>(items));
  }

  /// Fisher–Yates shuffle of the vector in place.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[index(i)]);
    }
  }

  /// Samples `k` distinct indices from [0, n) uniformly (partial
  /// Fisher–Yates). Requires k <= n.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// Forks an independent child stream; used to give each optimization run
  /// its own generator while preserving top-level reproducibility.
  Rng split();

 private:
  std::uint64_t s_[4]{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace intooa::util
