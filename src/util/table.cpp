#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace intooa::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_ascii() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto rule = [&]() {
    std::string s = "+";
    for (auto w : widths) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      s += " " + cells[c] + std::string(widths[c] - cells[c].size(), ' ') + " |";
    }
    return s + "\n";
  };
  std::string out = rule() + line(headers_) + rule();
  for (const auto& row : rows_) out += line(row);
  out += rule();
  return out;
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  return out + "\"";
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (c ? "," : "") << csv_escape(headers_[c]);
  }
  out << "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c ? "," : "") << csv_escape(row[c]);
    }
    out << "\n";
  }
  return out.str();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("Table::write_csv: cannot open " + path);
  file << to_csv();
  if (!file) throw std::runtime_error("Table::write_csv: write failed " + path);
}

std::string fmt(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
  return buf;
}

std::string fmt_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string fmt_speedup(double ratio) { return fmt_fixed(ratio, 2) + "x"; }

std::string fmt_rate(int successes, int total) {
  return std::to_string(successes) + "/" + std::to_string(total);
}

std::string fmt_si(double value, int decimals) {
  if (value == 0.0) return fmt_fixed(0.0, decimals);
  static constexpr const char* kPrefixes[] = {"f", "p", "n", "u", "m", "",
                                              "k", "M", "G", "T"};
  const double mag = std::fabs(value);
  int idx = static_cast<int>(std::floor(std::log10(mag) / 3.0)) + 5;
  idx = std::clamp(idx, 0, 9);
  const double scaled = value / std::pow(10.0, 3.0 * (idx - 5));
  return fmt_fixed(scaled, decimals) + kPrefixes[idx];
}

}  // namespace intooa::util
