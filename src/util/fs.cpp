#include "util/fs.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <stdexcept>

namespace intooa::util {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

void fsync_fd(int fd, const std::string& what) {
  if (::fsync(fd) != 0) fail("fsync " + what);
}

void fsync_parent_dir(const std::string& path) {
  std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (parent.empty()) parent = ".";
  const int fd = ::open(parent.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) fail("open dir " + parent.string());
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  if (!ok) fail("fsync dir " + parent.string());
}

void atomic_write_file(const std::string& path, std::string_view contents) {
  const std::filesystem::path target(path);
  if (target.has_parent_path()) {
    std::filesystem::create_directories(target.parent_path());
  }
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("atomic_write_file: open " + tmp);
  const char* data = contents.data();
  std::size_t left = contents.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      fail("atomic_write_file: write " + tmp);
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    fail("atomic_write_file: fsync " + tmp);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    fail("atomic_write_file: rename " + tmp + " -> " + path);
  }
  fsync_parent_dir(path);
}

}  // namespace intooa::util
