#pragma once
// ASCII table and CSV emitters used by the benchmark harnesses to print
// rows in the same layout as the paper's tables, and to dump Fig. 5-style
// curve data for external plotting.

#include <string>
#include <vector>

namespace intooa::util {

/// Accumulates rows of string cells and renders them as an aligned ASCII
/// table (for terminal output) or CSV (for plotting scripts).
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; the row is padded with empty cells or truncated to the
  /// header width.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows.
  std::size_t rows() const { return rows_.size(); }

  /// Renders an aligned, boxed ASCII table.
  std::string to_ascii() const;

  /// Renders RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  std::string to_csv() const;

  /// Writes the CSV rendering to `path`; throws std::runtime_error on I/O
  /// failure.
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant digits (paper tables use 2-5).
std::string fmt(double value, int digits = 4);

/// Formats a double in fixed notation with `decimals` digits after the
/// point (e.g. success rates, phase margins).
std::string fmt_fixed(double value, int decimals = 2);

/// Formats a ratio as the paper prints speedups, e.g. "14.33x".
std::string fmt_speedup(double ratio);

/// Formats "k/n" success-rate cells.
std::string fmt_rate(int successes, int total);

/// Engineering-notation formatting with SI prefix (e.g. 4.7e-12 -> "4.70p"),
/// used when printing netlists and sized component values.
std::string fmt_si(double value, int decimals = 2);

}  // namespace intooa::util
