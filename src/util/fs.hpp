#pragma once
// Durable filesystem primitives shared by every on-disk persistence layer
// (runtime checkpoints, the evaluation store). The core operation is the
// classic crash-safe publish sequence: write a private temp file, fsync it,
// rename it over the target, then fsync the parent directory so the rename
// itself survives a power cut. A reader therefore observes either the old
// file, the new file, or no file — never a torn one, and never a file whose
// name exists but whose contents were lost.

#include <string>
#include <string_view>

namespace intooa::util {

/// Atomically and durably replaces `path` with `contents`. Parent
/// directories are created. The temp file name embeds the process id so
/// concurrent writers from different processes never clobber each other's
/// staging file (last rename wins). Throws std::runtime_error on any I/O
/// failure, removing the temp file best-effort.
void atomic_write_file(const std::string& path, std::string_view contents);

/// fsyncs an open file descriptor; throws std::runtime_error on failure.
void fsync_fd(int fd, const std::string& what);

/// fsyncs the directory containing `path` (durability of create/rename).
/// Throws std::runtime_error on failure.
void fsync_parent_dir(const std::string& path);

}  // namespace intooa::util
