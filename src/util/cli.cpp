#include "util/cli.hpp"

#include <stdexcept>

namespace intooa::util {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string key = arg.substr(2);
    const auto eq = key.find('=');
    if (eq != std::string::npos) {
      values_[key.substr(0, eq)] = key.substr(eq + 1);
      continue;
    }
    // "--key value" unless the next token is itself a flag (then boolean).
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[key] = argv[++i];
    } else {
      values_[key] = "";
    }
  }
}

bool Cli::has(const std::string& key) const { return values_.count(key) > 0; }

std::string Cli::get(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

long Cli::get_int(const std::string& key, long fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return fallback;
  try {
    return std::stol(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("Cli: flag --" + key + " expects an integer, got '" +
                                it->second + "'");
  }
}

std::size_t Cli::get_size(const std::string& key, std::size_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return fallback;
  const long value = get_int(key, 0);
  if (value < 0) {
    throw std::invalid_argument("Cli: flag --" + key +
                                " expects a non-negative integer, got '" +
                                it->second + "'");
  }
  return static_cast<std::size_t>(value);
}

double Cli::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("Cli: flag --" + key + " expects a number, got '" +
                                it->second + "'");
  }
}

}  // namespace intooa::util
