#include "util/cli.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "util/version.hpp"

namespace intooa::util {

namespace {

/// Levenshtein distance capped at 3 (enough to spot one-slip typos like
/// "--stroe" for "--store" without quadratic blowup on long flags).
std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

}  // namespace

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0 && argv[0] != nullptr) {
    std::string_view name = argv[0];
    const auto slash = name.rfind('/');
    if (slash != std::string_view::npos) name.remove_prefix(slash + 1);
    if (!name.empty()) program_ = std::string(name);
  }
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string key = arg.substr(2);
    const auto eq = key.find('=');
    if (eq != std::string::npos) {
      key.resize(eq);
      if (values_.count(key) == 0) flag_order_.push_back(key);
      values_[key] = std::string(arg.substr(2 + eq + 1));
      continue;
    }
    if (values_.count(key) == 0) flag_order_.push_back(key);
    // "--key value" unless the next token is itself a flag (then boolean).
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[key] = argv[++i];
    } else {
      values_[key] = "";
    }
  }
}

std::vector<std::string> Cli::unknown_flags(
    std::span<const std::string_view> known) const {
  std::vector<std::string> unknown;
  for (const auto& flag : flag_order_) {
    bool matched = false;
    for (const auto entry : known) {
      if (!entry.empty() && entry.back() == '*') {
        matched = flag.rfind(entry.substr(0, entry.size() - 1), 0) == 0;
      } else {
        matched = flag == entry;
      }
      if (matched) break;
    }
    if (!matched) unknown.push_back(flag);
  }
  return unknown;
}

std::vector<std::string> Cli::unknown_flags(
    std::initializer_list<std::string_view> known) const {
  return unknown_flags(
      std::span<const std::string_view>(known.begin(), known.size()));
}

void Cli::reject_unknown(std::span<const std::string_view> known) const {
  // Every binary that validates its flags answers --version for free: the
  // one call site keeps the stamp consistent across 12 benches, the
  // daemons, the svc client and the examples.
  if (has("version")) {
    std::printf("%s %s\n", program_.c_str(), version_string().c_str());
    std::exit(0);
  }
  const std::vector<std::string> unknown = unknown_flags(known);
  if (unknown.empty()) return;
  for (const auto& flag : unknown) {
    std::string hint;
    std::size_t best = 3;  // suggest only close matches
    for (const auto entry : known) {
      if (entry.empty() || entry.back() == '*') continue;
      const std::size_t d = edit_distance(flag, entry);
      if (d < best) {
        best = d;
        hint = std::string(entry);
      }
    }
    if (hint.empty()) {
      std::fprintf(stderr, "%s: unknown flag --%s\n", program_.c_str(),
                   flag.c_str());
    } else {
      std::fprintf(stderr, "%s: unknown flag --%s (did you mean --%s?)\n",
                   program_.c_str(), flag.c_str(), hint.c_str());
    }
  }
  std::string known_list;
  for (const auto entry : known) {
    known_list += known_list.empty() ? "--" : ", --";
    known_list += std::string(entry);
  }
  std::fprintf(stderr, "%s: accepted flags: %s\n", program_.c_str(),
               known_list.c_str());
  std::exit(2);
}

void Cli::reject_unknown(
    std::initializer_list<std::string_view> known) const {
  reject_unknown(
      std::span<const std::string_view>(known.begin(), known.size()));
}

bool Cli::has(const std::string& key) const { return values_.count(key) > 0; }

std::string Cli::get(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

long Cli::get_int(const std::string& key, long fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return fallback;
  try {
    return std::stol(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("Cli: flag --" + key + " expects an integer, got '" +
                                it->second + "'");
  }
}

std::size_t Cli::get_size(const std::string& key, std::size_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return fallback;
  const long value = get_int(key, 0);
  if (value < 0) {
    throw std::invalid_argument("Cli: flag --" + key +
                                " expects a non-negative integer, got '" +
                                it->second + "'");
  }
  return static_cast<std::size_t>(value);
}

double Cli::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("Cli: flag --" + key + " expects a number, got '" +
                                it->second + "'");
  }
}

}  // namespace intooa::util
