#pragma once
// Minimal leveled logging for long-running optimization campaigns. The
// benches raise the level to Info so users can watch run/iteration progress;
// tests leave it at Warn to keep output clean.

#include <string>

namespace intooa::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global minimum level that will be emitted.
void set_log_level(LogLevel level);

/// Current global minimum level.
LogLevel log_level();

/// Emits `message` to stderr with a level tag if `level` passes the filter.
void log(LogLevel level, const std::string& message);

/// Convenience wrappers.
void log_debug(const std::string& message);
void log_info(const std::string& message);
void log_warn(const std::string& message);
void log_error(const std::string& message);

}  // namespace intooa::util
