#pragma once
// Structured leveled logging for long-running optimization campaigns. Every
// line carries a monotonic timestamp (seconds since the process first
// logged), a small stable thread ordinal, and optional key=value fields:
//
//   [  12.345678 t03 INFO ] resumed run from checkpoint sims=400 path=...
//
// The benches raise the level to Info so users can watch run/iteration
// progress; tests leave it at Warn to keep output clean. Filtering is a
// single relaxed atomic load, and messages are passed as string_view so a
// filtered-out call never allocates.

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>

namespace intooa::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global minimum level that will be emitted.
void set_log_level(LogLevel level);

/// Current global minimum level.
LogLevel log_level();

/// Parses "debug" / "info" / "warn" / "error" / "off" (the --log-level
/// vocabulary). Returns nullopt on anything else.
std::optional<LogLevel> parse_log_level(std::string_view text);

/// Small stable per-thread ordinal: 0 for the first thread that logs or
/// asks (normally main), then 1, 2, ... in first-use order. Shared with the
/// trace writer so log lines and trace events agree on thread identity.
int thread_ordinal();

/// One key=value field attached to a log line. Values are pre-rendered so
/// the emit path stays a single formatted write under the mutex.
struct LogField {
  std::string_view key;
  std::string value;

  LogField(std::string_view k, std::string_view v) : key(k), value(v) {}
  LogField(std::string_view k, const char* v) : key(k), value(v) {}
  LogField(std::string_view k, const std::string& v) : key(k), value(v) {}
  LogField(std::string_view k, double v);
  LogField(std::string_view k, bool v) : key(k), value(v ? "true" : "false") {}
  LogField(std::string_view k, int v) : LogField(k, static_cast<long long>(v)) {}
  LogField(std::string_view k, long v) : LogField(k, static_cast<long long>(v)) {}
  LogField(std::string_view k, long long v);
  LogField(std::string_view k, unsigned v)
      : LogField(k, static_cast<unsigned long long>(v)) {}
  LogField(std::string_view k, unsigned long v)
      : LogField(k, static_cast<unsigned long long>(v)) {}
  LogField(std::string_view k, unsigned long long v);
};

/// Emits `message` (plus fields) to stderr if `level` passes the filter.
void log(LogLevel level, std::string_view message,
         std::initializer_list<LogField> fields);
void log(LogLevel level, std::string_view message);

/// Convenience wrappers.
void log_debug(std::string_view message);
void log_info(std::string_view message);
void log_warn(std::string_view message);
void log_error(std::string_view message);
void log_debug(std::string_view message, std::initializer_list<LogField> fields);
void log_info(std::string_view message, std::initializer_list<LogField> fields);
void log_warn(std::string_view message, std::initializer_list<LogField> fields);
void log_error(std::string_view message, std::initializer_list<LogField> fields);

}  // namespace intooa::util
