#pragma once
// Tiny command-line flag parser shared by the bench binaries and examples.
// Supports "--key value", "--key=value" and boolean "--flag" forms; anything
// else is collected as a positional argument.
//
// Binaries declare their accepted flags with reject_unknown(): a typo like
// "--stroe" then fails loudly with exit code 2 and a did-you-mean
// suggestion instead of being silently ignored (which used to mask typos —
// a mistyped --store quietly ran the whole campaign without persistence).

#include <cstddef>
#include <initializer_list>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace intooa::util {

/// Parsed command line. Flags are collected permissively; binaries then
/// validate them against their accepted set with reject_unknown().
class Cli {
 public:
  /// Parses argv (argv[0] is skipped and kept as the program name for
  /// error messages). Throws std::invalid_argument on a trailing "--key"
  /// with no value when the next token is another flag — such keys are
  /// treated as boolean instead, so parsing never fails.
  Cli(int argc, const char* const* argv);

  /// True if the flag was present (with or without a value).
  bool has(const std::string& key) const;

  /// String value of the flag, or `fallback` when absent.
  std::string get(const std::string& key, const std::string& fallback) const;

  /// Integer value of the flag, or `fallback` when absent.
  long get_int(const std::string& key, long fallback) const;

  /// Non-negative integer value of the flag, or `fallback` when absent.
  /// Throws std::invalid_argument on a negative or non-numeric value; used
  /// for count-like options (--threads, --runs) where -1 is never valid.
  std::size_t get_size(const std::string& key, std::size_t fallback) const;

  /// Double value of the flag, or `fallback` when absent.
  double get_double(const std::string& key, double fallback) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags present on the command line but absent from `known`, in
  /// parse order. A known entry ending in '*' is a prefix wildcard
  /// ("benchmark_*" accepts every google-benchmark passthrough flag).
  std::vector<std::string> unknown_flags(
      std::span<const std::string_view> known) const;
  std::vector<std::string> unknown_flags(
      std::initializer_list<std::string_view> known) const;

  /// Exits 2 with a "<program>: unknown flag --X" diagnostic (plus a
  /// did-you-mean suggestion when a known flag is within edit distance 2)
  /// when any parsed flag is not in `known`. Returns normally otherwise.
  /// Handles the global --version flag first: prints the program name and
  /// util::version_string() to stdout and exits 0, so every binary that
  /// validates its flags answers --version without per-binary wiring.
  void reject_unknown(std::span<const std::string_view> known) const;
  void reject_unknown(std::initializer_list<std::string_view> known) const;

  /// The binary name (basename of argv[0]; "cli" when argv is empty).
  const std::string& program() const { return program_; }

 private:
  std::string program_ = "cli";
  std::map<std::string, std::string> values_;
  std::vector<std::string> flag_order_;  ///< keys in first-seen parse order
  std::vector<std::string> positional_;
};

}  // namespace intooa::util
