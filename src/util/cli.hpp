#pragma once
// Tiny command-line flag parser shared by the bench binaries and examples.
// Supports "--key value", "--key=value" and boolean "--flag" forms; anything
// else is collected as a positional argument.

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace intooa::util {

/// Parsed command line. Unknown flags are accepted (the benches share a
/// common option set but each uses only a subset).
class Cli {
 public:
  /// Parses argv (argv[0] is skipped). Throws std::invalid_argument on a
  /// trailing "--key" with no value when the next token is another flag —
  /// such keys are treated as boolean instead, so parsing never fails.
  Cli(int argc, const char* const* argv);

  /// True if the flag was present (with or without a value).
  bool has(const std::string& key) const;

  /// String value of the flag, or `fallback` when absent.
  std::string get(const std::string& key, const std::string& fallback) const;

  /// Integer value of the flag, or `fallback` when absent.
  long get_int(const std::string& key, long fallback) const;

  /// Non-negative integer value of the flag, or `fallback` when absent.
  /// Throws std::invalid_argument on a negative or non-numeric value; used
  /// for count-like options (--threads, --runs) where -1 is never valid.
  std::size_t get_size(const std::string& key, std::size_t fallback) const;

  /// Double value of the flag, or `fallback` when absent.
  double get_double(const std::string& key, double fallback) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace intooa::util
