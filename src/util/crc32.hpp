#pragma once
// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, the zlib/PNG variant) used to
// frame records in the on-disk evaluation store: a torn or bit-flipped
// record fails its checksum and is treated as end-of-log instead of being
// parsed into garbage.

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace intooa::util {

/// CRC-32 of `data`, optionally chaining a previous crc (pass the prior
/// return value to checksum data split across buffers).
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t crc = 0);

inline std::uint32_t crc32(std::string_view data, std::uint32_t crc = 0) {
  return crc32(data.data(), data.size(), crc);
}

}  // namespace intooa::util
