#pragma once
// Small statistics helpers used by the experiment harnesses (averaging
// optimization curves over runs, success-rate tables) and by the Gaussian
// process code (standardizing targets).

#include <cstddef>
#include <span>
#include <vector>

namespace intooa::util {

/// Arithmetic mean; returns 0 for an empty span.
double mean(std::span<const double> xs);

/// Unbiased sample standard deviation (n-1 denominator); returns 0 when
/// fewer than two samples are present.
double stddev(std::span<const double> xs);

/// Population variance (n denominator); returns 0 for an empty span.
double variance(std::span<const double> xs);

/// Median via partial sort of a copy.
double median(std::span<const double> xs);

/// Linear-interpolated quantile, q in [0, 1].
double quantile(std::span<const double> xs, double q);

/// Index of the maximum element; requires a non-empty span.
std::size_t argmax(std::span<const double> xs);

/// Index of the minimum element; requires a non-empty span.
std::size_t argmin(std::span<const double> xs);

/// Element-wise running maximum: out[i] = max(xs[0..i]). Used to turn raw
/// per-iteration FoM traces into the monotone "best so far" curves of Fig. 5.
std::vector<double> running_max(std::span<const double> xs);

/// Standard normal probability density.
double normal_pdf(double z);

/// Standard normal cumulative distribution (via erfc for accuracy in the
/// tails, which matters for expected-improvement at well-explored points).
double normal_cdf(double z);

/// Pearson correlation of two equal-length samples; returns 0 if either
/// sample is degenerate.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Summary of a sample used by table printers.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Computes count/mean/stddev/min/max in one pass.
Summary summarize(std::span<const double> xs);

}  // namespace intooa::util
