#pragma once
// Little-endian binary (de)serialization primitives shared by every wire
// and on-disk format in the repo: the evaluation-store log payloads
// (store/record_io) and the evaluation-service frames (svc/protocol).
// Integers are fixed-width little-endian, doubles are raw IEEE-754 bits
// (so decoded values reproduce computations byte-for-byte), strings are
// u32-length-prefixed. Reading is fully bounds-checked: every accessor
// returns false instead of reading past the end, and a reader that did not
// consume its input exactly reports !done() — callers treat both as
// corruption, never as a partial success.

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace intooa::util {

// Every supported platform is little-endian; the static_assert turns a
// silent byte-order corruption into a build error.
static_assert(std::endian::native == std::endian::little,
              "intooa wire formats assume a little-endian host");

/// Appends fixed-width values to a byte string.
class WireWriter {
 public:
  explicit WireWriter(std::string& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.append(s.data(), s.size());
  }

 private:
  void raw(const void* p, std::size_t n) {
    out_.append(static_cast<const char*>(p), n);
  }
  std::string& out_;
};

/// Bounds-checked sequential reader over a byte view.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  bool u8(std::uint8_t& v) { return raw(&v, sizeof v); }
  bool u32(std::uint32_t& v) { return raw(&v, sizeof v); }
  bool u64(std::uint64_t& v) { return raw(&v, sizeof v); }
  bool f64(double& v) { return raw(&v, sizeof v); }
  bool str(std::string& s) {
    std::uint32_t n = 0;
    if (!u32(n) || data_.size() - pos_ < n) return false;
    s.assign(data_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  /// True when the input was consumed exactly.
  bool done() const { return pos_ == data_.size(); }
  /// Bytes not yet consumed.
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  bool raw(void* p, std::size_t n) {
    if (data_.size() - pos_ < n) return false;
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace intooa::util
