#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace intooa::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  // stderr is unbuffered; without the lock, lines from parallel campaign
  // runs can interleave mid-message.
  static std::mutex emit_mutex;
  std::lock_guard<std::mutex> lock(emit_mutex);
  std::fprintf(stderr, "[%s] %s\n", tag(level), message.c_str());
}

void log_debug(const std::string& message) { log(LogLevel::Debug, message); }
void log_info(const std::string& message) { log(LogLevel::Info, message); }
void log_warn(const std::string& message) { log(LogLevel::Warn, message); }
void log_error(const std::string& message) { log(LogLevel::Error, message); }

}  // namespace intooa::util
