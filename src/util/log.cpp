#include "util/log.hpp"

#include <atomic>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace intooa::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

std::atomic<int> g_next_ordinal{0};
thread_local int t_ordinal = -1;

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    default: return "?????";
  }
}

/// Seconds since the first call in this process (monotonic clock).
double monotonic_seconds() {
  static const std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       origin)
      .count();
}

std::string number_to_string(double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  return ec == std::errc() ? std::string(buf, ptr) : std::string("nan");
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

std::optional<LogLevel> parse_log_level(std::string_view text) {
  if (text == "debug") return LogLevel::Debug;
  if (text == "info") return LogLevel::Info;
  if (text == "warn") return LogLevel::Warn;
  if (text == "error") return LogLevel::Error;
  if (text == "off") return LogLevel::Off;
  return std::nullopt;
}

int thread_ordinal() {
  if (t_ordinal < 0) {
    t_ordinal = g_next_ordinal.fetch_add(1, std::memory_order_relaxed);
  }
  return t_ordinal;
}

LogField::LogField(std::string_view k, double v)
    : key(k), value(number_to_string(v)) {}

LogField::LogField(std::string_view k, long long v)
    : key(k), value(std::to_string(v)) {}

LogField::LogField(std::string_view k, unsigned long long v)
    : key(k), value(std::to_string(v)) {}

void log(LogLevel level, std::string_view message,
         std::initializer_list<LogField> fields) {
  if (static_cast<int>(level) <
      static_cast<int>(g_level.load(std::memory_order_relaxed))) {
    return;
  }
  // Render off-lock so the critical section is one write; the lock keeps
  // lines from parallel campaign runs from interleaving mid-message.
  std::string line;
  line.reserve(message.size() + 32 * fields.size());
  line.append(message);
  for (const LogField& field : fields) {
    line.push_back(' ');
    line.append(field.key);
    line.push_back('=');
    line.append(field.value);
  }
  const double ts = monotonic_seconds();
  const int tid = thread_ordinal();
  static std::mutex emit_mutex;
  std::lock_guard<std::mutex> lock(emit_mutex);
  std::fprintf(stderr, "[%11.6f t%02d %s] %.*s\n", ts, tid, tag(level),
               static_cast<int>(line.size()), line.data());
}

void log(LogLevel level, std::string_view message) { log(level, message, {}); }

void log_debug(std::string_view message) { log(LogLevel::Debug, message, {}); }
void log_info(std::string_view message) { log(LogLevel::Info, message, {}); }
void log_warn(std::string_view message) { log(LogLevel::Warn, message, {}); }
void log_error(std::string_view message) { log(LogLevel::Error, message, {}); }

void log_debug(std::string_view message,
               std::initializer_list<LogField> fields) {
  log(LogLevel::Debug, message, fields);
}
void log_info(std::string_view message,
              std::initializer_list<LogField> fields) {
  log(LogLevel::Info, message, fields);
}
void log_warn(std::string_view message,
              std::initializer_list<LogField> fields) {
  log(LogLevel::Warn, message, fields);
}
void log_error(std::string_view message,
               std::initializer_list<LogField> fields) {
  log(LogLevel::Error, message, fields);
}

}  // namespace intooa::util
