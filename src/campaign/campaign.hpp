#pragma once
// Shared experiment-campaign driver. One "campaign" is one optimization run
// of one method on one spec with the paper's protocol (10 random initial
// topologies + 50 iterations, every topology sized with 10+30 BO
// simulations). Campaign sets (N repeated runs) are cached on disk so
// Fig. 5, Table II, Table III and Table V can share a single expensive
// computation.
//
// Historically this lived in bench/common; it moved under src/ so the
// scheduler daemon (src/sched) can execute the exact same campaign unit the
// benches do — same seeds, same checkpoints, same CSV bytes. bench/common
// keeps a thin shim header for the bench binaries.

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "circuit/spec.hpp"
#include "core/evaluator.hpp"
#include "store/store.hpp"
#include "svc/client_pool.hpp"
#include "util/cli.hpp"

namespace intooa::campaign {

/// The five methods of Sec. IV-A.
enum class Method { FeGa, VgaeBo, IntoOaR, IntoOaM, IntoOa };

/// All methods in the paper's table order.
const std::vector<Method>& all_methods();

/// Display name ("INTO-OA", "FE-GA", ...).
std::string method_name(Method method);

/// Inverse of method_name (exact match); nullopt on anything else. Used by
/// the scheduler protocol, which carries methods by display name so wire
/// payloads stay readable and enum reordering can never corrupt a job.
std::optional<Method> method_from_name(std::string_view name);

/// Campaign protocol parameters (defaults = paper).
struct CampaignParams {
  std::size_t runs = 10;
  std::size_t init_topologies = 10;
  std::size_t iterations = 50;
  std::size_t pool = 200;
  std::size_t sizing_init = 10;
  std::size_t sizing_iterations = 30;
  std::uint64_t seed = 2025;

  /// Simulations per topology evaluation.
  std::size_t sims_per_topology() const {
    return sizing_init + sizing_iterations;
  }
  /// Total simulation budget of one run.
  std::size_t budget() const {
    return (init_topologies + iterations) * sims_per_topology();
  }
  /// Stable token used in cache file names.
  std::string cache_token() const;

  friend bool operator==(const CampaignParams&,
                         const CampaignParams&) = default;
};

/// Outcome of one campaign run.
struct RunResult {
  bool success = false;
  double final_fom = 0.0;  ///< best feasible FoM (0 when failed)
  std::size_t best_topology_index = 0;
  std::string best_topology;
  double gain_db = 0.0, gbw_hz = 0.0, pm_deg = 0.0, power_w = 0.0;
  std::vector<double> best_values;  ///< sizing of the best design
  std::vector<double> curve;        ///< best feasible FoM after each simulation
};

/// N runs of one (spec, method) pair.
struct CampaignSet {
  std::string spec;
  Method method = Method::IntoOa;
  CampaignParams params;
  std::vector<RunResult> runs;

  /// Fraction helpers for the tables.
  int successes() const;
  double mean_final_fom() const;  ///< over successful runs (0 if none)
  std::vector<double> mean_curve() const;  ///< element-wise over all runs
  /// Mean number of simulations until the curve reaches `fom`; runs that
  /// never reach it count as the full budget.
  double mean_sims_to_reach(double fom) const;
  /// Index of the best successful run (highest FoM), if any.
  std::optional<std::size_t> best_run() const;
};

/// Derives the RunResult of a finished run from its evaluator state. Both
/// the live path and the checkpoint-resume path go through this one
/// function, so a restored run is identical to the original by
/// construction (every method selects its best design from the evaluator
/// with the same feasible-first ranking).
RunResult run_result_from_evaluator(const core::TopologyEvaluator& evaluator,
                                    const CampaignParams& params);

/// The derived seed of run `run_index`: a pure function of the campaign
/// seed, the method and the spec name. Shared by run_or_load and the
/// scheduler so a scheduled job reproduces the standalone seeds exactly.
std::uint64_t run_seed(const CampaignParams& params, Method method,
                       const std::string& spec_name, std::size_t run_index);

/// Campaign CSV cache file for one (spec, method, protocol) set.
std::string campaign_csv_path(const std::string& cache_dir,
                              const std::string& spec, Method method,
                              const CampaignParams& params);

/// Writes the campaign CSV cache (creating parent directories). The byte
/// layout is the scheduler's byte-identity contract: given equal RunResults
/// the file is identical however the campaign was executed.
void save_campaign_csv(const std::string& path, const CampaignSet& set);

/// Loads a campaign CSV cache; nullopt when absent, corrupt, or written
/// under a different run count.
std::optional<CampaignSet> load_campaign_csv(const std::string& path,
                                             const std::string& spec,
                                             Method method,
                                             const CampaignParams& params);

/// Identity stamp of one run: a checkpoint is only reusable for the exact
/// (spec, method, protocol, run, seed) it was written under.
std::string run_token(const std::string& spec, Method method,
                      const CampaignParams& params, std::size_t run_index,
                      std::uint64_t seed);

/// Checkpoint file of run `run_index` under `cache_dir`.
std::string run_checkpoint_path(const std::string& cache_dir,
                                const std::string& spec, Method method,
                                const CampaignParams& params,
                                std::size_t run_index);

/// Executes one campaign run, checkpointing the evaluator afterwards (or
/// restoring it up front when a matching checkpoint exists, skipping all
/// simulation work). This is the scheduler's unit of work: pass
/// run_seed(...) and run_token(...) for run r and the result — and the
/// published checkpoint — are byte-identical to the standalone bench run.
RunResult run_single(const std::string& spec_name, Method method,
                     const CampaignParams& params, std::uint64_t seed,
                     const std::string& checkpoint_path,
                     const std::string& checkpoint_token,
                     const std::shared_ptr<store::EvalStore>& store,
                     const std::shared_ptr<svc::ClientPool>& remote);

/// Runs (or loads from `cache_dir` if present) the campaign set. Pass an
/// empty cache_dir to disable caching. Progress is logged at Info level.
///
/// The runs are independent (each derives its own seed from params.seed,
/// the method and the run index) and are fanned across the global runtime
/// thread pool by runtime::CampaignRunner; results are byte-identical for
/// any thread count. With a non-empty cache_dir every finished run is
/// additionally checkpointed to `<cache_dir>/checkpoints/` (the full
/// evaluator history), so an interrupted campaign resumes from the
/// completed runs without re-simulating them.
///
/// With a non-null `store`, every run's evaluator additionally reads
/// through / writes behind to the shared persistent evaluation store: all
/// (seed x method) runs of the campaign — and any other campaign or
/// process pointed at the same file — reuse each other's sized results for
/// identical (spec, sizing protocol, topology) evaluations. Warm runs are
/// byte-identical to cold ones at any thread count; only where the results
/// come from changes.
///
/// With a non-null `remote`, every run's evaluator additionally consults
/// the distributed evaluation tier (--remote endpoints via
/// svc::ClientPool) on store misses, falling back to its local sizer when
/// no endpoint is reachable. Distributed campaigns are byte-identical to
/// in-process ones at any inflight depth and shard count.
CampaignSet run_or_load(const std::string& spec_name, Method method,
                        const CampaignParams& params,
                        const std::string& cache_dir,
                        std::shared_ptr<store::EvalStore> store = nullptr,
                        std::shared_ptr<svc::ClientPool> remote = nullptr);

/// Shared CLI handling for the campaign benches: reads --runs, --iters,
/// --init, --pool, --seed, --quick (3 runs, 20 iterations, pool 100,
/// sizing 5+15), --cache-dir (default "bench-cache"), --no-cache,
/// --store FILE (persistent cross-campaign evaluation store, opened once
/// per process and shared by every run), --remote ADDR[,ADDR...] (shard
/// evaluations across intooa-served endpoints; one shared pool per
/// process), --remote-inflight N (pipelined requests per connection,
/// default 4), and --threads N (worker threads for campaign runs and
/// candidate scoring; default = hardware concurrency, 1 = fully serial).
/// from_cli applies the thread count to the global runtime executor and
/// opens the store (throwing on an unusable store file).
struct BenchOptions {
  CampaignParams params;
  std::string cache_dir = "bench-cache";
  std::shared_ptr<store::EvalStore> store;  ///< from --store ("" = null)
  std::shared_ptr<svc::ClientPool> remote;  ///< from --remote ("" = null)
  std::size_t threads = 0;  ///< resolved count (>= 1) after from_cli

  static BenchOptions from_cli(const util::Cli& cli);
};

/// Opens the --store file named on the command line (null when the flag is
/// absent). For benches that do not go through BenchOptions.
std::shared_ptr<store::EvalStore> open_store_from_cli(const util::Cli& cli);

/// Builds the --remote client pool from the command line (null when the
/// flag is absent): a comma-separated endpoint list, each in
/// svc::Address::parse syntax, with --remote-inflight pipelined requests
/// per connection. Throws std::invalid_argument on an unparseable
/// endpoint. For benches that do not go through BenchOptions.
std::shared_ptr<svc::ClientPool> open_pool_from_cli(const util::Cli& cli);

/// Validates the command line against the shared campaign flags (--quick,
/// --runs, --iters, --init, --pool, --seed, --cache-dir, --no-cache,
/// --store, --remote, --remote-inflight, --threads), the telemetry flags
/// (--trace, --metrics, --log-level), and any bench-specific `extra`
/// flags; exits 2 with a did-you-mean diagnostic on anything else
/// (util::Cli::reject_unknown). Call it right after parsing, before any
/// flag is read.
void reject_unknown_flags(const util::Cli& cli,
                          std::initializer_list<std::string_view> extra = {});

/// The paper's reference FoM per spec (the dashed lines of Fig. 5):
/// 90% of the weakest method's mean final FoM among methods with at least
/// one success. Returns 0 when no method succeeded.
double reference_fom(const std::vector<CampaignSet>& sets_for_spec);

}  // namespace intooa::campaign
