#include "campaign/drain.hpp"

#include <csignal>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "obs/telemetry.hpp"

namespace intooa::campaign {

namespace {

std::atomic<int> g_drain_signal{0};

// Async-signal-safe: record the signal; force-exit on the second one (the
// escape hatch when a run wedges mid-drain).
void on_signal(int sig) {
  int expected = 0;
  if (!g_drain_signal.compare_exchange_strong(expected, sig,
                                              std::memory_order_relaxed)) {
    _exit(128 + sig);
  }
  // One line so an interactive ^C user knows the bench heard them. write()
  // is on the async-signal-safe list; fprintf is not.
  static const char message[] =
      "\ndraining: finishing in-flight runs, checkpointing, skipping the "
      "rest (signal again to force-quit)\n";
  [[maybe_unused]] const ssize_t n =
      write(STDERR_FILENO, message, sizeof(message) - 1);
}

}  // namespace

void install_drain_handler() {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction action {};
    action.sa_handler = on_signal;
    sigemptyset(&action.sa_mask);
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);
  });
}

int drain_signal() { return g_drain_signal.load(std::memory_order_relaxed); }

void exit_if_draining() {
  const int sig = drain_signal();
  if (sig == 0) return;
  // std::exit runs no stack unwinding, so the bench's BenchTelemetry
  // destructor would never fire: flush the trace/metrics sidecars here,
  // after the in-flight runs checkpointed, so an interrupted scheduled job
  // still leaves usable telemetry.
  obs::finalize_active_telemetry();
  std::fprintf(stderr,
               "campaign drained after signal %d: finished runs are "
               "checkpointed; re-run the same command to resume\n",
               sig);
  std::exit(128 + sig);
}

}  // namespace intooa::campaign
