#include "campaign/campaign.hpp"

#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <span>
#include <sstream>
#include <stdexcept>

#include "baselines/fega.hpp"
#include "baselines/vgae_bo.hpp"
#include "campaign/drain.hpp"
#include "core/optimizer.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "runtime/campaign_runner.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/executor.hpp"
#include "svc/remote_backend.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"

namespace intooa::campaign {

const std::vector<Method>& all_methods() {
  static const std::vector<Method> methods = {
      Method::FeGa, Method::VgaeBo, Method::IntoOaR, Method::IntoOaM,
      Method::IntoOa};
  return methods;
}

std::string method_name(Method method) {
  switch (method) {
    case Method::FeGa: return "FE-GA";
    case Method::VgaeBo: return "VGAE-BO";
    case Method::IntoOaR: return "INTO-OA-r";
    case Method::IntoOaM: return "INTO-OA-m";
    case Method::IntoOa: return "INTO-OA";
  }
  return "?";
}

std::optional<Method> method_from_name(std::string_view name) {
  for (Method method : all_methods()) {
    if (method_name(method) == name) return method;
  }
  return std::nullopt;
}

std::string CampaignParams::cache_token() const {
  // The leading "v2" stamps the deterministic-sizing protocol (the inner
  // sizing BO is seeded from the evaluation key, not the campaign stream):
  // campaign CSVs and checkpoints produced before that change are not
  // comparable and must never be silently reused.
  std::ostringstream out;
  out << "v2_r" << runs << "_i" << init_topologies << "x" << iterations
      << "_p" << pool << "_s" << sizing_init << "x" << sizing_iterations
      << "_seed" << seed;
  return out.str();
}

int CampaignSet::successes() const {
  int count = 0;
  for (const auto& run : runs) count += run.success;
  return count;
}

double CampaignSet::mean_final_fom() const {
  std::vector<double> foms;
  for (const auto& run : runs) {
    if (run.success) foms.push_back(run.final_fom);
  }
  return foms.empty() ? 0.0 : util::mean(foms);
}

std::vector<double> CampaignSet::mean_curve() const {
  std::vector<double> mean(params.budget(), 0.0);
  if (runs.empty()) return mean;
  for (const auto& run : runs) {
    for (std::size_t i = 0; i < mean.size() && i < run.curve.size(); ++i) {
      mean[i] += run.curve[i];
    }
  }
  for (auto& v : mean) v /= static_cast<double>(runs.size());
  return mean;
}

double CampaignSet::mean_sims_to_reach(double fom) const {
  if (runs.empty()) return static_cast<double>(params.budget());
  double total = 0.0;
  for (const auto& run : runs) {
    std::size_t sims = params.budget();
    for (std::size_t i = 0; i < run.curve.size(); ++i) {
      if (run.curve[i] >= fom) {
        sims = i + 1;
        break;
      }
    }
    total += static_cast<double>(sims);
  }
  return total / static_cast<double>(runs.size());
}

std::optional<std::size_t> CampaignSet::best_run() const {
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (!runs[i].success) continue;
    if (!best || runs[i].final_fom > runs[*best].final_fom) best = i;
  }
  return best;
}

std::string campaign_csv_path(const std::string& cache_dir,
                              const std::string& spec, Method method,
                              const CampaignParams& params) {
  return cache_dir + "/campaign_" + spec + "_" + method_name(method) + "_" +
         params.cache_token() + ".csv";
}

void save_campaign_csv(const std::string& path, const CampaignSet& set) {
  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path());
  std::ofstream out(path);
  if (!out) {
    util::log_warn("cannot write campaign cache " + path);
    return;
  }
  out.precision(12);
  for (const auto& run : set.runs) {
    out << "run," << run.success << "," << run.final_fom << ","
        << run.best_topology_index << "," << run.gain_db << "," << run.gbw_hz
        << "," << run.pm_deg << "," << run.power_w << ",\"" << run.best_topology
        << "\"\n";
    out << "values";
    for (double v : run.best_values) out << "," << v;
    out << "\ncurve";
    for (double v : run.curve) out << "," << v;
    out << "\n";
  }
}

std::optional<CampaignSet> load_campaign_csv(const std::string& path,
                                             const std::string& spec,
                                             Method method,
                                             const CampaignParams& params) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  CampaignSet set;
  set.spec = spec;
  set.method = method;
  set.params = params;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("run,", 0) != 0) return std::nullopt;  // corrupt
    RunResult run;
    {
      std::istringstream ss(line.substr(4));
      std::string field;
      std::getline(ss, field, ',');
      run.success = field == "1";
      std::getline(ss, field, ',');
      run.final_fom = std::stod(field);
      std::getline(ss, field, ',');
      run.best_topology_index = static_cast<std::size_t>(std::stoull(field));
      std::getline(ss, field, ',');
      run.gain_db = std::stod(field);
      std::getline(ss, field, ',');
      run.gbw_hz = std::stod(field);
      std::getline(ss, field, ',');
      run.pm_deg = std::stod(field);
      std::getline(ss, field, ',');
      run.power_w = std::stod(field);
      std::getline(ss, field);
      if (field.size() >= 2 && field.front() == '"' && field.back() == '"') {
        field = field.substr(1, field.size() - 2);
      }
      run.best_topology = field;
    }
    if (!std::getline(in, line) || line.rfind("values", 0) != 0) {
      return std::nullopt;
    }
    {
      std::istringstream ss(line.substr(6));
      std::string field;
      while (std::getline(ss, field, ',')) {
        if (!field.empty()) run.best_values.push_back(std::stod(field));
      }
    }
    if (!std::getline(in, line) || line.rfind("curve", 0) != 0) {
      return std::nullopt;
    }
    {
      std::istringstream ss(line.substr(5));
      std::string field;
      while (std::getline(ss, field, ',')) {
        if (!field.empty()) run.curve.push_back(std::stod(field));
      }
    }
    set.runs.push_back(std::move(run));
  }
  if (set.runs.size() != params.runs) return std::nullopt;
  return set;
}

namespace {

/// One trained VAE per process, shared by every VGAE-BO campaign (the
/// autoencoder is trained offline on unlabeled topologies, independent of
/// spec and run). The first caller trains under the mutex; parallel
/// campaign runs then copy the trained instance (see run_single).
baselines::Vae& shared_vae(const baselines::VaeConfig& config) {
  static std::mutex vae_mutex;
  static std::unique_ptr<baselines::Vae> vae;
  std::lock_guard<std::mutex> lock(vae_mutex);
  if (!vae) {
    util::log_info("training shared VGAE autoencoder (once per process)...");
    util::Rng rng(0xAEDC0DEULL);
    vae = std::make_unique<baselines::Vae>(config, rng);
    vae->train(rng);
    util::log_info("VGAE reconstruction accuracy: " +
                   std::to_string(vae->reconstruction_accuracy(500, rng)));
  }
  return *vae;
}

}  // namespace

std::uint64_t run_seed(const CampaignParams& params, Method method,
                       const std::string& spec_name, std::size_t run_index) {
  return params.seed * 1000003ULL +
         static_cast<std::uint64_t>(method) * 7919ULL +
         std::hash<std::string>{}(spec_name) % 104729ULL + run_index * 31ULL;
}

std::string run_token(const std::string& spec, Method method,
                      const CampaignParams& params, std::size_t run_index,
                      std::uint64_t seed) {
  std::ostringstream out;
  out << spec << "|" << method_name(method) << "|" << params.cache_token()
      << "|run" << run_index << "|seed" << seed;
  return out.str();
}

std::string run_checkpoint_path(const std::string& cache_dir,
                                const std::string& spec, Method method,
                                const CampaignParams& params,
                                std::size_t run_index) {
  return cache_dir + "/checkpoints/campaign_" + spec + "_" +
         method_name(method) + "_" + params.cache_token() + "_run" +
         std::to_string(run_index) + ".ckpt";
}

RunResult run_single(const std::string& spec_name, Method method,
                     const CampaignParams& params, std::uint64_t seed,
                     const std::string& checkpoint_path,
                     const std::string& checkpoint_token,
                     const std::shared_ptr<store::EvalStore>& store,
                     const std::shared_ptr<svc::ClientPool>& remote) {
  INTOOA_SPAN("campaign.run");
  const circuit::Spec& spec = circuit::spec_by_name(spec_name);
  sizing::SizingConfig sizing_config;
  sizing_config.init_points = params.sizing_init;
  sizing_config.iterations = params.sizing_iterations;
  core::TopologyEvaluator evaluator(sizing::EvalContext(spec), sizing_config);
  // Persistent tier below the in-memory cache: all runs of the sweep (and
  // any concurrent process on the same file) share one store. Attached
  // before checkpoint restore so restored records also populate the store.
  store::attach(evaluator, store);
  // Distributed tier below the store: store misses are sharded across the
  // --remote endpoints, with local sizing as the byte-identical fallback.
  if (remote) svc::attach(evaluator, remote);

  if (!checkpoint_path.empty() &&
      runtime::load_evaluator_checkpoint(checkpoint_path, checkpoint_token,
                                         evaluator)) {
    util::log_info("resumed " + checkpoint_token + " from checkpoint (" +
                   std::to_string(evaluator.total_simulations()) +
                   " simulations saved)");
    return run_result_from_evaluator(evaluator, params);
  }

  util::Rng rng(seed);
  switch (method) {
    case Method::IntoOa:
    case Method::IntoOaR:
    case Method::IntoOaM: {
      core::OptimizerConfig config;
      config.init_topologies = params.init_topologies;
      config.iterations = params.iterations;
      config.candidates.pool_size = params.pool;
      config.candidates.mutation_fraction =
          method == Method::IntoOa ? 0.5
          : method == Method::IntoOaM ? 1.0
                                      : 0.0;
      core::IntoOaOptimizer optimizer(config);
      optimizer.run(evaluator, rng);
      break;
    }
    case Method::FeGa: {
      baselines::FeGaConfig config;
      config.population = params.init_topologies;
      config.max_evaluations = params.init_topologies + params.iterations;
      baselines::FeGa(config).run(evaluator, rng);
      break;
    }
    case Method::VgaeBo: {
      baselines::VgaeBoConfig config;
      config.init_topologies = params.init_topologies;
      config.iterations = params.iterations;
      config.candidates = params.pool;
      // Copy the shared trained VAE: its forward passes cache per-layer
      // activations, so concurrent runs must not share one instance.
      baselines::Vae vae = shared_vae(config.vae);
      baselines::VgaeBo(config).run(evaluator, rng, vae);
      break;
    }
  }

  if (!checkpoint_path.empty()) {
    runtime::save_evaluator_checkpoint(checkpoint_path, checkpoint_token,
                                       evaluator);
  }
  return run_result_from_evaluator(evaluator, params);
}

RunResult run_result_from_evaluator(const core::TopologyEvaluator& evaluator,
                                    const CampaignParams& params) {
  // Mirrors how every method builds its OptimizationOutcome: feasible-first
  // best selection straight from the evaluator history.
  const auto best_feasible = evaluator.best_feasible();
  const auto best_any =
      best_feasible ? best_feasible : evaluator.best_overall();

  RunResult run;
  run.success = best_feasible.has_value();
  run.curve = evaluator.fom_curve();
  run.curve.resize(params.budget(), run.curve.empty() ? 0.0 : run.curve.back());
  if (best_any && run.success) {
    const auto& record = evaluator.history()[*best_any];
    run.final_fom = record.sized.best.fom;
    run.best_topology_index = record.topology.index();
    run.best_topology = record.topology.to_string();
    run.gain_db = record.sized.best.perf.gain_db;
    run.gbw_hz = record.sized.best.perf.gbw_hz;
    run.pm_deg = record.sized.best.perf.pm_deg;
    run.power_w = record.sized.best.perf.power_w;
    run.best_values = record.sized.best_values;
  }
  return run;
}

CampaignSet run_or_load(const std::string& spec_name, Method method,
                        const CampaignParams& params,
                        const std::string& cache_dir,
                        std::shared_ptr<store::EvalStore> store,
                        std::shared_ptr<svc::ClientPool> remote) {
  install_drain_handler();
  const std::string path =
      cache_dir.empty()
          ? ""
          : campaign_csv_path(cache_dir, spec_name, method, params);
  if (!path.empty()) {
    if (auto cached = load_campaign_csv(path, spec_name, method, params)) {
      util::log_info("loaded cached campaign " + path);
      return *cached;
    }
  }

  CampaignSet set;
  set.spec = spec_name;
  set.method = method;
  set.params = params;

  // Independent (seed x method) runs fan across the global pool; each job
  // depends only on its own derived seed, so the result vector is identical
  // for any thread count (and for a checkpoint-interrupt-resume sequence).
  std::vector<runtime::CampaignJob> jobs(params.runs);
  for (std::size_t r = 0; r < params.runs; ++r) {
    jobs[r].name = method_name(method) + " on " + spec_name + ": run " +
                   std::to_string(r + 1) + "/" + std::to_string(params.runs);
    jobs[r].seed = run_seed(params, method, spec_name, r);
    jobs[r].index = r;
  }
  // Campaign-level cache accounting: the sets of one bench run sequentially,
  // so the counter deltas across this campaign are exactly its own lookups.
  obs::Counter& hit_counter = obs::registry().counter("evaluator.cache_hit");
  obs::Counter& miss_counter = obs::registry().counter("evaluator.cache_miss");
  const std::uint64_t hits_before = hit_counter.value();
  const std::uint64_t misses_before = miss_counter.value();

  const runtime::CampaignRunner runner(runtime::global_pool());
  set.runs = runner.run<RunResult>(jobs, [&](const runtime::CampaignJob& job) {
    // Drain discipline (see campaign/drain.hpp): runs not yet started when
    // a SIGINT/SIGTERM arrives are skipped; runs already in flight finish
    // and checkpoint below.
    if (draining()) return RunResult{};
    const std::string ckpt_path =
        cache_dir.empty() ? ""
                          : run_checkpoint_path(cache_dir, spec_name, method,
                                                params, job.index);
    return run_single(spec_name, method, params, job.seed, ckpt_path,
                      run_token(spec_name, method, params, job.index,
                                job.seed),
                      store, remote);
  });
  // A drained campaign exits 128+signal here — after every in-flight run
  // has published its checkpoint, but before the campaign CSV is written
  // (a partial set must not be mistaken for a finished one).
  exit_if_draining();
  if (!path.empty()) save_campaign_csv(path, set);

  util::log_info(
      "campaign " + method_name(method) + " on " + spec_name + " done",
      {{"runs", set.runs.size()},
       {"successes", set.successes()},
       {"cache_hits", hit_counter.value() - hits_before},
       {"cache_misses", miss_counter.value() - misses_before}});
  if (remote) {
    const svc::ClientPoolStats pool_stats = remote->stats();
    util::log_info("remote pool totals",
                   {{"endpoints", pool_stats.endpoints.size()},
                    {"requests", pool_stats.requests()},
                    {"reconnects", pool_stats.reconnects()},
                    {"replays", pool_stats.replays()}});
  }
  return set;
}

std::shared_ptr<store::EvalStore> open_store_from_cli(const util::Cli& cli) {
  const std::string path = cli.get("store", "");
  if (path.empty()) return nullptr;
  return store::EvalStore::open(path);
}

std::shared_ptr<svc::ClientPool> open_pool_from_cli(const util::Cli& cli) {
  const std::string spec = cli.get("remote", "");
  if (spec.empty()) return nullptr;
  std::vector<svc::Address> endpoints;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string token = spec.substr(begin, end - begin);
    if (!token.empty()) endpoints.push_back(svc::Address::parse(token));
    begin = end + 1;
  }
  if (endpoints.empty()) {
    throw std::invalid_argument("--remote: no endpoints in \"" + spec + "\"");
  }
  svc::ClientPoolConfig config;
  config.max_inflight = cli.get_size("remote-inflight", config.max_inflight);
  auto pool =
      std::make_shared<svc::ClientPool>(std::move(endpoints), config);
  util::log_info("remote evaluation pool",
                 {{"endpoints", pool->endpoint_count()},
                  {"inflight", config.max_inflight}});
  return pool;
}

void reject_unknown_flags(const util::Cli& cli,
                          std::initializer_list<std::string_view> extra) {
  std::vector<std::string_view> known = {
      "quick",     "runs",     "iters",    "init",   "pool",
      "seed",      "cache-dir", "no-cache", "store",  "threads",
      "remote",    "remote-inflight",       "trace",  "metrics",
      "log-level"};
  known.insert(known.end(), extra.begin(), extra.end());
  cli.reject_unknown(std::span<const std::string_view>(known));
}

BenchOptions BenchOptions::from_cli(const util::Cli& cli) {
  BenchOptions options;
  if (cli.has("quick")) {
    options.params.runs = 3;
    options.params.iterations = 20;
    options.params.pool = 100;
    options.params.sizing_init = 5;
    options.params.sizing_iterations = 15;
  }
  options.params.runs = static_cast<std::size_t>(
      cli.get_int("runs", static_cast<long>(options.params.runs)));
  options.params.init_topologies = static_cast<std::size_t>(cli.get_int(
      "init", static_cast<long>(options.params.init_topologies)));
  options.params.iterations = static_cast<std::size_t>(
      cli.get_int("iters", static_cast<long>(options.params.iterations)));
  options.params.pool = static_cast<std::size_t>(
      cli.get_int("pool", static_cast<long>(options.params.pool)));
  options.params.seed = static_cast<std::uint64_t>(
      cli.get_int("seed", static_cast<long>(options.params.seed)));
  options.cache_dir = cli.get("cache-dir", options.cache_dir);
  if (cli.has("no-cache")) options.cache_dir.clear();
  options.store = open_store_from_cli(cli);
  options.remote = open_pool_from_cli(cli);
  options.threads = cli.get_size("threads", 0);  // 0 = hardware concurrency
  runtime::set_thread_count(options.threads);
  options.threads = runtime::thread_count();
  return options;
}

double reference_fom(const std::vector<CampaignSet>& sets_for_spec) {
  double weakest = 0.0;
  bool any = false;
  for (const auto& set : sets_for_spec) {
    if (set.successes() == 0) continue;
    const double fom = set.mean_final_fom();
    if (!any || fom < weakest) {
      weakest = fom;
      any = true;
    }
  }
  return any ? 0.9 * weakest : 0.0;
}

}  // namespace intooa::campaign
