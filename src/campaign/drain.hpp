#pragma once
// SIGINT/SIGTERM drain for the campaign benches — the same discipline as
// intooa-served: on the first signal, runs already admitted to the pool
// finish and publish their checkpoints (runtime::save_evaluator_checkpoint
// goes through util::atomic_write_file, so a checkpoint is either complete
// or absent), queued runs are skipped, and the bench exits 128+signal
// WITHOUT writing the campaign CSV cache — a partial campaign must never
// be mistaken for a finished one. Re-running the same command resumes from
// the published checkpoints. A second signal force-exits immediately.
//
// The handler is installed lazily by run_or_load(), so every campaign
// bench gets it without per-bench wiring; benches with hand-rolled run
// loops call install_drain_handler() + exit_if_draining() themselves.
//
// Before the exit, exit_if_draining() flushes the process's active
// obs::BenchTelemetry session (trace + metrics sidecars): std::exit skips
// stack destructors, so without the explicit flush an interrupted campaign
// would publish its checkpoints but lose its telemetry.

namespace intooa::campaign {

/// Installs the SIGINT/SIGTERM handler (idempotent, thread-safe).
void install_drain_handler();

/// The drain signal observed so far (0 = none). Async-signal-safe to set,
/// cheap to poll from run boundaries.
int drain_signal();

/// True once a drain signal arrived.
inline bool draining() { return drain_signal() != 0; }

/// Exits 128+signal when a drain signal arrived; returns otherwise. Call
/// at campaign boundaries, after in-flight work has checkpointed. Flushes
/// the active telemetry session (obs::finalize_active_telemetry) before
/// exiting so --trace/--metrics sidecars survive the interrupt.
void exit_if_draining();

}  // namespace intooa::campaign
