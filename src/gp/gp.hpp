#pragma once
// Gaussian process regression over R^d with maximum-likelihood
// hyperparameter selection — the surrogate of the continuous sizing BO
// (Sec. II-B). Targets are standardized internally; predictions are
// reported in original units.

#include <memory>
#include <span>
#include <vector>

#include "la/cholesky.hpp"
#include "la/matrix.hpp"

namespace intooa::gp {

/// Posterior prediction at one query point.
struct Prediction {
  double mean = 0.0;
  double variance = 0.0;  ///< always >= 0 (clamped)
};

/// Hyperparameters selected by maximum likelihood.
struct GpHyper {
  double lengthscale = 0.5;
  double signal_variance = 1.0;
  double noise_variance = 1e-6;
  double log_marginal_likelihood = 0.0;
};

/// GP regressor with an RBF kernel on [0,1]^d-normalized inputs.
///
/// Hyperparameters (lengthscale, noise) are chosen by exhaustive search
/// over a log grid — robust and easily fast enough at sizing-BO data sizes
/// (N <= 40). Signal variance is fixed at 1 because targets are
/// standardized to unit variance.
class GpRegressor {
 public:
  GpRegressor() = default;

  /// Fits the model to `inputs` (N rows, equal dimension) and `targets`
  /// (length N). Requires N >= 2 and non-degenerate targets are handled
  /// (constant targets yield a flat posterior at that constant).
  void fit(const std::vector<std::vector<double>>& inputs,
           std::span<const double> targets);

  /// True once fit() has succeeded.
  bool trained() const { return chol_ != nullptr; }

  /// Posterior mean/variance at `x` in original target units.
  Prediction predict(std::span<const double> x) const;

  /// Hyperparameters of the last fit.
  const GpHyper& hyper() const { return hyper_; }

  /// Number of training points.
  std::size_t size() const { return inputs_.size(); }

 private:
  double kernel_value(std::span<const double> a, std::span<const double> b,
                      double lengthscale) const;

  std::vector<std::vector<double>> inputs_;
  std::vector<double> alpha_;  // K^{-1} y (standardized)
  std::unique_ptr<la::Cholesky> chol_;
  GpHyper hyper_;
  double y_mean_ = 0.0;
  double y_scale_ = 1.0;
};

}  // namespace intooa::gp
