#pragma once
// Acquisition functions for constrained Bayesian optimization. The paper
// uses the weighted expected improvement (wEI) of Lyu et al. [1]:
//
//   wEI(x) = EI(x) * prod_i PF_i(x)
//
// where EI is the expected improvement of the objective over the best
// *feasible* observation and PF_i is the posterior probability that
// constraint i is satisfied. When no feasible point has been observed yet,
// the acquisition degenerates to pure feasibility search (prod PF_i), which
// is the standard behavior of wEI-family methods.

#include <span>

namespace intooa::gp {

/// Expected improvement for maximization: E[max(y - best, 0)] under
/// N(mean, variance). With variance ~ 0, returns max(mean - best, 0).
double expected_improvement(double mean, double variance, double best);

/// Probability that a constraint expressed as c <= 0 is satisfied under
/// N(mean, variance). With variance ~ 0, returns 1 or 0 deterministically.
double probability_feasible(double mean, double variance);

/// Inputs to weighted expected improvement.
struct WeiInputs {
  double objective_mean = 0.0;
  double objective_variance = 0.0;
  /// Best feasible objective value seen so far; ignored when
  /// have_feasible == false.
  double best_feasible = 0.0;
  bool have_feasible = false;
  /// Posterior means of the constraint metrics, expressed as c <= 0
  /// feasibility margins.
  std::span<const double> constraint_means;
  /// Posterior variances, same order/length as constraint_means.
  std::span<const double> constraint_variances;
};

/// Weighted expected improvement (maximization form). With no feasible
/// incumbent the EI factor is dropped: the score is the product of
/// feasibility probabilities alone.
double weighted_ei(const WeiInputs& in);

}  // namespace intooa::gp
