#include "gp/kernel.hpp"

#include <cmath>

namespace intooa::gp {

namespace {
double squared_distance(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("Kernel: dimension mismatch");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - y[i];
    acc += d * d;
  }
  return acc;
}

void check_params(double lengthscale, double signal_variance) {
  if (lengthscale <= 0.0) {
    throw std::invalid_argument("Kernel: lengthscale must be positive");
  }
  if (signal_variance <= 0.0) {
    throw std::invalid_argument("Kernel: signal variance must be positive");
  }
}
}  // namespace

RbfKernel::RbfKernel(double lengthscale, double signal_variance)
    : lengthscale_(lengthscale), signal_variance_(signal_variance) {
  check_params(lengthscale, signal_variance);
}

double RbfKernel::operator()(std::span<const double> x,
                             std::span<const double> y) const {
  const double d2 = squared_distance(x, y);
  return signal_variance_ * std::exp(-0.5 * d2 / (lengthscale_ * lengthscale_));
}

Matern52Kernel::Matern52Kernel(double lengthscale, double signal_variance)
    : lengthscale_(lengthscale), signal_variance_(signal_variance) {
  check_params(lengthscale, signal_variance);
}

double Matern52Kernel::operator()(std::span<const double> x,
                                  std::span<const double> y) const {
  const double r = std::sqrt(squared_distance(x, y)) / lengthscale_;
  const double sqrt5r = std::sqrt(5.0) * r;
  return signal_variance_ * (1.0 + sqrt5r + 5.0 * r * r / 3.0) *
         std::exp(-sqrt5r);
}

}  // namespace intooa::gp
