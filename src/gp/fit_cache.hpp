#pragma once
// Shared, incremental fit state for the per-metric WL-GPs of Algorithm 1.
//
// All per-metric models (objective + constraint margins) observe the *same*
// topologies and differ only in their target vector, and between BO
// iterations the dataset grows by exactly one record. Everything that
// depends only on the inputs is therefore computed once and extended
// incrementally instead of rebuilt once per model per iteration:
//
//   * full-depth WL feature vectors     — one featurization per record,
//   * per-depth filtered feature views  — one filter per (record, h),
//   * per-h base Gram matrices          — bordered by one row/column,
//   * per-(h, signal, noise) Cholesky factors of the MLE grid — extended
//     by la::Cholesky::append_row (O(n^2)) instead of refactorized
//     (O(n^3)).
//
// The border update is bit-identical to a from-scratch factorization (see
// Cholesky::append_row), so WlGp::fit_shared selects the same
// hyperparameters and produces the same posterior as independent full
// refits — verified by the Fig. 5 / Table II campaign CSVs, which are
// byte-identical to the pre-cache full-refit path.
//
// Grid factors are scored with zero jitter (Cholesky::try_exact): a cell
// whose factorization fails is skipped by model selection rather than
// silently rescued with jitter that would falsify its noise label. Once a
// cell fails it stays failed — a non-positive-definite leading block keeps
// every bordered extension non-positive-definite, and bit-identically so.

#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "graph/sparse.hpp"
#include "graph/wl.hpp"
#include "la/cholesky.hpp"
#include "la/matrix.hpp"

namespace intooa::gp {

/// Append-only cache of WL features, per-h Gram matrices and grid Cholesky
/// factors, shared by every WL-GP of one optimization.
class WlFitCache {
 public:
  /// `max_h` bounds the depths cached (0..max_h); must not exceed the
  /// featurizer's own max_h.
  WlFitCache(std::shared_ptr<graph::WlFeaturizer> featurizer, int max_h);

  /// Number of cached records.
  std::size_t size() const { return full_.size(); }
  int max_h() const { return max_h_; }
  const std::shared_ptr<graph::WlFeaturizer>& featurizer() const {
    return featurizer_;
  }

  /// Appends one circuit graph: featurizes it at full depth, borders every
  /// per-h base Gram by one row/column, and extends every live grid factor
  /// by one Cholesky::append_row (counted as gp.fit.incremental_hits).
  void append(const graph::Graph& g);

  /// Drops all cached state (used when an optimizer is pointed at a
  /// different evaluator history).
  void clear();

  /// Depth-filtered feature vectors of every cached record at depth h.
  const std::vector<graph::SparseVec>& features_at(int h) const;

  /// Unit-signal, noiseless Gram of the cached records at depth h:
  /// base(i, j) = <phi_h(G_i), phi_h(G_j)>.
  const la::MatrixD& base_gram(int h) const;

  /// Zero-jitter Cholesky factor of signal_grid[si] * base_gram(h) +
  /// noise_grid[ni] * I at the current size, factorized on first request
  /// (counted as gp.fit.full_refits) and bordered on append afterwards.
  /// Returns nullptr when the cell's matrix is not positive definite.
  const la::Cholesky* factor(int h, std::size_t si, std::size_t ni);

 private:
  struct FactorSlot {
    std::unique_ptr<la::Cholesky> chol;
    bool failed = false;
  };

  FactorSlot& slot(int h, std::size_t si, std::size_t ni);
  void check_h(int h) const;

  std::shared_ptr<graph::WlFeaturizer> featurizer_;
  int max_h_;
  std::vector<graph::SparseVec> full_;                   // [record]
  std::vector<std::vector<graph::SparseVec>> filtered_;  // [h][record]
  std::vector<la::MatrixD> base_;                        // [h]
  std::vector<FactorSlot> factors_;  // [h][si][ni], flattened
};

}  // namespace intooa::gp
