#include "gp/acquisition.hpp"

#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"

namespace intooa::gp {

namespace {
constexpr double kVarFloor = 1e-18;
}

double expected_improvement(double mean, double variance, double best) {
  if (variance < 0.0) {
    throw std::invalid_argument("expected_improvement: negative variance");
  }
  const double improvement = mean - best;
  if (variance <= kVarFloor) return improvement > 0.0 ? improvement : 0.0;
  const double sigma = std::sqrt(variance);
  const double z = improvement / sigma;
  return improvement * util::normal_cdf(z) + sigma * util::normal_pdf(z);
}

double probability_feasible(double mean, double variance) {
  if (variance < 0.0) {
    throw std::invalid_argument("probability_feasible: negative variance");
  }
  if (variance <= kVarFloor) return mean <= 0.0 ? 1.0 : 0.0;
  return util::normal_cdf(-mean / std::sqrt(variance));
}

double weighted_ei(const WeiInputs& in) {
  if (in.constraint_means.size() != in.constraint_variances.size()) {
    throw std::invalid_argument("weighted_ei: constraint span size mismatch");
  }
  double pf = 1.0;
  for (std::size_t i = 0; i < in.constraint_means.size(); ++i) {
    pf *= probability_feasible(in.constraint_means[i],
                               in.constraint_variances[i]);
  }
  if (!in.have_feasible) return pf;
  return expected_improvement(in.objective_mean, in.objective_variance,
                              in.best_feasible) *
         pf;
}

}  // namespace intooa::gp
