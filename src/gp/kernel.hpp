#pragma once
// Covariance kernels for the continuous-space Gaussian process used by the
// inner sizing loop (Sec. II-A: "an automated sizing method [1] based on
// Bayesian Optimization finds the best sizing x* under performance
// constraints"). Inputs are expected to be normalized to [0,1]^d by the
// sizing layer, so a single isotropic lengthscale is adequate and cheap to
// fit by maximum likelihood.

#include <memory>
#include <span>
#include <stdexcept>
#include <string>

namespace intooa::gp {

/// Stationary covariance function interface over R^d.
class Kernel {
 public:
  virtual ~Kernel() = default;

  /// Covariance k(x, y). Both spans must have equal length.
  virtual double operator()(std::span<const double> x,
                            std::span<const double> y) const = 0;

  /// Kernel family name for diagnostics.
  virtual std::string name() const = 0;
};

/// Squared-exponential kernel sigma_f^2 exp(-||x-y||^2 / (2 l^2)).
class RbfKernel final : public Kernel {
 public:
  RbfKernel(double lengthscale, double signal_variance);
  double operator()(std::span<const double> x,
                    std::span<const double> y) const override;
  std::string name() const override { return "rbf"; }

  double lengthscale() const { return lengthscale_; }
  double signal_variance() const { return signal_variance_; }

 private:
  double lengthscale_;
  double signal_variance_;
};

/// Matern-5/2 kernel; smoother fits than RBF when the sizing response has
/// kinks (e.g. phase-margin cliffs near pole-zero crossovers).
class Matern52Kernel final : public Kernel {
 public:
  Matern52Kernel(double lengthscale, double signal_variance);
  double operator()(std::span<const double> x,
                    std::span<const double> y) const override;
  std::string name() const override { return "matern52"; }

  double lengthscale() const { return lengthscale_; }
  double signal_variance() const { return signal_variance_; }

 private:
  double lengthscale_;
  double signal_variance_;
};

}  // namespace intooa::gp
