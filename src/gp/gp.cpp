#include "gp/gp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/stats.hpp"

namespace intooa::gp {

namespace {
constexpr double kHalfLog2Pi = 0.9189385332046727;  // log(2*pi)/2

const std::vector<double>& lengthscale_grid() {
  static const std::vector<double> grid = {0.05, 0.08, 0.13, 0.2, 0.33,
                                           0.5,  0.8,  1.3,  2.0, 3.0};
  return grid;
}

const std::vector<double>& noise_grid() {
  static const std::vector<double> grid = {1e-8, 1e-6, 1e-4, 1e-3, 1e-2, 1e-1};
  return grid;
}
}  // namespace

double GpRegressor::kernel_value(std::span<const double> a,
                                 std::span<const double> b,
                                 double lengthscale) const {
  if (a.size() != b.size()) {
    throw std::invalid_argument("GpRegressor: dimension mismatch");
  }
  double d2 = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    d2 += d * d;
  }
  return std::exp(-0.5 * d2 / (lengthscale * lengthscale));
}

void GpRegressor::fit(const std::vector<std::vector<double>>& inputs,
                      std::span<const double> targets) {
  if (inputs.size() != targets.size()) {
    throw std::invalid_argument("GpRegressor::fit: size mismatch");
  }
  if (inputs.size() < 2) {
    throw std::invalid_argument("GpRegressor::fit: need at least 2 points");
  }
  const std::size_t dim = inputs.front().size();
  for (const auto& row : inputs) {
    if (row.size() != dim) {
      throw std::invalid_argument("GpRegressor::fit: ragged inputs");
    }
  }

  inputs_ = inputs;
  y_mean_ = util::mean(targets);
  const double sd = util::stddev(targets);
  y_scale_ = sd > 1e-12 ? sd : 1.0;

  std::vector<double> y_std(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    y_std[i] = (targets[i] - y_mean_) / y_scale_;
  }

  const std::size_t n = inputs_.size();
  double best_lml = -std::numeric_limits<double>::infinity();
  GpHyper best;

  for (double ls : lengthscale_grid()) {
    // Base Gram matrix for this lengthscale (signal variance 1).
    la::MatrixD base(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i; j < n; ++j) {
        const double k = kernel_value(inputs_[i], inputs_[j], ls);
        base(i, j) = k;
        base(j, i) = k;
      }
    }
    for (double noise : noise_grid()) {
      la::MatrixD gram = base;
      for (std::size_t i = 0; i < n; ++i) gram(i, i) += noise;
      double lml;
      try {
        const la::Cholesky chol(gram);
        const auto alpha = chol.solve(y_std);
        double fit_term = 0.0;
        for (std::size_t i = 0; i < n; ++i) fit_term += y_std[i] * alpha[i];
        lml = -0.5 * fit_term - 0.5 * chol.log_det() -
              kHalfLog2Pi * static_cast<double>(n);
      } catch (const la::SingularMatrixError&) {
        continue;
      }
      if (lml > best_lml) {
        best_lml = lml;
        best.lengthscale = ls;
        best.noise_variance = noise;
        best.signal_variance = 1.0;
        best.log_marginal_likelihood = lml;
      }
    }
  }
  if (!std::isfinite(best_lml)) {
    throw std::runtime_error("GpRegressor::fit: no viable hyperparameters");
  }
  hyper_ = best;

  la::MatrixD gram(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double k = kernel_value(inputs_[i], inputs_[j], hyper_.lengthscale);
      gram(i, j) = k;
      gram(j, i) = k;
    }
    gram(i, i) += hyper_.noise_variance;
  }
  chol_ = std::make_unique<la::Cholesky>(gram);
  alpha_ = chol_->solve(y_std);
}

Prediction GpRegressor::predict(std::span<const double> x) const {
  if (!trained()) {
    throw std::logic_error("GpRegressor::predict: model not trained");
  }
  const std::size_t n = inputs_.size();
  std::vector<double> kvec(n);
  for (std::size_t i = 0; i < n; ++i) {
    kvec[i] = kernel_value(inputs_[i], x, hyper_.lengthscale);
  }
  double mean_std = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean_std += kvec[i] * alpha_[i];

  const auto v = chol_->solve_lower(kvec);
  double quad = 0.0;
  for (double vi : v) quad += vi * vi;
  const double var_std = std::max(0.0, hyper_.signal_variance - quad);

  Prediction out;
  out.mean = mean_std * y_scale_ + y_mean_;
  out.variance = var_std * y_scale_ * y_scale_;
  return out;
}

}  // namespace intooa::gp
