#pragma once
// WL kernel-based Gaussian process over circuit graphs (Sec. III-B of the
// paper). The covariance is
//
//   k(G, G') = sigma_f^2 * <phi_h(G), phi_h(G')> + sigma_n^2 * delta(G, G')
//
// where phi_h are the WL subtree features at depth h (Eq. 2). The
// hyperparameters (h, sigma_f, sigma_n) are chosen by maximum marginal
// likelihood, exactly as the paper prescribes ("h ... can be determined
// through maximum likelihood estimation in WL-GP").
//
// Because the kernel is an inner product of explicit, interpretable
// features, the posterior-mean gradient with respect to each feature
// count (Eq. 5) is analytic:
//
//   d mu / d phi_j(G*) = sigma_f^2 * sum_i alpha_i phi_j(G_i),
//   alpha = K^{-1} y.
//
// These gradients drive the interpretability layer (critical-structure
// identification and topology refinement).

#include <memory>
#include <vector>

#include "gp/gp.hpp"
#include "graph/sparse.hpp"
#include "graph/wl.hpp"
#include "la/cholesky.hpp"

namespace intooa::gp {

class WlFitCache;

/// The signal-variance / noise-variance grids of the WL-GP maximum
/// marginal likelihood search. Shared with WlFitCache so cached grid
/// factors line up with the cells fit() and fit_shared() score.
const std::vector<double>& wl_signal_grid();
const std::vector<double>& wl_noise_grid();

/// Configuration of the WL-GP hyperparameter search.
struct WlGpConfig {
  int max_h = 6;       ///< largest WL depth considered by MLE
  bool fit_h = true;   ///< if false, use fixed_h instead of MLE over h
  int fixed_h = 2;     ///< depth used when fit_h == false
};

/// Gaussian process over labeled graphs with the WL dot-product kernel.
///
/// The featurizer is shared (by shared_ptr) between all WL-GPs of one
/// optimization so feature indices — and hence gradient components — refer
/// to the same circuit structures across all performance metrics.
class WlGp {
 public:
  explicit WlGp(std::shared_ptr<graph::WlFeaturizer> featurizer,
                WlGpConfig config = {});

  /// Fits to `graphs` / `targets`. Targets are standardized internally.
  /// Requires at least 2 observations.
  void fit(const std::vector<graph::Graph>& graphs,
           std::span<const double> targets);

  /// Same model selection and posterior as fit(), but consuming the shared
  /// per-h Gram matrices and incrementally-maintained grid factors of
  /// `cache` instead of rebuilding them: all models of one optimizer score
  /// the same factors and only differ in the standardized target vector.
  /// `cache` must be built on this model's featurizer, hold one record per
  /// target, and cover at least this model's max_h. Bit-identical to fit()
  /// on the same data.
  void fit_shared(WlFitCache& cache, std::span<const double> targets);

  bool trained() const { return chol_ != nullptr; }
  std::size_t size() const { return features_.size(); }

  /// Posterior mean/variance (Eqs. 3-4) in original target units.
  Prediction predict(const graph::Graph& g) const;

  /// Same as predict(), but from a precomputed full-depth (max_h) feature
  /// vector of the shared featurizer — lets callers featurize a candidate
  /// once and query all M per-metric models.
  Prediction predict_from_features(const graph::SparseVec& full) const;

  /// Expected posterior-mean derivative w.r.t. every WL feature count
  /// (Eq. 5), in original target units per unit count. The returned vector
  /// is indexed by global WL label id and has length
  /// featurizer->label_count(); entries for features deeper than the
  /// selected h are zero.
  std::vector<double> mean_gradient() const;

  /// Derivative for a single feature id (convenience over mean_gradient).
  double mean_gradient(std::size_t feature_id) const;

  /// Depth h selected by MLE (or the fixed depth).
  int chosen_h() const { return hyper_h_; }
  double signal_variance() const { return hyper_signal_; }
  double noise_variance() const { return hyper_noise_; }
  double log_marginal_likelihood() const { return hyper_lml_; }

  /// The shared featurizer (e.g. for translating gradient indices into
  /// structure descriptions).
  const graph::WlFeaturizer& featurizer() const { return *featurizer_; }
  std::shared_ptr<graph::WlFeaturizer> featurizer_ptr() const {
    return featurizer_;
  }

 private:
  graph::SparseVec filtered(const graph::SparseVec& full, int h) const;
  void standardize(std::span<const double> targets, std::vector<double>& y_std);

  std::shared_ptr<graph::WlFeaturizer> featurizer_;
  WlGpConfig config_;

  std::vector<graph::SparseVec> features_;  // at chosen h
  std::vector<double> alpha_;               // K^{-1} y_std
  std::unique_ptr<la::Cholesky> chol_;

  int hyper_h_ = 0;
  double hyper_signal_ = 1.0;
  double hyper_noise_ = 1e-4;
  double hyper_lml_ = 0.0;
  double y_mean_ = 0.0;
  double y_scale_ = 1.0;
};

}  // namespace intooa::gp
