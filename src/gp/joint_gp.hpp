#pragma once
// Multi-output GP with one shared RBF kernel: all outputs (FoM objective +
// constraint margins) observe the same inputs, so sharing the kernel
// hyperparameters lets us factorize one Gram matrix per fit instead of M,
// and compute one predictive variance per query. Hyperparameters are
// chosen by maximizing the SUM of per-output marginal likelihoods (each
// output is standardized first). This is an efficiency refinement of
// running M independent GPs — important on the single-box budget this repo
// targets — and is used by the sizing BO and the VGAE-BO baseline's latent
// space model.

#include <memory>
#include <span>
#include <vector>

#include "gp/gp.hpp"
#include "la/cholesky.hpp"

namespace intooa::gp {

/// Joint prediction: per-output posterior means and variances.
struct JointPrediction {
  std::vector<double> mean;
  std::vector<double> variance;
};

/// Multi-output GP regression with a shared isotropic RBF kernel on
/// [0,1]^d inputs.
class JointGp {
 public:
  JointGp() = default;

  /// Fits to `inputs` (N x d) and `targets` (N rows, M columns given
  /// row-major as targets[i][m]). When `refit_hyper` is false and a
  /// previous fit exists, the cached hyperparameters are reused (cheap
  /// incremental refit during BO); otherwise a full MLE grid search runs.
  void fit(const std::vector<std::vector<double>>& inputs,
           const std::vector<std::vector<double>>& targets, bool refit_hyper);

  bool trained() const { return chol_ != nullptr; }
  std::size_t size() const { return inputs_.size(); }
  std::size_t outputs() const { return y_mean_.size(); }

  /// Posterior means/variances of all outputs at `x`, in original units.
  JointPrediction predict(std::span<const double> x) const;

  const GpHyper& hyper() const { return hyper_; }

 private:
  double kernel_value(std::span<const double> a, std::span<const double> b,
                      double lengthscale) const;
  void factorize(double lengthscale, double noise);

  std::vector<std::vector<double>> inputs_;
  std::vector<std::vector<double>> y_std_;   // [output][point]
  std::vector<std::vector<double>> alpha_;   // [output] = K^{-1} y_std
  std::unique_ptr<la::Cholesky> chol_;
  GpHyper hyper_;
  bool have_hyper_ = false;
  std::vector<double> y_mean_;
  std::vector<double> y_scale_;
};

}  // namespace intooa::gp
