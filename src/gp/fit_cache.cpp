#include "gp/fit_cache.hpp"

#include <stdexcept>

#include "gp/wlgp.hpp"
#include "obs/metrics.hpp"

namespace intooa::gp {

namespace {

obs::Counter& incremental_hits() {
  static obs::Counter& c = obs::registry().counter("gp.fit.incremental_hits");
  return c;
}

obs::Counter& full_refits() {
  static obs::Counter& c = obs::registry().counter("gp.fit.full_refits");
  return c;
}

}  // namespace

WlFitCache::WlFitCache(std::shared_ptr<graph::WlFeaturizer> featurizer,
                       int max_h)
    : featurizer_(std::move(featurizer)), max_h_(max_h) {
  if (!featurizer_) throw std::invalid_argument("WlFitCache: null featurizer");
  if (max_h_ < 0 || max_h_ > featurizer_->max_h()) {
    throw std::invalid_argument("WlFitCache: max_h out of featurizer range");
  }
  const std::size_t depths = static_cast<std::size_t>(max_h_) + 1;
  filtered_.resize(depths);
  base_.resize(depths);
  factors_.resize(depths * wl_signal_grid().size() * wl_noise_grid().size());
}

void WlFitCache::check_h(int h) const {
  if (h < 0 || h > max_h_) {
    throw std::out_of_range("WlFitCache: depth out of range");
  }
}

WlFitCache::FactorSlot& WlFitCache::slot(int h, std::size_t si,
                                         std::size_t ni) {
  const std::size_t ns = wl_signal_grid().size();
  const std::size_t nn = wl_noise_grid().size();
  if (si >= ns || ni >= nn) {
    throw std::out_of_range("WlFitCache: grid index out of range");
  }
  return factors_[(static_cast<std::size_t>(h) * ns + si) * nn + ni];
}

void WlFitCache::append(const graph::Graph& g) {
  const std::size_t n = full_.size();
  const graph::SparseVec full = featurizer_->features(g, max_h_);

  // Border every per-h base Gram by the new record's row/column.
  for (int h = 0; h <= max_h_; ++h) {
    graph::SparseVec filt = graph::filter_by_depth(full, *featurizer_, h);
    la::MatrixD grown(n + 1, n + 1);
    const la::MatrixD& old = base_[static_cast<std::size_t>(h)];
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) grown(i, j) = old(i, j);
    }
    auto& feats = filtered_[static_cast<std::size_t>(h)];
    for (std::size_t i = 0; i < n; ++i) {
      const double k = graph::dot(feats[i], filt);
      grown(i, n) = k;
      grown(n, i) = k;
    }
    grown(n, n) = graph::dot(filt, filt);
    base_[static_cast<std::size_t>(h)] = std::move(grown);
    feats.push_back(std::move(filt));
  }
  full_.push_back(full);

  // Extend every live grid factor by one bordered row. A failed border
  // (matrix no longer positive definite at this cell's zero-jitter scoring)
  // marks the cell failed permanently: its leading block stays a leading
  // block of every future matrix.
  std::vector<double> row(n + 1);
  for (int h = 0; h <= max_h_; ++h) {
    const la::MatrixD& base = base_[static_cast<std::size_t>(h)];
    for (std::size_t si = 0; si < wl_signal_grid().size(); ++si) {
      const double signal = wl_signal_grid()[si];
      for (std::size_t ni = 0; ni < wl_noise_grid().size(); ++ni) {
        FactorSlot& cell = slot(h, si, ni);
        if (!cell.chol) continue;
        for (std::size_t i = 0; i < n; ++i) row[i] = base(n, i) * signal;
        row[n] = base(n, n) * signal + wl_noise_grid()[ni];
        try {
          cell.chol->append_row(row);
          incremental_hits().add();
        } catch (const la::SingularMatrixError&) {
          cell.chol.reset();
          cell.failed = true;
        }
      }
    }
  }
}

void WlFitCache::clear() {
  full_.clear();
  for (auto& feats : filtered_) feats.clear();
  for (auto& base : base_) base = la::MatrixD();
  for (auto& cell : factors_) {
    cell.chol.reset();
    cell.failed = false;
  }
}

const std::vector<graph::SparseVec>& WlFitCache::features_at(int h) const {
  check_h(h);
  return filtered_[static_cast<std::size_t>(h)];
}

const la::MatrixD& WlFitCache::base_gram(int h) const {
  check_h(h);
  return base_[static_cast<std::size_t>(h)];
}

const la::Cholesky* WlFitCache::factor(int h, std::size_t si, std::size_t ni) {
  check_h(h);
  FactorSlot& cell = slot(h, si, ni);
  if (cell.failed) return nullptr;
  if (!cell.chol) {
    // First request at the current size: one full factorization; appends
    // keep it current from here on.
    const std::size_t n = full_.size();
    const double signal = wl_signal_grid()[si];
    const double noise = wl_noise_grid()[ni];
    la::MatrixD gram = base_[static_cast<std::size_t>(h)];
    gram *= signal;
    for (std::size_t i = 0; i < n; ++i) gram(i, i) += noise;
    auto chol = la::Cholesky::try_exact(gram);
    full_refits().add();
    if (!chol) {
      cell.failed = true;
      return nullptr;
    }
    cell.chol = std::make_unique<la::Cholesky>(std::move(*chol));
  }
  return cell.chol.get();
}

}  // namespace intooa::gp
