#include "gp/joint_gp.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/stats.hpp"

namespace intooa::gp {

namespace {
constexpr double kHalfLog2Pi = 0.9189385332046727;

const std::vector<double>& lengthscale_grid() {
  static const std::vector<double> grid = {0.05, 0.08, 0.13, 0.2, 0.33,
                                           0.5,  0.8,  1.3,  2.0, 3.0};
  return grid;
}
const std::vector<double>& noise_grid() {
  static const std::vector<double> grid = {1e-6, 1e-4, 1e-3, 1e-2, 1e-1};
  return grid;
}
}  // namespace

double JointGp::kernel_value(std::span<const double> a,
                             std::span<const double> b,
                             double lengthscale) const {
  if (a.size() != b.size()) {
    throw std::invalid_argument("JointGp: dimension mismatch");
  }
  double d2 = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    d2 += d * d;
  }
  return std::exp(-0.5 * d2 / (lengthscale * lengthscale));
}

void JointGp::factorize(double lengthscale, double noise) {
  const std::size_t n = inputs_.size();
  la::MatrixD gram(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double k = kernel_value(inputs_[i], inputs_[j], lengthscale);
      gram(i, j) = k;
      gram(j, i) = k;
    }
    gram(i, i) += noise;
  }
  chol_ = std::make_unique<la::Cholesky>(gram);
  obs::registry().gauge("gp.joint_fit.jitter").set(chol_->jitter());
  alpha_.clear();
  for (const auto& y : y_std_) alpha_.push_back(chol_->solve(y));
}

void JointGp::fit(const std::vector<std::vector<double>>& inputs,
                  const std::vector<std::vector<double>>& targets,
                  bool refit_hyper) {
  INTOOA_SPAN("gp.joint_fit");
  obs::registry()
      .histogram("gp.cholesky_dim")
      .record(static_cast<std::uint64_t>(inputs.size()));
  if (inputs.size() != targets.size()) {
    throw std::invalid_argument("JointGp::fit: size mismatch");
  }
  if (inputs.size() < 2) {
    throw std::invalid_argument("JointGp::fit: need at least 2 points");
  }
  const std::size_t n = inputs.size();
  const std::size_t m = targets.front().size();
  if (m == 0) throw std::invalid_argument("JointGp::fit: zero outputs");
  for (const auto& row : targets) {
    if (row.size() != m) {
      throw std::invalid_argument("JointGp::fit: ragged targets");
    }
  }
  const std::size_t dim = inputs.front().size();
  for (const auto& row : inputs) {
    if (row.size() != dim) {
      throw std::invalid_argument("JointGp::fit: ragged inputs");
    }
  }

  inputs_ = inputs;
  y_mean_.assign(m, 0.0);
  y_scale_.assign(m, 1.0);
  y_std_.assign(m, std::vector<double>(n));
  for (std::size_t k = 0; k < m; ++k) {
    std::vector<double> col(n);
    for (std::size_t i = 0; i < n; ++i) col[i] = targets[i][k];
    y_mean_[k] = util::mean(col);
    const double sd = util::stddev(col);
    y_scale_[k] = sd > 1e-12 ? sd : 1.0;
    for (std::size_t i = 0; i < n; ++i) {
      y_std_[k][i] = (col[i] - y_mean_[k]) / y_scale_[k];
    }
  }

  if (refit_hyper || !have_hyper_) {
    double best_lml = -std::numeric_limits<double>::infinity();
    GpHyper best;
    for (double ls : lengthscale_grid()) {
      la::MatrixD base(n, n);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i; j < n; ++j) {
          const double k = kernel_value(inputs_[i], inputs_[j], ls);
          base(i, j) = k;
          base(j, i) = k;
        }
      }
      for (double noise : noise_grid()) {
        la::MatrixD gram = base;
        for (std::size_t i = 0; i < n; ++i) gram(i, i) += noise;
        // Zero-jitter scoring: jitter escalation inside the grid would score
        // the cell with a different effective noise than its label claims.
        const auto chol = la::Cholesky::try_exact(gram);
        if (!chol) continue;
        double lml = 0.0;
        const double logdet = chol->log_det();
        for (std::size_t k = 0; k < m; ++k) {
          const auto alpha = chol->solve(y_std_[k]);
          double fit_term = 0.0;
          for (std::size_t i = 0; i < n; ++i) {
            fit_term += y_std_[k][i] * alpha[i];
          }
          lml += -0.5 * fit_term - 0.5 * logdet -
                 kHalfLog2Pi * static_cast<double>(n);
        }
        if (lml > best_lml) {
          best_lml = lml;
          best.lengthscale = ls;
          best.noise_variance = noise;
          best.signal_variance = 1.0;
          best.log_marginal_likelihood = lml;
        }
      }
    }
    if (!std::isfinite(best_lml)) {
      throw std::runtime_error("JointGp::fit: no viable hyperparameters");
    }
    hyper_ = best;
    have_hyper_ = true;
  }
  factorize(hyper_.lengthscale, hyper_.noise_variance);
}

JointPrediction JointGp::predict(std::span<const double> x) const {
  if (!trained()) throw std::logic_error("JointGp::predict: not trained");
  const std::size_t n = inputs_.size();
  const std::size_t m = y_mean_.size();
  std::vector<double> kvec(n);
  for (std::size_t i = 0; i < n; ++i) {
    kvec[i] = kernel_value(inputs_[i], x, hyper_.lengthscale);
  }
  const auto v = chol_->solve_lower(kvec);
  double quad = 0.0;
  for (double vi : v) quad += vi * vi;
  const double var_std = std::max(0.0, hyper_.signal_variance - quad);

  JointPrediction out;
  out.mean.resize(m);
  out.variance.resize(m);
  for (std::size_t k = 0; k < m; ++k) {
    double mean_std = 0.0;
    for (std::size_t i = 0; i < n; ++i) mean_std += kvec[i] * alpha_[k][i];
    out.mean[k] = mean_std * y_scale_[k] + y_mean_[k];
    out.variance[k] = var_std * y_scale_[k] * y_scale_[k];
  }
  return out;
}

}  // namespace intooa::gp
