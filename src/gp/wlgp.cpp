#include "gp/wlgp.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/stats.hpp"

namespace intooa::gp {

namespace {
constexpr double kHalfLog2Pi = 0.9189385332046727;

// Signal-variance grid. Raw WL dot products of these circuit graphs are
// O(10..100), so with unit-variance targets the prior scale sits well below
// 1; the grid brackets that range generously.
const std::vector<double>& signal_grid() {
  static const std::vector<double> grid = {0.002, 0.005, 0.01, 0.03,
                                           0.1,   0.3,   1.0};
  return grid;
}

const std::vector<double>& noise_grid() {
  static const std::vector<double> grid = {1e-6, 1e-4, 1e-3, 1e-2, 1e-1};
  return grid;
}
}  // namespace

WlGp::WlGp(std::shared_ptr<graph::WlFeaturizer> featurizer, WlGpConfig config)
    : featurizer_(std::move(featurizer)), config_(config) {
  if (!featurizer_) throw std::invalid_argument("WlGp: null featurizer");
  if (config_.max_h > featurizer_->max_h()) {
    throw std::invalid_argument("WlGp: config.max_h exceeds featurizer max_h");
  }
  if (!config_.fit_h &&
      (config_.fixed_h < 0 || config_.fixed_h > config_.max_h)) {
    throw std::invalid_argument("WlGp: fixed_h out of range");
  }
}

graph::SparseVec WlGp::filtered(const graph::SparseVec& full, int h) const {
  graph::SparseVec out;
  for (const auto& [idx, val] : full.entries()) {
    if (featurizer_->depth_of(idx) <= h) out.add(idx, val);
  }
  return out;
}

void WlGp::fit(const std::vector<graph::Graph>& graphs,
               std::span<const double> targets) {
  INTOOA_SPAN("gp.fit");
  obs::registry()
      .histogram("gp.cholesky_dim")
      .record(static_cast<std::uint64_t>(graphs.size()));
  if (graphs.size() != targets.size()) {
    throw std::invalid_argument("WlGp::fit: size mismatch");
  }
  if (graphs.size() < 2) {
    throw std::invalid_argument("WlGp::fit: need at least 2 observations");
  }

  // Standardize targets.
  y_mean_ = util::mean(targets);
  const double sd = util::stddev(targets);
  y_scale_ = sd > 1e-12 ? sd : 1.0;
  std::vector<double> y_std(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    y_std[i] = (targets[i] - y_mean_) / y_scale_;
  }

  // Full-depth features once per graph; per-h features are depth filters.
  const std::size_t n = graphs.size();
  std::vector<graph::SparseVec> full(n);
  for (std::size_t i = 0; i < n; ++i) {
    full[i] = featurizer_->features(graphs[i], config_.max_h);
  }

  const int h_lo = config_.fit_h ? 0 : config_.fixed_h;
  const int h_hi = config_.fit_h ? config_.max_h : config_.fixed_h;

  double best_lml = -std::numeric_limits<double>::infinity();
  int best_h = h_lo;
  double best_signal = signal_grid().front();
  double best_noise = noise_grid().front();

  for (int h = h_lo; h <= h_hi; ++h) {
    std::vector<graph::SparseVec> feats(n);
    for (std::size_t i = 0; i < n; ++i) feats[i] = filtered(full[i], h);
    la::MatrixD base(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i; j < n; ++j) {
        const double k = graph::dot(feats[i], feats[j]);
        base(i, j) = k;
        base(j, i) = k;
      }
    }
    for (double signal : signal_grid()) {
      for (double noise : noise_grid()) {
        la::MatrixD gram = base;
        gram *= signal;
        for (std::size_t i = 0; i < n; ++i) gram(i, i) += noise;
        double lml;
        try {
          const la::Cholesky chol(gram);
          const auto alpha = chol.solve(y_std);
          double fit_term = 0.0;
          for (std::size_t i = 0; i < n; ++i) fit_term += y_std[i] * alpha[i];
          lml = -0.5 * fit_term - 0.5 * chol.log_det() -
                kHalfLog2Pi * static_cast<double>(n);
        } catch (const la::SingularMatrixError&) {
          continue;
        }
        if (lml > best_lml) {
          best_lml = lml;
          best_h = h;
          best_signal = signal;
          best_noise = noise;
        }
      }
    }
  }
  if (!std::isfinite(best_lml)) {
    throw std::runtime_error("WlGp::fit: no viable hyperparameters");
  }

  hyper_h_ = best_h;
  hyper_signal_ = best_signal;
  hyper_noise_ = best_noise;
  hyper_lml_ = best_lml;

  features_.resize(n);
  for (std::size_t i = 0; i < n; ++i) features_[i] = filtered(full[i], best_h);
  la::MatrixD gram(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double k = hyper_signal_ * graph::dot(features_[i], features_[j]);
      gram(i, j) = k;
      gram(j, i) = k;
    }
    gram(i, i) += hyper_noise_;
  }
  chol_ = std::make_unique<la::Cholesky>(gram);
  alpha_ = chol_->solve(y_std);
}

Prediction WlGp::predict(const graph::Graph& g) const {
  if (!trained()) throw std::logic_error("WlGp::predict: model not trained");
  return predict_from_features(featurizer_->features(g, config_.max_h));
}

Prediction WlGp::predict_from_features(const graph::SparseVec& full) const {
  if (!trained()) throw std::logic_error("WlGp::predict: model not trained");
  const graph::SparseVec phi = filtered(full, hyper_h_);
  const std::size_t n = features_.size();
  std::vector<double> kvec(n);
  for (std::size_t i = 0; i < n; ++i) {
    kvec[i] = hyper_signal_ * graph::dot(phi, features_[i]);
  }
  double mean_std = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean_std += kvec[i] * alpha_[i];

  const auto v = chol_->solve_lower(kvec);
  double quad = 0.0;
  for (double vi : v) quad += vi * vi;
  const double self = hyper_signal_ * graph::dot(phi, phi);
  const double var_std = std::max(0.0, self - quad);

  Prediction out;
  out.mean = mean_std * y_scale_ + y_mean_;
  out.variance = var_std * y_scale_ * y_scale_;
  return out;
}

std::vector<double> WlGp::mean_gradient() const {
  if (!trained()) {
    throw std::logic_error("WlGp::mean_gradient: model not trained");
  }
  std::vector<double> grad(featurizer_->label_count(), 0.0);
  for (std::size_t i = 0; i < features_.size(); ++i) {
    for (const auto& [idx, val] : features_[i].entries()) {
      grad[idx] += alpha_[i] * val;
    }
  }
  for (double& g : grad) g *= hyper_signal_ * y_scale_;
  return grad;
}

double WlGp::mean_gradient(std::size_t feature_id) const {
  if (!trained()) {
    throw std::logic_error("WlGp::mean_gradient: model not trained");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < features_.size(); ++i) {
    acc += alpha_[i] * features_[i].get(feature_id);
  }
  return acc * hyper_signal_ * y_scale_;
}

}  // namespace intooa::gp
