#include "gp/wlgp.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "gp/fit_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/stats.hpp"

namespace intooa::gp {

namespace {
constexpr double kHalfLog2Pi = 0.9189385332046727;

/// Log marginal likelihood of standardized targets under a factorized Gram.
double log_marginal(const la::Cholesky& chol, std::span<const double> y_std) {
  const auto alpha = chol.solve(y_std);
  double fit_term = 0.0;
  for (std::size_t i = 0; i < y_std.size(); ++i) fit_term += y_std[i] * alpha[i];
  return -0.5 * fit_term - 0.5 * chol.log_det() -
         kHalfLog2Pi * static_cast<double>(y_std.size());
}
}  // namespace

// Signal-variance grid. Raw WL dot products of these circuit graphs are
// O(10..100), so with unit-variance targets the prior scale sits well below
// 1; the grid brackets that range generously.
const std::vector<double>& wl_signal_grid() {
  static const std::vector<double> grid = {0.002, 0.005, 0.01, 0.03,
                                           0.1,   0.3,   1.0};
  return grid;
}

const std::vector<double>& wl_noise_grid() {
  static const std::vector<double> grid = {1e-6, 1e-4, 1e-3, 1e-2, 1e-1};
  return grid;
}

WlGp::WlGp(std::shared_ptr<graph::WlFeaturizer> featurizer, WlGpConfig config)
    : featurizer_(std::move(featurizer)), config_(config) {
  if (!featurizer_) throw std::invalid_argument("WlGp: null featurizer");
  if (config_.max_h > featurizer_->max_h()) {
    throw std::invalid_argument("WlGp: config.max_h exceeds featurizer max_h");
  }
  if (!config_.fit_h &&
      (config_.fixed_h < 0 || config_.fixed_h > config_.max_h)) {
    throw std::invalid_argument("WlGp: fixed_h out of range");
  }
}

graph::SparseVec WlGp::filtered(const graph::SparseVec& full, int h) const {
  return graph::filter_by_depth(full, *featurizer_, h);
}

void WlGp::standardize(std::span<const double> targets,
                       std::vector<double>& y_std) {
  y_mean_ = util::mean(targets);
  const double sd = util::stddev(targets);
  y_scale_ = sd > 1e-12 ? sd : 1.0;
  y_std.resize(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    y_std[i] = (targets[i] - y_mean_) / y_scale_;
  }
}

void WlGp::fit(const std::vector<graph::Graph>& graphs,
               std::span<const double> targets) {
  INTOOA_SPAN("gp.fit");
  obs::registry()
      .histogram("gp.cholesky_dim")
      .record(static_cast<std::uint64_t>(graphs.size()));
  obs::registry().counter("gp.fit.full_refits").add();
  if (graphs.size() != targets.size()) {
    throw std::invalid_argument("WlGp::fit: size mismatch");
  }
  if (graphs.size() < 2) {
    throw std::invalid_argument("WlGp::fit: need at least 2 observations");
  }

  std::vector<double> y_std;
  standardize(targets, y_std);

  // Full-depth features once per graph; per-h features are depth filters.
  const std::size_t n = graphs.size();
  std::vector<graph::SparseVec> full(n);
  for (std::size_t i = 0; i < n; ++i) {
    full[i] = featurizer_->features(graphs[i], config_.max_h);
  }

  const int h_lo = config_.fit_h ? 0 : config_.fixed_h;
  const int h_hi = config_.fit_h ? config_.max_h : config_.fixed_h;

  double best_lml = -std::numeric_limits<double>::infinity();
  int best_h = h_lo;
  double best_signal = wl_signal_grid().front();
  double best_noise = wl_noise_grid().front();

  for (int h = h_lo; h <= h_hi; ++h) {
    std::vector<graph::SparseVec> feats(n);
    for (std::size_t i = 0; i < n; ++i) feats[i] = filtered(full[i], h);
    la::MatrixD base(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i; j < n; ++j) {
        const double k = graph::dot(feats[i], feats[j]);
        base(i, j) = k;
        base(j, i) = k;
      }
    }
    for (double signal : wl_signal_grid()) {
      for (double noise : wl_noise_grid()) {
        la::MatrixD gram = base;
        gram *= signal;
        for (std::size_t i = 0; i < n; ++i) gram(i, i) += noise;
        // Zero-jitter scoring: a candidate whose factorization needs jitter
        // would be scored with different effective noise than its label
        // claims, biasing the LML comparison — skip it instead.
        const auto chol = la::Cholesky::try_exact(gram);
        if (!chol) continue;
        const double lml = log_marginal(*chol, y_std);
        if (lml > best_lml) {
          best_lml = lml;
          best_h = h;
          best_signal = signal;
          best_noise = noise;
        }
      }
    }
  }
  if (!std::isfinite(best_lml)) {
    throw std::runtime_error("WlGp::fit: no viable hyperparameters");
  }

  hyper_h_ = best_h;
  hyper_signal_ = best_signal;
  hyper_noise_ = best_noise;
  hyper_lml_ = best_lml;

  features_.resize(n);
  for (std::size_t i = 0; i < n; ++i) features_[i] = filtered(full[i], best_h);
  la::MatrixD gram(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double k = hyper_signal_ * graph::dot(features_[i], features_[j]);
      gram(i, j) = k;
      gram(j, i) = k;
    }
    gram(i, i) += hyper_noise_;
  }
  // Only the final fit may escalate jitter; the amount actually applied is
  // visible in the gauge (0 in the overwhelmingly common case).
  chol_ = std::make_unique<la::Cholesky>(gram);
  obs::registry().gauge("gp.fit.jitter").set(chol_->jitter());
  alpha_ = chol_->solve(y_std);
}

void WlGp::fit_shared(WlFitCache& cache, std::span<const double> targets) {
  INTOOA_SPAN("gp.fit");
  obs::registry()
      .histogram("gp.cholesky_dim")
      .record(static_cast<std::uint64_t>(cache.size()));
  if (cache.featurizer() != featurizer_) {
    throw std::invalid_argument("WlGp::fit_shared: cache featurizer differs");
  }
  if (cache.size() != targets.size()) {
    throw std::invalid_argument("WlGp::fit_shared: size mismatch");
  }
  if (cache.size() < 2) {
    throw std::invalid_argument(
        "WlGp::fit_shared: need at least 2 observations");
  }
  if (config_.max_h > cache.max_h()) {
    throw std::invalid_argument("WlGp::fit_shared: cache max_h too small");
  }

  std::vector<double> y_std;
  standardize(targets, y_std);

  const int h_lo = config_.fit_h ? 0 : config_.fixed_h;
  const int h_hi = config_.fit_h ? config_.max_h : config_.fixed_h;

  // Same grid, same scan order, same strict-> tie-breaking as fit(); only
  // the factorizations are shared (and maintained incrementally) instead of
  // rebuilt per model.
  double best_lml = -std::numeric_limits<double>::infinity();
  int best_h = h_lo;
  std::size_t best_si = 0;
  std::size_t best_ni = 0;
  for (int h = h_lo; h <= h_hi; ++h) {
    for (std::size_t si = 0; si < wl_signal_grid().size(); ++si) {
      for (std::size_t ni = 0; ni < wl_noise_grid().size(); ++ni) {
        const la::Cholesky* chol = cache.factor(h, si, ni);
        if (chol == nullptr) continue;
        const double lml = log_marginal(*chol, y_std);
        if (lml > best_lml) {
          best_lml = lml;
          best_h = h;
          best_si = si;
          best_ni = ni;
        }
      }
    }
  }
  if (!std::isfinite(best_lml)) {
    throw std::runtime_error("WlGp::fit_shared: no viable hyperparameters");
  }

  hyper_h_ = best_h;
  hyper_signal_ = wl_signal_grid()[best_si];
  hyper_noise_ = wl_noise_grid()[best_ni];
  hyper_lml_ = best_lml;

  // The winning cell factorized exactly during scoring, so the final fit is
  // a copy of its factor — the same L the full path's final factorization
  // produces, with zero jitter by construction.
  features_ = cache.features_at(best_h);
  chol_ = std::make_unique<la::Cholesky>(*cache.factor(best_h, best_si,
                                                       best_ni));
  obs::registry().gauge("gp.fit.jitter").set(chol_->jitter());
  alpha_ = chol_->solve(y_std);
}

Prediction WlGp::predict(const graph::Graph& g) const {
  if (!trained()) throw std::logic_error("WlGp::predict: model not trained");
  return predict_from_features(featurizer_->features(g, config_.max_h));
}

Prediction WlGp::predict_from_features(const graph::SparseVec& full) const {
  if (!trained()) throw std::logic_error("WlGp::predict: model not trained");
  const graph::SparseVec phi = filtered(full, hyper_h_);
  const std::size_t n = features_.size();
  std::vector<double> kvec(n);
  for (std::size_t i = 0; i < n; ++i) {
    kvec[i] = hyper_signal_ * graph::dot(phi, features_[i]);
  }
  double mean_std = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean_std += kvec[i] * alpha_[i];

  const auto v = chol_->solve_lower(kvec);
  double quad = 0.0;
  for (double vi : v) quad += vi * vi;
  const double self = hyper_signal_ * graph::dot(phi, phi);
  const double var_std = std::max(0.0, self - quad);

  Prediction out;
  out.mean = mean_std * y_scale_ + y_mean_;
  out.variance = var_std * y_scale_ * y_scale_;
  return out;
}

std::vector<double> WlGp::mean_gradient() const {
  if (!trained()) {
    throw std::logic_error("WlGp::mean_gradient: model not trained");
  }
  std::vector<double> grad(featurizer_->label_count(), 0.0);
  for (std::size_t i = 0; i < features_.size(); ++i) {
    for (const auto& [idx, val] : features_[i].entries()) {
      grad[idx] += alpha_[i] * val;
    }
  }
  for (double& g : grad) g *= hyper_signal_ * y_scale_;
  return grad;
}

double WlGp::mean_gradient(std::size_t feature_id) const {
  if (!trained()) {
    throw std::logic_error("WlGp::mean_gradient: model not trained");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < features_.size(); ++i) {
    acc += alpha_[i] * features_[i].get(feature_id);
  }
  return acc * hyper_signal_ * y_scale_;
}

}  // namespace intooa::gp
