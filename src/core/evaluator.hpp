#pragma once
// Topology-level evaluation service shared by INTO-OA and every baseline:
// sizes a topology with the inner BO loop (40 simulations), caches results
// by topology index, and keeps the global simulation counter and
// evaluation history that the Fig. 5 / Table II accounting is built on.
// Using one evaluator for all methods guarantees identical cost accounting
// across methods, as in the paper.

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "circuit/spec.hpp"
#include "circuit/topology.hpp"
#include "sizing/sizer.hpp"
#include "util/rng.hpp"

namespace intooa::core {

/// One topology evaluation in campaign order.
struct EvalRecord {
  circuit::Topology topology;
  sizing::SizedResult sized;
  std::size_t sims_before = 0;  ///< cumulative simulations before this eval
};

/// Caching, counting wrapper around the sizing loop.
class TopologyEvaluator {
 public:
  TopologyEvaluator(sizing::EvalContext context,
                    sizing::SizingConfig config = {});

  /// Sizes `topology` (or returns the cached result) and appends to the
  /// history on a fresh evaluation. The paper's methods never re-evaluate
  /// a visited topology, so cache hits do not consume simulations.
  const sizing::SizedResult& evaluate(const circuit::Topology& topology,
                                      util::Rng& rng);

  /// True when the topology has been evaluated already.
  bool visited(const circuit::Topology& topology) const;

  /// Appends a completed evaluation (from a checkpoint) without running the
  /// sizer: the record joins the history and cache and its simulation cost
  /// is added to the counter, exactly as if evaluate() had produced it.
  /// Records must be restored in their original order into an evaluator
  /// with no conflicting entries; throws std::invalid_argument when the
  /// topology is already present.
  void restore(EvalRecord record);

  /// Total simulator calls consumed so far.
  std::size_t total_simulations() const { return total_simulations_; }

  /// Cache accounting: lookups that returned a previously sized topology
  /// vs. lookups that ran the sizer. Mirrored into the obs metrics registry
  /// ("evaluator.cache_hit" / "evaluator.cache_miss") for the campaign
  /// telemetry report. restore() counts as neither.
  std::size_t cache_hits() const { return cache_hits_; }
  std::size_t cache_misses() const { return cache_misses_; }

  /// All fresh evaluations in order.
  const std::vector<EvalRecord>& history() const { return history_; }

  /// Topology indices of every history record, in evaluation order. Seeds
  /// an optimizer's visited set when it attaches to a restored evaluator.
  std::vector<std::size_t> visited_indices() const;

  /// Best feasible record index (by FoM), if any feasible design was seen.
  std::optional<std::size_t> best_feasible() const;

  /// Best record index under the constrained ranking (feasible-by-FoM,
  /// else least-violating); nullopt when no evaluations happened.
  std::optional<std::size_t> best_overall() const;

  /// Best-feasible-FoM-so-far sampled per simulation: element s is the
  /// best feasible FoM after s+1 simulations (0 while infeasible) — the
  /// Fig. 5 curve of one run.
  std::vector<double> fom_curve() const;

  const sizing::EvalContext& context() const { return sizer_.context(); }
  const sizing::Sizer& sizer() const { return sizer_; }

 private:
  sizing::Sizer sizer_;
  std::unordered_map<std::size_t, std::size_t> cache_;  // topo index -> record
  std::vector<EvalRecord> history_;
  std::size_t total_simulations_ = 0;
  std::size_t cache_hits_ = 0;
  std::size_t cache_misses_ = 0;
};

}  // namespace intooa::core
