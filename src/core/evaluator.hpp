#pragma once
// Topology-level evaluation service shared by INTO-OA and every baseline:
// sizes a topology with the inner BO loop (40 simulations), caches results
// by topology index, and keeps the global simulation counter and
// evaluation history that the Fig. 5 / Table II accounting is built on.
// Using one evaluator for all methods guarantees identical cost accounting
// across methods, as in the paper.
//
// Sizing is deterministic per topology: the inner BO draws from an RNG
// seeded by the evaluation's canonical EvalKey digest (spec + behavioral
// model + sizing protocol + topology), never from the campaign stream. A
// sized result is therefore a pure function of its key, which is what lets
// the persistent evaluation store (intooa::store) share results across
// campaigns, seeds and processes while keeping warm runs byte-identical to
// cold ones.
//
// Cache hierarchy on evaluate(): in-memory record cache -> attached
// ResultStore tier (read-through on miss, write-behind on fresh results)
// -> attached RemoteBackend tier (networked evaluation service) -> the
// sizing loop itself as the always-available fallback. A store or remote
// hit joins the history with full simulation-cost accounting, exactly as
// if the sizer had produced it, but performs zero local simulator work;
// by the deterministic key-seeded sizing discipline every tier returns
// byte-identical results, so campaigns are reproducible regardless of
// which tier answered.

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "circuit/spec.hpp"
#include "circuit/topology.hpp"
#include "core/eval_key.hpp"
#include "sizing/sizer.hpp"
#include "util/rng.hpp"

namespace intooa::core {

/// One topology evaluation in campaign order.
struct EvalRecord {
  circuit::Topology topology;
  sizing::SizedResult sized;
  std::size_t sims_before = 0;  ///< cumulative simulations before this eval
};

/// Persistence tier below the in-memory cache. Implementations (the
/// content-addressed store in intooa::store) must be safe to call from
/// concurrent evaluators and must never throw out of save(): persistence
/// failures degrade to cache misses, never to failed campaigns.
class ResultStore {
 public:
  virtual ~ResultStore() = default;

  /// Returns the stored record for `topology` under this tier's evaluation
  /// context, or nullopt. The returned record's sims_before is meaningless;
  /// the evaluator re-derives it from its own counter.
  virtual std::optional<EvalRecord> load(const circuit::Topology& topology) = 0;

  /// Persists a freshly computed (or checkpoint-restored) record. Must be
  /// idempotent for already-present keys.
  virtual void save(const EvalRecord& record) = 0;
};

/// Remote serving tier below the persistent store: delegates the sizing
/// work to a networked evaluation service (svc::RemoteBackend over a
/// svc::ClientPool). Implementations must honor the deterministic-sizing
/// contract — a returned record carries exactly the bytes local sizing
/// would have produced for the same EvalKey — and return nullopt (never
/// throw) when no endpoint is reachable, in which case the evaluator
/// falls back to its local sizer with an identical result. Must be safe
/// to call from concurrent evaluators.
class RemoteBackend {
 public:
  virtual ~RemoteBackend() = default;

  /// Evaluates `topology` remotely under this backend's bound evaluation
  /// context, or nullopt when the service could not serve it. The returned
  /// record's sims_before is meaningless; the evaluator re-derives it.
  virtual std::optional<EvalRecord> evaluate(
      const circuit::Topology& topology) = 0;
};

/// Caching, counting wrapper around the sizing loop.
class TopologyEvaluator {
 public:
  TopologyEvaluator(sizing::EvalContext context,
                    sizing::SizingConfig config = {});

  /// Sizes `topology` (or returns the cached/stored result) and appends to
  /// the history on a fresh evaluation. The paper's methods never
  /// re-evaluate a visited topology, so cache hits do not consume
  /// simulations; store hits consume their recorded simulation cost in the
  /// accounting but perform no simulator work.
  const sizing::SizedResult& evaluate(const circuit::Topology& topology);

  /// Attaches a persistence tier consulted on in-memory cache misses and
  /// fed every new history record (write-behind). Pass nullptr to detach.
  void attach_store(std::shared_ptr<ResultStore> store);

  /// Attaches a remote serving tier consulted after the store and before
  /// the local sizer. A remote result joins the history exactly like a
  /// store hit (full logical simulation cost, zero local simulator work)
  /// and is written behind to the attached store, if any. Pass nullptr to
  /// detach.
  void attach_remote(std::shared_ptr<RemoteBackend> remote);

  /// True when the topology has been evaluated already.
  bool visited(const circuit::Topology& topology) const;

  /// Appends a completed evaluation (from a checkpoint) without running the
  /// sizer: the record joins the history and cache and its simulation cost
  /// is added to the counter, exactly as if evaluate() had produced it.
  /// Records must be restored in their original order into an evaluator
  /// with no conflicting entries; throws std::invalid_argument when the
  /// topology is already present. Restored records are offered to the
  /// attached store (if any), so old checkpoints populate new stores.
  void restore(EvalRecord record);

  /// Total simulator calls consumed so far (store hits included: the
  /// accounting reflects the campaign's logical cost, not this process's
  /// physical work).
  std::size_t total_simulations() const { return total_simulations_; }

  /// Cache accounting: lookups that returned a previously sized topology
  /// vs. lookups that missed the in-memory tier. Mirrored into the obs
  /// metrics registry ("evaluator.cache_hit" / "evaluator.cache_miss") for
  /// the campaign telemetry report. restore() counts as neither.
  std::size_t cache_hits() const { return cache_hits_; }
  std::size_t cache_misses() const { return cache_misses_; }

  /// Memory-tier misses answered by the attached store without simulation.
  std::size_t store_hits() const { return store_hits_; }

  /// Store-tier misses answered by the attached remote backend without
  /// local simulation.
  std::size_t remote_hits() const { return remote_hits_; }

  /// The canonical evaluation-identity context of this evaluator.
  const EvalKeyContext& key_context() const { return keys_; }

  /// All fresh evaluations in order.
  const std::vector<EvalRecord>& history() const { return history_; }

  /// Topology indices of every history record, in evaluation order. Seeds
  /// an optimizer's visited set when it attaches to a restored evaluator.
  std::vector<std::size_t> visited_indices() const;

  /// Best feasible record index (by FoM), if any feasible design was seen.
  std::optional<std::size_t> best_feasible() const;

  /// Best record index under the constrained ranking (feasible-by-FoM,
  /// else least-violating); nullopt when no evaluations happened.
  std::optional<std::size_t> best_overall() const;

  /// Best-feasible-FoM-so-far sampled per simulation: element s is the
  /// best feasible FoM after s+1 simulations (0 while infeasible) — the
  /// Fig. 5 curve of one run.
  std::vector<double> fom_curve() const;

  const sizing::EvalContext& context() const { return sizer_.context(); }
  const sizing::Sizer& sizer() const { return sizer_; }

 private:
  const sizing::SizedResult& insert(EvalRecord record);

  sizing::Sizer sizer_;
  EvalKeyContext keys_;
  std::shared_ptr<ResultStore> store_;
  std::shared_ptr<RemoteBackend> remote_;
  std::unordered_map<std::size_t, std::size_t> cache_;  // topo index -> record
  std::vector<EvalRecord> history_;
  std::size_t total_simulations_ = 0;
  std::size_t cache_hits_ = 0;
  std::size_t cache_misses_ = 0;
  std::size_t store_hits_ = 0;
  std::size_t remote_hits_ = 0;
};

}  // namespace intooa::core
