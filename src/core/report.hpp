#pragma once
// Design-explanation reports: renders everything INTO-OA knows about one
// design — performance vs. spec, per-subcircuit WL-GP gradient
// attributions for every metric, and the strongest structures in the
// surrogates' view — as a markdown document a designer can archive next to
// the design (the deliverable form of the paper's interpretability story).

#include <string>

#include "circuit/spec.hpp"
#include "circuit/topology.hpp"
#include "core/optimizer.hpp"
#include "sizing/evaluate.hpp"

namespace intooa::core {

/// Report options.
struct ReportOptions {
  int max_depth = 1;         ///< WL depth of the attributions shown
  std::size_t top_k = 5;     ///< strongest structures per metric
};

/// Renders a markdown explanation of `topology` (with evaluation `point`
/// against `spec`) using the trained per-metric models of `optimizer`.
/// The optimizer must have completed a run().
std::string explain_design(const IntoOaOptimizer& optimizer,
                           const circuit::Topology& topology,
                           const sizing::EvalPoint& point,
                           const circuit::Spec& spec,
                           const ReportOptions& options = {});

}  // namespace intooa::core
