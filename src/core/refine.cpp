#include "core/refine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "circuit/circuit_graph.hpp"
#include "core/interpret.hpp"
#include "util/log.hpp"

namespace intooa::core {

namespace {

/// Carries component sizes from an old (topology, values) pair into a new
/// topology's schema by parameter name; parameters that only exist in the
/// new schema start at the geometric middle of their range.
std::vector<double> carry_values(const circuit::ParamSchema& old_schema,
                                 std::span<const double> old_values,
                                 const circuit::ParamSchema& new_schema) {
  std::vector<double> out(new_schema.size());
  for (std::size_t i = 0; i < new_schema.size(); ++i) {
    const auto& spec = new_schema.params[i];
    if (old_schema.contains(spec.name)) {
      out[i] = old_values[old_schema.index_of(spec.name)];
    } else {
      out[i] = spec.log_scale ? std::sqrt(spec.lo * spec.hi)
                              : 0.5 * (spec.lo + spec.hi);
    }
  }
  return out;
}

/// Indices of the parameters belonging to `slot` in `schema`.
std::vector<std::size_t> slot_param_indices(const circuit::ParamSchema& schema,
                                            circuit::Slot slot) {
  const std::string prefix = circuit::slot_name(slot) + ".";
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < schema.size(); ++i) {
    if (schema.params[i].name.rfind(prefix, 0) == 0) idx.push_back(i);
  }
  return idx;
}

}  // namespace

Refiner::Refiner(sizing::EvalContext context, RefineConfig config)
    : context_(context), sizer_(context), config_(config) {
  if (config_.sims_per_attempt < 4) {
    throw std::invalid_argument("Refiner: sims_per_attempt too small");
  }
  if (config_.max_alternatives == 0) {
    throw std::invalid_argument("Refiner: max_alternatives must be > 0");
  }
}

RefineResult Refiner::refine(const circuit::Topology& trusted,
                             std::span<const double> base_values,
                             const RefineModels& models,
                             util::Rng& rng) const {
  const circuit::ParamSchema old_schema =
      circuit::make_schema(trusted, context_.behavioral);
  if (base_values.size() != old_schema.size()) {
    throw std::invalid_argument("Refiner::refine: base_values size mismatch");
  }

  RefineResult result;
  result.original = trusted;
  result.refined = trusted;
  result.original_point = sizing::evaluate_sized(trusted, base_values, context_);
  result.refined_point = result.original_point;

  // Step 1: critical metric = most violated constraint margin.
  const auto& margins = result.original_point.margins;
  result.critical_metric = static_cast<std::size_t>(
      std::max_element(margins.begin(), margins.end()) - margins.begin());
  const gp::WlGp* critical_model = models.constraints[result.critical_metric];
  if (critical_model == nullptr || !critical_model->trained()) {
    throw std::invalid_argument(
        "Refiner::refine: no trained model for critical metric " +
        circuit::Spec::constraint_names()[result.critical_metric]);
  }

  // Step 2: occupied slot with the largest critical-margin gradient.
  std::optional<circuit::Slot> worst_slot;
  double worst_gradient = -std::numeric_limits<double>::infinity();
  for (circuit::Slot slot : circuit::all_slots()) {
    if (trusted.type(slot) == circuit::SubcktType::None) continue;
    const double g = slot_gradient(*critical_model, trusted, slot);
    if (g > worst_gradient) {
      worst_gradient = g;
      worst_slot = slot;
    }
  }
  if (!worst_slot) {
    // Fully bare trusted design: fall back to the compensation slot.
    worst_slot = circuit::Slot::V1Vout;
  }
  result.changed_slot = *worst_slot;
  result.old_type = trusted.type(*worst_slot);

  // Step 3: rank the slot's alternatives by predicted critical margin.
  struct Alternative {
    circuit::SubcktType type;
    double predicted_margin;
  };
  std::vector<Alternative> alternatives;
  for (circuit::SubcktType type : circuit::allowed_types(*worst_slot)) {
    if (type == result.old_type) continue;
    const circuit::Topology modified = trusted.with(*worst_slot, type);
    const graph::Graph g = circuit::build_circuit_graph(modified);
    alternatives.push_back({type, critical_model->predict(g).mean});
  }
  std::sort(alternatives.begin(), alternatives.end(),
            [](const Alternative& a, const Alternative& b) {
              return a.predicted_margin < b.predicted_margin;
            });

  // Step 4: attempt replacements, resizing only the modified subcircuit.
  const std::size_t tries =
      std::min(config_.max_alternatives, alternatives.size());
  for (std::size_t a = 0; a < tries; ++a) {
    const circuit::SubcktType new_type = alternatives[a].type;
    const circuit::Topology modified = trusted.with(*worst_slot, new_type);
    const circuit::ParamSchema new_schema =
        circuit::make_schema(modified, context_.behavioral);
    const std::vector<double> carried =
        carry_values(old_schema, base_values, new_schema);
    const std::vector<std::size_t> free_idx =
        slot_param_indices(new_schema, *worst_slot);

    RefineAttempt attempt;
    attempt.new_type = new_type;
    std::vector<double> attempt_values = carried;

    if (free_idx.empty()) {
      // Replacement has no tunable parameters (e.g. None): one simulation.
      attempt.result = sizing::evaluate_sized(modified, carried, context_);
      attempt.simulations = 1;
    } else {
      const sizing::SizedResult sized = sizer_.resize_subset(
          modified, carried, free_idx, rng, config_.sims_per_attempt);
      attempt.result = sized.best;
      attempt.simulations = sized.simulations;
      attempt_values = sized.best_values;
    }
    result.simulations += attempt.simulations;
    result.attempts.push_back(attempt);

    util::log_debug("refine attempt " + circuit::short_name(new_type) +
                    " feasible=" + std::to_string(attempt.result.feasible));

    if (attempt.result.feasible) {
      result.success = true;
      result.refined = modified;
      result.refined_values = attempt_values;
      result.refined_point = attempt.result;
      result.new_type = new_type;
      break;
    }
    // Keep the best attempt so far even if infeasible.
    if (sizing::better_than(attempt.result, result.refined_point)) {
      result.refined = modified;
      result.refined_values = attempt_values;
      result.refined_point = attempt.result;
      result.new_type = new_type;
    }
  }
  return result;
}

}  // namespace intooa::core
