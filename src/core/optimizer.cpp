#include "core/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_set>

#include "circuit/circuit_graph.hpp"
#include "gp/acquisition.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "runtime/executor.hpp"
#include "runtime/parallel.hpp"
#include "util/log.hpp"

namespace intooa::core {

namespace {
constexpr double kMarginClamp = 3.0;

std::array<double, IntoOaOptimizer::kModelCount> model_targets(
    const sizing::EvalPoint& point) {
  std::array<double, IntoOaOptimizer::kModelCount> t{};
  t[0] = point.objective();
  for (std::size_t k = 0; k < point.margins.size(); ++k) {
    t[k + 1] = std::clamp(point.margins[k], -kMarginClamp, kMarginClamp);
  }
  return t;
}

/// Structurally invalid designs (unstable, no crossing) have FoM = 0, and
/// the raw log-objective sentinel (-6) would dwarf the real signal after
/// standardization. Squash those rows to just below the worst structurally
/// valid observation so the objective GP keeps its resolution where it
/// matters.
void soften_invalid_objectives(const std::vector<EvalRecord>& history,
                               std::vector<double>& objectives) {
  double worst_valid = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < history.size(); ++i) {
    if (history[i].sized.best.perf.valid) {
      worst_valid = std::min(worst_valid, objectives[i]);
    }
  }
  if (!std::isfinite(worst_valid)) return;  // nothing valid yet
  for (std::size_t i = 0; i < history.size(); ++i) {
    if (!history[i].sized.best.perf.valid) {
      objectives[i] = worst_valid - 1.0;
    }
  }
}
}  // namespace

IntoOaOptimizer::IntoOaOptimizer(OptimizerConfig config)
    : config_(config),
      featurizer_(std::make_shared<graph::WlFeaturizer>(config.wlgp.max_h)) {
  if (config_.init_topologies < 2) {
    throw std::invalid_argument(
        "IntoOaOptimizer: need at least 2 initial topologies");
  }
  if (config_.elite_count == 0) {
    throw std::invalid_argument("IntoOaOptimizer: elite_count must be > 0");
  }
  models_.reserve(kModelCount);
  for (std::size_t i = 0; i < kModelCount; ++i) {
    models_.emplace_back(featurizer_, config_.wlgp);
  }
}

void IntoOaOptimizer::fit_models(const TopologyEvaluator& evaluator) {
  INTOOA_SPAN("optimizer.fit_models");
  const auto& history = evaluator.history();

  // The cache is valid iff its records are a prefix of the history (the
  // normal case: one appended record per BO iteration). Attaching to a
  // different or rewound evaluator rebuilds from scratch.
  if (!fit_cache_) {
    fit_cache_ =
        std::make_unique<gp::WlFitCache>(featurizer_, config_.wlgp.max_h);
  }
  bool is_prefix = cached_ids_.size() <= history.size();
  for (std::size_t i = 0; is_prefix && i < cached_ids_.size(); ++i) {
    is_prefix = cached_ids_[i] == history[i].topology.index();
  }
  if (!is_prefix) {
    fit_cache_->clear();
    cached_ids_.clear();
  }
  for (std::size_t i = cached_ids_.size(); i < history.size(); ++i) {
    fit_cache_->append(circuit::build_circuit_graph(history[i].topology));
    cached_ids_.push_back(history[i].topology.index());
  }

  std::vector<double> column(history.size());
  for (std::size_t m = 0; m < kModelCount; ++m) {
    for (std::size_t i = 0; i < history.size(); ++i) {
      column[i] = model_targets(history[i].sized.best)[m];
    }
    if (m == 0) soften_invalid_objectives(history, column);
    models_[m].fit_shared(*fit_cache_, column);
  }
}

std::vector<circuit::Topology> IntoOaOptimizer::elite(
    const TopologyEvaluator& evaluator) const {
  const auto& history = evaluator.history();
  std::vector<std::size_t> order(history.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return sizing::better_than(history[a].sized.best, history[b].sized.best);
  });
  std::vector<circuit::Topology> best;
  for (std::size_t i = 0; i < order.size() && best.size() < config_.elite_count;
       ++i) {
    best.push_back(history[order[i]].topology);
  }
  return best;
}

OptimizationOutcome IntoOaOptimizer::run(TopologyEvaluator& evaluator,
                                         util::Rng& rng) {
  // Seed the visited set from the evaluator's existing history: a resumed
  // campaign must never re-propose an already-evaluated topology, and
  // restored records count toward the initial dataset (the init loop below
  // only tops up any shortfall).
  std::unordered_set<std::size_t> visited;
  for (const std::size_t idx : evaluator.visited_indices()) {
    visited.insert(idx);
  }

  // Line 1 of Alg. 1: random initial dataset.
  std::size_t guard = 0;
  while (visited.size() < config_.init_topologies && guard < 100000) {
    const circuit::Topology topo = circuit::Topology::random(rng);
    if (visited.count(topo.index())) {
      ++guard;
      continue;
    }
    evaluator.evaluate(topo);
    visited.insert(topo.index());
  }

  // Lines 4-10: BO iterations.
  for (std::size_t iter = 0; iter < config_.iterations; ++iter) {
    fit_models(evaluator);  // lines 2 / 9

    const std::vector<circuit::Topology> seeds = elite(evaluator);
    const std::vector<circuit::Topology> pool =
        generate_candidates(config_.candidates, seeds, visited, rng);
    if (pool.empty()) break;  // design space exhausted

    // Incumbent for EI: best feasible objective so far.
    bool have_feasible = false;
    double best_objective = 0.0;
    for (const auto& record : evaluator.history()) {
      const auto& point = record.sized.best;
      if (point.feasible &&
          (!have_feasible || point.objective() > best_objective)) {
        have_feasible = true;
        best_objective = point.objective();
      }
    }

    // Line 6: argmax of wEI over the pool. Featurization stays serial so the
    // shared WL dictionary grows in candidate order exactly as in a serial
    // run; the per-candidate GP posteriors and acquisition are then scored
    // in parallel (read-only on the trained models and the dictionary), so
    // the scores — and the argmax — are identical for any thread count.
    obs::registry().counter("optimizer.iterations").add();
    obs::registry().counter("optimizer.candidates_scored").add(pool.size());
    const std::vector<double> scores = [&] {
      INTOOA_SPAN("optimizer.score_pool");
      std::vector<graph::SparseVec> pool_features(pool.size());
      for (std::size_t c = 0; c < pool.size(); ++c) {
        const graph::Graph g = circuit::build_circuit_graph(pool[c]);
        pool_features[c] = featurizer_->features(g, config_.wlgp.max_h);
      }
      return runtime::parallel_map(
          runtime::global_pool(), pool.size(), [&](std::size_t c) {
            const graph::SparseVec& full = pool_features[c];
            const gp::Prediction obj = models_[0].predict_from_features(full);
            gp::WeiInputs in;
            in.objective_mean = obj.mean;
            in.objective_variance = obj.variance;
            in.best_feasible = best_objective;
            in.have_feasible = have_feasible;
            std::array<double, circuit::Spec::kConstraintCount> cm{}, cv{};
            for (std::size_t k = 0; k < cm.size(); ++k) {
              const gp::Prediction p =
                  models_[k + 1].predict_from_features(full);
              cm[k] = p.mean;
              cv[k] = p.variance;
            }
            in.constraint_means = cm;
            in.constraint_variances = cv;
            return gp::weighted_ei(in);
          });
    }();
    const std::size_t best_candidate = select_best_candidate(scores, rng);

    // Lines 7-8, 10: evaluate, extend dataset, mark visited.
    evaluator.evaluate(pool[best_candidate]);
    visited.insert(pool[best_candidate].index());
    util::log_debug("INTO-OA iter " + std::to_string(iter + 1) + ": " +
                    pool[best_candidate].to_string());
  }

  // Final model fit so interpretability sees the full dataset.
  fit_models(evaluator);

  OptimizationOutcome outcome;
  const auto best_feasible = evaluator.best_feasible();
  const auto best_any = best_feasible ? best_feasible : evaluator.best_overall();
  outcome.success = best_feasible.has_value();
  outcome.best_index = best_any;
  if (best_any) {
    const auto& record = evaluator.history()[*best_any];
    outcome.best_topology = record.topology;
    outcome.best_point = record.sized.best;
    outcome.best_values = record.sized.best_values;
  }
  return outcome;
}

const gp::WlGp& IntoOaOptimizer::objective_model() const {
  if (!models_[0].trained()) {
    throw std::logic_error("IntoOaOptimizer: run() has not been called");
  }
  return models_[0];
}

const gp::WlGp& IntoOaOptimizer::constraint_model(std::size_t i) const {
  if (i >= circuit::Spec::kConstraintCount) {
    throw std::out_of_range("IntoOaOptimizer: constraint index");
  }
  if (!models_[i + 1].trained()) {
    throw std::logic_error("IntoOaOptimizer: run() has not been called");
  }
  return models_[i + 1];
}

}  // namespace intooa::core
