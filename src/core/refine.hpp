#pragma once
// Gradient-guided topology refinement (Sec. III-C, validated in Sec. IV-C /
// Fig. 7 / Table IV): improve a trusted existing design so it meets a
// target Spec while changing exactly one variable subcircuit and resizing
// only the modified part.
//
// Procedure (mirroring the paper):
//   1. simulate the trusted design; the critical metric is its most
//      violated constraint margin (lower margin = better);
//   2. among the occupied variable slots, the one whose WL feature has the
//      LARGEST critical-margin gradient contributes most negatively — it
//      is selected for replacement;
//   3. alternatives for that slot are ranked most-promising-first by the
//      WL-GP (smallest predicted critical margin — the model-side
//      realization of "the alternative with the smallest gradient");
//   4. each attempt resizes only the modified subcircuit's parameters
//      (sizes of every untouched component are preserved) on a small
//      simulation budget, and stops at the first attempt meeting the Spec.

#include <array>
#include <optional>
#include <span>
#include <vector>

#include "circuit/spec.hpp"
#include "circuit/topology.hpp"
#include "core/evaluator.hpp"
#include "gp/wlgp.hpp"
#include "sizing/sizer.hpp"
#include "util/rng.hpp"

namespace intooa::core {

/// Refinement budget knobs (defaults = paper protocol: 40 simulations per
/// attempt, up to 3 alternatives tried).
struct RefineConfig {
  std::size_t sims_per_attempt = 40;
  std::size_t max_alternatives = 3;
};

/// Trained surrogate models driving the refinement. Constraint models are
/// in Spec::constraint_names() order and model the normalized margins
/// (lower = better).
struct RefineModels {
  const gp::WlGp* objective = nullptr;  ///< log-FoM model (optional)
  std::array<const gp::WlGp*, circuit::Spec::kConstraintCount> constraints{};
};

/// One attempted replacement.
struct RefineAttempt {
  circuit::SubcktType new_type = circuit::SubcktType::None;
  sizing::EvalPoint result;
  std::size_t simulations = 0;
};

/// Refinement outcome.
struct RefineResult {
  circuit::Topology original;
  sizing::EvalPoint original_point;
  std::size_t critical_metric = 0;  ///< index into Spec::constraint_names()

  bool success = false;
  circuit::Topology refined;        ///< == original when !success
  std::vector<double> refined_values;
  sizing::EvalPoint refined_point;
  circuit::Slot changed_slot = circuit::Slot::V1Vout;
  circuit::SubcktType old_type = circuit::SubcktType::None;
  circuit::SubcktType new_type = circuit::SubcktType::None;

  std::vector<RefineAttempt> attempts;
  std::size_t simulations = 0;  ///< total across attempts
};

/// Gradient-guided refiner bound to one Spec (via the EvalContext).
class Refiner {
 public:
  Refiner(sizing::EvalContext context, RefineConfig config = {});

  /// Refines `trusted` (with its trusted sizing `base_values`, in schema
  /// order) using the trained `models`. Throws std::invalid_argument when
  /// no constraint model is provided for the critical metric.
  RefineResult refine(const circuit::Topology& trusted,
                      std::span<const double> base_values,
                      const RefineModels& models, util::Rng& rng) const;

 private:
  sizing::EvalContext context_;
  sizing::Sizer sizer_;
  RefineConfig config_;
};

}  // namespace intooa::core
