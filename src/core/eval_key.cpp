#include "core/eval_key.hpp"

#include <charconv>
#include <sstream>
#include <stdexcept>

namespace intooa::core {

namespace {

/// Shortest decimal representation that parses back to exactly `v`.
std::string exact(double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc()) throw std::runtime_error("eval_key: to_chars");
  return std::string(buf, ptr);
}

std::uint64_t fnv1a64(std::string_view data,
                      std::uint64_t h = 0xcbf29ce484222325ULL) {
  for (const char c : data) {
    h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

EvalKeyContext::EvalKeyContext(const sizing::EvalContext& context,
                               const sizing::SizingConfig& config) {
  const circuit::Spec& s = context.spec;
  const circuit::BehavioralConfig& b = context.behavioral;
  const sim::AcOptions& a = context.ac;
  std::ostringstream out;
  out << "spec " << s.name << ' ' << exact(s.gain_db_min) << ' '
      << exact(s.gbw_hz_min) << ' ' << exact(s.pm_deg_min) << ' '
      << exact(s.power_w_max) << ' ' << exact(s.load_cap);
  out << " | behav " << exact(b.vdd) << ' ' << exact(b.stage_intrinsic_gain)
      << ' ' << exact(b.stage_ft_hz) << ' ' << exact(b.stage_c0) << ' '
      << exact(b.gm_over_id) << ' ' << exact(b.gmin) << ' '
      << exact(b.load_cap) << ' ' << exact(b.gm_lo) << ' ' << exact(b.gm_hi)
      << ' ' << exact(b.r_lo) << ' ' << exact(b.r_hi) << ' ' << exact(b.c_lo)
      << ' ' << exact(b.c_hi);
  out << " | ac " << exact(a.f_min_hz) << ' ' << exact(a.f_max_hz) << ' '
      << a.points_per_decade << ' ' << (a.check_stability ? 1 : 0);
  out << " | sizing " << config.init_points << ' ' << config.iterations << ' '
      << config.candidates << ' ' << config.refit_hyper_every;
  prefix_ = out.str();
  prefix_digest_ = fnv1a64(prefix_);
}

EvalKey EvalKeyContext::key_for(const circuit::Topology& topology) const {
  EvalKey key;
  key.fingerprint = prefix_ + " | topo ";
  for (const auto type : topology.types()) {
    key.fingerprint += std::to_string(static_cast<unsigned>(type));
    key.fingerprint += ',';
  }
  // Chain the canonical slot-vector digest into the prefix digest so the
  // 64-bit address reflects the topology even if the textual rendering of
  // two different configurations ever coincided.
  std::uint64_t h = prefix_digest_;
  h = (h ^ topology.canonical_digest()) * 0x100000001b3ULL;
  key.digest = fnv1a64(key.fingerprint, h);
  return key;
}

}  // namespace intooa::core
