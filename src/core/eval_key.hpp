#pragma once
// Canonical identity of one topology evaluation. Under the deterministic
// sizing discipline, a sized result is a pure function of
// (spec, behavioral model, AC options, sizing protocol, topology): the
// inner sizing BO draws its randomness from an RNG seeded by this key's
// digest, never from the campaign stream. EvalKey captures exactly that
// function input, so two campaigns (or two processes) that evaluate a
// semantically identical design under the same configuration produce — and
// can therefore share — byte-identical results. The persistent evaluation
// store (intooa::store) addresses records by this key.
//
// The fingerprint is an exact, human-readable rendering of every input
// (doubles via shortest-round-trip to_chars); the digest is FNV-1a 64 over
// the fingerprint combined with the topology's canonical slot-vector
// digest. Store lookups verify the full fingerprint, so a 64-bit digest
// collision degrades to a cache miss, never to a wrong result.

#include <cstdint>
#include <string>

#include "circuit/topology.hpp"
#include "sizing/evaluate.hpp"
#include "sizing/sizer.hpp"

namespace intooa::core {

/// Content address of one (configuration, topology) evaluation.
struct EvalKey {
  std::uint64_t digest = 0;  ///< 64-bit key digest (also the sizing seed)
  std::string fingerprint;   ///< exact key material, verified on store hits
};

/// Precomputed per-(spec, config) fingerprint prefix; key_for() extends it
/// per topology. One instance lives in every TopologyEvaluator and every
/// store tier bound to it.
class EvalKeyContext {
 public:
  EvalKeyContext(const sizing::EvalContext& context,
                 const sizing::SizingConfig& config);

  /// Full key of evaluating `topology` under this context.
  EvalKey key_for(const circuit::Topology& topology) const;

  /// The (spec, behavioral, ac, sizing) part of the fingerprint.
  const std::string& prefix() const { return prefix_; }

 private:
  std::string prefix_;
  std::uint64_t prefix_digest_ = 0;
};

}  // namespace intooa::core
