#include "core/interpret.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "circuit/circuit_graph.hpp"

namespace intooa::core {

std::vector<StructureImpact> slot_impacts(const gp::WlGp& model,
                                          const circuit::Topology& topology,
                                          int max_depth) {
  const int depth_cap = std::min(max_depth, model.chosen_h());
  const graph::Graph g = circuit::build_circuit_graph(topology);
  auto featurizer = model.featurizer_ptr();
  const auto labels = featurizer->node_labels(g, depth_cap);
  const auto slot_nodes = circuit::slot_node_ids(topology);
  const std::vector<double> grad = model.mean_gradient();

  std::vector<StructureImpact> impacts;
  for (std::size_t s = 0; s < circuit::kSlotCount; ++s) {
    const graph::NodeId node = slot_nodes[s];
    if (node == circuit::kInvalidNode) continue;
    for (int d = 0; d <= depth_cap; ++d) {
      const std::size_t id = labels[static_cast<std::size_t>(d)][node];
      StructureImpact impact;
      impact.feature_id = id;
      impact.depth = d;
      impact.structure = featurizer->provenance(id);
      impact.gradient = id < grad.size() ? grad[id] : 0.0;
      impact.slot = circuit::all_slots()[s];
      impacts.push_back(std::move(impact));
    }
  }
  return impacts;
}

double slot_gradient(const gp::WlGp& model, const circuit::Topology& topology,
                     circuit::Slot slot, int depth) {
  if (topology.type(slot) == circuit::SubcktType::None) return 0.0;
  const int depth_cap = std::min(depth, model.chosen_h());
  const graph::Graph g = circuit::build_circuit_graph(topology);
  auto featurizer = model.featurizer_ptr();
  const auto labels = featurizer->node_labels(g, depth_cap);
  const auto slot_nodes = circuit::slot_node_ids(topology);
  const graph::NodeId node =
      slot_nodes[static_cast<std::size_t>(slot)];
  const std::size_t id = labels[static_cast<std::size_t>(depth_cap)][node];
  return model.mean_gradient(id);
}

std::vector<StructureImpact> top_structures(const gp::WlGp& model,
                                            std::size_t top_k,
                                            int max_depth) {
  const auto& featurizer = model.featurizer();
  const std::vector<double> grad = model.mean_gradient();
  std::vector<StructureImpact> all;
  for (std::size_t id = 0; id < grad.size(); ++id) {
    const int depth = featurizer.depth_of(id);
    if (depth > max_depth || grad[id] == 0.0) continue;
    StructureImpact impact;
    impact.feature_id = id;
    impact.depth = depth;
    impact.structure = featurizer.provenance(id);
    impact.gradient = grad[id];
    all.push_back(std::move(impact));
  }
  std::sort(all.begin(), all.end(),
            [](const StructureImpact& a, const StructureImpact& b) {
              return std::fabs(a.gradient) > std::fabs(b.gradient);
            });
  if (all.size() > top_k) all.resize(top_k);
  return all;
}

}  // namespace intooa::core
