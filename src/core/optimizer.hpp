#pragma once
// Algorithm 1 of the paper: WL kernel-based Bayesian optimization over the
// discrete topology design space. One WL-GP per performance metric (the
// log-FoM objective and the four normalized constraint margins), the wEI
// acquisition [1] for constraint handling, and the mixed
// mutation/random-sampling candidate generator. Visited topologies are
// excluded from candidate pools and never re-simulated.

#include <memory>
#include <optional>
#include <vector>

#include "circuit/spec.hpp"
#include "core/candidates.hpp"
#include "core/evaluator.hpp"
#include "gp/fit_cache.hpp"
#include "gp/wlgp.hpp"
#include "graph/wl.hpp"
#include "util/rng.hpp"

namespace intooa::core {

/// Outer-loop configuration (defaults = paper protocol: 10 random initial
/// topologies, 50 BO iterations, pool of 200 candidates).
struct OptimizerConfig {
  std::size_t init_topologies = 10;
  std::size_t iterations = 50;
  std::size_t elite_count = 5;  ///< # best designs seeding mutation
  CandidateConfig candidates;
  gp::WlGpConfig wlgp;
};

/// Summary of one optimization campaign. The full history (and the
/// simulation accounting) lives in the TopologyEvaluator that was passed
/// to run().
struct OptimizationOutcome {
  bool success = false;  ///< a feasible design was found
  std::optional<std::size_t> best_index;  ///< into evaluator history
  circuit::Topology best_topology;
  sizing::EvalPoint best_point;
  std::vector<double> best_values;  ///< sizing of the best design
};

/// The INTO-OA topology optimizer.
class IntoOaOptimizer {
 public:
  explicit IntoOaOptimizer(OptimizerConfig config = {});

  /// Runs Algorithm 1 against `evaluator` (which defines the Spec and owns
  /// the cost accounting). The trained per-metric WL-GPs remain available
  /// afterwards for interpretability analysis.
  OptimizationOutcome run(TopologyEvaluator& evaluator, util::Rng& rng);

  /// Number of modeled metrics: 1 objective + Spec::kConstraintCount.
  static constexpr std::size_t kModelCount =
      1 + circuit::Spec::kConstraintCount;

  /// The objective (log-FoM) WL-GP; valid after run().
  const gp::WlGp& objective_model() const;

  /// Constraint-margin WL-GP `i` (order of Spec::constraint_names()).
  const gp::WlGp& constraint_model(std::size_t i) const;

  /// The featurizer shared by all models.
  std::shared_ptr<graph::WlFeaturizer> featurizer() const {
    return featurizer_;
  }

  const OptimizerConfig& config() const { return config_; }

  /// (Re)fits all per-metric WL-GPs to the evaluator history through the
  /// shared incremental fit cache: records already cached are reused, new
  /// ones extend the per-h Gram matrices and grid Cholesky factors by one
  /// bordered row each. Pointing the optimizer at a history the cache is
  /// not a prefix of drops and rebuilds the cache. Called once per BO
  /// iteration by run(); public so benchmarks and tests can drive the fit
  /// path directly.
  void fit_models(const TopologyEvaluator& evaluator);

 private:
  std::vector<circuit::Topology> elite(const TopologyEvaluator& evaluator) const;

  OptimizerConfig config_;
  std::shared_ptr<graph::WlFeaturizer> featurizer_;
  std::vector<gp::WlGp> models_;  // [0] objective, [1..4] constraints
  std::unique_ptr<gp::WlFitCache> fit_cache_;
  std::vector<std::size_t> cached_ids_;  // topology index per cached record
};

}  // namespace intooa::core
