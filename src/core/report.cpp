#include "core/report.hpp"

#include <sstream>

#include "core/interpret.hpp"
#include "util/table.hpp"

namespace intooa::core {

namespace {

const char* direction_word(double margin_gradient) {
  // Margins are lower-is-better: a negative gradient means "more of this
  // structure helps this metric".
  if (margin_gradient < 0.0) return "helps";
  if (margin_gradient > 0.0) return "hurts";
  return "neutral";
}

}  // namespace

std::string explain_design(const IntoOaOptimizer& optimizer,
                           const circuit::Topology& topology,
                           const sizing::EvalPoint& point,
                           const circuit::Spec& spec,
                           const ReportOptions& options) {
  std::ostringstream out;
  out << "# Design report: " << topology.to_string() << "\n\n";

  // --- Performance vs. spec ---------------------------------------------
  out << "## Performance (spec " << spec.name << ")\n\n";
  out << "| metric | value | requirement | margin | met |\n";
  out << "|---|---|---|---|---|\n";
  const auto& margins = point.margins;
  const auto row = [&](const std::string& metric, const std::string& value,
                       const std::string& req, double margin) {
    out << "| " << metric << " | " << value << " | " << req << " | "
        << util::fmt(margin, 3) << " | " << (margin <= 0.0 ? "yes" : "NO")
        << " |\n";
  };
  row("Gain", util::fmt_fixed(point.perf.gain_db, 2) + " dB",
      ">= " + util::fmt(spec.gain_db_min, 3) + " dB", margins[0]);
  row("GBW", util::fmt_fixed(point.perf.gbw_hz / 1e6, 3) + " MHz",
      ">= " + util::fmt(spec.gbw_hz_min / 1e6, 3) + " MHz", margins[1]);
  row("PM", util::fmt_fixed(point.perf.pm_deg, 2) + " deg",
      ">= " + util::fmt(spec.pm_deg_min, 3) + " deg", margins[2]);
  row("Power", util::fmt_fixed(point.perf.power_w / 1e-6, 2) + " uW",
      "<= " + util::fmt(spec.power_w_max / 1e-6, 3) + " uW", margins[3]);
  out << "\nFoM (Eq. 6): **" << util::fmt_fixed(point.fom, 2) << "**, "
      << (point.feasible ? "all constraints met" : "constraints violated")
      << ".\n\n";

  // --- Per-subcircuit attributions ---------------------------------------
  out << "## Subcircuit attributions (WL-GP gradients, Eq. 5)\n\n";
  out << "Margins are lower-is-better; 'helps' means adding this structure "
         "moves the metric toward the spec.\n\n";
  const auto& names = circuit::Spec::constraint_names();
  for (std::size_t m = 0; m < names.size(); ++m) {
    const auto& model = optimizer.constraint_model(m);
    out << "### " << names[m] << " (model h = " << model.chosen_h() << ")\n\n";
    bool any = false;
    for (const auto& impact :
         slot_impacts(model, topology, options.max_depth)) {
      if (impact.depth == 0) continue;
      out << "- `" << impact.structure
          << "`: gradient " << util::fmt(impact.gradient, 3) << " ("
          << direction_word(impact.gradient) << ")\n";
      any = true;
    }
    if (!any) out << "- (no occupied variable slots)\n";
    out << "\n";
  }

  // --- Globally strongest structures -------------------------------------
  out << "## Strongest structures in the objective surrogate\n\n";
  for (const auto& s : top_structures(optimizer.objective_model(),
                                      options.top_k, options.max_depth)) {
    out << "- `" << s.structure << "` (depth " << s.depth
        << "): d(log10 FoM)/d(count) = " << util::fmt(s.gradient, 3) << "\n";
  }
  out << "\n";
  return out.str();
}

}  // namespace intooa::core
