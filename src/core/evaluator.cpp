#include "core/evaluator.hpp"

#include "obs/metrics.hpp"

namespace intooa::core {

TopologyEvaluator::TopologyEvaluator(sizing::EvalContext context,
                                     sizing::SizingConfig config)
    : sizer_(std::move(context), config),
      keys_(sizer_.context(), sizer_.config()) {}

void TopologyEvaluator::attach_store(std::shared_ptr<ResultStore> store) {
  store_ = std::move(store);
}

void TopologyEvaluator::attach_remote(std::shared_ptr<RemoteBackend> remote) {
  remote_ = std::move(remote);
}

const sizing::SizedResult& TopologyEvaluator::insert(EvalRecord record) {
  const std::size_t key = record.topology.index();
  record.sims_before = total_simulations_;
  total_simulations_ += record.sized.simulations;
  history_.push_back(std::move(record));
  cache_[key] = history_.size() - 1;
  return history_.back().sized;
}

const sizing::SizedResult& TopologyEvaluator::evaluate(
    const circuit::Topology& topology) {
  // Static refs: one registry lookup per process, wait-free updates after.
  static obs::Counter& hit_counter =
      obs::registry().counter("evaluator.cache_hit");
  static obs::Counter& miss_counter =
      obs::registry().counter("evaluator.cache_miss");
  static obs::Counter& store_hit_counter =
      obs::registry().counter("evaluator.store_hit");
  static obs::Counter& remote_hit_counter =
      obs::registry().counter("evaluator.remote_hit");
  static obs::Counter& sizer_counter =
      obs::registry().counter("evaluator.sizer_runs");
  static obs::Counter& sim_counter =
      obs::registry().counter("evaluator.simulations");

  const std::size_t key = topology.index();
  const auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++cache_hits_;
    hit_counter.add();
    return history_[it->second].sized;
  }
  ++cache_misses_;
  miss_counter.add();

  // Read-through: a stored result joins the history with its full logical
  // simulation cost but zero simulator work in this process.
  if (store_) {
    if (auto stored = store_->load(topology)) {
      ++store_hits_;
      store_hit_counter.add();
      return insert(std::move(*stored));
    }
  }

  // Remote tier: the networked evaluation service produces exactly the
  // bytes local sizing would (deterministic key-seeded sizing), so a served
  // record joins the history like a store hit and back-fills the store. An
  // unreachable service degrades to the local sizer, never to a failure.
  if (remote_) {
    if (auto served = remote_->evaluate(topology)) {
      ++remote_hits_;
      remote_hit_counter.add();
      const sizing::SizedResult& sized = insert(std::move(*served));
      if (store_) store_->save(history_.back());  // write-behind
      return sized;
    }
  }

  EvalRecord record;
  record.topology = topology;
  // Deterministic sizing: the inner BO's randomness is a pure function of
  // the evaluation key, so the result is identical wherever (and whenever)
  // this topology is evaluated under the same configuration.
  util::Rng sizing_rng(keys_.key_for(topology).digest);
  record.sized = sizer_.size(topology, sizing_rng);
  sizer_counter.add();
  sim_counter.add(record.sized.simulations);
  const sizing::SizedResult& sized = insert(std::move(record));
  if (store_) store_->save(history_.back());  // write-behind
  return sized;
}

void TopologyEvaluator::restore(EvalRecord record) {
  if (cache_.count(record.topology.index()) > 0) {
    throw std::invalid_argument(
        "TopologyEvaluator::restore: topology already evaluated");
  }
  insert(std::move(record));
  if (store_) store_->save(history_.back());
}

bool TopologyEvaluator::visited(const circuit::Topology& topology) const {
  return cache_.count(topology.index()) > 0;
}

std::vector<std::size_t> TopologyEvaluator::visited_indices() const {
  std::vector<std::size_t> indices;
  indices.reserve(history_.size());
  for (const auto& record : history_) {
    indices.push_back(record.topology.index());
  }
  return indices;
}

std::optional<std::size_t> TopologyEvaluator::best_feasible() const {
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < history_.size(); ++i) {
    const auto& point = history_[i].sized.best;
    if (!point.feasible) continue;
    if (!best || point.fom > history_[*best].sized.best.fom) best = i;
  }
  return best;
}

std::optional<std::size_t> TopologyEvaluator::best_overall() const {
  if (history_.empty()) return std::nullopt;
  std::size_t best = 0;
  for (std::size_t i = 1; i < history_.size(); ++i) {
    if (sizing::better_than(history_[i].sized.best,
                            history_[best].sized.best)) {
      best = i;
    }
  }
  return best;
}

std::vector<double> TopologyEvaluator::fom_curve() const {
  std::vector<double> curve;
  curve.reserve(total_simulations_);
  double best = 0.0;
  for (const auto& record : history_) {
    for (const auto& point : record.sized.history) {
      if (point.feasible && point.fom > best) best = point.fom;
      curve.push_back(best);
    }
  }
  return curve;
}

}  // namespace intooa::core
