#include "core/evaluator.hpp"

#include "obs/metrics.hpp"

namespace intooa::core {

TopologyEvaluator::TopologyEvaluator(sizing::EvalContext context,
                                     sizing::SizingConfig config)
    : sizer_(std::move(context), config) {}

const sizing::SizedResult& TopologyEvaluator::evaluate(
    const circuit::Topology& topology, util::Rng& rng) {
  // Static refs: one registry lookup per process, wait-free updates after.
  static obs::Counter& hit_counter =
      obs::registry().counter("evaluator.cache_hit");
  static obs::Counter& miss_counter =
      obs::registry().counter("evaluator.cache_miss");
  static obs::Counter& sim_counter =
      obs::registry().counter("evaluator.simulations");

  const std::size_t key = topology.index();
  const auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++cache_hits_;
    hit_counter.add();
    return history_[it->second].sized;
  }
  ++cache_misses_;
  miss_counter.add();

  EvalRecord record;
  record.topology = topology;
  record.sims_before = total_simulations_;
  record.sized = sizer_.size(topology, rng);
  total_simulations_ += record.sized.simulations;
  sim_counter.add(record.sized.simulations);
  history_.push_back(std::move(record));
  cache_[key] = history_.size() - 1;
  return history_.back().sized;
}

void TopologyEvaluator::restore(EvalRecord record) {
  const std::size_t key = record.topology.index();
  if (cache_.count(key) > 0) {
    throw std::invalid_argument(
        "TopologyEvaluator::restore: topology already evaluated");
  }
  record.sims_before = total_simulations_;
  total_simulations_ += record.sized.simulations;
  history_.push_back(std::move(record));
  cache_[key] = history_.size() - 1;
}

bool TopologyEvaluator::visited(const circuit::Topology& topology) const {
  return cache_.count(topology.index()) > 0;
}

std::vector<std::size_t> TopologyEvaluator::visited_indices() const {
  std::vector<std::size_t> indices;
  indices.reserve(history_.size());
  for (const auto& record : history_) {
    indices.push_back(record.topology.index());
  }
  return indices;
}

std::optional<std::size_t> TopologyEvaluator::best_feasible() const {
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < history_.size(); ++i) {
    const auto& point = history_[i].sized.best;
    if (!point.feasible) continue;
    if (!best || point.fom > history_[*best].sized.best.fom) best = i;
  }
  return best;
}

std::optional<std::size_t> TopologyEvaluator::best_overall() const {
  if (history_.empty()) return std::nullopt;
  std::size_t best = 0;
  for (std::size_t i = 1; i < history_.size(); ++i) {
    if (sizing::better_than(history_[i].sized.best,
                            history_[best].sized.best)) {
      best = i;
    }
  }
  return best;
}

std::vector<double> TopologyEvaluator::fom_curve() const {
  std::vector<double> curve;
  curve.reserve(total_simulations_);
  double best = 0.0;
  for (const auto& record : history_) {
    for (const auto& point : record.sized.history) {
      if (point.feasible && point.fom > best) best = point.fom;
      curve.push_back(best);
    }
  }
  return curve;
}

}  // namespace intooa::core
