#pragma once
// Interpretability layer (Sec. III-C): translates WL-GP posterior-mean
// gradients (Eq. 5) into per-subcircuit performance attributions. For each
// occupied variable slot of a topology, the slot's graph node carries one
// WL feature per depth (its compressed label); the gradient of the metric
// with respect to those features is the structure's estimated impact —
// sign gives direction, magnitude gives sensitivity, exactly as the paper
// validates against remove-and-resimulate sensitivity analysis in
// Sec. IV-B.

#include <optional>
#include <string>
#include <vector>

#include "circuit/topology.hpp"
#include "gp/wlgp.hpp"

namespace intooa::core {

/// Gradient attribution of one circuit structure (feature) for one metric.
struct StructureImpact {
  std::size_t feature_id = 0;
  int depth = 0;            ///< WL iteration at which the feature appears
  std::string structure;    ///< human-readable provenance, e.g. "RCs{v1,vout}"
  double gradient = 0.0;    ///< d(metric)/d(feature count), Eq. 5
  std::optional<circuit::Slot> slot;  ///< set when attributable to one slot
};

/// Per-slot gradient attribution of `model`'s metric over `topology`.
/// For each occupied slot, reports the gradients of its depth-0..max_depth
/// WL features (max_depth capped at the model's chosen h). The depth-1
/// entry is the paper's per-subcircuit attribution: the subcircuit label
/// in its connection context.
std::vector<StructureImpact> slot_impacts(const gp::WlGp& model,
                                          const circuit::Topology& topology,
                                          int max_depth = 1);

/// Aggregate attribution of one slot: the gradient of the slot node's
/// deepest available feature (depth min(max_depth, chosen h)), which
/// captures the subcircuit in context. Returns 0 gradient for None slots.
double slot_gradient(const gp::WlGp& model, const circuit::Topology& topology,
                     circuit::Slot slot, int depth = 1);

/// Ranks all features known to the model's featurizer by |gradient| for
/// this metric, keeping the `top_k` strongest up to depth `max_depth` —
/// the "most critical structures" view used to explain novel designs.
std::vector<StructureImpact> top_structures(const gp::WlGp& model,
                                            std::size_t top_k,
                                            int max_depth = 1);

}  // namespace intooa::core
