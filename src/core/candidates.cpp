#include "core/candidates.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace intooa::core {

std::vector<circuit::Topology> generate_candidates(
    const CandidateConfig& config,
    std::span<const circuit::Topology> best_topologies,
    const std::unordered_set<std::size_t>& visited, util::Rng& rng) {
  if (config.pool_size == 0) {
    throw std::invalid_argument("generate_candidates: empty pool requested");
  }
  if (config.mutation_fraction < 0.0 || config.mutation_fraction > 1.0) {
    throw std::invalid_argument(
        "generate_candidates: mutation_fraction out of [0,1]");
  }

  std::vector<circuit::Topology> pool;
  pool.reserve(config.pool_size);
  std::unordered_set<std::size_t> taken;  // avoid duplicates within the pool

  auto try_add = [&](const circuit::Topology& topo) {
    const std::size_t key = topo.index();
    if (visited.count(key) || taken.count(key)) return false;
    taken.insert(key);
    pool.push_back(topo);
    return true;
  };

  const std::size_t want_mutants =
      best_topologies.empty()
          ? 0
          : static_cast<std::size_t>(config.mutation_fraction *
                                     static_cast<double>(config.pool_size));
  const std::size_t max_attempts =
      config.pool_size * config.max_attempts_factor;

  // Mutation half: cycle through the seed designs, each child one expected
  // mutation away from its parent.
  std::size_t attempts = 0;
  while (pool.size() < want_mutants && attempts < max_attempts) {
    const circuit::Topology& parent =
        best_topologies[attempts % best_topologies.size()];
    try_add(parent.mutated(rng, config.expected_mutations));
    ++attempts;
  }

  // Random half (and any shortfall of the mutation half).
  attempts = 0;
  while (pool.size() < config.pool_size && attempts < max_attempts) {
    try_add(circuit::Topology::random(rng));
    ++attempts;
  }
  return pool;
}

std::size_t select_best_candidate(std::span<const double> scores,
                                  util::Rng& rng) {
  if (scores.empty()) {
    throw std::invalid_argument("select_best_candidate: empty scores");
  }
  double best_score = -std::numeric_limits<double>::infinity();
  std::size_t best = 0;
  bool any_finite = false;
  std::size_t dropped = 0;
  for (std::size_t c = 0; c < scores.size(); ++c) {
    if (!std::isfinite(scores[c])) {
      ++dropped;
      continue;
    }
    if (!any_finite || scores[c] > best_score) {
      any_finite = true;
      best_score = scores[c];
      best = c;
    }
  }
  if (dropped > 0) {
    obs::registry().counter("optimizer.nonfinite_scores").add(dropped);
    util::log_warn("select_best_candidate: dropped " + std::to_string(dropped) +
                   " non-finite acquisition scores");
  }
  if (!any_finite) return rng.index(scores.size());
  return best;
}

}  // namespace intooa::core
