#pragma once
// Multi-objective view of a finished campaign: designers rarely want a
// single FoM-optimal point — they want the FoM/power (or GBW/power)
// tradeoff curve. Every design the evaluator already simulated carries
// all metrics, so Pareto extraction is free post-processing of the
// campaign history. Includes the standard 2-D hypervolume indicator for
// comparing fronts between methods or configurations.

#include <vector>

#include "core/evaluator.hpp"

namespace intooa::core {

/// One point on the tradeoff plane (orientation normalized internally so
/// that larger `gain_axis` and smaller `cost_axis` are better).
struct TradeoffPoint {
  std::size_t history_index = 0;  ///< into the evaluator history
  circuit::Topology topology;
  double gain_axis = 0.0;  ///< e.g. FoM (maximize)
  double cost_axis = 0.0;  ///< e.g. power in W (minimize)
};

/// Which tradeoff plane to extract.
enum class TradeoffPlane {
  FomVsPower,  ///< Eq. 6 FoM (max) vs. static power (min)
  GbwVsPower,  ///< bandwidth (max) vs. static power (min)
};

/// Extracts the non-dominated feasible designs of `history` on the chosen
/// plane, sorted by ascending cost. Infeasible/invalid designs are
/// excluded (a Pareto point must be a design one could actually ship).
std::vector<TradeoffPoint> pareto_front(
    const std::vector<EvalRecord>& history, const circuit::Spec& spec,
    TradeoffPlane plane = TradeoffPlane::FomVsPower);

/// 2-D hypervolume of a front w.r.t. a reference point (ref_cost >= all
/// costs, ref_gain <= all gains for a meaningful value): the area
/// dominated by the front inside the reference box. Larger is better.
double hypervolume(const std::vector<TradeoffPoint>& front, double ref_cost,
                   double ref_gain);

}  // namespace intooa::core
