#pragma once
// Candidate generation strategy of Sec. III-D: each BO iteration scores a
// pool of unvisited candidate topologies, a `mutation_fraction` of which
// are single-expected-mutation neighbors of the current best topologies
// (local exploitation) and the rest uniform random samples of the whole
// space (global exploration). Setting mutation_fraction to 0 or 1 yields
// the INTO-OA-r / INTO-OA-m ablations of Sec. IV-A.

#include <cstddef>
#include <span>
#include <unordered_set>
#include <vector>

#include "circuit/topology.hpp"
#include "util/rng.hpp"

namespace intooa::core {

/// Pool-generation configuration (defaults = paper protocol).
struct CandidateConfig {
  std::size_t pool_size = 200;
  double mutation_fraction = 0.5;   ///< 0 = INTO-OA-r, 1 = INTO-OA-m
  double expected_mutations = 1.0;  ///< E[# mutated subcircuits] per child
  std::size_t max_attempts_factor = 50;  ///< bail-out for tiny residual spaces
};

/// Generates up to `config.pool_size` distinct, unvisited candidates.
/// `best_topologies` seeds the mutation half (callers pass the current
/// best designs, best first); when it is empty the whole pool falls back
/// to random sampling. Returns fewer candidates only when the unvisited
/// space is nearly exhausted.
std::vector<circuit::Topology> generate_candidates(
    const CandidateConfig& config,
    std::span<const circuit::Topology> best_topologies,
    const std::unordered_set<std::size_t>& visited, util::Rng& rng);

/// Argmax over acquisition scores with non-finite scores dropped (counted
/// in the optimizer.nonfinite_scores counter and logged). When no finite
/// score exists at all, falls back to a uniform pick from `rng` — a
/// deterministic function of the caller's stream — rather than silently
/// returning index 0. `scores` must be non-empty. `rng` is drawn from only
/// on the fallback path.
std::size_t select_best_candidate(std::span<const double> scores,
                                  util::Rng& rng);

}  // namespace intooa::core
