#include "core/pareto.hpp"

#include <algorithm>
#include <limits>

namespace intooa::core {

std::vector<TradeoffPoint> pareto_front(
    const std::vector<EvalRecord>& history, const circuit::Spec& spec,
    TradeoffPlane plane) {
  std::vector<TradeoffPoint> candidates;
  for (std::size_t i = 0; i < history.size(); ++i) {
    const auto& point = history[i].sized.best;
    if (!point.feasible) continue;
    TradeoffPoint tp;
    tp.history_index = i;
    tp.topology = history[i].topology;
    tp.cost_axis = point.perf.power_w;
    tp.gain_axis = plane == TradeoffPlane::FomVsPower
                       ? circuit::fom(point.perf, spec.load_cap)
                       : point.perf.gbw_hz;
    candidates.push_back(std::move(tp));
  }

  // Sort by cost ascending, gain descending; a point survives iff its gain
  // beats everything cheaper.
  std::sort(candidates.begin(), candidates.end(),
            [](const TradeoffPoint& a, const TradeoffPoint& b) {
              if (a.cost_axis != b.cost_axis) return a.cost_axis < b.cost_axis;
              return a.gain_axis > b.gain_axis;
            });
  std::vector<TradeoffPoint> front;
  double best_gain = -std::numeric_limits<double>::infinity();
  for (const auto& tp : candidates) {
    if (tp.gain_axis > best_gain) {
      best_gain = tp.gain_axis;
      front.push_back(tp);
    }
  }
  return front;
}

double hypervolume(const std::vector<TradeoffPoint>& front, double ref_cost,
                   double ref_gain) {
  // Points are non-dominated and cost-sorted (as produced by
  // pareto_front); accumulate the dominated rectangles left-to-right.
  double volume = 0.0;
  double prev_gain = ref_gain;
  // Iterate from the cheapest (highest marginal gain contribution comes
  // from cost headroom to the reference).
  for (const auto& tp : front) {
    if (tp.cost_axis > ref_cost || tp.gain_axis < ref_gain) continue;
    volume += (ref_cost - tp.cost_axis) * (tp.gain_axis - prev_gain);
    prev_gain = tp.gain_axis;
  }
  return volume;
}

}  // namespace intooa::core
