#include "la/cholesky.hpp"

namespace intooa::la {

Cholesky::Cholesky(const MatrixD& a, double initial_jitter, int max_attempts) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("Cholesky: matrix must be square");
  }
  double mean_diag = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) mean_diag += a(i, i);
  mean_diag = a.rows() ? mean_diag / static_cast<double>(a.rows()) : 1.0;
  if (mean_diag <= 0.0) mean_diag = 1.0;

  if (try_factorize(a, 0.0)) {
    jitter_ = 0.0;
    return;
  }
  double jitter = initial_jitter * mean_diag;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (try_factorize(a, jitter)) {
      jitter_ = jitter;
      return;
    }
    jitter *= 10.0;
  }
  throw SingularMatrixError(
      "Cholesky: matrix not positive definite even with jitter");
}

bool Cholesky::try_factorize(const MatrixD& a, double jitter) {
  const std::size_t n = a.rows();
  l_ = MatrixD(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j) + jitter;
    for (std::size_t k = 0; k < j; ++k) diag -= l_(j, k) * l_(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) return false;
    const double ljj = std::sqrt(diag);
    l_(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l_(i, k) * l_(j, k);
      l_(i, j) = acc / ljj;
    }
  }
  return true;
}

std::vector<double> Cholesky::solve(std::span<const double> b) const {
  const std::size_t n = order();
  if (b.size() != n) throw std::invalid_argument("Cholesky::solve: size mismatch");
  std::vector<double> y = solve_lower(b);
  // Back substitution: L^T x = y.
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = y[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= l_(c, ri) * y[c];
    y[ri] = acc / l_(ri, ri);
  }
  return y;
}

MatrixD Cholesky::solve(const MatrixD& b) const {
  if (b.rows() != order()) {
    throw std::invalid_argument("Cholesky::solve: row mismatch");
  }
  MatrixD x(b.rows(), b.cols());
  std::vector<double> col(b.rows());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    for (std::size_t r = 0; r < b.rows(); ++r) col[r] = b(r, c);
    const auto sol = solve(col);
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = sol[r];
  }
  return x;
}

std::vector<double> Cholesky::solve_lower(std::span<const double> b) const {
  const std::size_t n = order();
  if (b.size() != n) {
    throw std::invalid_argument("Cholesky::solve_lower: size mismatch");
  }
  std::vector<double> y(n);
  for (std::size_t r = 0; r < n; ++r) {
    double acc = b[r];
    for (std::size_t c = 0; c < r; ++c) acc -= l_(r, c) * y[c];
    y[r] = acc / l_(r, r);
  }
  return y;
}

double Cholesky::log_det() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < order(); ++i) acc += std::log(l_(i, i));
  return 2.0 * acc;
}

}  // namespace intooa::la
