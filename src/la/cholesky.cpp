#include "la/cholesky.hpp"

namespace intooa::la {

Cholesky::Cholesky(const MatrixD& a, double initial_jitter, int max_attempts) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("Cholesky: matrix must be square");
  }
  double mean_diag = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) mean_diag += a(i, i);
  mean_diag = a.rows() ? mean_diag / static_cast<double>(a.rows()) : 1.0;
  if (mean_diag <= 0.0) mean_diag = 1.0;

  if (try_factorize(a, 0.0)) {
    jitter_ = 0.0;
    return;
  }
  double jitter = initial_jitter * mean_diag;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (try_factorize(a, jitter)) {
      jitter_ = jitter;
      return;
    }
    jitter *= 10.0;
  }
  throw SingularMatrixError(
      "Cholesky: matrix not positive definite even with jitter");
}

std::optional<Cholesky> Cholesky::try_exact(const MatrixD& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("Cholesky::try_exact: matrix must be square");
  }
  Cholesky chol;
  if (!chol.try_factorize(a, 0.0)) return std::nullopt;
  return chol;
}

void Cholesky::append_row(std::span<const double> row) {
  const std::size_t n = order();
  if (row.size() != n + 1) {
    throw std::invalid_argument("Cholesky::append_row: size mismatch");
  }
  // Forward substitution L w = row[0..n-1]. This is the same recurrence, in
  // the same operation order, that the column-Cholesky loop uses for the
  // entries of row n, so w is bit-identical to a from-scratch factorization
  // of the bordered matrix.
  std::vector<double> w(n);
  for (std::size_t j = 0; j < n; ++j) {
    double acc = row[j];
    for (std::size_t k = 0; k < j; ++k) acc -= w[k] * l_(j, k);
    w[j] = acc / l_(j, j);
  }
  double diag = row[n] + jitter_;
  for (std::size_t k = 0; k < n; ++k) diag -= w[k] * w[k];
  if (!(diag > 0.0) || !std::isfinite(diag)) {
    throw SingularMatrixError(
        "Cholesky::append_row: bordered matrix not positive definite");
  }
  MatrixD grown(n + 1, n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) grown(i, j) = l_(i, j);
  }
  for (std::size_t j = 0; j < n; ++j) grown(n, j) = w[j];
  grown(n, n) = std::sqrt(diag);
  l_ = std::move(grown);
}

bool Cholesky::try_factorize(const MatrixD& a, double jitter) {
  const std::size_t n = a.rows();
  l_ = MatrixD(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j) + jitter;
    for (std::size_t k = 0; k < j; ++k) diag -= l_(j, k) * l_(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) return false;
    const double ljj = std::sqrt(diag);
    l_(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l_(i, k) * l_(j, k);
      l_(i, j) = acc / ljj;
    }
  }
  return true;
}

std::vector<double> Cholesky::solve(std::span<const double> b) const {
  const std::size_t n = order();
  if (b.size() != n) throw std::invalid_argument("Cholesky::solve: size mismatch");
  std::vector<double> y = solve_lower(b);
  // Back substitution: L^T x = y.
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = y[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= l_(c, ri) * y[c];
    y[ri] = acc / l_(ri, ri);
  }
  return y;
}

MatrixD Cholesky::solve(const MatrixD& b) const {
  if (b.rows() != order()) {
    throw std::invalid_argument("Cholesky::solve: row mismatch");
  }
  MatrixD x(b.rows(), b.cols());
  std::vector<double> col(b.rows());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    for (std::size_t r = 0; r < b.rows(); ++r) col[r] = b(r, c);
    const auto sol = solve(col);
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = sol[r];
  }
  return x;
}

std::vector<double> Cholesky::solve_lower(std::span<const double> b) const {
  const std::size_t n = order();
  if (b.size() != n) {
    throw std::invalid_argument("Cholesky::solve_lower: size mismatch");
  }
  std::vector<double> y(n);
  for (std::size_t r = 0; r < n; ++r) {
    double acc = b[r];
    for (std::size_t c = 0; c < r; ++c) acc -= l_(r, c) * y[c];
    y[r] = acc / l_(r, r);
  }
  return y;
}

double Cholesky::log_det() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < order(); ++i) acc += std::log(l_(i, i));
  return 2.0 * acc;
}

}  // namespace intooa::la
