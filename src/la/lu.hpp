#pragma once
// LU factorization with partial pivoting for real and complex square
// systems. This is the workhorse of the MNA AC solver: one factorization +
// solve per frequency point. Orders are tiny (<= ~40), so an O(n^3) dense
// factorization is the right tool.

#include <cmath>
#include <complex>
#include <stdexcept>
#include <vector>

#include "la/matrix.hpp"

namespace intooa::la {

/// Thrown when a pivot underflows: the circuit matrix is singular (e.g. a
/// floating node in a malformed netlist) or the GP Gram matrix is rank
/// deficient.
class SingularMatrixError : public std::runtime_error {
 public:
  explicit SingularMatrixError(const std::string& what)
      : std::runtime_error(what) {}
};

namespace detail {
inline double abs_of(double v) { return std::fabs(v); }
inline double abs_of(const std::complex<double>& v) { return std::abs(v); }
}  // namespace detail

/// PA = LU factorization of a square matrix with row partial pivoting.
/// The factors are stored compactly in one matrix (unit-diagonal L below,
/// U on and above the diagonal).
template <Scalar T>
class Lu {
 public:
  /// Factorizes `a`; throws SingularMatrixError when a pivot magnitude
  /// falls below `pivot_tol` times the largest initial element.
  explicit Lu(Matrix<T> a, double pivot_tol = 1e-13) : lu_(std::move(a)) {
    if (lu_.rows() != lu_.cols()) {
      throw std::invalid_argument("Lu: matrix must be square");
    }
    const std::size_t n = lu_.rows();
    perm_.resize(n);
    for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

    double scale = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        scale = std::max(scale, detail::abs_of(lu_(r, c)));
      }
    }
    if (scale == 0.0) throw SingularMatrixError("Lu: zero matrix");
    const double threshold = pivot_tol * scale;

    for (std::size_t k = 0; k < n; ++k) {
      // Partial pivot: largest magnitude in column k at or below row k.
      std::size_t pivot_row = k;
      double pivot_mag = detail::abs_of(lu_(k, k));
      for (std::size_t r = k + 1; r < n; ++r) {
        const double mag = detail::abs_of(lu_(r, k));
        if (mag > pivot_mag) {
          pivot_mag = mag;
          pivot_row = r;
        }
      }
      if (pivot_mag < threshold) {
        throw SingularMatrixError("Lu: singular matrix (pivot " +
                                  std::to_string(pivot_mag) + ")");
      }
      if (pivot_row != k) {
        for (std::size_t c = 0; c < n; ++c) {
          std::swap(lu_(k, c), lu_(pivot_row, c));
        }
        std::swap(perm_[k], perm_[pivot_row]);
        parity_ = !parity_;
      }
      const T pivot = lu_(k, k);
      for (std::size_t r = k + 1; r < n; ++r) {
        const T factor = lu_(r, k) / pivot;
        lu_(r, k) = factor;
        if (factor == T{}) continue;
        for (std::size_t c = k + 1; c < n; ++c) {
          lu_(r, c) -= factor * lu_(k, c);
        }
      }
    }
  }

  std::size_t order() const { return lu_.rows(); }

  /// Solves A x = b.
  std::vector<T> solve(std::span<const T> b) const {
    const std::size_t n = order();
    if (b.size() != n) throw std::invalid_argument("Lu::solve: size mismatch");
    std::vector<T> x(n);
    // Forward substitution with permutation applied: L y = P b.
    for (std::size_t r = 0; r < n; ++r) {
      T acc = b[perm_[r]];
      for (std::size_t c = 0; c < r; ++c) acc -= lu_(r, c) * x[c];
      x[r] = acc;
    }
    // Back substitution: U x = y.
    for (std::size_t ri = n; ri-- > 0;) {
      T acc = x[ri];
      for (std::size_t c = ri + 1; c < n; ++c) acc -= lu_(ri, c) * x[c];
      x[ri] = acc / lu_(ri, ri);
    }
    return x;
  }

  /// Solves A X = B column by column.
  Matrix<T> solve(const Matrix<T>& b) const {
    if (b.rows() != order()) {
      throw std::invalid_argument("Lu::solve: row mismatch");
    }
    Matrix<T> x(b.rows(), b.cols());
    std::vector<T> col(b.rows());
    for (std::size_t c = 0; c < b.cols(); ++c) {
      for (std::size_t r = 0; r < b.rows(); ++r) col[r] = b(r, c);
      const auto sol = solve(col);
      for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = sol[r];
    }
    return x;
  }

  /// Determinant (product of U's diagonal, sign from the permutation).
  T determinant() const {
    T det = parity_ ? T{-1} : T{1};
    for (std::size_t i = 0; i < order(); ++i) det *= lu_(i, i);
    return det;
  }

 private:
  Matrix<T> lu_;
  std::vector<std::size_t> perm_;
  bool parity_ = false;  // true when an odd number of row swaps occurred
};

}  // namespace intooa::la
