#pragma once
// 1-D grid generators used for AC frequency sweeps (log-spaced) and
// hyperparameter scans (linear).

#include <cstddef>
#include <vector>

namespace intooa::la {

/// `n` points from `lo` to `hi` inclusive, linearly spaced. n >= 2 required
/// unless lo == hi (then any n >= 1 returns copies of lo).
std::vector<double> linspace(double lo, double hi, std::size_t n);

/// `n` points from `lo` to `hi` inclusive, logarithmically spaced; both
/// bounds must be positive.
std::vector<double> logspace(double lo, double hi, std::size_t n);

}  // namespace intooa::la
