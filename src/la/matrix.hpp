#pragma once
// Dense row-major matrix template used by both numerical substrates of the
// project: the complex-valued Modified Nodal Analysis solver (T =
// std::complex<double>) and the Gaussian process layer (T = double). The
// matrices involved are small (MNA systems of order <= ~40, GP Gram
// matrices of order <= ~70), so a straightforward cache-friendly dense
// implementation beats anything fancier.

#include <complex>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <stdexcept>
#include <vector>

namespace intooa::la {

/// Scalar concept: the element types this library supports.
template <typename T>
concept Scalar = std::is_same_v<T, double> || std::is_same_v<T, std::complex<double>>;

/// Dense row-major matrix with value semantics.
template <Scalar T>
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, T{}) {}

  /// rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, T fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Construction from nested initializer lists; all rows must have equal
  /// length.
  Matrix(std::initializer_list<std::initializer_list<T>> init) {
    rows_ = init.size();
    cols_ = rows_ ? init.begin()->size() : 0;
    data_.reserve(rows_ * cols_);
    for (const auto& row : init) {
      if (row.size() != cols_) {
        throw std::invalid_argument("Matrix: ragged initializer list");
      }
      data_.insert(data_.end(), row.begin(), row.end());
    }
  }

  /// Identity matrix of order n.
  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  /// Unchecked element access.
  T& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const T& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked element access.
  T& at(std::size_t r, std::size_t c) {
    check(r, c);
    return data_[r * cols_ + c];
  }
  const T& at(std::size_t r, std::size_t c) const {
    check(r, c);
    return data_[r * cols_ + c];
  }

  /// Row view (contiguous in row-major storage).
  std::span<T> row(std::size_t r) {
    return std::span<T>(data_.data() + r * cols_, cols_);
  }
  std::span<const T> row(std::size_t r) const {
    return std::span<const T>(data_.data() + r * cols_, cols_);
  }

  /// Raw storage access for tests and serialization.
  std::span<const T> data() const { return data_; }

  /// Sets every element to zero, keeping the shape.
  void set_zero() { data_.assign(data_.size(), T{}); }

  /// Matrix-vector product. Requires x.size() == cols().
  std::vector<T> matvec(std::span<const T> x) const {
    if (x.size() != cols_) throw std::invalid_argument("matvec: size mismatch");
    std::vector<T> y(rows_, T{});
    for (std::size_t r = 0; r < rows_; ++r) {
      T acc{};
      const T* rowp = data_.data() + r * cols_;
      for (std::size_t c = 0; c < cols_; ++c) acc += rowp[c] * x[c];
      y[r] = acc;
    }
    return y;
  }

  /// Matrix-matrix product (ikj loop order for locality).
  Matrix matmul(const Matrix& other) const {
    if (cols_ != other.rows_) {
      throw std::invalid_argument("matmul: inner dimension mismatch");
    }
    Matrix out(rows_, other.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
      for (std::size_t k = 0; k < cols_; ++k) {
        const T aik = (*this)(i, k);
        if (aik == T{}) continue;
        const T* brow = other.data_.data() + k * other.cols_;
        T* orow = out.data_.data() + i * other.cols_;
        for (std::size_t j = 0; j < other.cols_; ++j) orow[j] += aik * brow[j];
      }
    }
    return out;
  }

  /// Transpose copy.
  Matrix transposed() const {
    Matrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
      for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
    }
    return out;
  }

  /// Element-wise sum; shapes must match.
  Matrix& operator+=(const Matrix& other) {
    if (rows_ != other.rows_ || cols_ != other.cols_) {
      throw std::invalid_argument("Matrix+=: shape mismatch");
    }
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
    return *this;
  }

  /// Scales every element.
  Matrix& operator*=(T s) {
    for (auto& v : data_) v *= s;
    return *this;
  }

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator*(Matrix a, T s) { return a *= s; }

  bool operator==(const Matrix&) const = default;

 private:
  void check(std::size_t r, std::size_t c) const {
    if (r >= rows_ || c >= cols_) {
      throw std::out_of_range("Matrix::at: index out of range");
    }
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using MatrixD = Matrix<double>;
using MatrixC = Matrix<std::complex<double>>;

/// Dot product of two equal-length vectors.
template <Scalar T>
T dot(std::span<const T> a, std::span<const T> b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  T acc{};
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace intooa::la
