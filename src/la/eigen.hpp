#pragma once
// Dense nonsymmetric eigenvalue solver: Hessenberg reduction followed by
// shifted complex QR iteration. Used for the circuit natural-frequency
// (pole) analysis that guards the optimizer against "designs" whose AC
// response looks fine but which are open-loop unstable (right-half-plane
// poles from positive-feedback transconductor loops) — the MNA frequency
// response of such a network is mathematically defined but physically
// meaningless, so the simulator must reject them, exactly as a transient
// run in Hspice would expose them.

#include <complex>
#include <vector>

#include "la/matrix.hpp"

namespace intooa::la {

/// Eigenvalues of a square real matrix, in no particular order. Uses
/// complex single-shift (Wilkinson) QR on the Hessenberg form; intended
/// for the small matrices of this project (order <= ~50). Throws
/// std::runtime_error if the iteration fails to converge.
std::vector<std::complex<double>> eigenvalues(const MatrixD& a,
                                              int max_iterations_per_eig = 80);

/// Natural frequencies of the linear network (G + sC) x = 0 with G
/// nonsingular: s_k = -1/lambda_k over the nonzero eigenvalues lambda_k of
/// G^{-1} C. Eigenvalues with |lambda| below `rel_tol` times the largest
/// magnitude are treated as "no capacitor on this mode" (s = infinity) and
/// skipped.
std::vector<std::complex<double>> natural_frequencies(const MatrixD& g,
                                                      const MatrixD& c,
                                                      double rel_tol = 1e-12);

/// True when every natural frequency lies in the closed left half plane
/// (up to a small relative tolerance) — the network is open-loop stable.
bool is_stable(const std::vector<std::complex<double>>& poles,
               double rel_tol = 1e-7);

}  // namespace intooa::la
