#include "la/grid.hpp"

#include <cmath>
#include <stdexcept>

namespace intooa::la {

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  if (n == 0) return {};
  if (n == 1) {
    if (lo != hi) throw std::invalid_argument("linspace: n==1 with lo!=hi");
    return {lo};
  }
  std::vector<double> out(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) out[i] = lo + step * static_cast<double>(i);
  out.back() = hi;  // avoid accumulated rounding at the endpoint
  return out;
}

std::vector<double> logspace(double lo, double hi, std::size_t n) {
  if (lo <= 0.0 || hi <= 0.0) {
    throw std::invalid_argument("logspace: bounds must be positive");
  }
  auto exponents = linspace(std::log10(lo), std::log10(hi), n);
  for (auto& e : exponents) e = std::pow(10.0, e);
  return exponents;
}

}  // namespace intooa::la
