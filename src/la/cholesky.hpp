#pragma once
// Cholesky factorization for symmetric positive-definite systems — the
// numerically right way to invert Gaussian process Gram matrices (Eqs. 3-4
// of the paper). Includes adaptive diagonal jitter, the standard remedy for
// Gram matrices that are PSD-but-nearly-singular (duplicate or
// near-duplicate topologies produce identical WL feature rows).

#include <cmath>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "la/lu.hpp"
#include "la/matrix.hpp"

namespace intooa::la {

/// A = L L^T factorization of a symmetric positive-definite real matrix.
class Cholesky {
 public:
  /// Factorizes `a`. If the bare factorization fails, retries with
  /// geometrically increasing diagonal jitter starting at `initial_jitter`
  /// times the mean diagonal, up to `max_attempts` times (capping the
  /// jitter near 1e-2 of the diagonal scale so genuinely indefinite
  /// matrices are rejected rather than masked); throws SingularMatrixError
  /// if all attempts fail. The jitter actually applied is reported by
  /// `jitter()`.
  explicit Cholesky(const MatrixD& a, double initial_jitter = 1e-10,
                    int max_attempts = 9);

  /// Single-attempt factorization with NO jitter: returns nullopt when `a`
  /// is not (numerically) positive definite instead of escalating. Model
  /// selection scores hyperparameter candidates through this so every
  /// candidate is scored with exactly the noise its label claims.
  static std::optional<Cholesky> try_exact(const MatrixD& a);

  /// Border update: extends the factorization of the n x n leading block of
  /// some SPD matrix to n+1, given the new row `row` of that matrix
  /// (row.size() == order() + 1, row.back() is the diagonal entry). Costs
  /// one forward substitution — O(n^2) instead of the O(n^3) refactorization
  /// — and produces bit-identical L to factorizing the bordered matrix from
  /// scratch. The jitter of the existing factorization is applied to the
  /// new diagonal entry so the implied matrix stays A + jitter * I. Throws
  /// SingularMatrixError (leaving the factorization unchanged) when the
  /// bordered matrix is not positive definite; there is no jitter
  /// escalation on this path.
  void append_row(std::span<const double> row);

  std::size_t order() const { return l_.rows(); }

  /// The diagonal jitter that was added to make the factorization succeed
  /// (0 when none was needed).
  double jitter() const { return jitter_; }

  /// Solves A x = b via forward + back substitution.
  std::vector<double> solve(std::span<const double> b) const;

  /// Solves A X = B column by column.
  MatrixD solve(const MatrixD& b) const;

  /// Solves L y = b (forward substitution only); used for GP variance
  /// computations where v = L^{-1} k gives sigma^2 = k** - v^T v.
  std::vector<double> solve_lower(std::span<const double> b) const;

  /// log |A| = 2 sum_i log L_ii — needed by the GP marginal likelihood.
  double log_det() const;

  /// The lower-triangular factor.
  const MatrixD& lower() const { return l_; }

 private:
  Cholesky() = default;  // for try_exact

  bool try_factorize(const MatrixD& a, double jitter);

  MatrixD l_;
  double jitter_ = 0.0;
};

}  // namespace intooa::la
