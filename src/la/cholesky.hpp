#pragma once
// Cholesky factorization for symmetric positive-definite systems — the
// numerically right way to invert Gaussian process Gram matrices (Eqs. 3-4
// of the paper). Includes adaptive diagonal jitter, the standard remedy for
// Gram matrices that are PSD-but-nearly-singular (duplicate or
// near-duplicate topologies produce identical WL feature rows).

#include <cmath>
#include <span>
#include <stdexcept>
#include <vector>

#include "la/lu.hpp"
#include "la/matrix.hpp"

namespace intooa::la {

/// A = L L^T factorization of a symmetric positive-definite real matrix.
class Cholesky {
 public:
  /// Factorizes `a`. If the bare factorization fails, retries with
  /// geometrically increasing diagonal jitter starting at `initial_jitter`
  /// times the mean diagonal, up to `max_attempts` times (capping the
  /// jitter near 1e-2 of the diagonal scale so genuinely indefinite
  /// matrices are rejected rather than masked); throws SingularMatrixError
  /// if all attempts fail. The jitter actually applied is reported by
  /// `jitter()`.
  explicit Cholesky(const MatrixD& a, double initial_jitter = 1e-10,
                    int max_attempts = 9);

  std::size_t order() const { return l_.rows(); }

  /// The diagonal jitter that was added to make the factorization succeed
  /// (0 when none was needed).
  double jitter() const { return jitter_; }

  /// Solves A x = b via forward + back substitution.
  std::vector<double> solve(std::span<const double> b) const;

  /// Solves A X = B column by column.
  MatrixD solve(const MatrixD& b) const;

  /// Solves L y = b (forward substitution only); used for GP variance
  /// computations where v = L^{-1} k gives sigma^2 = k** - v^T v.
  std::vector<double> solve_lower(std::span<const double> b) const;

  /// log |A| = 2 sum_i log L_ii — needed by the GP marginal likelihood.
  double log_det() const;

  /// The lower-triangular factor.
  const MatrixD& lower() const { return l_; }

 private:
  bool try_factorize(const MatrixD& a, double jitter);

  MatrixD l_;
  double jitter_ = 0.0;
};

}  // namespace intooa::la
