#include "la/eigen.hpp"

#include <cmath>
#include <stdexcept>

#include "la/lu.hpp"

namespace intooa::la {

namespace {

using Cx = std::complex<double>;

/// Householder reduction of a real matrix to upper Hessenberg form,
/// returned as a complex matrix ready for the QR iteration.
MatrixC to_hessenberg(const MatrixD& a) {
  const std::size_t n = a.rows();
  MatrixD h = a;
  for (std::size_t k = 0; k + 2 < n; ++k) {
    // Householder vector annihilating h(k+2.., k).
    double norm = 0.0;
    for (std::size_t i = k + 1; i < n; ++i) norm += h(i, k) * h(i, k);
    norm = std::sqrt(norm);
    if (norm < 1e-300) continue;
    const double alpha = h(k + 1, k) >= 0.0 ? -norm : norm;
    std::vector<double> v(n, 0.0);
    v[k + 1] = h(k + 1, k) - alpha;
    for (std::size_t i = k + 2; i < n; ++i) v[i] = h(i, k);
    double vtv = 0.0;
    for (std::size_t i = k + 1; i < n; ++i) vtv += v[i] * v[i];
    if (vtv < 1e-300) continue;
    const double beta = 2.0 / vtv;
    // h = (I - beta v v^T) h
    for (std::size_t j = 0; j < n; ++j) {
      double dot = 0.0;
      for (std::size_t i = k + 1; i < n; ++i) dot += v[i] * h(i, j);
      dot *= beta;
      for (std::size_t i = k + 1; i < n; ++i) h(i, j) -= dot * v[i];
    }
    // h = h (I - beta v v^T)
    for (std::size_t i = 0; i < n; ++i) {
      double dot = 0.0;
      for (std::size_t j = k + 1; j < n; ++j) dot += h(i, j) * v[j];
      dot *= beta;
      for (std::size_t j = k + 1; j < n; ++j) h(i, j) -= dot * v[j];
    }
  }
  MatrixC out(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      // Zero the numerical noise below the first subdiagonal.
      out(i, j) = (i > j + 1) ? Cx(0.0) : Cx(h(i, j));
    }
  }
  return out;
}

/// Wilkinson shift: the eigenvalue of the trailing 2x2 block closest to
/// its bottom-right entry.
Cx wilkinson_shift(const MatrixC& h, std::size_t m) {
  const Cx a = h(m - 1, m - 1);
  const Cx b = h(m - 1, m);
  const Cx c = h(m, m - 1);
  const Cx d = h(m, m);
  const Cx tr_half = 0.5 * (a + d);
  const Cx disc = std::sqrt(tr_half * tr_half - (a * d - b * c));
  const Cx e1 = tr_half + disc;
  const Cx e2 = tr_half - disc;
  return (std::abs(e1 - d) < std::abs(e2 - d)) ? e1 : e2;
}

}  // namespace

std::vector<Cx> eigenvalues(const MatrixD& a, int max_iterations_per_eig) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("eigenvalues: matrix must be square");
  }
  const std::size_t n = a.rows();
  if (n == 0) return {};
  if (n == 1) return {Cx(a(0, 0))};

  MatrixC h = to_hessenberg(a);
  std::vector<Cx> eigs;
  eigs.reserve(n);

  // Frobenius scale for the deflation threshold.
  double scale = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) scale += std::norm(h(i, j));
  }
  scale = std::sqrt(scale);
  const double tiny = (scale > 0.0 ? scale : 1.0) * 1e-15;

  std::size_t m = n - 1;  // active block is h(0..m, 0..m)
  int iterations = 0;
  const int budget = max_iterations_per_eig * static_cast<int>(n);
  while (true) {
    // Deflate any negligible subdiagonal entries at the bottom.
    while (m > 0) {
      const double sub = std::abs(h(m, m - 1));
      const double local =
          1e-14 * (std::abs(h(m - 1, m - 1)) + std::abs(h(m, m)));
      if (sub <= std::max(tiny, local)) {
        eigs.push_back(h(m, m));
        --m;
      } else {
        break;
      }
    }
    if (m == 0) {
      eigs.push_back(h(0, 0));
      break;
    }
    if (++iterations > budget) {
      throw std::runtime_error("eigenvalues: QR iteration failed to converge");
    }

    // Explicit single-shift QR step on the active block:
    //   H - mu I = Q R  (row pass with Givens rotations),
    //   H' = R Q + mu I (column pass with the conjugate rotations).
    const Cx mu = wilkinson_shift(h, m);
    for (std::size_t i = 0; i <= m; ++i) h(i, i) -= mu;

    // Row pass: rotation k annihilates h(k+1, k).
    //   row_k'   =  conj(c) row_k + conj(s) row_{k+1}
    //   row_k+1' =      -s  row_k +      c  row_{k+1}
    std::vector<Cx> cs(m), sn(m);
    for (std::size_t k = 0; k < m; ++k) {
      const Cx f = h(k, k);
      const Cx g = h(k + 1, k);
      const double r = std::sqrt(std::norm(f) + std::norm(g));
      if (r < 1e-300) {
        cs[k] = 1.0;
        sn[k] = 0.0;
        continue;
      }
      cs[k] = f / r;
      sn[k] = g / r;
      for (std::size_t j = k; j <= m; ++j) {
        const Cx hkj = h(k, j);
        const Cx hk1j = h(k + 1, j);
        h(k, j) = std::conj(cs[k]) * hkj + std::conj(sn[k]) * hk1j;
        h(k + 1, j) = -sn[k] * hkj + cs[k] * hk1j;
      }
    }
    // Column pass (right-multiplication by each rotation's adjoint):
    //   col_k'   =  c col_k + s col_{k+1}
    //   col_k+1' = -conj(s) col_k + conj(c) col_{k+1}
    for (std::size_t k = 0; k < m; ++k) {
      const std::size_t last_row = std::min(m, k + 2);
      for (std::size_t i = 0; i <= last_row; ++i) {
        const Cx hik = h(i, k);
        const Cx hik1 = h(i, k + 1);
        h(i, k) = cs[k] * hik + sn[k] * hik1;
        h(i, k + 1) = -std::conj(sn[k]) * hik + std::conj(cs[k]) * hik1;
      }
    }
    for (std::size_t i = 0; i <= m; ++i) h(i, i) += mu;
  }
  return eigs;
}

std::vector<Cx> natural_frequencies(const MatrixD& g, const MatrixD& c,
                                    double rel_tol) {
  if (g.rows() != g.cols() || c.rows() != c.cols() || g.rows() != c.rows()) {
    throw std::invalid_argument("natural_frequencies: shape mismatch");
  }
  const std::size_t n = g.rows();
  if (n == 0) return {};

  // M = G^{-1} C, column by column.
  const Lu<double> lu(g);
  MatrixD m(n, n);
  std::vector<double> col(n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) col[i] = c(i, j);
    const auto x = lu.solve(col);
    for (std::size_t i = 0; i < n; ++i) m(i, j) = x[i];
  }

  const auto lambdas = eigenvalues(m);
  double max_mag = 0.0;
  for (const auto& l : lambdas) max_mag = std::max(max_mag, std::abs(l));
  std::vector<Cx> poles;
  for (const auto& l : lambdas) {
    if (std::abs(l) <= rel_tol * max_mag) continue;  // capacitor-free mode
    poles.push_back(-1.0 / l);
  }
  return poles;
}

bool is_stable(const std::vector<Cx>& poles, double rel_tol) {
  for (const auto& p : poles) {
    if (p.real() > rel_tol * std::abs(p)) return false;
  }
  return true;
}

}  // namespace intooa::la
