#pragma once
// intooa::store — persistent, content-addressed evaluation store shared
// across campaigns and processes. Sits below the evaluator's in-memory
// cache as a read-through/write-behind tier: a warm campaign replays
// stored results instead of re-running the netlist -> MNA -> metrics
// pipeline, byte-identically to a cold run (sizing is a pure function of
// the core::EvalKey, see core/eval_key.hpp).
//
// On-disk format (docs/PERSISTENCE.md):
//   header  : 16-byte magic "intooa-evalstore", u32 version, u32 reserved
//   frame*  : u32 payload_len | u32 crc32(payload) | payload
// where payload is the record_io encoding of (EvalKey, EvalRecord). The
// log is append-only; records are immutable once written. On open, the log
// is scanned to rebuild the in-memory index; the first torn or
// checksum-failing frame ends the valid prefix and the tail beyond it is
// truncated away (with a warning and the "store.recovered_tail_bytes"
// counter), so a crash mid-append never poisons the store.
//
// Concurrency: every writer mutation (open-scan, append) runs under an
// exclusive advisory flock on the log fd, so multiple campaign processes
// can share one store file; within a process, a mutex serializes access so
// parallel campaign runs can share one EvalStore instance. Before each
// append the store re-scans any bytes appended by other processes since
// its last look, keeping its index fresh and append idempotent per key.
//
// Failure philosophy: open() throws (a store the user asked for that
// cannot be used is an error); lookup/append degrade gracefully — a
// corrupt or unreadable record is a miss, a failed append is a warning —
// persistence problems never fail a campaign.

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/eval_key.hpp"
#include "core/evaluator.hpp"

namespace intooa::store {

inline constexpr std::uint32_t kStoreVersion = 1;

/// Counters of one store instance (process-local; the obs registry
/// aggregates across instances under "store.*").
struct StoreStats {
  std::size_t records = 0;               ///< indexed records
  std::uint64_t hits = 0;                ///< lookups answered
  std::uint64_t misses = 0;              ///< lookups not answered
  std::uint64_t appends = 0;             ///< records written by this instance
  std::uint64_t recovered_tail_bytes = 0;  ///< bytes dropped by recovery
};

/// The content-addressed on-disk evaluation store. Thread-safe.
class EvalStore {
 public:
  /// Opens (creating if absent) the store log at `path`, recovering from a
  /// torn tail. Throws std::runtime_error when the file is not a store log
  /// or was written by an incompatible format version.
  static std::shared_ptr<EvalStore> open(const std::string& path);

  ~EvalStore();

  EvalStore(const EvalStore&) = delete;
  EvalStore& operator=(const EvalStore&) = delete;

  /// Returns the stored record for `key`, verifying the full fingerprint
  /// (a digest collision or a since-corrupted record degrades to a miss).
  std::optional<core::EvalRecord> lookup(const core::EvalKey& key);

  /// Appends (key, record) unless the key is already present (here or
  /// appended by another process since our last look). Returns true when a
  /// record was written. Throws std::runtime_error on I/O failure.
  bool append(const core::EvalKey& key, const core::EvalRecord& record);

  /// Number of records currently indexed.
  std::size_t size() const;

  StoreStats stats() const;
  const std::string& path() const { return path_; }

 private:
  explicit EvalStore(std::string path);

  struct Entry {
    std::uint64_t offset = 0;  ///< payload offset in the log
    std::uint32_t length = 0;  ///< payload length
    std::uint32_t crc = 0;     ///< expected payload crc32
  };

  void open_and_recover();
  /// Scans frames from end_offset_ to the end of the log, indexing them;
  /// truncates a trailing invalid frame. Caller holds mutex_ + flock.
  void scan_locked(bool truncate_tail);
  std::optional<std::string> read_payload_locked(const Entry& entry);

  std::string path_;
  int fd_ = -1;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Entry> index_;
  std::uint64_t end_offset_ = 0;  ///< end of the scanned valid prefix
  StoreStats stats_;
};

/// Evaluator persistence tier: binds an EvalStore to one evaluation-key
/// context (spec + behavioral + sizing protocol). save() never throws —
/// store failures log a warning and the campaign continues.
class StoreTier : public core::ResultStore {
 public:
  StoreTier(std::shared_ptr<EvalStore> store, core::EvalKeyContext keys);

  std::optional<core::EvalRecord> load(
      const circuit::Topology& topology) override;
  void save(const core::EvalRecord& record) override;

 private:
  std::shared_ptr<EvalStore> store_;
  core::EvalKeyContext keys_;
};

/// Convenience: attaches `store` to `evaluator` as a StoreTier bound to the
/// evaluator's own key context. A null store detaches.
void attach(core::TopologyEvaluator& evaluator,
            std::shared_ptr<EvalStore> store);

}  // namespace intooa::store
