#include "store/record_io.hpp"

#include <cstring>

#include "util/wire.hpp"

namespace intooa::store {

namespace {

using util::WireReader;
using util::WireWriter;

void write_point(WireWriter& w, const sizing::EvalPoint& point) {
  w.u8(point.perf.valid ? 1 : 0);
  w.f64(point.perf.gain_db);
  w.f64(point.perf.gbw_hz);
  w.f64(point.perf.pm_deg);
  w.f64(point.perf.power_w);
  w.str(point.perf.failure);
  w.f64(point.fom);
  for (const double m : point.margins) w.f64(m);
  w.u8(point.feasible ? 1 : 0);
}

bool read_point(WireReader& r, sizing::EvalPoint& point) {
  std::uint8_t flag = 0;
  if (!r.u8(flag) || flag > 1) return false;
  point.perf.valid = flag == 1;
  if (!r.f64(point.perf.gain_db)) return false;
  if (!r.f64(point.perf.gbw_hz)) return false;
  if (!r.f64(point.perf.pm_deg)) return false;
  if (!r.f64(point.perf.power_w)) return false;
  if (!r.str(point.perf.failure)) return false;
  if (!r.f64(point.fom)) return false;
  for (double& m : point.margins) {
    if (!r.f64(m)) return false;
  }
  if (!r.u8(flag) || flag > 1) return false;
  point.feasible = flag == 1;
  return true;
}

}  // namespace

std::string encode_record(const core::EvalKey& key,
                          const core::EvalRecord& record) {
  std::string out;
  out.reserve(128 + key.fingerprint.size() +
              record.sized.history.size() * 96);
  WireWriter w(out);
  w.u64(key.digest);
  w.str(key.fingerprint);
  w.u64(record.topology.index());
  w.u64(record.sized.simulations);
  w.u32(static_cast<std::uint32_t>(record.sized.best_values.size()));
  for (const double v : record.sized.best_values) w.f64(v);
  write_point(w, record.sized.best);
  w.u32(static_cast<std::uint32_t>(record.sized.history.size()));
  for (const auto& point : record.sized.history) write_point(w, point);
  return out;
}

std::optional<StoredRecord> decode_record(std::string_view payload) {
  WireReader r(payload);
  StoredRecord out;
  if (!r.u64(out.key.digest)) return std::nullopt;
  if (!r.str(out.key.fingerprint)) return std::nullopt;
  std::uint64_t topo_index = 0;
  if (!r.u64(topo_index)) return std::nullopt;
  try {
    out.record.topology =
        circuit::Topology::from_index(static_cast<std::size_t>(topo_index));
  } catch (const std::exception&) {
    return std::nullopt;
  }
  out.record.sized.topology = out.record.topology;
  std::uint64_t sims = 0;
  if (!r.u64(sims)) return std::nullopt;
  out.record.sized.simulations = static_cast<std::size_t>(sims);
  // Element counts are capped by what the payload could physically hold, so
  // a corrupt-but-checksummed count can never drive a giant allocation.
  std::uint32_t n = 0;
  if (!r.u32(n) || n > payload.size() / sizeof(double)) return std::nullopt;
  out.record.sized.best_values.resize(n);
  for (double& v : out.record.sized.best_values) {
    if (!r.f64(v)) return std::nullopt;
  }
  if (!read_point(r, out.record.sized.best)) return std::nullopt;
  if (!r.u32(n) || n > payload.size() / sizeof(double)) return std::nullopt;
  out.record.sized.history.resize(n);
  for (auto& point : out.record.sized.history) {
    if (!read_point(r, point)) return std::nullopt;
  }
  if (!r.done()) return std::nullopt;  // trailing bytes = corruption
  return out;
}

std::optional<std::uint64_t> peek_digest(std::string_view payload) {
  if (payload.size() < sizeof(std::uint64_t)) return std::nullopt;
  std::uint64_t digest = 0;
  std::memcpy(&digest, payload.data(), sizeof digest);
  return digest;
}

}  // namespace intooa::store
