#include "store/store.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "store/record_io.hpp"
#include "util/crc32.hpp"
#include "util/fs.hpp"
#include "util/log.hpp"

namespace intooa::store {

namespace {

constexpr char kMagic[16] = {'i', 'n', 't', 'o', 'o', 'a', '-', 'e',
                             'v', 'a', 'l', 's', 't', 'o', 'r', 'e'};
constexpr std::size_t kHeaderSize = sizeof(kMagic) + 2 * sizeof(std::uint32_t);
/// Sanity cap on one frame payload; a "length" beyond this is corruption.
constexpr std::uint32_t kMaxPayload = 1u << 26;

struct FrameHeader {
  std::uint32_t length = 0;
  std::uint32_t crc = 0;
};

std::string header_bytes() {
  std::string out(kHeaderSize, '\0');
  std::memcpy(out.data(), kMagic, sizeof(kMagic));
  const std::uint32_t version = kStoreVersion;
  std::memcpy(out.data() + sizeof(kMagic), &version, sizeof(version));
  return out;  // trailing u32 stays zero (reserved)
}

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Exclusive or shared advisory lock on the log fd, released on scope exit.
class FlockGuard {
 public:
  FlockGuard(int fd, int op) : fd_(fd) {
    while (::flock(fd_, op) != 0) {
      if (errno != EINTR) fail("store: flock");
    }
  }
  ~FlockGuard() { ::flock(fd_, LOCK_UN); }
  FlockGuard(const FlockGuard&) = delete;
  FlockGuard& operator=(const FlockGuard&) = delete;

 private:
  int fd_;
};

std::uint64_t file_size(int fd) {
  struct stat st{};
  if (::fstat(fd, &st) != 0) fail("store: fstat");
  return static_cast<std::uint64_t>(st.st_size);
}

/// pread exactly `n` bytes at `offset`; false on EOF-before-n or error.
bool pread_exact(int fd, void* buf, std::size_t n, std::uint64_t offset) {
  auto* out = static_cast<char*>(buf);
  while (n > 0) {
    const ssize_t got = ::pread(fd, out, n, static_cast<off_t>(offset));
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;
    out += got;
    offset += static_cast<std::uint64_t>(got);
    n -= static_cast<std::size_t>(got);
  }
  return true;
}

void pwrite_exact(int fd, const void* buf, std::size_t n,
                  std::uint64_t offset) {
  const auto* data = static_cast<const char*>(buf);
  while (n > 0) {
    const ssize_t put = ::pwrite(fd, data, n, static_cast<off_t>(offset));
    if (put < 0) {
      if (errno == EINTR) continue;
      fail("store: pwrite");
    }
    data += put;
    offset += static_cast<std::uint64_t>(put);
    n -= static_cast<std::size_t>(put);
  }
}

obs::Counter& hits_counter() {
  static obs::Counter& c = obs::registry().counter("store.hits");
  return c;
}
obs::Counter& misses_counter() {
  static obs::Counter& c = obs::registry().counter("store.misses");
  return c;
}
obs::Counter& appends_counter() {
  static obs::Counter& c = obs::registry().counter("store.appends");
  return c;
}
obs::Counter& recovered_counter() {
  static obs::Counter& c =
      obs::registry().counter("store.recovered_tail_bytes");
  return c;
}

}  // namespace

EvalStore::EvalStore(std::string path) : path_(std::move(path)) {}

EvalStore::~EvalStore() {
  if (fd_ >= 0) ::close(fd_);
}

std::shared_ptr<EvalStore> EvalStore::open(const std::string& path) {
  std::shared_ptr<EvalStore> store(new EvalStore(path));
  store->open_and_recover();
  return store;
}

void EvalStore::open_and_recover() {
  INTOOA_SPAN("store.open");
  std::error_code ec;
  const bool existed = std::filesystem::exists(path_, ec);
  if (!existed) {
    // Durable creation: the header is published atomically, so a crash
    // during creation leaves either no store or a complete empty one.
    util::atomic_write_file(path_, header_bytes());
  }
  fd_ = ::open(path_.c_str(), O_RDWR);
  if (fd_ < 0) fail("store: cannot open " + path_);

  FlockGuard lock(fd_, LOCK_EX);
  const std::uint64_t size = file_size(fd_);
  if (size < kHeaderSize) {
    // Zero-length or torn-at-creation file: every byte (if any) fails to
    // form a header, so the longest valid prefix is empty — reinitialize.
    std::string head(static_cast<std::size_t>(size), '\0');
    if (size > 0 && !pread_exact(fd_, head.data(), head.size(), 0)) {
      fail("store: cannot read " + path_);
    }
    if (head != header_bytes().substr(0, head.size())) {
      throw std::runtime_error("store: " + path_ +
                               " is not an intooa evaluation store");
    }
    if (::ftruncate(fd_, 0) != 0) fail("store: ftruncate " + path_);
    const std::string header = header_bytes();
    pwrite_exact(fd_, header.data(), header.size(), 0);
    util::fsync_fd(fd_, path_);
    util::log_warn("store " + path_ + ": recovered truncated header",
                   {{"dropped_bytes", size}});
    stats_.recovered_tail_bytes += size;
    recovered_counter().add(size);
  } else {
    std::string head(kHeaderSize, '\0');
    if (!pread_exact(fd_, head.data(), head.size(), 0)) {
      fail("store: cannot read " + path_);
    }
    if (std::memcmp(head.data(), kMagic, sizeof(kMagic)) != 0) {
      throw std::runtime_error("store: " + path_ +
                               " is not an intooa evaluation store");
    }
    std::uint32_t version = 0;
    std::memcpy(&version, head.data() + sizeof(kMagic), sizeof(version));
    if (version != kStoreVersion) {
      throw std::runtime_error(
          "store: " + path_ + " has incompatible format version " +
          std::to_string(version) + " (this build reads version " +
          std::to_string(kStoreVersion) +
          "); use a matching build or a fresh --store file");
    }
  }
  end_offset_ = kHeaderSize;
  scan_locked(/*truncate_tail=*/true);
  util::log_info("store " + path_ + " opened",
                 {{"records", index_.size()},
                  {"bytes", end_offset_}});
}

void EvalStore::scan_locked(bool truncate_tail) {
  const std::uint64_t size = file_size(fd_);
  std::string payload;
  while (end_offset_ + sizeof(FrameHeader) <= size) {
    FrameHeader frame;
    if (!pread_exact(fd_, &frame, sizeof frame, end_offset_)) break;
    if (frame.length > kMaxPayload ||
        end_offset_ + sizeof frame + frame.length > size) {
      break;  // torn or insane frame: the valid prefix ends here
    }
    payload.resize(frame.length);
    if (!pread_exact(fd_, payload.data(), payload.size(),
                     end_offset_ + sizeof frame)) {
      break;
    }
    if (util::crc32(payload) != frame.crc) break;  // bit rot / torn write
    if (const auto digest = peek_digest(payload)) {
      Entry entry;
      entry.offset = end_offset_ + sizeof frame;
      entry.length = frame.length;
      entry.crc = frame.crc;
      index_.emplace(*digest, entry);  // first record of a digest wins
    }
    end_offset_ += sizeof frame + frame.length;
  }
  stats_.records = index_.size();
  if (end_offset_ < size && truncate_tail) {
    const std::uint64_t dropped = size - end_offset_;
    if (::ftruncate(fd_, static_cast<off_t>(end_offset_)) != 0) {
      fail("store: ftruncate " + path_);
    }
    util::fsync_fd(fd_, path_);
    util::log_warn("store " + path_ + ": dropped corrupt tail",
                   {{"dropped_bytes", dropped},
                    {"valid_records", index_.size()}});
    stats_.recovered_tail_bytes += dropped;
    recovered_counter().add(dropped);
  }
}

std::optional<std::string> EvalStore::read_payload_locked(const Entry& entry) {
  std::string payload(entry.length, '\0');
  if (!pread_exact(fd_, payload.data(), payload.size(), entry.offset)) {
    return std::nullopt;
  }
  if (util::crc32(payload) != entry.crc) return std::nullopt;
  return payload;
}

std::optional<core::EvalRecord> EvalStore::lookup(const core::EvalKey& key) {
  INTOOA_SPAN("store.lookup");
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = index_.find(key.digest);
  if (it == index_.end()) {
    // Another process may have appended since our last scan: extend the
    // index over any new valid frames (read-only — a torn foreign tail is
    // left for the next writer to truncate) and retry once.
    if (file_size(fd_) > end_offset_) {
      FlockGuard lock(fd_, LOCK_SH);
      scan_locked(/*truncate_tail=*/false);
      it = index_.find(key.digest);
    }
  }
  if (it != index_.end()) {
    if (auto payload = read_payload_locked(it->second)) {
      if (auto decoded = decode_record(*payload)) {
        if (decoded->key.fingerprint == key.fingerprint) {
          ++stats_.hits;
          hits_counter().add();
          return std::move(decoded->record);
        }
        // 64-bit digest collision between different evaluation contexts:
        // degrade to a miss (the colliding key can never be stored).
        util::log_warn("store " + path_ + ": key digest collision",
                       {{"digest", it->first}});
      } else {
        util::log_warn("store " + path_ + ": undecodable record, ignoring",
                       {{"offset", it->second.offset}});
      }
    } else {
      util::log_warn("store " + path_ + ": record failed checksum, ignoring",
                     {{"offset", it->second.offset}});
    }
  }
  ++stats_.misses;
  misses_counter().add();
  return std::nullopt;
}

bool EvalStore::append(const core::EvalKey& key,
                       const core::EvalRecord& record) {
  INTOOA_SPAN("store.append");
  std::lock_guard<std::mutex> guard(mutex_);
  FlockGuard lock(fd_, LOCK_EX);
  // Pick up foreign appends (and, holding the writer lock, truncate any
  // tail a crashed writer left) so the duplicate check sees every record.
  scan_locked(/*truncate_tail=*/true);
  if (index_.count(key.digest) > 0) return false;

  const std::string payload = encode_record(key, record);
  FrameHeader frame;
  frame.length = static_cast<std::uint32_t>(payload.size());
  frame.crc = util::crc32(payload);
  std::string bytes(sizeof frame + payload.size(), '\0');
  std::memcpy(bytes.data(), &frame, sizeof frame);
  std::memcpy(bytes.data() + sizeof frame, payload.data(), payload.size());
  pwrite_exact(fd_, bytes.data(), bytes.size(), end_offset_);
  util::fsync_fd(fd_, path_);

  Entry entry;
  entry.offset = end_offset_ + sizeof frame;
  entry.length = frame.length;
  entry.crc = frame.crc;
  index_.emplace(key.digest, entry);
  end_offset_ += bytes.size();
  stats_.records = index_.size();
  ++stats_.appends;
  appends_counter().add();
  return true;
}

std::size_t EvalStore::size() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return index_.size();
}

StoreStats EvalStore::stats() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return stats_;
}

StoreTier::StoreTier(std::shared_ptr<EvalStore> store,
                     core::EvalKeyContext keys)
    : store_(std::move(store)), keys_(std::move(keys)) {
  if (!store_) throw std::invalid_argument("StoreTier: null store");
}

std::optional<core::EvalRecord> StoreTier::load(
    const circuit::Topology& topology) {
  core::EvalRecord record;
  try {
    auto stored = store_->lookup(keys_.key_for(topology));
    if (!stored) return std::nullopt;
    record = std::move(*stored);
  } catch (const std::exception& e) {
    util::log_warn(std::string("store load failed, treating as miss: ") +
                   e.what());
    return std::nullopt;
  }
  return record;
}

void StoreTier::save(const core::EvalRecord& record) {
  try {
    store_->append(keys_.key_for(record.topology), record);
  } catch (const std::exception& e) {
    util::log_warn(std::string("store append failed (result not persisted, "
                               "campaign continues): ") +
                   e.what());
  }
}

void attach(core::TopologyEvaluator& evaluator,
            std::shared_ptr<EvalStore> store) {
  if (!store) {
    evaluator.attach_store(nullptr);
    return;
  }
  evaluator.attach_store(
      std::make_shared<StoreTier>(std::move(store), evaluator.key_context()));
}

}  // namespace intooa::store
