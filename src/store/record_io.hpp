#pragma once
// Binary (de)serialization of one stored evaluation: the frame payload of
// the append-only store log. Doubles are written as raw IEEE-754 bits, so a
// decoded record reproduces FoM curves and best-design selection
// byte-for-byte; strings (the key fingerprint, failure reasons) are
// length-prefixed. All integers are fixed-width little-endian. Decoding is
// fully bounds-checked and returns nullopt on any structural defect — the
// store treats an undecodable payload exactly like a CRC failure.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/eval_key.hpp"
#include "core/evaluator.hpp"

namespace intooa::store {

/// One decoded log frame: the key it was filed under plus the record.
struct StoredRecord {
  core::EvalKey key;
  core::EvalRecord record;
};

/// Serializes (key, record) into a frame payload. record.sims_before is not
/// stored: it is positional state of one campaign, not content.
std::string encode_record(const core::EvalKey& key,
                          const core::EvalRecord& record);

/// Inverse of encode_record. Returns nullopt on truncation, trailing bytes,
/// or an invalid topology index.
std::optional<StoredRecord> decode_record(std::string_view payload);

/// Reads just the leading key digest (for index building without a full
/// decode). Returns nullopt when the payload is too short.
std::optional<std::uint64_t> peek_digest(std::string_view payload);

}  // namespace intooa::store
