// intooa-svc-client — CLI front end for the evaluation service, built on
// the api::Session facade (api/session.hpp). Three modes sharing one
// request vocabulary:
//
//   single (default): one request for (--spec, --topology), one reply
//   --batch FILE:     one request per file line ("SPEC TOPOLOGY_INDEX";
//                     '#' starts a comment)
//   --hammer N:       N concurrent sessions splitting the request list
//                     (the list is the batch file when given, otherwise
//                     --count consecutive topologies starting at
//                     --topology); Busy backoff is handled by the pool
//
// --verify re-runs every evaluation in-process and byte-compares the local
// store::encode_record bytes against the server's record payload — the
// end-to-end determinism check used by the CI smoke.
//
// A fourth mode queries a live server's telemetry instead of evaluating:
//
//   stats [--watch N] [--prometheus | --json] [--flight]
//
// prints the server's metrics snapshot (human table by default, Prometheus
// text exposition with --prometheus, the raw StatsResponse JSON with
// --json; --flight appends the request flight recorder; --watch N repeats
// every N seconds until interrupted). Requires a minor >= 1 server.
//
// A fifth mode drives an intooa-schedd campaign scheduler (minor >= 2):
//
//   jobs submit --specs S-1,S-2 [--tenant T --priority N --method NAME
//               --runs N --init N --iters N --pool N --sizing-init N
//               --sizing-iters N --seed N] [--watch]
//   jobs status --job ID
//   jobs cancel --job ID
//   jobs list [--tenant T]
//   jobs watch [--job ID] [--interval SEC]
//
// submit prints the assigned job id; watch polls until the job — or with
// no --job, every job — is terminal, exiting 0 only if everything
// completed.
//
// --json switches every subcommand to machine-readable output: one JSON
// document per result line (the same shapes the HTTP gateway serves;
// docs/GATEWAY.md), errors as {"error": {...}} on stdout.
//
// Exit codes, derived from the api::Error taxonomy:
//   0  every request ok (and verified, when asked)
//   2  usage error (unknown flag/subcommand, invalid argument)
//   3  retryable failure (endpoint down, queue full, draining, timeout)
//   4  permanent failure (unknown job, protocol error, verify mismatch,
//      watched job canceled/failed)
//
// Options: --connect ADDR --spec S-1 --topology N --count N --batch FILE
//          --hammer N --retries N --timeout-ms MS --verify --json
//          --sizing-init N --sizing-iters N --candidates N --refit-every N
//          plus the standard telemetry flags (--trace --metrics
//          --log-level).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <fstream>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/error.hpp"
#include "api/json.hpp"
#include "api/session.hpp"
#include "core/eval_key.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/telemetry.hpp"
#include "sizing/sizer.hpp"
#include "store/record_io.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace {

using namespace intooa;

/// One request to issue: the spec name plus the topology index.
struct Job {
  std::string spec;
  std::uint64_t topology_index = 0;
};

std::vector<Job> read_batch(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open batch file " + path);
  std::vector<Job> jobs;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    Job job;
    if (!(fields >> job.spec)) continue;  // blank / comment-only line
    if (!(fields >> job.topology_index)) {
      throw std::invalid_argument(path + ":" + std::to_string(line_no) +
                                  ": expected 'SPEC TOPOLOGY_INDEX'");
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

svc::EvalRequest make_request(const Job& job, const sizing::SizingConfig& cfg,
                              std::uint64_t request_id) {
  svc::EvalRequest request;
  request.request_id = request_id;
  request.spec = circuit::spec_by_name(job.spec);
  request.sizing = cfg;
  request.topology_index = job.topology_index;
  return request;
}

/// Recomputes the evaluation in-process and byte-compares against the
/// server's record payload. Returns true when identical.
bool verify_reply(const svc::EvalRequest& request,
                  const api::EvaluationOutcome& outcome) {
  const sizing::EvalContext context = request.eval_context();
  const core::EvalKeyContext keys(context, request.sizing);
  const circuit::Topology topology =
      circuit::Topology::from_index(request.topology_index);
  const core::EvalKey key = keys.key_for(topology);
  util::Rng sizing_rng(key.digest);
  const sizing::Sizer sizer(context, request.sizing);
  core::EvalRecord record;
  record.topology = topology;
  record.sized = sizer.size(topology, sizing_rng);
  return store::encode_record(key, record) == outcome.record_payload;
}

struct Tally {
  std::mutex mutex;
  std::size_t ok = 0, failed = 0, verified = 0, mismatched = 0;
  int worst_exit = 0;  ///< escalated api exit code across failures
};

/// Runs `jobs` sequentially over one api::Session; updates `tally`.
void run_eval_jobs(const svc::Address& address, const std::vector<Job>& jobs,
                   std::uint64_t id_base, const sizing::SizingConfig& cfg,
                   bool verify, bool print, bool json, Tally& tally) {
  api::SessionConfig config;
  config.evaluators = {address};
  api::Session session(std::move(config));
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    svc::EvalRequest request;
    try {
      request = make_request(jobs[i], cfg, id_base + i + 1);
    } catch (const std::exception& error) {
      const api::Error mapped = api::error_from_exception(error);
      std::lock_guard<std::mutex> lock(tally.mutex);
      ++tally.failed;
      tally.worst_exit = std::max(tally.worst_exit, mapped.exit_code());
      if (json) {
        std::printf("%s\n", api::error_to_json(mapped).dump().c_str());
      } else {
        std::fprintf(stderr, "request %llu (%s topo %llu): %s\n",
                     (unsigned long long)(id_base + i + 1),
                     jobs[i].spec.c_str(),
                     (unsigned long long)jobs[i].topology_index,
                     mapped.message.c_str());
      }
      continue;
    }
    const api::Expected<api::EvaluationOutcome> outcome =
        session.evaluations().evaluate(request);
    if (!outcome.ok()) {
      std::lock_guard<std::mutex> lock(tally.mutex);
      ++tally.failed;
      tally.worst_exit =
          std::max(tally.worst_exit, outcome.error().exit_code());
      if (json) {
        std::printf("%s\n", api::error_to_json(outcome.error()).dump().c_str());
      } else {
        std::fprintf(stderr, "request %llu (%s topo %llu): %s: %s\n",
                     (unsigned long long)(id_base + i + 1),
                     jobs[i].spec.c_str(),
                     (unsigned long long)jobs[i].topology_index,
                     std::string(api::error_code_name(outcome.error().code))
                         .c_str(),
                     outcome.error().message.c_str());
      }
      continue;
    }
    const api::EvaluationOutcome& result = outcome.value();
    const bool identical = verify && verify_reply(request, result);
    std::lock_guard<std::mutex> lock(tally.mutex);
    ++tally.ok;
    if (verify) ++(identical ? tally.verified : tally.mismatched);
    if (json) {
      obs::Json doc = api::evaluation_to_json(request, result);
      if (verify) doc["verify"] = obs::Json(identical ? "ok" : "mismatch");
      std::printf("%s\n", doc.dump().c_str());
    } else if (print) {
      std::printf("%s topo %llu: served=%s feasible=%d fom=%.4f sims=%zu%s\n",
                  jobs[i].spec.c_str(),
                  (unsigned long long)jobs[i].topology_index,
                  svc::served_from_name(result.served_from).data(),
                  result.record.record.sized.best.feasible ? 1 : 0,
                  result.record.record.sized.best.fom,
                  result.record.record.sized.simulations,
                  !verify ? "" : identical ? " verify=ok"
                                           : " verify=MISMATCH");
    }
  }
}

/// Human rendering of one StatsResponse document: uptime header, counter
/// and gauge tables, then per-histogram quantiles.
void print_stats_human(const obs::Json& root) {
  std::printf("uptime=%.1fs protocol=%d.%d\n",
              root.at("uptime_seconds").as_number(),
              static_cast<int>(root.at("protocol_version").as_number()),
              static_cast<int>(root.at("protocol_minor").as_number()));
  const obs::Json& metrics = root.at("metrics");
  if (metrics.contains("counters")) {
    for (const auto& [name, value] : metrics.at("counters").members()) {
      std::printf("  %-28s %.0f\n", name.c_str(), value.as_number());
    }
  }
  if (metrics.contains("gauges")) {
    for (const auto& [name, value] : metrics.at("gauges").members()) {
      std::printf("  %-28s %g\n", name.c_str(), value.as_number());
    }
  }
  if (root.contains("quantiles")) {
    for (const auto& [name, q] : root.at("quantiles").members()) {
      std::printf("  %-28s count=%.0f p50=%.0f p90=%.0f p99=%.0f\n",
                  name.c_str(), q.at("count").as_number(),
                  q.at("p50").as_number(), q.at("p90").as_number(),
                  q.at("p99").as_number());
    }
  }
  if (root.contains("flight")) {
    std::printf("flight (%zu of %.0f recorded):\n", root.at("flight").size(),
                root.at("flight_total").as_number());
    for (const auto& record : root.at("flight").items()) {
      std::printf("  id=%.0f served=%s total_ns=%.0f peer=%s\n",
                  record.at("request_id").as_number(),
                  record.at("served_from").as_string().c_str(),
                  record.at("total_ns").as_number(),
                  record.at("peer").as_string().c_str());
    }
  }
}

/// Prints an api::Error the mode-appropriate way and returns its exit code.
int report_error(const api::Error& error, bool json) {
  if (json) {
    std::printf("%s\n", api::error_to_json(error).dump().c_str());
  } else {
    std::fprintf(stderr, "intooa-svc-client: %s\n", error.message.c_str());
  }
  return error.exit_code();
}

/// The `stats` subcommand: query a live server's telemetry over the
/// facade, optionally repeating with --watch.
int run_stats(const util::Cli& cli, const svc::Address& address,
              int timeout_ms) {
  const bool prometheus = cli.has("prometheus");
  const bool raw_json = cli.has("json");
  const std::size_t watch_s = cli.get_size("watch", 0);
  api::SessionConfig config;
  config.evaluators = {address};
  config.stats_timeout_ms = timeout_ms;
  api::Session session(std::move(config));
  for (;;) {
    const api::Expected<std::string> text =
        session.stats().fetch_json(cli.has("flight"));
    if (!text.ok()) return report_error(text.error(), raw_json);
    if (raw_json) {
      std::printf("%s\n", text.value().c_str());
    } else {
      const obs::Json root = obs::Json::parse(text.value());
      if (prometheus) {
        const auto snapshot =
            obs::MetricsSnapshot::from_json(root.at("metrics"));
        std::fputs(obs::render_prometheus(snapshot).c_str(), stdout);
      } else {
        print_stats_human(root);
      }
    }
    std::fflush(stdout);
    if (watch_s == 0) break;
    std::this_thread::sleep_for(std::chrono::seconds(watch_s));
  }
  return 0;
}

/// One line per job: stable, grep-friendly, used by the CI smoke.
void print_job(const sched::JobInfo& info) {
  std::string specs;
  for (const auto& name : info.spec.specs) {
    if (!specs.empty()) specs += ',';
    specs += name;
  }
  std::printf(
      "job %llu tenant=%s priority=%u method=%s specs=%s state=%s "
      "units=%u/%u sims=%llu preemptions=%u%s%s\n",
      (unsigned long long)info.id, info.spec.tenant.c_str(),
      info.spec.priority, info.spec.method.c_str(), specs.c_str(),
      std::string(sched::job_state_name(info.state)).c_str(),
      info.units_done, info.units_total, (unsigned long long)info.simulations,
      info.preemptions, info.message.empty() ? "" : " msg=",
      info.message.c_str());
}

/// Prints one job the mode-appropriate way.
void emit_job(const sched::JobInfo& info, bool json) {
  if (json) {
    std::printf("%s\n", api::job_info_to_json(info).dump().c_str());
  } else {
    print_job(info);
  }
}

/// Polls until the watched job(s) are terminal. Exit 0 only when
/// everything completed (canceled/failed jobs fail the watch).
int watch_jobs(api::Jobs& jobs_api, std::optional<std::uint64_t> job_id,
               std::size_t interval_s, bool json) {
  for (;;) {
    std::vector<sched::JobInfo> jobs;
    if (job_id) {
      const api::Expected<sched::JobInfo> info = jobs_api.status(*job_id);
      if (!info.ok()) return report_error(info.error(), json);
      jobs.push_back(info.value());
    } else {
      api::Expected<std::vector<sched::JobInfo>> all = jobs_api.list();
      if (!all.ok()) return report_error(all.error(), json);
      jobs = std::move(all).take();
    }
    bool all_terminal = true, all_completed = true;
    for (const auto& info : jobs) {
      if (!sched::job_state_terminal(info.state)) all_terminal = false;
      if (info.state != sched::JobState::Completed) all_completed = false;
    }
    if (all_terminal) {
      for (const auto& info : jobs) emit_job(info, json);
      return all_completed && !jobs.empty()
                 ? 0
                 : api::error_exit_code(api::ErrorCode::Internal);
    }
    std::this_thread::sleep_for(std::chrono::seconds(interval_s));
  }
}

/// The `jobs` subcommand: drive a live intooa-schedd through the facade.
int run_jobs_control(const util::Cli& cli, const svc::Address& address) {
  const auto& pos = cli.positional();
  const std::string action = pos.size() >= 2 ? pos[1] : "list";
  const bool json = cli.has("json");
  const std::size_t interval_s = std::max<std::size_t>(
      1, cli.get_size("interval", 2));
  api::SessionConfig config;
  config.scheduler = address;
  api::Session session(std::move(config));
  api::Jobs& jobs = session.jobs();

  if (action == "submit") {
    sched::JobSpec spec;
    spec.tenant = cli.get("tenant", "default");
    spec.priority = static_cast<std::uint32_t>(cli.get_size("priority", 0));
    spec.method = cli.get("method", "INTO-OA");
    std::string specs_arg = cli.get("specs", "S-1");
    std::size_t start = 0;
    while (start < specs_arg.size()) {
      std::size_t comma = specs_arg.find(',', start);
      if (comma == std::string::npos) comma = specs_arg.size();
      if (comma > start) {
        spec.specs.push_back(specs_arg.substr(start, comma - start));
      }
      start = comma + 1;
    }
    spec.params.runs = cli.get_size("runs", spec.params.runs);
    spec.params.init_topologies = cli.get_size("init", spec.params.init_topologies);
    spec.params.iterations = cli.get_size("iters", spec.params.iterations);
    spec.params.pool = cli.get_size("pool", spec.params.pool);
    spec.params.sizing_init =
        cli.get_size("sizing-init", spec.params.sizing_init);
    spec.params.sizing_iterations =
        cli.get_size("sizing-iters", spec.params.sizing_iterations);
    spec.params.seed = cli.get_size("seed", spec.params.seed);
    const api::Expected<std::uint64_t> submitted = jobs.submit(spec);
    if (!submitted.ok()) {
      if (!json && submitted.error().code == api::ErrorCode::QueueFull) {
        std::fprintf(stderr, "queue full; retry after %u ms\n",
                     submitted.error().retry_after_ms);
        return submitted.error().exit_code();
      }
      return report_error(submitted.error(), json);
    }
    if (json) {
      obs::Json doc = obs::Json::object();
      doc["id"] =
          obs::Json(static_cast<unsigned long long>(submitted.value()));
      doc["state"] = obs::Json("queued");
      std::printf("%s\n", doc.dump().c_str());
    } else {
      std::printf("submitted job %llu\n",
                  (unsigned long long)submitted.value());
    }
    if (cli.has("watch")) {
      return watch_jobs(jobs, submitted.value(), interval_s, json);
    }
    return 0;
  }
  if (action == "status" || action == "cancel") {
    if (!cli.has("job")) {
      std::fprintf(stderr, "jobs %s requires --job ID\n", action.c_str());
      return api::error_exit_code(api::ErrorCode::InvalidArgument);
    }
    const std::uint64_t job_id = cli.get_size("job", 0);
    const api::Expected<sched::JobInfo> info =
        action == "status" ? jobs.status(job_id) : jobs.cancel(job_id);
    if (!info.ok()) {
      if (!json && info.error().code == api::ErrorCode::NotFound) {
        std::fprintf(stderr, "unknown job %llu\n", (unsigned long long)job_id);
        return info.error().exit_code();
      }
      return report_error(info.error(), json);
    }
    emit_job(info.value(), json);
    return 0;
  }
  if (action == "list") {
    const api::Expected<std::vector<sched::JobInfo>> all =
        jobs.list(cli.get("tenant", ""));
    if (!all.ok()) return report_error(all.error(), json);
    if (json) {
      obs::Json list = obs::Json::array();
      for (const auto& info : all.value()) {
        list.push_back(api::job_info_to_json(info));
      }
      obs::Json doc = obs::Json::object();
      doc["jobs"] = std::move(list);
      std::printf("%s\n", doc.dump().c_str());
    } else {
      for (const auto& info : all.value()) print_job(info);
    }
    return 0;
  }
  if (action == "watch") {
    std::optional<std::uint64_t> job_id;
    if (cli.has("job")) job_id = cli.get_size("job", 0);
    return watch_jobs(jobs, job_id, interval_s, json);
  }
  std::fprintf(stderr,
               "intooa-svc-client jobs: unknown action '%s' "
               "(submit|status|cancel|list|watch)\n",
               action.c_str());
  return api::error_exit_code(api::ErrorCode::InvalidArgument);
}

}  // namespace

int main(int argc, char** argv) {
  bool json_mode = false;
  try {
    const util::Cli cli(argc, argv);
    json_mode = cli.has("json");
    const bool jobs_mode =
        !cli.positional().empty() && cli.positional().front() == "jobs";
    if (jobs_mode) {
      // The scheduler subcommand has its own flag vocabulary (campaign
      // protocol + job control) disjoint from the evaluation modes'.
      cli.reject_unknown({"connect", "tenant", "priority", "method", "specs",
                          "runs", "init", "iters", "pool", "sizing-init",
                          "sizing-iters", "seed", "job", "interval", "watch",
                          "json", "trace", "metrics", "log-level"});
    } else {
      cli.reject_unknown({"connect", "spec", "topology", "count", "batch",
                          "hammer", "retries", "timeout-ms", "verify",
                          "sizing-init", "sizing-iters", "candidates",
                          "refit-every", "watch", "prometheus", "json",
                          "flight", "trace", "metrics", "log-level"});
    }
    obs::BenchTelemetry telemetry(
        obs::TelemetryOptions::from_cli(cli, util::LogLevel::Warn));

    const svc::Address address = svc::Address::parse(cli.get(
        "connect", jobs_mode ? "unix:intooa-sched.sock" : "unix:intooa-svc.sock"));
    if (jobs_mode) return run_jobs_control(cli, address);
    if (!cli.positional().empty()) {
      const std::string& mode = cli.positional().front();
      if (mode != "stats") {
        std::fprintf(stderr, "intooa-svc-client: unknown subcommand '%s'\n",
                     mode.c_str());
        return api::error_exit_code(api::ErrorCode::InvalidArgument);
      }
      return run_stats(cli, address,
                       static_cast<int>(cli.get_int("timeout-ms", -1)));
    }
    sizing::SizingConfig cfg;
    cfg.init_points = cli.get_size("sizing-init", cfg.init_points);
    cfg.iterations = cli.get_size("sizing-iters", cfg.iterations);
    cfg.candidates = cli.get_size("candidates", cfg.candidates);
    cfg.refit_hyper_every =
        static_cast<int>(cli.get_int("refit-every", cfg.refit_hyper_every));
    const bool verify = cli.has("verify");
    const bool json = cli.has("json");

    // Build the request list: batch file, or --count consecutive
    // topologies starting at --topology.
    std::vector<Job> jobs;
    const std::string batch_path = cli.get("batch", "");
    if (!batch_path.empty()) {
      jobs = read_batch(batch_path);
    } else {
      const std::string spec = cli.get("spec", "S-1");
      const std::uint64_t base = cli.get_size("topology", 0);
      const std::size_t count = cli.get_size("count", 1);
      for (std::size_t i = 0; i < count; ++i) {
        jobs.push_back({spec, base + i});
      }
    }
    if (jobs.empty()) {
      std::fprintf(stderr, "intooa-svc-client: nothing to request\n");
      return api::error_exit_code(api::ErrorCode::InvalidArgument);
    }

    Tally tally;
    const std::size_t hammer = cli.get_size("hammer", 0);
    if (hammer <= 1) {
      run_eval_jobs(address, jobs, 0, cfg, verify, /*print=*/true, json,
                    tally);
    } else {
      // Split the list round-robin across `hammer` sessions, one thread
      // each. Ids are disjoint per worker so replies are attributable.
      std::vector<std::vector<Job>> split(hammer);
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        split[i % hammer].push_back(jobs[i]);
      }
      std::vector<std::thread> workers;
      for (std::size_t w = 0; w < hammer; ++w) {
        workers.emplace_back([&, w] {
          try {
            run_eval_jobs(address, split[w], (w + 1) << 32, cfg, verify,
                          /*print=*/true, json, tally);
          } catch (const std::exception& error) {
            const api::Error mapped = api::error_from_exception(error);
            std::lock_guard<std::mutex> lock(tally.mutex);
            ++tally.failed;
            tally.worst_exit = std::max(tally.worst_exit, mapped.exit_code());
            std::fprintf(stderr, "worker %zu: %s\n", w, error.what());
          }
        });
      }
      for (auto& worker : workers) worker.join();
    }

    if (json) {
      obs::Json doc = obs::Json::object();
      doc["ok"] = obs::Json(static_cast<unsigned long long>(tally.ok));
      doc["failed"] = obs::Json(static_cast<unsigned long long>(tally.failed));
      if (verify) {
        doc["verified"] =
            obs::Json(static_cast<unsigned long long>(tally.verified));
        doc["mismatched"] =
            obs::Json(static_cast<unsigned long long>(tally.mismatched));
      }
      std::printf("%s\n", doc.dump().c_str());
    } else {
      std::printf("ok=%zu failed=%zu", tally.ok, tally.failed);
      if (verify) {
        std::printf(" verified=%zu mismatched=%zu", tally.verified,
                    tally.mismatched);
      }
      std::printf("\n");
    }
    const bool success =
        tally.failed == 0 && tally.ok == jobs.size() && tally.mismatched == 0;
    if (success) return 0;
    return tally.worst_exit != 0
               ? tally.worst_exit
               : api::error_exit_code(api::ErrorCode::Internal);
  } catch (const std::exception& error) {
    // Usage mistakes (bad flag values, unparsable addresses) exit 2 via
    // the taxonomy; unexpected failures exit as their mapped class.
    const api::Error mapped = api::error_from_exception(error);
    if (json_mode) {
      std::printf("%s\n", api::error_to_json(mapped).dump().c_str());
    }
    std::fprintf(stderr, "intooa-svc-client: %s\n", error.what());
    return mapped.exit_code();
  }
}
