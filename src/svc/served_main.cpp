// intooa-served — the long-lived evaluation daemon. Listens on a Unix or
// TCP endpoint, serves EvalRequest frames from the warm tiers (memory
// cache, persistent --store file) or computes them on a thread pool, and
// drains gracefully on SIGTERM/SIGINT: in-flight evaluations finish and
// flush, new work is refused, and the process exits 0 with every store
// append fsync'd. docs/SERVICE.md walks through the protocol; run
//
//   intooa-served --listen unix:/tmp/intooa.sock --store eval-store.bin
//
// and point intooa-svc-client (or any svc::Client) at the same address.
//
// Options: --listen ADDR (unix:PATH | tcp:HOST:PORT, default
//          unix:intooa-svc.sock) --threads N --max-inflight N
//          --max-connections N --idle-timeout-ms MS --busy-retry-ms MS
//          --store FILE --mem-cache-mb N (LRU byte budget per response
//          cache shard, 0 = unlimited) --flight-recorder N --access-log FILE
//          --stats-file FILE --stats-interval SEC   plus the standard
//          telemetry flags (--trace FILE --metrics FILE --log-level LEVEL).
//
// SIGUSR1 dumps the request flight recorder (the last N completed
// requests) to the log without disturbing service; SIGTERM/SIGINT drain.

#include <csignal>
#include <cstdio>
#include <unistd.h>

#include <atomic>
#include <exception>
#include <string>

#include "obs/telemetry.hpp"
#include "store/store.hpp"
#include "svc/server.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

namespace {

// Written once before signals are installed, read only by the handler.
std::atomic<int> g_wake_fd{-1};

// Async-signal-safe: one byte on the self-pipe asks the server to drain.
// A second signal while draining force-exits (the escape hatch when an
// evaluation wedges).
std::atomic<int> g_signal_count{0};
void on_signal(int sig) {
  if (g_signal_count.fetch_add(1, std::memory_order_relaxed) > 0) {
    _exit(128 + sig);
  }
  const int fd = g_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = write(fd, &byte, 1);
  }
}

// Async-signal-safe: byte 2 asks the accept loop to dump the flight
// recorder and keep serving. Deliberately does not touch g_signal_count —
// SIGUSR1 must never escalate to a force-exit.
void on_usr1(int) {
  const int fd = g_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 2;
    [[maybe_unused]] const ssize_t n = write(fd, &byte, 1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace intooa;
  try {
    const util::Cli cli(argc, argv);
    cli.reject_unknown({"listen", "threads", "max-inflight",
                        "max-connections", "idle-timeout-ms", "busy-retry-ms",
                        "store", "mem-cache-mb", "test-eval-delay-ms",
                        "flight-recorder", "access-log", "stats-file",
                        "stats-interval", "trace", "metrics", "log-level"});
    obs::BenchTelemetry telemetry(
        obs::TelemetryOptions::from_cli(cli, util::LogLevel::Info));

    svc::ServerConfig config;
    config.address =
        svc::Address::parse(cli.get("listen", "unix:intooa-svc.sock"));
    config.threads = cli.get_size("threads", 0);
    config.max_inflight = cli.get_size("max-inflight", 64);
    config.max_connections = cli.get_size("max-connections", 64);
    config.idle_timeout_ms =
        static_cast<int>(cli.get_int("idle-timeout-ms", 60'000));
    config.busy_retry_ms =
        static_cast<std::uint32_t>(cli.get_size("busy-retry-ms", 250));
    // Undocumented test hook used by the CI backpressure smoke.
    config.test_eval_delay_ms =
        static_cast<int>(cli.get_int("test-eval-delay-ms", 0));
    config.flight_recorder_capacity = cli.get_size("flight-recorder", 256);
    config.access_log = cli.get("access-log", "");
    config.stats_file = cli.get("stats-file", "");
    config.stats_interval_s =
        cli.get_double("stats-interval", config.stats_interval_s);
    const std::string store_path = cli.get("store", "");
    if (!store_path.empty()) config.store = store::EvalStore::open(store_path);
    // Byte budget of the in-memory response caches; 0 (default) keeps
    // everything, which is fine for bounded campaigns but not for a
    // daemon serving many tenants indefinitely.
    config.mem_cache_bytes = cli.get_size("mem-cache-mb", 0) * (1u << 20);

    svc::Server server(std::move(config));
    server.bind();
    g_wake_fd.store(server.wake_fd(), std::memory_order_relaxed);

    struct sigaction action {};
    action.sa_handler = on_signal;
    sigemptyset(&action.sa_mask);
    sigaction(SIGTERM, &action, nullptr);
    sigaction(SIGINT, &action, nullptr);
    struct sigaction usr1 {};
    usr1.sa_handler = on_usr1;
    sigemptyset(&usr1.sa_mask);
    sigaction(SIGUSR1, &usr1, nullptr);

    if (!store_path.empty()) {
      util::log_info("intooa-served: warm store attached",
                     {{"store", store_path}});
    }
    server.run();  // returns after a graceful drain
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "intooa-served: %s\n", error.what());
    return 1;
  }
}
