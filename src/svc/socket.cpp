#include "svc/socket.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <ctime>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace intooa::svc {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Dial failures get the typed Connect kind so api::Session can classify
/// them (retryable Unavailable) without parsing the message.
[[noreturn]] void fail_connect(const std::string& what) {
  throw TransportError(TransportError::Kind::Connect,
                       what + ": " + std::strerror(errno));
}

obs::Counter& rx_counter() {
  static obs::Counter& c = obs::registry().counter("svc.bytes_rx");
  return c;
}
obs::Counter& tx_counter() {
  static obs::Counter& c = obs::registry().counter("svc.bytes_tx");
  return c;
}

std::int64_t monotonic_now_ns() {
  timespec now{};
  ::clock_gettime(CLOCK_MONOTONIC, &now);
  return static_cast<std::int64_t>(now.tv_sec) * 1'000'000'000 + now.tv_nsec;
}

/// poll() for readability, riding out EINTR. timeout_ms < 0 = forever.
/// Returns false on timeout. The deadline is computed once up front and
/// each re-poll after EINTR uses only the remaining time — a stream of
/// signals must never extend the timeout (a signal-heavy process would
/// otherwise keep a dead-idle connection open without bound).
bool wait_readable(int fd, int timeout_ms) {
  struct pollfd p{};
  p.fd = fd;
  p.events = POLLIN;
  if (timeout_ms < 0) {
    for (;;) {
      const int got = ::poll(&p, 1, -1);
      if (got > 0) return true;
      if (got < 0 && errno != EINTR) return false;
    }
  }
  const std::int64_t deadline_ns =
      monotonic_now_ns() + static_cast<std::int64_t>(timeout_ms) * 1'000'000;
  int remaining_ms = timeout_ms;
  for (;;) {
    const int got = ::poll(&p, 1, remaining_ms);
    if (got > 0) return true;
    if (got == 0) return false;
    if (errno != EINTR) return false;
    const std::int64_t left_ns = deadline_ns - monotonic_now_ns();
    if (left_ns <= 0) return false;
    // Round up so a sub-millisecond remainder still polls once more
    // instead of spinning with a zero timeout.
    remaining_ms = static_cast<int>((left_ns + 999'999) / 1'000'000);
  }
}

/// Reads exactly n bytes (blocking, poll-gated). Returns the byte count
/// actually read: n on success, 0 on clean EOF before any byte, -1 on
/// error/EOF-mid-buffer/timeout. `first_byte_timeout_ms` applies before the
/// first byte only; later bytes get kMidFrameGraceMs each.
ssize_t read_exact(int fd, char* out, std::size_t n,
                   int first_byte_timeout_ms) {
  std::size_t got = 0;
  while (got < n) {
    const int timeout = got == 0 ? first_byte_timeout_ms : kMidFrameGraceMs;
    if (!wait_readable(fd, timeout)) return got == 0 ? -2 : -1;
    const ssize_t r = ::recv(fd, out + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return -1;
    }
    if (r == 0) return got == 0 ? 0 : -1;  // EOF (mid-buffer = torn frame)
    got += static_cast<std::size_t>(r);
  }
  rx_counter().add(n);
  return static_cast<ssize_t>(n);
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

std::string Address::to_string() const {
  if (kind == Kind::Unix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

Address Address::parse(const std::string& text) {
  if (text.empty()) throw std::invalid_argument("svc: empty address");
  Address address;
  std::string rest = text;
  if (rest.rfind("unix:", 0) == 0) {
    address.kind = Kind::Unix;
    address.path = rest.substr(5);
  } else if (rest.rfind("tcp:", 0) == 0 ||
             rest.find(':') != std::string::npos) {
    if (rest.rfind("tcp:", 0) == 0) rest = rest.substr(4);
    const auto colon = rest.rfind(':');
    if (colon == std::string::npos || colon + 1 == rest.size()) {
      throw std::invalid_argument("svc: tcp address needs host:port, got '" +
                                  text + "'");
    }
    address.kind = Kind::Tcp;
    address.host = rest.substr(0, colon);
    if (address.host.empty()) address.host = "127.0.0.1";
    const std::string port_text = rest.substr(colon + 1);
    char* end = nullptr;
    const long port = std::strtol(port_text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || port < 1 || port > 65535) {
      throw std::invalid_argument("svc: bad tcp port '" + port_text + "'");
    }
    address.port = static_cast<std::uint16_t>(port);
  } else {
    address.kind = Kind::Unix;
    address.path = rest;
  }
  if (address.kind == Kind::Unix) {
    if (address.path.empty()) {
      throw std::invalid_argument("svc: empty unix socket path");
    }
    if (address.path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      throw std::invalid_argument("svc: unix socket path too long: " +
                                  address.path);
    }
  }
  return address;
}

Fd listen_on(const Address& address, int backlog) {
  if (address.kind == Address::Kind::Unix) {
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) fail("svc: socket(AF_UNIX)");
    ::unlink(address.path.c_str());  // stale socket file from a dead server
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, address.path.c_str(), sizeof(sa.sun_path) - 1);
    if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
      fail("svc: bind " + address.to_string());
    }
    if (::listen(fd.get(), backlog) != 0) {
      fail("svc: listen " + address.to_string());
    }
    return fd;
  }
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) fail("svc: socket(AF_INET)");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(address.port);
  if (address.host == "*" || address.host == "0.0.0.0") {
    sa.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, address.host.c_str(), &sa.sin_addr) != 1) {
    throw std::runtime_error("svc: cannot parse listen host '" + address.host +
                             "' (use a dotted-quad IP, 0.0.0.0 or *)");
  }
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
    fail("svc: bind " + address.to_string());
  }
  if (::listen(fd.get(), backlog) != 0) {
    fail("svc: listen " + address.to_string());
  }
  return fd;
}

Fd connect_to(const Address& address) {
  if (address.kind == Address::Kind::Unix) {
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) fail_connect("svc: socket(AF_UNIX)");
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, address.path.c_str(), sizeof(sa.sun_path) - 1);
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof sa) !=
        0) {
      fail_connect("svc: connect " + address.to_string());
    }
    return fd;
  }
  struct addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* info = nullptr;
  const std::string port = std::to_string(address.port);
  const int rc =
      ::getaddrinfo(address.host.c_str(), port.c_str(), &hints, &info);
  if (rc != 0 || info == nullptr) {
    throw TransportError(TransportError::Kind::Connect,
                         "svc: cannot resolve " + address.host + ": " +
                             ::gai_strerror(rc));
  }
  // A name can resolve to several addresses; try each in resolver order and
  // only fail — with the last errno — once every candidate was refused.
  Fd fd;
  int last_errno = ECONNREFUSED;
  for (const struct addrinfo* ai = info; ai != nullptr; ai = ai->ai_next) {
    Fd candidate(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!candidate.valid()) {
      last_errno = errno;
      continue;
    }
    if (::connect(candidate.get(), ai->ai_addr, ai->ai_addrlen) == 0) {
      fd = std::move(candidate);
      break;
    }
    last_errno = errno;
  }
  ::freeaddrinfo(info);
  if (!fd.valid()) {
    errno = last_errno;
    fail_connect("svc: connect " + address.to_string());
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

ReadStatus read_frame(int fd, Frame& frame, int idle_timeout_ms) {
  char header[kFrameHeaderSize];
  const ssize_t got =
      read_exact(fd, header, sizeof header, idle_timeout_ms);
  if (got == 0) return ReadStatus::Closed;
  if (got == -2) return ReadStatus::Timeout;
  if (got < 0) return ReadStatus::Error;

  std::uint32_t length = 0;
  std::memcpy(&length, header, sizeof length);
  if (length > kMaxFrame) return ReadStatus::Oversized;
  const auto raw_type = static_cast<std::uint8_t>(header[4]);
  if (!msg_type_known(raw_type)) return ReadStatus::BadType;
  frame.type = static_cast<MsgType>(raw_type);
  frame.payload.resize(length);
  if (length > 0 &&
      read_exact(fd, frame.payload.data(), length, kMidFrameGraceMs) !=
          static_cast<ssize_t>(length)) {
    return ReadStatus::Error;
  }
  return ReadStatus::Ok;
}

bool write_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t put =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (put < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(put);
  }
  tx_counter().add(data.size());
  return true;
}

std::string peer_name(int fd) {
  sockaddr_storage storage{};
  socklen_t len = sizeof storage;
  if (::getpeername(fd, reinterpret_cast<sockaddr*>(&storage), &len) != 0) {
    return "?";
  }
  switch (storage.ss_family) {
    case AF_UNIX:
      return "unix";  // client sockets are unnamed; the path would be empty
    case AF_INET: {
      const auto* in4 = reinterpret_cast<const sockaddr_in*>(&storage);
      char host[INET_ADDRSTRLEN] = {};
      if (!::inet_ntop(AF_INET, &in4->sin_addr, host, sizeof host)) return "?";
      return std::string(host) + ":" + std::to_string(ntohs(in4->sin_port));
    }
    case AF_INET6: {
      const auto* in6 = reinterpret_cast<const sockaddr_in6*>(&storage);
      char host[INET6_ADDRSTRLEN] = {};
      if (!::inet_ntop(AF_INET6, &in6->sin6_addr, host, sizeof host)) {
        return "?";
      }
      return std::string(host) + ":" + std::to_string(ntohs(in6->sin6_port));
    }
    default:
      return "?";
  }
}

}  // namespace intooa::svc
