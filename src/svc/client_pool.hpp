#pragma once
// DEPRECATED as an application entry point: new code should use
// api::Session::evaluations() (api/session.hpp), which routes through this
// pool and maps failures into the api::Error taxonomy. svc::ClientPool
// remains the transport building block the facade is implemented on (and
// the campaign runner's direct dependency).
//
// svc::ClientPool — the distributed-campaign client: shards evaluation
// requests across a fleet of intooa-served endpoints and keeps up to a
// configured number of requests pipelined on each connection, matching
// out-of-order responses to callers by request id.
//
// One worker thread per endpoint owns that endpoint's socket exclusively;
// callers enqueue a pending entry and block until the worker resolves it.
// The worker transparently re-dials a lost connection with exponential
// backoff (deterministically jittered — never util::Rng, which would
// perturb result streams) and replays every request that was in flight
// when the connection died or the server answered Error(draining). Busy
// replies are retried on the same connection after the server's hinted
// backoff. After a run of consecutive connect failures the endpoint is
// marked down: its pending requests fail (evaluate() returns nullopt) and
// callers fail fast while the worker keeps probing in the background, so
// a restarted server is picked back up automatically.
//
// Failure is always soft: evaluate() returns nullopt, never throws, and
// the caller (core::TopologyEvaluator via svc::RemoteBackend) falls back
// to its local sizer. By the deterministic key-seeded sizing discipline
// the fallback bytes equal the served bytes, so campaign outputs are
// byte-identical at any inflight depth, shard count, or failure pattern.
//
// Live metrics: svc.pool.inflight (gauge, requests on the wire across all
// endpoints), svc.pool.reconnects, svc.pool.replays, svc.pool.busy, and
// per-endpoint svc.pool.requests.<i> counters (docs/OBSERVABILITY.md).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "svc/protocol.hpp"
#include "svc/socket.hpp"

namespace intooa::obs {
class Counter;
}

namespace intooa::svc {

/// Tuning knobs; the defaults match the campaign runner's flags.
struct ClientPoolConfig {
  /// Max requests awaiting a reply on one connection at any moment
  /// (--remote-inflight). Further requests queue client-side.
  std::size_t max_inflight = 4;
  /// Consecutive connect failures before an endpoint is marked down and
  /// its callers fail fast (the worker keeps probing at the backoff cap).
  int max_connect_attempts = 5;
  /// Reconnect backoff: base doubling up to the cap, ±25% deterministic
  /// jitter per (endpoint, attempt).
  std::uint32_t reconnect_base_ms = 50;
  std::uint32_t reconnect_cap_ms = 2000;
};

/// Point-in-time accounting for one endpoint.
struct EndpointStats {
  std::string address;
  std::uint64_t requests = 0;    ///< EvalRequests put on the wire
  std::uint64_t reconnects = 0;  ///< connections established after the first
  std::uint64_t replays = 0;     ///< in-flight requests resent after a loss
  std::uint64_t busy = 0;        ///< Busy replies absorbed
  bool down = false;             ///< currently failing fast
};

/// Pool-wide accounting snapshot, one entry per endpoint in --remote order.
struct ClientPoolStats {
  std::vector<EndpointStats> endpoints;

  std::uint64_t requests() const;
  std::uint64_t reconnects() const;
  std::uint64_t replays() const;
};

class ClientPool {
 public:
  /// Spins up one worker (and one eventual connection) per endpoint.
  /// Connections are dialed lazily by the workers; construction never
  /// blocks on the network. Throws std::invalid_argument when `endpoints`
  /// is empty or max_inflight is 0.
  ClientPool(std::vector<Address> endpoints, ClientPoolConfig config = {});
  ~ClientPool();

  ClientPool(const ClientPool&) = delete;
  ClientPool& operator=(const ClientPool&) = delete;

  std::size_t endpoint_count() const { return endpoints_.size(); }

  /// The endpoint index `shard_digest` routes to (digest modulo endpoint
  /// count). Exposed so tests and stats readers can predict routing.
  std::size_t shard_of(std::uint64_t shard_digest) const {
    return shard_digest % endpoints_.size();
  }

  /// Sends `request` to the endpoint selected by `shard_digest` (the
  /// EvalKey digest, so one key always lands on one server's warm store)
  /// and blocks until it resolves. The pool assigns its own request id;
  /// the one in `request` is ignored. Returns the response, or nullopt
  /// when the endpoint is down, the request failed server-side, or the
  /// pool is shutting down — never throws on service failure.
  std::optional<EvalResponse> evaluate(const EvalRequest& request,
                                       std::uint64_t shard_digest);

  /// Consistent snapshot of per-endpoint accounting.
  ClientPoolStats stats() const;

  /// Stops the workers, closes every connection and fails all pending
  /// requests. Idempotent; the destructor calls it.
  void close();

 private:
  /// One enqueued request; shared between the caller (waiting) and the
  /// endpoint worker (resolving). All fields are guarded by the owning
  /// endpoint's mutex.
  struct Pending {
    EvalRequest request;
    bool sent = false;             ///< on the wire, awaiting a reply
    int busy_attempts = 0;         ///< Busy replies absorbed so far
    std::uint64_t not_before_ns = 0;  ///< Busy backoff gate (monotonic)
    bool done = false;
    bool failed = false;
    EvalResponse response;  ///< valid when done
  };

  struct Endpoint {
    Address address;
    std::size_t index = 0;
    mutable std::mutex mutex;
    /// Signals both directions: caller -> worker (new work, stop) and
    /// worker -> caller (request resolved).
    std::condition_variable cv;
    std::map<std::uint64_t, std::shared_ptr<Pending>> pending;
    bool down = false;
    bool stop = false;
    std::uint64_t requests = 0;
    std::uint64_t reconnects = 0;
    std::uint64_t replays = 0;
    std::uint64_t busy = 0;
    obs::Counter* requests_metric = nullptr;  ///< svc.pool.requests.<index>
    std::thread thread;
  };

  enum class ServeEnd { Stop, Lost };

  void run_endpoint(Endpoint& ep);
  /// Pipelines requests on an established connection until it is lost or
  /// the pool stops.
  ServeEnd serve(Endpoint& ep, int fd);
  /// Dials + handshakes; returns an invalid Fd on any failure.
  Fd dial(const Address& address);
  /// Marks every sent-unanswered request for resend (counting replays) so
  /// the next connection replays it. Called with the connection dead.
  void mark_for_replay(Endpoint& ep);
  /// Fails every pending request and wakes its caller.
  void fail_all(Endpoint& ep);

  ClientPoolConfig config_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::int64_t> total_inflight_{0};
  std::atomic<bool> closed_{false};
};

}  // namespace intooa::svc
