#include "svc/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <unordered_set>

#include "core/eval_key.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/trace.hpp"
#include "sizing/sizer.hpp"
#include "store/record_io.hpp"
#include "util/fs.hpp"
#include "util/log.hpp"
#include "util/lru_cache.hpp"
#include "util/rng.hpp"
#include "util/version.hpp"

namespace intooa::svc {

namespace {

/// Poll slice for connection readers: short enough that drain and idle
/// checks stay responsive, long enough to cost nothing.
constexpr int kPollSliceMs = 200;

obs::Counter& requests_counter() {
  static obs::Counter& c = obs::registry().counter("svc.requests");
  return c;
}
obs::Counter& busy_counter() {
  static obs::Counter& c = obs::registry().counter("svc.busy_rejections");
  return c;
}
obs::Counter& errors_counter() {
  static obs::Counter& c = obs::registry().counter("svc.errors");
  return c;
}
obs::Counter& connections_counter() {
  static obs::Counter& c = obs::registry().counter("svc.connections");
  return c;
}
obs::Counter& stats_requests_counter() {
  static obs::Counter& c = obs::registry().counter("svc.stats_requests");
  return c;
}
obs::Gauge& inflight_gauge() {
  static obs::Gauge& g = obs::registry().gauge("svc.inflight");
  return g;
}
obs::Gauge& connections_gauge() {
  static obs::Gauge& g = obs::registry().gauge("svc.connections");
  return g;
}
obs::Gauge& uptime_gauge() {
  static obs::Gauge& g = obs::registry().gauge("svc.uptime_seconds");
  return g;
}
obs::Histogram& request_latency() {
  static obs::Histogram& h =
      obs::registry().histogram("svc.request_ns", obs::Unit::Nanoseconds);
  return h;
}
obs::Histogram& decode_histogram() {
  static obs::Histogram& h =
      obs::registry().histogram("svc.decode", obs::Unit::Nanoseconds);
  return h;
}
obs::Histogram& evaluate_histogram() {
  static obs::Histogram& h =
      obs::registry().histogram("svc.evaluate", obs::Unit::Nanoseconds);
  return h;
}
obs::Histogram& encode_histogram() {
  static obs::Histogram& h =
      obs::registry().histogram("svc.encode", obs::Unit::Nanoseconds);
  return h;
}

/// Server-side span ids for propagated traces. A relaxed atomic counter,
/// never util::Rng: span ids must not perturb any random stream
/// (RNG-neutrality) and only need uniqueness within one merged trace.
std::uint64_t next_server_span_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// Records one server-stage span, tagged with the propagated trace context
/// when present (trace_id != 0) so a merged client+server trace can
/// correlate the rows.
void record_server_span(const char* name, std::uint64_t start_ns,
                        std::uint64_t duration_ns, std::uint64_t trace_id,
                        std::uint64_t span_id) {
  if (!obs::trace_enabled()) return;
  obs::TraceEvent event;
  event.name = name;
  event.tid = util::thread_ordinal();
  event.start_ns = start_ns;
  event.duration_ns = duration_ns;
  event.trace_id = trace_id;
  event.span_id = span_id;
  if (trace_id != 0 && std::string_view(name) == "svc.evaluate") {
    event.flow_in = trace_id;
  }
  obs::trace_record_event(event);
}

obs::Counter& served_counter(ServedFrom from) {
  static obs::Counter& computed =
      obs::registry().counter("svc.served_computed");
  static obs::Counter& memory = obs::registry().counter("svc.served_memory");
  static obs::Counter& store = obs::registry().counter("svc.served_store");
  switch (from) {
    case ServedFrom::Memory: return memory;
    case ServedFrom::Store: return store;
    case ServedFrom::Computed: return computed;
  }
  return computed;
}

}  // namespace

/// Requests whose evaluation configuration (EvalKeyContext prefix) is
/// byte-identical share one shard: one sizer, one response cache, one
/// in-progress set that deduplicates concurrent evaluations of the same
/// key (the second requester waits for the first instead of re-sizing).
struct Server::Shard {
  Shard(const EvalRequest& request, std::size_t mem_cache_bytes)
      : context(request.eval_context()),
        sizer(context, request.sizing),
        keys(context, request.sizing),
        cache(mem_cache_bytes) {}

  sizing::EvalContext context;
  sizing::Sizer sizer;
  core::EvalKeyContext keys;

  std::mutex mutex;
  std::condition_variable cv;
  /// digest -> encoded store record payload (responses are immutable).
  /// Byte-budgeted per ServerConfig::mem_cache_bytes so a long-lived
  /// daemon (or the scheduler embedding it) cannot grow without bound;
  /// budget 0 keeps the historical keep-everything behavior.
  util::LruByteCache cache;
  std::unordered_set<std::uint64_t> in_progress;
};

Server::Server(ServerConfig config) : config_(std::move(config)) {
  if (config_.threads == 0) {
    config_.threads = std::max<std::size_t>(
        1, std::thread::hardware_concurrency());
  }
  if (config_.max_inflight == 0) config_.max_inflight = 1;
  if (config_.flight_recorder_capacity > 0) {
    flight_ =
        std::make_unique<FlightRecorder>(config_.flight_recorder_capacity);
  }
}

Server::~Server() {
  // A destroyed server must not leave threads running; run() normally joins
  // them, but guard against a caller that never ran.
  begin_drain();
  join_all_connections();
}

void Server::join_all_connections() {
  // Move the threads out before joining: a finishing handler takes
  // threads_mutex_ to announce its id, so joining under the lock would
  // deadlock against it.
  std::map<std::uint64_t, std::thread> drained;
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    drained.swap(connection_threads_);
    finished_ids_.clear();
  }
  for (auto& [id, thread] : drained) {
    if (thread.joinable()) thread.join();
  }
}

void Server::reap_finished_connections() {
  std::vector<std::thread> reaped;
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    for (const std::uint64_t id : finished_ids_) {
      const auto it = connection_threads_.find(id);
      if (it == connection_threads_.end()) continue;
      reaped.push_back(std::move(it->second));
      connection_threads_.erase(it);
    }
    finished_ids_.clear();
  }
  // An announced thread has nothing left to do but unwind: these joins
  // return promptly. Outside the lock all the same.
  for (auto& thread : reaped) {
    if (thread.joinable()) thread.join();
  }
}

std::size_t Server::connection_thread_count() const {
  std::lock_guard<std::mutex> lock(threads_mutex_);
  return connection_threads_.size();
}

void Server::bind() {
  if (listen_fd_.valid()) return;
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    throw std::runtime_error(std::string("svc: pipe: ") +
                             std::strerror(errno));
  }
  wake_rx_ = Fd(pipe_fds[0]);
  wake_tx_ = Fd(pipe_fds[1]);
  listen_fd_ = listen_on(config_.address);
  pool_ = std::make_unique<runtime::ThreadPool>(config_.threads);
  start_ns_ = obs::detail::monotonic_ns();
  if (!config_.access_log.empty()) {
    access_log_.open(config_.access_log, std::ios::app);
    if (!access_log_) {
      util::log_warn("svc: cannot open access log; access logging disabled",
                     {{"path", config_.access_log}});
    }
  }
  util::log_info("intooa-served listening on " + config_.address.to_string(),
                 {{"threads", config_.threads},
                  {"max_inflight", config_.max_inflight},
                  {"store", config_.store ? config_.store->path() : "(none)"},
                  {"protocol_version", kProtocolVersion},
                  {"protocol_minor", kProtocolMinorVersion},
                  {"build", util::version_string()}});
}

void Server::run() {
  bind();
  if (!config_.stats_file.empty() && config_.stats_interval_s > 0) {
    stats_thread_ = std::thread([this] { stats_file_loop(); });
  }
  update_loop_gauges();
  while (!draining()) {
    struct pollfd fds[2];
    fds[0] = {listen_fd_.get(), POLLIN, 0};
    fds[1] = {wake_rx_.get(), POLLIN, 0};
    // A ~1 s tick (instead of blocking forever) keeps the liveness gauges
    // fresh between requests, so a stats snapshot of an idle server still
    // shows true uptime/inflight/connections.
    const int got = ::poll(fds, 2, 1000);
    if (got < 0) {
      if (errno == EINTR) continue;
      util::log_error(std::string("svc: accept poll: ") +
                      std::strerror(errno));
      break;
    }
    update_loop_gauges();
    if (got == 0) continue;
    if (fds[1].revents != 0) {
      // Classify the wake bytes: 2 = flight-recorder dump (SIGUSR1, keep
      // serving), anything else = drain.
      char bytes[16];
      const ssize_t n = ::read(wake_rx_.get(), bytes, sizeof bytes);
      bool drain = n <= 0;
      for (ssize_t i = 0; i < n; ++i) {
        if (bytes[i] == 2) {
          dump_flight_recorder();
        } else {
          drain = true;
        }
      }
      if (drain) {
        begin_drain();
        break;
      }
    }
    if (fds[0].revents == 0) continue;
    Fd client(::accept(listen_fd_.get(), nullptr, nullptr));
    if (!client.valid()) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      util::log_error(std::string("svc: accept: ") + std::strerror(errno));
      continue;
    }
    if (open_connections_.load(std::memory_order_relaxed) >=
        config_.max_connections) {
      // Connection-level backpressure: a Busy frame with id 0, then close.
      const std::string frame = encode_frame(
          MsgType::Busy, encode_busy({0, config_.busy_retry_ms}));
      write_all(client.get(), frame);
      busy_counter().add();
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.busy_rejections;
      }
      continue;
    }
    reap_finished_connections();
    auto conn = std::make_shared<Connection>();
    conn->peer = peer_name(client.get());
    conn->fd = std::move(client);
    open_connections_.fetch_add(1, std::memory_order_relaxed);
    connections_gauge().set(
        static_cast<double>(open_connections_.load()));
    connections_counter().add();
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.connections;
    }
    std::lock_guard<std::mutex> lock(threads_mutex_);
    const std::uint64_t id = next_connection_id_++;
    connection_threads_.emplace(
        id, std::thread([this, id, conn = std::move(conn)]() mutable {
          handle_connection(std::move(conn));
          // Announce completion so the accept loop can reap this thread;
          // must be the handler thread's last touch of server state.
          std::lock_guard<std::mutex> lock(threads_mutex_);
          finished_ids_.push_back(id);
        }));
  }

  // Drain: every admitted evaluation finishes and flushes its response.
  {
    std::unique_lock<std::mutex> lock(inflight_mutex_);
    inflight_cv_.wait(lock, [this] { return inflight_.load() == 0; });
  }
  join_all_connections();
  pool_.reset();  // queue is empty; joins the workers
  if (stats_thread_.joinable()) stats_thread_.join();
  if (!config_.stats_file.empty()) {
    write_stats_file();  // final snapshot: the fully drained counters
  }
  if (config_.address.kind == Address::Kind::Unix) {
    ::unlink(config_.address.path.c_str());
  }
  dump_flight_recorder();
  const ServerStats final = stats();
  util::log_info("intooa-served drained",
                 {{"requests", final.requests},
                  {"ok", final.responses_ok},
                  {"busy", final.busy_rejections},
                  {"errors", final.errors},
                  {"served_memory", final.served_memory},
                  {"served_store", final.served_store},
                  {"served_computed", final.served_computed}});
}

void Server::begin_drain() {
  if (draining_.exchange(true, std::memory_order_acq_rel)) return;
  // Wake the acceptor (idempotent; harmless when called from run() itself).
  if (wake_tx_.valid()) {
    const char byte = 1;
    [[maybe_unused]] ssize_t ignored = ::write(wake_tx_.get(), &byte, 1);
  }
  // Wake any run() blocked on inflight (in case nothing is in flight).
  inflight_cv_.notify_all();
  // Wake the stats-file writer so the drain is not delayed by its interval.
  { std::lock_guard<std::mutex> lock(stats_cv_mutex_); }
  stats_cv_.notify_all();
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

bool Server::send_frame(const std::shared_ptr<Connection>& conn, MsgType type,
                        std::string_view payload) {
  const std::string frame = encode_frame(type, payload);
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  if (conn->broken.load(std::memory_order_relaxed)) return false;
  if (!write_all(conn->fd.get(), frame)) {
    conn->broken.store(true, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void Server::send_error(const std::shared_ptr<Connection>& conn,
                        std::uint64_t request_id, ErrorCode code,
                        const std::string& message) {
  errors_counter().add();
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.errors;
  }
  send_frame(conn, MsgType::Error,
             encode_error({request_id, code, message}));
}

void Server::handle_connection(std::shared_ptr<Connection> conn) {
  // Handshake: the first frame must be a Hello with our magic and version.
  // Waited for in poll slices so a silent client never delays a drain.
  Frame frame;
  ReadStatus hello_status = ReadStatus::Timeout;
  for (int waited = 0; !draining(); waited += kPollSliceMs) {
    if (config_.idle_timeout_ms >= 0 && waited >= config_.idle_timeout_ms) {
      break;
    }
    hello_status = read_frame(conn->fd.get(), frame, kPollSliceMs);
    if (hello_status != ReadStatus::Timeout) break;
  }
  bool ok = false;
  if (hello_status == ReadStatus::Ok && frame.type == MsgType::Hello) {
    if (const auto hello = decode_hello(frame.payload)) {
      if (hello->version == kProtocolVersion) {
        // Echo our minor revision only to clients that announced one:
        // version-1.0 clients reject a HelloOk with trailing bytes.
        ok = send_frame(conn, MsgType::HelloOk,
                        hello->minor >= 1
                            ? encode_hello_ok(kProtocolVersion,
                                              kProtocolMinorVersion)
                            : encode_hello_ok());
        if (ok) {
          // Both ends log their build stamp on Hello, so a mixed-version
          // client/server pair is visible from either side's log alone.
          util::log_info("svc: handshake",
                         {{"peer", conn->peer},
                          {"client_minor", hello->minor},
                          {"build", util::version_string()}});
        }
      } else {
        send_error(conn, 0, ErrorCode::VersionMismatch,
                   "server speaks protocol version " +
                       std::to_string(kProtocolVersion) + ", client sent " +
                       std::to_string(hello->version));
      }
    } else {
      send_error(conn, 0, ErrorCode::VersionMismatch,
                 "malformed Hello (bad magic)");
    }
  } else if (hello_status == ReadStatus::Oversized) {
    send_error(conn, 0, ErrorCode::OversizedFrame,
               "frame exceeds " + std::to_string(kMaxFrame) + " bytes");
  } else if (hello_status == ReadStatus::BadType) {
    send_error(conn, 0, ErrorCode::BadFrame, "unknown message type");
  } else if (hello_status == ReadStatus::Ok) {
    send_error(conn, 0, ErrorCode::BadFrame, "expected Hello");
  }

  int idle_ms = 0;
  bool drain_exit = false;
  while (ok && !conn->broken.load(std::memory_order_relaxed)) {
    const ReadStatus status =
        read_frame(conn->fd.get(), frame, kPollSliceMs);
    if (status == ReadStatus::Timeout) {
      // The drain check rides the timeout so frames already buffered when
      // the drain began are still read and answered (with Error(draining))
      // instead of silently dropped.
      if (draining()) {  // pending responses are flushed below
        drain_exit = true;
        break;
      }
      idle_ms += kPollSliceMs;
      if (config_.idle_timeout_ms >= 0 && idle_ms >= config_.idle_timeout_ms) {
        util::log_debug("svc: closing idle connection");
        break;
      }
      continue;
    }
    if (status == ReadStatus::Oversized) {
      send_error(conn, 0, ErrorCode::OversizedFrame,
                 "frame exceeds " + std::to_string(kMaxFrame) + " bytes");
      break;
    }
    if (status == ReadStatus::BadType) {
      // The stream is corrupt past the header, so the connection must
      // close — but the peer is told why instead of seeing a silent EOF.
      send_error(conn, 0, ErrorCode::BadFrame, "unknown message type");
      break;
    }
    if (status != ReadStatus::Ok) break;  // Closed or Error
    idle_ms = 0;
    if (!dispatch(conn, frame)) break;
  }

  // Never close the socket while admitted evaluations still owe this
  // connection a response (the drain guarantee).
  finish_pending(conn);
  if (drain_exit && !conn->broken.load(std::memory_order_relaxed)) {
    // A request can race the drain onto the wire: the client wrote it just
    // before learning of the shutdown, while this thread's poll slice timed
    // out in the gap before those bytes arrived. The in-flight flush above
    // gave them time to land, so answer what is buffered (Error(draining)
    // closes after the first one) instead of silently hanging up. Bounded
    // and non-blocking: a silent peer still never delays the drain.
    for (int swept = 0; swept < 16; ++swept) {
      if (read_frame(conn->fd.get(), frame, 0) != ReadStatus::Ok) break;
      if (!dispatch(conn, frame)) break;
    }
  }
  open_connections_.fetch_sub(1, std::memory_order_relaxed);
  connections_gauge().set(static_cast<double>(open_connections_.load()));
}

void Server::finish_pending(const std::shared_ptr<Connection>& conn) {
  std::unique_lock<std::mutex> lock(conn->pending_mutex);
  conn->pending_cv.wait(lock, [&] { return conn->pending == 0; });
}

bool Server::dispatch(const std::shared_ptr<Connection>& conn,
                      const Frame& frame) {
  switch (frame.type) {
    case MsgType::Ping: {
      if (const auto nonce = decode_ping(frame.payload)) {
        send_frame(conn, MsgType::Pong, encode_ping(*nonce));
        return true;
      }
      send_error(conn, 0, ErrorCode::BadFrame, "malformed Ping");
      return false;
    }
    case MsgType::StatsRequest: {
      const auto stats_request = decode_stats_request(frame.payload);
      if (!stats_request) {
        send_error(conn, 0, ErrorCode::BadFrame, "malformed StatsRequest");
        return false;
      }
      // Answered on the connection thread, outside admission control, so a
      // saturated (or draining) server still answers "what are you doing".
      stats_requests_counter().add();
      send_frame(conn, MsgType::StatsResponse,
                 encode_stats_response(
                     {stats_request->request_id,
                      stats_json_text(stats_request->include_flight)}));
      return true;
    }
    case MsgType::EvalRequest: {
      requests_counter().add();
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.requests;
      }
      // Timed by hand instead of INTOOA_SPAN: the decode duration feeds the
      // response trailer and flight recorder, and the span's trace tags are
      // only known after decoding.
      const std::uint64_t decode_start = obs::detail::monotonic_ns();
      std::optional<EvalRequest> request = decode_eval_request(frame.payload);
      const std::uint64_t decode_ns =
          obs::detail::monotonic_ns() - decode_start;
      decode_histogram().record(decode_ns);
      const std::uint64_t trace_id =
          request && request->trace ? request->trace->trace_id : 0;
      const std::uint64_t server_span_id =
          trace_id != 0 ? next_server_span_id() : 0;
      record_server_span("svc.decode", decode_start, decode_ns, trace_id,
                         server_span_id);
      if (!request) {
        send_error(conn, 0, ErrorCode::BadFrame, "malformed EvalRequest");
        return false;
      }
      if (draining()) {
        // Refuse and close: the reply tells the client why, and closing
        // keeps a still-streaming client from delaying the drain.
        send_error(conn, request->request_id, ErrorCode::Draining,
                   "server is draining; no new work accepted");
        return false;
      }
      // Bounded admission: grab an in-flight slot or reply Busy now.
      std::size_t current = inflight_.load(std::memory_order_relaxed);
      do {
        if (current >= config_.max_inflight) {
          busy_counter().add();
          {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.busy_rejections;
          }
          send_frame(conn, MsgType::Busy,
                     encode_busy({request->request_id,
                                  config_.busy_retry_ms}));
          return true;
        }
      } while (!inflight_.compare_exchange_weak(current, current + 1,
                                                std::memory_order_acq_rel));
      inflight_gauge().set(static_cast<double>(current + 1));
      {
        std::lock_guard<std::mutex> lock(conn->pending_mutex);
        ++conn->pending;
      }
      const std::uint64_t admitted_at = obs::detail::monotonic_ns();
      const std::uint64_t bytes_in = kFrameHeaderSize + frame.payload.size();
      pool_->submit([this, conn, request = std::move(*request), admitted_at,
                     decode_ns, bytes_in, server_span_id]() mutable {
        process_request(std::move(conn), std::move(request), admitted_at,
                        decode_ns, bytes_in, server_span_id);
      });
      return true;
    }
    default:
      send_error(conn, 0, ErrorCode::BadFrame,
                 "unknown message type " +
                     std::to_string(static_cast<unsigned>(frame.type)));
      return false;
  }
}

void Server::process_request(std::shared_ptr<Connection> conn,
                             EvalRequest request,
                             std::uint64_t admitted_at_ns,
                             std::uint64_t decode_ns, std::uint64_t bytes_in,
                             std::uint64_t server_span_id) {
  FlightRecord flight;
  flight.request_id = request.request_id;
  flight.decode_ns = decode_ns;
  flight.bytes_in = bytes_in;
  flight.peer = conn->peer;
  if (request.trace) flight.trace_id = request.trace->trace_id;
  const std::uint64_t eval_start = obs::detail::monotonic_ns();
  flight.queue_ns = eval_start - admitted_at_ns;
  // Publishes the flight record and the latency sample. Called BEFORE the
  // response hits the wire so a client that requests stats right after its
  // reply is guaranteed to see this request already recorded.
  bool recorded = false;
  const auto record_flight = [&] {
    if (recorded) return;
    recorded = true;
    const std::uint64_t completed_at = obs::detail::monotonic_ns();
    flight.total_ns = completed_at - admitted_at_ns;
    flight.completed_at_ns = completed_at;
    request_latency().record(flight.total_ns);
    if (flight_) flight_->record(flight);
    write_access_log(flight);
  };
  try {
    EvalResponse response = serve_request(request, flight.key_digest);
    flight.eval_ns = obs::detail::monotonic_ns() - eval_start;
    evaluate_histogram().record(flight.eval_ns);
    record_server_span("svc.evaluate", eval_start, flight.eval_ns,
                       flight.trace_id, server_span_id);
    response.request_id = request.request_id;
    flight.served_from = response.served_from;
    served_counter(response.served_from).add();
    if (request.trace) {
      // Trailer for the client's merged trace; encode_ns is back-filled by
      // re-encoding, so the histogram sees the real (first) encode cost.
      response.timings =
          ServerTimings{request.trace->trace_id, server_span_id,
                        flight.queue_ns, decode_ns, flight.eval_ns, 0};
    }
    const std::uint64_t encode_start = obs::detail::monotonic_ns();
    std::string payload = encode_eval_response(response);
    flight.encode_ns = obs::detail::monotonic_ns() - encode_start;
    encode_histogram().record(flight.encode_ns);
    record_server_span("svc.encode", encode_start, flight.encode_ns,
                       flight.trace_id, server_span_id);
    if (response.timings) {
      response.timings->encode_ns = flight.encode_ns;
      payload = encode_eval_response(response);
    }
    flight.bytes_out = kFrameHeaderSize + payload.size();
    flight.ok = true;  // served; delivery failures surface via conn->broken
    record_flight();
    if (send_frame(conn, MsgType::EvalResponse, payload)) {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.responses_ok;
      switch (response.served_from) {
        case ServedFrom::Memory: ++stats_.served_memory; break;
        case ServedFrom::Store: ++stats_.served_store; break;
        case ServedFrom::Computed: ++stats_.served_computed; break;
      }
    }
  } catch (const std::invalid_argument& e) {
    flight.eval_ns = obs::detail::monotonic_ns() - eval_start;
    send_error(conn, request.request_id, ErrorCode::MalformedRequest,
               e.what());
  } catch (const std::exception& e) {
    flight.eval_ns = obs::detail::monotonic_ns() - eval_start;
    send_error(conn, request.request_id, ErrorCode::Internal, e.what());
  }
  record_flight();  // error paths record too (with ok still false)

  // Release the in-flight slot and this connection's pending count; both
  // the drain loop and the connection closer may be waiting on them.
  {
    std::lock_guard<std::mutex> lock(conn->pending_mutex);
    --conn->pending;
  }
  conn->pending_cv.notify_all();
  const std::size_t now =
      inflight_.fetch_sub(1, std::memory_order_acq_rel) - 1;
  inflight_gauge().set(static_cast<double>(now));
  if (now == 0) {
    // Pairing the notify with the waiter's mutex closes the window where
    // run() checks the predicate, we decrement-and-notify, and run() then
    // sleeps forever.
    { std::lock_guard<std::mutex> lock(inflight_mutex_); }
    inflight_cv_.notify_all();
  }
}

Server::Shard& Server::shard_for(const EvalRequest& request) {
  // Cheap probe: building the key context renders the canonical prefix.
  core::EvalKeyContext probe(request.eval_context(), request.sizing);
  std::lock_guard<std::mutex> lock(shards_mutex_);
  auto it = shards_.find(probe.prefix());
  if (it == shards_.end()) {
    it = shards_
             .emplace(probe.prefix(),
                      std::make_unique<Shard>(request,
                                              config_.mem_cache_bytes))
             .first;
    util::log_info("svc: new evaluation configuration shard",
                   {{"spec", request.spec.name},
                    {"shards", shards_.size()}});
  }
  return *it->second;
}

EvalResponse Server::serve_request(const EvalRequest& request,
                                   std::uint64_t& key_digest) {
  // Timed by the caller (process_request), which owns the svc.evaluate
  // histogram sample and trace span so it can tag propagated trace ids.
  // Validates the topology index (throws std::invalid_argument -> the
  // MalformedRequest reply).
  const circuit::Topology topology = circuit::Topology::from_index(
      static_cast<std::size_t>(request.topology_index));
  Shard& shard = shard_for(request);
  const core::EvalKey key = shard.keys.key_for(topology);
  key_digest = key.digest;

  EvalResponse response;
  {
    std::unique_lock<std::mutex> lock(shard.mutex);
    for (;;) {
      if (const std::string* hit = shard.cache.find(key.digest)) {
        response.served_from = ServedFrom::Memory;
        response.record_payload = *hit;
        return response;
      }
      if (shard.in_progress.count(key.digest) == 0) break;
      // Another request is evaluating this exact key: wait for its result
      // instead of duplicating the sizing work.
      shard.cv.wait(lock);
    }
    shard.in_progress.insert(key.digest);
  }

  if (config_.test_eval_delay_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(config_.test_eval_delay_ms));
  }

  core::EvalRecord record;
  record.topology = topology;
  response.served_from = ServedFrom::Computed;
  bool have_record = false;
  try {
    if (config_.store) {
      if (auto stored = config_.store->lookup(key)) {
        record = std::move(*stored);
        response.served_from = ServedFrom::Store;
        have_record = true;
      }
    }
    if (!have_record) {
      // Deterministic sizing, exactly as core::TopologyEvaluator::evaluate:
      // the inner BO draws from an RNG seeded by the key digest, so the
      // result — and its encoding — is a pure function of the key.
      util::Rng sizing_rng(key.digest);
      record.sized = shard.sizer.size(topology, sizing_rng);
      obs::registry().counter("evaluator.sizer_runs").add();
      obs::registry()
          .counter("evaluator.simulations")
          .add(record.sized.simulations);
      if (config_.store) {
        try {
          config_.store->append(key, record);
        } catch (const std::exception& e) {
          util::log_warn(
              std::string("svc: store append failed (result served but not "
                          "persisted): ") +
              e.what());
        }
      }
    }
    response.record_payload = store::encode_record(key, record);
  } catch (...) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.in_progress.erase(key.digest);
    shard.cv.notify_all();
    throw;
  }

  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const std::size_t evicted =
        shard.cache.insert(key.digest, response.record_payload);
    if (evicted > 0) {
      obs::registry().counter("evaluator.mem_evictions").add(evicted);
    }
    shard.in_progress.erase(key.digest);
  }
  shard.cv.notify_all();
  return response;
}

void Server::update_loop_gauges() {
  uptime_gauge().set(
      static_cast<double>(obs::detail::monotonic_ns() - start_ns_) / 1e9);
  inflight_gauge().set(static_cast<double>(inflight_.load()));
  connections_gauge().set(static_cast<double>(open_connections_.load()));
}

std::string Server::stats_json_text(bool include_flight) const {
  obs::Json root = obs::Json::object();
  root["uptime_seconds"] = obs::Json(
      static_cast<double>(obs::detail::monotonic_ns() - start_ns_) / 1e9);
  root["protocol_version"] =
      obs::Json(static_cast<double>(kProtocolVersion));
  root["protocol_minor"] =
      obs::Json(static_cast<double>(kProtocolMinorVersion));
  const obs::MetricsSnapshot snap = obs::snapshot();
  obs::Json quantiles = obs::Json::object();
  for (const auto& [name, hist] : snap.histograms) {
    obs::Json one = obs::Json::object();
    one["count"] = obs::Json(static_cast<double>(hist.count));
    one["p50"] = obs::Json(hist.quantile(0.5));
    one["p90"] = obs::Json(hist.quantile(0.9));
    one["p99"] = obs::Json(hist.quantile(0.99));
    quantiles[name] = std::move(one);
  }
  root["metrics"] = snap.to_json();
  root["quantiles"] = std::move(quantiles);
  if (include_flight && flight_) {
    obs::Json records = obs::Json::array();
    for (const FlightRecord& record : flight_->snapshot()) {
      records.push_back(flight_record_json(record));
    }
    root["flight"] = std::move(records);
    root["flight_total"] =
        obs::Json(static_cast<double>(flight_->total_recorded()));
    root["flight_capacity"] =
        obs::Json(static_cast<double>(flight_->capacity()));
  }
  return root.dump();
}

void Server::dump_flight_recorder() {
  if (!flight_) return;
  const std::vector<FlightRecord> records = flight_->snapshot();
  if (records.empty()) return;
  util::log_info("svc: flight recorder (oldest first)",
                 {{"records", records.size()},
                  {"total", flight_->total_recorded()}});
  for (const FlightRecord& record : records) {
    util::log_info("svc: flight " + flight_record_line(record));
  }
}

void Server::write_access_log(const FlightRecord& record) {
  if (!access_log_.is_open()) return;
  std::lock_guard<std::mutex> lock(access_log_mutex_);
  access_log_ << "ts_ns=" << record.completed_at_ns << ' '
              << flight_record_line(record) << '\n';
  access_log_.flush();  // one line per request; losing lines to a crash
                        // would defeat the log's post-mortem purpose
}

void Server::write_stats_file() {
  try {
    util::atomic_write_file(config_.stats_file,
                            obs::render_prometheus(obs::snapshot()));
  } catch (const std::exception& e) {
    util::log_warn(std::string("svc: stats-file write failed: ") + e.what(),
                   {{"path", config_.stats_file}});
  }
}

void Server::stats_file_loop() {
  std::unique_lock<std::mutex> lock(stats_cv_mutex_);
  for (;;) {
    const bool drained = stats_cv_.wait_for(
        lock, std::chrono::duration<double>(config_.stats_interval_s),
        [this] { return draining(); });
    if (drained) break;  // run() writes the final post-drain snapshot
    lock.unlock();
    write_stats_file();
    lock.lock();
  }
}

}  // namespace intooa::svc
