#include "svc/client_pool.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "svc/client.hpp"
#include "util/log.hpp"

namespace intooa::svc {

namespace {

/// Poll slice while replies are outstanding: short enough that stop
/// requests and newly enqueued work are noticed promptly, long enough
/// that an idle-but-inflight connection does not spin.
constexpr int kPoolPollSliceMs = 20;

/// Idle wait cap when nothing is in flight and nothing is sendable.
constexpr int kIdleWaitMs = 100;

std::uint64_t splitmix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// ±25% deterministic jitter around `base` (same discipline as
/// retry_backoff_ms: a pure function of the seed, never util::Rng).
std::uint32_t jittered_ms(std::uint32_t base, std::uint64_t seed) {
  const auto pct = static_cast<std::int64_t>(splitmix(seed) % 51) - 25;
  const std::int64_t v = static_cast<std::int64_t>(base) +
                         static_cast<std::int64_t>(base) * pct / 100;
  return static_cast<std::uint32_t>(std::max<std::int64_t>(v, 1));
}

}  // namespace

std::uint64_t ClientPoolStats::requests() const {
  std::uint64_t total = 0;
  for (const auto& ep : endpoints) total += ep.requests;
  return total;
}

std::uint64_t ClientPoolStats::reconnects() const {
  std::uint64_t total = 0;
  for (const auto& ep : endpoints) total += ep.reconnects;
  return total;
}

std::uint64_t ClientPoolStats::replays() const {
  std::uint64_t total = 0;
  for (const auto& ep : endpoints) total += ep.replays;
  return total;
}

ClientPool::ClientPool(std::vector<Address> endpoints, ClientPoolConfig config)
    : config_(config) {
  if (endpoints.empty()) {
    throw std::invalid_argument("svc: ClientPool needs at least one endpoint");
  }
  if (config_.max_inflight == 0) {
    throw std::invalid_argument("svc: ClientPool max_inflight must be >= 1");
  }
  endpoints_.reserve(endpoints.size());
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    auto ep = std::make_unique<Endpoint>();
    ep->address = std::move(endpoints[i]);
    ep->index = i;
    ep->requests_metric =
        &obs::registry().counter("svc.pool.requests." + std::to_string(i));
    endpoints_.push_back(std::move(ep));
  }
  for (auto& ep : endpoints_) {
    ep->thread = std::thread([this, e = ep.get()] { run_endpoint(*e); });
  }
}

ClientPool::~ClientPool() { close(); }

void ClientPool::close() {
  if (closed_.exchange(true)) return;
  for (auto& ep : endpoints_) {
    std::lock_guard<std::mutex> lock(ep->mutex);
    ep->stop = true;
    ep->cv.notify_all();
  }
  for (auto& ep : endpoints_) {
    if (ep->thread.joinable()) ep->thread.join();
  }
}

std::optional<EvalResponse> ClientPool::evaluate(const EvalRequest& request,
                                                 std::uint64_t shard_digest) {
  Endpoint& ep = *endpoints_[shard_of(shard_digest)];
  auto pending = std::make_shared<Pending>();
  pending->request = request;
  pending->request.request_id =
      next_id_.fetch_add(1, std::memory_order_relaxed);
  pending->request.trace.reset();  // the pool does not propagate traces
  {
    std::unique_lock<std::mutex> lock(ep.mutex);
    if (ep.stop || ep.down) return std::nullopt;
    ep.pending.emplace(pending->request.request_id, pending);
    ep.cv.notify_all();
    ep.cv.wait(lock, [&] {
      return pending->done || pending->failed || ep.stop;
    });
  }
  if (pending->done) return std::move(pending->response);
  return std::nullopt;
}

ClientPoolStats ClientPool::stats() const {
  ClientPoolStats out;
  out.endpoints.reserve(endpoints_.size());
  for (const auto& ep : endpoints_) {
    std::lock_guard<std::mutex> lock(ep->mutex);
    EndpointStats s;
    s.address = ep->address.to_string();
    s.requests = ep->requests;
    s.reconnects = ep->reconnects;
    s.replays = ep->replays;
    s.busy = ep->busy;
    s.down = ep->down;
    out.endpoints.push_back(std::move(s));
  }
  return out;
}

Fd ClientPool::dial(const Address& address) {
  Fd fd;
  try {
    fd = connect_to(address);
  } catch (const std::exception&) {
    return Fd();
  }
  if (!write_all(fd.get(), encode_frame(MsgType::Hello, encode_hello()))) {
    return Fd();
  }
  Frame frame;
  if (read_frame(fd.get(), frame, kMidFrameGraceMs) != ReadStatus::Ok ||
      frame.type != MsgType::HelloOk) {
    return Fd();
  }
  const auto hello = decode_hello_ok(frame.payload);
  if (!hello || hello->version != kProtocolVersion) return Fd();
  return fd;
}

void ClientPool::mark_for_replay(Endpoint& ep) {
  static obs::Counter& replay_counter =
      obs::registry().counter("svc.pool.replays");
  std::uint64_t replayed = 0;
  {
    std::lock_guard<std::mutex> lock(ep.mutex);
    for (auto& [id, p] : ep.pending) {
      if (p->sent && !p->done && !p->failed) {
        p->sent = false;
        ++replayed;
      }
    }
    ep.replays += replayed;
  }
  if (replayed > 0) replay_counter.add(replayed);
}

void ClientPool::fail_all(Endpoint& ep) {
  // Caller holds ep.mutex. Waiters keep their shared_ptr; clearing the map
  // only drops the worker's reference.
  for (auto& [id, p] : ep.pending) p->failed = true;
  ep.pending.clear();
  ep.cv.notify_all();
}

void ClientPool::run_endpoint(Endpoint& ep) {
  static obs::Counter& reconnect_counter =
      obs::registry().counter("svc.pool.reconnects");
  bool connected_before = false;
  int consecutive_failures = 0;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(ep.mutex);
      if (ep.stop) break;
    }
    Fd fd = dial(ep.address);
    if (!fd.valid()) {
      ++consecutive_failures;
      bool newly_down = false;
      {
        std::lock_guard<std::mutex> lock(ep.mutex);
        if (consecutive_failures >= config_.max_connect_attempts &&
            !ep.down) {
          ep.down = true;
          newly_down = true;
        }
        // Fail-fast while unreachable: nothing may sit queued behind a
        // dead endpoint — the caller's local sizer produces the same
        // bytes, so failing here costs work, never correctness.
        if (ep.down) fail_all(ep);
      }
      if (newly_down) {
        util::log_warn("svc: endpoint " + ep.address.to_string() +
                       " marked down after " +
                       std::to_string(consecutive_failures) +
                       " connect failures; probing in background");
      }
      // Exponential backoff with deterministic jitter; a down endpoint is
      // probed at the cap.
      const int shift = std::min(consecutive_failures - 1, 6);
      std::uint32_t backoff = config_.reconnect_base_ms << shift;
      backoff = std::min(backoff, config_.reconnect_cap_ms);
      const std::uint32_t sleep_ms = jittered_ms(
          backoff, (ep.index + 1) * 0x9E3779B97F4A7C15ull +
                       static_cast<std::uint64_t>(consecutive_failures));
      std::unique_lock<std::mutex> lock(ep.mutex);
      ep.cv.wait_for(lock, std::chrono::milliseconds(sleep_ms),
                     [&] { return ep.stop; });
      if (ep.stop) break;
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(ep.mutex);
      ep.down = false;
      if (connected_before) ++ep.reconnects;
    }
    if (connected_before) {
      reconnect_counter.add();
      util::log_info("svc: endpoint " + ep.address.to_string() +
                     " reconnected");
    }
    connected_before = true;
    consecutive_failures = 0;
    const ServeEnd end = serve(ep, fd.get());
    fd.reset();
    if (end == ServeEnd::Stop) break;
    mark_for_replay(ep);
  }
  std::lock_guard<std::mutex> lock(ep.mutex);
  fail_all(ep);
}

ClientPool::ServeEnd ClientPool::serve(Endpoint& ep, int fd) {
  static obs::Gauge& inflight_gauge =
      obs::registry().gauge("svc.pool.inflight");
  static obs::Counter& busy_counter = obs::registry().counter("svc.pool.busy");
  std::size_t inflight = 0;  // sent-unanswered on this connection
  const auto settle = [&](ServeEnd end) {
    // Whatever is still unanswered leaves the wire with this connection;
    // the caller replays (Lost) or fails (Stop) it.
    inflight_gauge.set(static_cast<double>(
        total_inflight_.fetch_sub(static_cast<std::int64_t>(inflight)) -
        static_cast<std::int64_t>(inflight)));
    return end;
  };
  const auto resolve_one = [&] {
    --inflight;
    inflight_gauge.set(static_cast<double>(total_inflight_.fetch_sub(1) - 1));
  };
  for (;;) {
    // Send every request that fits under the inflight cap and is past its
    // Busy backoff gate, in request-id order.
    std::vector<std::string> frames;
    std::uint64_t now = obs::detail::monotonic_ns();
    std::uint64_t next_gate_ns = 0;
    {
      std::lock_guard<std::mutex> lock(ep.mutex);
      if (ep.stop) return settle(ServeEnd::Stop);
      for (auto& [id, p] : ep.pending) {
        if (inflight + frames.size() >= config_.max_inflight) break;
        if (p->sent) continue;
        if (p->not_before_ns > now) {
          if (next_gate_ns == 0 || p->not_before_ns < next_gate_ns) {
            next_gate_ns = p->not_before_ns;
          }
          continue;
        }
        p->sent = true;
        ++ep.requests;
        frames.push_back(encode_frame(MsgType::EvalRequest,
                                      encode_eval_request(p->request)));
      }
    }
    if (!frames.empty()) {
      ep.requests_metric->add(frames.size());
      inflight += frames.size();
      inflight_gauge.set(static_cast<double>(
          total_inflight_.fetch_add(static_cast<std::int64_t>(frames.size())) +
          static_cast<std::int64_t>(frames.size())));
      for (const auto& f : frames) {
        if (!write_all(fd, f)) return settle(ServeEnd::Lost);
      }
    }

    if (inflight == 0) {
      // Nothing on the wire: sleep until new work, a backoff gate opens,
      // or stop — predicate-checked, so no enqueue is ever missed.
      std::unique_lock<std::mutex> lock(ep.mutex);
      if (ep.stop) return settle(ServeEnd::Stop);
      std::uint64_t wait_ms = kIdleWaitMs;
      if (next_gate_ns > now) {
        wait_ms = std::min<std::uint64_t>(
            wait_ms, (next_gate_ns - now) / 1'000'000 + 1);
      }
      ep.cv.wait_for(lock, std::chrono::milliseconds(wait_ms), [&] {
        if (ep.stop) return true;
        const std::uint64_t t = obs::detail::monotonic_ns();
        for (const auto& [id, p] : ep.pending) {
          if (!p->sent && p->not_before_ns <= t) return true;
        }
        return false;
      });
      continue;
    }

    Frame frame;
    const ReadStatus status = read_frame(fd, frame, kPoolPollSliceMs);
    if (status == ReadStatus::Timeout) continue;
    if (status != ReadStatus::Ok) return settle(ServeEnd::Lost);
    switch (frame.type) {
      case MsgType::EvalResponse: {
        auto response = decode_eval_response(frame.payload);
        if (!response) return settle(ServeEnd::Lost);
        std::lock_guard<std::mutex> lock(ep.mutex);
        const auto it = ep.pending.find(response->request_id);
        if (it == ep.pending.end()) break;  // already failed and reaped
        it->second->done = true;
        it->second->response = std::move(*response);
        ep.pending.erase(it);
        resolve_one();
        ep.cv.notify_all();
        break;
      }
      case MsgType::Busy: {
        const auto busy = decode_busy(frame.payload);
        if (!busy) return settle(ServeEnd::Lost);
        std::lock_guard<std::mutex> lock(ep.mutex);
        const auto it = ep.pending.find(busy->request_id);
        if (it == ep.pending.end()) break;
        Pending& p = *it->second;
        p.sent = false;
        p.not_before_ns =
            obs::detail::monotonic_ns() +
            static_cast<std::uint64_t>(
                retry_backoff_ms(busy->retry_after_ms, busy->request_id,
                                 p.busy_attempts++)) *
                1'000'000ull;
        ++ep.busy;
        busy_counter.add();
        resolve_one();
        break;
      }
      case MsgType::Error: {
        const auto error = decode_error(frame.payload);
        if (!error) return settle(ServeEnd::Lost);
        if (error->code == ErrorCode::Draining || error->request_id == 0) {
          // The server is going away (or reported a connection-level
          // fault): everything unanswered on this connection — the
          // drained request included — replays on the next one.
          return settle(ServeEnd::Lost);
        }
        std::lock_guard<std::mutex> lock(ep.mutex);
        const auto it = ep.pending.find(error->request_id);
        if (it == ep.pending.end()) break;
        util::log_warn("svc: endpoint " + ep.address.to_string() +
                       " failed request " + std::to_string(error->request_id) +
                       " (" + std::string(error_code_name(error->code)) +
                       "): " + error->message);
        it->second->failed = true;
        ep.pending.erase(it);
        resolve_one();
        ep.cv.notify_all();
        break;
      }
      default:
        // A reply type we never solicit: the stream is confused beyond
        // this frame, so resync with a fresh connection.
        return settle(ServeEnd::Lost);
    }
  }
}

}  // namespace intooa::svc
