#pragma once
// intooa::svc wire protocol — the versioned, length-prefixed binary framing
// spoken between intooa-served and svc::Client over TCP or Unix-domain
// sockets (docs/SERVICE.md has the byte-level layout).
//
// Every frame is:   u32 payload_len | u8 msg_type | payload[payload_len]
// with payload_len capped at kMaxFrame; a peer announcing a larger frame is
// protocol-corrupt and the connection is terminated after an Error reply.
// A connection opens with a Hello / HelloOk handshake that pins the
// protocol version; everything after is request/response keyed by a
// client-chosen u64 request id, so responses may arrive out of order (the
// server evaluates concurrently across its thread pool).
//
// An EvalRequest carries the full evaluation identity — spec, behavioral
// model, AC options, sizing protocol, topology index — i.e. exactly the
// inputs of core::EvalKeyContext. The EvalResponse payload embeds the
// store::encode_record(key, record) bytes unchanged, so a remotely served
// evaluation is byte-comparable (and byte-identical, by the deterministic
// sizing discipline) to the same evaluation run in-process.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "circuit/topology.hpp"
#include "core/evaluator.hpp"
#include "sizing/evaluate.hpp"
#include "sizing/sizer.hpp"

namespace intooa::svc {

/// Protocol version; bumped on any frame/message layout change. Hello
/// carries it and the server rejects mismatches (no negotiation: client and
/// server builds must agree, like the store log version).
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Handshake magic inside the Hello payload.
inline constexpr std::string_view kHelloMagic = "intooa-svc";

/// Hard cap on one frame payload. Requests are a few hundred bytes and
/// responses a few KiB (40-point sizing history); anything near the cap is
/// corruption or abuse, not traffic.
inline constexpr std::uint32_t kMaxFrame = 1u << 22;  // 4 MiB

/// Bytes of the fixed frame header (u32 payload_len + u8 msg_type).
inline constexpr std::size_t kFrameHeaderSize = 5;

enum class MsgType : std::uint8_t {
  Hello = 1,         ///< client -> server: magic + protocol version
  HelloOk = 2,       ///< server -> client: version accepted
  EvalRequest = 3,   ///< client -> server: one evaluation
  EvalResponse = 4,  ///< server -> client: the stored-record bytes
  Busy = 5,          ///< server -> client: backpressure, retry later
  Error = 6,         ///< server -> client: request- or connection-level error
  Ping = 7,          ///< client -> server: liveness probe
  Pong = 8,          ///< server -> client: echo of Ping
};

enum class ErrorCode : std::uint32_t {
  BadFrame = 1,         ///< unparseable frame or unknown message type
  VersionMismatch = 2,  ///< Hello magic/version not accepted
  OversizedFrame = 3,   ///< announced payload_len exceeds kMaxFrame
  MalformedRequest = 4, ///< EvalRequest payload failed validation
  Draining = 5,         ///< server is shutting down; no new work accepted
  Internal = 6,         ///< evaluation failed server-side
};

/// Name of an error code ("version_mismatch", ...) for logs and CLIs.
std::string_view error_code_name(ErrorCode code);

/// One evaluation over the wire: the complete input of core::EvalKeyContext
/// plus the topology. Identical configuration fields produce an identical
/// EvalKey on the server, hence identical warm-store addressing.
struct EvalRequest {
  std::uint64_t request_id = 0;
  circuit::Spec spec;
  circuit::BehavioralConfig behavioral;
  sim::AcOptions ac;
  sizing::SizingConfig sizing;
  std::uint64_t topology_index = 0;

  /// The (context, config) pair this request evaluates under.
  sizing::EvalContext eval_context() const;
};

/// Where the server answered a request from (reported for observability and
/// asserted by the warm-serving tests).
enum class ServedFrom : std::uint8_t { Computed = 0, Memory = 1, Store = 2 };

/// Decoded EvalResponse.
struct EvalResponse {
  std::uint64_t request_id = 0;
  ServedFrom served_from = ServedFrom::Computed;
  /// store::encode_record(key, record) bytes, verbatim. Decode with
  /// store::decode_record when the caller wants the structured result.
  std::string record_payload;
};

/// Decoded Busy reply.
struct BusyReply {
  std::uint64_t request_id = 0;
  std::uint32_t retry_after_ms = 0;  ///< server's backoff hint
};

/// Decoded Error reply. request_id == 0 marks a connection-level error
/// (handshake failure, bad frame) rather than a per-request one.
struct ErrorReply {
  std::uint64_t request_id = 0;
  ErrorCode code = ErrorCode::Internal;
  std::string message;
};

/// One parsed frame: the type tag plus the raw payload bytes.
struct Frame {
  MsgType type = MsgType::Error;
  std::string payload;
};

// ---- payload codecs (frame payload <-> message structs) ----
// Encoders produce payload bytes (no frame header); decoders are fully
// bounds-checked and return nullopt on any structural defect, trailing
// bytes included.

std::string encode_hello(std::uint32_t version = kProtocolVersion);
/// Returns the announced version, or nullopt when magic/shape is wrong.
std::optional<std::uint32_t> decode_hello(std::string_view payload);

std::string encode_hello_ok(std::uint32_t version = kProtocolVersion);
std::optional<std::uint32_t> decode_hello_ok(std::string_view payload);

std::string encode_eval_request(const EvalRequest& request);
std::optional<EvalRequest> decode_eval_request(std::string_view payload);

std::string encode_eval_response(const EvalResponse& response);
std::optional<EvalResponse> decode_eval_response(std::string_view payload);

std::string encode_busy(const BusyReply& busy);
std::optional<BusyReply> decode_busy(std::string_view payload);

std::string encode_error(const ErrorReply& error);
std::optional<ErrorReply> decode_error(std::string_view payload);

std::string encode_ping(std::uint64_t nonce);
std::optional<std::uint64_t> decode_ping(std::string_view payload);

/// Serializes a complete frame (header + payload) ready for the socket.
/// Throws std::length_error when payload exceeds kMaxFrame.
std::string encode_frame(MsgType type, std::string_view payload);

}  // namespace intooa::svc
