#pragma once
// intooa::svc wire protocol — the versioned, length-prefixed binary framing
// spoken between intooa-served and svc::Client over TCP or Unix-domain
// sockets (docs/SERVICE.md has the byte-level layout).
//
// Every frame is:   u32 payload_len | u8 msg_type | payload[payload_len]
// with payload_len capped at kMaxFrame; a peer announcing a larger frame is
// protocol-corrupt and the connection is terminated after an Error reply.
// A connection opens with a Hello / HelloOk handshake that pins the
// protocol version; everything after is request/response keyed by a
// client-chosen u64 request id, so responses may arrive out of order (the
// server evaluates concurrently across its thread pool).
//
// An EvalRequest carries the full evaluation identity — spec, behavioral
// model, AC options, sizing protocol, topology index — i.e. exactly the
// inputs of core::EvalKeyContext. The EvalResponse payload embeds the
// store::encode_record(key, record) bytes unchanged, so a remotely served
// evaluation is byte-comparable (and byte-identical, by the deterministic
// sizing discipline) to the same evaluation run in-process.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "circuit/topology.hpp"
#include "core/evaluator.hpp"
#include "sizing/evaluate.hpp"
#include "sizing/sizer.hpp"

namespace intooa::svc {

/// Protocol version; bumped on any frame/message layout change. Hello
/// carries it and the server rejects mismatches (no negotiation: client and
/// server builds must agree, like the store log version).
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Minor protocol revision, carried in the Hello field that version-1.0
/// peers wrote as all-zero "reserved flags" — so the bump is invisible to
/// old binaries in both directions. Minor revisions are strictly additive
/// (optional payload tails, new message types the peer only sees when it
/// asks for them) and are never rejected; each side simply ignores
/// capabilities the other did not announce.
///
/// History: 1 adds StatsRequest/StatsResponse, the optional EvalRequest
/// trace-context tail and the EvalResponse server-timings trailer.
/// 2 adds the job-control message types (SubmitJob .. JobList, served by
/// intooa-schedd; payload codecs live in sched/protocol.hpp).
inline constexpr std::uint32_t kProtocolMinorVersion = 2;

/// Handshake magic inside the Hello payload.
inline constexpr std::string_view kHelloMagic = "intooa-svc";

/// Hard cap on one frame payload. Requests are a few hundred bytes and
/// responses a few KiB (40-point sizing history); anything near the cap is
/// corruption or abuse, not traffic.
inline constexpr std::uint32_t kMaxFrame = 1u << 22;  // 4 MiB

/// Bytes of the fixed frame header (u32 payload_len + u8 msg_type).
inline constexpr std::size_t kFrameHeaderSize = 5;

enum class MsgType : std::uint8_t {
  Hello = 1,         ///< client -> server: magic + protocol version
  HelloOk = 2,       ///< server -> client: version accepted
  EvalRequest = 3,   ///< client -> server: one evaluation
  EvalResponse = 4,  ///< server -> client: the stored-record bytes
  Busy = 5,          ///< server -> client: backpressure, retry later
  Error = 6,         ///< server -> client: request- or connection-level error
  Ping = 7,          ///< client -> server: liveness probe
  Pong = 8,          ///< server -> client: echo of Ping
  StatsRequest = 9,  ///< client -> server: live stats snapshot (minor >= 1)
  StatsResponse = 10,  ///< server -> client: stats document (JSON text)
  // Job control (minor >= 2), spoken by intooa-schedd. The payload codecs
  // live in sched/protocol.hpp — svc only names the types so its frame
  // reader admits them and the two daemons can never collide on a value.
  SubmitJob = 11,   ///< client -> schedd: enqueue a campaign job
  SubmitOk = 12,    ///< schedd -> client: job accepted, carries the job id
  QueueFull = 13,   ///< schedd -> client: backpressure + retry hint
  JobStatusRequest = 14,  ///< client -> schedd: one job's status
  JobStatusResponse = 15, ///< schedd -> client: JobInfo snapshot
  CancelJob = 16,   ///< client -> schedd: cancel (queued or at unit boundary)
  ListJobs = 17,    ///< client -> schedd: all jobs, optionally one tenant's
  JobList = 18,     ///< schedd -> client: JobInfo snapshots
};

/// True when a raw frame-header type byte names a known MsgType. The frame
/// reader rejects anything else up front (ReadStatus::BadType): a bogus
/// byte cast straight into the enum would otherwise carry an out-of-range
/// value through every switch over it.
constexpr bool msg_type_known(std::uint8_t raw) {
  return raw >= static_cast<std::uint8_t>(MsgType::Hello) &&
         raw <= static_cast<std::uint8_t>(MsgType::JobList);
}

enum class ErrorCode : std::uint32_t {
  BadFrame = 1,         ///< unparseable frame or unknown message type
  VersionMismatch = 2,  ///< Hello magic/version not accepted
  OversizedFrame = 3,   ///< announced payload_len exceeds kMaxFrame
  MalformedRequest = 4, ///< EvalRequest payload failed validation
  Draining = 5,         ///< server is shutting down; no new work accepted
  Internal = 6,         ///< evaluation failed server-side
};

/// Name of an error code ("version_mismatch", ...) for logs and CLIs.
std::string_view error_code_name(ErrorCode code);

/// Cross-process trace context, the optional tail of an EvalRequest
/// (minor revision 1). A tracing client stamps its trace id and the span
/// that issued the request; the server tags its decode/evaluate/encode
/// spans with the propagated ids and echoes its timings in the response
/// trailer so the client can merge both sides into one Chrome trace.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;

  friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

/// One evaluation over the wire: the complete input of core::EvalKeyContext
/// plus the topology. Identical configuration fields produce an identical
/// EvalKey on the server, hence identical warm-store addressing. The trace
/// context never feeds the evaluation — responses stay byte-identical with
/// or without it.
struct EvalRequest {
  std::uint64_t request_id = 0;
  circuit::Spec spec;
  circuit::BehavioralConfig behavioral;
  sim::AcOptions ac;
  sizing::SizingConfig sizing;
  std::uint64_t topology_index = 0;
  std::optional<TraceContext> trace;  ///< absent on the wire when nullopt

  /// The (context, config) pair this request evaluates under.
  sizing::EvalContext eval_context() const;
};

/// Where the server answered a request from (reported for observability and
/// asserted by the warm-serving tests).
enum class ServedFrom : std::uint8_t { Computed = 0, Memory = 1, Store = 2 };

/// Name of a serving tier ("computed", "memory", "store") for logs/CLIs.
std::string_view served_from_name(ServedFrom served);

/// Server-side stage timings, the optional trailer of an EvalResponse
/// (minor revision 1). Present exactly when the request carried a
/// TraceContext, so replies to non-tracing (and old) clients are
/// byte-identical to version 1.0.
struct ServerTimings {
  std::uint64_t trace_id = 0;        ///< echoed from the request
  std::uint64_t server_span_id = 0;  ///< id of the server's evaluate span
  std::uint64_t queue_ns = 0;        ///< admission -> pool pickup
  std::uint64_t decode_ns = 0;
  std::uint64_t eval_ns = 0;
  std::uint64_t encode_ns = 0;

  friend bool operator==(const ServerTimings&, const ServerTimings&) = default;
};

/// Decoded EvalResponse.
struct EvalResponse {
  std::uint64_t request_id = 0;
  ServedFrom served_from = ServedFrom::Computed;
  /// store::encode_record(key, record) bytes, verbatim. Decode with
  /// store::decode_record when the caller wants the structured result.
  std::string record_payload;
  std::optional<ServerTimings> timings;  ///< absent on the wire when nullopt
};

/// Decoded Busy reply.
struct BusyReply {
  std::uint64_t request_id = 0;
  std::uint32_t retry_after_ms = 0;  ///< server's backoff hint
};

/// Decoded Error reply. request_id == 0 marks a connection-level error
/// (handshake failure, bad frame) rather than a per-request one.
struct ErrorReply {
  std::uint64_t request_id = 0;
  ErrorCode code = ErrorCode::Internal;
  std::string message;
};

/// Live-stats query (minor revision 1). Answered on the connection thread,
/// outside admission control, so stats stay reachable under saturation.
struct StatsRequest {
  std::uint64_t request_id = 0;
  bool include_flight = false;  ///< also return the request flight recorder
};

/// Stats reply: a JSON document (uptime, metrics snapshot, quantiles,
/// optional flight records — see docs/OBSERVABILITY.md). JSON keeps the
/// payload extensible without further protocol revisions.
struct StatsResponse {
  std::uint64_t request_id = 0;
  std::string stats_json;
};

/// One parsed frame: the type tag plus the raw payload bytes.
struct Frame {
  MsgType type = MsgType::Error;
  std::string payload;
};

// ---- payload codecs (frame payload <-> message structs) ----
// Encoders produce payload bytes (no frame header); decoders are fully
// bounds-checked and return nullopt on any structural defect, trailing
// bytes included.

/// Hello announcement: major version plus the peer's minor revision (0 for
/// version-1.0 binaries, which wrote the field as reserved zero flags).
struct HelloInfo {
  std::uint32_t version = 0;
  std::uint32_t minor = 0;
};

std::string encode_hello(std::uint32_t version = kProtocolVersion,
                         std::uint32_t minor = kProtocolMinorVersion);
/// Returns the announced versions, or nullopt when magic/shape is wrong.
std::optional<HelloInfo> decode_hello(std::string_view payload);

/// HelloOk carries the server's minor revision only when the client's Hello
/// announced minor >= 1: version-1.0 clients reject trailing bytes, so
/// they keep receiving the original 4-byte payload. A missing tail decodes
/// as minor 0 (old server).
std::string encode_hello_ok(std::uint32_t version = kProtocolVersion,
                            std::optional<std::uint32_t> minor = std::nullopt);
std::optional<HelloInfo> decode_hello_ok(std::string_view payload);

std::string encode_eval_request(const EvalRequest& request);
std::optional<EvalRequest> decode_eval_request(std::string_view payload);

std::string encode_eval_response(const EvalResponse& response);
std::optional<EvalResponse> decode_eval_response(std::string_view payload);

std::string encode_busy(const BusyReply& busy);
std::optional<BusyReply> decode_busy(std::string_view payload);

std::string encode_error(const ErrorReply& error);
std::optional<ErrorReply> decode_error(std::string_view payload);

std::string encode_ping(std::uint64_t nonce);
std::optional<std::uint64_t> decode_ping(std::string_view payload);

std::string encode_stats_request(const StatsRequest& request);
std::optional<StatsRequest> decode_stats_request(std::string_view payload);

std::string encode_stats_response(const StatsResponse& response);
std::optional<StatsResponse> decode_stats_response(std::string_view payload);

/// Serializes a complete frame (header + payload) ready for the socket.
/// Throws std::length_error when payload exceeds kMaxFrame.
std::string encode_frame(MsgType type, std::string_view payload);

}  // namespace intooa::svc
