#pragma once
// Request flight recorder for intooa-served: a fixed-size ring buffer of
// the last N completed requests, each with its full per-stage cost
// breakdown. The ring answers "what did this server just do, and where did
// the slow requests spend their time" without any log volume in steady
// state: it is exposed through StatsResponse (include_flight), dumped to
// the log on SIGUSR1 and on graceful drain, and feeds the opt-in access
// log (--access-log, one key=value line per request).

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "svc/protocol.hpp"

namespace intooa::svc {

/// One completed request, recorded after its reply was flushed.
struct FlightRecord {
  std::uint64_t request_id = 0;
  std::uint64_t key_digest = 0;   ///< core::EvalKey digest (0 for errors)
  ServedFrom served_from = ServedFrom::Computed;
  bool ok = false;                ///< served Ok (false: Error reply)
  std::uint64_t queue_ns = 0;     ///< admission -> pool pickup
  std::uint64_t decode_ns = 0;
  std::uint64_t eval_ns = 0;      ///< cache/store lookup or full sizing
  std::uint64_t encode_ns = 0;
  std::uint64_t total_ns = 0;     ///< admission -> reply flushed
  std::uint64_t bytes_in = 0;     ///< request frame size on the socket
  std::uint64_t bytes_out = 0;    ///< reply frame size on the socket
  std::uint64_t trace_id = 0;     ///< propagated trace id, 0 when untraced
  std::uint64_t completed_at_ns = 0;  ///< obs::detail::monotonic_ns()
  std::string peer;               ///< "unix" or "ip:port"
};

/// Mutex-guarded ring of the last `capacity` FlightRecords. Writers pay one
/// short critical section per completed request (far off the per-sample
/// metrics path); snapshot() copies the ring oldest-first.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity);

  void record(FlightRecord record);
  /// The buffered records, oldest first.
  std::vector<FlightRecord> snapshot() const;
  std::size_t capacity() const { return capacity_; }
  /// Requests recorded over the recorder's lifetime (>= ring occupancy).
  std::uint64_t total_recorded() const;

 private:
  mutable std::mutex mutex_;
  std::vector<FlightRecord> ring_;
  std::size_t capacity_;
  std::size_t next_ = 0;
  std::uint64_t total_ = 0;
};

/// JSON object view of one record (the StatsResponse "flight" entries).
obs::Json flight_record_json(const FlightRecord& record);

/// One key=value line (no trailing newline) in the util::log field style —
/// the access-log and SIGUSR1-dump format.
std::string flight_record_line(const FlightRecord& record);

}  // namespace intooa::svc
