#include "svc/client.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

namespace intooa::svc {

void Client::connect(const Address& address) {
  fd_ = connect_to(address);
  if (!write_all(fd_.get(), encode_frame(MsgType::Hello, encode_hello()))) {
    fd_.reset();
    throw std::runtime_error("svc: connection closed during handshake");
  }
  Frame frame;
  const ReadStatus status = read_frame(fd_.get(), frame, kMidFrameGraceMs);
  if (status != ReadStatus::Ok) {
    fd_.reset();
    throw std::runtime_error("svc: no handshake reply from " +
                             address.to_string());
  }
  if (frame.type == MsgType::Error) {
    const auto error = decode_error(frame.payload);
    fd_.reset();
    throw std::runtime_error(
        "svc: server rejected handshake (" +
        std::string(error ? error_code_name(error->code) : "malformed") +
        "): " + (error ? error->message : ""));
  }
  if (frame.type != MsgType::HelloOk ||
      decode_hello_ok(frame.payload) != kProtocolVersion) {
    fd_.reset();
    throw std::runtime_error("svc: malformed handshake reply");
  }
}

void Client::send_request(const EvalRequest& request) {
  if (!connected()) throw std::runtime_error("svc: client not connected");
  if (!write_all(fd_.get(),
                 encode_frame(MsgType::EvalRequest,
                              encode_eval_request(request)))) {
    throw std::runtime_error("svc: connection lost while sending request");
  }
}

Reply Client::read_reply(int timeout_ms) {
  if (!connected()) throw std::runtime_error("svc: client not connected");
  Frame frame;
  const ReadStatus status = read_frame(fd_.get(), frame, timeout_ms);
  if (status == ReadStatus::Timeout) {
    throw std::runtime_error("svc: timed out waiting for a reply");
  }
  if (status != ReadStatus::Ok) {
    throw std::runtime_error("svc: connection lost while awaiting a reply");
  }
  Reply reply;
  switch (frame.type) {
    case MsgType::EvalResponse: {
      const auto response = decode_eval_response(frame.payload);
      if (!response) {
        throw std::runtime_error("svc: malformed EvalResponse");
      }
      reply.kind = Reply::Kind::Ok;
      reply.response = std::move(*response);
      return reply;
    }
    case MsgType::Busy: {
      const auto busy = decode_busy(frame.payload);
      if (!busy) throw std::runtime_error("svc: malformed Busy reply");
      reply.kind = Reply::Kind::Busy;
      reply.busy = *busy;
      return reply;
    }
    case MsgType::Error: {
      const auto error = decode_error(frame.payload);
      if (!error) throw std::runtime_error("svc: malformed Error reply");
      reply.kind = Reply::Kind::Error;
      reply.error = std::move(*error);
      return reply;
    }
    default:
      throw std::runtime_error("svc: unexpected reply frame type " +
                               std::to_string(static_cast<unsigned>(
                                   frame.type)));
  }
}

Reply Client::evaluate(const EvalRequest& request, int timeout_ms) {
  send_request(request);
  return read_reply(timeout_ms);
}

Reply Client::evaluate_with_retry(const EvalRequest& request,
                                  int max_attempts, int timeout_ms) {
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    Reply reply = evaluate(request, timeout_ms);
    if (reply.kind != Reply::Kind::Busy) return reply;
    const int backoff = std::clamp<int>(
        static_cast<int>(reply.busy.retry_after_ms), 10, 2000);
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
  }
  throw std::runtime_error("svc: server still busy after " +
                           std::to_string(max_attempts) + " attempts");
}

bool Client::ping(std::uint64_t nonce, int timeout_ms) {
  if (!connected()) throw std::runtime_error("svc: client not connected");
  if (!write_all(fd_.get(), encode_frame(MsgType::Ping, encode_ping(nonce)))) {
    throw std::runtime_error("svc: connection lost while sending ping");
  }
  Frame frame;
  if (read_frame(fd_.get(), frame, timeout_ms) != ReadStatus::Ok ||
      frame.type != MsgType::Pong) {
    return false;
  }
  return decode_ping(frame.payload) == nonce;
}

store::StoredRecord decode_response_record(const EvalResponse& response) {
  auto decoded = store::decode_record(response.record_payload);
  if (!decoded) {
    throw std::runtime_error("svc: response record bytes do not decode");
  }
  return std::move(*decoded);
}

}  // namespace intooa::svc
