#include "svc/client.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/version.hpp"

namespace intooa::svc {

namespace {

/// Per-request trace and span ids: a relaxed atomic counter, never
/// util::Rng (ids must not perturb any random stream). Each traced request
/// gets a fresh trace id, which doubles as the flow id linking the client
/// request span to the server's evaluate span.
std::uint64_t next_trace_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

std::uint32_t retry_backoff_ms(std::uint32_t hint_ms,
                               std::uint64_t request_id, int attempt) {
  const std::uint32_t base = std::clamp<std::uint32_t>(hint_ms, 10u, 2000u);
  // splitmix64 finalizer over (id, attempt): cheap, deterministic, and
  // well-spread — and never util::Rng, which would perturb result streams.
  std::uint64_t z = request_id +
                    0x9E3779B97F4A7C15ull *
                        (static_cast<std::uint64_t>(attempt) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  const auto pct = static_cast<std::int64_t>(z % 51) - 25;  // [-25, +25]
  const std::int64_t jittered =
      static_cast<std::int64_t>(base) +
      static_cast<std::int64_t>(base) * pct / 100;
  return static_cast<std::uint32_t>(std::max<std::int64_t>(jittered, 1));
}

void Client::connect(const Address& address) {
  fd_ = connect_to(address);
  if (!write_all(fd_.get(), encode_frame(MsgType::Hello, encode_hello()))) {
    fd_.reset();
    throw TransportError(TransportError::Kind::ConnectionLost,
                         "svc: connection closed during handshake");
  }
  Frame frame;
  const ReadStatus status = read_frame(fd_.get(), frame, kMidFrameGraceMs);
  if (status != ReadStatus::Ok) {
    fd_.reset();
    throw TransportError(status == ReadStatus::Timeout
                             ? TransportError::Kind::Timeout
                             : TransportError::Kind::ConnectionLost,
                         "svc: no handshake reply from " +
                             address.to_string());
  }
  if (frame.type == MsgType::Error) {
    const auto error = decode_error(frame.payload);
    fd_.reset();
    throw TransportError(
        TransportError::Kind::Protocol,
        "svc: server rejected handshake (" +
            std::string(error ? error_code_name(error->code) : "malformed") +
            "): " + (error ? error->message : ""));
  }
  const auto hello =
      frame.type == MsgType::HelloOk ? decode_hello_ok(frame.payload)
                                     : std::nullopt;
  if (!hello || hello->version != kProtocolVersion) {
    fd_.reset();
    throw TransportError(TransportError::Kind::Protocol,
                         "svc: malformed handshake reply");
  }
  server_minor_ = hello->minor;
  // Mirror of the server's handshake line (cross-version debugging: both
  // logs carry the local build stamp and the peer's announced revision).
  util::log_info("svc: connected",
                 {{"server", address.to_string()},
                  {"server_minor", server_minor_},
                  {"build", util::version_string()}});
}

void Client::send_request(const EvalRequest& request) {
  if (!connected()) {
    throw TransportError(TransportError::Kind::ConnectionLost,
                         "svc: client not connected");
  }
  const EvalRequest* to_send = &request;
  EvalRequest traced_request;
  if (obs::trace_enabled() && server_minor_ >= 1 && !request.trace) {
    traced_request = request;
    TracedRequest traced;
    traced.sent_ns = obs::detail::monotonic_ns();
    traced.trace_id = next_trace_id();
    traced.span_id = next_trace_id();
    traced_request.trace = TraceContext{traced.trace_id, traced.span_id};
    traced_[request.request_id] = traced;
    to_send = &traced_request;
  }
  if (!write_all(fd_.get(),
                 encode_frame(MsgType::EvalRequest,
                              encode_eval_request(*to_send)))) {
    throw TransportError(TransportError::Kind::ConnectionLost,
                         "svc: connection lost while sending request");
  }
}

Reply Client::read_reply(int timeout_ms) {
  if (!connected()) {
    throw TransportError(TransportError::Kind::ConnectionLost,
                         "svc: client not connected");
  }
  Frame frame;
  const ReadStatus status = read_frame(fd_.get(), frame, timeout_ms);
  if (status == ReadStatus::Timeout) {
    throw TransportError(TransportError::Kind::Timeout,
                         "svc: timed out waiting for a reply");
  }
  if (status == ReadStatus::BadType) {
    throw TransportError(
        TransportError::Kind::Protocol,
        "svc: reply frame carries an unknown message type (corrupt stream)");
  }
  if (status != ReadStatus::Ok) {
    throw TransportError(TransportError::Kind::ConnectionLost,
                         "svc: connection lost while awaiting a reply");
  }
  Reply reply;
  switch (frame.type) {
    case MsgType::EvalResponse: {
      auto response = decode_eval_response(frame.payload);
      if (!response) {
        throw TransportError(TransportError::Kind::Protocol,
                             "svc: malformed EvalResponse");
      }
      const auto traced = traced_.find(response->request_id);
      if (traced != traced_.end()) {
        if (response->timings) {
          record_merged_spans(traced->second, *response->timings,
                              obs::detail::monotonic_ns());
        }
        traced_.erase(traced);
      }
      reply.kind = Reply::Kind::Ok;
      reply.response = std::move(*response);
      return reply;
    }
    case MsgType::Busy: {
      const auto busy = decode_busy(frame.payload);
      if (!busy) {
        throw TransportError(TransportError::Kind::Protocol,
                             "svc: malformed Busy reply");
      }
      traced_.erase(busy->request_id);
      reply.kind = Reply::Kind::Busy;
      reply.busy = *busy;
      return reply;
    }
    case MsgType::Error: {
      const auto error = decode_error(frame.payload);
      if (!error) {
        throw TransportError(TransportError::Kind::Protocol,
                             "svc: malformed Error reply");
      }
      traced_.erase(error->request_id);
      reply.kind = Reply::Kind::Error;
      reply.error = std::move(*error);
      return reply;
    }
    default:
      throw TransportError(TransportError::Kind::Protocol,
                           "svc: unexpected reply frame type " +
                               std::to_string(static_cast<unsigned>(
                                   frame.type)));
  }
}

Reply Client::evaluate(const EvalRequest& request, int timeout_ms) {
  send_request(request);
  return read_reply(timeout_ms);
}

Reply Client::evaluate_with_retry(const EvalRequest& request,
                                  int max_attempts, int timeout_ms) {
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    Reply reply = evaluate(request, timeout_ms);
    if (reply.kind != Reply::Kind::Busy) return reply;
    const std::uint32_t backoff = retry_backoff_ms(
        reply.busy.retry_after_ms, request.request_id, attempt);
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
  }
  throw std::runtime_error("svc: server still busy after " +
                           std::to_string(max_attempts) + " attempts");
}

bool Client::ping(std::uint64_t nonce, int timeout_ms) {
  if (!connected()) {
    throw TransportError(TransportError::Kind::ConnectionLost,
                         "svc: client not connected");
  }
  if (!write_all(fd_.get(), encode_frame(MsgType::Ping, encode_ping(nonce)))) {
    throw TransportError(TransportError::Kind::ConnectionLost,
                         "svc: connection lost while sending ping");
  }
  Frame frame;
  if (read_frame(fd_.get(), frame, timeout_ms) != ReadStatus::Ok ||
      frame.type != MsgType::Pong) {
    return false;
  }
  return decode_ping(frame.payload) == nonce;
}

void Client::record_merged_spans(const TracedRequest& traced,
                                 const ServerTimings& timings,
                                 std::uint64_t received_ns) {
  if (!obs::trace_enabled()) return;
  // The client request span, on the local process row. Its flow arrow
  // (id = trace id) lands on the server's evaluate span.
  obs::TraceEvent request_span;
  request_span.name = "svc.client.request";
  request_span.tid = util::thread_ordinal();
  request_span.start_ns = traced.sent_ns;
  request_span.duration_ns =
      received_ns > traced.sent_ns ? received_ns - traced.sent_ns : 0;
  request_span.trace_id = traced.trace_id;
  request_span.span_id = traced.span_id;
  request_span.flow_out = traced.trace_id;
  obs::trace_record_event(request_span);

  // The server's stage spans, reconstructed from the response trailer on
  // the remote-process row. The two clocks are unrelated, so the stages
  // are laid back-to-back and centered inside the client span (the
  // remaining slack is symmetric transport time) — an approximation that
  // preserves every duration exactly.
  const std::uint64_t server_total = timings.decode_ns + timings.queue_ns +
                                     timings.eval_ns + timings.encode_ns;
  std::uint64_t offset = 0;
  if (request_span.duration_ns > server_total) {
    offset = (request_span.duration_ns - server_total) / 2;
  }
  std::uint64_t cursor = traced.sent_ns + offset;
  const auto stage = [&](const char* name, std::uint64_t duration_ns,
                         bool is_evaluate) {
    obs::TraceEvent event;
    event.name = name;
    event.pid = obs::kRemotePid;
    event.tid = 0;
    event.start_ns = cursor;
    event.duration_ns = duration_ns;
    event.trace_id = timings.trace_id;
    event.span_id = timings.server_span_id;
    if (is_evaluate) event.flow_in = traced.trace_id;
    obs::trace_record_event(event);
    cursor += duration_ns;
  };
  stage("svc.server.decode", timings.decode_ns, false);
  stage("svc.server.queue", timings.queue_ns, false);
  stage("svc.server.evaluate", timings.eval_ns, true);
  stage("svc.server.encode", timings.encode_ns, false);
}

std::string Client::stats_json(bool include_flight, int timeout_ms) {
  if (!connected()) {
    throw TransportError(TransportError::Kind::ConnectionLost,
                         "svc: client not connected");
  }
  if (server_minor_ < 1) {
    throw TransportError(
        TransportError::Kind::Unsupported,
        "svc: server is a protocol-1.0 build without stats support");
  }
  StatsRequest request;
  request.request_id = next_stats_id_++;
  request.include_flight = include_flight;
  if (!write_all(fd_.get(), encode_frame(MsgType::StatsRequest,
                                         encode_stats_request(request)))) {
    throw TransportError(TransportError::Kind::ConnectionLost,
                         "svc: connection lost while requesting stats");
  }
  Frame frame;
  const ReadStatus status = read_frame(fd_.get(), frame, timeout_ms);
  if (status != ReadStatus::Ok) {
    throw TransportError(status == ReadStatus::Timeout
                             ? TransportError::Kind::Timeout
                             : TransportError::Kind::ConnectionLost,
                         "svc: no stats reply");
  }
  if (frame.type == MsgType::Error) {
    const auto error = decode_error(frame.payload);
    throw TransportError(
        TransportError::Kind::Protocol,
        "svc: stats request rejected (" +
            std::string(error ? error_code_name(error->code) : "malformed") +
            "): " + (error ? error->message : ""));
  }
  if (frame.type != MsgType::StatsResponse) {
    throw TransportError(
        TransportError::Kind::Protocol,
        "svc: unexpected stats reply frame type " +
            std::to_string(static_cast<unsigned>(frame.type)));
  }
  auto response = decode_stats_response(frame.payload);
  if (!response || response->request_id != request.request_id) {
    throw TransportError(TransportError::Kind::Protocol,
                         "svc: malformed StatsResponse");
  }
  return std::move(response->stats_json);
}

store::StoredRecord decode_response_record(const EvalResponse& response) {
  auto decoded = store::decode_record(response.record_payload);
  if (!decoded) {
    throw TransportError(TransportError::Kind::Protocol,
                         "svc: response record bytes do not decode");
  }
  return std::move(*decoded);
}

}  // namespace intooa::svc
