#pragma once
// intooa-served's engine: a long-lived evaluation service that accepts
// EvalRequest frames from many concurrent clients, batches the actual
// sizing work into a runtime::ThreadPool, and serves warm results from two
// cache tiers — a per-configuration in-memory response cache and the
// persistent content-addressed store::EvalStore shared with every offline
// campaign. Admission is bounded: once `max_inflight` evaluations are
// queued or running, further requests get an immediate Busy reply
// (explicit backpressure) instead of unbounded buffering.
//
// Threading model: one connection-handler thread per client (blocking
// frame reads with poll timeouts), evaluation tasks on the shared pool,
// responses written back under a per-connection mutex (responses to one
// connection may interleave across requests but never across frames).
// Responses are keyed by the client's request id and may arrive out of
// order.
//
// Shutdown: begin_drain() — or a byte written to wake_fd(), which is the
// async-signal-safe spelling used by intooa-served's SIGTERM/SIGINT
// handler — stops the acceptor, refuses new requests with Error(draining),
// finishes every admitted evaluation, flushes its response, and returns
// from run(). Store appends are fsync'd per record (store::EvalStore), so
// a drained server leaves a durable store behind.
//
// Determinism: the service adds no randomness. Sizing draws from an RNG
// seeded by the evaluation key digest (the same discipline as
// core::TopologyEvaluator), so a response's record bytes are identical to
// the same evaluation run in-process — and identical across servers,
// restarts, and cache tiers.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "store/store.hpp"
#include "svc/flight_recorder.hpp"
#include "svc/protocol.hpp"
#include "svc/socket.hpp"

namespace intooa::svc {

struct ServerConfig {
  Address address;                 ///< listen endpoint (unix or tcp)
  std::size_t threads = 0;         ///< eval workers; 0 = hardware concurrency
  std::size_t max_inflight = 64;   ///< admitted evaluations before Busy
  std::size_t max_connections = 64;
  int idle_timeout_ms = 60'000;    ///< close idle connections; <0 = never
  std::uint32_t busy_retry_ms = 250;  ///< hint carried in Busy replies
  /// Optional persistent warm tier shared with offline campaigns.
  std::shared_ptr<store::EvalStore> store;
  /// Byte budget of each shard's in-memory response cache (--mem-cache-mb);
  /// past it, least-recently-used entries are evicted and counted in
  /// evaluator.mem_evictions. 0 = unlimited (the historical behavior).
  std::size_t mem_cache_bytes = 0;
  /// Test hook: artificial delay inside every evaluation, used by the
  /// backpressure/drain tests to hold the queue in a known state. 0 in
  /// production.
  int test_eval_delay_ms = 0;
  /// Ring size of the request flight recorder (last N completed requests,
  /// exposed via StatsResponse, dumped on SIGUSR1 and drain). 0 disables.
  std::size_t flight_recorder_capacity = 256;
  /// Opt-in structured access log: one key=value line per completed
  /// request, appended to this file. "" disables.
  std::string access_log;
  /// Periodic Prometheus snapshot for scrape-by-file deployments: every
  /// stats_interval_s the full registry is rendered and atomically
  /// published to stats_file. "" disables.
  std::string stats_file;
  double stats_interval_s = 10.0;
};

/// Point-in-time server counters (process-local mirror of the svc.*
/// metrics, exposed for tests and the drain log line).
struct ServerStats {
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;
  std::uint64_t responses_ok = 0;
  std::uint64_t busy_rejections = 0;
  std::uint64_t errors = 0;
  std::uint64_t served_memory = 0;
  std::uint64_t served_store = 0;
  std::uint64_t served_computed = 0;
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens. Separate from run() so callers (tests, the daemon)
  /// know the endpoint accepts connections before spawning clients. Throws
  /// std::runtime_error when the endpoint cannot be bound.
  void bind();

  /// Accept loop; blocks until a drain completes. Calls bind() if the
  /// caller did not.
  void run();

  /// Starts a graceful drain: stop accepting, refuse new requests, finish
  /// admitted work, then run() returns. Thread-safe and idempotent, but NOT
  /// async-signal-safe — from a signal handler, write one byte to
  /// wake_fd() instead.
  void begin_drain();

  /// Write end of the self-pipe the accept loop watches; write() to it is
  /// async-signal-safe. Byte value 2 dumps the flight recorder to the log
  /// and keeps serving (SIGUSR1); any other byte triggers begin_drain()
  /// (SIGTERM/SIGINT). Valid after bind().
  int wake_fd() const { return wake_tx_.get(); }

  /// True once begin_drain() (or a wake-pipe byte) has been observed.
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  ServerStats stats() const;

  /// Connection-handler threads currently tracked (live handlers plus any
  /// finished-but-not-yet-reaped). Bounded by max_connections + the reap
  /// backlog of one accept-loop iteration; the regression test asserts it
  /// stays small across many short-lived connections.
  std::size_t connection_thread_count() const;

  /// The StatsResponse document: uptime, metrics snapshot, per-histogram
  /// p50/p90/p99 and (optionally) the flight-recorder contents, as compact
  /// JSON text. Thread-safe; also callable directly (examples, tests).
  std::string stats_json_text(bool include_flight) const;

  const ServerConfig& config() const { return config_; }

 private:
  /// Per-connection state shared between the reader thread and the pool
  /// tasks writing responses.
  struct Connection {
    Fd fd;
    std::string peer;                ///< "unix" or "ip:port", for telemetry
    std::mutex write_mutex;          ///< one frame at a time on the wire
    std::mutex pending_mutex;
    std::condition_variable pending_cv;
    std::size_t pending = 0;         ///< admitted, response not yet written
    std::atomic<bool> broken{false};  ///< write failed; stop serving
  };

  /// Per-evaluation-configuration state: requests with byte-identical
  /// EvalKeyContext prefixes share one shard (sizer, response cache,
  /// in-progress dedup).
  struct Shard;

  void handle_connection(std::shared_ptr<Connection> conn);
  /// Dispatches one decoded frame; returns false when the connection must
  /// close (protocol violation).
  bool dispatch(const std::shared_ptr<Connection>& conn, const Frame& frame);
  void process_request(std::shared_ptr<Connection> conn, EvalRequest request,
                       std::uint64_t admitted_at_ns, std::uint64_t decode_ns,
                       std::uint64_t bytes_in, std::uint64_t server_span_id);
  /// Serves one evaluation through the cache tiers; returns the encoded
  /// EvalResponse payload and reports the evaluation key digest (for the
  /// flight recorder). Throws on internal failure.
  EvalResponse serve_request(const EvalRequest& request,
                             std::uint64_t& key_digest);
  Shard& shard_for(const EvalRequest& request);

  bool send_frame(const std::shared_ptr<Connection>& conn, MsgType type,
                  std::string_view payload);
  void send_error(const std::shared_ptr<Connection>& conn,
                  std::uint64_t request_id, ErrorCode code,
                  const std::string& message);

  void finish_pending(const std::shared_ptr<Connection>& conn);

  /// Refreshes the liveness gauges (svc.uptime_seconds, svc.inflight,
  /// svc.connections) — called on every accept-loop tick so a snapshot is
  /// meaningful even between requests.
  void update_loop_gauges();
  /// Logs every buffered flight record (SIGUSR1 and graceful drain).
  void dump_flight_recorder();
  /// Appends one access-log line for a completed request (no-op when
  /// --access-log is off).
  void write_access_log(const FlightRecord& record);
  /// Atomically publishes the Prometheus rendering to config_.stats_file.
  void write_stats_file();
  /// Body of the periodic stats-file writer thread.
  void stats_file_loop();

  ServerConfig config_;
  Fd listen_fd_;
  Fd wake_rx_, wake_tx_;
  std::unique_ptr<runtime::ThreadPool> pool_;
  std::atomic<bool> draining_{false};
  std::atomic<std::size_t> inflight_{0};
  std::atomic<std::size_t> open_connections_{0};
  std::mutex inflight_mutex_;
  std::condition_variable inflight_cv_;

  std::uint64_t start_ns_ = 0;  ///< bind() time, for svc.uptime_seconds
  std::unique_ptr<FlightRecorder> flight_;  ///< null when capacity == 0
  std::mutex access_log_mutex_;
  std::ofstream access_log_;
  std::thread stats_thread_;
  std::mutex stats_cv_mutex_;
  std::condition_variable stats_cv_;

  std::mutex shards_mutex_;
  std::unordered_map<std::string, std::unique_ptr<Shard>> shards_;

  /// Joins connection threads whose handlers announced completion (same
  /// scheme as sched::JobService: a handler's last act is to push its id
  /// onto finished_ids_). Called on every accept so a long-lived daemon
  /// stays bounded instead of accumulating one unjoined thread per
  /// connection until drain.
  void reap_finished_connections();
  /// Joins every remaining connection thread (drain and destructor).
  void join_all_connections();

  mutable std::mutex threads_mutex_;
  std::map<std::uint64_t, std::thread> connection_threads_;
  std::vector<std::uint64_t> finished_ids_;
  std::uint64_t next_connection_id_ = 1;

  mutable std::mutex stats_mutex_;
  ServerStats stats_;
};

}  // namespace intooa::svc
