#include "svc/remote_backend.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "store/record_io.hpp"
#include "util/log.hpp"

namespace intooa::svc {

RemoteBackend::RemoteBackend(std::shared_ptr<ClientPool> pool,
                             sizing::EvalContext context,
                             sizing::SizingConfig config)
    : pool_(std::move(pool)),
      context_(std::move(context)),
      config_(config),
      keys_(context_, config_) {}

std::optional<core::EvalRecord> RemoteBackend::evaluate(
    const circuit::Topology& topology) {
  static obs::Counter& bad_record_counter =
      obs::registry().counter("svc.pool.bad_records");
  const core::EvalKey key = keys_.key_for(topology);
  EvalRequest request;
  request.spec = context_.spec;
  request.behavioral = context_.behavioral;
  request.ac = context_.ac;
  request.sizing = config_;
  request.topology_index = topology.index();
  const auto response = pool_->evaluate(request, key.digest);
  if (!response) return std::nullopt;
  auto decoded = store::decode_record(response->record_payload);
  if (!decoded || decoded->key.fingerprint != key.fingerprint) {
    // A served record that does not decode, or answers a different key, is
    // a server bug or transport corruption: count it and degrade to a
    // miss — the local sizer produces the correct bytes regardless.
    bad_record_counter.add();
    util::log_warn("svc: discarding served record for topology " +
                   std::to_string(topology.index()) +
                   (decoded ? " (key fingerprint mismatch)"
                            : " (payload does not decode)"));
    return std::nullopt;
  }
  return std::move(decoded->record);
}

void attach(core::TopologyEvaluator& evaluator,
            std::shared_ptr<ClientPool> pool) {
  if (!pool) {
    evaluator.attach_remote(nullptr);
    return;
  }
  evaluator.attach_remote(std::make_shared<RemoteBackend>(
      std::move(pool), evaluator.context(), evaluator.sizer().config()));
}

}  // namespace intooa::svc
