#pragma once
// svc::Client — the client side of the evaluation service protocol. One
// Client owns one connection: connect() dials and performs the
// Hello/HelloOk version handshake; evaluate() is the blocking
// request/response call used by the CLI and the examples; send_request() /
// read_reply() expose the pipelined form (many requests in flight on one
// connection, replies matched by request id) used by the hammer mode.
//
// The client never retries by itself: a Busy reply is surfaced to the
// caller, who owns the backoff policy (evaluate_with_retry implements the
// standard one). All failures throw std::runtime_error with a message that
// names the protocol error code when the server sent one.

#include <cstdint>
#include <optional>
#include <string>

#include "store/record_io.hpp"
#include "svc/protocol.hpp"
#include "svc/socket.hpp"

namespace intooa::svc {

/// One reply to an EvalRequest, whichever of the three shapes it took.
struct Reply {
  enum class Kind { Ok, Busy, Error } kind = Kind::Error;
  EvalResponse response;  ///< when kind == Ok
  BusyReply busy;         ///< when kind == Busy
  ErrorReply error;       ///< when kind == Error
};

class Client {
 public:
  Client() = default;

  /// Dials `address` and performs the version handshake. Throws
  /// std::runtime_error on connection failure, a protocol-version
  /// rejection, or a malformed handshake.
  void connect(const Address& address);

  bool connected() const { return fd_.valid(); }
  void close() { fd_.reset(); }

  /// Sends one EvalRequest frame (does not wait for the reply).
  void send_request(const EvalRequest& request);

  /// Blocks for the next reply frame addressed to any outstanding request.
  /// `timeout_ms` < 0 waits forever. Throws on connection loss, frame
  /// corruption, or timeout.
  Reply read_reply(int timeout_ms = -1);

  /// send_request + read_reply for the single-request case.
  Reply evaluate(const EvalRequest& request, int timeout_ms = -1);

  /// evaluate() with Busy-backoff: sleeps the server's retry hint (bounded
  /// to [10ms, 2s]) and retries, up to `max_attempts`. Returns the first
  /// non-Busy reply; throws std::runtime_error when every attempt was
  /// rejected Busy.
  Reply evaluate_with_retry(const EvalRequest& request, int max_attempts = 8,
                            int timeout_ms = -1);

  /// Round-trips a Ping; returns false on nonce mismatch.
  bool ping(std::uint64_t nonce, int timeout_ms = -1);

 private:
  Fd fd_;
};

/// Decodes the record bytes of an Ok reply. Throws std::runtime_error when
/// the payload does not decode (a server bug or transport corruption).
store::StoredRecord decode_response_record(const EvalResponse& response);

}  // namespace intooa::svc
