#pragma once
// DEPRECATED as an application entry point: new code should use the
// api::Session facade (api/session.hpp), which wraps this client plus the
// pool and job control behind one typed, Expected-returning surface with
// the unified api::Error taxonomy. svc::Client remains the transport
// building block the facade is implemented on.
//
// svc::Client — the client side of the evaluation service protocol. One
// Client owns one connection: connect() dials and performs the
// Hello/HelloOk version handshake; evaluate() is the blocking
// request/response call used by the CLI and the examples; send_request() /
// read_reply() expose the pipelined form (many requests in flight on one
// connection, replies matched by request id) used by the hammer mode.
//
// The client never retries by itself: a Busy reply is surfaced to the
// caller, who owns the backoff policy (evaluate_with_retry implements the
// standard one). All failures throw std::runtime_error with a message that
// names the protocol error code when the server sent one.

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "store/record_io.hpp"
#include "svc/protocol.hpp"
#include "svc/socket.hpp"

namespace intooa::svc {

/// Sleep before retrying a Busy-rejected request: the server's hint
/// clamped to [10 ms, 2 s] — in uint32 space, so a hint above INT_MAX
/// clamps to the ceiling instead of overflowing negative and hitting the
/// floor — with deterministic ±25% jitter derived from the request id (and
/// the attempt ordinal), so a fleet of saturated clients spreads its
/// retries instead of re-arriving in lockstep. Pure function: the same
/// (id, attempt) always backs off the same amount.
std::uint32_t retry_backoff_ms(std::uint32_t hint_ms,
                               std::uint64_t request_id, int attempt = 0);

/// One reply to an EvalRequest, whichever of the three shapes it took.
struct Reply {
  enum class Kind { Ok, Busy, Error } kind = Kind::Error;
  EvalResponse response;  ///< when kind == Ok
  BusyReply busy;         ///< when kind == Busy
  ErrorReply error;       ///< when kind == Error
};

class Client {
 public:
  Client() = default;

  /// Dials `address` and performs the version handshake. Throws
  /// std::runtime_error on connection failure, a protocol-version
  /// rejection, or a malformed handshake.
  void connect(const Address& address);

  bool connected() const { return fd_.valid(); }
  void close() { fd_.reset(); }

  /// Minor protocol revision the server announced in HelloOk (0 for a
  /// version-1.0 server, which supports neither stats nor trace context).
  std::uint32_t server_minor() const { return server_minor_; }

  /// Sends one EvalRequest frame (does not wait for the reply). When span
  /// collection is on (obs::trace_enabled()) and the server announced
  /// minor >= 1, a fresh trace context is attached so read_reply() can
  /// merge the server's stage spans into the local Chrome trace — the
  /// evaluation result is byte-identical either way.
  void send_request(const EvalRequest& request);

  /// Blocks for the next reply frame addressed to any outstanding request.
  /// `timeout_ms` < 0 waits forever. Throws on connection loss, frame
  /// corruption, or timeout.
  Reply read_reply(int timeout_ms = -1);

  /// send_request + read_reply for the single-request case.
  Reply evaluate(const EvalRequest& request, int timeout_ms = -1);

  /// evaluate() with Busy-backoff: sleeps retry_backoff_ms(hint, id,
  /// attempt) — the server's hint bounded to [10ms, 2s] with deterministic
  /// ±25% jitter — and retries, up to `max_attempts`. Returns the first
  /// non-Busy reply; throws std::runtime_error when every attempt was
  /// rejected Busy.
  Reply evaluate_with_retry(const EvalRequest& request, int max_attempts = 8,
                            int timeout_ms = -1);

  /// Round-trips a Ping; returns false on nonce mismatch.
  bool ping(std::uint64_t nonce, int timeout_ms = -1);

  /// Round-trips a StatsRequest and returns the server's stats document
  /// (JSON text; parse with obs::Json). Throws std::runtime_error when the
  /// server is a 1.0 build (server_minor() == 0) or on transport failure.
  std::string stats_json(bool include_flight = false, int timeout_ms = -1);

 private:
  /// Client-side bookkeeping for one traced in-flight request.
  struct TracedRequest {
    std::uint64_t sent_ns = 0;
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;  ///< the client request span's id
  };

  /// Records the merged client+server spans for one Ok reply carrying
  /// server timings.
  void record_merged_spans(const TracedRequest& traced,
                           const ServerTimings& timings,
                           std::uint64_t received_ns);

  Fd fd_;
  std::uint32_t server_minor_ = 0;
  std::uint64_t next_stats_id_ = 1;
  /// request id -> trace bookkeeping; entries only exist while tracing.
  std::unordered_map<std::uint64_t, TracedRequest> traced_;
};

/// Decodes the record bytes of an Ok reply. Throws std::runtime_error when
/// the payload does not decode (a server bug or transport corruption).
store::StoredRecord decode_response_record(const EvalResponse& response);

}  // namespace intooa::svc
