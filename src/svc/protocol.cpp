#include "svc/protocol.hpp"

#include <stdexcept>

#include "util/wire.hpp"

namespace intooa::svc {

namespace {

using util::WireReader;
using util::WireWriter;

void write_spec(WireWriter& w, const circuit::Spec& spec) {
  w.str(spec.name);
  w.f64(spec.gain_db_min);
  w.f64(spec.gbw_hz_min);
  w.f64(spec.pm_deg_min);
  w.f64(spec.power_w_max);
  w.f64(spec.load_cap);
}

bool read_spec(WireReader& r, circuit::Spec& spec) {
  return r.str(spec.name) && r.f64(spec.gain_db_min) &&
         r.f64(spec.gbw_hz_min) && r.f64(spec.pm_deg_min) &&
         r.f64(spec.power_w_max) && r.f64(spec.load_cap);
}

void write_behavioral(WireWriter& w, const circuit::BehavioralConfig& b) {
  w.f64(b.vdd);
  w.f64(b.stage_intrinsic_gain);
  w.f64(b.stage_ft_hz);
  w.f64(b.stage_c0);
  w.f64(b.gm_over_id);
  w.f64(b.gmin);
  w.f64(b.load_cap);
  w.f64(b.gm_lo);
  w.f64(b.gm_hi);
  w.f64(b.r_lo);
  w.f64(b.r_hi);
  w.f64(b.c_lo);
  w.f64(b.c_hi);
}

bool read_behavioral(WireReader& r, circuit::BehavioralConfig& b) {
  return r.f64(b.vdd) && r.f64(b.stage_intrinsic_gain) &&
         r.f64(b.stage_ft_hz) && r.f64(b.stage_c0) && r.f64(b.gm_over_id) &&
         r.f64(b.gmin) && r.f64(b.load_cap) && r.f64(b.gm_lo) &&
         r.f64(b.gm_hi) && r.f64(b.r_lo) && r.f64(b.r_hi) && r.f64(b.c_lo) &&
         r.f64(b.c_hi);
}

}  // namespace

std::string_view error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::BadFrame: return "bad_frame";
    case ErrorCode::VersionMismatch: return "version_mismatch";
    case ErrorCode::OversizedFrame: return "oversized_frame";
    case ErrorCode::MalformedRequest: return "malformed_request";
    case ErrorCode::Draining: return "draining";
    case ErrorCode::Internal: return "internal";
  }
  return "unknown";
}

std::string_view served_from_name(ServedFrom served) {
  switch (served) {
    case ServedFrom::Computed: return "computed";
    case ServedFrom::Memory: return "memory";
    case ServedFrom::Store: return "store";
  }
  return "unknown";
}

sizing::EvalContext EvalRequest::eval_context() const {
  return sizing::EvalContext(spec, behavioral, ac);
}

std::string encode_hello(std::uint32_t version, std::uint32_t minor) {
  std::string out;
  WireWriter w(out);
  w.str(kHelloMagic);
  w.u32(version);
  w.u32(minor);  // version-1.0 peers wrote 0 here (reserved flags)
  return out;
}

std::optional<HelloInfo> decode_hello(std::string_view payload) {
  WireReader r(payload);
  std::string magic;
  HelloInfo hello;
  if (!r.str(magic) || magic != kHelloMagic) return std::nullopt;
  if (!r.u32(hello.version) || !r.u32(hello.minor) || !r.done()) {
    return std::nullopt;
  }
  return hello;
}

std::string encode_hello_ok(std::uint32_t version,
                            std::optional<std::uint32_t> minor) {
  std::string out;
  WireWriter w(out);
  w.u32(version);
  if (minor) w.u32(*minor);
  return out;
}

std::optional<HelloInfo> decode_hello_ok(std::string_view payload) {
  WireReader r(payload);
  HelloInfo hello;
  if (!r.u32(hello.version)) return std::nullopt;
  if (!r.done() && (!r.u32(hello.minor) || !r.done())) return std::nullopt;
  return hello;
}

std::string encode_eval_request(const EvalRequest& request) {
  std::string out;
  WireWriter w(out);
  w.u64(request.request_id);
  write_spec(w, request.spec);
  write_behavioral(w, request.behavioral);
  w.f64(request.ac.f_min_hz);
  w.f64(request.ac.f_max_hz);
  w.u32(static_cast<std::uint32_t>(request.ac.points_per_decade));
  w.u8(request.ac.check_stability ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(request.sizing.init_points));
  w.u32(static_cast<std::uint32_t>(request.sizing.iterations));
  w.u32(static_cast<std::uint32_t>(request.sizing.candidates));
  w.u32(static_cast<std::uint32_t>(request.sizing.refit_hyper_every));
  w.u64(request.topology_index);
  if (request.trace) {
    // Optional tail (minor revision 1): absent requests are byte-identical
    // to version 1.0, and 1.0 decoders reject the tail as trailing bytes —
    // which is why tracing clients must only attach it to a server that
    // announced minor >= 1.
    w.u8(1);
    w.u64(request.trace->trace_id);
    w.u64(request.trace->parent_span_id);
  }
  return out;
}

std::optional<EvalRequest> decode_eval_request(std::string_view payload) {
  WireReader r(payload);
  EvalRequest request;
  if (!r.u64(request.request_id)) return std::nullopt;
  if (!read_spec(r, request.spec)) return std::nullopt;
  if (!read_behavioral(r, request.behavioral)) return std::nullopt;
  std::uint32_t u = 0;
  std::uint8_t flag = 0;
  if (!r.f64(request.ac.f_min_hz) || !r.f64(request.ac.f_max_hz)) {
    return std::nullopt;
  }
  if (!r.u32(u)) return std::nullopt;
  request.ac.points_per_decade = u;
  if (!r.u8(flag) || flag > 1) return std::nullopt;
  request.ac.check_stability = flag == 1;
  if (!r.u32(u)) return std::nullopt;
  request.sizing.init_points = u;
  if (!r.u32(u)) return std::nullopt;
  request.sizing.iterations = u;
  if (!r.u32(u)) return std::nullopt;
  request.sizing.candidates = u;
  if (!r.u32(u) || u > 1u << 20) return std::nullopt;
  request.sizing.refit_hyper_every = static_cast<int>(u);
  if (!r.u64(request.topology_index)) return std::nullopt;
  if (!r.done()) {
    // Optional trace-context tail; anything else trailing is corruption.
    TraceContext trace;
    if (!r.u8(flag) || flag != 1) return std::nullopt;
    if (!r.u64(trace.trace_id) || !r.u64(trace.parent_span_id) || !r.done()) {
      return std::nullopt;
    }
    request.trace = trace;
  }
  return request;
}

std::string encode_eval_response(const EvalResponse& response) {
  std::string out;
  out.reserve(16 + response.record_payload.size());
  WireWriter w(out);
  w.u64(response.request_id);
  w.u8(static_cast<std::uint8_t>(response.served_from));
  w.str(response.record_payload);
  if (response.timings) {
    // Optional trailer (minor revision 1), attached only when the request
    // carried a trace context — replies to 1.0 clients stay byte-identical.
    w.u8(1);
    w.u64(response.timings->trace_id);
    w.u64(response.timings->server_span_id);
    w.u64(response.timings->queue_ns);
    w.u64(response.timings->decode_ns);
    w.u64(response.timings->eval_ns);
    w.u64(response.timings->encode_ns);
  }
  return out;
}

std::optional<EvalResponse> decode_eval_response(std::string_view payload) {
  WireReader r(payload);
  EvalResponse response;
  std::uint8_t from = 0;
  if (!r.u64(response.request_id)) return std::nullopt;
  if (!r.u8(from) || from > 2) return std::nullopt;
  response.served_from = static_cast<ServedFrom>(from);
  if (!r.str(response.record_payload)) return std::nullopt;
  if (!r.done()) {
    ServerTimings timings;
    std::uint8_t flag = 0;
    if (!r.u8(flag) || flag != 1) return std::nullopt;
    if (!r.u64(timings.trace_id) || !r.u64(timings.server_span_id) ||
        !r.u64(timings.queue_ns) || !r.u64(timings.decode_ns) ||
        !r.u64(timings.eval_ns) || !r.u64(timings.encode_ns) || !r.done()) {
      return std::nullopt;
    }
    response.timings = timings;
  }
  return response;
}

std::string encode_busy(const BusyReply& busy) {
  std::string out;
  WireWriter w(out);
  w.u64(busy.request_id);
  w.u32(busy.retry_after_ms);
  return out;
}

std::optional<BusyReply> decode_busy(std::string_view payload) {
  WireReader r(payload);
  BusyReply busy;
  if (!r.u64(busy.request_id) || !r.u32(busy.retry_after_ms) || !r.done()) {
    return std::nullopt;
  }
  return busy;
}

std::string encode_error(const ErrorReply& error) {
  std::string out;
  WireWriter w(out);
  w.u64(error.request_id);
  w.u32(static_cast<std::uint32_t>(error.code));
  w.str(error.message);
  return out;
}

std::optional<ErrorReply> decode_error(std::string_view payload) {
  WireReader r(payload);
  ErrorReply error;
  std::uint32_t code = 0;
  if (!r.u64(error.request_id) || !r.u32(code)) return std::nullopt;
  if (code < 1 || code > 6) return std::nullopt;
  error.code = static_cast<ErrorCode>(code);
  if (!r.str(error.message) || !r.done()) return std::nullopt;
  return error;
}

std::string encode_ping(std::uint64_t nonce) {
  std::string out;
  WireWriter w(out);
  w.u64(nonce);
  return out;
}

std::optional<std::uint64_t> decode_ping(std::string_view payload) {
  WireReader r(payload);
  std::uint64_t nonce = 0;
  if (!r.u64(nonce) || !r.done()) return std::nullopt;
  return nonce;
}

std::string encode_stats_request(const StatsRequest& request) {
  std::string out;
  WireWriter w(out);
  w.u64(request.request_id);
  w.u32(request.include_flight ? 1 : 0);  // bit 0; higher bits reserved
  return out;
}

std::optional<StatsRequest> decode_stats_request(std::string_view payload) {
  WireReader r(payload);
  StatsRequest request;
  std::uint32_t flags = 0;
  if (!r.u64(request.request_id) || !r.u32(flags) || !r.done()) {
    return std::nullopt;
  }
  request.include_flight = (flags & 1u) != 0;
  return request;
}

std::string encode_stats_response(const StatsResponse& response) {
  std::string out;
  out.reserve(16 + response.stats_json.size());
  WireWriter w(out);
  w.u64(response.request_id);
  w.str(response.stats_json);
  return out;
}

std::optional<StatsResponse> decode_stats_response(std::string_view payload) {
  WireReader r(payload);
  StatsResponse response;
  if (!r.u64(response.request_id) || !r.str(response.stats_json) ||
      !r.done()) {
    return std::nullopt;
  }
  return response;
}

std::string encode_frame(MsgType type, std::string_view payload) {
  if (payload.size() > kMaxFrame) {
    throw std::length_error("svc: frame payload exceeds kMaxFrame");
  }
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size());
  WireWriter w(out);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u8(static_cast<std::uint8_t>(type));
  out.append(payload.data(), payload.size());
  return out;
}

}  // namespace intooa::svc
