#pragma once
// Minimal POSIX socket plumbing for intooa::svc: address parsing (TCP and
// Unix-domain), listening/connecting, and frame-granular I/O that is robust
// to the realities of stream sockets — short reads, short writes, EINTR,
// peers that dribble a frame one byte at a time, and peers that vanish
// mid-frame. All I/O is blocking with poll()-based readiness + timeout; the
// server gives every connection its own thread, so nothing here needs an
// event loop. SIGPIPE is avoided with MSG_NOSIGNAL on every send.

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

#include "svc/protocol.hpp"

namespace intooa::svc {

/// Typed transport failure thrown by the client-side plumbing (connect,
/// handshake, request round-trips). Subclasses std::runtime_error so
/// existing catch sites keep working; the kind lets api::Session map a
/// failure into the api::Error taxonomy without parsing the message.
class TransportError : public std::runtime_error {
 public:
  enum class Kind {
    Connect,         ///< dial failed (refused, unresolvable, no listener)
    Timeout,         ///< the peer went silent past the deadline
    ConnectionLost,  ///< send/receive failed mid-conversation
    Protocol,        ///< malformed or unexpected frames, version mismatch
    Unsupported,     ///< the peer predates the requested capability
  };

  TransportError(Kind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

/// A server-originated Error reply surfaced as an exception, preserving the
/// wire error code so api::Session can map it into the api::Error taxonomy
/// (Draining stays retryable, Internal stays permanent) without parsing the
/// message. MalformedRequest replies keep throwing std::invalid_argument for
/// backward compatibility; everything else lands here.
class RemoteError : public std::runtime_error {
 public:
  RemoteError(ErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}

  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

/// A service endpoint: "unix:PATH", "tcp:HOST:PORT", "HOST:PORT" (tcp), or
/// a bare filesystem path (unix).
struct Address {
  enum class Kind { Unix, Tcp } kind = Kind::Unix;
  std::string path;  ///< unix socket path
  std::string host;  ///< tcp host
  std::uint16_t port = 0;

  /// Human-readable rendering ("unix:/tmp/x.sock", "tcp:127.0.0.1:4815").
  std::string to_string() const;

  /// Parses the accepted spellings above; throws std::invalid_argument on
  /// an empty spec, a bad port, or an over-long unix path.
  static Address parse(const std::string& text);
};

/// RAII file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset();

 private:
  int fd_ = -1;
};

/// Creates a listening socket on `address` (unlinking a stale unix socket
/// file first; SO_REUSEADDR for tcp). Throws std::runtime_error on failure.
Fd listen_on(const Address& address, int backlog = 64);

/// Connects to `address`. Throws std::runtime_error on failure.
Fd connect_to(const Address& address);

/// Outcome of read_frame.
enum class ReadStatus {
  Ok,         ///< frame filled in
  Closed,     ///< orderly EOF at a frame boundary
  Timeout,    ///< idle longer than the timeout at a frame boundary
  Oversized,  ///< announced payload length exceeds kMaxFrame
  BadType,    ///< header type byte is not a known MsgType
  Error,      ///< I/O error or EOF mid-frame
};

/// Reads one complete frame, tolerating arbitrarily fragmented delivery.
/// `idle_timeout_ms` < 0 waits forever; the timeout applies only while
/// waiting for the *first* byte of a frame — once a frame has started, the
/// peer gets kMidFrameGraceMs to finish it (a stalled mid-frame peer is an
/// error, not an idle connection). On Oversized and BadType the announced
/// payload is NOT consumed; callers must treat the stream as corrupt and
/// close (the server replies Error(bad-frame) first). Counts received
/// bytes into "svc.bytes_rx".
ReadStatus read_frame(int fd, Frame& frame, int idle_timeout_ms = -1);

/// Writes all of `data`, riding out short writes and EINTR; returns false
/// on a broken/closed peer (EPIPE, ECONNRESET) or any other write failure.
/// Counts sent bytes into "svc.bytes_tx".
bool write_all(int fd, std::string_view data);

/// Grace period for a peer to finish a frame it started sending.
inline constexpr int kMidFrameGraceMs = 10'000;

/// Human-readable peer of a connected socket: "ip:port" for TCP,
/// "unix" for Unix-domain peers (unnamed client sockets carry no path),
/// "?" when getpeername fails. Used by the access log and flight recorder.
std::string peer_name(int fd);

}  // namespace intooa::svc
