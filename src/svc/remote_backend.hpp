#pragma once
// svc::RemoteBackend — the core::RemoteBackend implementation over a
// ClientPool: translates a topology into the full evaluation identity of
// an EvalRequest (spec, behavioral model, AC options, sizing protocol,
// topology index), routes it by EvalKey digest so one key always lands on
// the same server's warm store, and decodes the returned
// store::encode_record bytes back into an EvalRecord.
//
// Every failure mode — endpoint down, request failed server-side, record
// bytes that do not decode or whose key fingerprint does not match —
// degrades to nullopt, which the evaluator treats as a miss and answers
// with its local sizer. The deterministic key-seeded sizing discipline
// makes that substitution byte-exact, so campaigns driven through this
// backend are byte-identical to in-process ones.

#include <memory>
#include <optional>

#include "core/eval_key.hpp"
#include "core/evaluator.hpp"
#include "svc/client_pool.hpp"

namespace intooa::svc {

class RemoteBackend final : public core::RemoteBackend {
 public:
  /// Binds the pool to one evaluation configuration — the same
  /// (context, config) pair the owning evaluator sizes under, so requests
  /// carry the exact EvalKey identity.
  RemoteBackend(std::shared_ptr<ClientPool> pool, sizing::EvalContext context,
                sizing::SizingConfig config = {});

  /// Evaluates remotely; nullopt on any service failure (never throws).
  std::optional<core::EvalRecord> evaluate(
      const circuit::Topology& topology) override;

 private:
  std::shared_ptr<ClientPool> pool_;
  sizing::EvalContext context_;
  sizing::SizingConfig config_;
  core::EvalKeyContext keys_;
};

/// Convenience mirroring store::attach: attaches `pool` to `evaluator` as
/// a RemoteBackend bound to the evaluator's own evaluation configuration.
/// A null pool detaches.
void attach(core::TopologyEvaluator& evaluator,
            std::shared_ptr<ClientPool> pool);

}  // namespace intooa::svc
