#include "svc/flight_recorder.hpp"

#include <cstdio>

namespace intooa::svc {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void FlightRecorder::record(FlightRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
    return;
  }
  ring_[next_] = std::move(record);
  next_ = (next_ + 1) % capacity_;
}

std::vector<FlightRecord> FlightRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FlightRecord> out;
  out.reserve(ring_.size());
  // Once the ring has wrapped, next_ points at the oldest entry.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t FlightRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

namespace {

std::string hex_digest(std::uint64_t digest) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(digest));
  return buf;
}

}  // namespace

obs::Json flight_record_json(const FlightRecord& record) {
  obs::Json out = obs::Json::object();
  out["request_id"] = obs::Json(static_cast<double>(record.request_id));
  out["key_digest"] = obs::Json(hex_digest(record.key_digest));
  out["served_from"] = obs::Json(std::string(
      record.ok ? served_from_name(record.served_from) : "error"));
  out["ok"] = obs::Json(record.ok);
  out["queue_ns"] = obs::Json(static_cast<double>(record.queue_ns));
  out["decode_ns"] = obs::Json(static_cast<double>(record.decode_ns));
  out["eval_ns"] = obs::Json(static_cast<double>(record.eval_ns));
  out["encode_ns"] = obs::Json(static_cast<double>(record.encode_ns));
  out["total_ns"] = obs::Json(static_cast<double>(record.total_ns));
  out["bytes_in"] = obs::Json(static_cast<double>(record.bytes_in));
  out["bytes_out"] = obs::Json(static_cast<double>(record.bytes_out));
  out["trace_id"] = obs::Json(static_cast<double>(record.trace_id));
  out["completed_at_ns"] =
      obs::Json(static_cast<double>(record.completed_at_ns));
  out["peer"] = obs::Json(record.peer);
  return out;
}

std::string flight_record_line(const FlightRecord& record) {
  std::string out;
  out.reserve(192);
  const auto field = [&](const char* key, std::uint64_t v) {
    out += ' ';
    out += key;
    out += '=';
    out += std::to_string(v);
  };
  out += "id=";
  out += std::to_string(record.request_id);
  out += " peer=";
  out += record.peer;
  out += " key=";
  out += hex_digest(record.key_digest);
  out += " served=";
  out += record.ok ? served_from_name(record.served_from) : "error";
  field("queue_ns", record.queue_ns);
  field("decode_ns", record.decode_ns);
  field("eval_ns", record.eval_ns);
  field("encode_ns", record.encode_ns);
  field("total_ns", record.total_ns);
  field("bytes_in", record.bytes_in);
  field("bytes_out", record.bytes_out);
  if (record.trace_id != 0) field("trace", record.trace_id);
  return out;
}

}  // namespace intooa::svc
