#include "baselines/fega.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace intooa::baselines {

std::vector<double> embed(const circuit::Topology& topology) {
  std::vector<double> genes(circuit::kSlotCount);
  for (std::size_t s = 0; s < circuit::kSlotCount; ++s) {
    const circuit::Slot slot = circuit::all_slots()[s];
    const auto allowed = circuit::allowed_types(slot);
    const double idx = static_cast<double>(
        circuit::allowed_index(slot, topology.type(slot)));
    genes[s] = (idx + 0.5) / static_cast<double>(allowed.size());
  }
  return genes;
}

circuit::Topology decode_genes(std::span<const double> genes) {
  if (genes.size() != circuit::kSlotCount) {
    throw std::invalid_argument("decode_genes: need 5 genes");
  }
  std::array<circuit::SubcktType, circuit::kSlotCount> types{};
  for (std::size_t s = 0; s < circuit::kSlotCount; ++s) {
    const circuit::Slot slot = circuit::all_slots()[s];
    const auto allowed = circuit::allowed_types(slot);
    const double g = std::clamp(genes[s], 0.0, std::nextafter(1.0, 0.0));
    const auto idx = static_cast<std::size_t>(
        g * static_cast<double>(allowed.size()));
    types[s] = allowed[std::min(idx, allowed.size() - 1)];
  }
  return circuit::Topology(types);
}

FeGa::FeGa(FeGaConfig config) : config_(config) {
  if (config_.population < 2) {
    throw std::invalid_argument("FeGa: population must be >= 2");
  }
  if (config_.elitism >= config_.population) {
    throw std::invalid_argument("FeGa: elitism must be < population");
  }
  if (config_.tournament == 0) {
    throw std::invalid_argument("FeGa: tournament must be >= 1");
  }
}

core::OptimizationOutcome FeGa::run(core::TopologyEvaluator& evaluator,
                                    util::Rng& rng) const {
  struct Individual {
    std::vector<double> genes;
    sizing::EvalPoint point;
  };

  auto fitness_better = [](const Individual& a, const Individual& b) {
    return sizing::better_than(a.point, b.point);
  };

  auto evaluate = [&](std::vector<double> genes) {
    Individual ind;
    const circuit::Topology topo = decode_genes(genes);
    ind.genes = std::move(genes);
    ind.point = evaluator.evaluate(topo).best;
    return ind;
  };

  // Initial population: random topologies, embedded.
  std::vector<Individual> population;
  population.reserve(config_.population);
  for (std::size_t i = 0; i < config_.population; ++i) {
    population.push_back(evaluate(embed(circuit::Topology::random(rng))));
  }

  auto tournament_pick = [&]() -> const Individual& {
    std::size_t best = rng.index(population.size());
    for (std::size_t k = 1; k < config_.tournament; ++k) {
      const std::size_t challenger = rng.index(population.size());
      if (fitness_better(population[challenger], population[best])) {
        best = challenger;
      }
    }
    return population[best];
  };

  std::size_t stalled_generations = 0;
  while (evaluator.history().size() < config_.max_evaluations &&
         stalled_generations < 50) {
    const std::size_t evals_before = evaluator.history().size();
    // Breed one generation of offspring.
    std::sort(population.begin(), population.end(), fitness_better);
    std::vector<Individual> next(
        population.begin(),
        population.begin() + static_cast<long>(config_.elitism));

    while (next.size() < config_.population &&
           evaluator.history().size() < config_.max_evaluations) {
      const Individual& pa = tournament_pick();
      const Individual& pb = tournament_pick();
      std::vector<double> child = pa.genes;
      if (rng.chance(config_.crossover_rate)) {
        for (std::size_t g = 0; g < child.size(); ++g) {
          // Uniform gene swap with occasional arithmetic blend.
          if (rng.chance(0.5)) child[g] = pb.genes[g];
          if (rng.chance(0.2)) {
            child[g] = 0.5 * (pa.genes[g] + pb.genes[g]);
          }
        }
      }
      for (double& g : child) {
        if (rng.chance(config_.gene_mutation_rate)) {
          g = std::clamp(g + rng.normal(0.0, config_.gene_mutation_sigma),
                         0.0, std::nextafter(1.0, 0.0));
        }
      }
      next.push_back(evaluate(std::move(child)));
    }
    population = std::move(next);
    // A converged population keeps re-visiting cached topologies; inject a
    // random immigrant when no fresh evaluation happened this generation.
    if (evaluator.history().size() == evals_before) {
      ++stalled_generations;
      population.back() = evaluate(embed(circuit::Topology::random(rng)));
    } else {
      stalled_generations = 0;
    }
  }

  core::OptimizationOutcome outcome;
  const auto best_feasible = evaluator.best_feasible();
  const auto best_any =
      best_feasible ? best_feasible : evaluator.best_overall();
  outcome.success = best_feasible.has_value();
  outcome.best_index = best_any;
  if (best_any) {
    const auto& record = evaluator.history()[*best_any];
    outcome.best_topology = record.topology;
    outcome.best_point = record.sized.best;
    outcome.best_values = record.sized.best_values;
  }
  return outcome;
}

}  // namespace intooa::baselines
