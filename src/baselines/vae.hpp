#pragma once
// Variational autoencoder over topology one-hot encodings — the learned
// continuous latent space of the VGAE-BO baseline [15], [16]. The paper's
// VGAE uses graph convolutions; because a behavior-level topology is
// uniquely determined by its 5-slot type vector, an MLP over the (lossless)
// concatenated per-slot one-hot encoding sees exactly the same information
// (see DESIGN.md substitution table). What matters for the baseline's
// behavior — forcing the discrete space into a continuous one, with the
// decode round-trip discontinuity the paper critiques — is fully present.

#include <vector>

#include "baselines/nn.hpp"
#include "circuit/topology.hpp"
#include "util/rng.hpp"

namespace intooa::baselines {

/// Total one-hot width: the sum of the five slots' allowed-type counts
/// (7+7+25+5+5 = 49).
std::size_t onehot_dim();

/// Concatenated per-slot one-hot encoding of a topology.
std::vector<double> topology_onehot(const circuit::Topology& topology);

/// Decodes per-slot scores back to the nearest valid topology (argmax over
/// each slot's segment) — the discretization step of latent-space BO.
circuit::Topology decode_topology(std::span<const double> scores);

/// VAE training/topology hyperparameters.
struct VaeConfig {
  std::size_t latent_dim = 6;
  std::size_t hidden_dim = 64;
  double beta = 0.01;       ///< KL weight
  double learning_rate = 3e-3;
  std::size_t epochs = 30;
  std::size_t train_samples = 3000;  ///< random topologies in the train set
};

/// MLP VAE: encoder 49 -> hidden -> (mu, logvar); decoder latent -> hidden
/// -> 49 logits, trained with per-slot softmax cross-entropy + beta * KL.
class Vae {
 public:
  Vae(VaeConfig config, util::Rng& rng);

  /// Trains on `config.train_samples` random topologies (one Adam step per
  /// sample per epoch). Returns the mean loss of the final epoch.
  double train(util::Rng& rng);

  /// Posterior mean latent of a topology (inference: no sampling).
  std::vector<double> encode(const circuit::Topology& topology);

  /// Decoder logits for a latent point.
  std::vector<double> decode_logits(std::span<const double> z);

  /// Decoder output discretized to the nearest valid topology.
  circuit::Topology decode(std::span<const double> z);

  /// Fraction of a sample of random topologies that survive an
  /// encode-decode round trip unchanged (reconstruction quality metric).
  double reconstruction_accuracy(std::size_t samples, util::Rng& rng);

  const VaeConfig& config() const { return config_; }

 private:
  /// One training step; returns the sample loss.
  double step(const std::vector<double>& x, util::Rng& rng);

  VaeConfig config_;
  Linear enc1_;
  Relu enc_act_;
  Linear enc2_;  // outputs [mu, logvar]
  Linear dec1_;
  Relu dec_act_;
  Linear dec2_;
  Adam adam_;
};

}  // namespace intooa::baselines
