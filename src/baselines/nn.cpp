#include "baselines/nn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace intooa::baselines {

Linear::Linear(std::size_t in_dim, std::size_t out_dim, util::Rng& rng)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      w_(in_dim * out_dim),
      b_(out_dim, 0.0),
      gw_(in_dim * out_dim, 0.0),
      gb_(out_dim, 0.0) {
  if (in_dim == 0 || out_dim == 0) {
    throw std::invalid_argument("Linear: zero dimension");
  }
  const double bound =
      std::sqrt(6.0 / static_cast<double>(in_dim + out_dim));
  for (auto& v : w_) v = rng.uniform(-bound, bound);
}

std::vector<double> Linear::forward(std::span<const double> x) {
  if (x.size() != in_dim_) throw std::invalid_argument("Linear: bad input size");
  last_x_.assign(x.begin(), x.end());
  std::vector<double> y(out_dim_);
  for (std::size_t o = 0; o < out_dim_; ++o) {
    double acc = b_[o];
    const double* row = w_.data() + o * in_dim_;
    for (std::size_t i = 0; i < in_dim_; ++i) acc += row[i] * x[i];
    y[o] = acc;
  }
  return y;
}

std::vector<double> Linear::backward(std::span<const double> grad_out) {
  if (grad_out.size() != out_dim_) {
    throw std::invalid_argument("Linear: bad grad size");
  }
  if (last_x_.size() != in_dim_) {
    throw std::logic_error("Linear: backward before forward");
  }
  std::vector<double> grad_in(in_dim_, 0.0);
  for (std::size_t o = 0; o < out_dim_; ++o) {
    const double go = grad_out[o];
    gb_[o] += go;
    double* grow = gw_.data() + o * in_dim_;
    const double* wrow = w_.data() + o * in_dim_;
    for (std::size_t i = 0; i < in_dim_; ++i) {
      grow[i] += go * last_x_[i];
      grad_in[i] += go * wrow[i];
    }
  }
  return grad_in;
}

void Linear::zero_grad() {
  std::fill(gw_.begin(), gw_.end(), 0.0);
  std::fill(gb_.begin(), gb_.end(), 0.0);
}

std::vector<double*> Linear::parameters() {
  std::vector<double*> out;
  out.reserve(w_.size() + b_.size());
  for (auto& v : w_) out.push_back(&v);
  for (auto& v : b_) out.push_back(&v);
  return out;
}

std::vector<double*> Linear::gradients() {
  std::vector<double*> out;
  out.reserve(gw_.size() + gb_.size());
  for (auto& v : gw_) out.push_back(&v);
  for (auto& v : gb_) out.push_back(&v);
  return out;
}

std::vector<double> Relu::forward(std::span<const double> x) {
  mask_.assign(x.size(), false);
  std::vector<double> y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] > 0.0) {
      y[i] = x[i];
      mask_[i] = true;
    }
  }
  return y;
}

std::vector<double> Relu::backward(std::span<const double> grad_out) const {
  if (grad_out.size() != mask_.size()) {
    throw std::invalid_argument("Relu: bad grad size");
  }
  std::vector<double> grad_in(grad_out.size(), 0.0);
  for (std::size_t i = 0; i < grad_out.size(); ++i) {
    if (mask_[i]) grad_in[i] = grad_out[i];
  }
  return grad_in;
}

Adam::Adam(double lr, double beta1, double beta2, double eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

void Adam::attach(std::vector<double*> params, std::vector<double*> grads) {
  if (params.size() != grads.size()) {
    throw std::invalid_argument("Adam: param/grad count mismatch");
  }
  params_.insert(params_.end(), params.begin(), params.end());
  grads_.insert(grads_.end(), grads.begin(), grads.end());
  m_.resize(params_.size(), 0.0);
  v_.resize(params_.size(), 0.0);
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const double g = *grads_[i];
    m_[i] = beta1_ * m_[i] + (1.0 - beta1_) * g;
    v_[i] = beta2_ * v_[i] + (1.0 - beta2_) * g * g;
    const double mhat = m_[i] / bc1;
    const double vhat = v_[i] / bc2;
    *params_[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
  }
}

std::vector<double> softmax(std::span<const double> logits) {
  if (logits.empty()) return {};
  const double mx = *std::max_element(logits.begin(), logits.end());
  std::vector<double> out(logits.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    out[i] = std::exp(logits[i] - mx);
    sum += out[i];
  }
  for (auto& v : out) v /= sum;
  return out;
}

}  // namespace intooa::baselines
