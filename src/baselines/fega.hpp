#pragma once
// FE-GA baseline: a genetic algorithm over the feature-embedded topology
// representation, standing in for the (closed-source) method of Lu et al.
// [14] that the paper compares against. Each slot's discrete choice is
// embedded as a continuous gene in [0,1); crossover and mutation act on
// the embedding and children are decoded back to the nearest valid
// topology — the "feature embedding" mechanism that lets a continuous-
// space evolutionary search traverse the discrete design space.
//
// Budget accounting matches the paper: the GA runs until the shared
// TopologyEvaluator has spent the same number of unique topology
// evaluations as the BO methods (10 + 50 by default). Re-visiting a cached
// topology costs no simulations (all methods share the visited-set rule).

#include <cstddef>
#include <vector>

#include "core/evaluator.hpp"
#include "core/optimizer.hpp"
#include "util/rng.hpp"

namespace intooa::baselines {

/// GA configuration.
struct FeGaConfig {
  std::size_t population = 10;
  std::size_t max_evaluations = 60;  ///< unique topology evaluations
  double crossover_rate = 0.9;
  double gene_mutation_rate = 0.3;
  double gene_mutation_sigma = 0.15;
  std::size_t tournament = 2;
  std::size_t elitism = 2;
};

/// Genetic algorithm with feature embedding.
class FeGa {
 public:
  explicit FeGa(FeGaConfig config = {});

  /// Runs the GA against the shared evaluator; returns the same outcome
  /// structure as IntoOaOptimizer for uniform reporting.
  core::OptimizationOutcome run(core::TopologyEvaluator& evaluator,
                                util::Rng& rng) const;

  const FeGaConfig& config() const { return config_; }

 private:
  FeGaConfig config_;
};

/// Embeds a topology as 5 genes in [0,1) (center of its type's bucket).
std::vector<double> embed(const circuit::Topology& topology);

/// Decodes 5 genes in [0,1) to the topology whose per-slot buckets contain
/// them (values are clamped into range).
circuit::Topology decode_genes(std::span<const double> genes);

}  // namespace intooa::baselines
