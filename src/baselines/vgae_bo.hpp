#pragma once
// VGAE-BO baseline [15], [16]: Bayesian optimization in the continuous
// latent space of a (variational) autoencoder over topologies. The VAE is
// trained once per run on random topologies; BO then models the metrics
// with a shared-kernel GP over latent coordinates, optimizes wEI across a
// sampled latent pool, and decodes the winner back to the nearest valid
// topology. The decode round-trip is many-to-one and discontinuous — the
// structural weakness (relative to direct graph-space optimization) that
// the paper's comparison demonstrates.

#include <cstddef>

#include "baselines/vae.hpp"
#include "core/evaluator.hpp"
#include "core/optimizer.hpp"
#include "util/rng.hpp"

namespace intooa::baselines {

/// Latent-space BO configuration (defaults = paper protocol: 10 initial
/// topologies, 50 iterations, 200 acquisition candidates).
struct VgaeBoConfig {
  VaeConfig vae;
  std::size_t init_topologies = 10;
  std::size_t iterations = 50;
  std::size_t candidates = 200;
  double prior_sigma = 1.5;       ///< latent sampling spread
  int refit_hyper_every = 2;
};

/// The VGAE-BO topology optimizer.
class VgaeBo {
 public:
  explicit VgaeBo(VgaeBoConfig config = {});

  /// Trains a fresh VAE, then runs latent-space BO against the shared
  /// evaluator.
  core::OptimizationOutcome run(core::TopologyEvaluator& evaluator,
                                util::Rng& rng) const;

  /// Runs latent-space BO with an already-trained autoencoder. The VGAE of
  /// [16] is trained offline on unlabeled topologies, so one trained model
  /// may be shared across campaign repetitions (the experiment harness
  /// does this to avoid re-training per run).
  core::OptimizationOutcome run(core::TopologyEvaluator& evaluator,
                                util::Rng& rng, Vae& vae) const;

  const VgaeBoConfig& config() const { return config_; }

 private:
  VgaeBoConfig config_;
};

}  // namespace intooa::baselines
