#pragma once
// Minimal neural-network substrate for the VGAE-BO baseline [15], [16]:
// fully-connected layers with hand-derived backpropagation and the Adam
// optimizer. No autodiff framework is needed — the VAE in vae.hpp is the
// only consumer and its computation graph is fixed.

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace intooa::baselines {

/// Dense affine layer y = W x + b with cached activations for backprop.
class Linear {
 public:
  /// Xavier/Glorot-uniform initialization.
  Linear(std::size_t in_dim, std::size_t out_dim, util::Rng& rng);

  std::size_t in_dim() const { return in_dim_; }
  std::size_t out_dim() const { return out_dim_; }

  /// Forward pass; caches `x` for the next backward() call.
  std::vector<double> forward(std::span<const double> x);

  /// Backward pass for the most recent forward(): accumulates dL/dW and
  /// dL/db into the internal gradient buffers and returns dL/dx.
  std::vector<double> backward(std::span<const double> grad_out);

  /// Zeroes the accumulated gradients (call once per minibatch).
  void zero_grad();

  /// Flattened views used by the Adam optimizer: parameters then biases.
  std::vector<double*> parameters();
  std::vector<double*> gradients();

 private:
  std::size_t in_dim_;
  std::size_t out_dim_;
  std::vector<double> w_;       // row-major out_dim x in_dim
  std::vector<double> b_;
  std::vector<double> gw_;
  std::vector<double> gb_;
  std::vector<double> last_x_;  // cached input
};

/// ReLU activation with cached mask.
class Relu {
 public:
  std::vector<double> forward(std::span<const double> x);
  std::vector<double> backward(std::span<const double> grad_out) const;

 private:
  std::vector<bool> mask_;
};

/// Adam optimizer over an arbitrary set of parameter/gradient pointers.
class Adam {
 public:
  explicit Adam(double lr = 1e-3, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8);

  /// Registers the parameters of one module (call once per module before
  /// the first step).
  void attach(std::vector<double*> params, std::vector<double*> grads);

  /// One Adam update over all attached parameters.
  void step();

 private:
  double lr_, beta1_, beta2_, eps_;
  long t_ = 0;
  std::vector<double*> params_;
  std::vector<double*> grads_;
  std::vector<double> m_;
  std::vector<double> v_;
};

/// Numerically stable softmax over a contiguous span.
std::vector<double> softmax(std::span<const double> logits);

}  // namespace intooa::baselines
