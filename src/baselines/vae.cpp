#include "baselines/vae.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace intooa::baselines {

std::size_t onehot_dim() {
  std::size_t dim = 0;
  for (circuit::Slot slot : circuit::all_slots()) {
    dim += circuit::allowed_types(slot).size();
  }
  return dim;
}

std::vector<double> topology_onehot(const circuit::Topology& topology) {
  std::vector<double> x(onehot_dim(), 0.0);
  std::size_t offset = 0;
  for (circuit::Slot slot : circuit::all_slots()) {
    const auto allowed = circuit::allowed_types(slot);
    x[offset + circuit::allowed_index(slot, topology.type(slot))] = 1.0;
    offset += allowed.size();
  }
  return x;
}

circuit::Topology decode_topology(std::span<const double> scores) {
  if (scores.size() != onehot_dim()) {
    throw std::invalid_argument("decode_topology: bad score width");
  }
  std::array<circuit::SubcktType, circuit::kSlotCount> types{};
  std::size_t offset = 0;
  for (std::size_t s = 0; s < circuit::kSlotCount; ++s) {
    const auto allowed = circuit::allowed_types(circuit::all_slots()[s]);
    std::size_t best = 0;
    for (std::size_t i = 1; i < allowed.size(); ++i) {
      if (scores[offset + i] > scores[offset + best]) best = i;
    }
    types[s] = allowed[best];
    offset += allowed.size();
  }
  return circuit::Topology(types);
}

Vae::Vae(VaeConfig config, util::Rng& rng)
    : config_(config),
      enc1_(onehot_dim(), config.hidden_dim, rng),
      enc2_(config.hidden_dim, 2 * config.latent_dim, rng),
      dec1_(config.latent_dim, config.hidden_dim, rng),
      dec2_(config.hidden_dim, onehot_dim(), rng),
      adam_(config.learning_rate) {
  adam_.attach(enc1_.parameters(), enc1_.gradients());
  adam_.attach(enc2_.parameters(), enc2_.gradients());
  adam_.attach(dec1_.parameters(), dec1_.gradients());
  adam_.attach(dec2_.parameters(), dec2_.gradients());
}

double Vae::step(const std::vector<double>& x, util::Rng& rng) {
  const std::size_t latent = config_.latent_dim;

  // Forward.
  const auto h_enc = enc_act_.forward(enc1_.forward(x));
  const auto stats = enc2_.forward(h_enc);  // [mu, logvar]
  std::vector<double> mu(stats.begin(),
                         stats.begin() + static_cast<long>(latent));
  std::vector<double> logvar(stats.begin() + static_cast<long>(latent),
                             stats.end());
  std::vector<double> eps(latent), z(latent);
  for (std::size_t i = 0; i < latent; ++i) {
    // Clamp logvar for numerical safety early in training.
    logvar[i] = std::clamp(logvar[i], -8.0, 8.0);
    eps[i] = rng.normal();
    z[i] = mu[i] + eps[i] * std::exp(0.5 * logvar[i]);
  }
  const auto h_dec = dec_act_.forward(dec1_.forward(z));
  const auto logits = dec2_.forward(h_dec);

  // Loss: per-slot softmax CE + beta * KL, and its gradient w.r.t. logits.
  double ce = 0.0;
  std::vector<double> grad_logits(logits.size(), 0.0);
  std::size_t offset = 0;
  for (circuit::Slot slot : circuit::all_slots()) {
    const std::size_t width = circuit::allowed_types(slot).size();
    const auto probs = softmax(
        std::span<const double>(logits.data() + offset, width));
    for (std::size_t i = 0; i < width; ++i) {
      const double target = x[offset + i];
      if (target > 0.5) ce -= std::log(std::max(probs[i], 1e-12));
      grad_logits[offset + i] = probs[i] - target;
    }
    offset += width;
  }
  double kl = 0.0;
  for (std::size_t i = 0; i < latent; ++i) {
    kl += -0.5 * (1.0 + logvar[i] - mu[i] * mu[i] - std::exp(logvar[i]));
  }
  const double loss = ce + config_.beta * kl;

  // Backward.
  enc1_.zero_grad();
  enc2_.zero_grad();
  dec1_.zero_grad();
  dec2_.zero_grad();

  const auto grad_hdec = dec2_.backward(grad_logits);
  const auto grad_z = dec1_.backward(dec_act_.backward(grad_hdec));

  std::vector<double> grad_stats(2 * latent, 0.0);
  for (std::size_t i = 0; i < latent; ++i) {
    const double sigma = std::exp(0.5 * logvar[i]);
    // dz/dmu = 1; dz/dlogvar = 0.5 * eps * sigma.
    grad_stats[i] = grad_z[i] + config_.beta * mu[i];
    grad_stats[latent + i] = grad_z[i] * 0.5 * eps[i] * sigma +
                             config_.beta * 0.5 * (std::exp(logvar[i]) - 1.0);
  }
  enc1_.backward(enc_act_.backward(enc2_.backward(grad_stats)));

  adam_.step();
  return loss;
}

double Vae::train(util::Rng& rng) {
  std::vector<std::vector<double>> data;
  data.reserve(config_.train_samples);
  for (std::size_t i = 0; i < config_.train_samples; ++i) {
    data.push_back(topology_onehot(circuit::Topology::random(rng)));
  }
  double last_epoch_mean = 0.0;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(data);
    double acc = 0.0;
    for (const auto& x : data) acc += step(x, rng);
    last_epoch_mean = acc / static_cast<double>(data.size());
  }
  return last_epoch_mean;
}

std::vector<double> Vae::encode(const circuit::Topology& topology) {
  const auto x = topology_onehot(topology);
  const auto h = enc_act_.forward(enc1_.forward(x));
  const auto stats = enc2_.forward(h);
  return std::vector<double>(
      stats.begin(), stats.begin() + static_cast<long>(config_.latent_dim));
}

std::vector<double> Vae::decode_logits(std::span<const double> z) {
  if (z.size() != config_.latent_dim) {
    throw std::invalid_argument("Vae::decode_logits: bad latent size");
  }
  const auto h = dec_act_.forward(dec1_.forward(z));
  return dec2_.forward(h);
}

circuit::Topology Vae::decode(std::span<const double> z) {
  return decode_topology(decode_logits(z));
}

double Vae::reconstruction_accuracy(std::size_t samples, util::Rng& rng) {
  if (samples == 0) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    const circuit::Topology t = circuit::Topology::random(rng);
    if (decode(encode(t)) == t) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(samples);
}

}  // namespace intooa::baselines
