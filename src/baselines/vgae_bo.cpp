#include "baselines/vgae_bo.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "gp/acquisition.hpp"
#include "gp/joint_gp.hpp"
#include "util/log.hpp"

namespace intooa::baselines {

namespace {
constexpr double kMarginClamp = 3.0;

std::vector<double> gp_targets(const sizing::EvalPoint& point) {
  std::vector<double> t;
  t.reserve(1 + point.margins.size());
  t.push_back(point.objective());
  for (double m : point.margins) {
    t.push_back(std::clamp(m, -kMarginClamp, kMarginClamp));
  }
  return t;
}
}  // namespace

VgaeBo::VgaeBo(VgaeBoConfig config) : config_(config) {
  if (config_.init_topologies < 2) {
    throw std::invalid_argument("VgaeBo: need at least 2 initial topologies");
  }
  if (config_.candidates == 0) {
    throw std::invalid_argument("VgaeBo: need a non-empty candidate pool");
  }
}

core::OptimizationOutcome VgaeBo::run(core::TopologyEvaluator& evaluator,
                                      util::Rng& rng) const {
  // Train the autoencoder (its own cost, separate from the simulation
  // budget — as in the paper, where the VGAE trains offline).
  Vae vae(config_.vae, rng);
  const double final_loss = vae.train(rng);
  util::log_debug("VGAE-BO: VAE final epoch loss " + std::to_string(final_loss));
  return run(evaluator, rng, vae);
}

core::OptimizationOutcome VgaeBo::run(core::TopologyEvaluator& evaluator,
                                      util::Rng& rng, Vae& vae) const {
  std::unordered_set<std::size_t> visited;
  std::vector<std::vector<double>> latents;   // BO inputs
  std::vector<std::vector<double>> targets;   // BO targets
  std::vector<sizing::EvalPoint> points;

  auto observe = [&](const circuit::Topology& topo) {
    const auto& sized = evaluator.evaluate(topo);
    visited.insert(topo.index());
    latents.push_back(vae.encode(topo));
    targets.push_back(gp_targets(sized.best));
    points.push_back(sized.best);
  };

  // Stage 2: random initial dataset.
  std::size_t guard = 0;
  while (visited.size() < config_.init_topologies && guard < 100000) {
    const circuit::Topology topo = circuit::Topology::random(rng);
    if (visited.count(topo.index())) {
      ++guard;
      continue;
    }
    observe(topo);
  }

  // Stage 3: latent-space BO.
  gp::JointGp model;
  for (std::size_t iter = 0; iter < config_.iterations; ++iter) {
    const bool refit =
        iter % static_cast<std::size_t>(config_.refit_hyper_every) == 0;
    // Same invalid-objective softening as the other optimizers: keep the
    // latent GP's resolution on the structurally valid landscape.
    std::vector<std::vector<double>> fit_targets = targets;
    double worst_valid = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (points[i].perf.valid) {
        worst_valid = std::min(worst_valid, targets[i][0]);
      }
    }
    if (std::isfinite(worst_valid)) {
      for (std::size_t i = 0; i < points.size(); ++i) {
        if (!points[i].perf.valid) fit_targets[i][0] = worst_valid - 1.0;
      }
    }
    model.fit(latents, fit_targets, refit);

    bool have_feasible = false;
    double best_objective = 0.0;
    std::size_t best_idx = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (points[i].feasible &&
          (!have_feasible || points[i].objective() > best_objective)) {
        have_feasible = true;
        best_objective = points[i].objective();
        best_idx = i;
      }
    }

    // Candidate latents: half prior samples, half perturbations of the
    // incumbent's latent; scored by wEI, decoded best-first until an
    // unvisited topology appears.
    struct Scored {
      std::vector<double> z;
      double score;
    };
    std::vector<Scored> scored;
    scored.reserve(config_.candidates);
    const std::vector<double>& anchor =
        have_feasible ? latents[best_idx] : latents.front();
    for (std::size_t c = 0; c < config_.candidates; ++c) {
      std::vector<double> z(config_.vae.latent_dim);
      if (c % 2 == 0) {
        for (auto& v : z) v = rng.normal(0.0, config_.prior_sigma);
      } else {
        for (std::size_t k = 0; k < z.size(); ++k) {
          z[k] = anchor[k] + rng.normal(0.0, 0.3);
        }
      }
      const gp::JointPrediction pred = model.predict(z);
      gp::WeiInputs in;
      in.objective_mean = pred.mean[0];
      in.objective_variance = pred.variance[0];
      in.best_feasible = best_objective;
      in.have_feasible = have_feasible;
      std::array<double, circuit::Spec::kConstraintCount> cm{}, cv{};
      for (std::size_t k = 0; k < cm.size(); ++k) {
        cm[k] = pred.mean[k + 1];
        cv[k] = pred.variance[k + 1];
      }
      in.constraint_means = cm;
      in.constraint_variances = cv;
      scored.push_back({std::move(z), gp::weighted_ei(in)});
    }
    std::sort(scored.begin(), scored.end(),
              [](const Scored& a, const Scored& b) { return a.score > b.score; });

    // Decode best-first; the many-to-one decoder often collapses onto
    // visited topologies — skip those (they cost nothing, per the shared
    // visited rule) and take the first fresh decode.
    bool advanced = false;
    for (const Scored& s : scored) {
      const circuit::Topology topo = vae.decode(s.z);
      if (visited.count(topo.index())) continue;
      observe(topo);
      advanced = true;
      break;
    }
    if (!advanced) {
      // Whole pool decoded to visited designs: fall back to a random
      // unvisited topology so the budget is still spent.
      std::size_t tries = 0;
      while (tries++ < 10000) {
        const circuit::Topology topo = circuit::Topology::random(rng);
        if (!visited.count(topo.index())) {
          observe(topo);
          break;
        }
      }
    }
  }

  core::OptimizationOutcome outcome;
  const auto best_feasible = evaluator.best_feasible();
  const auto best_any =
      best_feasible ? best_feasible : evaluator.best_overall();
  outcome.success = best_feasible.has_value();
  outcome.best_index = best_any;
  if (best_any) {
    const auto& record = evaluator.history()[*best_any];
    outcome.best_topology = record.topology;
    outcome.best_point = record.sized.best;
    outcome.best_values = record.sized.best_values;
  }
  return outcome;
}

}  // namespace intooa::baselines
