#pragma once
// gm/Id lookup tables: the tabulated-characteristic interface through
// which the mapping flow consumes the MOS model, mirroring how real gm/Id
// design kits tabulate simulated device curves. The tables are generated
// once from the analytic model of mos.hpp and queried by interpolation —
// so swapping in measured foundry curves would only change the table
// contents, not the flow.

#include <vector>

#include "xtor/mos.hpp"

namespace intooa::xtor {

/// Tabulated gm/Id characteristic over a log grid of inversion
/// coefficients.
class GmIdLut {
 public:
  /// Builds the table for `tech` with `points` samples of IC in
  /// [ic_min, ic_max] (log-spaced).
  explicit GmIdLut(const TechParams& tech, std::size_t points = 128,
                   double ic_min = 1e-3, double ic_max = 1e2);

  /// gm/Id at inversion coefficient `ic` (log-linear interpolation;
  /// clamped at the table ends).
  double gm_over_id(double ic) const;

  /// Inversion coefficient achieving `gm_over_id` (inverse interpolation;
  /// throws std::invalid_argument outside the tabulated range).
  double ic(double gm_over_id) const;

  /// Current density Id/(W/L) [A] at `ic`.
  double current_density(double ic) const;

  std::size_t size() const { return ic_grid_.size(); }
  const TechParams& tech() const { return tech_; }

 private:
  TechParams tech_;
  std::vector<double> ic_grid_;     // ascending
  std::vector<double> gmid_grid_;   // descending (gm/Id falls with IC)
};

}  // namespace intooa::xtor
