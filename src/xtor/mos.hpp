#pragma once
// All-region (EKV-style) MOS model used to generate synthetic gm/Id
// characteristics and to size devices during behavioral-to-transistor
// mapping (Sec. II-C / IV-D). Foundry models are proprietary, so the
// repo derives the gm/Id lookup tables from this continuous analytic
// model instead (see DESIGN.md substitution table); the mapping flow —
// target gm/Id -> inversion coefficient -> W/L -> small-signal parasitics
// — is the same one the paper's transistor mapping [16] uses.

#include <string>

namespace intooa::xtor {

/// Synthetic 180nm-class technology constants.
struct TechParams {
  double n = 1.3;            ///< subthreshold slope factor
  double ut = 0.0258;        ///< thermal voltage [V] at 300 K
  double mu_cox = 200e-6;    ///< mobility * Cox [A/V^2] (NMOS-ish)
  /// Channel-length modulation: lambda = lambda0/L[um]. 0.065 puts the
  /// per-stage transistor gain just below the behavioral model's A0, so
  /// mapped designs lose (a little) gain, as in the paper's Table V.
  double lambda0_um = 0.065;
  /// Capacitance densities. Deliberately on the heavy side of a 180nm
  /// node so that mapped designs carry at least the parasitic burden the
  /// behavioral Co model assumed — the transistor level should degrade
  /// performance (Table V), not flatter it.
  double cox_f_per_um2 = 12e-15;  ///< gate capacitance density [F/um^2]
  double cov_f_per_um = 0.9e-15;  ///< overlap capacitance [F/um]
  double cj_f_per_um = 2.4e-15;   ///< junction capacitance [F/um]

  /// Specific current I_spec = 2 n mu_cox Ut^2 [A] (per unit W/L).
  double specific_current() const;
};

/// gm/Id of the EKV model at inversion coefficient `ic`:
///   gm/Id = 1 / (n Ut (sqrt(ic + 0.25) + 0.5)).
/// Weak inversion (ic -> 0) approaches 1/(n Ut); strong inversion falls as
/// 1/sqrt(ic).
double gm_over_id_of_ic(double ic, const TechParams& tech);

/// Inverse of gm_over_id_of_ic (closed form). Throws std::invalid_argument
/// when the target exceeds the weak-inversion limit.
double ic_for_gm_over_id(double gm_over_id, const TechParams& tech);

/// A sized transistor's small-signal operating point.
struct Device {
  std::string name;
  double w_um = 0.0;
  double l_um = 0.0;
  double id = 0.0;    ///< drain bias current [A]
  double gm = 0.0;    ///< transconductance [S]
  double gds = 0.0;   ///< output conductance [S]
  double cgs = 0.0;   ///< [F]
  double cgd = 0.0;   ///< [F]
  double cdb = 0.0;   ///< [F]

  /// One-line summary ("M1 W=12.3u L=0.5u Id=6.7u gm=100u ...").
  std::string to_string() const;
};

/// Sizes a device to realize transconductance `gm` at bias efficiency
/// `gm_over_id` with channel length `l_um`, and fills in the small-signal
/// parasitics from the technology constants.
Device size_device(const std::string& name, double gm, double gm_over_id,
                   double l_um, const TechParams& tech);

}  // namespace intooa::xtor
