#include "xtor/gmid_lut.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "la/grid.hpp"

namespace intooa::xtor {

GmIdLut::GmIdLut(const TechParams& tech, std::size_t points, double ic_min,
                 double ic_max)
    : tech_(tech) {
  if (points < 2) throw std::invalid_argument("GmIdLut: need >= 2 points");
  if (!(ic_min > 0.0) || !(ic_max > ic_min)) {
    throw std::invalid_argument("GmIdLut: bad ic range");
  }
  ic_grid_ = la::logspace(ic_min, ic_max, points);
  gmid_grid_.reserve(points);
  for (double ic : ic_grid_) {
    gmid_grid_.push_back(gm_over_id_of_ic(ic, tech_));
  }
}

double GmIdLut::gm_over_id(double ic) const {
  if (ic <= ic_grid_.front()) return gmid_grid_.front();
  if (ic >= ic_grid_.back()) return gmid_grid_.back();
  const auto it = std::upper_bound(ic_grid_.begin(), ic_grid_.end(), ic);
  const std::size_t hi = static_cast<std::size_t>(it - ic_grid_.begin());
  const std::size_t lo = hi - 1;
  const double t = (std::log(ic) - std::log(ic_grid_[lo])) /
                   (std::log(ic_grid_[hi]) - std::log(ic_grid_[lo]));
  return gmid_grid_[lo] + t * (gmid_grid_[hi] - gmid_grid_[lo]);
}

double GmIdLut::ic(double gm_over_id) const {
  // gmid_grid_ is strictly decreasing in IC.
  if (gm_over_id > gmid_grid_.front() || gm_over_id < gmid_grid_.back()) {
    throw std::invalid_argument("GmIdLut::ic: gm/Id outside tabulated range");
  }
  // Binary search on the descending table.
  std::size_t lo = 0, hi = gmid_grid_.size() - 1;
  while (hi - lo > 1) {
    const std::size_t mid = (lo + hi) / 2;
    if (gmid_grid_[mid] >= gm_over_id) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double t =
      (gmid_grid_[lo] - gm_over_id) / (gmid_grid_[lo] - gmid_grid_[hi]);
  return std::exp(std::log(ic_grid_[lo]) +
                  t * (std::log(ic_grid_[hi]) - std::log(ic_grid_[lo])));
}

double GmIdLut::current_density(double ic) const {
  return tech_.specific_current() * ic;
}

}  // namespace intooa::xtor
