#include "xtor/mos.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/table.hpp"

namespace intooa::xtor {

double TechParams::specific_current() const {
  return 2.0 * n * mu_cox * ut * ut;
}

double gm_over_id_of_ic(double ic, const TechParams& tech) {
  if (ic < 0.0) throw std::invalid_argument("gm_over_id_of_ic: negative ic");
  return 1.0 / (tech.n * tech.ut * (std::sqrt(ic + 0.25) + 0.5));
}

double ic_for_gm_over_id(double gm_over_id, const TechParams& tech) {
  if (gm_over_id <= 0.0) {
    throw std::invalid_argument("ic_for_gm_over_id: non-positive target");
  }
  const double weak_limit = 1.0 / (tech.n * tech.ut);
  if (gm_over_id >= weak_limit) {
    throw std::invalid_argument(
        "ic_for_gm_over_id: target exceeds the weak-inversion limit " +
        std::to_string(weak_limit));
  }
  const double kappa = 1.0 / (gm_over_id * tech.n * tech.ut);
  // kappa = sqrt(ic + 0.25) + 0.5  =>  ic = (kappa - 0.5)^2 - 0.25.
  return (kappa - 0.5) * (kappa - 0.5) - 0.25;
}

std::string Device::to_string() const {
  std::ostringstream out;
  out << name << " W=" << util::fmt_si(w_um * 1e-6) << " L="
      << util::fmt_si(l_um * 1e-6) << " Id=" << util::fmt_si(id) << " gm="
      << util::fmt_si(gm) << " gds=" << util::fmt_si(gds) << " cgs="
      << util::fmt_si(cgs);
  return out.str();
}

Device size_device(const std::string& name, double gm, double gm_over_id,
                   double l_um, const TechParams& tech) {
  if (gm <= 0.0) throw std::invalid_argument("size_device: gm must be > 0");
  if (l_um <= 0.0) throw std::invalid_argument("size_device: L must be > 0");

  Device d;
  d.name = name;
  d.l_um = l_um;
  d.gm = gm;
  d.id = gm / gm_over_id;

  const double ic = ic_for_gm_over_id(gm_over_id, tech);
  const double w_over_l = d.id / (tech.specific_current() * ic);
  d.w_um = w_over_l * l_um;

  const double lambda = tech.lambda0_um / l_um;
  d.gds = lambda * d.id;
  d.cgs = (2.0 / 3.0) * d.w_um * l_um * tech.cox_f_per_um2 +
          tech.cov_f_per_um * d.w_um;
  d.cgd = tech.cov_f_per_um * d.w_um;
  d.cdb = tech.cj_f_per_um * d.w_um;
  return d;
}

}  // namespace intooa::xtor
