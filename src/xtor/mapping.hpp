#pragma once
// Behavioral-to-transistor mapping (Sec. II-C / IV-D, after [16]): the
// amplifier stage at vin becomes a differential pair with current-mirror
// load; every other transconductor becomes a common-source stage with a
// current-source load. Device sizes come from the gm/Id lookup tables; the
// transistor-level small-signal netlist (gm, gds, Cgs, Cgd, Cdb per
// device) is then evaluated by the same MNA simulator. The added
// parasitics and bias overheads produce the FoM drop relative to the
// behavioral level that Table V reports.

#include <span>
#include <string>
#include <vector>

#include "circuit/behavioral.hpp"
#include "circuit/netlist.hpp"
#include "circuit/spec.hpp"
#include "circuit/topology.hpp"
#include "xtor/gmid_lut.hpp"

namespace intooa::xtor {

/// Mapping options.
struct MappingConfig {
  TechParams tech;
  double gm_over_id = 8.0;       ///< bias point for signal devices (matches the behavioral power model)
  double load_gm_over_id = 10.0; ///< mirror/current-source loads run hotter
  double l_signal_um = 0.5;
  double l_load_um = 1.0;
  /// Bias-distribution overhead: total supply current is scaled by this
  /// factor (current mirrors, bias branches).
  double bias_overhead = 1.15;
  /// Wiring/routing capacitance at every cell output [F]. Layout
  /// parasitics exist at both abstraction levels; without them the mapped
  /// netlist would be *faster* than the behavioral model that already
  /// budgeted for them, inverting the Table V degradation trend.
  double wiring_cap = 150e-15;
};

/// One mapped transconductor cell and its devices.
struct MappedCell {
  std::string name;        ///< e.g. "gm1" or "v1-vout.gm"
  bool differential = false;  ///< true for the input stage
  std::vector<Device> devices;
  double supply_current = 0.0;  ///< current drawn from Vdd by this cell
};

/// Complete transistor-level design.
struct TransistorDesign {
  circuit::Netlist netlist;
  std::vector<MappedCell> cells;
  double supply_current = 0.0;  ///< total, including bias overhead

  /// Total transistor count.
  std::size_t device_count() const;

  /// Multi-line sizing report.
  std::string to_string() const;
};

/// Maps a sized behavioral design to the transistor level. `values` is the
/// behavioral parameter vector in make_schema(topology, cfg) order.
TransistorDesign map_to_transistor(const circuit::Topology& topology,
                                   std::span<const double> values,
                                   const circuit::BehavioralConfig& cfg,
                                   const MappingConfig& mapping = {});

/// Maps and evaluates in one step: transistor-level AC analysis with the
/// shared simulator; power is Vdd times the design's total supply current.
circuit::Performance evaluate_transistor(
    const circuit::Topology& topology, std::span<const double> values,
    const circuit::BehavioralConfig& cfg, const MappingConfig& mapping = {});

}  // namespace intooa::xtor
