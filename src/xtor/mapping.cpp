#include "xtor/mapping.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "circuit/circuit_graph.hpp"
#include "la/lu.hpp"
#include "sim/metrics.hpp"
#include "util/table.hpp"

namespace intooa::xtor {

namespace {

/// Stamps one mapped transconductor cell into the netlist:
///   - differential input stage: diff pair + current-mirror load,
///   - otherwise: common-source driver + current-source load.
/// The small-signal elements stamped are the VCCS, the output resistance
/// 1/(gds_driver + gds_load), the lumped output capacitance, the driver's
/// input capacitance, and (for common-source cells) the real Cgd Miller
/// coupling between control and output.
MappedCell stamp_gm_cell(circuit::Netlist& net, const std::string& name,
                         circuit::NetNode ctrl, circuit::NetNode out,
                         double gm_signed, bool differential,
                         const MappingConfig& mapping) {
  const double gm = std::fabs(gm_signed);
  const circuit::NetNode gnd = net.node("gnd");
  MappedCell cell;
  cell.name = name;
  cell.differential = differential;

  if (differential) {
    const Device m_in =
        size_device(name + ".M1/2", gm, mapping.gm_over_id,
                    mapping.l_signal_um, mapping.tech);
    const double load_gm = m_in.id * mapping.load_gm_over_id;
    const Device m_load =
        size_device(name + ".M3/4", load_gm, mapping.load_gm_over_id,
                    mapping.l_load_um, mapping.tech);
    cell.devices = {m_in, m_load};
    cell.supply_current = 2.0 * m_in.id;  // tail current

    net.add_vccs(name, out, gnd, ctrl, gnd, gm_signed, 0.0);
    net.add_resistor(name + ".ro", out, gnd, 1.0 / (m_in.gds + m_load.gds));
    // Output: drain junctions of one input device and one mirror device,
    // plus half the mirror gate capacitance (mirror-pole approximation).
    const double cout = m_in.cdb + m_in.cgd + m_load.cdb + m_load.cgd +
                        0.5 * (2.0 * m_load.cgs) + mapping.wiring_cap;
    net.add_capacitor(name + ".co", out, gnd, cout);
    // Input loading of the pair.
    net.add_capacitor(name + ".ci", ctrl, gnd, m_in.cgs + m_in.cgd);
    return cell;
  }

  const Device m_drv = size_device(name + ".Mn", gm, mapping.gm_over_id,
                                   mapping.l_signal_um, mapping.tech);
  const double load_gm = m_drv.id * mapping.load_gm_over_id;
  const Device m_load =
      size_device(name + ".Mp", load_gm, mapping.load_gm_over_id,
                  mapping.l_load_um, mapping.tech);
  cell.devices = {m_drv, m_load};
  cell.supply_current = m_drv.id;

  net.add_vccs(name, out, gnd, ctrl, gnd, gm_signed, 0.0);
  net.add_resistor(name + ".ro", out, gnd, 1.0 / (m_drv.gds + m_load.gds));
  net.add_capacitor(name + ".co", out, gnd,
                    m_drv.cdb + m_load.cdb + m_load.cgd + mapping.wiring_cap);
  net.add_capacitor(name + ".ci", ctrl, gnd, m_drv.cgs);
  // The driver's gate-drain overlap is a true feedback element.
  net.add_capacitor(name + ".cgd", ctrl, out, m_drv.cgd);
  return cell;
}

}  // namespace

std::size_t TransistorDesign::device_count() const {
  std::size_t count = 0;
  for (const auto& cell : cells) {
    // A differential cell's device list stores M1/M2 and M3/M4 pairs once.
    count += cell.differential ? 2 * cell.devices.size() + 1  // + tail
                               : cell.devices.size();
  }
  return count;
}

std::string TransistorDesign::to_string() const {
  std::ostringstream out;
  out << "transistor-level design: " << device_count() << " devices, "
      << util::fmt_si(supply_current) << "A supply current\n";
  for (const auto& cell : cells) {
    out << "  [" << cell.name << (cell.differential ? " diff" : " cs")
        << "] I=" << util::fmt_si(cell.supply_current) << "A\n";
    for (const auto& d : cell.devices) out << "    " << d.to_string() << "\n";
  }
  return out.str();
}

TransistorDesign map_to_transistor(const circuit::Topology& topology,
                                   std::span<const double> values,
                                   const circuit::BehavioralConfig& cfg,
                                   const MappingConfig& mapping) {
  const circuit::ParamSchema schema = circuit::make_schema(topology, cfg);
  if (values.size() != schema.size()) {
    throw std::invalid_argument("map_to_transistor: values size mismatch");
  }

  TransistorDesign design;
  circuit::Netlist& net = design.netlist;
  const circuit::NetNode gnd = net.node("gnd");
  const circuit::NetNode vin = net.node("vin");
  const circuit::NetNode v1 = net.node("v1");
  const circuit::NetNode v2 = net.node("v2");
  const circuit::NetNode vout = net.node("vout");

  net.add_vsource("in", vin, gnd, 1.0);

  // Fixed stages: the vin stage maps to a differential pair, the others to
  // common-source stages.
  const circuit::NetNode stage_out[3] = {v1, v2, vout};
  const circuit::NetNode stage_in[3] = {vin, v1, v2};
  for (int i = 0; i < 3; ++i) {
    const double gm = values[static_cast<std::size_t>(i)];
    const double gm_signed =
        (circuit::kStagePolarity[i] == circuit::Polarity::Pos) ? gm : -gm;
    design.cells.push_back(stamp_gm_cell(net, "gm" + std::to_string(i + 1),
                                         stage_in[i], stage_out[i], gm_signed,
                                         /*differential=*/i == 0, mapping));
  }

  net.add_capacitor("CL", vout, gnd, cfg.load_cap);

  // Variable subcircuits: passives copy over unchanged; transconductors
  // map to common-source cells.
  for (circuit::Slot slot : circuit::all_slots()) {
    const circuit::SubcktType type = topology.type(slot);
    if (type == circuit::SubcktType::None) continue;
    const std::string base = circuit::slot_name(slot);
    const auto [na, nb] = circuit::slot_nodes(slot);
    const circuit::NetNode a = net.node(circuit::node_name(na));
    const circuit::NetNode b = net.node(circuit::node_name(nb));
    const std::string prefix = base + ".";

    const double r_value = circuit::has_resistor(type)
                               ? values[schema.index_of(prefix + "R")]
                               : 0.0;
    const double c_value = circuit::has_capacitor(type)
                               ? values[schema.index_of(prefix + "C")]
                               : 0.0;

    switch (type) {
      case circuit::SubcktType::R:
        net.add_resistor(prefix + "R", a, b, r_value);
        continue;
      case circuit::SubcktType::C:
        net.add_capacitor(prefix + "C", a, b, c_value);
        continue;
      case circuit::SubcktType::RCp:
        net.add_resistor(prefix + "R", a, b, r_value);
        net.add_capacitor(prefix + "C", a, b, c_value);
        continue;
      case circuit::SubcktType::RCs: {
        const circuit::NetNode mid = net.node(prefix + "m");
        net.add_resistor(prefix + "R", a, mid, r_value);
        net.add_capacitor(prefix + "C", mid, b, c_value);
        continue;
      }
      default:
        break;
    }

    const circuit::SubcktStructure s = circuit::structure_of(type);
    const circuit::NetNode ctrl = (s.direction == circuit::Direction::Fwd) ? a : b;
    const circuit::NetNode out = (s.direction == circuit::Direction::Fwd) ? b : a;
    const double gm_value = values[schema.index_of(prefix + "gm")];
    const double gm_signed =
        (s.polarity == circuit::Polarity::Pos) ? gm_value : -gm_value;

    if (!s.has_passive) {
      design.cells.push_back(
          stamp_gm_cell(net, prefix + "gm", ctrl, out, gm_signed, false,
                        mapping));
      continue;
    }
    if (s.combine == circuit::Combine::Parallel) {
      design.cells.push_back(
          stamp_gm_cell(net, prefix + "gm", ctrl, out, gm_signed, false,
                        mapping));
      if (s.passive == circuit::PassiveKind::R) {
        net.add_resistor(prefix + "R", a, b, r_value);
      } else {
        net.add_capacitor(prefix + "C", a, b, c_value);
      }
      continue;
    }
    const circuit::NetNode mid = net.node(prefix + "m");
    design.cells.push_back(
        stamp_gm_cell(net, prefix + "gm", ctrl, mid, gm_signed, false,
                      mapping));
    if (s.passive == circuit::PassiveKind::R) {
      net.add_resistor(prefix + "Rs", mid, out, r_value);
    } else {
      net.add_capacitor(prefix + "Cs", mid, out, c_value);
    }
  }

  // GMIN at every node for low-frequency robustness, as at the behavioral
  // level.
  for (circuit::NetNode n = 1; n < net.node_count(); ++n) {
    net.add_resistor("gmin" + std::to_string(n), n, gnd, 1.0 / cfg.gmin);
  }

  double total = 0.0;
  for (const auto& cell : design.cells) total += cell.supply_current;
  design.supply_current = total * mapping.bias_overhead;
  return design;
}

circuit::Performance evaluate_transistor(const circuit::Topology& topology,
                                         std::span<const double> values,
                                         const circuit::BehavioralConfig& cfg,
                                         const MappingConfig& mapping) {
  const TransistorDesign design =
      map_to_transistor(topology, values, cfg, mapping);
  try {
    const sim::AcSweep sweep = sim::run_ac(design.netlist, "vout");
    return sim::extract_performance(sweep,
                                    cfg.vdd * design.supply_current);
  } catch (const std::runtime_error& e) {
    // Singular system, RHP-pole instability, or eigensolver failure: an
    // invalid design, not a harness error.
    circuit::Performance perf;
    perf.power_w = cfg.vdd * design.supply_current;
    perf.failure = e.what();
    return perf;
  }
}

}  // namespace intooa::xtor
