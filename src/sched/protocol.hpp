#pragma once
// Payload codecs for the job-control messages (svc protocol minor
// revision 2, MsgType::SubmitJob .. MsgType::JobList). The framing, the
// Hello/HelloOk handshake and Error/Busy replies are svc/protocol.hpp's;
// this header only encodes/decodes the scheduler payloads, reusing the
// JobSpec/JobInfo fragment codecs of sched/job.hpp. Every message opens
// with the client-chosen u64 request id, matching the svc convention, so
// replies can be correlated on pipelined connections.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sched/job.hpp"

namespace intooa::sched {

/// SubmitJob: request_id | JobSpec.
struct SubmitJobMsg {
  std::uint64_t request_id = 0;
  JobSpec spec;
};

/// SubmitOk: request_id | assigned job id.
struct SubmitOkMsg {
  std::uint64_t request_id = 0;
  std::uint64_t job_id = 0;
};

/// QueueFull: request_id | retry hint (ms).
struct QueueFullMsg {
  std::uint64_t request_id = 0;
  std::uint32_t retry_after_ms = 0;
};

/// JobStatusRequest / CancelJob: request_id | job id.
struct JobIdMsg {
  std::uint64_t request_id = 0;
  std::uint64_t job_id = 0;
};

/// JobStatusResponse: request_id | JobInfo.
struct JobStatusMsg {
  std::uint64_t request_id = 0;
  JobInfo info;
};

/// ListJobs: request_id | tenant filter ("" = all tenants).
struct ListJobsMsg {
  std::uint64_t request_id = 0;
  std::string tenant;
};

/// JobList: request_id | count | JobInfo x count.
struct JobListMsg {
  std::uint64_t request_id = 0;
  std::vector<JobInfo> jobs;
};

std::string encode_submit_job(const SubmitJobMsg& msg);
std::optional<SubmitJobMsg> decode_submit_job(std::string_view payload);

std::string encode_submit_ok(const SubmitOkMsg& msg);
std::optional<SubmitOkMsg> decode_submit_ok(std::string_view payload);

std::string encode_queue_full(const QueueFullMsg& msg);
std::optional<QueueFullMsg> decode_queue_full(std::string_view payload);

std::string encode_job_id_msg(const JobIdMsg& msg);
std::optional<JobIdMsg> decode_job_id_msg(std::string_view payload);

std::string encode_job_status(const JobStatusMsg& msg);
std::optional<JobStatusMsg> decode_job_status(std::string_view payload);

std::string encode_list_jobs(const ListJobsMsg& msg);
std::optional<ListJobsMsg> decode_list_jobs(std::string_view payload);

std::string encode_job_list(const JobListMsg& msg);
std::optional<JobListMsg> decode_job_list(std::string_view payload);

}  // namespace intooa::sched
