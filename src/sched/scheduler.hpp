#pragma once
// The campaign-job scheduler: a bounded worker pool dispatching job units
// (one unit = one whole campaign run — the checkpoint boundary) under
//
//   * strict priority across bands: a pending unit of a higher JobSpec
//     priority is always dispatched before any lower one. When a worker
//     freed by a running lower-priority job is handed to a higher band
//     instead, that is a preemption — the lower job's progress is safe in
//     its checkpoints and its remaining units are simply requeued behind
//     the band (preemption = checkpoint + requeue, never mid-run abort).
//   * weighted fair share within a band: each tenant accrues virtual
//     service (nominal simulation cost of its dispatched units divided by
//     its configured weight); the eligible tenant with the least virtual
//     service dispatches next. A 3:1-weighted tenant pair under
//     saturation therefore completes simulations in a 3:1 ratio.
//   * per-tenant quotas on concurrently running units (simulation
//     concurrency), independent of share.
//   * bounded queue: submissions past max_queued_jobs get QueueFull plus
//     a retry hint instead of unbounded buffering.
//
// Durability: every accepted job, completed unit and terminal state is
// journaled (sched/journal.hpp); construction replays the journal and
// requeues every non-terminal job minus its proven-done units, whose
// checkpoints the workload finds on disk. Completed jobs therefore produce
// byte-identical outputs whether they ran uninterrupted or across a
// SIGKILL/restart.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "sched/job.hpp"
#include "sched/journal.hpp"

namespace intooa::sched {

/// One dispatchable unit of a job: run `run_index` of campaign `spec`.
struct UnitRef {
  std::string spec;
  std::uint32_t run_index = 0;
  std::uint32_t unit_index = 0;  ///< dense index within the job
};

struct UnitResult {
  std::uint64_t simulations = 0;  ///< nominal cost, reported in JobInfo
};

/// What the scheduler runs. The production implementation executes
/// campaign runs (sched/campaign_workload.hpp); tests substitute fakes.
/// run_unit/finalize are called concurrently from worker threads and must
/// be thread-safe; a throw fails the whole job (Failed + message).
class Workload {
 public:
  virtual ~Workload() = default;
  /// Rejects a malformed spec by throwing std::invalid_argument; called
  /// under submit() before the job is accepted or journaled.
  virtual void validate(const JobSpec& spec) = 0;
  /// Runs one unit to completion (including publishing its checkpoint —
  /// the scheduler journals UnitDone only after this returns).
  virtual UnitResult run_unit(const JobInfo& job, const UnitRef& unit) = 0;
  /// All units done: assemble the job's final outputs (campaign CSVs).
  virtual void finalize(const JobInfo& job) = 0;
};

struct SchedulerConfig {
  std::size_t workers = 2;
  /// Non-terminal jobs admitted before submit() answers QueueFull.
  std::size_t max_queued_jobs = 64;
  /// Retry hint carried in QueueFull replies.
  std::uint32_t retry_after_ms = 1000;
  /// Fair-share weight per tenant; absent tenants weigh 1.0.
  std::map<std::string, double> tenant_weights;
  /// Max concurrently running units per tenant; absent or 0 = unlimited.
  std::map<std::string, std::size_t> tenant_quotas;
  /// Journal file; "" disables persistence (unit tests of pure policy).
  std::string journal_path;
};

/// Outcome of submit().
struct SubmitResult {
  bool accepted = false;
  std::uint64_t job_id = 0;        ///< valid when accepted
  std::uint32_t retry_after_ms = 0;  ///< backoff hint when not
};

class Scheduler {
 public:
  /// Opens and replays the journal (non-terminal jobs are requeued and
  /// counted in sched.journal.recovered_jobs), then starts the workers.
  Scheduler(SchedulerConfig config, std::shared_ptr<Workload> workload);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Validates and enqueues a job; QueueFull past the depth bound.
  /// Thread-safe (called from service connection threads).
  SubmitResult submit(JobSpec spec);

  /// Snapshot of one job; nullopt for an unknown id.
  std::optional<JobInfo> status(std::uint64_t job_id) const;

  /// Requests cancellation. Queued units are dropped immediately; running
  /// units finish their current campaign run (checkpoint boundary), then
  /// the job turns Canceled. A job whose finalize() is already running is
  /// past the point of no return and completes. False for an unknown id;
  /// true otherwise (idempotent, a terminal job stays terminal).
  bool cancel(std::uint64_t job_id);

  /// Snapshots of all jobs (submission order), optionally one tenant's.
  std::vector<JobInfo> list(const std::string& tenant = "") const;

  /// Blocks until every job is terminal or `timeout_ms` elapsed (0 = poll
  /// once). True when all jobs are terminal.
  bool wait_idle(int timeout_ms) const;

  /// Stops dispatching, finishes in-flight units (journaling their
  /// UnitDone), joins the workers. Idempotent; the destructor calls it.
  /// Queued work stays journaled for the next process.
  void stop();

  const SchedulerConfig& config() const { return config_; }

 private:
  struct Job {
    JobInfo info;
    std::vector<UnitRef> units;
    std::vector<bool> done;
    std::deque<std::uint32_t> pending;  ///< unit indices not yet dispatched
    std::size_t running_units = 0;
    bool cancel_requested = false;
    /// All units are done and finalize() has not been claimed yet. Set by
    /// the worker that lands the last unit — or at recovery, when the
    /// journal already proves every unit done (crash after the last
    /// UnitDone but before the terminal StateChanged).
    bool needs_finalize = false;
    /// A worker is inside workload finalize() for this job. cancel() only
    /// records the request; the finalizer picks the terminal state.
    bool finalizing = false;
    /// A unit failed while others were in flight: once they land the job
    /// turns Failed, not Canceled, even though cancel_requested is set to
    /// stop further dispatch.
    bool fail_pending = false;
  };

  void worker_loop();
  /// Picks the next unit under the lock; nullopt when nothing is eligible.
  /// `prev_job`/`prev_priority` describe the unit this worker just
  /// finished, for preemption accounting.
  std::optional<std::pair<std::uint64_t, std::uint32_t>> pick_unit(
      std::uint64_t prev_job, std::uint32_t prev_priority, bool had_prev);
  /// Claims a job whose units are all done and which still needs its
  /// finalize() run (lock held); nullopt when there is none.
  std::optional<std::uint64_t> claim_finalize();
  /// Runs workload finalize() for a claimed job outside the lock, then
  /// settles its terminal state (skipped if something else — it cannot be
  /// cancel(), which defers while `finalizing` — already made it terminal).
  void run_finalize(std::uint64_t job_id);
  double tenant_weight(const std::string& tenant) const;
  std::size_t tenant_quota(const std::string& tenant) const;
  bool unit_eligible(const Job& job) const;
  /// Transitions to a terminal state + journal + gauges. Lock held.
  void finish_job(Job& job, JobState state, const std::string& message);
  void update_gauges();
  /// Builds the unit list of a spec (spec-major, run-minor order).
  static std::vector<UnitRef> units_for(const JobSpec& spec);

  SchedulerConfig config_;
  std::shared_ptr<Workload> workload_;
  std::unique_ptr<JobJournal> journal_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;          ///< workers: work or stop
  mutable std::condition_variable idle_cv_;  ///< waiters: job turned terminal
  std::map<std::uint64_t, Job> jobs_;        ///< ordered = submission order
  std::map<std::string, double> tenant_service_;  ///< virtual service/band
  std::uint64_t next_job_id_ = 1;
  bool stopping_ = false;

  /// Serializes the join phase of stop(): every caller blocks here until
  /// the workers are actually joined, so concurrent stop()s neither race
  /// join() on the same std::thread nor return before shutdown completed.
  std::mutex join_mutex_;
  std::vector<std::thread> workers_;
};

}  // namespace intooa::sched
