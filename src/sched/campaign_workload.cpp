#include "sched/campaign_workload.hpp"

#include <stdexcept>

#include "campaign/campaign.hpp"
#include "circuit/spec.hpp"
#include "obs/span.hpp"
#include "util/log.hpp"

namespace intooa::sched {

CampaignWorkload::CampaignWorkload(CampaignWorkloadConfig config)
    : config_(std::move(config)) {}

std::string CampaignWorkload::job_dir(std::uint64_t job_id) const {
  return config_.jobs_dir + "/job-" + std::to_string(job_id);
}

void CampaignWorkload::validate(const JobSpec& spec) {
  if (spec.specs.empty()) {
    throw std::invalid_argument("job has no specs");
  }
  if (spec.params.runs == 0) {
    throw std::invalid_argument("job has zero runs");
  }
  if (spec.tenant.empty()) {
    throw std::invalid_argument("job has an empty tenant");
  }
  if (!campaign::method_from_name(spec.method)) {
    throw std::invalid_argument("unknown method \"" + spec.method + "\"");
  }
  for (const auto& name : spec.specs) {
    circuit::spec_by_name(name);  // throws std::invalid_argument if unknown
  }
}

UnitResult CampaignWorkload::run_unit(const JobInfo& job, const UnitRef& unit) {
  const campaign::Method method = *campaign::method_from_name(job.spec.method);
  const campaign::CampaignParams& params = job.spec.params;
  const std::string dir = job_dir(job.id);
  const std::uint64_t seed =
      campaign::run_seed(params, method, unit.spec, unit.run_index);
  util::log_info("sched: running unit",
                 {{"job", job.id},
                  {"spec", unit.spec},
                  {"run", unit.run_index},
                  {"seed", seed}});
  campaign::run_single(
      unit.spec, method, params, seed,
      campaign::run_checkpoint_path(dir, unit.spec, method, params,
                                    unit.run_index),
      campaign::run_token(unit.spec, method, params, unit.run_index, seed),
      config_.store, config_.remote);
  UnitResult result;
  result.simulations = params.budget();
  return result;
}

void CampaignWorkload::finalize(const JobInfo& job) {
  const campaign::Method method = *campaign::method_from_name(job.spec.method);
  const campaign::CampaignParams& params = job.spec.params;
  const std::string dir = job_dir(job.id);
  for (const auto& spec_name : job.spec.specs) {
    campaign::CampaignSet set;
    set.spec = spec_name;
    set.method = method;
    set.params = params;
    set.runs.reserve(params.runs);
    for (std::size_t r = 0; r < params.runs; ++r) {
      const std::uint64_t seed =
          campaign::run_seed(params, method, spec_name, r);
      // Every unit already published its checkpoint; run_single restores
      // it and re-derives the RunResult without any simulation work.
      set.runs.push_back(campaign::run_single(
          spec_name, method, params, seed,
          campaign::run_checkpoint_path(dir, spec_name, method, params, r),
          campaign::run_token(spec_name, method, params, r, seed),
          config_.store, config_.remote));
    }
    const std::string csv =
        campaign::campaign_csv_path(dir, spec_name, method, params);
    campaign::save_campaign_csv(csv, set);
    util::log_info("sched: campaign CSV written",
                   {{"job", job.id}, {"path", csv}});
  }
}

}  // namespace intooa::sched
