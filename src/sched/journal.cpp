#include "sched/journal.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/crc32.hpp"
#include "util/fs.hpp"
#include "util/log.hpp"
#include "util/wire.hpp"

namespace intooa::sched {

namespace {

constexpr char kMagic[16] = {'i', 'n', 't', 'o', 'o', 'a', '-', 's',
                             'c', 'h', 'e', 'd', 'j', 'r', 'n', 'l'};
constexpr std::size_t kHeaderSize = sizeof(kMagic) + 2 * sizeof(std::uint32_t);
/// Sanity cap on one event payload; a "length" beyond this is corruption
/// (the largest real event is a Submitted with a few spec names).
constexpr std::uint32_t kMaxPayload = 1u << 20;

enum class EventKind : std::uint8_t {
  Submitted = 1,
  UnitDone = 2,
  StateChanged = 3,
};

std::string header_bytes() {
  std::string out(kHeaderSize, '\0');
  std::memcpy(out.data(), kMagic, sizeof(kMagic));
  const std::uint32_t version = kJournalVersion;
  std::memcpy(out.data() + sizeof(kMagic), &version, sizeof(version));
  return out;  // trailing u32 stays zero (reserved)
}

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

std::uint64_t file_size(int fd) {
  struct stat st{};
  if (::fstat(fd, &st) != 0) fail("sched: journal fstat");
  return static_cast<std::uint64_t>(st.st_size);
}

bool pread_exact(int fd, void* buf, std::size_t n, std::uint64_t offset) {
  auto* out = static_cast<char*>(buf);
  while (n > 0) {
    const ssize_t got = ::pread(fd, out, n, static_cast<off_t>(offset));
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;
    out += got;
    offset += static_cast<std::uint64_t>(got);
    n -= static_cast<std::size_t>(got);
  }
  return true;
}

void pwrite_exact(int fd, const void* buf, std::size_t n,
                  std::uint64_t offset) {
  const auto* data = static_cast<const char*>(buf);
  while (n > 0) {
    const ssize_t put = ::pwrite(fd, data, n, static_cast<off_t>(offset));
    if (put < 0) {
      if (errno == EINTR) continue;
      fail("sched: journal pwrite");
    }
    data += put;
    offset += static_cast<std::uint64_t>(put);
    n -= static_cast<std::size_t>(put);
  }
}

obs::Counter& events_counter() {
  static obs::Counter& c = obs::registry().counter("sched.journal.events");
  return c;
}
obs::Counter& recovered_tail_counter() {
  static obs::Counter& c =
      obs::registry().counter("sched.journal.recovered_tail_bytes");
  return c;
}

/// Applies one intact event payload to the replay state. Returns false on
/// a structurally invalid payload — which, CRC having passed, means a
/// foreign or future-versioned writer; the caller truncates there, exactly
/// like a torn tail, so the journal never yields a half-understood state.
bool apply_event(std::string_view payload,
                 std::map<std::uint64_t, RecoveredJob>& jobs,
                 std::vector<std::uint64_t>& order, JournalRecovery& out) {
  util::WireReader reader(payload);
  std::uint8_t kind_raw = 0;
  if (!reader.u8(kind_raw)) return false;
  switch (static_cast<EventKind>(kind_raw)) {
    case EventKind::Submitted: {
      JobInfo info;
      if (!read_job_info(reader, info) || !reader.done()) return false;
      if (jobs.count(info.id) != 0) return false;  // duplicate id
      order.push_back(info.id);
      jobs[info.id].info = std::move(info);
      out.next_job_id = std::max(out.next_job_id, jobs[order.back()].info.id + 1);
      return true;
    }
    case EventKind::UnitDone: {
      std::uint64_t job_id = 0, sims = 0;
      std::uint32_t unit = 0;
      if (!reader.u64(job_id) || !reader.u32(unit) || !reader.u64(sims) ||
          !reader.done()) {
        return false;
      }
      const auto it = jobs.find(job_id);
      if (it == jobs.end()) return false;  // event before its Submitted
      RecoveredJob& job = it->second;
      if (std::find(job.done_units.begin(), job.done_units.end(), unit) ==
          job.done_units.end()) {
        job.done_units.push_back(unit);
        job.info.units_done =
            static_cast<std::uint32_t>(job.done_units.size());
        job.info.simulations += sims;
      }
      return true;
    }
    case EventKind::StateChanged: {
      std::uint64_t job_id = 0;
      std::uint8_t state_raw = 0;
      std::string message;
      if (!reader.u64(job_id) || !reader.u8(state_raw) ||
          state_raw > static_cast<std::uint8_t>(JobState::Failed) ||
          !reader.str(message) || !reader.done()) {
        return false;
      }
      const auto it = jobs.find(job_id);
      if (it == jobs.end()) return false;
      it->second.info.state = static_cast<JobState>(state_raw);
      it->second.info.message = std::move(message);
      return true;
    }
  }
  return false;
}

}  // namespace

JobJournal::JobJournal(std::string path) : path_(std::move(path)) {}

JobJournal::~JobJournal() {
  if (fd_ >= 0) {
    ::flock(fd_, LOCK_UN);
    ::close(fd_);
  }
}

std::unique_ptr<JobJournal> JobJournal::open(const std::string& path,
                                             JournalRecovery& recovery) {
  INTOOA_SPAN("sched.journal.open");
  recovery = JournalRecovery{};
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);

  auto journal = std::unique_ptr<JobJournal>(new JobJournal(path));
  journal->fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (journal->fd_ < 0) fail("sched: journal open " + path);
  // Exclusive for the journal's lifetime: unlike the eval store (shared by
  // concurrent writers per append), exactly one scheduler owns a journal.
  if (::flock(journal->fd_, LOCK_EX | LOCK_NB) != 0) {
    throw std::runtime_error("sched: journal " + path +
                             " is locked by another scheduler process");
  }

  std::uint64_t size = file_size(journal->fd_);
  if (size == 0) {
    const std::string header = header_bytes();
    pwrite_exact(journal->fd_, header.data(), header.size(), 0);
    util::fsync_fd(journal->fd_, path);
    journal->end_offset_ = header.size();
    return journal;
  }
  if (size < kHeaderSize) {
    throw std::runtime_error("sched: journal " + path +
                             " is shorter than its header");
  }
  char magic[sizeof(kMagic)];
  std::uint32_t version = 0;
  if (!pread_exact(journal->fd_, magic, sizeof(magic), 0) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("sched: " + path + " is not a job journal");
  }
  if (!pread_exact(journal->fd_, &version, sizeof(version), sizeof(kMagic)) ||
      version != kJournalVersion) {
    throw std::runtime_error("sched: journal " + path + " has version " +
                             std::to_string(version) + ", expected " +
                             std::to_string(kJournalVersion));
  }

  // Replay: scan intact frames, truncate at the first torn or corrupt one.
  std::map<std::uint64_t, RecoveredJob> jobs;
  std::vector<std::uint64_t> order;
  std::uint64_t offset = kHeaderSize;
  while (offset < size) {
    std::uint32_t frame[2] = {0, 0};  // length, crc
    if (size - offset < sizeof(frame)) break;
    if (!pread_exact(journal->fd_, frame, sizeof(frame), offset)) break;
    const std::uint32_t length = frame[0];
    if (length > kMaxPayload || size - offset - sizeof(frame) < length) break;
    std::string payload(length, '\0');
    if (!pread_exact(journal->fd_, payload.data(), length,
                     offset + sizeof(frame))) {
      break;
    }
    if (util::crc32(payload) != frame[1]) break;
    if (!apply_event(payload, jobs, order, recovery)) break;
    recovery.events += 1;
    offset += sizeof(frame) + length;
  }
  if (offset < size) {
    recovery.recovered_tail_bytes = size - offset;
    recovered_tail_counter().add(recovery.recovered_tail_bytes);
    util::log_warn("sched: journal tail truncated",
                   {{"path", path},
                    {"recovered_bytes", recovery.recovered_tail_bytes},
                    {"events", recovery.events}});
    if (::ftruncate(journal->fd_, static_cast<off_t>(offset)) != 0) {
      fail("sched: journal ftruncate");
    }
    util::fsync_fd(journal->fd_, path);
  }
  journal->end_offset_ = offset;

  recovery.jobs.reserve(order.size());
  for (const std::uint64_t id : order) {
    recovery.jobs.push_back(std::move(jobs[id]));
  }
  return journal;
}

void JobJournal::append(std::string_view payload) {
  if (payload.size() > kMaxPayload) {
    throw std::length_error("sched: journal event exceeds " +
                            std::to_string(kMaxPayload) + " bytes");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  std::string frame;
  frame.reserve(2 * sizeof(std::uint32_t) + payload.size());
  util::WireWriter writer(frame);
  writer.u32(static_cast<std::uint32_t>(payload.size()));
  writer.u32(util::crc32(payload));
  frame.append(payload);
  pwrite_exact(fd_, frame.data(), frame.size(), end_offset_);
  // fsync per event: a UnitDone the scheduler acted on (checkpoint already
  // published) must survive a crash, or restart would redo paid work.
  util::fsync_fd(fd_, path_);
  end_offset_ += frame.size();
  events_counter().add();
}

void JobJournal::submitted(const JobInfo& info) {
  std::string payload;
  util::WireWriter writer(payload);
  writer.u8(static_cast<std::uint8_t>(EventKind::Submitted));
  write_job_info(writer, info);
  append(payload);
}

void JobJournal::unit_done(std::uint64_t job_id, std::uint32_t unit_index,
                           std::uint64_t simulations) {
  std::string payload;
  util::WireWriter writer(payload);
  writer.u8(static_cast<std::uint8_t>(EventKind::UnitDone));
  writer.u64(job_id);
  writer.u32(unit_index);
  writer.u64(simulations);
  append(payload);
}

void JobJournal::state_changed(std::uint64_t job_id, JobState state,
                               const std::string& message) {
  std::string payload;
  util::WireWriter writer(payload);
  writer.u8(static_cast<std::uint8_t>(EventKind::StateChanged));
  writer.u64(job_id);
  writer.u8(static_cast<std::uint8_t>(state));
  writer.str(message);
  append(payload);
}

}  // namespace intooa::sched
