#include "sched/client.hpp"

#include <stdexcept>

#include "sched/protocol.hpp"
#include "util/log.hpp"
#include "util/version.hpp"

namespace intooa::sched {

namespace {

[[noreturn]] void protocol_error(
    const std::string& what,
    svc::TransportError::Kind kind = svc::TransportError::Kind::Protocol) {
  throw svc::TransportError(kind, "sched client: " + what);
}

/// Surfaces an Error reply as the appropriate exception: MalformedRequest
/// keeps its historical std::invalid_argument shape (a bad spec is a caller
/// bug), everything else becomes a RemoteError carrying the wire code so
/// api::Session can classify it (Draining is retryable, Internal is not).
[[noreturn]] void raise_error_reply(const svc::Frame& frame) {
  const auto error = svc::decode_error(frame.payload);
  if (!error) protocol_error("malformed Error reply");
  if (error->code == svc::ErrorCode::MalformedRequest) {
    throw std::invalid_argument(error->message);
  }
  throw svc::RemoteError(
      error->code, "sched client: " +
                       std::string(svc::error_code_name(error->code)) + ": " +
                       error->message);
}

}  // namespace

void JobClient::connect(const svc::Address& address) {
  fd_ = svc::connect_to(address);
  if (!svc::write_all(fd_.get(),
                      svc::encode_frame(svc::MsgType::Hello,
                                        svc::encode_hello()))) {
    fd_.reset();
    protocol_error("failed to send Hello",
                   svc::TransportError::Kind::ConnectionLost);
  }
  svc::Frame frame;
  const svc::ReadStatus hello_status = svc::read_frame(fd_.get(), frame,
                                                       10'000);
  if (hello_status != svc::ReadStatus::Ok) {
    fd_.reset();
    protocol_error("no handshake reply",
                   hello_status == svc::ReadStatus::Timeout
                       ? svc::TransportError::Kind::Timeout
                       : svc::TransportError::Kind::ConnectionLost);
  }
  if (frame.type == svc::MsgType::Error) {
    fd_.reset();
    raise_error_reply(frame);
  }
  if (frame.type != svc::MsgType::HelloOk) {
    fd_.reset();
    protocol_error("expected HelloOk");
  }
  const auto hello = svc::decode_hello_ok(frame.payload);
  if (!hello || hello->version != svc::kProtocolVersion) {
    fd_.reset();
    protocol_error("bad HelloOk");
  }
  server_minor_ = hello->minor;
  if (server_minor_ < 2) {
    fd_.reset();
    protocol_error("server minor revision " + std::to_string(server_minor_) +
                       " predates job control (needs >= 2)",
                   svc::TransportError::Kind::Unsupported);
  }
  util::log_info("sched: connected",
                 {{"server", address.to_string()},
                  {"server_minor", server_minor_},
                  {"build", util::version_string()}});
}

svc::Frame JobClient::roundtrip(svc::MsgType type, std::string_view payload) {
  if (!fd_.valid()) {
    protocol_error("not connected", svc::TransportError::Kind::ConnectionLost);
  }
  if (!svc::write_all(fd_.get(), svc::encode_frame(type, payload))) {
    fd_.reset();
    protocol_error("connection lost on send",
                   svc::TransportError::Kind::ConnectionLost);
  }
  svc::Frame frame;
  // Scheduler operations are state mutations, not evaluations: a minute of
  // silence means the daemon is gone, not busy.
  const svc::ReadStatus status = svc::read_frame(fd_.get(), frame, 60'000);
  if (status != svc::ReadStatus::Ok) {
    fd_.reset();
    protocol_error("connection lost awaiting reply",
                   status == svc::ReadStatus::Timeout
                       ? svc::TransportError::Kind::Timeout
                       : svc::TransportError::Kind::ConnectionLost);
  }
  return frame;
}

SubmitOutcome JobClient::submit(const JobSpec& spec) {
  const std::uint64_t id = next_request_id();
  const svc::Frame reply =
      roundtrip(svc::MsgType::SubmitJob, encode_submit_job({id, spec}));
  SubmitOutcome outcome;
  if (reply.type == svc::MsgType::SubmitOk) {
    const auto ok = decode_submit_ok(reply.payload);
    if (!ok || ok->request_id != id) protocol_error("bad SubmitOk");
    outcome.accepted = true;
    outcome.job_id = ok->job_id;
    return outcome;
  }
  if (reply.type == svc::MsgType::QueueFull) {
    const auto full = decode_queue_full(reply.payload);
    if (!full || full->request_id != id) protocol_error("bad QueueFull");
    outcome.retry_after_ms = full->retry_after_ms;
    return outcome;
  }
  if (reply.type == svc::MsgType::Error) raise_error_reply(reply);
  protocol_error("unexpected reply to SubmitJob");
}

std::optional<JobInfo> JobClient::status(std::uint64_t job_id) {
  const std::uint64_t id = next_request_id();
  const svc::Frame reply = roundtrip(svc::MsgType::JobStatusRequest,
                                     encode_job_id_msg({id, job_id}));
  if (reply.type == svc::MsgType::JobStatusResponse) {
    const auto msg = decode_job_status(reply.payload);
    if (!msg || msg->request_id != id) {
      protocol_error("bad JobStatusResponse");
    }
    return msg->info;
  }
  if (reply.type == svc::MsgType::Error) {
    const auto error = svc::decode_error(reply.payload);
    if (error && error->code == svc::ErrorCode::MalformedRequest) {
      return std::nullopt;  // unknown job id
    }
    raise_error_reply(reply);
  }
  protocol_error("unexpected reply to JobStatusRequest");
}

std::optional<JobInfo> JobClient::cancel(std::uint64_t job_id) {
  const std::uint64_t id = next_request_id();
  const svc::Frame reply =
      roundtrip(svc::MsgType::CancelJob, encode_job_id_msg({id, job_id}));
  if (reply.type == svc::MsgType::JobStatusResponse) {
    const auto msg = decode_job_status(reply.payload);
    if (!msg || msg->request_id != id) {
      protocol_error("bad JobStatusResponse");
    }
    return msg->info;
  }
  if (reply.type == svc::MsgType::Error) {
    const auto error = svc::decode_error(reply.payload);
    if (error && error->code == svc::ErrorCode::MalformedRequest) {
      return std::nullopt;
    }
    raise_error_reply(reply);
  }
  protocol_error("unexpected reply to CancelJob");
}

std::vector<JobInfo> JobClient::list(const std::string& tenant) {
  const std::uint64_t id = next_request_id();
  const svc::Frame reply =
      roundtrip(svc::MsgType::ListJobs, encode_list_jobs({id, tenant}));
  if (reply.type == svc::MsgType::JobList) {
    const auto msg = decode_job_list(reply.payload);
    if (!msg || msg->request_id != id) protocol_error("bad JobList");
    return msg->jobs;
  }
  if (reply.type == svc::MsgType::Error) raise_error_reply(reply);
  protocol_error("unexpected reply to ListJobs");
}

bool JobClient::ping() {
  const std::uint64_t nonce = next_request_id();
  const svc::Frame reply =
      roundtrip(svc::MsgType::Ping, svc::encode_ping(nonce));
  return reply.type == svc::MsgType::Pong &&
         svc::decode_ping(reply.payload) == nonce;
}

}  // namespace intooa::sched
