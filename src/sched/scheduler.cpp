#include "sched/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/log.hpp"

namespace intooa::sched {

namespace {

obs::Counter& submitted_counter() {
  static obs::Counter& c = obs::registry().counter("sched.submitted");
  return c;
}
obs::Counter& queue_full_counter() {
  static obs::Counter& c = obs::registry().counter("sched.queue_full");
  return c;
}
obs::Counter& units_done_counter() {
  static obs::Counter& c = obs::registry().counter("sched.units_done");
  return c;
}
obs::Counter& preemptions_counter() {
  static obs::Counter& c = obs::registry().counter("sched.preemptions");
  return c;
}
obs::Counter& recovered_jobs_counter() {
  static obs::Counter& c =
      obs::registry().counter("sched.journal.recovered_jobs");
  return c;
}
obs::Counter& completed_counter() {
  static obs::Counter& c = obs::registry().counter("sched.jobs_completed");
  return c;
}
obs::Counter& canceled_counter() {
  static obs::Counter& c = obs::registry().counter("sched.jobs_canceled");
  return c;
}
obs::Counter& failed_counter() {
  static obs::Counter& c = obs::registry().counter("sched.jobs_failed");
  return c;
}
obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& g = obs::registry().gauge("sched.queue_depth");
  return g;
}
obs::Gauge& running_jobs_gauge() {
  static obs::Gauge& g = obs::registry().gauge("sched.running_jobs");
  return g;
}

}  // namespace

std::vector<UnitRef> Scheduler::units_for(const JobSpec& spec) {
  // Spec-major, run-minor: the same order run_or_load fans runs out in,
  // so unit indices are stable and human-readable in logs.
  std::vector<UnitRef> units;
  units.reserve(spec.unit_count());
  std::uint32_t index = 0;
  for (const auto& name : spec.specs) {
    for (std::size_t r = 0; r < spec.params.runs; ++r) {
      units.push_back(UnitRef{name, static_cast<std::uint32_t>(r), index});
      ++index;
    }
  }
  return units;
}

Scheduler::Scheduler(SchedulerConfig config, std::shared_ptr<Workload> workload)
    : config_(std::move(config)), workload_(std::move(workload)) {
  if (config_.workers == 0) config_.workers = 1;
  if (config_.max_queued_jobs == 0) config_.max_queued_jobs = 1;

  if (!config_.journal_path.empty()) {
    JournalRecovery recovery;
    journal_ = JobJournal::open(config_.journal_path, recovery);
    next_job_id_ = recovery.next_job_id;
    for (RecoveredJob& recovered : recovery.jobs) {
      Job job;
      job.info = std::move(recovered.info);
      if (!job_state_terminal(job.info.state)) {
        // Requeue minus the proven-done units (their checkpoints exist:
        // UnitDone is journaled only after the checkpoint publish).
        job.info.state = JobState::Queued;
        job.units = units_for(job.info.spec);
        job.info.units_total = static_cast<std::uint32_t>(job.units.size());
        job.done.assign(job.units.size(), false);
        for (const std::uint32_t unit : recovered.done_units) {
          if (unit < job.done.size()) job.done[unit] = true;
        }
        for (std::uint32_t u = 0; u < job.units.size(); ++u) {
          if (!job.done[u]) job.pending.push_back(u);
        }
        // Crash window between the last UnitDone and the terminal
        // StateChanged: every unit is journaled done, so no unit is ever
        // eligible again — the job must go straight to finalize or it
        // would stay non-terminal forever.
        if (job.pending.empty()) job.needs_finalize = true;
        recovered_jobs_counter().add();
        util::log_info("sched: recovered job from journal",
                       {{"job", job.info.id},
                        {"tenant", job.info.spec.tenant},
                        {"units_done", job.info.units_done},
                        {"units_total", job.info.units_total}});
      }
      jobs_.emplace(job.info.id, std::move(job));
    }
  }
  update_gauges();

  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Scheduler::~Scheduler() { stop(); }

void Scheduler::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  // join_mutex_ serializes the join phase: concurrent stop()s all block
  // until the first caller finished joining, then find nothing joinable.
  std::lock_guard<std::mutex> join_lock(join_mutex_);
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

double Scheduler::tenant_weight(const std::string& tenant) const {
  const auto it = config_.tenant_weights.find(tenant);
  return it == config_.tenant_weights.end() || it->second <= 0.0 ? 1.0
                                                                 : it->second;
}

std::size_t Scheduler::tenant_quota(const std::string& tenant) const {
  const auto it = config_.tenant_quotas.find(tenant);
  return it == config_.tenant_quotas.end() ? 0 : it->second;  // 0 = unlimited
}

bool Scheduler::unit_eligible(const Job& job) const {
  if (job_state_terminal(job.info.state)) return false;
  if (job.cancel_requested) return false;
  if (job.pending.empty()) return false;
  const std::size_t quota = tenant_quota(job.info.spec.tenant);
  if (quota > 0) {
    // Count the tenant's currently running units against its quota.
    std::size_t running = 0;
    for (const auto& [id, other] : jobs_) {
      if (other.info.spec.tenant == job.info.spec.tenant) {
        running += other.running_units;
      }
    }
    if (running >= quota) return false;
  }
  return true;
}

SubmitResult Scheduler::submit(JobSpec spec) {
  SubmitResult result;
  result.retry_after_ms = config_.retry_after_ms;
  workload_->validate(spec);  // throws std::invalid_argument on a bad spec

  JobInfo info;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t active = 0;
    for (const auto& [id, job] : jobs_) {
      if (!job_state_terminal(job.info.state)) ++active;
    }
    if (stopping_ || active >= config_.max_queued_jobs) {
      queue_full_counter().add();
      return result;  // accepted = false + retry hint
    }
    info.id = next_job_id_++;
    info.spec = std::move(spec);
    info.units_total = static_cast<std::uint32_t>(info.spec.unit_count());

    // Journal before the job becomes visible to workers: a UnitDone must
    // never precede its Submitted in the log (replay truncates there).
    // The fsync rides inside the submit lock — submissions are rare next
    // to unit completions, which journal outside this lock.
    if (journal_) journal_->submitted(info);

    Job job;
    job.info = info;
    job.units = units_for(info.spec);
    job.done.assign(job.units.size(), false);
    for (std::uint32_t u = 0; u < job.units.size(); ++u) {
      job.pending.push_back(u);
    }
    // A newly active tenant starts from the lead pack, not from zero:
    // otherwise a long-idle tenant would monopolize the workers until its
    // stale service caught up.
    double min_active_service = 0.0;
    bool any_active = false;
    for (const auto& [id, other] : jobs_) {
      if (job_state_terminal(other.info.state)) continue;
      if (other.info.spec.tenant == info.spec.tenant) continue;
      const auto it = tenant_service_.find(other.info.spec.tenant);
      const double service = it == tenant_service_.end() ? 0.0 : it->second;
      if (!any_active || service < min_active_service) {
        min_active_service = service;
        any_active = true;
      }
    }
    double& service = tenant_service_[info.spec.tenant];
    if (any_active) service = std::max(service, min_active_service);

    jobs_.emplace(info.id, std::move(job));
    submitted_counter().add();
    update_gauges();
  }
  work_cv_.notify_all();

  result.accepted = true;
  result.job_id = info.id;
  result.retry_after_ms = 0;
  util::log_info("sched: job submitted",
                 {{"job", info.id},
                  {"tenant", info.spec.tenant},
                  {"priority", info.spec.priority},
                  {"units", info.units_total}});
  return result;
}

std::optional<JobInfo> Scheduler::status(std::uint64_t job_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second.info;
}

bool Scheduler::cancel(std::uint64_t job_id) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(job_id);
    if (it == jobs_.end()) return false;
    Job& job = it->second;
    if (job_state_terminal(job.info.state)) return true;  // idempotent
    job.cancel_requested = true;
    job.pending.clear();
    if (job.finalizing) {
      // Too late: a worker is assembling the final outputs. Only record
      // the request — the finalizer settles the terminal state, so it is
      // never overwritten by a second terminal transition.
      job.info.message = "cancel requested during finalize";
    } else if (job.running_units == 0) {
      job.needs_finalize = false;  // an unclaimed finalize is cancelable
      finish_job(job, JobState::Canceled, "canceled");
    } else if (!job.fail_pending) {
      job.info.message = "cancel requested";
    }
    update_gauges();
  }
  work_cv_.notify_all();
  return true;
}

std::vector<JobInfo> Scheduler::list(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<JobInfo> jobs;
  for (const auto& [id, job] : jobs_) {
    if (!tenant.empty() && job.info.spec.tenant != tenant) continue;
    jobs.push_back(job.info);
  }
  return jobs;
}

bool Scheduler::wait_idle(int timeout_ms) const {
  const auto all_terminal = [this] {
    for (const auto& [id, job] : jobs_) {
      if (!job_state_terminal(job.info.state)) return false;
    }
    return true;
  };
  std::unique_lock<std::mutex> lock(mutex_);
  return idle_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                           all_terminal);
}

void Scheduler::finish_job(Job& job, JobState state,
                           const std::string& message) {
  job.info.state = state;
  job.info.message = message;
  if (journal_) journal_->state_changed(job.info.id, state, message);
  switch (state) {
    case JobState::Completed: completed_counter().add(); break;
    case JobState::Canceled: canceled_counter().add(); break;
    case JobState::Failed: failed_counter().add(); break;
    default: break;
  }
  util::log_info("sched: job " + std::string(job_state_name(state)),
                 {{"job", job.info.id},
                  {"tenant", job.info.spec.tenant},
                  {"units_done", job.info.units_done},
                  {"simulations", job.info.simulations},
                  {"preemptions", job.info.preemptions}});
  idle_cv_.notify_all();
}

void Scheduler::update_gauges() {
  std::size_t queued_units = 0, running = 0;
  for (const auto& [id, job] : jobs_) {
    queued_units += job.pending.size();
    if (job.running_units > 0) ++running;
  }
  queue_depth_gauge().set(static_cast<double>(queued_units));
  running_jobs_gauge().set(static_cast<double>(running));
  for (const auto& [tenant, service] : tenant_service_) {
    obs::registry().gauge("sched.tenant_service." + tenant).set(service);
  }
}

std::optional<std::pair<std::uint64_t, std::uint32_t>> Scheduler::pick_unit(
    std::uint64_t prev_job, std::uint32_t prev_priority, bool had_prev) {
  // Highest priority band first; within it, the eligible tenant with the
  // least weighted virtual service; within the tenant, the oldest job.
  Job* best = nullptr;
  double best_service = 0.0;
  for (auto& [id, job] : jobs_) {
    if (!unit_eligible(job)) continue;
    const auto it = tenant_service_.find(job.info.spec.tenant);
    const double service =
        (it == tenant_service_.end() ? 0.0 : it->second);
    if (best == nullptr || job.info.spec.priority > best->info.spec.priority ||
        (job.info.spec.priority == best->info.spec.priority &&
         service < best_service)) {
      best = &job;
      best_service = service;
    }
  }
  if (best == nullptr) return std::nullopt;

  // Preemption accounting: this worker just finished a unit of prev_job
  // (which checkpointed), prev_job still has pending work, and a strictly
  // higher band takes the freed worker anyway — that is one preemption
  // (checkpoint + requeue) charged to the preempted job.
  if (had_prev && best->info.id != prev_job &&
      best->info.spec.priority > prev_priority) {
    const auto prev_it = jobs_.find(prev_job);
    if (prev_it != jobs_.end() && !prev_it->second.pending.empty() &&
        !job_state_terminal(prev_it->second.info.state) &&
        !prev_it->second.cancel_requested) {
      prev_it->second.info.preemptions += 1;
      preemptions_counter().add();
      util::log_info("sched: job preempted at checkpoint boundary",
                     {{"job", prev_it->second.info.id},
                      {"by_job", best->info.id},
                      {"priority", prev_it->second.info.spec.priority},
                      {"by_priority", best->info.spec.priority}});
    }
  }

  const std::uint32_t unit_index = best->pending.front();
  best->pending.pop_front();
  best->running_units += 1;
  if (best->info.state == JobState::Queued) {
    best->info.state = JobState::Running;
  }
  // Accrue weighted virtual service at dispatch: cost of the unit over
  // the tenant's weight. Dispatch-time (not completion-time) accrual keeps
  // a tenant from racing ahead while its first units are still in flight.
  tenant_service_[best->info.spec.tenant] +=
      static_cast<double>(best->info.spec.unit_cost()) /
      tenant_weight(best->info.spec.tenant);
  obs::registry()
      .counter("sched.tenant_units." + best->info.spec.tenant)
      .add();
  update_gauges();
  return std::make_pair(best->info.id, unit_index);
}

std::optional<std::uint64_t> Scheduler::claim_finalize() {
  for (auto& [id, job] : jobs_) {
    if (!job.needs_finalize || job.finalizing) continue;
    if (job_state_terminal(job.info.state)) continue;
    job.needs_finalize = false;
    job.finalizing = true;
    // A job recovered with every unit already journaled done goes from
    // Queued straight to finalize without dispatching a single unit.
    if (job.info.state == JobState::Queued) {
      job.info.state = JobState::Running;
    }
    return id;
  }
  return std::nullopt;
}

void Scheduler::run_finalize(std::uint64_t job_id) {
  JobInfo info;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    info = jobs_.at(job_id).info;
  }
  bool finalize_failed = false;
  std::string finalize_error;
  try {
    INTOOA_SPAN("sched.finalize");
    workload_->finalize(info);
  } catch (const std::exception& e) {
    finalize_failed = true;
    finalize_error = e.what();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Job& job = jobs_.at(job_id);
    job.finalizing = false;
    // `finalizing` made cancel() defer, so nothing else can have turned
    // the job terminal — the check is belt-and-braces against ever
    // journaling a second terminal StateChanged.
    if (!job_state_terminal(job.info.state)) {
      finish_job(job, finalize_failed ? JobState::Failed : JobState::Completed,
                 finalize_failed ? "finalize: " + finalize_error : "");
    }
    update_gauges();
  }
  work_cv_.notify_all();
}

void Scheduler::worker_loop() {
  std::uint64_t prev_job = 0;
  std::uint32_t prev_priority = 0;
  bool had_prev = false;

  for (;;) {
    std::optional<std::uint64_t> finalize_job;
    std::optional<std::pair<std::uint64_t, std::uint32_t>> picked;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      for (;;) {
        if (stopping_) return;  // never pick new work while draining
        // Finalizes first: they complete a job (freeing its queue slot)
        // and are cheap next to a campaign unit.
        finalize_job = claim_finalize();
        if (finalize_job) break;
        {
          INTOOA_SPAN("sched.dispatch");
          picked = pick_unit(prev_job, prev_priority, had_prev);
        }
        had_prev = false;  // preemption accounting is one-shot per unit
        if (picked) break;
        work_cv_.wait(lock);
      }
    }

    if (finalize_job) {
      run_finalize(*finalize_job);
      had_prev = false;  // the freed worker went to a finalize, not a band
      continue;
    }

    const std::uint64_t job_id = picked->first;
    const std::uint32_t unit_index = picked->second;
    JobInfo info;
    UnitRef unit;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const Job& job = jobs_.at(job_id);
      info = job.info;
      unit = job.units[unit_index];
    }

    UnitResult result;
    bool unit_failed = false;
    std::string error;
    try {
      INTOOA_SPAN("sched.unit");
      result = workload_->run_unit(info, unit);
    } catch (const std::exception& e) {
      unit_failed = true;
      error = e.what();
    }
    // UnitDone is durable only after the unit (and its checkpoint) is:
    // the journal may claim less than the checkpoints prove (rerun is a
    // cheap restore) but never more.
    if (!unit_failed && journal_) {
      journal_->unit_done(job_id, unit_index, result.simulations);
    }

    {
      std::unique_lock<std::mutex> lock(mutex_);
      Job& job = jobs_.at(job_id);
      job.running_units -= 1;
      if (unit_failed) {
        const std::string message = unit.spec + " run " +
                                    std::to_string(unit.run_index) + ": " +
                                    error;
        job.pending.clear();
        if (job.running_units == 0) {
          finish_job(job, JobState::Failed, message);
        } else {
          // Fail once the in-flight units land. cancel_requested stops
          // further dispatch; fail_pending records that the terminal
          // state is Failed, whatever the message looks like.
          job.info.message = message;
          job.cancel_requested = true;
          job.fail_pending = true;
        }
      } else {
        if (!job.done[unit_index]) {
          job.done[unit_index] = true;
          job.info.units_done += 1;
          job.info.simulations += result.simulations;
          units_done_counter().add();
        }
        if (job.cancel_requested) {
          if (job.running_units == 0) {
            finish_job(job,
                       job.fail_pending ? JobState::Failed
                                        : JobState::Canceled,
                       job.info.message.empty() ? "canceled"
                                                : job.info.message);
          }
        } else if (job.info.units_done == job.info.units_total) {
          // The worker that freed up claims the finalize on its next pick
          // (claim_finalize runs before pick_unit), unless another idle
          // worker gets there first — either way exactly one does.
          job.needs_finalize = true;
        }
      }
      update_gauges();
    }
    // Quota slots, priority decisions and finalize claims changed: wake
    // the other workers.
    work_cv_.notify_all();

    prev_job = job_id;
    prev_priority = info.spec.priority;
    had_prev = true;
  }
}

}  // namespace intooa::sched
