#pragma once
// The production Workload: executes job units as campaign runs through the
// exact code path the benches use (campaign::run_single with run_seed /
// run_token / run_checkpoint_path), under a per-job cache directory. The
// finalize step assembles the per-(spec, method) campaign CSVs from the
// published checkpoints — every run_single there short-circuits on its
// checkpoint, so finalize costs no simulations — making a scheduled job's
// CSVs byte-identical to a standalone `--threads 1` bench run.

#include <memory>
#include <string>

#include "sched/scheduler.hpp"
#include "store/store.hpp"
#include "svc/client_pool.hpp"

namespace intooa::sched {

struct CampaignWorkloadConfig {
  /// Per-job state lives in `<jobs_dir>/job-<id>/` (checkpoints + CSVs).
  std::string jobs_dir = "sched-jobs";
  /// Optional shared persistent evaluation store (may be null).
  std::shared_ptr<store::EvalStore> store;
  /// Optional remote evaluation tier (may be null).
  std::shared_ptr<svc::ClientPool> remote;
};

class CampaignWorkload : public Workload {
 public:
  explicit CampaignWorkload(CampaignWorkloadConfig config);

  void validate(const JobSpec& spec) override;
  UnitResult run_unit(const JobInfo& job, const UnitRef& unit) override;
  void finalize(const JobInfo& job) override;

  /// The job's private cache directory (checkpoints and final CSVs).
  std::string job_dir(std::uint64_t job_id) const;

 private:
  CampaignWorkloadConfig config_;
};

}  // namespace intooa::sched
