#include "sched/job.hpp"

namespace intooa::sched {

std::string_view job_state_name(JobState state) {
  switch (state) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Completed: return "completed";
    case JobState::Canceled: return "canceled";
    case JobState::Failed: return "failed";
  }
  return "?";
}

bool job_state_terminal(JobState state) {
  return state == JobState::Completed || state == JobState::Canceled ||
         state == JobState::Failed;
}

namespace {

/// Raw state bytes outside the enum must never round-trip into a switch.
bool state_known(std::uint8_t raw) {
  return raw <= static_cast<std::uint8_t>(JobState::Failed);
}

}  // namespace

void write_job_spec(util::WireWriter& writer, const JobSpec& spec) {
  writer.str(spec.tenant);
  writer.u32(spec.priority);
  writer.str(spec.method);
  writer.u32(static_cast<std::uint32_t>(spec.specs.size()));
  for (const auto& name : spec.specs) writer.str(name);
  writer.u64(spec.params.runs);
  writer.u64(spec.params.init_topologies);
  writer.u64(spec.params.iterations);
  writer.u64(spec.params.pool);
  writer.u64(spec.params.sizing_init);
  writer.u64(spec.params.sizing_iterations);
  writer.u64(spec.params.seed);
}

bool read_job_spec(util::WireReader& reader, JobSpec& spec) {
  std::uint32_t spec_count = 0;
  if (!reader.str(spec.tenant) || !reader.u32(spec.priority) ||
      !reader.str(spec.method) || !reader.u32(spec_count)) {
    return false;
  }
  // Each spec name costs at least its 4-byte length prefix: a hostile
  // count cannot reserve more entries than the payload could carry.
  if (spec_count > reader.remaining() / sizeof(std::uint32_t)) return false;
  spec.specs.clear();
  spec.specs.reserve(spec_count);
  for (std::uint32_t i = 0; i < spec_count; ++i) {
    std::string name;
    if (!reader.str(name)) return false;
    spec.specs.push_back(std::move(name));
  }
  std::uint64_t runs = 0, init = 0, iters = 0, pool = 0, s_init = 0,
                s_iters = 0;
  if (!reader.u64(runs) || !reader.u64(init) || !reader.u64(iters) ||
      !reader.u64(pool) || !reader.u64(s_init) || !reader.u64(s_iters) ||
      !reader.u64(spec.params.seed)) {
    return false;
  }
  spec.params.runs = static_cast<std::size_t>(runs);
  spec.params.init_topologies = static_cast<std::size_t>(init);
  spec.params.iterations = static_cast<std::size_t>(iters);
  spec.params.pool = static_cast<std::size_t>(pool);
  spec.params.sizing_init = static_cast<std::size_t>(s_init);
  spec.params.sizing_iterations = static_cast<std::size_t>(s_iters);
  return true;
}

void write_job_info(util::WireWriter& writer, const JobInfo& info) {
  writer.u64(info.id);
  write_job_spec(writer, info.spec);
  writer.u8(static_cast<std::uint8_t>(info.state));
  writer.u32(info.units_total);
  writer.u32(info.units_done);
  writer.u64(info.simulations);
  writer.u32(info.preemptions);
  writer.str(info.message);
}

bool read_job_info(util::WireReader& reader, JobInfo& info) {
  std::uint8_t state = 0;
  if (!reader.u64(info.id) || !read_job_spec(reader, info.spec) ||
      !reader.u8(state) || !state_known(state) ||
      !reader.u32(info.units_total) || !reader.u32(info.units_done) ||
      !reader.u64(info.simulations) || !reader.u32(info.preemptions) ||
      !reader.str(info.message)) {
    return false;
  }
  info.state = static_cast<JobState>(state);
  return true;
}

std::string encode_job_spec(const JobSpec& spec) {
  std::string out;
  util::WireWriter writer(out);
  write_job_spec(writer, spec);
  return out;
}

std::optional<JobSpec> decode_job_spec(std::string_view payload) {
  util::WireReader reader(payload);
  JobSpec spec;
  if (!read_job_spec(reader, spec) || !reader.done()) return std::nullopt;
  return spec;
}

std::string encode_job_info(const JobInfo& info) {
  std::string out;
  util::WireWriter writer(out);
  write_job_info(writer, info);
  return out;
}

std::optional<JobInfo> decode_job_info(std::string_view payload) {
  util::WireReader reader(payload);
  JobInfo info;
  if (!read_job_info(reader, info) || !reader.done()) return std::nullopt;
  return info;
}

}  // namespace intooa::sched
