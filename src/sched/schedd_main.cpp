// intooa-schedd — the multi-tenant campaign scheduler daemon. Accepts
// campaign jobs over the svc protocol (SubmitJob/JobStatus/CancelJob/
// ListJobs, protocol minor 2), journals every accepted job to an append-
// only CRC-checked journal, and dispatches campaign runs onto a bounded
// worker pool under weighted fair share across tenants with strict-
// priority preemption at checkpoint boundaries. Kill it — even SIGKILL
// mid-run — and a restarted daemon replays the journal, requeues every
// non-terminal job minus its proven-done units, and finishes them to
// byte-identical campaign CSVs. docs/SCHEDULER.md has the full model; run
//
//   intooa-schedd --listen unix:/tmp/intooa-sched.sock --jobs-dir sched-jobs
//
// and drive it with `intooa-svc-client jobs ...`.
//
// Options: --listen ADDR (unix:PATH | tcp:HOST:PORT, default
//          unix:intooa-sched.sock) --workers N (campaign runs in flight,
//          default 2) --queue-depth N (jobs admitted before QueueFull,
//          default 64) --retry-hint-ms MS --jobs-dir DIR (per-job
//          checkpoints + CSVs, default sched-jobs) --journal FILE (default
//          <jobs-dir>/journal.bin) --store FILE (shared warm evaluation
//          store) --remote ADDR[,ADDR...] (evaluation tier)
//          --tenant-weights a=3,b=1 (fair-share weights, default 1)
//          --tenant-quotas a=2 (max concurrent runs per tenant, default
//          unlimited) --max-connections N --idle-timeout-ms MS   plus the
//          standard telemetry flags (--trace --metrics --log-level).
//
// SIGTERM/SIGINT drain: the listener refuses new work, in-flight campaign
// runs finish and journal their UnitDone, queued work stays journaled for
// the next process, and the daemon exits 0. A second signal force-exits.

#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <exception>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>

#include "campaign/campaign.hpp"
#include "obs/telemetry.hpp"
#include "sched/campaign_workload.hpp"
#include "sched/scheduler.hpp"
#include "sched/service.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/version.hpp"

namespace {

std::atomic<int> g_wake_fd{-1};
std::atomic<int> g_signal_count{0};

// Async-signal-safe: one byte on the self-pipe asks the listener to drain;
// a second signal while draining force-exits.
void on_signal(int sig) {
  if (g_signal_count.fetch_add(1, std::memory_order_relaxed) > 0) {
    _exit(128 + sig);
  }
  const int fd = g_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = write(fd, &byte, 1);
  }
}

/// Parses "a=3,b=1.5" into a map; throws std::invalid_argument on junk.
std::map<std::string, double> parse_assignments(const std::string& text,
                                                const char* flag) {
  std::map<std::string, double> out;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const std::string item = text.substr(start, comma - start);
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument(std::string("--") + flag +
                                  ": expected NAME=VALUE, got \"" + item +
                                  "\"");
    }
    try {
      out[item.substr(0, eq)] = std::stod(item.substr(eq + 1));
    } catch (const std::exception&) {
      throw std::invalid_argument(std::string("--") + flag +
                                  ": bad value in \"" + item + "\"");
    }
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace intooa;
  try {
    const util::Cli cli(argc, argv);
    cli.reject_unknown({"listen", "workers", "queue-depth", "retry-hint-ms",
                        "jobs-dir", "journal", "store", "remote",
                        "remote-inflight", "tenant-weights", "tenant-quotas",
                        "max-connections", "idle-timeout-ms", "trace",
                        "metrics", "log-level"});
    obs::BenchTelemetry telemetry(
        obs::TelemetryOptions::from_cli(cli, util::LogLevel::Info));

    sched::CampaignWorkloadConfig workload_config;
    workload_config.jobs_dir = cli.get("jobs-dir", "sched-jobs");
    workload_config.store = campaign::open_store_from_cli(cli);
    workload_config.remote = campaign::open_pool_from_cli(cli);

    sched::SchedulerConfig sched_config;
    sched_config.workers = cli.get_size("workers", 2);
    sched_config.max_queued_jobs = cli.get_size("queue-depth", 64);
    sched_config.retry_after_ms =
        static_cast<std::uint32_t>(cli.get_size("retry-hint-ms", 1000));
    sched_config.journal_path =
        cli.get("journal", workload_config.jobs_dir + "/journal.bin");
    sched_config.tenant_weights =
        parse_assignments(cli.get("tenant-weights", ""), "tenant-weights");
    for (const auto& [tenant, quota] :
         parse_assignments(cli.get("tenant-quotas", ""), "tenant-quotas")) {
      if (quota < 0) {
        throw std::invalid_argument("--tenant-quotas: negative quota for " +
                                    tenant);
      }
      sched_config.tenant_quotas[tenant] = static_cast<std::size_t>(quota);
    }

    sched::ServiceConfig svc_config;
    svc_config.address =
        svc::Address::parse(cli.get("listen", "unix:intooa-sched.sock"));
    svc_config.max_connections = cli.get_size("max-connections", 64);
    svc_config.idle_timeout_ms =
        static_cast<int>(cli.get_int("idle-timeout-ms", 60'000));

    util::log_info("intooa-schedd starting",
                   {{"jobs_dir", workload_config.jobs_dir},
                    {"journal", sched_config.journal_path},
                    {"build", util::version_string()}});

    // Construction replays the journal and resumes recovered jobs at once.
    sched::Scheduler scheduler(
        std::move(sched_config),
        std::make_shared<sched::CampaignWorkload>(std::move(workload_config)));
    sched::JobService service(std::move(svc_config), scheduler);
    service.bind();
    g_wake_fd.store(service.wake_fd(), std::memory_order_relaxed);

    struct sigaction action {};
    action.sa_handler = on_signal;
    sigemptyset(&action.sa_mask);
    sigaction(SIGTERM, &action, nullptr);
    sigaction(SIGINT, &action, nullptr);

    service.run();  // returns once the listener drained
    // Finish the in-flight campaign runs (their UnitDone is journaled);
    // queued units stay in the journal for the next process.
    scheduler.stop();
    util::log_info("intooa-schedd drained");
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "intooa-schedd: %s\n", error.what());
    return 1;
  }
}
