#pragma once
// intooa-schedd's network face: accepts svc-framed connections and speaks
// the job-control subset of the protocol (minor revision 2) — SubmitJob,
// JobStatusRequest, CancelJob, ListJobs, plus Ping and the shared
// Hello/HelloOk handshake. Connection handling mirrors svc::Server (one
// blocking reader thread per connection, poll-sliced reads so a silent
// client never delays a drain, self-pipe wakeup for signal handlers), but
// dispatch is synchronous on the connection thread: every operation is a
// sub-millisecond scheduler-state mutation — the heavy lifting happens on
// the Scheduler's own worker pool, not here.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sched/scheduler.hpp"
#include "svc/socket.hpp"

namespace intooa::sched {

struct ServiceConfig {
  svc::Address address;           ///< listen endpoint (unix or tcp)
  std::size_t max_connections = 64;
  int idle_timeout_ms = 60'000;   ///< close idle connections; <0 = never
};

/// Serves job control for one Scheduler. The Scheduler outlives the
/// service (jobs keep running after the listener stops).
class JobService {
 public:
  JobService(ServiceConfig config, Scheduler& scheduler);
  ~JobService();

  JobService(const JobService&) = delete;
  JobService& operator=(const JobService&) = delete;

  /// Binds and listens; separate from run() so callers know the endpoint
  /// accepts connections before clients start. Throws on bind failure.
  void bind();

  /// Accept loop; blocks until a drain completes (connections joined).
  void run();

  /// Stops accepting, refuses new requests with Error(draining), lets
  /// buffered requests get their replies, then run() returns. Thread-safe
  /// and idempotent; from a signal handler write a byte to wake_fd().
  void begin_drain();

  /// Write end of the self-pipe the accept loop watches (async-signal-
  /// safe). Valid after bind().
  int wake_fd() const { return wake_tx_.get(); }

  bool draining() const { return draining_.load(std::memory_order_acquire); }

 private:
  void handle_connection(svc::Fd fd, std::string peer);
  /// Joins and forgets connection threads that announced completion
  /// (threads_mutex_ must NOT be held). Called on each accept so a
  /// long-lived daemon serving many short connections stays bounded,
  /// instead of accumulating one finished-but-unjoined thread per
  /// connection until drain.
  void reap_finished_connections();
  /// Moves every connection thread out of the registry and joins it
  /// (drain and destructor).
  void join_all_connections();
  /// Dispatches one decoded frame; returns false when the connection must
  /// close.
  bool dispatch(int fd, const svc::Frame& frame);
  bool send_frame(int fd, svc::MsgType type, std::string_view payload);
  void send_error(int fd, std::uint64_t request_id, svc::ErrorCode code,
                  const std::string& message);

  ServiceConfig config_;
  Scheduler& scheduler_;
  svc::Fd listen_fd_;
  svc::Fd wake_rx_, wake_tx_;
  std::atomic<bool> draining_{false};
  std::atomic<std::size_t> open_connections_{0};
  std::mutex threads_mutex_;
  /// Live connection threads by id; a handler pushes its id onto
  /// finished_ids_ as its last act, and the accept loop (or drain) joins
  /// and erases it from here.
  std::map<std::uint64_t, std::thread> connection_threads_;
  std::vector<std::uint64_t> finished_ids_;
  std::uint64_t next_connection_id_ = 1;
};

}  // namespace intooa::sched
