#include "sched/protocol.hpp"

#include "util/wire.hpp"

namespace intooa::sched {

std::string encode_submit_job(const SubmitJobMsg& msg) {
  std::string out;
  util::WireWriter writer(out);
  writer.u64(msg.request_id);
  write_job_spec(writer, msg.spec);
  return out;
}

std::optional<SubmitJobMsg> decode_submit_job(std::string_view payload) {
  util::WireReader reader(payload);
  SubmitJobMsg msg;
  if (!reader.u64(msg.request_id) || !read_job_spec(reader, msg.spec) ||
      !reader.done()) {
    return std::nullopt;
  }
  return msg;
}

std::string encode_submit_ok(const SubmitOkMsg& msg) {
  std::string out;
  util::WireWriter writer(out);
  writer.u64(msg.request_id);
  writer.u64(msg.job_id);
  return out;
}

std::optional<SubmitOkMsg> decode_submit_ok(std::string_view payload) {
  util::WireReader reader(payload);
  SubmitOkMsg msg;
  if (!reader.u64(msg.request_id) || !reader.u64(msg.job_id) ||
      !reader.done()) {
    return std::nullopt;
  }
  return msg;
}

std::string encode_queue_full(const QueueFullMsg& msg) {
  std::string out;
  util::WireWriter writer(out);
  writer.u64(msg.request_id);
  writer.u32(msg.retry_after_ms);
  return out;
}

std::optional<QueueFullMsg> decode_queue_full(std::string_view payload) {
  util::WireReader reader(payload);
  QueueFullMsg msg;
  if (!reader.u64(msg.request_id) || !reader.u32(msg.retry_after_ms) ||
      !reader.done()) {
    return std::nullopt;
  }
  return msg;
}

std::string encode_job_id_msg(const JobIdMsg& msg) {
  std::string out;
  util::WireWriter writer(out);
  writer.u64(msg.request_id);
  writer.u64(msg.job_id);
  return out;
}

std::optional<JobIdMsg> decode_job_id_msg(std::string_view payload) {
  util::WireReader reader(payload);
  JobIdMsg msg;
  if (!reader.u64(msg.request_id) || !reader.u64(msg.job_id) ||
      !reader.done()) {
    return std::nullopt;
  }
  return msg;
}

std::string encode_job_status(const JobStatusMsg& msg) {
  std::string out;
  util::WireWriter writer(out);
  writer.u64(msg.request_id);
  write_job_info(writer, msg.info);
  return out;
}

std::optional<JobStatusMsg> decode_job_status(std::string_view payload) {
  util::WireReader reader(payload);
  JobStatusMsg msg;
  if (!reader.u64(msg.request_id) || !read_job_info(reader, msg.info) ||
      !reader.done()) {
    return std::nullopt;
  }
  return msg;
}

std::string encode_list_jobs(const ListJobsMsg& msg) {
  std::string out;
  util::WireWriter writer(out);
  writer.u64(msg.request_id);
  writer.str(msg.tenant);
  return out;
}

std::optional<ListJobsMsg> decode_list_jobs(std::string_view payload) {
  util::WireReader reader(payload);
  ListJobsMsg msg;
  if (!reader.u64(msg.request_id) || !reader.str(msg.tenant) ||
      !reader.done()) {
    return std::nullopt;
  }
  return msg;
}

std::string encode_job_list(const JobListMsg& msg) {
  std::string out;
  util::WireWriter writer(out);
  writer.u64(msg.request_id);
  writer.u32(static_cast<std::uint32_t>(msg.jobs.size()));
  for (const JobInfo& info : msg.jobs) write_job_info(writer, info);
  return out;
}

std::optional<JobListMsg> decode_job_list(std::string_view payload) {
  util::WireReader reader(payload);
  JobListMsg msg;
  std::uint32_t count = 0;
  if (!reader.u64(msg.request_id) || !reader.u32(count)) return std::nullopt;
  // A JobInfo costs well over 4 bytes; bound the reserve by what the
  // payload could physically carry.
  if (count > reader.remaining() / sizeof(std::uint32_t)) return std::nullopt;
  msg.jobs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    JobInfo info;
    if (!read_job_info(reader, info)) return std::nullopt;
    msg.jobs.push_back(std::move(info));
  }
  if (!reader.done()) return std::nullopt;
  return msg;
}

}  // namespace intooa::sched
