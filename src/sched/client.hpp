#pragma once
// DEPRECATED as an application entry point: new code should use
// api::Session::jobs() (api/session.hpp), which wraps this client behind
// Expected returns and the unified api::Error taxonomy. sched::JobClient
// remains the transport building block the facade is implemented on.
//
// Synchronous job-control client for intooa-schedd: connect + handshake,
// then one request / one reply per call (the operations are cheap state
// queries — nothing here needs the pipelining machinery of svc::Client).
// Each call throws std::runtime_error on transport or protocol failure;
// submit() reports QueueFull in-band via SubmitOutcome.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sched/job.hpp"
#include "svc/socket.hpp"

namespace intooa::sched {

/// Outcome of JobClient::submit.
struct SubmitOutcome {
  bool accepted = false;
  std::uint64_t job_id = 0;          ///< valid when accepted
  std::uint32_t retry_after_ms = 0;  ///< backoff hint when not
};

class JobClient {
 public:
  JobClient() = default;

  /// Connects and performs the Hello/HelloOk handshake. Throws on refusal
  /// or version mismatch.
  void connect(const svc::Address& address);

  bool connected() const { return fd_.valid(); }
  /// The server's announced minor protocol revision (valid when connected).
  std::uint32_t server_minor() const { return server_minor_; }

  /// Submits a job; QueueFull comes back as accepted == false.
  /// Throws std::invalid_argument when the daemon rejects the spec.
  SubmitOutcome submit(const JobSpec& spec);

  /// One job's snapshot; nullopt when the daemon does not know the id.
  std::optional<JobInfo> status(std::uint64_t job_id);

  /// Requests cancellation; returns the job's snapshot after the request.
  /// Nullopt when the daemon does not know the id.
  std::optional<JobInfo> cancel(std::uint64_t job_id);

  /// All jobs, optionally one tenant's, in submission order.
  std::vector<JobInfo> list(const std::string& tenant = "");

  /// Liveness probe.
  bool ping();

  void close() { fd_.reset(); }

 private:
  /// Sends one frame and reads the reply frame (request/response lockstep).
  svc::Frame roundtrip(svc::MsgType type, std::string_view payload);
  std::uint64_t next_request_id() { return request_id_++; }

  svc::Fd fd_;
  std::uint32_t server_minor_ = 0;
  std::uint64_t request_id_ = 1;
};

}  // namespace intooa::sched
