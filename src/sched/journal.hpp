#pragma once
// Append-only job journal of intooa-schedd — the store-log discipline
// applied to scheduler state: a 16-byte magic + versioned header, then CRC-
// framed event records (u32 len | u32 crc32(payload) | payload), fsync'd
// per append, with rebuild-on-open and torn-tail truncation. A daemon that
// dies (even SIGKILL mid-append) reopens the journal, replays the intact
// prefix, and resumes every non-terminal job from the units the journal
// proved done — whose evaluator checkpoints exist on disk, because a
// UnitDone event is only ever appended after the unit's checkpoint was
// published.
//
// Three event kinds keep the log small and replay trivial:
//   Submitted(job_id, JobSpec)            — job accepted
//   UnitDone(job_id, unit_index, sims)    — one campaign run finished
//   StateChanged(job_id, terminal state, message)
// Intermediate states (Running, preemption counts) are deliberately not
// journaled: they are reconstructed facts, not durable ones — a recovered
// job is simply Queued again minus its done units.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sched/job.hpp"

namespace intooa::sched {

/// On-disk journal format version; bump on any layout change.
inline constexpr std::uint32_t kJournalVersion = 1;

/// One job as reconstructed by replay.
struct RecoveredJob {
  JobInfo info;  ///< terminal state if journaled, else Queued
  std::vector<std::uint32_t> done_units;  ///< unit indices proven complete
};

/// Result of the rebuild-on-open scan.
struct JournalRecovery {
  std::vector<RecoveredJob> jobs;  ///< in submission order
  std::uint64_t next_job_id = 1;   ///< max journaled id + 1
  std::uint64_t events = 0;        ///< intact events replayed
  std::uint64_t recovered_tail_bytes = 0;  ///< torn/corrupt bytes truncated
};

/// The journal file. Writes are serialized by an internal mutex and
/// guarded by an exclusive advisory flock for the file's lifetime: two
/// daemons on one journal is an operator error caught at open().
class JobJournal {
 public:
  /// Opens (creating if absent) and replays the journal. Corrupt or torn
  /// trailing bytes are truncated (counted in recovery.recovered_tail_bytes
  /// and the sched.journal.recovered_tail_bytes counter); a bad header or
  /// wrong version throws std::runtime_error — silently reinterpreting a
  /// foreign file would corrupt job history.
  static std::unique_ptr<JobJournal> open(const std::string& path,
                                          JournalRecovery& recovery);

  ~JobJournal();

  JobJournal(const JobJournal&) = delete;
  JobJournal& operator=(const JobJournal&) = delete;

  void submitted(const JobInfo& info);
  void unit_done(std::uint64_t job_id, std::uint32_t unit_index,
                 std::uint64_t simulations);
  void state_changed(std::uint64_t job_id, JobState state,
                     const std::string& message);

  const std::string& path() const { return path_; }

 private:
  explicit JobJournal(std::string path);

  void append(std::string_view payload);

  std::string path_;
  int fd_ = -1;
  std::uint64_t end_offset_ = 0;
  std::mutex mutex_;
};

}  // namespace intooa::sched
