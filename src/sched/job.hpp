#pragma once
// Job model of the campaign scheduler (intooa-schedd). A job is one
// tenant's request to run a set of campaigns: (spec set, method, campaign
// protocol/seed range, priority, tenant). The scheduler decomposes it into
// units — one unit is one whole campaign run of one spec (the granularity
// at which campaigns checkpoint, hence the only boundary where resume is
// byte-identical) — and dispatches units onto its worker pool.
//
// JobSpec/JobInfo have wire codecs (util::WireWriter discipline: fixed
// little-endian, bounds-checked, exact-consume) shared by the svc job
// messages (sched/protocol.hpp) and the persistent journal
// (sched/journal.hpp), so a job's identity is one byte layout everywhere.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/campaign.hpp"
#include "util/wire.hpp"

namespace intooa::sched {

enum class JobState : std::uint8_t {
  Queued = 0,     ///< accepted, no unit dispatched yet (or requeued)
  Running = 1,    ///< at least one unit dispatched
  Completed = 2,  ///< every unit done and outputs finalized
  Canceled = 3,   ///< canceled before completion (at a unit boundary)
  Failed = 4,     ///< a unit or the finalizer threw
};

/// "queued" / "running" / "completed" / "canceled" / "failed".
std::string_view job_state_name(JobState state);

/// True for the states a job can never leave (Completed/Canceled/Failed).
bool job_state_terminal(JobState state);

/// What a client submits.
struct JobSpec {
  std::string tenant = "default";
  /// Strictly ordered priority band: a pending unit of a higher band is
  /// always dispatched before any lower band (fair share applies within a
  /// band only).
  std::uint32_t priority = 0;
  /// Method display name ("INTO-OA", "FE-GA", ... —
  /// campaign::method_name vocabulary; validated at submission).
  std::string method = "INTO-OA";
  /// Specification sets to run the campaign on (circuit::spec_by_name
  /// vocabulary).
  std::vector<std::string> specs;
  /// Campaign protocol: runs (the seed range), budget per run, seed.
  campaign::CampaignParams params;

  /// Units in this job: one per (spec, run) pair.
  std::size_t unit_count() const { return specs.size() * params.runs; }
  /// Nominal simulation cost of one unit (the fair-share charge).
  std::size_t unit_cost() const { return params.budget(); }

  friend bool operator==(const JobSpec&, const JobSpec&) = default;
};

/// Scheduler-side snapshot of one job, returned by JobStatus/ListJobs.
struct JobInfo {
  std::uint64_t id = 0;
  JobSpec spec;
  JobState state = JobState::Queued;
  std::uint32_t units_total = 0;
  std::uint32_t units_done = 0;
  std::uint64_t simulations = 0;  ///< nominal sims of completed units
  std::uint32_t preemptions = 0;  ///< times a freed worker went to a
                                  ///< strictly-higher-priority job instead
  std::string message;            ///< failure/cancel detail ("" otherwise)

  friend bool operator==(const JobInfo&, const JobInfo&) = default;
};

// ---- codec fragments (append to a writer / read from a reader) ----

void write_job_spec(util::WireWriter& writer, const JobSpec& spec);
/// False on any structural defect (caller treats as corruption).
bool read_job_spec(util::WireReader& reader, JobSpec& spec);

void write_job_info(util::WireWriter& writer, const JobInfo& info);
bool read_job_info(util::WireReader& reader, JobInfo& info);

// ---- whole-payload helpers (journal records, tests) ----

std::string encode_job_spec(const JobSpec& spec);
std::optional<JobSpec> decode_job_spec(std::string_view payload);

std::string encode_job_info(const JobInfo& info);
std::optional<JobInfo> decode_job_info(std::string_view payload);

}  // namespace intooa::sched
