#include "sched/service.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sched/protocol.hpp"
#include "util/log.hpp"
#include "util/version.hpp"

namespace intooa::sched {

namespace {

/// Poll slice for connection reads, matching svc::Server: short enough
/// that a drain is observed promptly, long enough to stay cheap.
constexpr int kPollSliceMs = 100;

obs::Counter& requests_counter() {
  static obs::Counter& c = obs::registry().counter("sched.svc.requests");
  return c;
}
obs::Counter& connections_counter() {
  static obs::Counter& c = obs::registry().counter("sched.svc.connections");
  return c;
}
obs::Counter& errors_counter() {
  static obs::Counter& c = obs::registry().counter("sched.svc.errors");
  return c;
}

}  // namespace

JobService::JobService(ServiceConfig config, Scheduler& scheduler)
    : config_(std::move(config)), scheduler_(scheduler) {}

JobService::~JobService() {
  begin_drain();
  join_all_connections();
}

void JobService::join_all_connections() {
  // Move the threads out before joining: a finishing handler takes
  // threads_mutex_ to announce its id, so joining under the lock would
  // deadlock against it.
  std::map<std::uint64_t, std::thread> drained;
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    drained.swap(connection_threads_);
    finished_ids_.clear();
  }
  for (auto& [id, thread] : drained) {
    if (thread.joinable()) thread.join();
  }
}

void JobService::reap_finished_connections() {
  std::vector<std::thread> reaped;
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    for (const std::uint64_t id : finished_ids_) {
      const auto it = connection_threads_.find(id);
      if (it == connection_threads_.end()) continue;
      reaped.push_back(std::move(it->second));
      connection_threads_.erase(it);
    }
    finished_ids_.clear();
  }
  // An announced thread has nothing left to do but unwind: these joins
  // return promptly. Outside the lock all the same.
  for (auto& thread : reaped) {
    if (thread.joinable()) thread.join();
  }
}

void JobService::bind() {
  if (listen_fd_.valid()) return;
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    throw std::runtime_error(std::string("sched: pipe: ") +
                             std::strerror(errno));
  }
  wake_rx_ = svc::Fd(pipe_fds[0]);
  wake_tx_ = svc::Fd(pipe_fds[1]);
  listen_fd_ = svc::listen_on(config_.address);
  util::log_info("intooa-schedd listening on " + config_.address.to_string(),
                 {{"workers", scheduler_.config().workers},
                  {"max_queued_jobs", scheduler_.config().max_queued_jobs},
                  {"protocol_version", svc::kProtocolVersion},
                  {"protocol_minor", svc::kProtocolMinorVersion},
                  {"build", util::version_string()}});
}

void JobService::run() {
  bind();
  while (!draining()) {
    struct pollfd fds[2];
    fds[0] = {listen_fd_.get(), POLLIN, 0};
    fds[1] = {wake_rx_.get(), POLLIN, 0};
    const int got = ::poll(fds, 2, 1000);
    if (got < 0) {
      if (errno == EINTR) continue;
      util::log_error(std::string("sched: accept poll: ") +
                      std::strerror(errno));
      break;
    }
    if (got == 0) continue;
    if (fds[1].revents != 0) {
      begin_drain();
      break;
    }
    if (fds[0].revents == 0) continue;
    svc::Fd client(::accept(listen_fd_.get(), nullptr, nullptr));
    if (!client.valid()) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      util::log_error(std::string("sched: accept: ") + std::strerror(errno));
      continue;
    }
    if (open_connections_.load(std::memory_order_relaxed) >=
        config_.max_connections) {
      // Connection-level backpressure, same shape as svc::Server.
      const std::string frame = svc::encode_frame(
          svc::MsgType::Busy, svc::encode_busy({0, 250}));
      svc::write_all(client.get(), frame);
      continue;
    }
    reap_finished_connections();
    std::string peer = svc::peer_name(client.get());
    open_connections_.fetch_add(1, std::memory_order_relaxed);
    connections_counter().add();
    std::lock_guard<std::mutex> lock(threads_mutex_);
    const std::uint64_t id = next_connection_id_++;
    connection_threads_.emplace(
        id, std::thread([this, id, fd = std::move(client),
                         peer = std::move(peer)]() mutable {
          handle_connection(std::move(fd), std::move(peer));
          // Announce completion so the accept loop can reap this thread;
          // must be the handler thread's last touch of service state.
          std::lock_guard<std::mutex> lock(threads_mutex_);
          finished_ids_.push_back(id);
        }));
  }
  join_all_connections();
  if (config_.address.kind == svc::Address::Kind::Unix) {
    ::unlink(config_.address.path.c_str());
  }
  util::log_info("intooa-schedd listener drained");
}

void JobService::begin_drain() {
  if (draining_.exchange(true, std::memory_order_acq_rel)) return;
  if (wake_tx_.valid()) {
    const char byte = 1;
    [[maybe_unused]] ssize_t ignored = ::write(wake_tx_.get(), &byte, 1);
  }
}

bool JobService::send_frame(int fd, svc::MsgType type,
                            std::string_view payload) {
  // Dispatch is synchronous on the connection thread, so unlike svc::Server
  // no cross-thread write mutex is needed: one frame in, one frame out.
  return svc::write_all(fd, svc::encode_frame(type, payload));
}

void JobService::send_error(int fd, std::uint64_t request_id,
                            svc::ErrorCode code, const std::string& message) {
  errors_counter().add();
  send_frame(fd, svc::MsgType::Error,
             svc::encode_error({request_id, code, message}));
}

void JobService::handle_connection(svc::Fd fd, std::string peer) {
  svc::Frame frame;
  svc::ReadStatus hello_status = svc::ReadStatus::Timeout;
  for (int waited = 0; !draining(); waited += kPollSliceMs) {
    if (config_.idle_timeout_ms >= 0 && waited >= config_.idle_timeout_ms) {
      break;
    }
    hello_status = svc::read_frame(fd.get(), frame, kPollSliceMs);
    if (hello_status != svc::ReadStatus::Timeout) break;
  }
  bool ok = false;
  if (hello_status == svc::ReadStatus::Ok &&
      frame.type == svc::MsgType::Hello) {
    if (const auto hello = svc::decode_hello(frame.payload)) {
      if (hello->version == svc::kProtocolVersion) {
        ok = send_frame(fd.get(), svc::MsgType::HelloOk,
                        hello->minor >= 1
                            ? svc::encode_hello_ok(svc::kProtocolVersion,
                                                   svc::kProtocolMinorVersion)
                            : svc::encode_hello_ok());
        if (ok) {
          util::log_info("sched: handshake",
                         {{"peer", peer},
                          {"client_minor", hello->minor},
                          {"build", util::version_string()}});
        }
      } else {
        send_error(fd.get(), 0, svc::ErrorCode::VersionMismatch,
                   "schedd speaks protocol version " +
                       std::to_string(svc::kProtocolVersion) +
                       ", client sent " + std::to_string(hello->version));
      }
    } else {
      send_error(fd.get(), 0, svc::ErrorCode::VersionMismatch,
                 "malformed Hello (bad magic)");
    }
  } else if (hello_status == svc::ReadStatus::Ok) {
    send_error(fd.get(), 0, svc::ErrorCode::BadFrame, "expected Hello");
  }

  int idle_ms = 0;
  while (ok) {
    const svc::ReadStatus status =
        svc::read_frame(fd.get(), frame, kPollSliceMs);
    if (status == svc::ReadStatus::Timeout) {
      if (draining()) break;
      idle_ms += kPollSliceMs;
      if (config_.idle_timeout_ms >= 0 && idle_ms >= config_.idle_timeout_ms) {
        break;
      }
      continue;
    }
    if (status == svc::ReadStatus::Oversized) {
      send_error(fd.get(), 0, svc::ErrorCode::OversizedFrame,
                 "frame exceeds " + std::to_string(svc::kMaxFrame) + " bytes");
      break;
    }
    if (status == svc::ReadStatus::BadType) {
      send_error(fd.get(), 0, svc::ErrorCode::BadFrame,
                 "unknown message type");
      break;
    }
    if (status != svc::ReadStatus::Ok) break;
    idle_ms = 0;
    if (!dispatch(fd.get(), frame)) break;
  }
  open_connections_.fetch_sub(1, std::memory_order_relaxed);
}

bool JobService::dispatch(int fd, const svc::Frame& frame) {
  INTOOA_SPAN("sched.svc.dispatch");
  requests_counter().add();
  switch (frame.type) {
    case svc::MsgType::Ping: {
      if (const auto nonce = svc::decode_ping(frame.payload)) {
        send_frame(fd, svc::MsgType::Pong, svc::encode_ping(*nonce));
        return true;
      }
      send_error(fd, 0, svc::ErrorCode::BadFrame, "malformed Ping");
      return false;
    }
    case svc::MsgType::SubmitJob: {
      const auto msg = decode_submit_job(frame.payload);
      if (!msg) {
        send_error(fd, 0, svc::ErrorCode::BadFrame, "malformed SubmitJob");
        return false;
      }
      if (draining()) {
        send_error(fd, msg->request_id, svc::ErrorCode::Draining,
                   "scheduler is draining; no new jobs accepted");
        return false;
      }
      SubmitResult result;
      try {
        result = scheduler_.submit(msg->spec);
      } catch (const std::invalid_argument& e) {
        send_error(fd, msg->request_id, svc::ErrorCode::MalformedRequest,
                   e.what());
        return true;  // a bad spec is a request error, not a stream error
      }
      if (!result.accepted) {
        send_frame(fd, svc::MsgType::QueueFull,
                   encode_queue_full(
                       {msg->request_id, result.retry_after_ms}));
        return true;
      }
      send_frame(fd, svc::MsgType::SubmitOk,
                 encode_submit_ok({msg->request_id, result.job_id}));
      return true;
    }
    case svc::MsgType::JobStatusRequest: {
      const auto msg = decode_job_id_msg(frame.payload);
      if (!msg) {
        send_error(fd, 0, svc::ErrorCode::BadFrame,
                   "malformed JobStatusRequest");
        return false;
      }
      const auto info = scheduler_.status(msg->job_id);
      if (!info) {
        send_error(fd, msg->request_id, svc::ErrorCode::MalformedRequest,
                   "unknown job " + std::to_string(msg->job_id));
        return true;
      }
      send_frame(fd, svc::MsgType::JobStatusResponse,
                 encode_job_status({msg->request_id, *info}));
      return true;
    }
    case svc::MsgType::CancelJob: {
      const auto msg = decode_job_id_msg(frame.payload);
      if (!msg) {
        send_error(fd, 0, svc::ErrorCode::BadFrame, "malformed CancelJob");
        return false;
      }
      if (!scheduler_.cancel(msg->job_id)) {
        send_error(fd, msg->request_id, svc::ErrorCode::MalformedRequest,
                   "unknown job " + std::to_string(msg->job_id));
        return true;
      }
      const auto info = scheduler_.status(msg->job_id);
      send_frame(fd, svc::MsgType::JobStatusResponse,
                 encode_job_status({msg->request_id, *info}));
      return true;
    }
    case svc::MsgType::ListJobs: {
      const auto msg = decode_list_jobs(frame.payload);
      if (!msg) {
        send_error(fd, 0, svc::ErrorCode::BadFrame, "malformed ListJobs");
        return false;
      }
      send_frame(fd, svc::MsgType::JobList,
                 encode_job_list({msg->request_id,
                                  scheduler_.list(msg->tenant)}));
      return true;
    }
    default:
      send_error(fd, 0, svc::ErrorCode::BadFrame,
                 "message type not served by intooa-schedd");
      return false;
  }
}

}  // namespace intooa::sched
